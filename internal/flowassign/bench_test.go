package flowassign

import (
	"fmt"
	"testing"
)

// BenchmarkAssign measures participating-subscription selection latency —
// it runs once per query (§4.1), so it must stay cheap even on large
// clusters.
func BenchmarkAssign(b *testing.B) {
	for _, tc := range []struct{ shards, nodes int }{
		{3, 4}, {12, 16}, {64, 64}, {128, 32},
	} {
		b.Run(fmt.Sprintf("s%d_n%d", tc.shards, tc.nodes), func(b *testing.B) {
			shards := make([]int, tc.shards)
			for i := range shards {
				shards[i] = i
			}
			nodes := make([]string, tc.nodes)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("node%03d", i)
			}
			// Each node subscribes to a window of shards plus node 0
			// covering everything.
			canServe := func(node string, shard int) bool {
				var ni int
				fmt.Sscanf(node, "node%d", &ni)
				if ni == 0 {
					return true
				}
				return shard%tc.nodes == ni || (shard+1)%tc.nodes == ni
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Assign(Input{
					Shards: shards, Nodes: nodes,
					CanServe: canServe, Seed: int64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
