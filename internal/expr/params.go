package expr

import (
	"fmt"

	"eon/internal/types"
)

// MaxParam returns the highest parameter ordinal referenced by e (0 when
// the expression has no parameters).
func MaxParam(e Expr) int {
	max := 0
	walkExpr(e, func(x Expr) {
		if p, ok := x.(*Param); ok && p.Index > max {
			max = p.Index
		}
	})
	return max
}

// HasParams reports whether e references any bind parameter.
func HasParams(e Expr) bool { return MaxParam(e) > 0 }

// SubstituteParams returns a copy of e with every Param node replaced by
// a Literal holding args[Index-1]. The result is unbound copy-on-write:
// subtrees without parameters are shared, so callers must re-Bind the
// returned tree (Bind mutates column references in place) against the
// schema the original was bound to. An expression without parameters is
// returned as-is.
func SubstituteParams(e Expr, args []types.Datum) (Expr, error) {
	if !HasParams(e) {
		return e, nil
	}
	out := Clone(e)
	var sub func(Expr) (Expr, error)
	sub = func(x Expr) (Expr, error) {
		switch n := x.(type) {
		case *Param:
			if n.Index < 1 || n.Index > len(args) {
				return nil, fmt.Errorf("expr: parameter $%d out of range (%d bound)", n.Index, len(args))
			}
			return &Literal{Value: args[n.Index-1]}, nil
		case *Binary:
			var err error
			if n.L, err = sub(n.L); err != nil {
				return nil, err
			}
			if n.R, err = sub(n.R); err != nil {
				return nil, err
			}
			return n, nil
		case *Unary:
			var err error
			if n.E, err = sub(n.E); err != nil {
				return nil, err
			}
			return n, nil
		case *IsNull:
			var err error
			if n.E, err = sub(n.E); err != nil {
				return nil, err
			}
			return n, nil
		case *In:
			var err error
			if n.E, err = sub(n.E); err != nil {
				return nil, err
			}
			for i, a := range n.List {
				if n.List[i], err = sub(a); err != nil {
					return nil, err
				}
			}
			return n, nil
		case *Like:
			var err error
			if n.E, err = sub(n.E); err != nil {
				return nil, err
			}
			return n, nil
		case *Case:
			var err error
			for i := range n.Whens {
				if n.Whens[i].Cond, err = sub(n.Whens[i].Cond); err != nil {
					return nil, err
				}
				if n.Whens[i].Then, err = sub(n.Whens[i].Then); err != nil {
					return nil, err
				}
			}
			if n.Else != nil {
				if n.Else, err = sub(n.Else); err != nil {
					return nil, err
				}
			}
			return n, nil
		case *Func:
			var err error
			for i, a := range n.Args {
				if n.Args[i], err = sub(a); err != nil {
					return nil, err
				}
			}
			return n, nil
		}
		return x, nil
	}
	return sub(out)
}

// walkExpr visits every node of the expression tree.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *Binary:
		walkExpr(n.L, fn)
		walkExpr(n.R, fn)
	case *Unary:
		walkExpr(n.E, fn)
	case *IsNull:
		walkExpr(n.E, fn)
	case *In:
		walkExpr(n.E, fn)
		for _, a := range n.List {
			walkExpr(a, fn)
		}
	case *Like:
		walkExpr(n.E, fn)
	case *Case:
		for _, w := range n.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		if n.Else != nil {
			walkExpr(n.Else, fn)
		}
	case *Func:
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	}
}
