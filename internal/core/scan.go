package core

import (
	"context"
	"fmt"

	"eon/internal/catalog"
	"eon/internal/expr"
	"eon/internal/hashring"
	"eon/internal/planner"
	"eon/internal/rosfile"
	"eon/internal/storage"
	"eon/internal/types"
)

// scanFragment reads one node's share of a scan: the containers of the
// chosen projection whose shards (or shard sub-partitions, under crunch
// scaling) the session assigned to this node, with container- and
// block-level min/max pruning, delete-vector filtering and predicate
// evaluation. The executor "attaches storage for the shards the session
// has instructed it to serve" from its own catalog (§4).
func (db *DB) scanFragment(ctx context.Context, node *Node, scan *planner.Scan, tasks []scanTask, version uint64, bypassCache bool, mode CrunchMode) ([]*types.Batch, error) {
	snap := node.catalog.Snapshot()
	if snap.Version() < version {
		return nil, fmt.Errorf("core: node %s catalog at v%d behind query v%d", node.name, snap.Version(), version)
	}
	var out []*types.Batch
	wosProjs := map[catalog.OID]bool{}
	var shards []int
	for _, task := range tasks {
		shardIdx := task.Shard
		shards = append(shards, shardIdx)
		// Enterprise: a node serving a shard it does not own in the base
		// projection reads the buddy copy instead — "the global query
		// plan does not change when a node is down, merely a different
		// node serves the underlying data" (§6.1).
		proj := scan.Proj
		if db.mode == ModeEnterprise && shardIdx != catalog.ReplicaShard && !scan.Replicated {
			p, err := db.projectionCopyFor(snap, scan.Proj, shardIdx, node.name)
			if err != nil {
				return nil, err
			}
			proj = p
		}
		wosProjs[proj.OID] = true

		containers := snap.ContainersOf(proj.OID, shardIdx)
		// Container split (§4.4): "each node sharing a segment scans a
		// distinct subset of the containers".
		useContainerSplit := task.Of > 1 &&
			(mode == CrunchContainerSplit || len(scan.SegmentCols) == 0)
		for ci, sc := range containers {
			if db.mode == ModeEnterprise && sc.OwnerNode != node.name {
				continue
			}
			if useContainerSplit && ci%task.Of != task.Part {
				continue
			}
			batches, err := db.scanContainer(ctx, node, scan, snap, sc, bypassCache)
			if err != nil {
				return nil, err
			}
			// Hash filter (§4.4): "applying a new hash segmentation
			// predicate to each row as it is read" — selective
			// predicates were already applied by the scan, reducing the
			// hashing burden.
			if task.Of > 1 && !useContainerSplit {
				batches = hashFilterBatches(batches, scan.SegmentCols, task.Part, task.Of)
			}
			out = append(out, batches...)
		}
	}
	if scan.Replicated {
		wosProjs = map[catalog.OID]bool{scan.Proj.OID: true}
	}
	// Enterprise: merge WOS rows of the projection copies this node read.
	if db.mode == ModeEnterprise && node.wos != nil {
		for projOID := range wosProjs {
			wb := node.wos.Rows(projOID)
			if wb == nil || wb.NumRows() == 0 {
				continue
			}
			b, err := db.filterWOSRows(node, scan, wb, shards)
			if err != nil {
				return nil, err
			}
			if b != nil && b.NumRows() > 0 {
				out = append(out, b)
			}
		}
	}
	return out, nil
}

// hashFilterBatches keeps only rows whose segmentation-column hash lands
// in sub-partition part of of.
func hashFilterBatches(batches []*types.Batch, segCols []int, part, of int) []*types.Batch {
	ring := hashring.NewRing(of)
	var out []*types.Batch
	for _, b := range batches {
		if b == nil || b.NumRows() == 0 {
			continue
		}
		hashes := hashring.HashBatchCols(b, segCols, nil)
		var keep []int
		for i, h := range hashes {
			if ring.SegmentFor(h) == part {
				keep = append(keep, i)
			}
		}
		if len(keep) == b.NumRows() {
			out = append(out, b)
		} else if len(keep) > 0 {
			out = append(out, b.Gather(keep))
		}
	}
	return out
}

// projectionCopyFor finds, within a projection's buddy family, the copy
// whose owner for the given segment is the given node.
func (db *DB) projectionCopyFor(snap *catalog.Snapshot, base *catalog.Projection, shardIdx int, nodeName string) (*catalog.Projection, error) {
	family := []*catalog.Projection{}
	for _, p := range snap.ProjectionsOf(base.TableOID) {
		if p.OID == base.OID || p.BaseOID == base.OID || (base.BaseOID != 0 && (p.OID == base.BaseOID || p.BaseOID == base.BaseOID)) {
			family = append(family, p)
		}
	}
	nNodes := len(db.order)
	for _, p := range family {
		if db.order[(shardIdx+p.BuddyOffset)%nNodes] == nodeName {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: node %s holds no copy of projection %s for segment %d", nodeName, base.Name, shardIdx)
}

// containerStats builds the pruning StatsFunc from catalog column stats.
func containerStats(scan *planner.Scan, sc *catalog.StorageContainer) expr.StatsFunc {
	return func(col int) (types.ColumnStats, bool) {
		if col < 0 || col >= len(scan.Cols) {
			return types.ColumnStats{}, false
		}
		st, ok := sc.ColStats[scan.Cols[col]]
		return st, ok
	}
}

// scanContainer reads the needed columns of one container.
func (db *DB) scanContainer(ctx context.Context, node *Node, scan *planner.Scan, snap *catalog.Snapshot, sc *catalog.StorageContainer, bypassCache bool) ([]*types.Batch, error) {
	// Container-level pruning from catalog stats — no file access
	// needed (§2.1).
	if scan.Pred != nil && !expr.CouldMatch(scan.Pred, containerStats(scan, sc)) {
		return nil, nil
	}

	// Per-table shaping policy (§5.2): never-cache tables bypass.
	if db.neverCacheTable(scan.Table.Name) {
		bypassCache = true
	}
	fetch := db.fetchFunc(node, bypassCache)
	readers, err := openContainerColumns(ctx, sc, scan.Cols, fetch)
	if err != nil {
		return nil, err
	}

	// Merge delete vectors covering this container.
	var dvLists [][]int64
	for _, dv := range snap.DeleteVectorsOf(sc.OID) {
		if db.mode == ModeEnterprise && dv.OwnerNode != node.name {
			continue
		}
		data, err := fetch(ctx, dv.File.Path)
		if err != nil {
			return nil, err
		}
		positions, err := storage.ReadDeleteVector(data)
		if err != nil {
			return nil, err
		}
		dvLists = append(dvLists, positions)
	}
	deletes := storage.NewDeleteSet(dvLists...)

	// Read block by block with footer min/max pruning on the first
	// predicate column's reader (block boundaries are aligned across a
	// container's columns).
	first := readers[scan.Cols[0]]
	nBlocks := len(first.Footer().Blocks)
	var out []*types.Batch
	for bi := 0; bi < nBlocks; bi++ {
		blk := first.Footer().Blocks[bi]
		if scan.Pred != nil && !blockCouldMatch(scan, readers, bi) {
			continue
		}
		batch := &types.Batch{Cols: make([]*types.Vector, len(scan.Cols))}
		for ci, col := range scan.Cols {
			v, err := readers[col].ReadBlock(bi)
			if err != nil {
				return nil, err
			}
			v.Typ = scan.OutSchema[ci].Type
			batch.Cols[ci] = v
		}
		// Delete-vector filtering.
		if deletes.Len() > 0 {
			live := deletes.LivePositions(blk.RowStart, batch.NumRows())
			if len(live) == 0 {
				continue
			}
			if len(live) < batch.NumRows() {
				batch = batch.Gather(live)
			}
		}
		// Predicate evaluation.
		if scan.Pred != nil {
			sel, err := expr.FilterBatch(scan.Pred, batch)
			if err != nil {
				return nil, err
			}
			if len(sel) == 0 {
				continue
			}
			if len(sel) < batch.NumRows() {
				batch = batch.Gather(sel)
			}
		}
		out = append(out, batch)
	}
	return out, nil
}

// blockCouldMatch applies min/max pruning using the footers of every
// scanned column at block index bi (the position index of §2.3 stores
// per-block minimum and maximum values).
func blockCouldMatch(scan *planner.Scan, readers map[string]*rosfile.Reader, bi int) bool {
	stats := func(col int) (types.ColumnStats, bool) {
		if col < 0 || col >= len(scan.Cols) {
			return types.ColumnStats{}, false
		}
		r := readers[scan.Cols[col]]
		if r == nil || bi >= len(r.Footer().Blocks) {
			return types.ColumnStats{}, false
		}
		blk := r.Footer().Blocks[bi]
		return types.ColumnStats{
			Min:      blk.Min,
			Max:      blk.Max,
			HasNulls: blk.NullCount > 0,
			AllNull:  blk.NullCount == blk.RowCount,
		}, true
	}
	return expr.CouldMatch(scan.Pred, stats)
}

// filterWOSRows projects WOS rows to the scan's columns, restricts them
// to the node's shards, and applies the predicate.
func (db *DB) filterWOSRows(node *Node, scan *planner.Scan, wb *types.Batch, shards []int) (*types.Batch, error) {
	projSchema := make(types.Schema, len(scan.Proj.Columns))
	// WOS batches are stored in projection column order.
	for i, c := range scan.Proj.Columns {
		projSchema[i] = types.Column{Name: c}
	}
	// Select the needed columns in scan order.
	sel := &types.Batch{Cols: make([]*types.Vector, len(scan.Cols))}
	for i, c := range scan.Cols {
		idx := projSchema.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("core: WOS missing column %q", c)
		}
		sel.Cols[i] = wb.Cols[idx]
	}
	// WOS rows were already routed to this node per shard at load time;
	// every buffered row of this projection copy belongs to a shard the
	// node owns, so no further shard filtering is needed.
	_ = shards
	if scan.Pred != nil {
		idx, err := expr.FilterBatch(scan.Pred, sel)
		if err != nil {
			return nil, err
		}
		if len(idx) == 0 {
			return nil, nil
		}
		sel = sel.Gather(idx)
	}
	return sel, nil
}
