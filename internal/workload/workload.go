// Package workload supplies the evaluation workloads of paper §8: a
// deterministic TPC-H-shaped dataset and twenty analytic queries over it
// (Figure 10), the short customer dashboard query used for elastic
// throughput scaling (Figure 11a), and the IoT-style small-batch COPY
// workload (Figure 11b).
//
// The generator is scaled down from TPC-H SF200 to laptop size; the
// shapes the figures depend on (selectivity of date predicates, join
// fan-outs, group cardinalities) are preserved.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"eon/internal/types"
)

// Exec is a minimal statement runner; adapt any session's Execute.
type Exec func(sql string) error

// TPCH parameterizes the dataset.
type TPCH struct {
	Customers int
	Orders    int
	// LineitemsPerOrder is the average lineitem fan-out.
	LineitemsPerOrder int
	Parts             int
	Suppliers         int
	Seed              int64
}

// DefaultTPCH returns a dataset sized by a scale factor; scale 1 is
// about 40k lineitems.
func DefaultTPCH(scale float64) TPCH {
	if scale <= 0 {
		scale = 1
	}
	return TPCH{
		Customers:         int(1000 * scale),
		Orders:            int(10000 * scale),
		LineitemsPerOrder: 4,
		Parts:             int(500 * scale),
		Suppliers:         int(100 * scale),
		Seed:              42,
	}
}

// dateDays converts a calendar date to Date datum days.
func dateDays(y, m, d int) int64 {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// DDL returns the schema statements: tables plus projections designed
// like a Database Designer would — lineitem and orders co-segmented on
// the order key for local joins, a second orders projection segmented by
// customer for the dashboard join, dimensions replicated.
func (w TPCH) DDL() []string {
	return []string{
		`CREATE TABLE customer (c_custkey INTEGER, c_name VARCHAR, c_nationkey INTEGER, c_acctbal FLOAT, c_mktsegment VARCHAR)`,
		`CREATE PROJECTION customer_super AS SELECT * FROM customer ORDER BY c_custkey SEGMENTED BY HASH(c_custkey) ALL NODES`,

		`CREATE TABLE orders (o_orderkey INTEGER, o_custkey INTEGER, o_orderstatus VARCHAR, o_totalprice FLOAT, o_orderdate DATE, o_orderpriority VARCHAR)`,
		`CREATE PROJECTION orders_super AS SELECT * FROM orders ORDER BY o_orderdate SEGMENTED BY HASH(o_orderkey) ALL NODES`,
		`CREATE PROJECTION orders_bycust AS SELECT o_orderkey, o_custkey, o_totalprice, o_orderdate FROM orders ORDER BY o_custkey SEGMENTED BY HASH(o_custkey) ALL NODES`,

		`CREATE TABLE lineitem (l_orderkey INTEGER, l_partkey INTEGER, l_suppkey INTEGER, l_linenumber INTEGER, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, l_returnflag VARCHAR, l_linestatus VARCHAR, l_shipdate DATE)`,
		`CREATE PROJECTION lineitem_super AS SELECT * FROM lineitem ORDER BY l_shipdate SEGMENTED BY HASH(l_orderkey) ALL NODES`,

		`CREATE TABLE part (p_partkey INTEGER, p_name VARCHAR, p_brand VARCHAR, p_type VARCHAR, p_retailprice FLOAT)`,
		`CREATE PROJECTION part_rep AS SELECT * FROM part ORDER BY p_partkey UNSEGMENTED ALL NODES`,

		`CREATE TABLE supplier (s_suppkey INTEGER, s_name VARCHAR, s_nationkey INTEGER, s_acctbal FLOAT)`,
		`CREATE PROJECTION supplier_rep AS SELECT * FROM supplier ORDER BY s_suppkey UNSEGMENTED ALL NODES`,

		`CREATE TABLE nation (n_nationkey INTEGER, n_name VARCHAR)`,
		`CREATE PROJECTION nation_rep AS SELECT * FROM nation ORDER BY n_nationkey UNSEGMENTED ALL NODES`,
	}
}

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	statuses   = []string{"F", "O", "P"}
	flags      = []string{"A", "N", "R"}
	brands     = []string{"Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"}
	ptypes     = []string{"ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS", "MEDIUM POLISHED COPPER", "SMALL PLATED TIN", "STANDARD BURNISHED NICKEL"}
	nations    = []string{"ALGERIA", "BRAZIL", "CANADA", "EGYPT", "FRANCE", "GERMANY", "INDIA", "JAPAN", "KENYA", "PERU"}
)

// Tables generates every table's data deterministically.
func (w TPCH) Tables() map[string]*types.Batch {
	rng := rand.New(rand.NewSource(w.Seed))
	out := map[string]*types.Batch{}

	customer := types.NewBatch(types.Schema{
		{Name: "c_custkey", Type: types.Int64},
		{Name: "c_name", Type: types.Varchar},
		{Name: "c_nationkey", Type: types.Int64},
		{Name: "c_acctbal", Type: types.Float64},
		{Name: "c_mktsegment", Type: types.Varchar},
	}, w.Customers)
	for i := 1; i <= w.Customers; i++ {
		customer.AppendRow(types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer#%06d", i)),
			types.NewInt(int64(rng.Intn(len(nations)))),
			types.NewFloat(float64(rng.Intn(100000))/10 - 1000),
			types.NewString(segments[rng.Intn(len(segments))]),
		})
	}
	out["customer"] = customer

	startDate := dateDays(1992, 1, 1)
	endDate := dateDays(1998, 8, 2)
	span := int(endDate - startDate)

	orders := types.NewBatch(types.Schema{
		{Name: "o_orderkey", Type: types.Int64},
		{Name: "o_custkey", Type: types.Int64},
		{Name: "o_orderstatus", Type: types.Varchar},
		{Name: "o_totalprice", Type: types.Float64},
		{Name: "o_orderdate", Type: types.Date},
		{Name: "o_orderpriority", Type: types.Varchar},
	}, w.Orders)
	orderDates := make([]int64, w.Orders+1)
	for i := 1; i <= w.Orders; i++ {
		od := startDate + int64(rng.Intn(span))
		orderDates[i] = od
		orders.AppendRow(types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(w.Customers) + 1)),
			types.NewString(statuses[rng.Intn(len(statuses))]),
			types.NewFloat(float64(rng.Intn(400000))/10 + 100),
			types.NewDate(od),
			types.NewString(priorities[rng.Intn(len(priorities))]),
		})
	}
	out["orders"] = orders

	liCount := w.Orders * w.LineitemsPerOrder
	lineitem := types.NewBatch(types.Schema{
		{Name: "l_orderkey", Type: types.Int64},
		{Name: "l_partkey", Type: types.Int64},
		{Name: "l_suppkey", Type: types.Int64},
		{Name: "l_linenumber", Type: types.Int64},
		{Name: "l_quantity", Type: types.Float64},
		{Name: "l_extendedprice", Type: types.Float64},
		{Name: "l_discount", Type: types.Float64},
		{Name: "l_tax", Type: types.Float64},
		{Name: "l_returnflag", Type: types.Varchar},
		{Name: "l_linestatus", Type: types.Varchar},
		{Name: "l_shipdate", Type: types.Date},
	}, liCount)
	for i := 0; i < liCount; i++ {
		orderkey := int64(i/w.LineitemsPerOrder + 1)
		ship := orderDates[orderkey] + int64(rng.Intn(120)+1)
		lineitem.AppendRow(types.Row{
			types.NewInt(orderkey),
			types.NewInt(int64(rng.Intn(w.Parts) + 1)),
			types.NewInt(int64(rng.Intn(w.Suppliers) + 1)),
			types.NewInt(int64(i%w.LineitemsPerOrder + 1)),
			types.NewFloat(float64(rng.Intn(50) + 1)),
			types.NewFloat(float64(rng.Intn(100000))/10 + 1),
			types.NewFloat(float64(rng.Intn(11)) / 100),
			types.NewFloat(float64(rng.Intn(9)) / 100),
			types.NewString(flags[rng.Intn(len(flags))]),
			types.NewString(statuses[rng.Intn(2)]),
			types.NewDate(ship),
		})
	}
	out["lineitem"] = lineitem

	part := types.NewBatch(types.Schema{
		{Name: "p_partkey", Type: types.Int64},
		{Name: "p_name", Type: types.Varchar},
		{Name: "p_brand", Type: types.Varchar},
		{Name: "p_type", Type: types.Varchar},
		{Name: "p_retailprice", Type: types.Float64},
	}, w.Parts)
	for i := 1; i <= w.Parts; i++ {
		part.AppendRow(types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("part %d %s", i, ptypes[rng.Intn(len(ptypes))])),
			types.NewString(brands[rng.Intn(len(brands))]),
			types.NewString(ptypes[rng.Intn(len(ptypes))]),
			types.NewFloat(float64(rng.Intn(20000))/10 + 1),
		})
	}
	out["part"] = part

	supplier := types.NewBatch(types.Schema{
		{Name: "s_suppkey", Type: types.Int64},
		{Name: "s_name", Type: types.Varchar},
		{Name: "s_nationkey", Type: types.Int64},
		{Name: "s_acctbal", Type: types.Float64},
	}, w.Suppliers)
	for i := 1; i <= w.Suppliers; i++ {
		supplier.AppendRow(types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Supplier#%05d", i)),
			types.NewInt(int64(rng.Intn(len(nations)))),
			types.NewFloat(float64(rng.Intn(100000))/10 - 1000),
		})
	}
	out["supplier"] = supplier

	nation := types.NewBatch(types.Schema{
		{Name: "n_nationkey", Type: types.Int64},
		{Name: "n_name", Type: types.Varchar},
	}, len(nations))
	for i, n := range nations {
		nation.AppendRow(types.Row{types.NewInt(int64(i)), types.NewString(n)})
	}
	out["nation"] = nation

	return out
}

// Setup creates the schema and loads every table.
func (w TPCH) Setup(exec Exec, load func(table string, b *types.Batch) error) error {
	for _, stmt := range w.DDL() {
		if err := exec(stmt); err != nil {
			return fmt.Errorf("workload: %s: %w", stmt[:24], err)
		}
	}
	for table, batch := range w.Tables() {
		if err := load(table, batch); err != nil {
			return fmt.Errorf("workload: load %s: %w", table, err)
		}
	}
	return nil
}
