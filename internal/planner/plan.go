// Package planner turns parsed SELECT statements into distributed
// physical plans (paper §4). The planner chooses a projection per table,
// pushes predicates to scans, detects co-segmented joins and aggregations
// that need no reshuffle, decides between local and two-phase
// aggregation, and annotates where exchanges (reshuffle or broadcast)
// are required. The same plans execute in Enterprise and Eon mode; only
// the mapping of hash-space regions to nodes differs.
package planner

import (
	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/expr"
	"eon/internal/types"
)

// Node is a physical plan node. Schemas use qualified column names
// ("alias.column") so joins cannot alias-collide.
type Node interface {
	Schema() types.Schema
}

// JoinStrategy describes how a join is distributed.
type JoinStrategy uint8

// Join strategies (§4: identical segmentation avoids any reshuffle).
const (
	// JoinLocal needs no data movement: sides are co-segmented on the
	// join keys or one side is replicated.
	JoinLocal JoinStrategy = iota
	// JoinBroadcastRight ships the (small) right side to every
	// participating node.
	JoinBroadcastRight
	// JoinReshuffleBoth repartitions both sides by join key.
	JoinReshuffleBoth
)

// String names the strategy.
func (s JoinStrategy) String() string {
	switch s {
	case JoinLocal:
		return "LOCAL"
	case JoinBroadcastRight:
		return "BROADCAST"
	case JoinReshuffleBoth:
		return "RESHUFFLE"
	}
	return "?"
}

// AggMode describes how an aggregation is distributed.
type AggMode uint8

// Aggregation modes.
const (
	// AggLocalFinal: group keys cover the stream's segmentation columns,
	// so per-node groups are disjoint and results are simply unioned
	// (§4: "a query that groups by column a does not need a reshuffle").
	AggLocalFinal AggMode = iota
	// AggTwoPhase: nodes emit partial states merged on the initiator.
	AggTwoPhase
	// AggInitiatorOnly: the aggregation runs once on the initiator over
	// the gathered stream (used after a global distinct for
	// COUNT(DISTINCT) on non-co-segmented data).
	AggInitiatorOnly
)

// String names the mode.
func (m AggMode) String() string {
	switch m {
	case AggLocalFinal:
		return "LOCAL"
	case AggTwoPhase:
		return "TWO-PHASE"
	case AggInitiatorOnly:
		return "INITIATOR"
	}
	return "?"
}

// Scan reads one table through a chosen projection.
type Scan struct {
	Table *catalog.Table
	Proj  *catalog.Projection
	// Alias is the table reference name in the query.
	Alias string
	// Cols are the projection column names read, in output order.
	Cols []string
	// OutSchema carries qualified names ("alias.col").
	OutSchema types.Schema
	// Pred is the pushed-down predicate bound to OutSchema (nil if
	// none).
	Pred expr.Expr
	// SegmentCols are the positions (in OutSchema) of the projection's
	// segmentation columns; nil if the projection is replicated.
	SegmentCols []int
	// Replicated marks a replicated-projection scan (executes on one
	// node).
	Replicated bool
	// Virtual marks a system-table scan (Proj is nil): the executor
	// materializes the table on the initiator from live monitoring state
	// instead of reading storage. Virtual scans are always Replicated.
	Virtual bool
}

// Schema implements Node.
func (s *Scan) Schema() types.Schema { return s.OutSchema }

// Join is an inner equi-join node.
type Join struct {
	Left, Right Node
	// LeftKeys/RightKeys are column positions in the child schemas.
	LeftKeys, RightKeys []int
	Strategy            JoinStrategy
	// ResidualPred holds non-equi conjuncts of the ON condition, bound
	// to the join output schema (nil if none).
	ResidualPred expr.Expr
	// OutSegmentCols: positions (in the join output schema) by which the
	// output stream remains segmented; nil if segmentation is lost.
	OutSegmentCols []int
	outSchema      types.Schema
}

// Schema implements Node.
func (j *Join) Schema() types.Schema { return j.outSchema }

// Filter applies a bound predicate.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() types.Schema { return f.Input.Schema() }

// Project evaluates output expressions.
type Project struct {
	Input Node
	Exprs []expr.Expr
	Names []string
	out   types.Schema
}

// Schema implements Node.
func (p *Project) Schema() types.Schema { return p.out }

// Aggregate groups and aggregates.
type Aggregate struct {
	Input    Node
	Keys     []expr.Expr
	KeyNames []string
	Aggs     []exec.AggDef
	Mode     AggMode
	out      types.Schema
}

// Schema implements Node.
func (a *Aggregate) Schema() types.Schema { return a.out }

// DistinctNode removes duplicate rows. When Distributed, nodes
// deduplicate locally and the initiator deduplicates the union.
type DistinctNode struct {
	Input Node
}

// Schema implements Node.
func (d *DistinctNode) Schema() types.Schema { return d.Input.Schema() }

// Sort orders the stream; executed on the initiator.
type Sort struct {
	Input Node
	Keys  []exec.SortSpec
}

// Schema implements Node.
func (s *Sort) Schema() types.Schema { return s.Input.Schema() }

// Limit caps output rows; executed on the initiator.
type Limit struct {
	Input Node
	N     int64
}

// Schema implements Node.
func (l *Limit) Schema() types.Schema { return l.Input.Schema() }

// Plan is the root of a planned SELECT.
type Plan struct {
	Root Node
	// OutputNames are the final column labels.
	OutputNames []string
}

// Schema returns the output schema.
func (p *Plan) Schema() types.Schema { return p.Root.Schema() }
