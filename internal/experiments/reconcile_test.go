package experiments

import (
	"testing"
	"time"
)

// TestChaosRecovery is the acceptance measurement: kill a node (with
// its depot) mid-workload and compare time-to-recovered-throughput with
// a warm spare against a cold revive. Absolute times are host-noisy;
// the asserted shape is that both paths recover with exact results, the
// right repair action fires, and the pre-warmed spare path is faster.
func TestChaosRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := RecoveryOptions{
		Warmup: 600 * time.Millisecond,
		Post:   4 * time.Second,
	}

	opts.Spare = true
	spare, err := ChaosRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Spare = false
	cold, err := ChaosRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range []*RecoveryResult{spare, cold} {
		t.Logf("%s: baseline=%.0f qps ttr=%s restore=%s converge=%s queries=%d failed=%d",
			r.Mode, r.BaselineQPS, r.TimeToRecovered, r.TimeToRestored, r.TimeToConverged, r.Queries, r.Failed)
		if r.Wrong != 0 {
			t.Fatalf("%s: %d queries returned wrong results", r.Mode, r.Wrong)
		}
		if !r.Recovered {
			t.Fatalf("%s: throughput never recovered", r.Mode)
		}
		if r.TimeToRestored == 0 {
			t.Fatalf("%s: full service never restored after the kill", r.Mode)
		}
		if r.TimeToConverged == 0 {
			t.Fatalf("%s: reconciler never reconverged after the kill", r.Mode)
		}
	}
	if spare.Promotions == 0 {
		t.Fatal("spare run repaired without promoting the spare")
	}
	if cold.Revives == 0 {
		t.Fatal("cold run repaired without reviving the node")
	}
	if cold.Promotions != 0 {
		t.Fatal("cold run unexpectedly promoted a spare")
	}
	// The paper's point: flipping subscriptions onto a pre-warmed depot
	// restores full service faster than reviving a node that must
	// catch up and re-warm its depot from shared storage.
	if spare.TimeToRestored >= cold.TimeToRestored {
		t.Errorf("spare promotion restored service in %s, not faster than cold revive (%s)",
			spare.TimeToRestored, cold.TimeToRestored)
	}
}
