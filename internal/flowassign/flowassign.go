// Package flowassign implements participating-subscription selection
// (paper §4.1, Figure 6): choosing, per query session, which subscribing
// node will serve each shard.
//
// The constraints are encoded as a flow network — SOURCE → shard vertices
// (capacity 1) → node vertices (capacity 1 per subscription edge) → SINK —
// and a max flow describes an assignment. Three refinements from the
// paper are implemented:
//
//  1. Successive rounds: node→SINK capacities start at max(S/N, 1) and
//     are incrementally raised, leaving existing flow intact, until the
//     flow reaches the shard count. This yields an assignment with
//     minimal skew even when subscriptions are unbalanced.
//  2. Edge-order variation: the order in which shard→node edges are
//     created is varied by a seed, so repeated selections spread load
//     over equivalent assignments and no node is "full" serving the same
//     shards for every query.
//  3. Priorities: node→SINK edges are added tier by tier (e.g. subcluster
//     members first); lower-priority nodes join the graph only if the
//     preferred tier cannot cover all shards.
package flowassign

import (
	"fmt"
	"math/rand"
	"sort"
)

// Input describes one selection problem.
type Input struct {
	// Shards are the shard indexes that must each be assigned a node.
	Shards []int
	// Nodes are the candidate node names.
	Nodes []string
	// CanServe reports whether a node holds an eligible subscription for
	// a shard.
	CanServe func(node string, shard int) bool
	// Priority maps node name to its tier; lower tiers are preferred and
	// missing entries default to tier 0.
	Priority map[string]int
	// Seed varies the edge creation order (refinement 2).
	Seed int64
}

// Assign selects a serving node for every shard. It returns an error if
// some shard has no eligible node in any tier.
func Assign(in Input) (map[int]string, error) {
	s := len(in.Shards)
	n := len(in.Nodes)
	if s == 0 {
		return map[int]string{}, nil
	}
	if n == 0 {
		return nil, fmt.Errorf("flowassign: no candidate nodes for %d shards", s)
	}

	// Vertex numbering: 0 = source, 1..s = shards, s+1..s+n = nodes,
	// s+n+1 = sink.
	source := 0
	sink := s + n + 1
	g := newGraph(sink + 1)

	rng := rand.New(rand.NewSource(in.Seed))

	for i := range in.Shards {
		g.addEdge(source, 1+i, 1)
	}

	// Shard→node edges in seed-varied order.
	type pair struct{ si, ni int }
	var pairs []pair
	for si, shard := range in.Shards {
		for ni, node := range in.Nodes {
			if in.CanServe(node, shard) {
				pairs = append(pairs, pair{si, ni})
			}
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	for _, p := range pairs {
		g.addEdge(1+p.si, s+1+p.ni, 1)
	}

	// Group nodes into priority tiers.
	tierOf := func(node string) int {
		if in.Priority == nil {
			return 0
		}
		return in.Priority[node]
	}
	tiers := map[int][]int{} // tier -> node indexes
	var tierKeys []int
	for ni, node := range in.Nodes {
		tr := tierOf(node)
		if _, ok := tiers[tr]; !ok {
			tierKeys = append(tierKeys, tr)
		}
		tiers[tr] = append(tiers[tr], ni)
	}
	sort.Ints(tierKeys)

	baseCap := s / n
	if baseCap < 1 {
		baseCap = 1
	}

	flow := 0
	sinkEdge := map[int]int{} // node index -> edge id of its node→SINK edge
	for _, tr := range tierKeys {
		// Add this tier's node→SINK edges (refinement 3).
		for _, ni := range tiers[tr] {
			sinkEdge[ni] = g.addEdge(s+1+ni, sink, baseCap)
		}
		flow += g.maxflow(source, sink)
		// Successive capacity rounds within the available tiers
		// (refinement 1). Each round raises every present node's sink
		// capacity by one and pushes any newly-possible flow.
		for round := 0; flow < s && round < s; round++ {
			for ni := range sinkEdge {
				g.edges[sinkEdge[ni]].cap++
			}
			add := g.maxflow(source, sink)
			if add == 0 {
				break
			}
			flow += add
		}
		if flow == s {
			break
		}
	}
	if flow < s {
		// Identify an uncovered shard for the error message.
		for si, shard := range in.Shards {
			if !g.shardAssigned(1+si, s, n) {
				return nil, fmt.Errorf("flowassign: shard %d has no available subscriber", shard)
			}
		}
		return nil, fmt.Errorf("flowassign: incomplete assignment (%d of %d shards)", flow, s)
	}

	out := make(map[int]string, s)
	for si, shard := range in.Shards {
		ni, ok := g.assignedNode(1+si, s, n)
		if !ok {
			return nil, fmt.Errorf("flowassign: internal: shard %d unassigned despite full flow", shard)
		}
		out[shard] = in.Nodes[ni]
	}
	return out, nil
}

// edge is one directed edge with a paired reverse edge at id^1.
type edge struct {
	to   int
	cap  int
	flow int
}

// graph is a Dinic's-algorithm max-flow network.
type graph struct {
	edges []edge
	adj   [][]int
	level []int
	iter  []int
}

func newGraph(n int) *graph {
	return &graph{adj: make([][]int, n), level: make([]int, n), iter: make([]int, n)}
}

// addEdge inserts a forward edge (returning its id) and its reverse.
func (g *graph) addEdge(from, to, capacity int) int {
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: to, cap: capacity})
	g.adj[from] = append(g.adj[from], id)
	g.edges = append(g.edges, edge{to: from, cap: 0})
	g.adj[to] = append(g.adj[to], id+1)
	return id
}

func (g *graph) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int{s}
	g.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.adj[v] {
			e := &g.edges[id]
			if e.cap-e.flow > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *graph) dfs(v, t, f int) int {
	if v == t {
		return f
	}
	for ; g.iter[v] < len(g.adj[v]); g.iter[v]++ {
		id := g.adj[v][g.iter[v]]
		e := &g.edges[id]
		if e.cap-e.flow <= 0 || g.level[e.to] != g.level[v]+1 {
			continue
		}
		d := g.dfs(e.to, t, min(f, e.cap-e.flow))
		if d > 0 {
			e.flow += d
			g.edges[id^1].flow -= d
			return d
		}
	}
	return 0
}

// maxflow pushes as much additional flow as possible from s to t,
// preserving existing flow, and returns the increment.
func (g *graph) maxflow(s, t int) int {
	total := 0
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, 1<<30)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// assignedNode returns the node index receiving flow from shard vertex sv.
func (g *graph) assignedNode(sv, s, n int) (int, bool) {
	for _, id := range g.adj[sv] {
		e := g.edges[id]
		if e.flow > 0 && e.to >= s+1 && e.to <= s+n {
			return e.to - s - 1, true
		}
	}
	return 0, false
}

func (g *graph) shardAssigned(sv, s, n int) bool {
	_, ok := g.assignedNode(sv, s, n)
	return ok
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
