module eon

go 1.22
