package udfs

import (
	"context"
	"errors"
	"testing"

	"eon/internal/objstore"
)

// fsImpls returns one of each FileSystem implementation for table-driven
// tests.
func fsImpls(t *testing.T) map[string]FileSystem {
	t.Helper()
	return map[string]FileSystem{
		"mem":    NewMemFS(),
		"os":     NewOSFS(t.TempDir()),
		"object": NewObjectFS(objstore.NewMem()),
	}
}

func TestWriteReadAllImpls(t *testing.T) {
	ctx := context.Background()
	for name, fs := range fsImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := fs.WriteFile(ctx, "dir/file.bin", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			got, err := fs.ReadFile(ctx, "dir/file.bin")
			if err != nil || string(got) != "payload" {
				t.Fatalf("read = %q, %v", got, err)
			}
		})
	}
}

func TestNoOverwriteAllImpls(t *testing.T) {
	ctx := context.Background()
	for name, fs := range fsImpls(t) {
		t.Run(name, func(t *testing.T) {
			fs.WriteFile(ctx, "f", []byte("1"))
			if err := fs.WriteFile(ctx, "f", []byte("2")); err == nil {
				t.Error("overwrite should fail — files are immutable")
			}
		})
	}
}

func TestReadAtAllImpls(t *testing.T) {
	ctx := context.Background()
	for name, fs := range fsImpls(t) {
		t.Run(name, func(t *testing.T) {
			fs.WriteFile(ctx, "f", []byte("0123456789"))
			got, err := fs.ReadAt(ctx, "f", 2, 3)
			if err != nil || string(got) != "234" {
				t.Fatalf("readat = %q, %v", got, err)
			}
			got, err = fs.ReadAt(ctx, "f", 8, -1)
			if err != nil || string(got) != "89" {
				t.Fatalf("readat to EOF = %q, %v", got, err)
			}
		})
	}
}

func TestListPrefixAllImpls(t *testing.T) {
	ctx := context.Background()
	for name, fs := range fsImpls(t) {
		t.Run(name, func(t *testing.T) {
			fs.WriteFile(ctx, "a/1", []byte("x"))
			fs.WriteFile(ctx, "a/2", []byte("xy"))
			fs.WriteFile(ctx, "b/1", []byte("z"))
			infos, err := fs.List(ctx, "a/")
			if err != nil || len(infos) != 2 {
				t.Fatalf("list = %v, %v", infos, err)
			}
			if infos[0].Path != "a/1" || infos[1].Size != 2 {
				t.Errorf("list contents = %v", infos)
			}
		})
	}
}

func TestRemoveAllImpls(t *testing.T) {
	ctx := context.Background()
	for name, fs := range fsImpls(t) {
		t.Run(name, func(t *testing.T) {
			fs.WriteFile(ctx, "f", []byte("v"))
			if err := fs.Remove(ctx, "f"); err != nil {
				t.Fatal(err)
			}
			if err := fs.Remove(ctx, "f"); err != nil {
				t.Errorf("removing missing file should be nil, got %v", err)
			}
			if _, err := fs.ReadFile(ctx, "f"); !errors.Is(err, ErrNotFound) {
				t.Errorf("want ErrNotFound, got %v", err)
			}
		})
	}
}

func TestExistsHelper(t *testing.T) {
	ctx := context.Background()
	fs := NewMemFS()
	fs.WriteFile(ctx, "abc", []byte("v"))
	ok, err := Exists(ctx, fs, "abc")
	if err != nil || !ok {
		t.Error("abc should exist")
	}
	if ok, _ := Exists(ctx, fs, "ab"); ok {
		t.Error("prefix must not count as existence")
	}
}

func TestMemFSTotalBytes(t *testing.T) {
	ctx := context.Background()
	fs := NewMemFS()
	fs.WriteFile(ctx, "a", make([]byte, 7))
	fs.WriteFile(ctx, "b", make([]byte, 3))
	if fs.TotalBytes() != 10 {
		t.Errorf("total = %d", fs.TotalBytes())
	}
}

func TestMemFSCopySemantics(t *testing.T) {
	ctx := context.Background()
	fs := NewMemFS()
	src := []byte("abc")
	fs.WriteFile(ctx, "f", src)
	src[0] = 'z'
	got, _ := fs.ReadFile(ctx, "f")
	if string(got) != "abc" {
		t.Error("write must copy input")
	}
}

func TestObjectFSNotFoundMapping(t *testing.T) {
	fs := NewObjectFS(objstore.NewMem())
	_, err := fs.ReadFile(context.Background(), "missing")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("want udfs.ErrNotFound, got %v", err)
	}
}

func TestOSFSPathEscapePrevented(t *testing.T) {
	ctx := context.Background()
	fs := NewOSFS(t.TempDir())
	// Path traversal must stay inside the root.
	if err := fs.WriteFile(ctx, "../../etc/evil", []byte("x")); err != nil {
		t.Fatalf("sanitized write failed: %v", err)
	}
	infos, _ := fs.List(ctx, "")
	if len(infos) != 1 {
		t.Fatalf("list = %v", infos)
	}
	for _, in := range infos {
		if len(in.Path) > 0 && in.Path[0] == '.' {
			t.Errorf("escaped path: %q", in.Path)
		}
	}
}
