package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eon/internal/catalog"
	"eon/internal/core"
	"eon/internal/netsim"
	"eon/internal/objstore"
	"eon/internal/reconcile"
	"eon/internal/types"
)

// RecoveryOptions configures one chaos-recovery measurement.
type RecoveryOptions struct {
	// Spare provisions one warm spare before the failure; false measures
	// the cold-revive path (the spec declares no spare pool).
	Spare bool
	// Workers is the number of concurrent query streams (default 8).
	Workers int
	// Rows sizes the dataset (default 8000; every row carries padding so
	// re-warming a depot moves real bytes).
	Rows int
	// Window is the throughput bucket width (default 50ms).
	Window time.Duration
	// Warmup runs the workload before the kill (default 800ms).
	Warmup time.Duration
	// Post keeps measuring after the kill (default 3s).
	Post time.Duration
	// RecoverFrac is the fraction of baseline throughput that counts as
	// recovered, sustained for two consecutive windows (default 0.7).
	RecoverFrac float64
}

// RecoveryResult is one measured kill-and-recover run.
type RecoveryResult struct {
	// Mode is "spare" or "cold".
	Mode string
	// BaselineQPS is the pre-kill steady-state throughput.
	BaselineQPS float64
	// Recovered reports whether throughput returned to
	// RecoverFrac×baseline within the post-kill window.
	Recovered bool
	// TimeToRecovered is kill-to-recovered-throughput.
	TimeToRecovered time.Duration
	// TimeToRestored is kill-to-full-service: the first moment the
	// subcluster is back to size with every member's subscriptions
	// ACTIVE. This is where promotion (one catalog flip onto a
	// pre-warmed depot) and cold revive (catch-up, re-subscription,
	// peer warm over shared storage) genuinely differ.
	TimeToRestored time.Duration
	// TimeToConverged is kill-to-Converged as reported by the reconciler.
	TimeToConverged time.Duration
	// Queries/Failed/Wrong count worker outcomes; Wrong must be 0.
	Queries, Failed, Wrong int64
	// Promotions and Revives are the reconciler's repair actions.
	Promotions, Revives int64
}

func (o *RecoveryOptions) defaults() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Rows <= 0 {
		o.Rows = 8000
	}
	if o.Window <= 0 {
		o.Window = 50 * time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = 800 * time.Millisecond
	}
	if o.Post <= 0 {
		o.Post = 3 * time.Second
	}
	if o.RecoverFrac <= 0 {
		o.RecoverFrac = 0.7
	}
}

// ChaosRecovery kills a node (instance loss: process and depot both
// gone) in the middle of a sustained query workload and measures how
// long throughput takes to return, with the reconciler driving the
// repair. With a warm spare the repair is a subscription flip onto a
// pre-warmed depot (§6.1); without one the reconciler revives the dead
// node, which must re-warm its depot from peers over shared storage —
// the difference is the experiment.
func ChaosRecovery(opts RecoveryOptions) (*RecoveryResult, error) {
	opts.defaults()
	mode := "cold"
	if opts.Spare {
		mode = "spare"
	}
	res := &RecoveryResult{Mode: mode}

	// Slower-than-default shared storage: depot rebuilds move real bytes
	// at S3-ish cost, so the warm-before vs warm-after asymmetry shows.
	sim := objstore.NewSim(objstore.NewMem(), objstore.SimConfig{
		GetLatency:     5 * time.Millisecond,
		PutLatency:     time.Millisecond,
		ListLatency:    500 * time.Microsecond,
		BytesPerSecond: 32 << 20,
		Seed:           7,
	})
	db, err := core.Create(core.Config{
		Mode:       core.ModeEon,
		Nodes:      nodeSpecs(3),
		ShardCount: 6,
		Shared:     sim,
		// A slower interconnect than the default experiment net: repair
		// traffic (metadata transfer, peer depot warm) moves real bytes,
		// which is exactly what a promoted spare pre-paid.
		Net: netsim.New(netsim.LinkCost{
			Latency:   200 * time.Microsecond,
			Bandwidth: 128 << 20,
		}),
		ExecSlots:  4,
		QueryCost:  2 * time.Millisecond,
		WOSMaxRows: 256, // loads land in ROS so depot warmth matters
	})
	if err != nil {
		return nil, err
	}

	wantSum, err := loadRecoverySales(db, opts.Rows)
	if err != nil {
		return nil, err
	}
	// Warm the member depots to steady state before measuring.
	for i := 0; i < 3; i++ {
		if _, err := countRows(db, "sales"); err != nil {
			return nil, err
		}
	}

	spec := reconcile.ClusterSpec{
		Subclusters: []reconcile.SubclusterSpec{{Name: "", Size: 3}},
	}
	if opts.Spare {
		spec.Spares = 1
	}
	rec := reconcile.New(db, reconcile.Config{
		Spec:     spec,
		Interval: 5 * time.Millisecond,
	})
	// Converge before the chaos starts (provisions the warm spare).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	preOK := false
	for i := 0; i < 80 && !preOK; i++ {
		preOK = rec.Tick(ctx).Code == reconcile.Converged
	}
	if !preOK {
		return nil, fmt.Errorf("experiments: reconciler did not converge pre-kill: %v", rec.Status().Reasons)
	}
	go rec.Run(ctx)

	// Sustained workload; every completion is timestamped and verified.
	var mu sync.Mutex
	var completions []time.Time
	var failed, wrong atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := s.Query(`SELECT COUNT(*), SUM(sale_id) FROM sales`)
				if err != nil {
					failed.Add(1)
					continue
				}
				row := r.Batch.Row(0)
				if row[0].I != int64(opts.Rows) || row[1].I != wantSum {
					wrong.Add(1)
					continue
				}
				now := time.Now()
				mu.Lock()
				completions = append(completions, now)
				mu.Unlock()
			}
		}()
	}

	time.Sleep(opts.Warmup)
	kill := time.Now()
	killRound := rec.Status().Round
	if err := db.WipeNode("node2"); err != nil {
		close(stop)
		wg.Wait()
		return nil, err
	}

	// Watch for full service: subcluster back to size with every up
	// member's subscriptions ACTIVE. A promoted spare gets there in one
	// catalog flip; a revived node only after catch-up and peer warm.
	var restoredAt atomic.Int64 // ns since kill, 0 = not yet
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			if serviceRestored(db, 3) {
				restoredAt.Store(int64(time.Since(kill)))
				return
			}
		}
	}()

	// Watch for the post-kill reconvergence. A repair can complete within
	// a single round (the status never shows Progressing between polls),
	// so reconvergence is the first Converged status from a round that
	// provably started after the kill: a round in flight at kill time has
	// number killRound+1 at most, so require killRound+2.
	var convergedAt atomic.Int64 // ns since kill, 0 = not yet
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			st := rec.Status()
			if st.Code == reconcile.Converged && st.Round >= killRound+2 {
				convergedAt.Store(int64(time.Since(kill)))
				return
			}
		}
	}()

	time.Sleep(opts.Post)
	close(stop)
	wg.Wait()
	cancel()

	res.Queries = int64(len(completions))
	res.Failed = failed.Load()
	res.Wrong = wrong.Load()
	res.TimeToRestored = time.Duration(restoredAt.Load())
	res.TimeToConverged = time.Duration(convergedAt.Load())
	res.Promotions = db.Registry().Counter("reconcile.promotions").Value()
	res.Revives = db.Registry().Counter("reconcile.revives").Value()

	countIn := func(from, to time.Time) int {
		n := 0
		for _, c := range completions {
			if !c.Before(from) && c.Before(to) {
				n++
			}
		}
		return n
	}
	// Baseline from the steady back half of the warmup.
	baseSpan := opts.Warmup / 2
	base := countIn(kill.Add(-baseSpan), kill)
	if base == 0 {
		return nil, fmt.Errorf("experiments: no completions in the baseline window")
	}
	res.BaselineQPS = float64(base) / baseSpan.Seconds()
	perWindow := res.BaselineQPS * opts.Window.Seconds()
	threshold := opts.RecoverFrac * perWindow

	// Recovered at the end of the first of two consecutive windows back
	// at threshold throughput.
	nWin := int(opts.Post / opts.Window)
	for i := 0; i+1 < nWin; i++ {
		w0 := countIn(kill.Add(time.Duration(i)*opts.Window), kill.Add(time.Duration(i+1)*opts.Window))
		w1 := countIn(kill.Add(time.Duration(i+1)*opts.Window), kill.Add(time.Duration(i+2)*opts.Window))
		if float64(w0) >= threshold && float64(w1) >= threshold {
			res.Recovered = true
			res.TimeToRecovered = time.Duration(i+1) * opts.Window
			break
		}
	}
	return res, nil
}

// serviceRestored reports whether `size` non-spare members are up with
// every subscription ACTIVE (none pending re-subscription).
func serviceRestored(db *core.DB, size int) bool {
	var snap *catalog.Snapshot
	members := 0
	for _, n := range db.Nodes() {
		if !n.Up() || n.Spare() {
			continue
		}
		members++
		if snap == nil {
			snap = n.Catalog().Snapshot()
		}
		subs := snap.Subscriptions(n.Name())
		if len(subs) == 0 {
			return false
		}
		for _, s := range subs {
			if s.State != catalog.SubActive {
				return false
			}
		}
	}
	return members == size
}

// loadRecoverySales creates the sales table and loads rows with ~256
// bytes of padding each, returning the expected SUM(sale_id).
func loadRecoverySales(db *core.DB, rows int) (int64, error) {
	s := db.NewSession()
	if _, err := s.Execute(`CREATE TABLE sales (sale_id INTEGER, customer VARCHAR, price FLOAT, region VARCHAR)`); err != nil {
		return 0, err
	}
	if _, err := s.Execute(`CREATE PROJECTION sales_p1 AS SELECT * FROM sales ORDER BY sale_id SEGMENTED BY HASH(sale_id) ALL NODES`); err != nil {
		return 0, err
	}
	pad := make([]byte, 256)
	for i := range pad {
		pad[i] = 'x'
	}
	schema := types.Schema{
		{Name: "sale_id", Type: types.Int64},
		{Name: "customer", Type: types.Varchar},
		{Name: "price", Type: types.Float64},
		{Name: "region", Type: types.Varchar},
	}
	var wantSum int64
	const chunk = 1000
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		batch := types.NewBatch(schema, hi-lo)
		for i := lo; i < hi; i++ {
			batch.AppendRow(types.Row{
				types.NewInt(int64(i + 1)),
				types.NewString(string(pad)),
				types.NewFloat(1),
				types.NewString("east"),
			})
			wantSum += int64(i + 1)
		}
		if err := db.LoadRows("sales", batch); err != nil {
			return 0, err
		}
	}
	return wantSum, nil
}
