package obs

import (
	"encoding/json"
	"net/http"
	"sort"
)

// Handler serves every published registry, expvar-style: JSON by
// default, aligned text with ?format=text. Mounted by cmd/eon-bench
// when -metrics is given.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snaps := Gather()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			names := make([]string, 0, len(snaps))
			for name := range snaps {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				w.Write([]byte("== " + name + " ==\n"))
				w.Write([]byte(snaps[name].Text()))
				w.Write([]byte("\n"))
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, err := json.MarshalIndent(snaps, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(b)
	})
}
