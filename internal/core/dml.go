package core

import (
	"fmt"

	"eon/internal/catalog"
	"eon/internal/expr"
	"eon/internal/sql"
	"eon/internal/storage"
	"eon/internal/types"
)

// Delete removes rows matching the predicate by writing delete vectors —
// tombstones stored in the column-file format; the underlying files are
// never modified (§2.3, §4.5). It returns the number of deleted rows.
func (db *DB) Delete(stmt *sql.Delete) (int64, error) {
	return db.deleteWhere(stmt.Table, stmt.Where, nil)
}

// Update models UPDATE as a delete followed by an insert of the modified
// rows (§2.3).
func (db *DB) Update(stmt *sql.Update) (int64, error) {
	init, err := db.anyUpNode()
	if err != nil {
		return 0, err
	}
	snap := init.catalog.Snapshot()
	tbl, ok := snap.TableByName(stmt.Table)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", stmt.Table)
	}
	// Bind SET expressions against the table schema.
	setIdx := make([]int, len(stmt.Set))
	for i, sc := range stmt.Set {
		idx := tbl.Columns.ColumnIndex(sc.Column)
		if idx < 0 {
			return 0, fmt.Errorf("core: unknown column %q", sc.Column)
		}
		setIdx[i] = idx
		if err := expr.Bind(sc.Value, tbl.Columns); err != nil {
			return 0, err
		}
	}
	reinsert := types.NewBatch(tbl.Columns, 0)
	n, err := db.deleteWhere(stmt.Table, stmt.Where, func(row types.Row) error {
		updated := row.Clone()
		for i, sc := range stmt.Set {
			v, err := expr.EvalRow(sc.Value, row)
			if err != nil {
				return err
			}
			cv, err := coerceDatum(v, tbl.Columns[setIdx[i]].Type)
			if err != nil {
				return err
			}
			updated[setIdx[i]] = cv
		}
		reinsert.AppendRow(updated)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if reinsert.NumRows() > 0 {
		if err := db.LoadRows(tbl.Name, reinsert); err != nil {
			return n, err
		}
	}
	return n, nil
}

// deleteWhere finds matching rows in every projection of the table and
// commits delete vectors for them. onRow, when set, receives each
// deleted row in table-column order (for UPDATE re-insertion) exactly
// once.
func (db *DB) deleteWhere(tableName string, where expr.Expr, onRow func(types.Row) error) (int64, error) {
	init, err := db.anyUpNode()
	if err != nil {
		return 0, err
	}
	ctx := db.Context()
	txn := init.catalog.Begin()
	snap := txn.Base()
	tbl, ok := snap.TableByName(tableName)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", tableName)
	}
	projs := snap.ProjectionsOf(tbl.OID)
	if tableHasLiveAggregate(projs) {
		// The paper's trade-off (§2.1): live aggregates restrict how the
		// base table can be updated.
		return 0, fmt.Errorf("core: table %q has a live aggregate projection; DELETE/UPDATE are not supported", tbl.Name)
	}
	var deletedTotal, wosDeleted int64
	rowsCaptured := false

	for _, p := range projs {
		projSchema := projectionSchema(tbl, p.Columns)
		// Bind the predicate against this projection's schema.
		var pred expr.Expr
		if where != nil {
			pred = clonePredicate(where)
			if err := expr.Bind(pred, projSchema); err != nil {
				return 0, fmt.Errorf("core: DELETE predicate: %w", err)
			}
		}
		captureHere := !rowsCaptured && onRow != nil && len(p.Columns) == len(tbl.Columns) && p.BuddyOffset == 0

		// Enterprise: matching rows buffered in a node's WOS are removed
		// in place (the WOS is volatile memory; §2.3).
		if db.mode == ModeEnterprise {
			for _, n := range db.Nodes() {
				if !n.Up() || n.wos == nil {
					continue
				}
				removed, err := n.wos.RemoveWhere(p.OID, func(row types.Row) (bool, error) {
					if pred == nil {
						return true, nil
					}
					v, err := expr.EvalRow(pred, row)
					if err != nil {
						return false, err
					}
					return !v.Null && v.B, nil
				})
				if err != nil {
					return 0, err
				}
				if removed == nil {
					continue
				}
				if captureHere {
					deletedTotal += int64(removed.NumRows())
					for i := 0; i < removed.NumRows(); i++ {
						full := make(types.Row, len(tbl.Columns))
						for pj, cname := range p.Columns {
							ti := tbl.Columns.ColumnIndex(cname)
							full[ti] = removed.Cols[pj].Datum(i)
						}
						if err := onRow(full); err != nil {
							return 0, err
						}
					}
				} else if onRow == nil && p.BuddyOffset == 0 {
					wosDeleted += int64(removed.NumRows())
				}
			}
		}

		for _, sc := range snap.ContainersOf(p.OID, catalog.GlobalShard) {
			node := db.nodeForStorage(sc)
			if node == nil {
				return 0, fmt.Errorf("core: no node can read container %d", sc.OID)
			}
			fetch := db.fetchFunc(node, false)
			rows, err := storage.ReadColumns(ctx, sc, projSchema, fetch, db.scanConc())
			if err != nil {
				return 0, err
			}
			// Existing deletes must not be double-deleted.
			var dvLists [][]int64
			for _, dv := range snap.DeleteVectorsOf(sc.OID) {
				if db.mode == ModeEnterprise && dv.OwnerNode != node.name {
					continue
				}
				data, err := fetch(ctx, dv.File.Path)
				if err != nil {
					return 0, err
				}
				positions, err := storage.ReadDeleteVector(data)
				if err != nil {
					return 0, err
				}
				dvLists = append(dvLists, positions)
			}
			existing := storage.NewDeleteSet(dvLists...)

			var positions []int64
			for i := 0; i < rows.NumRows(); i++ {
				if existing.Contains(int64(i)) {
					continue
				}
				if pred != nil {
					v, err := expr.EvalRow(pred, rows.Row(i))
					if err != nil {
						return 0, err
					}
					if v.Null || !v.B {
						continue
					}
				}
				positions = append(positions, int64(i))
				if captureHere {
					full := make(types.Row, len(tbl.Columns))
					for pj, cname := range p.Columns {
						ti := tbl.Columns.ColumnIndex(cname)
						full[ti] = rows.Cols[pj].Datum(i)
					}
					if err := onRow(full); err != nil {
						return 0, err
					}
				}
			}
			if len(positions) == 0 {
				continue
			}
			owner := ""
			if db.mode == ModeEnterprise {
				owner = sc.OwnerNode
			}
			dv, data := storage.NewDeleteVectorMeta(init.catalog, node.inst, sc, positions, owner)
			if err := db.persistFiles(ctx, node, map[string][]byte{dv.File.Path: data}, sc.ShardIndex, db.neverCacheTable(tbl.Name)); err != nil {
				return 0, err
			}
			txn.Put(dv)
			if captureHere {
				deletedTotal += int64(len(positions))
			}
		}
		if captureHere {
			rowsCaptured = true
		}
	}
	if onRow != nil && !rowsCaptured {
		return 0, fmt.Errorf("core: UPDATE requires a projection containing every column of %q", tbl.Name)
	}
	// When not capturing rows, count deletions from the first base
	// projection's delete vectors staged in this transaction plus rows
	// removed from WOS buffers.
	if onRow == nil {
		deletedTotal = countStagedDeletes(txn, projs) + wosDeleted
	}
	if !txn.Pending() {
		return deletedTotal, nil
	}
	_, err = db.commit(init, txn, nil)
	if err != nil {
		return 0, err
	}
	return deletedTotal, nil
}

// countStagedDeletes sums the staged delete-vector counts of the first
// base projection.
func countStagedDeletes(txn *catalog.Txn, projs []*catalog.Projection) int64 {
	var base *catalog.Projection
	for _, p := range projs {
		if p.BuddyOffset == 0 {
			base = p
			break
		}
	}
	if base == nil {
		return 0
	}
	var n int64
	for _, oid := range txn.StagedOIDs() {
		o, ok := txn.Get(oid)
		if !ok {
			continue
		}
		if dv, ok := o.(*catalog.DeleteVector); ok && dv.ProjOID == base.OID {
			n += dv.Count
		}
	}
	return n
}

// clonePredicate deep-copies a predicate AST (Bind mutates nodes).
func clonePredicate(e expr.Expr) expr.Expr {
	return expr.Clone(e)
}
