package systable

import (
	"strings"
	"testing"
	"time"

	"eon/internal/obs"
	"eon/internal/types"
)

func testDef(name string) *Def {
	return &Def{
		Name:    name,
		Columns: types.Schema{{Name: "v", Type: types.Int64}},
		Fill: func() (*types.Batch, error) {
			b := types.NewBatch(types.Schema{{Name: "v", Type: types.Int64}}, 1)
			b.AppendRow(types.Row{types.NewInt(7)})
			return b, nil
		},
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(testDef("public.t")); err == nil {
		t.Error("registering outside v_monitor succeeded")
	}
	if err := r.Register(&Def{Name: "v_monitor.t"}); err == nil {
		t.Error("registering without columns/fill succeeded")
	}
	if err := r.Register(testDef("v_monitor.t")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testDef("v_monitor.t")); err == nil {
		t.Error("duplicate registration succeeded")
	}
	// Names are case-insensitive on lookup and synthesized handles carry
	// OID 0 (virtual tables live outside the transactional catalog).
	tbl, ok := r.LookupVirtual("V_MONITOR.T")
	if !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if tbl.OID != 0 {
		t.Errorf("virtual table OID = %d, want 0", tbl.OID)
	}
	if _, ok := r.LookupVirtual("v_monitor.missing"); ok {
		t.Error("lookup of unregistered table succeeded")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "v_monitor.t" {
		t.Errorf("Names() = %v", got)
	}
}

func TestFillNormalizes(t *testing.T) {
	r := NewRegistry()
	cols := types.Schema{{Name: "v", Type: types.Int64}}
	if err := r.Register(&Def{
		Name: "v_monitor.empty", Columns: cols,
		Fill: func() (*types.Batch, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	b, err := r.Fill("v_monitor.empty")
	if err != nil {
		t.Fatal(err)
	}
	if b == nil || b.NumRows() != 0 || len(b.Cols) != 1 {
		t.Fatalf("nil fill not normalized to an empty batch: %+v", b)
	}
	if err := r.Register(&Def{
		Name: "v_monitor.bad", Columns: cols,
		Fill: func() (*types.Batch, error) {
			return types.NewBatch(types.Schema{
				{Name: "a", Type: types.Int64}, {Name: "b", Type: types.Int64},
			}, 0), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fill("v_monitor.bad"); err == nil {
		t.Error("column-count mismatch not rejected")
	}
	if _, err := r.Fill("v_monitor.missing"); err == nil {
		t.Error("fill of unknown table succeeded")
	}
}

func TestDCDefSchemaAndFill(t *testing.T) {
	dc := obs.NewDataCollector(obs.DCPolicy{})
	ring := dc.Ring(obs.DCRingDef{
		Name: "widgets", ACol: "path", BCol: "outcome", VCols: []string{"bytes", "wait_ns"},
	})
	before := time.Now().UnixMicro()
	ring.Emit(obs.DCEvent{Node: "n1", A: "/a", B: "hit", V1: 10, V2: 20})
	ring.Emit(obs.DCEvent{Node: "n2", A: "/b", B: "miss", V1: 30, V2: 40})

	d := DCDef(ring)
	if d.Name != "v_monitor.dc_widgets" {
		t.Errorf("table name = %q", d.Name)
	}
	wantCols := []string{"time", "node", "path", "outcome", "bytes", "wait_ns"}
	if len(d.Columns) != len(wantCols) {
		t.Fatalf("columns = %v", d.Columns)
	}
	for i, c := range d.Columns {
		if c.Name != wantCols[i] {
			t.Errorf("column %d = %q, want %q", i, c.Name, wantCols[i])
		}
	}
	b, err := d.Fill()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", b.NumRows())
	}
	// Events come back oldest-first with their values mapped per column.
	row := b.Row(0)
	if row[1].S != "n1" || row[2].S != "/a" || row[3].S != "hit" || row[4].I != 10 || row[5].I != 20 {
		t.Errorf("row 0 = %v", row)
	}
	if ts := row[0].I; ts < before || ts > time.Now().UnixMicro() {
		t.Errorf("timestamp %d outside test window", ts)
	}

	// A ring without string columns omits them from the schema.
	bare := DCDef(dc.Ring(obs.DCRingDef{Name: "bare", VCols: []string{"v"}}))
	if len(bare.Columns) != 3 { // time, node, v
		t.Errorf("bare columns = %v", bare.Columns)
	}
}

func TestMetricsDef(t *testing.T) {
	snap := obs.Snapshot{
		Counters:   map[string]int64{"b.count": 2, "a.count": 1},
		Gauges:     map[string]int64{"g": -5},
		Histograms: map[string]HistStatsAlias{"h": {Count: 3, Sum: 30, Max: 20, P50: 10, P95: 19, P99: 20}},
	}
	d := MetricsDef(func() obs.Snapshot { return snap })
	b, err := d.Fill()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", b.NumRows())
	}
	// Counters first (sorted), then gauges, then histograms.
	r0, r2, r3 := b.Row(0), b.Row(2), b.Row(3)
	if r0[0].S != "a.count" || r0[1].S != "counter" || r0[2].I != 1 {
		t.Errorf("row 0 = %v", r0)
	}
	if !r0[3].Null {
		t.Error("counter row has a non-null histogram column")
	}
	if r2[0].S != "g" || r2[1].S != "gauge" || r2[2].I != -5 {
		t.Errorf("gauge row = %v", r2)
	}
	if r3[0].S != "h" || r3[1].S != "histogram" || !r3[2].Null || r3[3].I != 3 || r3[7].I != 19 {
		t.Errorf("histogram row = %v", r3)
	}
}

// HistStatsAlias keeps the test readable; the map literal above needs
// the element type spelled once.
type HistStatsAlias = obs.HistStats

func TestProfileRows(t *testing.T) {
	p := &obs.Profile{
		Name: "query", Wall: 100, RowsOut: 5,
		Children: []*obs.Profile{
			{Name: "scan:t", Wall: 60, RowsOut: 5, Children: []*obs.Profile{
				{Name: "fragment:n1", Wall: 50, Bytes: 640},
			}},
			{Name: "plan", Wall: 10},
		},
	}
	b := types.NewBatch(ProfileSchema(), 0)
	ProfileRows(b, "session:9", 3, p)
	if b.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", b.NumRows())
	}
	paths := []string{"query", "query/scan:t", "query/scan:t/fragment:n1", "query/plan"}
	depths := []int64{0, 1, 2, 1}
	for i := 0; i < b.NumRows(); i++ {
		row := b.Row(i)
		if row[0].S != "session:9" || row[1].I != 3 {
			t.Errorf("row %d origin/seq = %v/%v", i, row[0].S, row[1].I)
		}
		if row[2].S != paths[i] || row[4].I != depths[i] {
			t.Errorf("row %d path=%q depth=%d, want %q/%d", i, row[2].S, row[4].I, paths[i], depths[i])
		}
		if !strings.HasSuffix(row[2].S, row[3].S) {
			t.Errorf("row %d path %q does not end in operator %q", i, row[2].S, row[3].S)
		}
	}
	// A nil profile appends nothing.
	ProfileRows(b, "x", 0, nil)
	if b.NumRows() != 4 {
		t.Error("nil profile appended rows")
	}
}
