package reconcile_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"eon/internal/core"
	"eon/internal/reconcile"
	"eon/internal/types"
)

// newDB builds an Eon cluster with n unnamed-subcluster members.
func newDB(t *testing.T, n, shards int) *core.DB {
	t.Helper()
	var specs []core.NodeSpec
	for i := 0; i < n; i++ {
		specs = append(specs, core.NodeSpec{Name: fmt.Sprintf("node%d", i+1)})
	}
	db, err := core.Create(core.Config{
		Mode:       core.ModeEon,
		Nodes:      specs,
		ShardCount: shards,
		WOSMaxRows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// loadSales creates the sales table and loads sale_id = 1..rows, then
// runs one query so the member depots are warm.
func loadSales(t *testing.T, db *core.DB, rows int) {
	t.Helper()
	s := db.NewSession()
	if _, err := s.Execute(`CREATE TABLE sales (sale_id INTEGER, customer VARCHAR, price FLOAT, region VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`CREATE PROJECTION sales_p1 AS SELECT * FROM sales ORDER BY sale_id SEGMENTED BY HASH(sale_id) ALL NODES`); err != nil {
		t.Fatal(err)
	}
	batch := types.NewBatch(types.Schema{
		{Name: "sale_id", Type: types.Int64},
		{Name: "customer", Type: types.Varchar},
		{Name: "price", Type: types.Float64},
		{Name: "region", Type: types.Varchar},
	}, rows)
	for i := 0; i < rows; i++ {
		batch.AppendRow(types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString("c"),
			types.NewFloat(1),
			types.NewString("east"),
		})
	}
	if err := db.LoadRows("sales", batch); err != nil {
		t.Fatal(err)
	}
	checkSales(t, db, rows)
}

// checkSales asserts COUNT and SUM are exact for sale_id = 1..rows.
func checkSales(t *testing.T, db *core.DB, rows int) {
	t.Helper()
	res, err := db.NewSession().Query(`SELECT COUNT(*), SUM(sale_id) FROM sales`)
	if err != nil {
		t.Fatalf("verification query: %v", err)
	}
	row := res.Batch.Row(0)
	want := int64(rows) * int64(rows+1) / 2
	if row[0].I != int64(rows) || row[1].I != want {
		t.Fatalf("got COUNT=%d SUM=%d, want %d/%d", row[0].I, row[1].I, rows, want)
	}
}

// converge ticks until Converged, failing on Blocked or exhaustion.
func converge(t *testing.T, r *reconcile.Reconciler, rounds int) reconcile.Status {
	t.Helper()
	var st reconcile.Status
	for i := 0; i < rounds; i++ {
		st = r.Tick(context.Background())
		switch st.Code {
		case reconcile.Converged:
			return st
		case reconcile.Blocked:
			t.Fatalf("round %d blocked: %v", i+1, st.Reasons)
		}
		time.Sleep(2 * time.Millisecond) // let cross-round backoff expire
	}
	t.Fatalf("not converged after %d rounds: %s %v (pending %d)",
		rounds, st.Code, st.Reasons, st.Pending)
	return st
}

// The acceptance scenario: a reconciler converges from three different
// perturbations — node death (spare promotion path), a scale-up spec
// change, and node removal via spec shrink — with exact query results
// after each.
func TestReconcileConverges(t *testing.T) {
	db := newDB(t, 3, 3)
	loadSales(t, db, 60)

	spec := reconcile.ClusterSpec{
		Subclusters: []reconcile.SubclusterSpec{{Name: "", Size: 3}},
		Spares:      1,
	}
	r := reconcile.New(db, reconcile.Config{Spec: spec})

	// Initial convergence provisions the warm spare.
	converge(t, r, 20)
	if got := db.Spares(); len(got) != 1 {
		t.Fatalf("spares after initial convergence: %v", got)
	}
	spare := db.Spares()[0]
	if n, _ := db.Node(spare); n.Cache().Stats().BytesCached == 0 {
		t.Fatal("provisioned spare depot is cold")
	}

	// Perturbation 1: instance loss (node dies with its depot). The
	// reconciler must promote the warm spare, remove the husk, and
	// provision a replacement spare.
	if err := db.WipeNode("node2"); err != nil {
		t.Fatal(err)
	}
	converge(t, r, 40)
	checkSales(t, db, 60)
	if n, ok := db.Node(spare); !ok || n.Spare() {
		t.Fatalf("spare %s was not promoted", spare)
	}
	if _, ok := db.Node("node2"); ok {
		t.Fatal("dead node2 not removed")
	}
	if got := db.Spares(); len(got) != 1 || got[0] == spare {
		t.Fatalf("replacement spare not provisioned: %v", got)
	}
	if len(db.UpNodes()) != 4 { // 3 members + 1 spare
		t.Fatalf("up nodes = %v", db.UpNodes())
	}

	// Perturbation 2: scale-up spec change.
	spec.Subclusters[0].Size = 5
	r.SetSpec(spec)
	converge(t, r, 40)
	checkSales(t, db, 60)
	members := 0
	for _, n := range db.Nodes() {
		if n.Up() && !n.Spare() {
			members++
		}
	}
	if members != 5 {
		t.Fatalf("members after scale-up = %d, want 5", members)
	}

	// Perturbation 3: node removal via spec shrink.
	spec.Subclusters[0].Size = 3
	r.SetSpec(spec)
	converge(t, r, 40)
	checkSales(t, db, 60)
	members = 0
	for _, n := range db.Nodes() {
		if n.Up() && !n.Spare() {
			members++
		}
	}
	if members != 3 {
		t.Fatalf("members after shrink = %d, want 3", members)
	}
	if db.IsShutdown() {
		t.Fatal("cluster shut down during reconciliation")
	}

	// The whole run was traced: the last round left a clean profile.
	if p := r.LastProfile(); p == nil || p.Dangling != 0 {
		t.Fatalf("round profile = %+v", p)
	}
}

// A reconcile sequence abandoned mid-flight (crash model) must be
// resumable by a brand-new reconciler: every round re-derives the plan
// from observed state, so no step depends on in-memory progress.
func TestReconcileIdempotentReentry(t *testing.T) {
	db := newDB(t, 3, 3)
	loadSales(t, db, 40)

	spec := reconcile.ClusterSpec{
		Subclusters: []reconcile.SubclusterSpec{{Name: "", Size: 3}},
		Spares:      1,
	}
	// One action per round, so the kill recovery spans several rounds.
	r1 := reconcile.New(db, reconcile.Config{Spec: spec, MaxActionsPerRound: 1})
	converge(t, r1, 30)

	if err := db.WipeNode("node3"); err != nil {
		t.Fatal(err)
	}
	// Execute exactly one step of the recovery (the spare promotion),
	// then "crash" — drop the reconciler on the floor.
	st := r1.Tick(context.Background())
	if st.Code != reconcile.Progressing || st.Pending == 0 {
		t.Fatalf("expected partial progress, got %s pending=%d", st.Code, st.Pending)
	}

	// A fresh reconciler (no memory of r1) finishes the job.
	r2 := reconcile.New(db, reconcile.Config{Spec: spec, MaxActionsPerRound: 1})
	converge(t, r2, 40)
	checkSales(t, db, 40)
	if _, ok := db.Node("node3"); ok {
		t.Fatal("dead node3 not removed after re-entry")
	}
	if got := db.Spares(); len(got) != 1 {
		t.Fatalf("spare pool after re-entry: %v", got)
	}
}

// An action that keeps failing must flip the status to Blocked with a
// reason, and a spec change that removes the impossible demand must
// clear the blockage.
func TestReconcileBlocked(t *testing.T) {
	db, err := core.Create(core.Config{
		Mode:  core.ModeEnterprise,
		Nodes: []core.NodeSpec{{Name: "node1"}, {Name: "node2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Spares are Eon-only: this spec is impossible in Enterprise mode.
	r := reconcile.New(db, reconcile.Config{
		Spec: reconcile.ClusterSpec{
			Subclusters: []reconcile.SubclusterSpec{{Name: "", Size: 2}},
			Spares:      1,
		},
		FailThreshold: 2,
		BackoffBase:   time.Millisecond,
	})
	var st reconcile.Status
	for i := 0; i < 20; i++ {
		st = r.Tick(context.Background())
		if st.Code == reconcile.Blocked {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Code != reconcile.Blocked {
		t.Fatalf("status = %s, want Blocked", st.Code)
	}
	if len(st.Reasons) == 0 {
		t.Fatal("Blocked status carries no reason")
	}

	// Dropping the impossible demand un-blocks the reconciler.
	r.SetSpec(reconcile.ClusterSpec{
		Subclusters: []reconcile.SubclusterSpec{{Name: "", Size: 2}},
	})
	converge(t, r, 10)
}

// A shut-down cluster reports Blocked rather than planning actions.
func TestReconcileShutdownBlocked(t *testing.T) {
	db := newDB(t, 2, 2)
	r := reconcile.New(db, reconcile.Config{Spec: reconcile.ClusterSpec{
		Subclusters: []reconcile.SubclusterSpec{{Name: "", Size: 2}},
	}})
	if err := db.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if st := r.Tick(context.Background()); st.Code != reconcile.Blocked {
		t.Fatalf("status on shut-down cluster = %s, want Blocked", st.Code)
	}
}

// Autoscale: queue pressure grows the subcluster up to Max; sustained
// idleness shrinks it back to Min with settle-round hysteresis.
func TestReconcileAutoscale(t *testing.T) {
	var specs []core.NodeSpec
	for i := 0; i < 2; i++ {
		specs = append(specs, core.NodeSpec{Name: fmt.Sprintf("node%d", i+1)})
	}
	db, err := core.Create(core.Config{
		Mode:       core.ModeEon,
		Nodes:      specs,
		ShardCount: 4,
		ExecSlots:  2, // small slot pool so a burst of queries queues
		QueryCost:  20 * time.Millisecond,
		WOSMaxRows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadSales(t, db, 40)

	r := reconcile.New(db, reconcile.Config{
		Spec: reconcile.ClusterSpec{
			Subclusters: []reconcile.SubclusterSpec{{Name: "", Size: 2}},
			Autoscale: &reconcile.AutoscalePolicy{
				Subcluster:   "",
				Min:          2,
				Max:          4,
				QueueHigh:    2,
				QueueLow:     0,
				SettleRounds: 2,
			},
		},
	})
	converge(t, r, 10)

	// Pile up more concurrent queries than the cluster has exec slots.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Query(`SELECT COUNT(*) FROM sales`); err != nil {
					return
				}
			}
		}()
	}
	// Tick under load until the reconciler has scaled up.
	grew := false
	for i := 0; i < 200 && !grew; i++ {
		r.Tick(context.Background())
		members := 0
		for _, n := range db.Nodes() {
			if n.Up() && !n.Spare() {
				members++
			}
		}
		grew = members > 2
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !grew {
		t.Fatal("autoscaler never grew the subcluster under queue pressure")
	}

	// Idle: the reconciler shrinks back to Min and converges there.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := r.Tick(context.Background())
		members := 0
		for _, n := range db.Nodes() {
			if n.Up() && !n.Spare() {
				members++
			}
		}
		if members == 2 && st.Code == reconcile.Converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never shrank back to Min: members=%d status=%s %v", members, st.Code, st.Reasons)
		}
		time.Sleep(2 * time.Millisecond)
	}
	checkSales(t, db, 40)
}
