package objstore

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"eon/internal/obs"
)

// SimConfig tunes the shared-storage simulator. Zero values disable each
// effect, so `Sim{Backend: NewMem()}` behaves like a plain in-memory store.
type SimConfig struct {
	// GetLatency etc. are the fixed per-request service times, modeling
	// the higher access latency of shared storage (§5 property 1).
	GetLatency    time.Duration
	PutLatency    time.Duration
	ListLatency   time.Duration
	DeleteLatency time.Duration
	// BytesPerSecond is the per-request transfer bandwidth; 0 means
	// infinite.
	BytesPerSecond float64
	// FailureRate is the probability in [0,1) that a request fails with
	// ErrTransient before doing any work ("any filesystem access can and
	// will fail", §5.3).
	FailureRate float64
	// ThrottleConcurrency caps in-flight requests; excess requests fail
	// immediately with ErrThrottled (S3 SlowDown). 0 means unlimited.
	ThrottleConcurrency int
	// Seed makes failure injection deterministic.
	Seed int64
	// Faults is an optional deterministic fault schedule layered on top
	// of the probabilistic knobs above (timed failure windows, per-prefix
	// rates, throttle bursts, latency spikes).
	Faults *FaultSchedule
}

// Costs is the request pricing used for cost accounting, loosely modeled
// on S3 pricing: PUT/LIST are an order of magnitude more expensive than
// GET ("requests cost money", §5.3).
type Costs struct {
	PerGet      float64
	PerPut      float64
	PerList     float64
	PerDelete   float64
	PerGBStored float64
}

// DefaultCosts approximates 2018 S3 request pricing in USD.
func DefaultCosts() Costs {
	return Costs{
		PerGet:    0.0000004,
		PerPut:    0.000005,
		PerList:   0.000005,
		PerDelete: 0,
	}
}

// Stats counts simulator traffic.
type Stats struct {
	Gets, Puts, Lists, Deletes int64
	BytesRead, BytesWritten    int64
	Throttled, Failed          int64
}

// RequestCostUSD prices the request counts under c.
func (s Stats) RequestCostUSD(c Costs) float64 {
	return float64(s.Gets)*c.PerGet + float64(s.Puts)*c.PerPut +
		float64(s.Lists)*c.PerList + float64(s.Deletes)*c.PerDelete
}

// Sim wraps a backend Store with the shared-storage behaviour model.
// It is safe for concurrent use.
type Sim struct {
	backend Store
	cfg     SimConfig

	mu  sync.Mutex
	rng *rand.Rand

	inflight chan struct{}

	ops atomic.Int64 // global request index for Faults

	// Traffic counters are monotonic for the life of the Sim (that is what
	// a metrics registry sees); Stats()/ResetStats() derive a resettable
	// view by subtracting a baseline captured under statsMu.
	gets, puts, lists, deletes obs.Counter
	bytesRead, bytesWritten    obs.Counter
	throttled, failed          obs.Counter
	getNS, putNS               obs.Histogram

	statsMu  sync.Mutex
	baseline Stats
}

// NewSim wraps backend with the given configuration.
func NewSim(backend Store, cfg SimConfig) *Sim {
	s := &Sim{backend: backend, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.ThrottleConcurrency > 0 {
		s.inflight = make(chan struct{}, cfg.ThrottleConcurrency)
	}
	return s
}

// read takes a raw snapshot of the monotonic counters. Byte counters are
// read before request counters: each operation increments its request
// counter before its byte counter, so a snapshot can never show more
// bytes than its request counts account for.
func (s *Sim) read() Stats {
	br, bw := s.bytesRead.Value(), s.bytesWritten.Value()
	return Stats{
		Gets: s.gets.Value(), Puts: s.puts.Value(),
		Lists: s.lists.Value(), Deletes: s.deletes.Value(),
		BytesRead: br, BytesWritten: bw,
		Throttled: s.throttled.Value(), Failed: s.failed.Value(),
	}
}

// Stats returns a snapshot of traffic counters since the last ResetStats.
func (s *Sim) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	cur := s.read()
	b := s.baseline
	return Stats{
		Gets: cur.Gets - b.Gets, Puts: cur.Puts - b.Puts,
		Lists: cur.Lists - b.Lists, Deletes: cur.Deletes - b.Deletes,
		BytesRead: cur.BytesRead - b.BytesRead, BytesWritten: cur.BytesWritten - b.BytesWritten,
		Throttled: cur.Throttled - b.Throttled, Failed: cur.Failed - b.Failed,
	}
}

// ResetStats zeroes the Stats() view. The underlying counters stay
// monotonic — the reset captures a baseline rather than storing zeros,
// so concurrent Stats() readers can never observe a torn half-reset
// (some counters zeroed, others not).
func (s *Sim) ResetStats() {
	s.statsMu.Lock()
	s.baseline = s.read()
	s.statsMu.Unlock()
}

// Instrument registers the simulator's counters, request-latency
// histograms, and a derived request-cost gauge (in nano-USD, priced at
// DefaultCosts) into reg under the "objstore." prefix. Registry values
// are monotonic: ResetStats affects only the Stats() view.
func (s *Sim) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("objstore.gets", &s.gets)
	reg.RegisterCounter("objstore.puts", &s.puts)
	reg.RegisterCounter("objstore.lists", &s.lists)
	reg.RegisterCounter("objstore.deletes", &s.deletes)
	reg.RegisterCounter("objstore.bytes_read", &s.bytesRead)
	reg.RegisterCounter("objstore.bytes_written", &s.bytesWritten)
	reg.RegisterCounter("objstore.throttled", &s.throttled)
	reg.RegisterCounter("objstore.failed", &s.failed)
	reg.RegisterHistogram("objstore.get_ns", &s.getNS)
	reg.RegisterHistogram("objstore.put_ns", &s.putNS)
	reg.GaugeFunc("objstore.request_cost_nano_usd", func() int64 {
		return int64(s.read().RequestCostUSD(DefaultCosts()) * 1e9)
	})
}

// begin applies throttling and failure injection for a request on key;
// it returns a release function and any scheduled extra latency, or an
// error if the request was rejected. The fault schedule is consulted
// before the probabilistic knobs so chaos runs stay deterministic.
func (s *Sim) begin(key string) (func(), time.Duration, error) {
	var verdict Verdict
	if s.cfg.Faults != nil {
		verdict = s.cfg.Faults.Eval(s.ops.Add(1)-1, key)
	}
	if verdict.Throttle {
		s.throttled.Add(1)
		return nil, 0, ErrThrottled
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
		default:
			s.throttled.Add(1)
			return nil, 0, ErrThrottled
		}
	}
	release := func() {
		if s.inflight != nil {
			<-s.inflight
		}
	}
	fail := verdict.Fail
	if !fail && s.cfg.FailureRate > 0 {
		s.mu.Lock()
		fail = s.rng.Float64() < s.cfg.FailureRate
		s.mu.Unlock()
	}
	if fail {
		release()
		s.failed.Add(1)
		return nil, 0, ErrTransient
	}
	return release, verdict.ExtraLatency, nil
}

// wait simulates service time for a request moving n payload bytes.
func (s *Sim) wait(ctx context.Context, base time.Duration, n int64) error {
	d := base
	if s.cfg.BytesPerSecond > 0 && n > 0 {
		d += time.Duration(float64(n) / s.cfg.BytesPerSecond * float64(time.Second))
	}
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// Put implements Store. The request and its payload bytes are counted at
// request start — a canceled or failed upload is still billed, matching
// S3 billing semantics.
func (s *Sim) Put(ctx context.Context, key string, data []byte) error {
	release, extra, err := s.begin(key)
	if err != nil {
		return err
	}
	defer release()
	start := time.Now()
	defer func() { s.putNS.ObserveDuration(time.Since(start)) }()
	s.puts.Add(1)
	s.bytesWritten.Add(int64(len(data)))
	if err := s.wait(ctx, s.cfg.PutLatency+extra, int64(len(data))); err != nil {
		return err
	}
	return s.backend.Put(ctx, key, data)
}

// Get implements Store. The request is counted as soon as it reaches the
// backend and its bytes as soon as the object size is known, before the
// service-time wait — a request canceled mid-transfer is still billed.
func (s *Sim) Get(ctx context.Context, key string) ([]byte, error) {
	release, extra, err := s.begin(key)
	if err != nil {
		return nil, err
	}
	defer release()
	start := time.Now()
	defer func() { s.getNS.ObserveDuration(time.Since(start)) }()
	s.gets.Add(1)
	data, err := s.backend.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	s.bytesRead.Add(int64(len(data)))
	if err := s.wait(ctx, s.cfg.GetLatency+extra, int64(len(data))); err != nil {
		return nil, err
	}
	return data, nil
}

// GetRange implements Store. Counting follows Get.
func (s *Sim) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	release, extra, err := s.begin(key)
	if err != nil {
		return nil, err
	}
	defer release()
	start := time.Now()
	defer func() { s.getNS.ObserveDuration(time.Since(start)) }()
	s.gets.Add(1)
	data, err := s.backend.GetRange(ctx, key, offset, length)
	if err != nil {
		return nil, err
	}
	s.bytesRead.Add(int64(len(data)))
	if err := s.wait(ctx, s.cfg.GetLatency+extra, int64(len(data))); err != nil {
		return nil, err
	}
	return data, nil
}

// List implements Store. The request is counted at request start.
func (s *Sim) List(ctx context.Context, prefix string) ([]Info, error) {
	release, extra, err := s.begin(prefix)
	if err != nil {
		return nil, err
	}
	defer release()
	s.lists.Add(1)
	if err := s.wait(ctx, s.cfg.ListLatency+extra, 0); err != nil {
		return nil, err
	}
	return s.backend.List(ctx, prefix)
}

// Delete implements Store. The request is counted at request start.
func (s *Sim) Delete(ctx context.Context, key string) error {
	release, extra, err := s.begin(key)
	if err != nil {
		return err
	}
	defer release()
	s.deletes.Add(1)
	if err := s.wait(ctx, s.cfg.DeleteLatency+extra, 0); err != nil {
		return err
	}
	return s.backend.Delete(ctx, key)
}
