package expr

import "strings"

// likeShape classifies a compiled LIKE pattern so common shapes match
// with a single strings call instead of the general wildcard walk.
type likeShape uint8

const (
	// likeExact: no wildcards at all — plain string equality.
	likeExact likeShape = iota
	// likePrefix: "abc%" — match by prefix.
	likePrefix
	// likeSuffix: "%abc" — match by suffix.
	likeSuffix
	// likeContains: "%abc%" — match by substring search.
	likeContains
	// likeAny: "%", "%%", ... — matches everything.
	likeAny
	// likeGeneral: anything else (interior %, multiple runs, _) — handled
	// by the iterative two-pointer walk.
	likeGeneral
)

// likeMatcher is a compiled LIKE pattern. Compilation is O(len(pattern))
// and matching is O(len(s) * len(pattern)) worst case — never the
// exponential blow-up the old recursive matcher hit on patterns like
// "%a%a%a%…a".
type likeMatcher struct {
	shape   likeShape
	lit     string // the literal for exact/prefix/suffix/contains shapes
	pattern string // the raw pattern for the general walk
}

// compileLike builds a matcher for a LIKE pattern with % (any run of
// bytes) and _ (any single byte) wildcards.
func compileLike(pattern string) likeMatcher {
	if strings.IndexByte(pattern, '_') < 0 {
		first := strings.IndexByte(pattern, '%')
		switch {
		case first < 0:
			return likeMatcher{shape: likeExact, lit: pattern}
		case strings.Count(pattern, "%") == len(pattern):
			// Only percent signs.
			return likeMatcher{shape: likeAny}
		case first == 0 && pattern[len(pattern)-1] == '%' &&
			strings.IndexByte(pattern[1:len(pattern)-1], '%') < 0:
			return likeMatcher{shape: likeContains, lit: pattern[1 : len(pattern)-1]}
		case first == 0 && strings.IndexByte(pattern[1:], '%') < 0:
			return likeMatcher{shape: likeSuffix, lit: pattern[1:]}
		case first == len(pattern)-1:
			return likeMatcher{shape: likePrefix, lit: pattern[:len(pattern)-1]}
		}
	}
	return likeMatcher{shape: likeGeneral, pattern: pattern}
}

// match reports whether s matches the compiled pattern.
func (m likeMatcher) match(s string) bool {
	switch m.shape {
	case likeExact:
		return s == m.lit
	case likePrefix:
		return strings.HasPrefix(s, m.lit)
	case likeSuffix:
		return strings.HasSuffix(s, m.lit)
	case likeContains:
		return strings.Contains(s, m.lit)
	case likeAny:
		return true
	}
	return likeWalk(s, m.pattern)
}

// likeWalk is the general matcher: a two-pointer walk that remembers the
// most recent % and, on mismatch, restarts just past the position that %
// last absorbed. Each restart advances the string pointer, so the walk is
// O(len(s) * len(p)) worst case.
func likeWalk(s, p string) bool {
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && p[pi] == '%':
			starP, starS = pi, si
			pi++
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case starP >= 0:
			starS++
			si, pi = starS, starP+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
