package reconcile

import (
	"context"
	"fmt"
	"time"

	"eon/internal/core"
	"eon/internal/obs"
)

// ActionKind identifies one reconcile operation. The declaration order
// is the execution priority: restoring service (promote, revive) beats
// growing it (add), which beats shard repair (rebalance), spare-pool
// upkeep, and cleanup (remove) — so a bounded round always spends its
// budget on the most urgent work first.
type ActionKind uint8

// Action kinds in priority order.
const (
	ActPromoteSpare ActionKind = iota
	ActRevive
	ActAddNode
	ActAddSpare
	ActWarmSpare
	ActRebalance
	ActRemoveNode
)

// String names the kind.
func (k ActionKind) String() string {
	switch k {
	case ActPromoteSpare:
		return "promote-spare"
	case ActRevive:
		return "revive"
	case ActAddNode:
		return "add-node"
	case ActAddSpare:
		return "add-spare"
	case ActWarmSpare:
		return "warm-spare"
	case ActRebalance:
		return "rebalance"
	case ActRemoveNode:
		return "remove-node"
	}
	return "?"
}

// Action is one planned step toward the spec.
type Action struct {
	Kind       ActionKind
	Node       string
	Subcluster string
	// Reason says why the diff planned it, in operator terms.
	Reason string
}

// key identifies the action for failure tracking across rounds.
func (a Action) key() string { return a.Kind.String() + "/" + a.Node }

func (a Action) describe() string {
	if a.Node == "" {
		return fmt.Sprintf("%s (%s)", a.Kind, a.Reason)
	}
	return fmt.Sprintf("%s %s (%s)", a.Kind, a.Node, a.Reason)
}

// ActionResult records one executed action.
type ActionResult struct {
	Action Action
	// Err is the final error message, "" on success.
	Err string
}

// act executes up to MaxActionsPerRound actions from the plan, skipping
// any that are still backing off from earlier failures. Each action
// runs under the in-round retry policy; an action that still fails gets
// exponential cross-round backoff and, past FailThreshold, flips the
// status to Blocked. Called with r.mu held.
func (r *Reconciler) act(ctx context.Context, plan []Action, span *obs.Span) []ActionResult {
	var results []ActionResult
	now := time.Now()
	ran := 0
	for _, a := range plan {
		if ran >= r.cfg.MaxActionsPerRound {
			break
		}
		if fs, ok := r.fails[a.key()]; ok && now.Before(fs.next) {
			continue // backing off; the diff will re-plan it next round
		}
		ran++
		r.mActions.Inc()
		as := span.StartSpan(a.Kind.String())
		actStart := time.Now()
		err := r.cfg.Retry.Do(ctx, nil, func(ctx context.Context) error {
			return r.execute(a)
		})
		as.End()
		r.db.EmitReconcileAction(a.Node, a.Kind.String(), a.Reason,
			r.round, err == nil, time.Since(actStart))
		res := ActionResult{Action: a}
		if err != nil {
			res.Err = err.Error()
			r.mErrors.Inc()
			fs := r.fails[a.key()]
			if fs == nil {
				fs = &failState{}
				r.fails[a.key()] = fs
			}
			fs.count++
			fs.last = err.Error()
			fs.next = now.Add(backoff(r.cfg.BackoffBase, r.cfg.BackoffMax, fs.count))
		} else {
			delete(r.fails, a.key())
			r.countSuccess(a.Kind)
		}
		results = append(results, res)
	}
	return results
}

// execute dispatches one action to the database.
func (r *Reconciler) execute(a Action) error {
	switch a.Kind {
	case ActPromoteSpare:
		return r.db.PromoteSpare(a.Node, a.Subcluster)
	case ActRevive:
		return r.db.RecoverNode(a.Node)
	case ActAddNode:
		return r.db.AddNode(core.NodeSpec{Name: a.Node, Subcluster: a.Subcluster})
	case ActAddSpare:
		return r.db.AddSpare(core.NodeSpec{Name: a.Node, Subcluster: a.Subcluster})
	case ActWarmSpare:
		_, err := r.db.WarmSpare(a.Node)
		return err
	case ActRebalance:
		return r.db.RebalanceTo(r.effectiveRF())
	case ActRemoveNode:
		return r.db.RemoveNode(a.Node)
	}
	return fmt.Errorf("reconcile: unknown action kind %d", a.Kind)
}

func (r *Reconciler) countSuccess(k ActionKind) {
	switch k {
	case ActPromoteSpare:
		r.mPromote.Inc()
	case ActRevive:
		r.mRevive.Inc()
	case ActAddNode:
		r.mAdd.Inc()
	case ActAddSpare:
		r.mSpareAdd.Inc()
	case ActWarmSpare:
		r.mSpareWarm.Inc()
	case ActRebalance:
		r.mRebalance.Inc()
	case ActRemoveNode:
		r.mRemove.Inc()
	}
}

// backoff is BackoffBase doubled per consecutive failure, capped.
func backoff(base, max time.Duration, count int) time.Duration {
	d := base
	for i := 1; i < count && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}
