// Package storage builds and reads ROS containers and delete vectors on
// behalf of the engine: globally unique storage identifiers (paper §5.1,
// Figure 7), the hash-prefixed flat namespace used on shared storage
// (§5.3), per-column file construction with stats, optional bundling of
// small columns, and the tombstone delete-vector format (§2.3).
package storage

import (
	"context"
	"fmt"

	"eon/internal/catalog"
	"eon/internal/cluster"
	"eon/internal/parallel"
	"eon/internal/rosfile"
	"eon/internal/types"
)

// DefaultBundleThreshold is the total byte size under which a container's
// columns are concatenated into a single bundle file (§2.3: "if the
// column data is small, Vertica concatenates multiple column files
// together to reduce the overall file count").
const DefaultBundleThreshold = 64 << 10

// SID is a globally unique storage identifier: the node's 120-bit random
// instance id plus a 64-bit local object id (Figure 7). Nodes create SIDs
// without coordinating, and cloned clusters still produce distinct names.
func SID(inst cluster.InstanceID, localOID catalog.OID) string {
	return fmt.Sprintf("%s_%016x", inst, uint64(localOID))
}

// DataPath places a storage file in the shared flat namespace. The
// leading characters of the (random) instance id act as the hash-based
// prefix that spreads load across object-store servers (§5.3).
func DataPath(sid, column string) string {
	return fmt.Sprintf("data/%s/%s_%s", sid[:2], sid, column)
}

// BundlePath is the path of a bundled (single-file) container.
func BundlePath(sid string) string {
	return fmt.Sprintf("data/%s/%s_bundle", sid[:2], sid)
}

// InstancePrefix returns the namespace prefix of all files created by an
// instance under a given two-character fanout directory; used by the
// leaked-file scrub to skip files of running instances (§6.5).
func InstancePrefix(inst cluster.InstanceID) string {
	return fmt.Sprintf("data/%s/%s_", string(inst)[:2], inst)
}

// OIDAllocator mints catalog OIDs; *catalog.Catalog satisfies it.
type OIDAllocator interface {
	NewOID() catalog.OID
}

// WriteSpec describes the container being built.
type WriteSpec struct {
	Projection *catalog.Projection
	// Schema is the projection's column schema, in projection column
	// order; the batch's columns must align with it.
	Schema types.Schema
	// ShardIndex is the segment shard owning every tuple, or
	// catalog.ReplicaShard for replicated projections.
	ShardIndex int
	// PartitionKey tags the container with its table-partition value.
	PartitionKey string
	// OwnerNode is set in Enterprise mode only.
	OwnerNode string
	// BundleThreshold overrides DefaultBundleThreshold; <0 disables
	// bundling.
	BundleThreshold int64
	// CreateVersion stamps the catalog version for mergeout bookkeeping.
	CreateVersion uint64
}

// BuiltContainer is the result of BuildContainer: catalog metadata plus
// the file images to persist. The caller writes the files (cache +
// shared storage) before committing the metadata — files always precede
// commit (§2.4, §4.5).
type BuiltContainer struct {
	Meta  *catalog.StorageContainer
	Files map[string][]byte
}

// BuildContainer sorts the batch by the projection sort key, encodes each
// column into the ROS format, computes column stats, and returns the
// container metadata and file images. An empty batch yields nil.
func BuildContainer(alloc OIDAllocator, inst cluster.InstanceID, spec WriteSpec, batch *types.Batch) (*BuiltContainer, error) {
	if batch == nil || batch.NumRows() == 0 {
		return nil, nil
	}
	if len(spec.Schema) != batch.NumCols() {
		return nil, fmt.Errorf("storage: schema arity %d != batch arity %d", len(spec.Schema), batch.NumCols())
	}
	// Resolve sort key columns.
	var sortIdx []int
	for _, k := range spec.Projection.SortKey {
		i := spec.Schema.ColumnIndex(k)
		if i < 0 {
			return nil, fmt.Errorf("storage: sort key column %q not in projection schema", k)
		}
		sortIdx = append(sortIdx, i)
	}
	sorted := types.SortBatch(batch, sortIdx)

	oid := alloc.NewOID()
	sid := SID(inst, oid)
	meta := &catalog.StorageContainer{
		OID:           oid,
		ProjOID:       spec.Projection.OID,
		TableOID:      spec.Projection.TableOID,
		ShardIndex:    spec.ShardIndex,
		RowCount:      int64(sorted.NumRows()),
		Files:         map[string]catalog.FileRef{},
		ColStats:      map[string]types.ColumnStats{},
		PartitionKey:  spec.PartitionKey,
		OwnerNode:     spec.OwnerNode,
		CreateVersion: spec.CreateVersion,
	}

	images := make(map[string][]byte, len(spec.Schema))
	var names []string
	var total int64
	for i, col := range spec.Schema {
		isLeadingSort := len(sortIdx) > 0 && sortIdx[0] == i
		img := rosfile.WriteColumn(sorted.Cols[i], rosfile.WriteOptions{Sorted: isLeadingSort})
		images[col.Name] = img
		names = append(names, col.Name)
		total += int64(len(img))
		meta.ColStats[col.Name] = types.StatsOf(sorted.Cols[i])
	}

	threshold := spec.BundleThreshold
	if threshold == 0 {
		threshold = DefaultBundleThreshold
	}
	files := map[string][]byte{}
	if threshold > 0 && total < threshold {
		imgs := make([][]byte, len(names))
		for i, n := range names {
			imgs[i] = images[n]
		}
		bundle, err := rosfile.BuildBundle(names, imgs)
		if err != nil {
			return nil, err
		}
		path := BundlePath(sid)
		files[path] = bundle
		meta.Bundle = catalog.FileRef{Path: path, Size: int64(len(bundle))}
		meta.SizeBytes = int64(len(bundle))
	} else {
		for _, n := range names {
			path := DataPath(sid, n)
			files[path] = images[n]
			meta.Files[n] = catalog.FileRef{Path: path, Size: int64(len(images[n]))}
			meta.SizeBytes += int64(len(images[n]))
		}
	}
	return &BuiltContainer{Meta: meta, Files: files}, nil
}

// FetchFunc reads a storage file by path (through the cache in Eon mode,
// from local disk in Enterprise mode).
type FetchFunc func(ctx context.Context, path string) ([]byte, error)

// OpenColumns returns a rosfile reader per requested column of the
// container. Columns may live in per-column files, a bundle, or a mix
// (side files appear when ALTER TABLE ADD COLUMN extends a bundled
// container). The per-column file fetches (plus the bundle fetch, when
// one is needed) fan out across at most concurrency concurrent requests,
// hiding shared-storage latency on cold scans; concurrency <= 1 fetches
// serially.
func OpenColumns(ctx context.Context, sc *catalog.StorageContainer, cols []string, fetch FetchFunc, concurrency int) (map[string]*rosfile.Reader, error) {
	var perFile []string // column names with their own files, in cols order
	var fromBundle []string
	for _, c := range cols {
		if _, ok := sc.Files[c]; ok {
			perFile = append(perFile, c)
			continue
		}
		if sc.Bundle.Path == "" {
			return nil, fmt.Errorf("storage: container %d has no column %q", sc.OID, c)
		}
		fromBundle = append(fromBundle, c)
	}

	// One fetch job per column file, plus one for the bundle if needed.
	jobs := len(perFile)
	if len(fromBundle) > 0 {
		jobs++
	}
	readers := make([]*rosfile.Reader, len(perFile))
	var bundle *rosfile.Bundle
	err := parallel.ForEach(ctx, jobs, concurrency, func(ctx context.Context, _, i int) error {
		if i == len(perFile) { // the bundle job
			data, err := fetch(ctx, sc.Bundle.Path)
			if err != nil {
				return fmt.Errorf("storage: fetch bundle %s: %w", sc.Bundle.Path, err)
			}
			b, err := rosfile.OpenBundle(data)
			if err != nil {
				return err
			}
			bundle = b
			return nil
		}
		ref := sc.Files[perFile[i]]
		data, err := fetch(ctx, ref.Path)
		if err != nil {
			return fmt.Errorf("storage: fetch %s: %w", ref.Path, err)
		}
		r, err := rosfile.NewReader(data)
		if err != nil {
			return err
		}
		readers[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string]*rosfile.Reader, len(cols))
	for i, c := range perFile {
		out[c] = readers[i]
	}
	for _, c := range fromBundle {
		r, err := bundle.Open(c)
		if err != nil {
			return nil, err
		}
		out[c] = r
	}
	return out, nil
}

// ReadColumns materializes whole columns of a container as a batch in the
// given column order, fetching column files with at most concurrency
// concurrent requests.
func ReadColumns(ctx context.Context, sc *catalog.StorageContainer, schema types.Schema, fetch FetchFunc, concurrency int) (*types.Batch, error) {
	names := schema.Names()
	readers, err := OpenColumns(ctx, sc, names, fetch, concurrency)
	if err != nil {
		return nil, err
	}
	b := &types.Batch{Cols: make([]*types.Vector, len(names))}
	for i, n := range names {
		v, err := readers[n].ReadAll()
		if err != nil {
			return nil, err
		}
		v.Typ = schema[i].Type // restore logical type (Date/Timestamp)
		b.Cols[i] = v
	}
	return b, nil
}
