package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"eon/internal/tuplemover"
)

// TestVMonitorMetricsSQL runs ordinary SQL over v_monitor.metrics and
// checks the values against an obs.Snapshot taken immediately before.
// Only scan.* counters are compared: a monitoring query never scans
// storage, so they cannot move between the snapshot and the fill.
func TestVMonitorMetricsSQL(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	s := db.NewSession()
	mustQuery(t, s, `SELECT COUNT(*) FROM sales WHERE price > 10`)

	snap := db.Metrics()
	res := mustQuery(t, s, `SELECT m.name, m.value FROM v_monitor.metrics m
		WHERE m.kind = 'counter' ORDER BY m.name`)
	got := map[string]int64{}
	for _, row := range res.Rows() {
		got[row[0].S] = row[1].I
	}
	if len(got) != len(snap.Counters) {
		t.Errorf("v_monitor.metrics lists %d counters, snapshot has %d", len(got), len(snap.Counters))
	}
	checked := 0
	for name, want := range snap.Counters {
		if !strings.HasPrefix(name, "scan.") {
			continue
		}
		checked++
		if got[name] != want {
			t.Errorf("%s = %d via SQL, %d via Snapshot", name, got[name], want)
		}
	}
	if checked == 0 {
		t.Fatal("snapshot has no scan.* counters to compare")
	}
	if got["scan.fetches"] != db.ScanStats().Fetches {
		t.Errorf("scan.fetches = %d via SQL, %d via DB.ScanStats", got["scan.fetches"], db.ScanStats().Fetches)
	}

	// Aggregates over the virtual table run through the ordinary
	// executor on both engines.
	for _, rowEngine := range []bool{false, true} {
		s.RowEngine = rowEngine
		res := mustQuery(t, s, `SELECT m.kind, COUNT(*) AS n FROM v_monitor.metrics m GROUP BY m.kind ORDER BY m.kind`)
		if res.NumRows() != 3 { // counter, gauge, histogram
			t.Fatalf("rowEngine=%v: metric kinds = %v", rowEngine, res.Rows())
		}
	}
}

// TestVMonitorDepotTables checks depot_storage and depot_fetches against
// the cache's own stats, and that the dc_depot_fetches ring recorded the
// scan traffic.
func TestVMonitorDepotTables(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	s := db.NewSession()
	mustQuery(t, s, `SELECT COUNT(*) FROM sales`)

	res := mustQuery(t, s, `SELECT d.node, SUM(d.bytes) AS bytes, COUNT(*) AS files
		FROM v_monitor.depot_storage d GROUP BY d.node ORDER BY d.node`)
	if res.NumRows() == 0 {
		t.Fatal("depot_storage is empty after a load and a scan")
	}
	for _, row := range res.Rows() {
		n, ok := db.Node(row[0].S)
		if !ok {
			t.Fatalf("depot_storage lists unknown node %q", row[0].S)
		}
		st := n.cache.Stats()
		if row[1].I != st.BytesCached || row[2].I != int64(st.Files) {
			t.Errorf("%s: SQL says %d bytes / %d files, cache says %d / %d",
				row[0].S, row[1].I, row[2].I, st.BytesCached, st.Files)
		}
	}

	res = mustQuery(t, s, `SELECT f.node, f.hits, f.misses FROM v_monitor.depot_fetches f ORDER BY f.node`)
	if res.NumRows() != 3 {
		t.Fatalf("depot_fetches rows = %d, want one per node", res.NumRows())
	}
	for _, row := range res.Rows() {
		n, _ := db.Node(row[0].S)
		st := n.cache.Stats()
		if row[1].I != st.Hits || row[2].I != st.Misses {
			t.Errorf("%s: SQL says %d/%d, cache says %d/%d", row[0].S, row[1].I, row[2].I, st.Hits, st.Misses)
		}
	}

	res = mustQuery(t, s, `SELECT COUNT(*) FROM v_monitor.dc_depot_fetches`)
	if res.Batch.Cols[0].Ints[0] == 0 {
		t.Error("dc_depot_fetches recorded no events")
	}
	res = mustQuery(t, s, `SELECT e.outcome, COUNT(*) AS n FROM v_monitor.dc_depot_fetches e GROUP BY e.outcome`)
	for _, row := range res.Rows() {
		switch row[0].S {
		case "hit", "miss", "coalesced":
		default:
			t.Errorf("unknown fetch outcome %q", row[0].S)
		}
	}
}

// TestVMonitorCatalogTables checks storage_containers and
// shard_subscriptions against a catalog snapshot.
func TestVMonitorCatalogTables(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	s := db.NewSession()

	res := mustQuery(t, s, `SELECT c.table_name, SUM(c.row_count) AS total_rows
		FROM v_monitor.storage_containers c GROUP BY c.table_name`)
	if res.NumRows() != 1 || res.Rows()[0][0].S != "sales" || res.Rows()[0][1].I != 100 {
		t.Fatalf("storage_containers = %v", res.Rows())
	}

	res = mustQuery(t, s, `SELECT sub.node, COUNT(*) AS shards FROM v_monitor.shard_subscriptions sub
		WHERE sub.state = 'ACTIVE' AND sub.node_up = TRUE GROUP BY sub.node ORDER BY sub.node`)
	if res.NumRows() != 3 {
		t.Fatalf("active subscriptions cover %d nodes, want 3: %v", res.NumRows(), res.Rows())
	}

	res = mustQuery(t, s, `SELECT COUNT(*) FROM v_monitor.sessions`)
	if res.Batch.Cols[0].Ints[0] < 1 {
		t.Error("sessions table does not list the querying session")
	}
}

// TestSessionRingBounded opens more sessions than the ring holds and
// checks both the internal ring and the SQL view stay bounded.
func TestSessionRingBounded(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	for i := 0; i < sessionLogSize+25; i++ {
		db.NewSession()
	}
	if n := len(db.recentSessions()); n != sessionLogSize {
		t.Fatalf("session ring holds %d, want %d", n, sessionLogSize)
	}
	s := db.NewSession() // evicts the oldest; ring stays full
	res := mustQuery(t, s, `SELECT COUNT(*) FROM v_monitor.sessions`)
	if got := res.Batch.Cols[0].Ints[0]; got != sessionLogSize {
		t.Fatalf("v_monitor.sessions rows = %d, want %d", got, sessionLogSize)
	}
}

// TestSlowQueryExecStatsAndRing checks satellite wiring: slow-log
// entries carry ExecStats, the dc_slow_queries ring mirrors them, and
// oversized SQL text is truncated in the ring.
func TestSlowQueryExecStatsAndRing(t *testing.T) {
	db, err := Create(Config{
		Mode:               ModeEon,
		Nodes:              []NodeSpec{{Name: "n1"}, {Name: "n2"}},
		ShardCount:         2,
		SlowQueryThreshold: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 40)
	s := db.NewSession()
	mustQuery(t, s, `SELECT region, COUNT(*) FROM sales GROUP BY region`)

	entries := db.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow-log entries")
	}
	last := entries[len(entries)-1]
	if !last.Exec.Streaming {
		t.Error("slow entry's ExecStats does not record the streaming executor")
	}

	// A statement longer than dcSQLLimit is truncated in the ring but
	// not in the slow log itself.
	long := `SELECT COUNT(*) FROM sales WHERE customer <> '` + strings.Repeat("x", dcSQLLimit) + `'`
	mustQuery(t, s, long)
	if e := db.SlowQueries()[len(db.SlowQueries())-1]; len(e.SQL) <= dcSQLLimit {
		t.Error("slow log truncated the statement; only the ring should")
	}

	res := mustQuery(t, s, `SELECT q.sql, q.wall_ns FROM v_monitor.dc_slow_queries q`)
	if res.NumRows() < 2 {
		t.Fatalf("dc_slow_queries rows = %d, want >= 2", res.NumRows())
	}
	for _, row := range res.Rows() {
		if len(row[0].S) > dcSQLLimit {
			t.Errorf("ring holds %d-byte SQL, limit is %d", len(row[0].S), dcSQLLimit)
		}
		if row[1].I <= 0 {
			t.Errorf("slow query event has wall_ns = %d", row[1].I)
		}
	}
}

// TestDisableDataCollector: with the collector off, emits are no-ops,
// dc_* tables are absent, and the snapshot tables still work.
func TestDisableDataCollector(t *testing.T) {
	db, err := Create(Config{
		Mode:                 ModeEon,
		Nodes:                []NodeSpec{{Name: "n1"}, {Name: "n2"}},
		ShardCount:           2,
		DisableDataCollector: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.DataCollector() != nil {
		t.Fatal("DataCollector() non-nil with DisableDataCollector set")
	}
	setupSales(t, db, 40)
	s := db.NewSession()
	mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if _, err := db.RunMergeout(); err != nil {
		t.Fatal(err)
	}
	for _, name := range db.SystemTables().Names() {
		if strings.HasPrefix(name, "v_monitor.dc_") {
			t.Errorf("dc table %s registered with the collector disabled", name)
		}
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM v_monitor.metrics`)
	if res.Batch.Cols[0].Ints[0] == 0 {
		t.Error("v_monitor.metrics empty")
	}
	if _, err := s.Query(`SELECT COUNT(*) FROM v_monitor.dc_depot_fetches`); err == nil {
		t.Error("querying a dc table succeeded with the collector disabled")
	}
}

// TestSubclusterGauges checks the computed-on-read membership gauges
// across node lifecycle events.
func TestSubclusterGauges(t *testing.T) {
	db, err := Create(Config{
		Mode:       ModeEon,
		Nodes:      []NodeSpec{{Name: "n1"}, {Name: "n2"}, {Name: "n3", Subcluster: "batch"}},
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gauge := func(name string) int64 {
		v, ok := db.Metrics().Gauges[name]
		if !ok {
			t.Fatalf("gauge %s not registered", name)
		}
		return v
	}
	if gauge("subcluster.default.nodes") != 2 || gauge("subcluster.batch.nodes") != 1 {
		t.Fatalf("membership gauges wrong: %v", db.Metrics().Gauges)
	}
	if err := db.KillNode("n2"); err != nil {
		t.Fatal(err)
	}
	if gauge("subcluster.default.up_nodes") != 1 || gauge("subcluster.default.nodes") != 2 {
		t.Error("up_nodes did not track the kill")
	}
	if err := db.AddNode(NodeSpec{Name: "n4", Subcluster: "etl"}); err != nil {
		t.Fatal(err)
	}
	if gauge("subcluster.etl.nodes") != 1 {
		t.Error("AddNode into a new subcluster did not register its gauges")
	}

	// The same values through SQL.
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT m.name, m.value FROM v_monitor.metrics m
		WHERE m.kind = 'gauge' AND m.name = 'subcluster.etl.nodes'`)
	if res.NumRows() != 1 || res.Rows()[0][1].I != 1 {
		t.Fatalf("gauge via SQL = %v", res.Rows())
	}
}

// TestReconcileStatusProvider exercises the provider hook directly (the
// reconcile package installs a real one; core cannot import it).
func TestReconcileStatusProvider(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT COUNT(*) FROM v_monitor.reconcile_status`)
	if res.Batch.Cols[0].Ints[0] != 0 {
		t.Fatal("reconcile_status not empty with no providers")
	}
	db.SetReconcileStatusProvider("test", func() ReconcileStatus {
		return ReconcileStatus{Code: "Progressing", Round: 7, Pending: 2,
			Reasons: []string{"a", "b"}}
	})
	res = mustQuery(t, s, `SELECT r.name, r.code, r.round, r.reasons FROM v_monitor.reconcile_status r`)
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	row := res.Rows()[0]
	if row[0].S != "test" || row[1].S != "Progressing" || row[2].I != 7 || row[3].S != "a; b" {
		t.Fatalf("row = %v", row)
	}
	db.SetReconcileStatusProvider("test", nil)
	res = mustQuery(t, s, `SELECT COUNT(*) FROM v_monitor.reconcile_status`)
	if res.Batch.Cols[0].Ints[0] != 0 {
		t.Error("removing the provider did not clear the table")
	}
}

// TestVMonitorMergeoutAndEvictionRings drives the tuple mover and a
// tiny depot to verify the mergeouts and depot_evictions rings fill.
func TestVMonitorMergeoutAndEvictionRings(t *testing.T) {
	db, err := Create(Config{
		Mode:       ModeEon,
		Nodes:      []NodeSpec{{Name: "n1"}, {Name: "n2"}},
		ShardCount: 2,
		CacheBytes: 4 << 10, // tiny depot so scans evict
		Mergeout:   tuplemover.Policy{FanIn: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 200)
	s := db.NewSession()
	// Single-row inserts land one container each; with fan-in 2 any
	// shard holding two stratum-0 containers plans a job.
	for i := 0; i < 8; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO sales VALUES (%d, 'ada', 1.5, 'east')`, 1001+i))
	}
	if _, err := db.RunMergeout(); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, s, `SELECT m.table_name, m.containers FROM v_monitor.dc_mergeouts m`)
	if res.NumRows() == 0 {
		t.Fatal("dc_mergeouts recorded no jobs")
	}
	for _, row := range res.Rows() {
		if row[0].S != "sales" || row[1].I < 2 {
			t.Errorf("mergeout event = %v", row)
		}
	}
	mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	res = mustQuery(t, s, `SELECT COUNT(*) FROM v_monitor.dc_depot_evictions`)
	if res.Batch.Cols[0].Ints[0] == 0 {
		t.Error("tiny depot produced no eviction events")
	}
}
