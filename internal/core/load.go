package core

import (
	"fmt"
	"time"

	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/expr"
	"eon/internal/flowassign"
	"eon/internal/sql"
	"eon/internal/storage"
	"eon/internal/types"
)

// LoadRows bulk-loads a batch (columns in table order) into a table —
// the COPY path of Figure 8: split the data by projection and shard,
// write files to the cache, flush to shared storage and peers, then
// commit. The commit point is after upload completes (§4.5).
func (db *DB) LoadRows(tableName string, batch *types.Batch) error {
	if batch == nil || batch.NumRows() == 0 {
		return nil
	}
	if err := db.EnsureDefaultProjection(tableName); err != nil {
		return err
	}
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	ctx := db.Context()
	txn := init.catalog.Begin()
	snap := txn.Base()
	tbl, ok := snap.TableByName(tableName)
	if !ok {
		return fmt.Errorf("core: unknown table %q", tableName)
	}
	if batch.NumCols() != len(tbl.Columns) {
		return fmt.Errorf("core: batch arity %d != table arity %d", batch.NumCols(), len(tbl.Columns))
	}
	projs := snap.ProjectionsOf(tbl.OID)

	// Fill flattened columns from their dimension tables before anything
	// else sees the rows ("denormalization using joins at load time",
	// §2.1) — including the WOS path.
	batch, err = db.applyFlattened(snap, tbl, batch)
	if err != nil {
		return err
	}

	// Enterprise small loads buffer in the WOS (§2.3); no storage
	// metadata is created until moveout. Tables with live aggregate
	// projections always take the direct ROS path so partial aggregates
	// are maintained transactionally.
	if db.mode == ModeEnterprise && batch.NumRows() < db.cfg.WOSMaxRows && !tableHasLiveAggregate(projs) {
		return db.loadIntoWOS(tbl, projs, batch)
	}

	// Split by table partition, then per projection by segment shard.
	partitions, err := db.splitByPartition(tbl, batch)
	if err != nil {
		return err
	}

	// Choose writers per shard (Eon): an ACTIVE subscriber per shard.
	writers, err := db.writerAssignment(snap)
	if err != nil {
		return err
	}
	// Ingest occupies one execution slot per written shard on its writer
	// node, so load throughput scales with cluster size the same way
	// query throughput does (§4.2, Figure 11b).
	release := db.acquireLoadSlots(writers)
	defer release()
	// Simulated per-node ingest time, spent while slots are held (see
	// Config.LoadCost).
	if db.cfg.LoadCost > 0 {
		time.Sleep(db.cfg.LoadCost)
	}

	var ships []pendingShip
	var participating []writerShard
	for _, p := range projs {
		ps, pw, err := db.buildProjectionContainers(init, txn, tbl, p, partitions, writers, snap.Version()+1)
		if err != nil {
			return err
		}
		ships = append(ships, ps...)
		participating = append(participating, pw...)
	}

	// Persist all files before commit — "for a committed transaction all
	// the data has been successfully uploaded to shared storage" (§4.5).
	for _, s := range ships {
		if err := db.persistFiles(ctx, s.writer, s.files, s.shard, db.neverCacheTable(tbl.Name)); err != nil {
			return err
		}
	}

	// Commit with the subscription-stability check: if a participating
	// node is no longer subscribed to the shard it wrote, roll back
	// (§4.5).
	_, err = db.commit(init, txn, db.validateWriters(participating))
	return err
}

// pendingShip is a built container's files awaiting persistence.
type pendingShip struct {
	writer *Node
	files  map[string][]byte
	shard  int
}

// buildProjectionContainers splits (already partitioned) table rows into
// one projection's containers: live aggregates are computed, replicated
// projections stored whole, segmented projections split by the shard
// ring, with writers chosen per mode. Used by the load path and by
// flattened-column refresh when rebuilding live aggregates.
func (db *DB) buildProjectionContainers(init *Node, txn *catalog.Txn, tbl *catalog.Table, p *catalog.Projection, partitions map[string]*types.Batch, writers map[int]string, createVersion uint64) ([]pendingShip, []writerShard, error) {
	var ships []pendingShip
	var participating []writerShard
	projSchema := physicalSchema(tbl, p)
	for partKey, partBatch := range partitions {
		var projBatch *types.Batch
		var err error
		if p.IsLiveAggregate() {
			// Maintain the pre-computed partial aggregates (§2.1):
			// aggregate this load's rows by the group columns.
			projBatch, err = aggregateForLiveProjection(p, tbl.Columns, partBatch, false)
		} else {
			projBatch, err = projectBatch(tbl, p.Columns, partBatch)
		}
		if err != nil {
			return nil, nil, err
		}
		if p.Replicated() {
			if db.mode == ModeEnterprise {
				// Every node stores a full copy.
				for _, name := range db.order {
					n := db.nodes[name]
					built, err := storage.BuildContainer(init.catalog, n.inst, storage.WriteSpec{
						Projection: p, Schema: projSchema,
						ShardIndex: catalog.ReplicaShard, PartitionKey: partKey,
						OwnerNode: n.name, BundleThreshold: db.cfg.BundleThreshold,
						CreateVersion: createVersion,
					}, projBatch)
					if err != nil {
						return nil, nil, err
					}
					if built == nil {
						continue
					}
					txn.Put(built.Meta)
					ships = append(ships, pendingShip{writer: n, files: built.Files, shard: catalog.ReplicaShard})
				}
			} else {
				built, err := storage.BuildContainer(init.catalog, init.inst, storage.WriteSpec{
					Projection: p, Schema: projSchema,
					ShardIndex: catalog.ReplicaShard, PartitionKey: partKey,
					BundleThreshold: db.cfg.BundleThreshold,
					CreateVersion:   createVersion,
				}, projBatch)
				if err != nil {
					return nil, nil, err
				}
				if built == nil {
					continue
				}
				txn.Put(built.Meta)
				ships = append(ships, pendingShip{writer: init, files: built.Files, shard: catalog.ReplicaShard})
				participating = append(participating, writerShard{node: init.name, shard: catalog.ReplicaShard})
			}
			continue
		}
		// Segmented: split rows by the shard ring on the projection's
		// segmentation columns.
		segIdx, err := columnPositions(projSchema, p.SegmentCols)
		if err != nil {
			return nil, nil, err
		}
		parts := exec.PartitionByRing(projBatch, segIdx, db.ring)
		for shardIdx, part := range parts {
			if part == nil || part.NumRows() == 0 {
				continue
			}
			var writer *Node
			ownerName := ""
			if db.mode == ModeEnterprise {
				nNodes := len(db.order)
				ownerName = db.order[(shardIdx+p.BuddyOffset)%nNodes]
				w, ok := db.Node(ownerName)
				if !ok || !w.Up() {
					return nil, nil, fmt.Errorf("core: owner node %s for segment %d is down", ownerName, shardIdx)
				}
				writer = w
			} else {
				w, ok := db.Node(writers[shardIdx])
				if !ok || !w.Up() {
					return nil, nil, fmt.Errorf("core: writer for shard %d unavailable", shardIdx)
				}
				writer = w
				participating = append(participating, writerShard{node: writer.name, shard: shardIdx})
			}
			built, err := storage.BuildContainer(init.catalog, writer.inst, storage.WriteSpec{
				Projection: p, Schema: projSchema,
				ShardIndex: shardIdx, PartitionKey: partKey,
				OwnerNode: ownerName, BundleThreshold: db.cfg.BundleThreshold,
				CreateVersion: createVersion,
			}, part)
			if err != nil {
				return nil, nil, err
			}
			if built == nil {
				continue
			}
			txn.Put(built.Meta)
			ships = append(ships, pendingShip{writer: writer, files: built.Files, shard: shardIdx})
		}
	}
	return ships, participating, nil
}

type writerShard struct {
	node  string
	shard int
}

// acquireLoadSlots reserves one slot per (writer, shard) pair atomically;
// Enterprise loads (nil assignment) take one slot per up node since
// every node ingests its segments.
func (db *DB) acquireLoadSlots(writers map[int]string) func() {
	req := map[string]int{}
	if writers == nil {
		for _, n := range db.Nodes() {
			if n.Up() {
				req[n.name] = 1
			}
		}
	} else {
		for _, node := range writers {
			req[node]++
		}
	}
	// Drop requests on nodes that are already down; the load itself will
	// fail cleanly when it reaches them.
	for name := range req {
		if n, ok := db.Node(name); !ok || !n.Up() {
			delete(req, name)
		}
	}
	if !db.slots.acquire(req, func() bool { return !db.shutdown.Load() }) {
		return func() {}
	}
	return func() { db.slots.release(req) }
}

// validateWriters builds the commit-time validation that every writing
// node still subscribes to its shard.
func (db *DB) validateWriters(ws []writerShard) func(*catalog.Snapshot) error {
	if db.mode == ModeEnterprise || len(ws) == 0 {
		return nil
	}
	return func(latest *catalog.Snapshot) error {
		for _, w := range ws {
			ok := false
			for _, s := range latest.SubscribersOf(w.shard) {
				if s.Node == w.node && s.State != catalog.SubRemoving {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("core: node %s unsubscribed from shard %d during load", w.node, w.shard)
			}
		}
		return nil
	}
}

// writerAssignment maps each segment shard to an ACTIVE up subscriber
// for the load (Eon).
func (db *DB) writerAssignment(snap *catalog.Snapshot) (map[int]string, error) {
	if db.mode == ModeEnterprise {
		return nil, nil
	}
	up := db.UpNodes()
	var shards []int
	for i := 0; i < db.cfg.ShardCount; i++ {
		shards = append(shards, i)
	}
	var nodes []string
	for _, n := range snap.Nodes() {
		if up[n.Name] {
			nodes = append(nodes, n.Name)
		}
	}
	canServe := func(node string, shard int) bool {
		for _, s := range snap.SubscribersOf(shard, catalog.SubActive) {
			if s.Node == node {
				return true
			}
		}
		return false
	}
	return flowassign.Assign(flowassign.Input{
		Shards: shards, Nodes: nodes, CanServe: canServe,
		Seed: db.cfg.Seed + db.seedCtr.Add(1),
	})
}

// loadIntoWOS buffers small Enterprise loads in node WOS memory.
func (db *DB) loadIntoWOS(tbl *catalog.Table, projs []*catalog.Projection, batch *types.Batch) error {
	for _, p := range projs {
		projSchema := projectionSchema(tbl, p.Columns)
		projBatch, err := projectBatch(tbl, p.Columns, batch)
		if err != nil {
			return err
		}
		if p.Replicated() {
			for _, name := range db.order {
				n := db.nodes[name]
				if n.Up() {
					n.wos.Insert(p.OID, projSchema, projBatch)
				}
			}
			continue
		}
		segIdx, err := columnPositions(projSchema, p.SegmentCols)
		if err != nil {
			return err
		}
		parts := exec.PartitionByRing(projBatch, segIdx, db.ring)
		for shardIdx, part := range parts {
			if part == nil || part.NumRows() == 0 {
				continue
			}
			owner := db.order[(shardIdx+p.BuddyOffset)%len(db.order)]
			n, ok := db.Node(owner)
			if !ok || !n.Up() {
				return fmt.Errorf("core: WOS owner %s down", owner)
			}
			n.wos.Insert(p.OID, projSchema, part)
		}
	}
	return nil
}

// splitByPartition groups rows by the table's partition expression
// (paper §2.1: any given file contains data from only one partition).
func (db *DB) splitByPartition(tbl *catalog.Table, batch *types.Batch) (map[string]*types.Batch, error) {
	if tbl.PartitionExpr == "" {
		return map[string]*types.Batch{"": batch}, nil
	}
	pe, err := sql.ParseExpr(tbl.PartitionExpr)
	if err != nil {
		return nil, fmt.Errorf("core: partition expression: %w", err)
	}
	if err := expr.Bind(pe, tbl.Columns); err != nil {
		return nil, err
	}
	groups := map[string][]int{}
	n := batch.NumRows()
	for i := 0; i < n; i++ {
		v, err := expr.EvalRow(pe, batch.Row(i))
		if err != nil {
			return nil, err
		}
		key := v.String()
		groups[key] = append(groups[key], i)
	}
	out := make(map[string]*types.Batch, len(groups))
	for key, idx := range groups {
		out[key] = batch.Gather(idx)
	}
	return out, nil
}

// projectBatch reorders table-ordered columns into projection order.
func projectBatch(tbl *catalog.Table, cols []string, batch *types.Batch) (*types.Batch, error) {
	out := &types.Batch{Cols: make([]*types.Vector, len(cols))}
	for i, c := range cols {
		idx := tbl.Columns.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("core: projection column %q missing from table", c)
		}
		out.Cols[i] = batch.Cols[idx]
	}
	return out, nil
}

// columnPositions maps column names to schema positions.
func columnPositions(schema types.Schema, cols []string) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		idx := schema.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("core: column %q not in schema [%s]", c, schema)
		}
		out[i] = idx
	}
	return out, nil
}

// Insert executes INSERT INTO ... VALUES: literal rows are evaluated and
// loaded through the normal load path.
func (db *DB) Insert(stmt *sql.Insert) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	snap := init.catalog.Snapshot()
	tbl, ok := snap.TableByName(stmt.Table)
	if !ok {
		return fmt.Errorf("core: unknown table %q", stmt.Table)
	}
	batch := types.NewBatch(tbl.Columns, len(stmt.Rows))
	for _, exprs := range stmt.Rows {
		if len(exprs) != len(tbl.Columns) {
			return fmt.Errorf("core: INSERT arity %d != table arity %d", len(exprs), len(tbl.Columns))
		}
		row := make(types.Row, len(exprs))
		for i, e := range exprs {
			if err := expr.Bind(e, nil); err != nil {
				return fmt.Errorf("core: INSERT values must be constant: %w", err)
			}
			v, err := expr.EvalRow(e, nil)
			if err != nil {
				return err
			}
			coerced, err := coerceDatum(v, tbl.Columns[i].Type)
			if err != nil {
				return fmt.Errorf("core: column %q: %w", tbl.Columns[i].Name, err)
			}
			row[i] = coerced
		}
		batch.AppendRow(row)
	}
	return db.LoadRows(tbl.Name, batch)
}

// coerceDatum converts a literal to the column type where lossless.
func coerceDatum(d types.Datum, want types.Type) (types.Datum, error) {
	if d.Null {
		return types.NullDatum(want), nil
	}
	if d.K == want {
		return d, nil
	}
	switch {
	case d.K.Physical() == types.Int64 && want.Physical() == types.Int64:
		d.K = want
		return d, nil
	case d.K == types.Int64 && want == types.Float64:
		return types.NewFloat(float64(d.I)), nil
	case d.K == types.Float64 && want == types.Int64 && d.F == float64(int64(d.F)):
		return types.NewInt(int64(d.F)), nil
	case d.K == types.Varchar && want == types.Varchar:
		return d, nil
	}
	return d, fmt.Errorf("cannot coerce %s to %s", d.K, want)
}
