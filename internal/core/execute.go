package core

import (
	"fmt"

	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/expr"
	"eon/internal/obs"
	"eon/internal/planner"
	"eon/internal/types"
)

// spanName labels a plan node's operator span.
func spanName(node planner.Node) string {
	switch n := node.(type) {
	case *planner.Scan:
		return "scan:" + n.Table.Name
	case *planner.Filter:
		return "filter"
	case *planner.Project:
		return "project"
	case *planner.Join:
		return "join"
	case *planner.Aggregate:
		return "aggregate"
	case *planner.DistinctNode:
		return "distinct"
	case *planner.Sort:
		return "sort"
	case *planner.Limit:
		return "limit"
	}
	return fmt.Sprintf("%T", node)
}

// resultRows counts the rows of a distributed result across fragments.
func resultRows(res *distResult) int64 {
	if res == nil {
		return 0
	}
	if res.gathered() {
		if res.single == nil {
			return 0
		}
		return int64(res.single.NumRows())
	}
	var total int64
	for _, batches := range res.perNode {
		for _, b := range batches {
			if b != nil {
				total += int64(b.NumRows())
			}
		}
	}
	return total
}

// executePlan recursively evaluates a physical plan node into a
// distributed result. Each node gets an operator span under parent
// (rows out recorded on success; rows in recorded by the operator from
// its input result), so a traced query yields the EXPLAIN PROFILE tree.
func (db *DB) executePlan(env *queryEnv, node planner.Node, parent *obs.Span) (*distResult, error) {
	sp := parent.StartSpan(spanName(node))
	defer sp.End()
	var res *distResult
	var err error
	switch n := node.(type) {
	case *planner.Scan:
		res, err = db.execScan(env, n, sp)
	case *planner.Filter:
		res, err = db.execFilter(env, n, sp)
	case *planner.Project:
		res, err = db.execProject(env, n, sp)
	case *planner.Join:
		res, err = db.execJoin(env, n, sp)
	case *planner.Aggregate:
		res, err = db.execAggregate(env, n, sp)
	case *planner.DistinctNode:
		res, err = db.execDistinct(env, n, sp)
	case *planner.Sort:
		res, err = db.execSort(env, n, sp)
	case *planner.Limit:
		res, err = db.execLimit(env, n, sp)
	default:
		return nil, fmt.Errorf("core: unknown plan node %T", node)
	}
	if err != nil {
		return nil, err
	}
	sp.AddRowsOut(resultRows(res))
	return res, nil
}

func (db *DB) execScan(env *queryEnv, scan *planner.Scan, sp *obs.Span) (*distResult, error) {
	bypass := env.session.BypassCache
	if scan.Virtual {
		// System-table scan: materialized once on the initiator from live
		// monitoring state and treated as replicated downstream.
		fillSp := sp.StartSpan("fill:" + scan.Table.Name)
		b, err := db.materializeVirtual(scan, env.session.RowEngine, env.stats)
		if err != nil {
			fillSp.End()
			return nil, err
		}
		fillSp.AddRowsOut(int64(b.NumRows()))
		fillSp.End()
		return &distResult{single: b, replicated: true, schema: scan.OutSchema}, nil
	}
	if scan.Replicated {
		// Replicated projections are read once — preferentially on the
		// initiator, which always subscribes to the replica shard.
		node := env.initiator
		fragSp := sp.StartSpan("fragment:" + node.name)
		ctx := obs.WithSpan(env.ctx, fragSp)
		batches, err := db.scanFragment(ctx, node, scan, []scanTask{{Shard: catalog.ReplicaShard, Of: 1}}, env.snapshotFor(node.name), bypass, CrunchOff, env.session.RowEngine, env.stats)
		fragSp.End()
		if err != nil {
			return nil, err
		}
		single := types.NewBatch(scan.OutSchema, 0)
		for _, b := range batches {
			single.AppendBatch(b)
		}
		return &distResult{single: single, replicated: true, schema: scan.OutSchema}, nil
	}
	res := &distResult{perNode: map[string][]*types.Batch{}, schema: scan.OutSchema}
	for _, name := range env.nodes {
		if len(env.nodeTasks(name)) == 0 {
			continue
		}
		res.perNode[name] = nil
	}
	err := db.runPerNode(env, res, func(name string, _ []*types.Batch) ([]*types.Batch, error) {
		n, ok := db.Node(name)
		if !ok || !n.Up() {
			return nil, fmt.Errorf("%w: %s", errNodeDown, name)
		}
		// The fragment span travels to the scan via the context (the span
		// carrier for the scan pipeline's layers below the operator tree).
		fragSp := sp.StartSpan("fragment:" + name)
		defer fragSp.End()
		ctx := obs.WithSpan(env.ctx, fragSp)
		return db.scanFragment(ctx, n, scan, env.nodeTasks(name), env.snapshotFor(name), bypass, env.session.Crunch, env.session.RowEngine, env.stats)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (db *DB) execFilter(env *queryEnv, f *planner.Filter, sp *obs.Span) (*distResult, error) {
	in, err := db.executePlan(env, f.Input, sp)
	if err != nil {
		return nil, err
	}
	sp.AddRowsIn(resultRows(in))
	apply := func(batches []*types.Batch) ([]*types.Batch, error) {
		op := exec.NewFilter(exec.NewSource(f.Schema(), batches...), f.Pred)
		op.Eng = env.eng()
		out, err := exec.Collect(op)
		if err != nil {
			return nil, err
		}
		return []*types.Batch{out}, nil
	}
	if in.gathered() {
		out, err := apply([]*types.Batch{in.single})
		if err != nil {
			return nil, err
		}
		in.single = out[0]
		return in, nil
	}
	if err := db.runPerNode(env, in, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
		return apply(bs)
	}); err != nil {
		return nil, err
	}
	return in, nil
}

func (db *DB) execProject(env *queryEnv, p *planner.Project, sp *obs.Span) (*distResult, error) {
	in, err := db.executePlan(env, p.Input, sp)
	if err != nil {
		return nil, err
	}
	sp.AddRowsIn(resultRows(in))
	apply := func(batches []*types.Batch) ([]*types.Batch, error) {
		op := exec.NewProject(exec.NewSource(p.Input.Schema(), batches...), p.Exprs, p.Names)
		op.Eng = env.eng()
		out, err := exec.Collect(op)
		if err != nil {
			return nil, err
		}
		return []*types.Batch{out}, nil
	}
	if in.gathered() {
		out, err := apply([]*types.Batch{in.single})
		if err != nil {
			return nil, err
		}
		return &distResult{single: out[0], replicated: in.replicated, schema: p.Schema()}, nil
	}
	if err := db.runPerNode(env, in, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
		return apply(bs)
	}); err != nil {
		return nil, err
	}
	in.schema = p.Schema()
	return in, nil
}

func (db *DB) execJoin(env *queryEnv, j *planner.Join, sp *obs.Span) (*distResult, error) {
	left, err := db.executePlan(env, j.Left, sp)
	if err != nil {
		return nil, err
	}
	right, err := db.executePlan(env, j.Right, sp)
	if err != nil {
		return nil, err
	}
	sp.AddRowsIn(resultRows(left) + resultRows(right))

	joinBatches := func(lb, rb []*types.Batch) ([]*types.Batch, error) {
		op := exec.NewHashJoin(
			exec.NewSource(j.Left.Schema(), lb...),
			exec.NewSource(j.Right.Schema(), rb...),
			j.LeftKeys, j.RightKeys)
		op.Eng = env.eng()
		var post exec.Operator = op
		if j.ResidualPred != nil {
			f := exec.NewFilter(op, j.ResidualPred)
			f.Eng = env.eng()
			post = f
		}
		out, err := exec.Collect(post)
		if err != nil {
			return nil, err
		}
		return []*types.Batch{out}, nil
	}

	// Both sides already on the initiator: local join there.
	if left.gathered() && right.gathered() {
		out, err := joinBatches(wrap(left.single), wrap(right.single))
		if err != nil {
			return nil, err
		}
		return &distResult{single: out[0], replicated: left.replicated && right.replicated, schema: j.Schema()}, nil
	}

	switch j.Strategy {
	case planner.JoinBroadcastRight:
		// Gather the right side and ship it to every participant.
		rb, err := db.gather(env, right)
		if err != nil {
			return nil, err
		}
		size := batchBytes(rb)
		for _, name := range env.nodes {
			if name == env.initiator.name {
				continue
			}
			if err := db.net.Transfer(env.ctx, env.initiator.name, name, size); err != nil {
				return nil, fmt.Errorf("%w: broadcast to %s: %v", errNodeDown, name, err)
			}
		}
		right = &distResult{single: rb, replicated: true, schema: j.Right.Schema()}
		fallthrough

	case planner.JoinLocal:
		if right.gathered() && right.replicated {
			// Join each left fragment against the full right copy.
			if left.gathered() {
				out, err := joinBatches(wrap(left.single), wrap(right.single))
				if err != nil {
					return nil, err
				}
				return &distResult{single: out[0], schema: j.Schema()}, nil
			}
			if err := db.runPerNode(env, left, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
				return joinBatches(bs, wrap(right.single))
			}); err != nil {
				return nil, err
			}
			left.schema = j.Schema()
			return left, nil
		}
		if left.gathered() && left.replicated {
			if err := db.runPerNode(env, right, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
				return joinBatches(wrap(left.single), bs)
			}); err != nil {
				return nil, err
			}
			right.schema = j.Schema()
			return right, nil
		}
		// A non-replicated gathered side (e.g. after a distinct): finish
		// the join on the initiator.
		if left.gathered() || right.gathered() {
			lb, err := db.gather(env, left)
			if err != nil {
				return nil, err
			}
			rb, err := db.gather(env, right)
			if err != nil {
				return nil, err
			}
			out, err := joinBatches(wrap(lb), wrap(rb))
			if err != nil {
				return nil, err
			}
			return &distResult{single: out[0], schema: j.Schema()}, nil
		}
		out := &distResult{perNode: map[string][]*types.Batch{}, schema: j.Schema()}
		for name := range left.perNode {
			out.perNode[name] = nil
		}
		for name := range right.perNode {
			if _, ok := out.perNode[name]; !ok {
				out.perNode[name] = nil
			}
		}
		if err := db.runPerNode(env, out, func(name string, _ []*types.Batch) ([]*types.Batch, error) {
			return joinBatches(left.perNode[name], right.perNode[name])
		}); err != nil {
			return nil, err
		}
		return out, nil

	case planner.JoinReshuffleBoth:
		lsh, err := db.reshuffle(env, left, j.Left.Schema(), j.LeftKeys)
		if err != nil {
			return nil, err
		}
		rsh, err := db.reshuffle(env, right, j.Right.Schema(), j.RightKeys)
		if err != nil {
			return nil, err
		}
		out := &distResult{perNode: map[string][]*types.Batch{}, schema: j.Schema()}
		for _, name := range env.nodes {
			out.perNode[name] = nil
		}
		if err := db.runPerNode(env, out, func(name string, _ []*types.Batch) ([]*types.Batch, error) {
			return joinBatches(lsh[name], rsh[name])
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown join strategy %v", j.Strategy)
}

func wrap(b *types.Batch) []*types.Batch {
	if b == nil {
		return nil
	}
	return []*types.Batch{b}
}

// reshuffle repartitions a distributed result across the participating
// nodes by key hash, accounting network transfer costs.
func (db *DB) reshuffle(env *queryEnv, res *distResult, schema types.Schema, keys []int) (map[string][]*types.Batch, error) {
	out := map[string][]*types.Batch{}
	for _, n := range env.nodes {
		out[n] = nil
	}
	nParts := len(env.nodes)
	send := func(from string, batches []*types.Batch) error {
		for _, b := range batches {
			if b == nil || b.NumRows() == 0 {
				continue
			}
			parts := exec.PartitionByHash(b, keys, nParts)
			for pi, part := range parts {
				if part == nil || part.NumRows() == 0 {
					continue
				}
				target := env.nodes[pi]
				if target != from {
					if err := db.net.Transfer(env.ctx, from, target, batchBytes(part)); err != nil {
						return fmt.Errorf("%w: reshuffle %s->%s: %v", errNodeDown, from, target, err)
					}
				}
				out[target] = append(out[target], part)
			}
		}
		return nil
	}
	if res.gathered() {
		if err := send(env.initiator.name, wrap(res.single)); err != nil {
			return nil, err
		}
		return out, nil
	}
	for name, batches := range res.perNode {
		if err := send(name, batches); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (db *DB) execAggregate(env *queryEnv, a *planner.Aggregate, sp *obs.Span) (*distResult, error) {
	in, err := db.executePlan(env, a.Input, sp)
	if err != nil {
		return nil, err
	}
	sp.AddRowsIn(resultRows(in))
	inSchema := a.Input.Schema()

	finalOver := func(batches []*types.Batch, partial bool) (*types.Batch, error) {
		op := exec.NewHashAggregate(exec.NewSource(inSchema, batches...), a.Keys, a.KeyNames, a.Aggs, partial)
		op.Eng = env.eng()
		return exec.Collect(op)
	}

	// Gathered or replicated input: aggregate once on the initiator.
	if in.gathered() {
		out, err := finalOver(wrap(in.single), false)
		if err != nil {
			return nil, err
		}
		return &distResult{single: out, schema: a.Schema()}, nil
	}

	switch a.Mode {
	case planner.AggLocalFinal:
		// Per-node groups are disjoint; aggregate fully locally (§4).
		if err := db.runPerNode(env, in, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
			out, err := finalOver(bs, false)
			if err != nil {
				return nil, err
			}
			return wrap(out), nil
		}); err != nil {
			return nil, err
		}
		in.schema = a.Schema()
		return in, nil

	case planner.AggInitiatorOnly:
		gathered, err := db.gather(env, in)
		if err != nil {
			return nil, err
		}
		out, err := finalOver(wrap(gathered), false)
		if err != nil {
			return nil, err
		}
		return &distResult{single: out, schema: a.Schema()}, nil

	case planner.AggTwoPhase:
		// Phase 1: partial aggregation per node.
		var partialSchema types.Schema
		partialOp := exec.NewHashAggregate(exec.NewSource(inSchema), a.Keys, a.KeyNames, a.Aggs, true)
		partialSchema = partialOp.Schema()
		if err := db.runPerNode(env, in, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
			op := exec.NewHashAggregate(exec.NewSource(inSchema, bs...), a.Keys, a.KeyNames, a.Aggs, true)
			op.Eng = env.eng()
			out, err := exec.Collect(op)
			if err != nil {
				return nil, err
			}
			return wrap(out), nil
		}); err != nil {
			return nil, err
		}
		in.schema = partialSchema
		gathered, err := db.gather(env, in)
		if err != nil {
			return nil, err
		}
		// Phase 2: merge on the initiator.
		mergeKeys, mergeAggs, err := mergeDefs(a, partialSchema)
		if err != nil {
			return nil, err
		}
		op := exec.NewHashAggregate(exec.NewSource(partialSchema, gathered), mergeKeys, a.KeyNames, mergeAggs, false)
		op.Eng = env.eng()
		out, err := exec.Collect(op)
		if err != nil {
			return nil, err
		}
		return &distResult{single: out, schema: a.Schema()}, nil
	}
	return nil, fmt.Errorf("core: unknown aggregate mode %v", a.Mode)
}

// mergeDefs builds the phase-2 key and aggregate definitions over the
// partial output schema.
func mergeDefs(a *planner.Aggregate, partialSchema types.Schema) ([]expr.Expr, []exec.AggDef, error) {
	var keys []expr.Expr
	for _, kn := range a.KeyNames {
		c := expr.Col(kn)
		if err := expr.Bind(c, partialSchema); err != nil {
			return nil, nil, err
		}
		keys = append(keys, c)
	}
	var defs []exec.AggDef
	for _, d := range a.Aggs {
		ref := expr.Col(d.Name)
		if err := expr.Bind(ref, partialSchema); err != nil {
			return nil, nil, err
		}
		md := exec.AggDef{Name: d.Name, Arg: ref}
		switch d.Kind {
		case exec.AggCountStar, exec.AggCount, exec.AggCountMerge:
			md.Kind = exec.AggCountMerge
		case exec.AggSum:
			md.Kind = exec.AggSum
		case exec.AggMin:
			md.Kind = exec.AggMin
		case exec.AggMax:
			md.Kind = exec.AggMax
		case exec.AggAvg, exec.AggAvgMerge:
			md.Kind = exec.AggAvgMerge
			cnt := expr.Col(d.Name + "_cnt")
			if err := expr.Bind(cnt, partialSchema); err != nil {
				return nil, nil, err
			}
			md.ArgCount = cnt
		default:
			return nil, nil, fmt.Errorf("core: cannot merge aggregate kind %d", d.Kind)
		}
		defs = append(defs, md)
	}
	return keys, defs, nil
}

func (db *DB) execDistinct(env *queryEnv, d *planner.DistinctNode, sp *obs.Span) (*distResult, error) {
	in, err := db.executePlan(env, d.Input, sp)
	if err != nil {
		return nil, err
	}
	sp.AddRowsIn(resultRows(in))
	if in.gathered() {
		out, err := distinctBatch(in.single, env.eng())
		if err != nil {
			return nil, err
		}
		in.single = out
		return in, nil
	}
	// Local dedupe per node; the global pass happens at gather unless the
	// consumer can prove disjointness (AggLocalFinal inputs are
	// node-disjoint by segmentation, and the planner only plans local
	// distinct+count in that case).
	if err := db.runPerNode(env, in, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
		op := exec.NewDistinct(exec.NewSource(in.schema, bs...))
		op.Eng = env.eng()
		out, err := exec.Collect(op)
		if err != nil {
			return nil, err
		}
		return wrap(out), nil
	}); err != nil {
		return nil, err
	}
	in.needGlobalDistinct = true
	return in, nil
}

func distinctBatch(b *types.Batch, eng exec.Engine) (*types.Batch, error) {
	if b == nil {
		return nil, nil
	}
	schema := make(types.Schema, len(b.Cols))
	for i, c := range b.Cols {
		schema[i] = types.Column{Name: fmt.Sprintf("c%d", i), Type: c.Typ}
	}
	op := exec.NewDistinct(exec.NewSource(schema, b))
	op.Eng = eng
	return exec.Collect(op)
}

func (db *DB) execSort(env *queryEnv, s *planner.Sort, sp *obs.Span) (*distResult, error) {
	in, err := db.executePlan(env, s.Input, sp)
	if err != nil {
		return nil, err
	}
	sp.AddRowsIn(resultRows(in))
	gathered, err := db.gather(env, in)
	if err != nil {
		return nil, err
	}
	op := exec.NewSort(exec.NewSource(s.Schema(), gathered), s.Keys)
	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	return &distResult{single: out, schema: s.Schema()}, nil
}

func (db *DB) execLimit(env *queryEnv, l *planner.Limit, sp *obs.Span) (*distResult, error) {
	// Push a local top-k / limit below the gather when the child is a
	// sort (dashboard top-k pattern).
	if srt, ok := l.Input.(*planner.Sort); ok {
		in, err := db.executePlan(env, srt.Input, sp)
		if err != nil {
			return nil, err
		}
		sp.AddRowsIn(resultRows(in))
		if !in.gathered() {
			if err := db.runPerNode(env, in, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
				op := exec.NewTopK(exec.NewSource(srt.Schema(), bs...), srt.Keys, int(l.N))
				out, err := exec.Collect(op)
				if err != nil {
					return nil, err
				}
				return wrap(out), nil
			}); err != nil {
				return nil, err
			}
		}
		gathered, err := db.gather(env, in)
		if err != nil {
			return nil, err
		}
		op := exec.NewLimit(exec.NewSort(exec.NewSource(srt.Schema(), gathered), srt.Keys), l.N)
		out, err := exec.Collect(op)
		if err != nil {
			return nil, err
		}
		return &distResult{single: out, schema: l.Schema()}, nil
	}
	in, err := db.executePlan(env, l.Input, sp)
	if err != nil {
		return nil, err
	}
	sp.AddRowsIn(resultRows(in))
	// No ORDER BY: each fragment can contribute at most N rows, so cap
	// every node's output before the gather instead of shipping whole
	// fragments to the initiator only to discard all but N rows. Safe
	// under a pending global distinct: per-node fragments are locally
	// distinct, so the first N gathered-distinct rows draw from at most
	// the first N rows of each fragment.
	if !in.gathered() {
		if err := db.runPerNode(env, in, func(name string, bs []*types.Batch) ([]*types.Batch, error) {
			out, err := exec.Collect(exec.NewLimit(exec.NewSource(l.Schema(), bs...), l.N))
			if err != nil {
				return nil, err
			}
			return wrap(out), nil
		}); err != nil {
			return nil, err
		}
	}
	gathered, err := db.gather(env, in)
	if err != nil {
		return nil, err
	}
	op := exec.NewLimit(exec.NewSource(l.Schema(), gathered), l.N)
	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	return &distResult{single: out, schema: l.Schema()}, nil
}
