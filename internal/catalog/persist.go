package catalog

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"eon/internal/udfs"
)

// File naming inside a catalog directory. Transaction logs are "broken
// into multiple files but totally ordered with an incrementing version
// counter"; checkpoints are labeled with the version they reflect
// (paper §2.4).
const (
	txnPrefix  = "txn_"
	ckptPrefix = "ckpt_"
)

// TxnFileName returns the log file name for a commit version.
func TxnFileName(version uint64) string {
	return fmt.Sprintf("%s%016d.json", txnPrefix, version)
}

// CkptFileName returns the checkpoint file name for a version.
func CkptFileName(version uint64) string {
	return fmt.Sprintf("%s%016d.json", ckptPrefix, version)
}

// ParseCatalogFile extracts the kind ("txn" or "ckpt") and version from a
// catalog file name; ok=false for foreign files.
func ParseCatalogFile(name string) (kind string, version uint64, ok bool) {
	base := name
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	var prefix string
	switch {
	case strings.HasPrefix(base, txnPrefix):
		kind, prefix = "txn", txnPrefix
	case strings.HasPrefix(base, ckptPrefix):
		kind, prefix = "ckpt", ckptPrefix
	default:
		return "", 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(base, prefix), ".json")
	v, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return "", 0, false
	}
	return kind, v, true
}

// checkpointFile is the serialized form of a full catalog snapshot.
type checkpointFile struct {
	Version uint64  `json:"version"`
	NextOID OID     `json:"nextOid"`
	Objects []LogOp `json:"objects"`
}

// EncodeCheckpoint serializes a snapshot into checkpoint file bytes.
func EncodeCheckpoint(s *Snapshot, nextOID OID) ([]byte, error) {
	ck := checkpointFile{Version: s.version, NextOID: nextOID}
	var oids []OID
	for oid := range s.objects {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		o := s.objects[oid]
		raw, err := marshalObject(o)
		if err != nil {
			return nil, err
		}
		ck.Objects = append(ck.Objects, LogOp{Kind: o.Kind(), OID: oid, Data: raw})
	}
	return json.Marshal(ck)
}

// DecodeCheckpoint reconstructs a snapshot from checkpoint bytes. Every
// object's modVersion is set to the checkpoint version (precise per-object
// history is not needed across restarts).
func DecodeCheckpoint(data []byte) (*Snapshot, OID, error) {
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, 0, fmt.Errorf("catalog: decode checkpoint: %w", err)
	}
	s := &Snapshot{
		version:    ck.Version,
		objects:    make(map[OID]Object, len(ck.Objects)),
		modVersion: make(map[OID]uint64, len(ck.Objects)),
	}
	for _, op := range ck.Objects {
		o, err := unmarshalObject(op.Kind, op.Data)
		if err != nil {
			return nil, 0, err
		}
		s.objects[op.OID] = o
		s.modVersion[op.OID] = ck.Version
	}
	next := ck.NextOID
	if m := MaxOID(s); m > next {
		next = m
	}
	return s, next, nil
}

// Persister durably appends transaction logs and writes checkpoints to a
// directory of a filesystem (the node's local catalog directory).
type Persister struct {
	fs  udfs.FileSystem
	dir string
	// CheckpointThreshold is the accumulated log byte count that triggers
	// a checkpoint (paper §2.4: "when the total transaction log size
	// exceeds a threshold").
	CheckpointThreshold int64

	mu            sync.Mutex
	bytesSinceCkp int64
	ckptVersions  []uint64 // ascending
}

// NewPersister returns a persister rooted at dir on fs.
func NewPersister(fs udfs.FileSystem, dir string, checkpointThreshold int64) *Persister {
	if checkpointThreshold <= 0 {
		checkpointThreshold = 256 << 10
	}
	return &Persister{fs: fs, dir: dir, CheckpointThreshold: checkpointThreshold}
}

// Dir returns the catalog directory path.
func (p *Persister) Dir() string { return p.dir }

// FS returns the underlying filesystem.
func (p *Persister) FS() udfs.FileSystem { return p.fs }

func (p *Persister) path(name string) string { return p.dir + "/" + name }

// Append durably writes one commit's log record.
func (p *Persister) Append(rec *LogRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := p.fs.WriteFile(context.Background(), p.path(TxnFileName(rec.Version)), data); err != nil {
		return err
	}
	p.mu.Lock()
	p.bytesSinceCkp += int64(len(data))
	p.mu.Unlock()
	return nil
}

// MaybeCheckpoint writes a checkpoint if enough log bytes accumulated.
func (p *Persister) MaybeCheckpoint(s *Snapshot) {
	p.mu.Lock()
	due := p.bytesSinceCkp >= p.CheckpointThreshold
	p.mu.Unlock()
	if due {
		_ = p.Checkpoint(s, MaxOID(s)) // best effort; next commit retries
	}
}

// Checkpoint writes a full checkpoint of s and prunes old catalog files,
// retaining the two most recent checkpoints and any logs after the older
// retained checkpoint.
func (p *Persister) Checkpoint(s *Snapshot, nextOID OID) error {
	data, err := EncodeCheckpoint(s, nextOID)
	if err != nil {
		return err
	}
	name := p.path(CkptFileName(s.version))
	if ok, _ := udfs.Exists(context.Background(), p.fs, name); !ok {
		if err := p.fs.WriteFile(context.Background(), name, data); err != nil {
			return err
		}
	}
	p.mu.Lock()
	p.bytesSinceCkp = 0
	p.ckptVersions = append(p.ckptVersions, s.version)
	sort.Slice(p.ckptVersions, func(i, j int) bool { return p.ckptVersions[i] < p.ckptVersions[j] })
	p.mu.Unlock()
	return p.prune()
}

// prune removes checkpoints older than the two newest and logs at or
// before the older retained checkpoint.
func (p *Persister) prune() error {
	ctx := context.Background()
	infos, err := p.fs.List(ctx, p.dir+"/")
	if err != nil {
		return err
	}
	var ckpts []uint64
	for _, in := range infos {
		if kind, v, ok := ParseCatalogFile(in.Path); ok && kind == "ckpt" {
			ckpts = append(ckpts, v)
		}
	}
	if len(ckpts) <= 2 {
		return nil
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	keepFrom := ckpts[len(ckpts)-2]
	for _, in := range infos {
		kind, v, ok := ParseCatalogFile(in.Path)
		if !ok {
			continue
		}
		if kind == "ckpt" && v < keepFrom {
			_ = p.fs.Remove(ctx, in.Path)
		}
		if kind == "txn" && v <= keepFrom {
			_ = p.fs.Remove(ctx, in.Path)
		}
	}
	return nil
}

// ListFiles returns the catalog's checkpoint and log files sorted by
// (version, kind) with checkpoints first at equal versions.
func (p *Persister) ListFiles(ctx context.Context) ([]udfs.FileInfo, error) {
	infos, err := p.fs.List(ctx, p.dir+"/")
	if err != nil {
		return nil, err
	}
	var out []udfs.FileInfo
	for _, in := range infos {
		if _, _, ok := ParseCatalogFile(in.Path); ok {
			out = append(out, in)
		}
	}
	return out, nil
}

// Load reconstructs the catalog state from dir: the most recent valid
// checkpoint plus all subsequent transaction logs (paper §2.4). A missing
// directory yields an empty version-0 snapshot.
func Load(ctx context.Context, fs udfs.FileSystem, dir string) (*Snapshot, OID, error) {
	infos, err := fs.List(ctx, dir+"/")
	if err != nil {
		return nil, 0, err
	}
	var ckpts []uint64
	txns := map[uint64]string{}
	var txnVersions []uint64
	for _, in := range infos {
		kind, v, ok := ParseCatalogFile(in.Path)
		if !ok {
			continue
		}
		switch kind {
		case "ckpt":
			ckpts = append(ckpts, v)
		case "txn":
			txns[v] = in.Path
			txnVersions = append(txnVersions, v)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	sort.Slice(txnVersions, func(i, j int) bool { return txnVersions[i] < txnVersions[j] })

	snap := emptySnapshot()
	next := OID(1)
	for _, cv := range ckpts {
		data, err := fs.ReadFile(ctx, dir+"/"+CkptFileName(cv))
		if err != nil {
			continue
		}
		s, n, err := DecodeCheckpoint(data)
		if err != nil {
			continue // skip invalid checkpoint, try the older one
		}
		snap, next = s, n
		break
	}
	for _, v := range txnVersions {
		if v <= snap.version {
			continue
		}
		if v != snap.version+1 {
			break // gap in the log; stop at the last contiguous version
		}
		data, err := fs.ReadFile(ctx, txns[v])
		if err != nil {
			break
		}
		var rec LogRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			break
		}
		if err := applyToSnapshot(snap, &rec); err != nil {
			return nil, 0, err
		}
		if rec.NextOID > next {
			next = rec.NextOID
		}
	}
	if m := MaxOID(snap); m > next {
		next = m
	}
	return snap, next, nil
}

// applyToSnapshot mutates snap in place with the record's operations.
// Only used during load/replay where the snapshot is private.
func applyToSnapshot(snap *Snapshot, rec *LogRecord) error {
	for _, op := range rec.Ops {
		if op.Delete {
			delete(snap.objects, op.OID)
			snap.modVersion[op.OID] = rec.Version
			continue
		}
		o, err := unmarshalObject(op.Kind, op.Data)
		if err != nil {
			return err
		}
		snap.objects[op.OID] = o
		snap.modVersion[op.OID] = rec.Version
	}
	snap.version = rec.Version
	return nil
}

// RecordsAfter reads the transaction log records with version > after,
// in order, stopping at the first gap. Used for incremental metadata
// transfer during subscription (§3.3) and catalog sync (§3.5).
func RecordsAfter(ctx context.Context, fs udfs.FileSystem, dir string, after uint64) ([]*LogRecord, error) {
	infos, err := fs.List(ctx, dir+"/")
	if err != nil {
		return nil, err
	}
	var versions []uint64
	paths := map[uint64]string{}
	for _, in := range infos {
		kind, v, ok := ParseCatalogFile(in.Path)
		if ok && kind == "txn" && v > after {
			versions = append(versions, v)
			paths[v] = in.Path
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	var out []*LogRecord
	want := after + 1
	for _, v := range versions {
		if v != want {
			break
		}
		data, err := fs.ReadFile(ctx, paths[v])
		if err != nil {
			break
		}
		var rec LogRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			break
		}
		out = append(out, &rec)
		want++
	}
	return out, nil
}

// TruncateTo discards all commits after version in dir: replays the
// catalog to exactly that version, deletes later log and checkpoint
// files, and writes a fresh checkpoint at the truncation version (paper
// §3.5). It returns the truncated snapshot.
func TruncateTo(ctx context.Context, fs udfs.FileSystem, dir string, version uint64) (*Snapshot, OID, error) {
	infos, err := fs.List(ctx, dir+"/")
	if err != nil {
		return nil, 0, err
	}
	var ckpts []uint64
	txns := map[uint64]string{}
	var txnVersions []uint64
	for _, in := range infos {
		kind, v, ok := ParseCatalogFile(in.Path)
		if !ok {
			continue
		}
		switch kind {
		case "ckpt":
			if v <= version {
				ckpts = append(ckpts, v)
			}
		case "txn":
			txns[v] = in.Path
			if v <= version {
				txnVersions = append(txnVersions, v)
			}
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	sort.Slice(txnVersions, func(i, j int) bool { return txnVersions[i] < txnVersions[j] })

	snap := emptySnapshot()
	next := OID(1)
	for _, cv := range ckpts {
		data, err := fs.ReadFile(ctx, dir+"/"+CkptFileName(cv))
		if err != nil {
			continue
		}
		s, n, err := DecodeCheckpoint(data)
		if err != nil {
			continue
		}
		snap, next = s, n
		break
	}
	for _, v := range txnVersions {
		if v <= snap.version {
			continue
		}
		if v != snap.version+1 {
			break
		}
		data, err := fs.ReadFile(ctx, txns[v])
		if err != nil {
			break
		}
		var rec LogRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			break
		}
		if err := applyToSnapshot(snap, &rec); err != nil {
			return nil, 0, err
		}
		if rec.NextOID > next {
			next = rec.NextOID
		}
	}
	if snap.version != version {
		return nil, 0, fmt.Errorf("catalog: cannot truncate to v%d, best reachable is v%d", version, snap.version)
	}
	// Remove everything after the truncation version.
	for _, in := range infos {
		kind, v, ok := ParseCatalogFile(in.Path)
		if ok && v > version {
			_ = fs.Remove(ctx, in.Path)
			_ = kind
		}
	}
	if m := MaxOID(snap); m > next {
		next = m
	}
	// Write the post-truncation checkpoint.
	data, err := EncodeCheckpoint(snap, next)
	if err != nil {
		return nil, 0, err
	}
	name := dir + "/" + CkptFileName(version)
	if ok, _ := udfs.Exists(ctx, fs, name); !ok {
		if err := fs.WriteFile(ctx, name, data); err != nil {
			return nil, 0, err
		}
	}
	return snap, next, nil
}
