// Dashboard: elastic throughput scaling (paper §4.2, Figure 11a). A
// short co-segmented join + aggregation query runs from many concurrent
// clients; growing the cluster from 3 to 6 nodes at a fixed 3 shards
// nearly doubles throughput because each query occupies only 3 of the
// cluster's execution slots.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"eon"
	"eon/internal/workload"
)

const dashboardQuery = `
	SELECT c.c_mktsegment, COUNT(*) AS orders, SUM(o.o_totalprice) AS revenue
	FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey
	WHERE o.o_orderdate >= DATE '1997-01-01'
	GROUP BY c.c_mktsegment ORDER BY revenue DESC`

func main() {
	for _, nodes := range []int{3, 6} {
		qpm, err := measure(nodes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Eon %d nodes / 3 shards: %6.0f queries/minute\n", nodes, qpm)
	}
}

func measure(nodeCount int) (float64, error) {
	var specs []eon.NodeSpec
	for i := 1; i <= nodeCount; i++ {
		specs = append(specs, eon.NodeSpec{Name: fmt.Sprintf("node%d", i)})
	}
	db, err := eon.Create(eon.Config{
		Mode:              eon.ModeEon,
		Nodes:             specs,
		ShardCount:        3,
		ReplicationFactor: nodeCount, // every node can serve every shard
		QueryCost:         50 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	w := workload.DefaultTPCH(0.02)
	s := db.NewSession()
	err = w.Setup(func(sql string) error {
		_, err := s.Execute(sql)
		return err
	}, db.LoadRows)
	if err != nil {
		return 0, err
	}
	// Warm caches, then drive 24 concurrent dashboard clients.
	if _, err := s.Query(dashboardQuery); err != nil {
		return 0, err
	}
	const clients = 24
	window := time.Second
	deadline := time.Now().Add(window)
	var completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, err := db.NewSession().Query(dashboardQuery); err == nil {
					completed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return float64(completed.Load()) / window.Minutes(), nil
}
