package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var nilC *Counter
	nilC.Inc() // must not panic
	if nilC.Value() != 0 {
		t.Fatalf("nil counter value != 0")
	}

	var g Gauge
	g.Set(7)
	g.Add(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	fg := Gauge{fn: func() int64 { return 99 }}
	if got := fg.Value(); got != 99 {
		t.Fatalf("func gauge = %d, want 99", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	if nilG.Value() != 0 {
		t.Fatalf("nil gauge value != 0")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 500500 {
		t.Fatalf("sum = %d, want 500500", s.Sum)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	// Exponential buckets: estimates are within the containing power-of-two
	// bucket, so allow 2x slack on each side of the true quantile.
	check := func(name string, got, trueQ int64) {
		if got < trueQ/2 || got > trueQ*2 {
			t.Errorf("%s = %d, want within [%d, %d]", name, got, trueQ/2, trueQ*2)
		}
	}
	check("p50", s.P50, 500)
	check("p95", s.P95, 950)
	check("p99", s.P99, 990)
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %d %d %d", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Max {
		t.Fatalf("p99 %d exceeds max %d", s.P99, s.Max)
	}
	if got := s.Mean(); got != 500 {
		t.Fatalf("mean = %d, want 500", got)
	}
}

func TestHistogramSingleValueClampedToMax(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	// 1000 lands in bucket [512, 1024); interpolation would report up to
	// 1023, but estimates must clamp to the observed max.
	if s.P99 != 1000 || s.P50 > 1000 {
		t.Fatalf("quantiles not clamped to max: p50=%d p99=%d", s.P50, s.P99)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(-5) // negative goes to bucket 0, not a panic
	h.Observe(0)
	h.Observe(1 << 62)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Max != 1<<62 {
		t.Fatalf("max = %d", s.Max)
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram quantile != 0")
	}
}

func TestRegistryGetOrCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Add(4) // same counter
	r.Gauge("g").Set(11)
	r.GaugeFunc("gf", func() int64 { return 5 })
	r.Histogram("h").Observe(100)

	var ext Counter
	ext.Add(9)
	r.RegisterCounter("ext", &ext)

	s := r.Snapshot()
	if s.Counters["a"] != 7 {
		t.Fatalf("counter a = %d, want 7", s.Counters["a"])
	}
	if s.Counters["ext"] != 9 {
		t.Fatalf("counter ext = %d, want 9", s.Counters["ext"])
	}
	if s.Gauges["g"] != 11 || s.Gauges["gf"] != 5 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("histogram h count = %d", s.Histograms["h"].Count)
	}

	// JSON round-trips.
	var back Snapshot
	if err := json.Unmarshal(s.JSON(), &back); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if back.Counters["a"] != 7 {
		t.Fatalf("round-trip counter a = %d", back.Counters["a"])
	}
	// Text contains every metric name.
	txt := s.Text()
	for _, name := range []string{"a", "ext", "g", "gf", "h"} {
		if !strings.Contains(txt, name) {
			t.Fatalf("text snapshot missing %q:\n%s", name, txt)
		}
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	r.GaugeFunc("f", func() int64 { return 1 })
	r.RegisterCounter("c", &Counter{})
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(int64(j))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

func TestTraceNesting(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { clock = clock.Add(time.Millisecond); return clock }
	tr := NewTrace("query", now)
	root := tr.Root()

	scan := root.StartSpan("scan:sales")
	fetch := scan.StartSpan("fetch")
	fetch.AddBytes(4096)
	fetch.End()
	scan.AddRowsOut(100)
	scan.AddAttr("cache_hits", 3)
	scan.End()

	filt := root.StartSpan("filter")
	filt.AddRowsIn(100)
	filt.AddRowsOut(40)
	filt.End()

	p := tr.Finish()
	if p.Name != "query" {
		t.Fatalf("root name = %q", p.Name)
	}
	if len(p.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(p.Children))
	}
	ps := p.Find("scan:sales")
	if ps == nil || ps.RowsOut != 100 || ps.Attrs["cache_hits"] != 3 {
		t.Fatalf("scan profile = %+v", ps)
	}
	if len(ps.Children) != 1 || ps.Children[0].Name != "fetch" || ps.Children[0].Bytes != 4096 {
		t.Fatalf("fetch profile = %+v", ps.Children)
	}
	pf := p.Find("filter")
	if pf == nil || pf.RowsIn != 100 || pf.RowsOut != 40 {
		t.Fatalf("filter profile = %+v", pf)
	}
	if p.Dangling != 0 {
		t.Fatalf("dangling = %d, want 0", p.Dangling)
	}
	if p.Wall <= 0 || ps.Wall <= 0 {
		t.Fatalf("wall times not positive: root=%v scan=%v", p.Wall, ps.Wall)
	}
	txt := p.Text()
	for _, want := range []string{"query", "scan:sales", "fetch", "cache_hits=3", "rows_out=100"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("profile text missing %q:\n%s", want, txt)
		}
	}
}

func TestTraceDanglingSpansForceEnded(t *testing.T) {
	tr := NewTrace("query", nil)
	root := tr.Root()
	scan := root.StartSpan("scan")
	_ = scan.StartSpan("fetch") // never ended: simulates a failure mid-scan
	scan.End()
	p := tr.Finish()
	if p.Dangling != 1 {
		t.Fatalf("dangling = %d, want 1", p.Dangling)
	}
	// The dangling span still appears in the profile with a wall time.
	f := p.Find("fetch")
	if f == nil || f.Wall < 0 {
		t.Fatalf("fetch profile = %+v", f)
	}
}

func TestSpanDoubleEndIsNoop(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { clock = clock.Add(time.Millisecond); return clock }
	tr := NewTrace("q", now)
	sp := tr.Root().StartSpan("op")
	sp.End()
	wall := sp.wall
	sp.End()
	if sp.wall != wall {
		t.Fatalf("second End changed wall: %v -> %v", wall, sp.wall)
	}
}

func TestSpanContextCarry(t *testing.T) {
	tr := NewTrace("q", nil)
	sp := tr.Root().StartSpan("op")
	ctx := WithSpan(context.Background(), sp)
	if got := SpanFrom(ctx); got != sp {
		t.Fatalf("SpanFrom = %p, want %p", got, sp)
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatalf("SpanFrom(empty) = %p, want nil", got)
	}
	// WithSpan(nil span) leaves the context untouched.
	if WithSpan(ctx, nil) != ctx {
		t.Fatalf("WithSpan(nil) returned a new context")
	}
}

// TestDisabledTracerZeroAlloc is the regression gate for the disabled
// fast path: every span operation on a nil trace/span must be free.
// CI runs this without -race (instrumentation allocates under -race).
func TestDisabledTracerZeroAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	var tr *Trace
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Root()
		sp := root.StartSpan("scan")
		sp.AddRowsIn(10)
		sp.AddRowsOut(5)
		sp.AddBytes(100)
		sp.AddAttr("hits", 1)
		sp.AddTime(time.Microsecond)
		child := sp.StartSpan("fetch")
		child.End()
		sp.End()
		_ = SpanFrom(ctx)
		_ = WithSpan(ctx, nil)
		_ = tr.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f per op, want 0", allocs)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("q", nil)
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := root.StartSpan("frag")
				sp.AddRowsOut(1)
				sp.AddAttr("n", 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	p := tr.Finish()
	if len(p.Children) != 1600 {
		t.Fatalf("children = %d, want 1600", len(p.Children))
	}
	if p.Dangling != 0 {
		t.Fatalf("dangling = %d", p.Dangling)
	}
}

func TestPublishGatherHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(5)
	Publish("obs-test-db", r)

	snaps := Gather()
	if snaps["obs-test-db"].Counters["reqs"] != 5 {
		t.Fatalf("gathered = %+v", snaps["obs-test-db"])
	}

	// Re-publishing under the same name replaces, not accumulates.
	r2 := NewRegistry()
	r2.Counter("reqs").Add(1)
	Publish("obs-test-db", r2)
	if got := Gather()["obs-test-db"].Counters["reqs"]; got != 1 {
		t.Fatalf("after republish reqs = %d, want 1", got)
	}

	h := Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "obs-test-db") {
		t.Fatalf("JSON handler: code=%d body=%s", rec.Code, rec.Body.String())
	}
	var out map[string]Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("handler JSON: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=text", nil))
	if !strings.Contains(rec.Body.String(), "== obs-test-db ==") {
		t.Fatalf("text handler body:\n%s", rec.Body.String())
	}
}
