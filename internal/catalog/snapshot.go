package catalog

import "sort"

// Snapshot is an immutable, consistent view of the catalog at a version.
// Read operations run against snapshots without locking (paper §2.4:
// "exposing consistent snapshots to database read operations").
type Snapshot struct {
	version uint64
	objects map[OID]Object
	// modVersion records the commit version that last wrote each object,
	// which is what OCC validation compares against (§6.3).
	modVersion map[OID]uint64
}

// emptySnapshot returns the version-0 snapshot.
func emptySnapshot() *Snapshot {
	return &Snapshot{objects: map[OID]Object{}, modVersion: map[OID]uint64{}}
}

// Version returns the catalog version the snapshot reflects.
func (s *Snapshot) Version() uint64 { return s.version }

// Get returns the object with the given OID.
func (s *Snapshot) Get(oid OID) (Object, bool) {
	o, ok := s.objects[oid]
	return o, ok
}

// ModVersion returns the commit version that last modified oid (0 if the
// object does not exist).
func (s *Snapshot) ModVersion(oid OID) uint64 { return s.modVersion[oid] }

// Len returns the number of objects in the snapshot.
func (s *Snapshot) Len() int { return len(s.objects) }

// ForEach calls fn for every object of the given kind, in OID order.
// A zero kind visits all objects.
func (s *Snapshot) ForEach(k Kind, fn func(Object) bool) {
	oids := make([]OID, 0, len(s.objects))
	for oid, o := range s.objects {
		if k == 0 || o.Kind() == k {
			oids = append(oids, oid)
		}
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		if !fn(s.objects[oid]) {
			return
		}
	}
}

// Tables returns all tables.
func (s *Snapshot) Tables() []*Table {
	var out []*Table
	s.ForEach(KindTable, func(o Object) bool {
		out = append(out, o.(*Table))
		return true
	})
	return out
}

// TableByName finds a table by name.
func (s *Snapshot) TableByName(name string) (*Table, bool) {
	var found *Table
	s.ForEach(KindTable, func(o Object) bool {
		t := o.(*Table)
		if equalFold(t.Name, name) {
			found = t
			return false
		}
		return true
	})
	return found, found != nil
}

// ProjectionByName finds a projection by name.
func (s *Snapshot) ProjectionByName(name string) (*Projection, bool) {
	var found *Projection
	s.ForEach(KindProjection, func(o Object) bool {
		p := o.(*Projection)
		if equalFold(p.Name, name) {
			found = p
			return false
		}
		return true
	})
	return found, found != nil
}

// ProjectionsOf returns the projections of a table, base projections
// first (buddies sorted after their base by offset).
func (s *Snapshot) ProjectionsOf(table OID) []*Projection {
	var out []*Projection
	s.ForEach(KindProjection, func(o Object) bool {
		p := o.(*Projection)
		if p.TableOID == table {
			out = append(out, p)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].BuddyOffset != out[j].BuddyOffset {
			return out[i].BuddyOffset < out[j].BuddyOffset
		}
		return out[i].OID < out[j].OID
	})
	return out
}

// Shards returns all shard definitions sorted by index (replica shard
// last).
func (s *Snapshot) Shards() []*Shard {
	var out []*Shard
	s.ForEach(KindShard, func(o Object) bool {
		out = append(out, o.(*Shard))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// SegmentShardCount returns the number of segment shards.
func (s *Snapshot) SegmentShardCount() int {
	n := 0
	s.ForEach(KindShard, func(o Object) bool {
		if o.(*Shard).ShardKind == SegmentShard {
			n++
		}
		return true
	})
	return n
}

// Subscriptions returns all subscriptions, optionally filtered by node
// ("" matches all).
func (s *Snapshot) Subscriptions(node string) []*Subscription {
	var out []*Subscription
	s.ForEach(KindSubscription, func(o Object) bool {
		sub := o.(*Subscription)
		if node == "" || sub.Node == node {
			out = append(out, sub)
		}
		return true
	})
	return out
}

// SubscribersOf returns the subscriptions for one shard index filtered to
// the given states (empty states matches all).
func (s *Snapshot) SubscribersOf(shardIndex int, states ...SubState) []*Subscription {
	var out []*Subscription
	s.ForEach(KindSubscription, func(o Object) bool {
		sub := o.(*Subscription)
		if sub.ShardIndex != shardIndex {
			return true
		}
		if len(states) == 0 {
			out = append(out, sub)
			return true
		}
		for _, st := range states {
			if sub.State == st {
				out = append(out, sub)
				break
			}
		}
		return true
	})
	return out
}

// Nodes returns all node definitions sorted by name.
func (s *Snapshot) Nodes() []*Node {
	var out []*Node
	s.ForEach(KindNode, func(o Object) bool {
		out = append(out, o.(*Node))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NodeByName finds a node by name.
func (s *Snapshot) NodeByName(name string) (*Node, bool) {
	for _, n := range s.Nodes() {
		if n.Name == name {
			return n, true
		}
	}
	return nil, false
}

// ContainersOf returns the storage containers of a projection, optionally
// restricted to one shard index (pass GlobalShard for no restriction).
func (s *Snapshot) ContainersOf(proj OID, shardIndex int) []*StorageContainer {
	var out []*StorageContainer
	s.ForEach(KindStorageContainer, func(o Object) bool {
		sc := o.(*StorageContainer)
		if sc.ProjOID == proj && (shardIndex == GlobalShard || sc.ShardIndex == shardIndex) {
			out = append(out, sc)
		}
		return true
	})
	return out
}

// DeleteVectorsOf returns the delete vectors covering a container.
func (s *Snapshot) DeleteVectorsOf(container OID) []*DeleteVector {
	var out []*DeleteVector
	s.ForEach(KindDeleteVector, func(o Object) bool {
		dv := o.(*DeleteVector)
		if dv.ContainerOID == container {
			out = append(out, dv)
		}
		return true
	})
	return out
}

// FilterShards returns a copy of the snapshot containing only global
// objects plus storage objects of the given shard indexes. This models a
// subscribing node's partial catalog (paper §3.1).
func (s *Snapshot) FilterShards(keep map[int]bool) *Snapshot {
	out := &Snapshot{
		version:    s.version,
		objects:    make(map[OID]Object, len(s.objects)),
		modVersion: make(map[OID]uint64, len(s.modVersion)),
	}
	for oid, o := range s.objects {
		sh := o.Shard()
		if sh == GlobalShard || keep[sh] {
			out.objects[oid] = o
			out.modVersion[oid] = s.modVersion[oid]
		}
	}
	return out
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
