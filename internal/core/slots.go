package core

import (
	"context"
	"errors"
	"sync"
)

// errSlotsInvalid reports that the acquire's validate callback rejected
// the request (a participant died while the query was queued).
var errSlotsInvalid = errors.New("core: slot request no longer valid")

// slotManager allocates per-node execution slots (§4.2) with
// all-or-nothing semantics: a request for several slots — possibly
// multiple on one node, as when a buddy serves two segments after a
// failure — either acquires them all atomically or waits. Partial holds
// are never visible, which rules out the multi-unit deadlock where
// concurrent queries each hold one of a node's slots while waiting for a
// second.
type slotManager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	avail   map[string]int
	cap     map[string]int
	waiting int
}

func newSlotManager() *slotManager {
	m := &slotManager{avail: map[string]int{}, cap: map[string]int{}}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// register sets a node's slot capacity.
func (m *slotManager) register(node string, slots int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cap[node] = slots
	m.avail[node] = slots
	m.cond.Broadcast()
}

// unregister removes a node's slot pool (node removal). Waiters that
// requested slots on the node will find them permanently unavailable, so
// the caller must kick them into re-validation.
func (m *slotManager) unregister(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cap, node)
	delete(m.avail, node)
	m.cond.Broadcast()
}

// acquire blocks until every requested slot count is simultaneously
// available, then takes them. ok reports whether validate approved the
// request at grant time (a node may have gone down while waiting).
func (m *slotManager) acquire(req map[string]int, validate func() bool) bool {
	return m.acquireCtx(context.Background(), req, validate) == nil
}

// acquireCtx is acquire with a deadline: when ctx expires while the
// request is parked, it gives up and returns ErrQueuedTooLong instead of
// waiting forever. Returns nil on success, errSlotsInvalid when validate
// rejects the request.
func (m *slotManager) acquireCtx(ctx context.Context, req map[string]int, validate func() bool) error {
	// Wake the cond-var loop when the deadline fires; the loop re-checks
	// ctx.Err() on every wakeup.
	stop := context.AfterFunc(ctx, m.kick)
	defer stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	parked := false
	defer func() {
		if parked {
			m.waiting--
		}
	}()
	for {
		ready := true
		for node, n := range req {
			if m.avail[node] < n {
				ready = false
				break
			}
		}
		if ready {
			if validate != nil && !validate() {
				return errSlotsInvalid
			}
			for node, n := range req {
				m.avail[node] -= n
			}
			return nil
		}
		if validate != nil && !validate() {
			return errSlotsInvalid
		}
		if ctx.Err() != nil {
			return ErrQueuedTooLong
		}
		if !parked {
			parked = true
			m.waiting++
		}
		m.cond.Wait()
	}
}

// waitingCount reports how many acquirers are parked — the query queue
// depth the autoscaler keys off (§4.3).
func (m *slotManager) waitingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waiting
}

// outstanding reports the total slots currently held across all nodes.
func (m *slotManager) outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	held := 0
	for node, c := range m.cap {
		held += c - m.avail[node]
	}
	return held
}

// release returns slots to the pool. Slots held on a node that was
// unregistered in the meantime are dropped rather than resurrected.
func (m *slotManager) release(req map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for node, n := range req {
		if _, ok := m.cap[node]; !ok {
			continue
		}
		m.avail[node] += n
		if m.avail[node] > m.cap[node] {
			m.avail[node] = m.cap[node]
		}
	}
	m.cond.Broadcast()
}

// kick wakes all waiters so they can re-validate (e.g. after a node
// failure changes what a waiting query should do).
func (m *slotManager) kick() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}
