package hashring

import (
	"testing"
	"testing/quick"

	"eon/internal/types"
)

func TestRingPartitionsSpace(t *testing.T) {
	for _, n := range []int{1, 3, 4, 7, 16} {
		r := NewRing(n)
		if r.Count() != n {
			t.Fatalf("count = %d", r.Count())
		}
		if r.Segment(0).Start != 0 {
			t.Errorf("n=%d: first segment starts at %d", n, r.Segment(0).Start)
		}
		if r.Segment(n-1).End != SpaceSize {
			t.Errorf("n=%d: last segment ends at %d", n, r.Segment(n-1).End)
		}
		for i := 1; i < n; i++ {
			if r.Segment(i).Start != r.Segment(i-1).End {
				t.Errorf("n=%d: gap between segment %d and %d", n, i-1, i)
			}
		}
	}
}

// Property: every hash lands in exactly the segment SegmentFor returns.
func TestSegmentForContains(t *testing.T) {
	r := NewRing(7)
	f := func(h uint32) bool {
		return r.Segment(r.SegmentFor(h)).Contains(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentForBoundaries(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 4; i++ {
		seg := r.Segment(i)
		if got := r.SegmentFor(uint32(seg.Start)); got != i {
			t.Errorf("start of segment %d maps to %d", i, got)
		}
		if got := r.SegmentFor(uint32(seg.End - 1)); got != i {
			t.Errorf("end-1 of segment %d maps to %d", i, got)
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	row := types.Row{types.NewInt(42), types.NewString("grace")}
	h1 := HashRowCols(row, []int{0, 1})
	h2 := HashRowCols(row, []int{0, 1})
	if h1 != h2 {
		t.Error("hash not deterministic")
	}
	h3 := HashRowCols(row, []int{1, 0})
	if h1 == h3 {
		t.Error("column order should matter")
	}
}

func TestHashNullDistinct(t *testing.T) {
	a := HashDatum(types.NullDatum(types.Int64))
	b := HashDatum(types.NewInt(0))
	if a == b {
		t.Error("NULL must hash differently from zero")
	}
}

func TestHashTypeTagged(t *testing.T) {
	// int 0 and empty string should not collide trivially.
	if HashDatum(types.NewInt(0)) == HashDatum(types.NewString("")) {
		t.Error("types should be tagged in hash input")
	}
}

func TestHashBatchColsMatchesRow(t *testing.T) {
	s := types.Schema{{Name: "a", Type: types.Int64}, {Name: "b", Type: types.Varchar}}
	b := types.BatchFromRows(s, []types.Row{
		{types.NewInt(1), types.NewString("x")},
		{types.NewInt(2), types.NewString("y")},
	})
	hs := HashBatchCols(b, []int{0, 1}, nil)
	for i := 0; i < b.NumRows(); i++ {
		if hs[i] != HashRowCols(b.Row(i), []int{0, 1}) {
			t.Errorf("row %d batch hash mismatch", i)
		}
	}
}

// Property: hash distribution over segments is reasonably even.
func TestHashDistribution(t *testing.T) {
	r := NewRing(4)
	counts := make([]int, 4)
	n := 20000
	for i := 0; i < n; i++ {
		h := HashRowCols(types.Row{types.NewInt(int64(i))}, []int{0})
		counts[r.SegmentFor(h)]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(n)
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("segment %d has fraction %.3f, expected near 0.25", i, frac)
		}
	}
}

func TestBuddyLayout(t *testing.T) {
	b := BuddyLayout{Nodes: 4, Offset: 1}
	for seg := 0; seg < 8; seg++ {
		base := b.BaseNode(seg)
		buddy := b.BuddyNode(seg)
		if base == buddy {
			t.Errorf("segment %d: buddy on same node %d", seg, base)
		}
		if buddy != (base+1)%4 {
			t.Errorf("segment %d: buddy %d, want ring rotation", seg, buddy)
		}
	}
}

func TestSegmentForRow(t *testing.T) {
	r := NewRing(3)
	row := types.Row{types.NewInt(99), types.NewString("q")}
	want := r.SegmentFor(HashRowCols(row, []int{1}))
	if got := r.SegmentForRow(row, []int{1}); got != want {
		t.Errorf("SegmentForRow = %d, want %d", got, want)
	}
}
