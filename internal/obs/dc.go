package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The Data Collector is the event-log half of the observability layer
// (the metrics registry and span tracer are the aggregate half): named,
// retention-bounded ring buffers that hot paths emit small typed events
// into — a depot fetch, an eviction, a mergeout job, a spill, a
// reconcile action, an admission wait, a slow query. Rings are surfaced
// to operators as v_monitor.dc_* system tables.
//
// The write path is lock-free and allocation-light: each ring is split
// into a fixed number of shards, a writer picks a shard by hashing the
// event's node name, claims a sequence number with one atomic add and
// publishes the event with one atomic pointer swap. Readers never block
// writers: a snapshot walks the published slots and keeps only events
// whose sequence is still inside the retention window, so a racing
// overwrite simply drops that slot from the cut.
//
// Retention is bounded by rows AND bytes (DCPolicy). The row bound is
// the hard allocation bound (slots are preallocated); the byte bound is
// enforced by writers logically expiring the oldest events — advancing
// a floor cursor and clearing their slots — until the ring fits.

// DCPolicy bounds each Data Collector ring.
type DCPolicy struct {
	// MaxRows is the per-ring slot count (hard allocation bound).
	// Default 1024.
	MaxRows int
	// MaxBytes bounds the estimated retained bytes per ring; oldest
	// events expire first. Default 1 MiB.
	MaxBytes int64
}

func (p DCPolicy) withDefaults() DCPolicy {
	if p.MaxRows <= 0 {
		p.MaxRows = 1024
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = 1 << 20
	}
	return p
}

// DCEvent is one Data Collector event. Every ring uses the same compact
// shape — a timestamp, the emitting node, up to two strings and up to
// four integers — and gives the fields ring-specific column names via
// its DCRingDef, so emitting never allocates maps.
type DCEvent struct {
	// TimeNS is the event time in Unix nanoseconds (set by Emit).
	TimeNS int64
	// Seq is the ring-wide publication order (set by Emit).
	Seq int64
	// Node is the emitting node ("" for cluster-wide events).
	Node string
	// A and B are the ring's string fields (see DCRingDef).
	A, B string
	// V1..V4 are the ring's integer fields (see DCRingDef).
	V1, V2, V3, V4 int64
}

// dcEventBytes estimates the retained size of an event: the struct plus
// its string payloads.
func dcEventBytes(e *DCEvent) int64 {
	return 96 + int64(len(e.Node)+len(e.A)+len(e.B))
}

// DCRingDef names a ring and the event fields it uses. An empty column
// name marks the field unused; system tables build their schema from
// the used fields only.
type DCRingDef struct {
	// Name is the ring name; the system table is "v_monitor.dc_<Name>".
	Name string
	// ACol/BCol name the string fields ("" = unused).
	ACol, BCol string
	// VCols name the integer fields V1..V4 in order (len <= 4).
	VCols []string
}

// dcShardCount splits each ring so concurrent emitters (per-node scan
// workers, the tuple mover, the reconciler) rarely contend on the same
// cursor. Must be a power of two.
const dcShardCount = 4

// dcShard is one independently cursored slice of a ring.
type dcShard struct {
	slots []atomic.Pointer[DCEvent]
	// head is the next sequence to write; slot index = seq % len(slots).
	head atomic.Int64
	// floor is the oldest retained sequence (advanced by byte expiry).
	floor atomic.Int64
	// bytes is the estimated retained size of live slots.
	bytes atomic.Int64
	// maxBytes is this shard's share of the ring byte budget.
	maxBytes int64

	_ [3]int64 // pad shards apart to limit false sharing
}

// DCRing is one named event ring. A nil ring drops all emits, so
// callers can hold optional rings without guards.
type DCRing struct {
	def DCRingDef
	pol DCPolicy

	shards [dcShardCount]dcShard

	emitted atomic.Int64
	dropped atomic.Int64
}

func newDCRing(def DCRingDef, pol DCPolicy) *DCRing {
	r := &DCRing{def: def, pol: pol}
	perShard := pol.MaxRows / dcShardCount
	if perShard < 1 {
		perShard = 1
	}
	for i := range r.shards {
		r.shards[i].slots = make([]atomic.Pointer[DCEvent], perShard)
		r.shards[i].maxBytes = pol.MaxBytes / dcShardCount
	}
	return r
}

// Def returns the ring's definition.
func (r *DCRing) Def() DCRingDef { return r.def }

// Name returns the ring name.
func (r *DCRing) Name() string { return r.def.Name }

// Emit publishes one event. Safe for concurrent use; never blocks on a
// reader; O(1) plus byte-budget expiry of displaced events.
func (r *DCRing) Emit(ev DCEvent) {
	if r == nil {
		return
	}
	ev.TimeNS = time.Now().UnixNano()
	sh := &r.shards[dcHash(ev.Node)&(dcShardCount-1)]
	seq := sh.head.Add(1) - 1
	ev.Seq = seq
	sz := dcEventBytes(&ev)
	old := sh.slots[seq%int64(len(sh.slots))].Swap(&ev)
	delta := sz
	if old != nil {
		delta -= dcEventBytes(old)
		r.dropped.Add(1)
	}
	r.emitted.Add(1)
	nb := sh.bytes.Add(delta)
	// Expire oldest events until the shard fits its byte budget. The
	// newest event always survives, so a single oversized event cannot
	// livelock the loop.
	for nb > sh.maxBytes {
		f := sh.floor.Load()
		if f >= seq {
			break
		}
		if !sh.floor.CompareAndSwap(f, f+1) {
			nb = sh.bytes.Load()
			continue
		}
		slot := &sh.slots[f%int64(len(sh.slots))]
		if e := slot.Load(); e != nil && e.Seq == f && slot.CompareAndSwap(e, nil) {
			nb = sh.bytes.Add(-dcEventBytes(e))
			r.dropped.Add(1)
			continue
		}
		nb = sh.bytes.Load()
	}
}

// Snapshot returns the retained events, oldest first. The cut is
// consistent per event (events are immutable once published) and never
// blocks writers; events overwritten mid-walk are simply absent.
func (r *DCRing) Snapshot() []DCEvent {
	if r == nil {
		return nil
	}
	var out []DCEvent
	for i := range r.shards {
		sh := &r.shards[i]
		head := sh.head.Load()
		lo := head - int64(len(sh.slots))
		if lo < 0 {
			lo = 0
		}
		if f := sh.floor.Load(); f > lo {
			lo = f
		}
		for s := lo; s < head; s++ {
			if e := sh.slots[s%int64(len(sh.slots))].Load(); e != nil && e.Seq == s {
				out = append(out, *e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TimeNS != out[j].TimeNS {
			return out[i].TimeNS < out[j].TimeNS
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// DCRingStats summarizes one ring for listings (\dc, tests).
type DCRingStats struct {
	Name     string
	Retained int
	Emitted  int64
	Dropped  int64
	Bytes    int64
}

// Stats returns the ring's counters and current occupancy.
func (r *DCRing) Stats() DCRingStats {
	if r == nil {
		return DCRingStats{}
	}
	st := DCRingStats{
		Name:    r.def.Name,
		Emitted: r.emitted.Load(),
		Dropped: r.dropped.Load(),
	}
	for i := range r.shards {
		sh := &r.shards[i]
		st.Bytes += sh.bytes.Load()
		head, lo := sh.head.Load(), sh.head.Load()-int64(len(sh.slots))
		if lo < 0 {
			lo = 0
		}
		if f := sh.floor.Load(); f > lo {
			lo = f
		}
		if n := head - lo; n > 0 {
			st.Retained += int(n)
		}
	}
	return st
}

// dcHash is a tiny FNV-1a over the shard key; good enough to spread
// per-node emitters across shards.
func dcHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// DataCollector owns the named rings of one database. Ring creation is
// rare (setup time) and guarded by a mutex; emits go straight to a ring
// pointer the caller resolved once.
type DataCollector struct {
	pol DCPolicy

	mu    sync.RWMutex
	rings map[string]*DCRing
}

// NewDataCollector builds a collector whose rings use pol (zero fields
// take defaults: 1024 rows, 1 MiB per ring).
func NewDataCollector(pol DCPolicy) *DataCollector {
	return &DataCollector{pol: pol.withDefaults(), rings: map[string]*DCRing{}}
}

// Policy returns the per-ring retention policy in effect.
func (dc *DataCollector) Policy() DCPolicy {
	if dc == nil {
		return DCPolicy{}
	}
	return dc.pol
}

// Ring returns the named ring, creating it with def on first use. A nil
// collector returns a nil ring (which drops emits).
func (dc *DataCollector) Ring(def DCRingDef) *DCRing {
	if dc == nil {
		return nil
	}
	dc.mu.RLock()
	r := dc.rings[def.Name]
	dc.mu.RUnlock()
	if r != nil {
		return r
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if r = dc.rings[def.Name]; r == nil {
		r = newDCRing(def, dc.pol)
		dc.rings[def.Name] = r
	}
	return r
}

// Lookup returns the named ring or nil.
func (dc *DataCollector) Lookup(name string) *DCRing {
	if dc == nil {
		return nil
	}
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	return dc.rings[name]
}

// Rings returns every ring, sorted by name.
func (dc *DataCollector) Rings() []*DCRing {
	if dc == nil {
		return nil
	}
	dc.mu.RLock()
	out := make([]*DCRing, 0, len(dc.rings))
	for _, r := range dc.rings {
		out = append(out, r)
	}
	dc.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].def.Name < out[j].def.Name })
	return out
}
