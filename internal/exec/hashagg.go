package exec

import (
	"fmt"

	"eon/internal/expr"
	"eon/internal/types"
)

// AggKind enumerates the aggregation functions the engine executes.
type AggKind uint8

// Aggregate kinds. The *Merge kinds combine partial states during
// distributed final aggregation: counts are summed, sums summed, min/min
// and max/max taken, and averages merged from (sum, count) column pairs.
const (
	AggCountStar AggKind = iota + 1
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
	AggCountMerge
	AggAvgMerge
)

// AggDef is one aggregate output: kind plus its bound argument expression
// (nil for COUNT(*)). Name labels the output column.
type AggDef struct {
	Kind AggKind
	Arg  expr.Expr
	// ArgCount is the bound count column for AggAvgMerge (the second of
	// the partial (sum, count) pair).
	ArgCount expr.Expr
	Name     string
}

// resultType returns the output type of the aggregate.
func (a AggDef) resultType() types.Type {
	switch a.Kind {
	case AggCountStar, AggCount, AggCountMerge:
		return types.Int64
	case AggAvg, AggAvgMerge:
		return types.Float64
	case AggSum:
		if a.Arg.Type().Physical() == types.Float64 {
			return types.Float64
		}
		return types.Int64
	default: // Min/Max
		return a.Arg.Type()
	}
}

// partial state per group per aggregate.
type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	min   types.Datum
	max   types.Datum
	init  bool
}

// HashAggregate groups rows by bound key expressions and computes
// aggregates. When Partial is set, AggAvg emits its (sum, count) state as
// two columns named Name and Name+"_cnt" for a downstream AggAvgMerge.
//
// With a limited memory governor and a spill store configured, grouped
// aggregation spills: when charging a new group would exceed the budget,
// the group table is written to local disk as a run sorted by encoded
// key bytes and the table resets; runs merge at the end by combining
// per-key partial states. Output order is then ascending key-byte order
// instead of first-seen order (SQL leaves it unspecified; budgeted
// queries wanting an order must sort). Without spilling, first-seen
// order and results are byte-identical to the ungoverned operator.
type HashAggregate struct {
	input   Operator
	keys    []expr.Expr
	aggs    []AggDef
	partial bool
	schema  types.Schema
	Eng     Engine

	// Mem and Spill, both set with a finite budget, enable spilling.
	// Configured by the executor, like Eng.
	Mem   *MemGovernor
	Spill SpillStore

	done bool
}

// NewHashAggregate builds a grouping operator. keyNames label the group
// key output columns.
func NewHashAggregate(input Operator, keys []expr.Expr, keyNames []string, aggs []AggDef, partial bool) *HashAggregate {
	var schema types.Schema
	for i, k := range keys {
		schema = append(schema, types.Column{Name: keyNames[i], Type: k.Type()})
	}
	for _, a := range aggs {
		if partial && a.Kind == AggAvg {
			// The partial AVG sum column is always Float64 (avgSum
			// accumulates in float regardless of the argument type).
			schema = append(schema, types.Column{Name: a.Name, Type: types.Float64})
			schema = append(schema, types.Column{Name: a.Name + "_cnt", Type: types.Int64})
			continue
		}
		schema = append(schema, types.Column{Name: a.Name, Type: a.resultType()})
	}
	return &HashAggregate{input: input, keys: keys, aggs: aggs, partial: partial, schema: schema}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() types.Schema { return h.schema }

// Next implements Operator.
func (h *HashAggregate) Next() (*types.Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	if h.Eng.Row {
		return h.nextRow()
	}
	// The spill path needs encoded key bytes per group (the run sort
	// order), so it replaces the typed-map fast paths. Global aggregates
	// (no keys) hold one group and never need it.
	if h.Mem.Limited() && h.Spill != nil && len(h.keys) > 0 {
		return h.nextSpill()
	}
	return h.nextVec()
}

// nextVec is the vectorized aggregation path: key and argument
// expressions evaluate densely over the upstream selection, group
// indexes resolve through typed maps where the key shape allows, and
// accumulation runs column-at-a-time per aggregate. Group output order
// (first-seen) is identical to the row path.
func (h *HashAggregate) nextVec() (*types.Batch, error) {
	var keyRows []types.Row
	var states [][]aggState
	var keyBuf []byte

	singleInt := len(h.keys) == 1 && h.keys[0].Type().Physical() == types.Int64
	singleStr := len(h.keys) == 1 && h.keys[0].Type().Physical() == types.Varchar
	var intGroups map[int64]int
	var strGroups map[string]int
	var groups map[string]int
	nullGroup := -1
	switch {
	case singleInt:
		intGroups = map[int64]int{}
	case singleStr:
		strGroups = map[string]int{}
	default:
		groups = map[string]int{}
	}
	allKeyCols := make([]int, len(h.keys))
	for i := range allKeyCols {
		allKeyCols[i] = i
	}

	for {
		b, sel, err := pullSel(h.input)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		m := selLen(b, sel)
		if m == 0 {
			continue
		}
		keyVals := make([]*types.Vector, len(h.keys))
		for i, k := range h.keys {
			v, err := expr.EvalVec(k, b, sel, h.Eng.Stats)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		argVals := make([]*types.Vector, len(h.aggs))
		cntVals := make([]*types.Vector, len(h.aggs))
		for i, a := range h.aggs {
			if a.Arg != nil {
				v, err := expr.EvalVec(a.Arg, b, sel, h.Eng.Stats)
				if err != nil {
					return nil, err
				}
				argVals[i] = v
			}
			if a.ArgCount != nil {
				v, err := expr.EvalVec(a.ArgCount, b, sel, h.Eng.Stats)
				if err != nil {
					return nil, err
				}
				cntVals[i] = v
			}
		}
		keyBatch := &types.Batch{Cols: keyVals}

		// Resolve every row's group index for this batch.
		gis := make([]int, m)
		newGroup := func(j int) int {
			gi := len(keyRows)
			if len(h.keys) > 0 {
				keyRows = append(keyRows, keyBatch.Row(j))
			} else {
				keyRows = append(keyRows, nil)
			}
			states = append(states, make([]aggState, len(h.aggs)))
			return gi
		}
		switch {
		case len(h.keys) == 0:
			if len(states) == 0 {
				newGroup(0)
			}
			// gis are all zero already.
		case singleInt:
			kv := keyVals[0]
			ints := kv.Ints
			for j := 0; j < m; j++ {
				if kv.IsNull(j) {
					if nullGroup < 0 {
						nullGroup = newGroup(j)
					}
					gis[j] = nullGroup
					continue
				}
				gi, ok := intGroups[ints[j]]
				if !ok {
					gi = newGroup(j)
					intGroups[ints[j]] = gi
				}
				gis[j] = gi
			}
		case singleStr:
			kv := keyVals[0]
			strs := kv.Strs
			for j := 0; j < m; j++ {
				if kv.IsNull(j) {
					if nullGroup < 0 {
						nullGroup = newGroup(j)
					}
					gis[j] = nullGroup
					continue
				}
				gi, ok := strGroups[strs[j]]
				if !ok {
					gi = newGroup(j)
					strGroups[strs[j]] = gi
				}
				gis[j] = gi
			}
		default:
			for j := 0; j < m; j++ {
				keyBuf = rowKey(keyBuf, keyBatch, j, allKeyCols)
				gi, ok := groups[string(keyBuf)]
				if !ok {
					gi = newGroup(j)
					groups[string(keyBuf)] = gi
				}
				gis[j] = gi
			}
		}

		// Columnar accumulation: one pass per aggregate over the batch,
		// with typed fast paths for the count/sum/avg family.
		for ai := range h.aggs {
			a := h.aggs[ai]
			argv, cntv := argVals[ai], cntVals[ai]
			switch a.Kind {
			case AggCountStar:
				for _, gi := range gis {
					states[gi][ai].count++
				}
			case AggCount:
				for j, gi := range gis {
					if !argv.IsNull(j) {
						states[gi][ai].count++
					}
				}
			case AggSum, AggAvg:
				if argv.Typ.Physical() == types.Float64 {
					fs := argv.Floats
					for j, gi := range gis {
						if argv.IsNull(j) {
							continue
						}
						st := &states[gi][ai]
						st.count++
						st.sumF += fs[j]
						st.init = true
					}
				} else {
					is := argv.Ints // nil for non-numeric args, which sum as 0
					for j, gi := range gis {
						if argv.IsNull(j) {
							continue
						}
						var v int64
						if is != nil {
							v = is[j]
						}
						st := &states[gi][ai]
						st.count++
						st.sumI += v
						st.sumF += float64(v)
						st.init = true
					}
				}
			default:
				// Min/Max and the merge kinds keep the Datum-based
				// update, whose semantics are shared with the row path.
				for j, gi := range gis {
					var arg, cnt types.Datum
					if argv != nil {
						arg = argv.Datum(j)
					}
					if cntv != nil {
						cnt = cntv.Datum(j)
					}
					if err := states[gi][ai].update(a.Kind, arg, cnt); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	return h.assemble(keyRows, states)
}

// assemble renders the accumulated groups in first-seen order, adding
// the implicit single group for a global aggregate over no rows.
func (h *HashAggregate) assemble(keyRows []types.Row, states [][]aggState) (*types.Batch, error) {
	if len(h.keys) == 0 && len(states) == 0 {
		keyRows = append(keyRows, nil)
		states = append(states, make([]aggState, len(h.aggs)))
	}
	out := types.NewBatch(h.schema, len(keyRows))
	for gi := range keyRows {
		out.AppendRow(h.renderGroup(keyRows[gi], states[gi]))
	}
	return out, nil
}

// renderGroup finalizes one group into an output row.
func (h *HashAggregate) renderGroup(keyRow types.Row, states []aggState) types.Row {
	r := make(types.Row, 0, len(h.schema))
	r = append(r, keyRow...)
	for ai, a := range h.aggs {
		st := &states[ai]
		if h.partial && a.Kind == AggAvg {
			r = append(r, types.NewFloat(st.avgSum()), types.NewInt(st.count))
			continue
		}
		r = append(r, st.result(a))
	}
	return r
}

// nextRow is the original row-engine aggregation path.
func (h *HashAggregate) nextRow() (*types.Batch, error) {
	groups := map[string]int{} // key -> group index
	var keyRows []types.Row    // materialized group key values
	var states [][]aggState

	var keyBuf []byte
	for {
		b, err := h.input.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		// Evaluate key expressions and aggregate arguments per batch.
		keyVals := make([]*types.Vector, len(h.keys))
		for i, k := range h.keys {
			v, err := expr.EvalBatch(k, b)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		argVals := make([]*types.Vector, len(h.aggs))
		cntVals := make([]*types.Vector, len(h.aggs))
		for i, a := range h.aggs {
			if a.Arg != nil {
				v, err := expr.EvalBatch(a.Arg, b)
				if err != nil {
					return nil, err
				}
				argVals[i] = v
			}
			if a.ArgCount != nil {
				v, err := expr.EvalBatch(a.ArgCount, b)
				if err != nil {
					return nil, err
				}
				cntVals[i] = v
			}
		}
		keyBatch := &types.Batch{Cols: keyVals}
		allKeyCols := make([]int, len(h.keys))
		for i := range allKeyCols {
			allKeyCols[i] = i
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			var gi int
			if len(h.keys) > 0 {
				keyBuf = rowKey(keyBuf, keyBatch, i, allKeyCols)
				idx, ok := groups[string(keyBuf)]
				if !ok {
					idx = len(keyRows)
					groups[string(keyBuf)] = idx
					keyRows = append(keyRows, keyBatch.Row(i))
					states = append(states, make([]aggState, len(h.aggs)))
				}
				gi = idx
			} else {
				if len(states) == 0 {
					keyRows = append(keyRows, nil)
					states = append(states, make([]aggState, len(h.aggs)))
				}
				gi = 0
			}
			for ai := range h.aggs {
				var arg, cnt types.Datum
				if argVals[ai] != nil {
					arg = argVals[ai].Datum(i)
				}
				if cntVals[ai] != nil {
					cnt = cntVals[ai].Datum(i)
				}
				if err := states[gi][ai].update(h.aggs[ai].Kind, arg, cnt); err != nil {
					return nil, err
				}
			}
		}
	}

	return h.assemble(keyRows, states)
}

func (s *aggState) update(kind AggKind, arg, cnt types.Datum) error {
	switch kind {
	case AggCountStar:
		s.count++
	case AggCount:
		if !arg.Null {
			s.count++
		}
	case AggCountMerge:
		if !arg.Null {
			s.count += arg.I
		}
	case AggSum, AggAvg:
		if arg.Null {
			return nil
		}
		s.count++
		if arg.K.Physical() == types.Float64 {
			s.sumF += arg.F
		} else {
			s.sumI += arg.I
			s.sumF += float64(arg.I)
		}
		s.init = true
	case AggAvgMerge:
		if arg.Null || cnt.Null {
			return nil
		}
		s.sumF += arg.F
		s.count += cnt.I
		s.init = true
	case AggMin:
		if arg.Null {
			return nil
		}
		if !s.init || arg.Compare(s.min) < 0 {
			s.min = arg
		}
		if !s.init || arg.Compare(s.max) > 0 {
			s.max = arg
		}
		s.init = true
	case AggMax:
		if arg.Null {
			return nil
		}
		if !s.init || arg.Compare(s.max) > 0 {
			s.max = arg
		}
		if !s.init || arg.Compare(s.min) < 0 {
			s.min = arg
		}
		s.init = true
	default:
		return fmt.Errorf("exec: unknown aggregate kind %d", kind)
	}
	return nil
}

func (s *aggState) avgSum() float64 { return s.sumF }

func (s *aggState) result(a AggDef) types.Datum {
	switch a.Kind {
	case AggCountStar, AggCount, AggCountMerge:
		return types.NewInt(s.count)
	case AggSum:
		if !s.init {
			return types.NullDatum(a.resultType())
		}
		if a.resultType() == types.Float64 {
			return types.NewFloat(s.sumF)
		}
		return types.NewInt(s.sumI)
	case AggAvg, AggAvgMerge:
		if s.count == 0 {
			return types.NullDatum(types.Float64)
		}
		return types.NewFloat(s.sumF / float64(s.count))
	case AggMin:
		if !s.init {
			return types.NullDatum(a.resultType())
		}
		return s.min
	case AggMax:
		if !s.init {
			return types.NullDatum(a.resultType())
		}
		return s.max
	}
	return types.Datum{}
}
