package core

import (
	"fmt"
	"testing"
	"time"

	"eon/internal/objstore"
	"eon/internal/types"
)

// Broadcast join path: a small right side with the broadcast limit set.
func TestBroadcastJoinExecution(t *testing.T) {
	db, err := Create(Config{
		Mode:              ModeEon,
		Nodes:             []NodeSpec{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
		ShardCount:        3,
		BroadcastRowLimit: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	// Both segmented by their own keys; join on non-segmentation columns
	// forces a non-local strategy, and the small right side broadcasts.
	mustExec(t, s, `CREATE TABLE big (b_id INTEGER, k INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION big_p AS SELECT * FROM big ORDER BY b_id SEGMENTED BY HASH(b_id) ALL NODES`)
	mustExec(t, s, `CREATE TABLE small (s_id INTEGER, k INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION small_p AS SELECT * FROM small ORDER BY s_id SEGMENTED BY HASH(s_id) ALL NODES`)

	schema := types.Schema{{Name: "b_id", Type: types.Int64}, {Name: "k", Type: types.Int64}}
	bigBatch := types.NewBatch(schema, 300)
	for i := 0; i < 300; i++ {
		bigBatch.AppendRow(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 10))})
	}
	if err := db.LoadRows("big", bigBatch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO small VALUES (%d, %d)`, 100+i, i))
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM big b JOIN small sm ON b.k = sm.k`)
	if res.Row(t, 0)[0].I != 300 { // each big row matches exactly one small row
		t.Errorf("broadcast join count = %v", res.Rows())
	}
}

// Revive donor repair: a node whose uploads lag gets repaired from the
// donor snapshot at revive.
func TestReviveRepairsLaggingNode(t *testing.T) {
	shared := objstore.NewMem()
	db, err := Create(Config{
		Mode:       ModeEon,
		Nodes:      []NodeSpec{{Name: "node1"}, {Name: "node2"}},
		Shared:     shared,
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 60)
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	// Simulate node2 losing its later uploads: delete its files above
	// its checkpoint so TruncateTo fails for it at the consensus
	// version... instead, just delete all of node2's uploads: revive
	// must repair it entirely from node1.
	ctx := db.Context()
	infos, _ := shared.List(ctx, fmt.Sprintf("metadata/%s/node2/", db.Incarnation()))
	for _, fi := range infos {
		if err := shared.Delete(ctx, fi.Key); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range db.Nodes() {
		n.up.Store(false)
	}
	db.shutdown.Store(true)

	db2, err := Revive(Config{Shared: shared, Now: func() time.Time {
		return time.Now().Add(time.Hour)
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db2.NewSession(), `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 60 {
		t.Errorf("revived count = %v", res.Rows())
	}
	// The repaired node serves queries too.
	n2, ok := db2.Node("node2")
	if !ok || !n2.Up() {
		t.Fatal("node2 missing after revive")
	}
	if n2.catalog.Version() == 0 {
		t.Error("node2 catalog not repaired")
	}
}

// A second Eon cluster can be "cloned" from copied storage: instance ids
// in SIDs keep the clones collision-free (§5.1). Simulated by reviving
// into a different node set.
func TestReviveWithDifferentNodeNames(t *testing.T) {
	shared := objstore.NewMem()
	db, err := Create(Config{
		Mode:       ModeEon,
		Nodes:      []NodeSpec{{Name: "node1"}, {Name: "node2"}},
		Shared:     shared,
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 30)
	if err := db.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Default node set comes from cluster_info.json.
	db2, err := Revive(Config{Shared: shared})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, n := range db2.Nodes() {
		names[n.Name()] = true
	}
	if !names["node1"] || !names["node2"] {
		t.Errorf("revived node set = %v", names)
	}
}

// Killing the initiator (lowest-named node) moves initiation to the next
// node transparently.
func TestInitiatorFailover(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 90)
	if err := db.KillNode("node1"); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 90 {
		t.Errorf("count = %v", res.Rows())
	}
	// Writes also work through the new initiator.
	mustExec(t, s, `INSERT INTO sales VALUES (9999, 'x', 1.0, 'y')`)
	res = mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 91 {
		t.Errorf("post-insert count = %v", res.Rows())
	}
}

// Enterprise WOS contents are lost on node kill (the paper's motivation
// for removing the WOS in Eon, §5.1).
func TestEnterpriseWOSLostOnKill(t *testing.T) {
	// Three nodes: killing one preserves quorum (1 of 2 would not).
	db := newTestDB(t, ModeEnterprise, 3, 3)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`) // in WOS (threshold 4)
	if err := db.KillNode("node2"); err != nil {
		t.Fatal(err)
	}
	if err := db.RecoverNode("node2"); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	// node2's WOS rows are gone; node1's survive. The exact count
	// depends on segmentation, but it must be less than 3 only if node2
	// held rows — assert it never exceeds 3 and the query works.
	if res.Row(t, 0)[0].I > 3 {
		t.Errorf("count = %v", res.Rows())
	}
}
