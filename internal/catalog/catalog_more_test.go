package catalog

import (
	"testing"

	"eon/internal/udfs"
)

func TestOnCommitHook(t *testing.T) {
	c := New()
	var seen []uint64
	c.OnCommit(func(rec *LogRecord) { seen = append(seen, rec.Version) })
	for i := 0; i < 3; i++ {
		txn := c.Begin()
		txn.Put(newTable(c, "t"))
		if _, err := c.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 || seen[2] != 3 {
		t.Errorf("hook calls = %v", seen)
	}
}

func TestTxnHelpers(t *testing.T) {
	c := New()
	txn := c.Begin()
	if txn.Pending() {
		t.Error("fresh txn pending")
	}
	if txn.Base().Version() != 0 {
		t.Error("base version")
	}
	tbl := newTable(c, "t")
	txn.Put(tbl)
	txn.TrackRead(999) // nonexistent: modVersion 0
	if !txn.Pending() {
		t.Error("not pending after put")
	}
	if oids := txn.StagedOIDs(); len(oids) != 1 || oids[0] != tbl.OID {
		t.Errorf("staged = %v", oids)
	}
	// Put then Delete keeps one staged entry.
	txn.Delete(tbl.OID)
	if got, ok := txn.Get(tbl.OID); ok {
		t.Errorf("deleted object visible: %v", got)
	}
	if len(txn.StagedOIDs()) != 1 {
		t.Errorf("staged after delete = %v", txn.StagedOIDs())
	}
}

func TestTrackReadConflicts(t *testing.T) {
	c := New()
	setup := c.Begin()
	tbl := newTable(c, "t")
	setup.Put(tbl)
	c.Commit(setup)

	reader := c.Begin()
	reader.TrackRead(tbl.OID)
	reader.Put(newTable(c, "other"))

	w := c.Begin()
	o, _ := w.Get(tbl.OID)
	m := o.Clone().(*Table)
	m.Name = "renamed"
	w.Put(m)
	c.Commit(w)

	if _, err := c.Commit(reader); err == nil {
		t.Error("tracked read should conflict")
	}
}

func TestInstallObjects(t *testing.T) {
	c := New()
	txn := c.Begin()
	txn.Put(newTable(c, "t"))
	c.Commit(txn)
	v := c.Version()

	sc := &StorageContainer{OID: 100, ShardIndex: 2, RowCount: 5}
	c.InstallObjects([]Object{sc})
	if c.Version() != v {
		t.Error("InstallObjects must not advance the version")
	}
	got, ok := c.Snapshot().Get(100)
	if !ok || got.(*StorageContainer).RowCount != 5 {
		t.Error("installed object missing")
	}
	// Re-install does not overwrite.
	c.InstallObjects([]Object{&StorageContainer{OID: 100, ShardIndex: 2, RowCount: 99}})
	got, _ = c.Snapshot().Get(100)
	if got.(*StorageContainer).RowCount != 5 {
		t.Error("existing object overwritten")
	}
}

func TestDropShardObjects(t *testing.T) {
	c := New()
	txn := c.Begin()
	tbl := newTable(c, "t")
	txn.Put(tbl)
	txn.Put(&StorageContainer{OID: c.NewOID(), ShardIndex: 1})
	txn.Put(&StorageContainer{OID: c.NewOID(), ShardIndex: 2})
	c.Commit(txn)
	v := c.Version()

	dropped := c.DropShardObjects(1)
	if len(dropped) != 1 {
		t.Fatalf("dropped = %v", dropped)
	}
	if c.Version() != v {
		t.Error("drop must not advance version")
	}
	if _, ok := c.Snapshot().Get(dropped[0].GetOID()); ok {
		t.Error("dropped object visible")
	}
	if _, ok := c.Snapshot().Get(tbl.OID); !ok {
		t.Error("global object lost")
	}
}

func TestInstallSnapshot(t *testing.T) {
	src := New()
	txn := src.Begin()
	txn.Put(newTable(src, "t"))
	c, _ := src.Commit(txn)
	_ = c

	dst := New()
	dst.Install(src.Snapshot(), MaxOID(src.Snapshot()))
	if dst.Version() != 1 || dst.Snapshot().Len() != 1 {
		t.Errorf("installed v%d len=%d", dst.Version(), dst.Snapshot().Len())
	}
	if dst.NewOID() <= 1 {
		t.Error("allocator not advanced")
	}
}

func TestObjectMisc(t *testing.T) {
	kinds := []Kind{KindTable, KindProjection, KindShard, KindSubscription, KindNode, KindStorageContainer, KindDeleteVector}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind name")
	}
	p := &Projection{OID: 1, SegmentCols: []string{"a"}}
	if p.Replicated() {
		t.Error("segmented projection is not replicated")
	}
	if p.IsLiveAggregate() {
		t.Error("plain projection is not live")
	}
	p2 := &Projection{OID: 2}
	if !p2.Replicated() {
		t.Error("no segment cols = replicated")
	}
	lap := &Projection{OID: 3, LiveAggs: []LiveAgg{{Op: "sum", Col: "x", Name: "s"}}}
	if !lap.IsLiveAggregate() {
		t.Error("live aggregate not detected")
	}
	cl := lap.Clone().(*Projection)
	cl.LiveAggs[0].Name = "mutated"
	if lap.LiveAggs[0].Name != "s" {
		t.Error("clone aliases LiveAggs")
	}
	// Shard / Subscription / Node clones.
	sh := &Shard{OID: 4, Index: 1}
	if sh.Clone().(*Shard).Index != 1 || sh.Shard() != GlobalShard {
		t.Error("shard clone")
	}
	sub := &Subscription{OID: 5, Node: "n", State: SubActive}
	if sub.Clone().(*Subscription).Node != "n" {
		t.Error("subscription clone")
	}
	nd := &Node{OID: 6, Name: "n"}
	if nd.Clone().(*Node).Name != "n" {
		t.Error("node clone")
	}
	dv := &DeleteVector{OID: 7, ShardIndex: 3}
	if dv.Clone().(*DeleteVector).ShardIndex != 3 || dv.Shard() != 3 {
		t.Error("dv clone")
	}
	tbl := &Table{OID: 8, Flattened: []FlattenedCol{{Column: "c"}}}
	tc := tbl.Clone().(*Table)
	tc.Flattened[0].Column = "mut"
	if tbl.Flattened[0].Column != "c" {
		t.Error("table clone aliases Flattened")
	}
}

func TestPersisterAccessors(t *testing.T) {
	fs := udfs.NewMemFS()
	p := NewPersister(fs, "cat", 0)
	if p.Dir() != "cat" || p.FS() != fs {
		t.Error("accessors")
	}
	if p.CheckpointThreshold <= 0 {
		t.Error("zero threshold should default")
	}
	c := New()
	c.SetPersister(p)
	if c.Persister() != p {
		t.Error("persister accessor")
	}
}

func TestDecodedOpsMemoized(t *testing.T) {
	c := New()
	txn := c.Begin()
	txn.Put(newTable(c, "t"))
	rec, _ := c.Commit(txn)
	a, err := rec.DecodedOps()
	if err != nil || len(a) != 1 {
		t.Fatal(err)
	}
	b, _ := rec.DecodedOps()
	if &a[0] != &b[0] {
		t.Error("decode not memoized")
	}
}
