package exec

import (
	"eon/internal/types"
)

// HashJoin is an inner equi-join: the left (build) input is fully
// materialized into a hash table keyed on the build columns, then the
// right (probe) input streams through. The output schema is the left
// schema followed by the right schema.
type HashJoin struct {
	build     Operator
	probe     Operator
	buildKeys []int
	probeKeys []int
	schema    types.Schema
	Eng       Engine

	// Mem, when set, is charged for the materialized build side and the
	// hash table for the lifetime of the probe (released when the probe
	// exhausts). The build side does not spill — grace hash join is an
	// open roadmap item — so the charge documents rather than bounds it.
	Mem *MemGovernor

	built    bool
	table    map[string][]int // key -> build row indexes
	tableInt map[int64][]int  // typed path: single Int64-physical key
	intKey   bool
	buildAll *types.Batch
	charged  int64
}

// NewHashJoin creates an inner hash join on build.cols == probe.cols.
func NewHashJoin(build, probe Operator, buildKeys, probeKeys []int) *HashJoin {
	schema := append(append(types.Schema{}, build.Schema()...), probe.Schema()...)
	return &HashJoin{
		build: build, probe: probe,
		buildKeys: buildKeys, probeKeys: probeKeys,
		schema: schema,
	}
}

// Schema implements Operator.
func (h *HashJoin) Schema() types.Schema { return h.schema }

func (h *HashJoin) buildTable() error {
	all, err := Collect(h.build)
	if err != nil {
		return err
	}
	h.buildAll = all
	// Batch bytes plus per-row hash-table entry overhead.
	h.charged = BatchMemBytes(all) + 16*int64(all.NumRows())
	h.Mem.Charge(h.charged)
	// A single Int64-physical key pair hashes on the raw int64 instead
	// of an encoded byte string. (Mismatched physical classes keep the
	// tagged encoding, which correctly never matches across classes.)
	h.intKey = !h.Eng.Row && len(h.buildKeys) == 1 &&
		h.build.Schema()[h.buildKeys[0]].Type.Physical() == types.Int64 &&
		h.probe.Schema()[h.probeKeys[0]].Type.Physical() == types.Int64
	if h.intKey {
		h.tableInt = make(map[int64][]int, all.NumRows())
		col := all.Cols[h.buildKeys[0]]
		for i := 0; i < all.NumRows(); i++ {
			// SQL join semantics: NULL keys never match.
			if col.IsNull(i) {
				continue
			}
			h.tableInt[col.Ints[i]] = append(h.tableInt[col.Ints[i]], i)
		}
		h.built = true
		return nil
	}
	h.table = make(map[string][]int, all.NumRows())
	var key []byte
	for i := 0; i < all.NumRows(); i++ {
		if anyNull(all, i, h.buildKeys) {
			continue
		}
		key = rowKey(key, all, i, h.buildKeys)
		h.table[string(key)] = append(h.table[string(key)], i)
	}
	h.built = true
	return nil
}

func anyNull(b *types.Batch, i int, cols []int) bool {
	for _, c := range cols {
		if b.Cols[c].IsNull(i) {
			return true
		}
	}
	return false
}

// Next implements Operator.
func (h *HashJoin) Next() (*types.Batch, error) {
	if !h.built {
		if err := h.buildTable(); err != nil {
			return nil, err
		}
	}
	var key []byte
	for {
		var pb *types.Batch
		var sel []int
		var err error
		if h.Eng.Row {
			pb, err = h.probe.Next()
		} else {
			pb, sel, err = pullSel(h.probe)
		}
		if err != nil || pb == nil {
			h.Mem.Release(h.charged)
			h.charged = 0
			return nil, err
		}
		var leftIdx, rightIdx []int
		m := selLen(pb, sel)
		if h.intKey {
			col := pb.Cols[h.probeKeys[0]]
			for j := 0; j < m; j++ {
				i := selRow(sel, j)
				if col.IsNull(i) {
					continue
				}
				for _, bi := range h.tableInt[col.Ints[i]] {
					leftIdx = append(leftIdx, bi)
					rightIdx = append(rightIdx, i)
				}
			}
		} else {
			for j := 0; j < m; j++ {
				i := selRow(sel, j)
				if anyNull(pb, i, h.probeKeys) {
					continue
				}
				key = rowKey(key, pb, i, h.probeKeys)
				for _, bi := range h.table[string(key)] {
					leftIdx = append(leftIdx, bi)
					rightIdx = append(rightIdx, i)
				}
			}
		}
		if len(leftIdx) == 0 {
			continue
		}
		left := h.buildAll.Gather(leftIdx)
		right := pb.Gather(rightIdx)
		out := &types.Batch{Cols: append(left.Cols, right.Cols...)}
		return out, nil
	}
}