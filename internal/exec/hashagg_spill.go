package exec

import (
	"bytes"
	"container/heap"
	"sort"

	"eon/internal/expr"
	"eon/internal/types"
)

// groupMemBytes estimates the resident cost of one hash-table group: map
// entry and slice headers, the encoded key, the materialized key row and
// the aggregate state array.
func groupMemBytes(keyLen, nKeys, nAggs int) int64 {
	return int64(64 + 2*keyLen + 56*nKeys + 80*nAggs)
}

// merge folds another partial state for the same group and aggregate
// into s. The fields update maintains are all mergeable independent of
// kind: counts and sums add, min/max compare, init ors.
func (s *aggState) merge(o *aggState) {
	s.count += o.count
	s.sumI += o.sumI
	s.sumF += o.sumF
	if o.init {
		if !s.init {
			s.min, s.max = o.min, o.max
		} else {
			if o.min.Compare(s.min) < 0 {
				s.min = o.min
			}
			if o.max.Compare(s.max) > 0 {
				s.max = o.max
			}
		}
		s.init = true
	}
}

// nextSpill is the budget-governed aggregation path: expressions still
// evaluate vectorized, but group resolution runs row-at-a-time against a
// generic byte-key table so any prefix of it can spill as a key-sorted
// run the moment the governor reports the budget exhausted.
func (h *HashAggregate) nextSpill() (*types.Batch, error) {
	groups := map[string]int{}
	var groupKeys [][]byte
	var keyRows []types.Row
	var states [][]aggState
	var keyBuf []byte
	var runs []SpillHandle
	var charged int64

	allKeyCols := make([]int, len(h.keys))
	for i := range allKeyCols {
		allKeyCols[i] = i
	}

	flush := func() error {
		if len(keyRows) == 0 {
			return nil
		}
		hd, err := writeAggRun(h.Spill, groupKeys, keyRows, states)
		if err != nil {
			return err
		}
		h.Mem.NoteSpill(hd.Size)
		runs = append(runs, hd)
		h.Mem.Release(charged)
		charged = 0
		groups = map[string]int{}
		groupKeys, keyRows, states = nil, nil, nil
		return nil
	}

	for {
		b, sel, err := pullSel(h.input)
		if err != nil {
			h.Mem.Release(charged)
			return nil, err
		}
		if b == nil {
			break
		}
		m := selLen(b, sel)
		if m == 0 {
			continue
		}
		keyVals := make([]*types.Vector, len(h.keys))
		for i, k := range h.keys {
			v, err := expr.EvalVec(k, b, sel, h.Eng.Stats)
			if err != nil {
				h.Mem.Release(charged)
				return nil, err
			}
			keyVals[i] = v
		}
		argVals := make([]*types.Vector, len(h.aggs))
		cntVals := make([]*types.Vector, len(h.aggs))
		for i, a := range h.aggs {
			if a.Arg != nil {
				v, err := expr.EvalVec(a.Arg, b, sel, h.Eng.Stats)
				if err != nil {
					h.Mem.Release(charged)
					return nil, err
				}
				argVals[i] = v
			}
			if a.ArgCount != nil {
				v, err := expr.EvalVec(a.ArgCount, b, sel, h.Eng.Stats)
				if err != nil {
					h.Mem.Release(charged)
					return nil, err
				}
				cntVals[i] = v
			}
		}
		keyBatch := &types.Batch{Cols: keyVals}

		for j := 0; j < m; j++ {
			keyBuf = rowKey(keyBuf, keyBatch, j, allKeyCols)
			gi, ok := groups[string(keyBuf)]
			if !ok {
				cost := groupMemBytes(len(keyBuf), len(h.keys), len(h.aggs))
				if len(keyRows) > 0 && h.Mem.WouldExceed(cost) {
					if err := flush(); err != nil {
						h.Mem.Release(charged)
						return nil, err
					}
				}
				gi = len(keyRows)
				groups[string(keyBuf)] = gi
				groupKeys = append(groupKeys, append([]byte(nil), keyBuf...))
				keyRows = append(keyRows, keyBatch.Row(j))
				states = append(states, make([]aggState, len(h.aggs)))
				h.Mem.Charge(cost)
				charged += cost
			}
			for ai := range h.aggs {
				var arg, cnt types.Datum
				if argVals[ai] != nil {
					arg = argVals[ai].Datum(j)
				}
				if cntVals[ai] != nil {
					cnt = cntVals[ai].Datum(j)
				}
				if err := states[gi][ai].update(h.aggs[ai].Kind, arg, cnt); err != nil {
					h.Mem.Release(charged)
					return nil, err
				}
			}
		}
	}

	if len(runs) == 0 {
		// Budget never tripped: output identical to the ungoverned path
		// (first-seen group order).
		defer func() { h.Mem.Release(charged) }()
		return h.assemble(keyRows, states)
	}
	if err := flush(); err != nil {
		h.Mem.Release(charged)
		return nil, err
	}
	return h.mergeAggRuns(runs)
}

// writeAggRun spills the current group table as one run, sorted by
// encoded key bytes so runs can merge with a heap.
func writeAggRun(st SpillStore, keys [][]byte, keyRows []types.Row, states [][]aggState) (SpillHandle, error) {
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return bytes.Compare(keys[order[a]], keys[order[b]]) < 0
	})
	var buf, frame []byte
	n := 0
	for _, gi := range order {
		frame = appendAggRecord(frame, keys[gi], keyRows[gi], states[gi])
		n++
		if n == aggRecsPerFrame {
			buf = appendFrame(buf, frame)
			frame = frame[:0]
			n = 0
		}
	}
	if n > 0 {
		buf = appendFrame(buf, frame)
	}
	return st.Put("aggrun", buf)
}

// aggMergeHeap orders run cursors by their head record's key bytes.
type aggMergeHeap struct {
	cursors []*aggRunCursor
	idx     []int
}

func (m *aggMergeHeap) Len() int { return len(m.idx) }
func (m *aggMergeHeap) Less(i, j int) bool {
	a, b := m.cursors[m.idx[i]], m.cursors[m.idx[j]]
	c := bytes.Compare(a.head().key, b.head().key)
	if c != 0 {
		return c < 0
	}
	return m.idx[i] < m.idx[j]
}
func (m *aggMergeHeap) Swap(i, j int)      { m.idx[i], m.idx[j] = m.idx[j], m.idx[i] }
func (m *aggMergeHeap) Push(x interface{}) { m.idx = append(m.idx, x.(int)) }
func (m *aggMergeHeap) Pop() interface{} {
	old := m.idx
	n := len(old)
	x := old[n-1]
	m.idx = old[:n-1]
	return x
}

// mergeAggRuns k-way merges the spilled runs, combining partial states
// of equal keys, and finalizes each group into the output.
func (h *HashAggregate) mergeAggRuns(runs []SpillHandle) (*types.Batch, error) {
	m := &aggMergeHeap{}
	for _, hd := range runs {
		c := &aggRunCursor{st: h.Spill, h: hd}
		if err := c.load(); err != nil {
			return nil, err
		}
		if !c.done() {
			m.idx = append(m.idx, len(m.cursors))
		}
		m.cursors = append(m.cursors, c)
	}
	heap.Init(m)

	out := types.NewBatch(h.schema, 0)
	advance := func() error {
		c := m.cursors[m.idx[0]]
		c.pos++
		if err := c.load(); err != nil {
			return err
		}
		if c.done() {
			heap.Pop(m)
		} else {
			heap.Fix(m, 0)
		}
		return nil
	}
	for len(m.idx) > 0 {
		cur := *m.cursors[m.idx[0]].head()
		if err := advance(); err != nil {
			return nil, err
		}
		for len(m.idx) > 0 && bytes.Equal(m.cursors[m.idx[0]].head().key, cur.key) {
			next := m.cursors[m.idx[0]].head()
			for ai := range cur.states {
				cur.states[ai].merge(&next.states[ai])
			}
			if err := advance(); err != nil {
				return nil, err
			}
		}
		out.AppendRow(h.renderGroup(cur.row, cur.states))
	}
	return out, nil
}
