package core

import (
	"fmt"
	"strings"

	"eon/internal/catalog"
	"eon/internal/storage"
	"eon/internal/types"
)

// validateFlattened checks a table's SET USING specs at creation.
func (db *DB) validateFlattened(snap *catalog.Snapshot, schema types.Schema, flattened []catalog.FlattenedCol) error {
	for _, f := range flattened {
		col := schema.ColumnIndex(f.Column)
		if col < 0 {
			return fmt.Errorf("core: flattened column %q missing", f.Column)
		}
		factKey := schema.ColumnIndex(f.FactKey)
		if factKey < 0 {
			return fmt.Errorf("core: SET USING fact key %q missing", f.FactKey)
		}
		dim, ok := snap.TableByName(f.DimTable)
		if !ok {
			return fmt.Errorf("core: SET USING dimension table %q does not exist", f.DimTable)
		}
		dimKey := dim.Columns.ColumnIndex(f.DimKey)
		if dimKey < 0 {
			return fmt.Errorf("core: dimension %q has no column %q", f.DimTable, f.DimKey)
		}
		dimValue := dim.Columns.ColumnIndex(f.DimValue)
		if dimValue < 0 {
			return fmt.Errorf("core: dimension %q has no column %q", f.DimTable, f.DimValue)
		}
		if dim.Columns[dimKey].Type.Physical() != schema[factKey].Type.Physical() {
			return fmt.Errorf("core: SET USING key types differ: %s vs %s",
				schema[factKey].Type, dim.Columns[dimKey].Type)
		}
		if dim.Columns[dimValue].Type.Physical() != schema[col].Type.Physical() {
			return fmt.Errorf("core: SET USING value type %s does not match column %q (%s)",
				dim.Columns[dimValue].Type, f.Column, schema[col].Type)
		}
	}
	return nil
}

// readTableRows materializes a whole table (first full projection, delete
// vectors applied, plus Enterprise WOS rows) in table column order.
// Intended for small dimension tables.
func (db *DB) readTableRows(snap *catalog.Snapshot, tbl *catalog.Table) (*types.Batch, error) {
	ctx := db.Context()
	var full *catalog.Projection
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		if !p.IsLiveAggregate() && p.BuddyOffset == 0 && len(p.Columns) == len(tbl.Columns) {
			full = p
			break
		}
	}
	if full == nil {
		return nil, fmt.Errorf("core: table %q has no full projection", tbl.Name)
	}
	projSchema := projectionSchema(tbl, full.Columns)
	out := types.NewBatch(tbl.Columns, 0)
	appendRows := func(b *types.Batch) {
		// Reorder projection columns into table order.
		reordered := &types.Batch{Cols: make([]*types.Vector, len(tbl.Columns))}
		for ti, c := range tbl.Columns {
			pj := projSchema.ColumnIndex(c.Name)
			reordered.Cols[ti] = b.Cols[pj]
		}
		out.AppendBatch(reordered)
	}
	for _, sc := range snap.ContainersOf(full.OID, catalog.GlobalShard) {
		node := db.nodeForStorage(sc)
		if node == nil {
			return nil, fmt.Errorf("core: no node can read container %d", sc.OID)
		}
		fetch := db.fetchFunc(node, false)
		rows, err := storage.ReadColumns(ctx, sc, projSchema, fetch, db.scanConc())
		if err != nil {
			return nil, err
		}
		var dvLists [][]int64
		for _, dv := range snap.DeleteVectorsOf(sc.OID) {
			if db.mode == ModeEnterprise && dv.OwnerNode != node.name {
				continue
			}
			data, err := fetch(ctx, dv.File.Path)
			if err != nil {
				return nil, err
			}
			positions, err := storage.ReadDeleteVector(data)
			if err != nil {
				return nil, err
			}
			dvLists = append(dvLists, positions)
		}
		deletes := storage.NewDeleteSet(dvLists...)
		if deletes.Len() > 0 {
			live := deletes.LivePositions(0, rows.NumRows())
			if len(live) == 0 {
				continue
			}
			rows = rows.Gather(live)
		}
		appendRows(rows)
	}
	if db.mode == ModeEnterprise {
		for _, n := range db.Nodes() {
			if !n.Up() || n.wos == nil {
				continue
			}
			if wb := n.wos.Rows(full.OID); wb != nil && wb.NumRows() > 0 {
				appendRows(wb)
			}
		}
	}
	return out, nil
}

// dimLookup builds the key→value map for one flattened column.
func (db *DB) dimLookup(snap *catalog.Snapshot, f catalog.FlattenedCol) (map[string]types.Datum, error) {
	dim, ok := snap.TableByName(f.DimTable)
	if !ok {
		return nil, fmt.Errorf("core: dimension table %q dropped", f.DimTable)
	}
	rows, err := db.readTableRows(snap, dim)
	if err != nil {
		return nil, err
	}
	keyIdx := dim.Columns.ColumnIndex(f.DimKey)
	valIdx := dim.Columns.ColumnIndex(f.DimValue)
	lookup := make(map[string]types.Datum, rows.NumRows())
	for i := 0; i < rows.NumRows(); i++ {
		k := rows.Cols[keyIdx].Datum(i)
		if k.Null {
			continue
		}
		key := k.String()
		if _, dup := lookup[key]; !dup {
			lookup[key] = rows.Cols[valIdx].Datum(i)
		}
	}
	return lookup, nil
}

// applyFlattened fills the table's denormalized columns from their
// dimension tables ("arbitrary denormalization using joins at load
// time", §2.1). Loaded values for flattened columns are ignored; a fact
// key with no dimension match yields NULL.
func (db *DB) applyFlattened(snap *catalog.Snapshot, tbl *catalog.Table, batch *types.Batch) (*types.Batch, error) {
	if len(tbl.Flattened) == 0 {
		return batch, nil
	}
	out := &types.Batch{Cols: append([]*types.Vector{}, batch.Cols...)}
	for _, f := range tbl.Flattened {
		lookup, err := db.dimLookup(snap, f)
		if err != nil {
			return nil, err
		}
		colIdx := tbl.Columns.ColumnIndex(f.Column)
		keyIdx := tbl.Columns.ColumnIndex(f.FactKey)
		colType := tbl.Columns[colIdx].Type
		filled := types.NewVector(colType, batch.NumRows())
		for i := 0; i < batch.NumRows(); i++ {
			k := out.Cols[keyIdx].Datum(i)
			if k.Null {
				filled.Append(types.NullDatum(colType))
				continue
			}
			if v, ok := lookup[k.String()]; ok {
				v.K = colType
				filled.Append(v)
			} else {
				filled.Append(types.NullDatum(colType))
			}
		}
		out.Cols[colIdx] = filled
	}
	return out, nil
}

// RefreshColumns recomputes a table's flattened columns from the current
// dimension contents — the refresh mechanism of §2.1 "for updating the
// denormalized table columns when the joined dimension table changes".
// Each container holding a flattened column is rewritten (old files free
// through the usual GC path). It returns the number of containers
// rewritten.
func (db *DB) RefreshColumns(tableName string) (int, error) {
	init, err := db.anyUpNode()
	if err != nil {
		return 0, err
	}
	ctx := db.Context()
	txn := init.catalog.Begin()
	snap := txn.Base()
	tbl, ok := snap.TableByName(tableName)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", tableName)
	}
	if len(tbl.Flattened) == 0 {
		return 0, nil
	}
	lookups := map[string]map[string]types.Datum{}
	for _, f := range tbl.Flattened {
		l, err := db.dimLookup(snap, f)
		if err != nil {
			return 0, err
		}
		lookups[strings.ToLower(f.Column)] = l
	}

	recomputeProj := func(projSchema types.Schema, rows *types.Batch) error {
		for _, f := range tbl.Flattened {
			colIdx := projSchema.ColumnIndex(f.Column)
			keyIdx := projSchema.ColumnIndex(f.FactKey)
			if colIdx < 0 {
				continue
			}
			if keyIdx < 0 {
				return fmt.Errorf("core: projection lacks fact key %q needed for refresh", f.FactKey)
			}
			lookup := lookups[strings.ToLower(f.Column)]
			colType := projSchema[colIdx].Type
			filled := types.NewVector(colType, rows.NumRows())
			for i := 0; i < rows.NumRows(); i++ {
				k := rows.Cols[keyIdx].Datum(i)
				if v, ok := lookup[k.String()]; ok && !k.Null {
					v.K = colType
					filled.Append(v)
				} else {
					filled.Append(types.NullDatum(colType))
				}
			}
			rows.Cols[colIdx] = filled
		}
		return nil
	}

	type droppedC struct {
		sc  *catalog.StorageContainer
		dvs []*catalog.DeleteVector
	}
	var dropped []droppedC
	rewritten := 0
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		if p.IsLiveAggregate() {
			continue
		}
		// Does this projection carry any flattened column?
		touches := false
		for _, f := range tbl.Flattened {
			for _, c := range p.Columns {
				if strings.EqualFold(c, f.Column) {
					touches = true
				}
			}
		}
		if !touches {
			continue
		}
		projSchema := projectionSchema(tbl, p.Columns)
		for _, sc := range snap.ContainersOf(p.OID, catalog.GlobalShard) {
			node := db.nodeForStorage(sc)
			if node == nil {
				return rewritten, fmt.Errorf("core: no node can read container %d", sc.OID)
			}
			fetch := db.fetchFunc(node, false)
			rows, err := storage.ReadColumns(ctx, sc, projSchema, fetch, db.scanConc())
			if err != nil {
				return rewritten, err
			}
			d := droppedC{sc: sc, dvs: snap.DeleteVectorsOf(sc.OID)}
			var dvLists [][]int64
			for _, dv := range d.dvs {
				if db.mode == ModeEnterprise && dv.OwnerNode != node.name {
					continue
				}
				data, err := fetch(ctx, dv.File.Path)
				if err != nil {
					return rewritten, err
				}
				positions, err := storage.ReadDeleteVector(data)
				if err != nil {
					return rewritten, err
				}
				dvLists = append(dvLists, positions)
				txn.Delete(dv.OID)
			}
			deletes := storage.NewDeleteSet(dvLists...)
			if deletes.Len() > 0 {
				live := deletes.LivePositions(0, rows.NumRows())
				rows = rows.Gather(live)
			}
			// Recompute flattened columns present in this projection.
			if err := recomputeProj(projSchema, rows); err != nil {
				return rewritten, err
			}
			owner := ""
			if db.mode == ModeEnterprise {
				owner = sc.OwnerNode
			}
			built, err := storage.BuildContainer(init.catalog, node.inst, storage.WriteSpec{
				Projection: p, Schema: projSchema,
				ShardIndex: sc.ShardIndex, PartitionKey: sc.PartitionKey,
				OwnerNode: owner, BundleThreshold: db.cfg.BundleThreshold,
				CreateVersion: snap.Version() + 1,
			}, rows)
			if err != nil {
				return rewritten, err
			}
			txn.Delete(sc.OID)
			dropped = append(dropped, d)
			if built != nil {
				if err := db.persistFiles(ctx, node, built.Files, sc.ShardIndex, db.neverCacheTable(tbl.Name)); err != nil {
					return rewritten, err
				}
				txn.Put(built.Meta)
			}
			rewritten++
		}
	}
	// Live aggregate projections whose group or aggregate columns include
	// a flattened column are rebuilt from the refreshed rows: their
	// partial groups were keyed by the stale values.
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		if !p.IsLiveAggregate() {
			continue
		}
		affected := false
		for _, f := range tbl.Flattened {
			for _, c := range p.LiveSchema {
				if strings.EqualFold(c.Name, f.Column) {
					affected = true
				}
			}
			for _, c := range p.Columns {
				if strings.EqualFold(c, f.Column) {
					affected = true
				}
			}
		}
		if !affected {
			continue
		}
		// Drop the stale partial containers.
		for _, sc := range snap.ContainersOf(p.OID, catalog.GlobalShard) {
			d := droppedC{sc: sc, dvs: snap.DeleteVectorsOf(sc.OID)}
			for _, dv := range d.dvs {
				txn.Delete(dv.OID)
			}
			txn.Delete(sc.OID)
			dropped = append(dropped, d)
			rewritten++
		}
		// Rebuild from the refreshed base rows. The base containers are
		// staged in this transaction but not yet committed, so read the
		// pre-refresh rows and recompute the flattened columns on them.
		baseRows, err := db.readTableRows(snap, tbl)
		if err != nil {
			return rewritten, err
		}
		if err := recomputeProj(tbl.Columns, baseRows); err != nil {
			return rewritten, err
		}
		partitions, err := db.splitByPartition(tbl, baseRows)
		if err != nil {
			return rewritten, err
		}
		writers, err := db.writerAssignment(snap)
		if err != nil {
			return rewritten, err
		}
		ships, _, err := db.buildProjectionContainers(init, txn, tbl, p, partitions, writers, snap.Version()+1)
		if err != nil {
			return rewritten, err
		}
		for _, s := range ships {
			if err := db.persistFiles(ctx, s.writer, s.files, s.shard, db.neverCacheTable(tbl.Name)); err != nil {
				return rewritten, err
			}
		}
	}

	// Enterprise: rows still buffered in WOS memory are recomputed in
	// place.
	if db.mode == ModeEnterprise {
		for _, p := range snap.ProjectionsOf(tbl.OID) {
			if p.IsLiveAggregate() {
				continue
			}
			projSchema := projectionSchema(tbl, p.Columns)
			for _, n := range db.Nodes() {
				if !n.Up() || n.wos == nil {
					continue
				}
				err := n.wos.Transform(p.OID, func(b *types.Batch) (*types.Batch, error) {
					if err := recomputeProj(projSchema, b); err != nil {
						return nil, err
					}
					rewritten++
					return b, nil
				})
				if err != nil {
					return rewritten, err
				}
			}
		}
	}

	if !txn.Pending() {
		return rewritten, nil
	}
	rec, err := db.commit(init, txn, nil)
	if err != nil {
		return 0, err
	}
	after := init.catalog.Snapshot()
	for _, d := range dropped {
		db.queueContainerFilesIfUnreferenced(after, d.sc, d.dvs, rec.Version)
	}
	return rewritten, nil
}
