package core

import (
	"testing"
)

func TestNeverCacheTablePolicy(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	db.SetNeverCacheTable("archive", true)

	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE archive (id INTEGER)`)
	mustExec(t, s, `CREATE TABLE hot (id INTEGER)`)
	for i := 0; i < 3; i++ {
		mustExec(t, s, `INSERT INTO archive VALUES (1), (2), (3)`)
		mustExec(t, s, `INSERT INTO hot VALUES (1), (2), (3)`)
	}

	// Write-through off: archive loads left nothing in any cache beyond
	// the hot table's files.
	archiveCached := false
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	archTbl, _ := snap.TableByName("archive")
	for _, p := range snap.ProjectionsOf(archTbl.OID) {
		for _, sc := range snap.ContainersOf(p.OID, -1) {
			for _, f := range sc.AllFiles() {
				for _, n := range db.Nodes() {
					if n.Cache().Contains(f.Path) {
						archiveCached = true
					}
				}
			}
		}
	}
	if archiveCached {
		t.Error("never-cache table files admitted at load (§5.2 write-through off)")
	}

	// Scans of the archive table must not admit either.
	mustQuery(t, s, `SELECT COUNT(*) FROM archive`)
	for _, p := range snap.ProjectionsOf(archTbl.OID) {
		for _, sc := range snap.ContainersOf(p.OID, -1) {
			for _, f := range sc.AllFiles() {
				for _, n := range db.Nodes() {
					if n.Cache().Contains(f.Path) {
						t.Error("never-cache table files admitted at scan")
					}
				}
			}
		}
	}

	// The hot table still caches normally.
	hotCached := 0
	for _, n := range db.Nodes() {
		hotCached += n.Cache().Stats().Files
	}
	if hotCached == 0 {
		t.Error("hot table should be cached")
	}

	// Results are still correct.
	res := mustQuery(t, s, `SELECT COUNT(*) FROM archive`)
	if res.Row(t, 0)[0].I != 9 {
		t.Errorf("count = %v", res.Rows())
	}
}

func TestRackLocalAssignmentPreferred(t *testing.T) {
	db, err := Create(Config{
		Mode: ModeEon,
		Nodes: []NodeSpec{
			{Name: "node1", Rack: "rackA"}, {Name: "node2", Rack: "rackA"},
			{Name: "node3", Rack: "rackB"}, {Name: "node4", Rack: "rackB"},
		},
		ShardCount:        2,
		ReplicationFactor: 4, // every node serves every shard
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 50)
	s := db.NewSession()
	// The initiator is the lowest-named up node (node1, rackA); with all
	// shards coverable in-rack, assignments must stay on rackA (§4.1).
	for trial := 0; trial < 8; trial++ {
		env, err := s.selectParticipants(mustUp(t, db))
		if err != nil {
			t.Fatal(err)
		}
		for shard, node := range env.assignment {
			if db.net.Rack(node) != "rackA" {
				t.Errorf("trial %d: shard %d crossed racks to %s", trial, shard, node)
			}
		}
	}
	// With rackA unable to cover (node2 down leaves node1 only — still
	// covers at rep 4; kill both A nodes is not viable). Instead verify
	// subcluster priority still dominates: a session pinned to a
	// subcluster ignores racks.
	res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 50 {
		t.Errorf("count = %v", res.Rows())
	}
}
