package core

import (
	"context"
	"sync"
	"time"

	"eon/internal/objstore"
	"eon/internal/storage"
)

// uploadRetries and uploadBackoff tune the balanced retry loop around
// shared-storage access (§5.3).
const (
	uploadRetries = 5
	uploadBackoff = 2 * time.Millisecond
)

// persistFiles makes a built container's files durable before commit.
// Eon (Figure 8): write into the writer's cache, upload to shared
// storage, and ship to peer subscribers' caches so node-down performance
// stays warm. Enterprise: write to the owner's local disk.
func (db *DB) persistFiles(ctx context.Context, writer *Node, files map[string][]byte, shardIdx int, noCache bool) error {
	if db.mode == ModeEnterprise {
		for path, data := range files {
			if err := writer.fs.WriteFile(ctx, "data/"+path, data); err != nil {
				return err
			}
		}
		return nil
	}
	for path, data := range files {
		// 1-2. Write data in the cache (unless the table's shaping
		// policy turns write-through off, §5.2).
		if !noCache {
			if err := writer.cache.Put(ctx, path, data); err != nil {
				return err
			}
		}
		// 3a. Flush to shared storage (the commit point prerequisite).
		err := objstore.WithRetry(ctx, uploadRetries, uploadBackoff, func() error {
			return db.shared.Put(ctx, path, data)
		})
		if err != nil {
			return err
		}
	}
	// 3b. Send to peer subscribers of the shard, in parallel, so their
	// caches are already warm if they take over (§5.2).
	if noCache {
		return nil
	}
	var wg sync.WaitGroup
	for _, peer := range db.subscriberNodes(shardIdx) {
		if peer == writer || !peer.Up() {
			continue
		}
		wg.Add(1)
		go func(peer *Node) {
			defer wg.Done()
			for path, data := range files {
				if err := db.net.Transfer(ctx, writer.name, peer.name, int64(len(data))); err != nil {
					continue // peer went down mid-ship; it will warm later
				}
				_ = peer.cache.Put(ctx, path, data)
			}
		}(peer)
	}
	wg.Wait()
	return nil
}

// subscriberNodes returns the nodes subscribed to a shard in states that
// serve or will serve data.
func (db *DB) subscriberNodes(shardIdx int) []*Node {
	n, err := db.anyUpNode()
	if err != nil {
		return nil
	}
	snap := n.catalog.Snapshot()
	var out []*Node
	for _, s := range snap.SubscribersOf(shardIdx) {
		if node, ok := db.Node(s.Node); ok {
			out = append(out, node)
		}
	}
	return out
}

// fetchFunc builds the file-read path for scans on a node. Eon reads
// through the node's cache with a shared-storage fallback (optionally
// bypassing the cache, §5.2); Enterprise reads node-local disk.
func (db *DB) fetchFunc(n *Node, bypassCache bool) storage.FetchFunc {
	if db.mode == ModeEnterprise {
		return func(ctx context.Context, path string) ([]byte, error) {
			return n.fs.ReadFile(ctx, "data/"+path)
		}
	}
	fromShared := func(ctx context.Context, path string) ([]byte, error) {
		var data []byte
		err := objstore.WithRetry(ctx, uploadRetries, uploadBackoff, func() error {
			var e error
			data, e = db.shared.Get(ctx, path)
			return e
		})
		return data, err
	}
	return func(ctx context.Context, path string) ([]byte, error) {
		return n.cache.Get(ctx, path, fromShared, bypassCache)
	}
}

// deleteDataFile removes a dropped storage file: immediately from every
// node cache / local disk, and (Eon) queues the shared-storage object for
// deferred deletion once no query or pending revive could reference it
// (§6.5).
func (db *DB) deleteDataFile(ctx context.Context, path string, dropVersion uint64) {
	for _, n := range db.Nodes() {
		if db.mode == ModeEnterprise {
			_ = n.fs.Remove(ctx, "data/"+path)
		} else if n.cache != nil {
			n.cache.Drop(ctx, path)
		}
	}
	if db.mode == ModeEon {
		db.gcMu.Lock()
		db.deferred = append(db.deferred, pendingDelete{path: path, dropVersion: dropVersion})
		db.gcMu.Unlock()
	}
}
