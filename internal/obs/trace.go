package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace collects the spans of one query into a hierarchical profile.
// A nil *Trace (tracing disabled) is fully functional: StartSpan returns
// a nil *Span whose methods no-op without allocating, so instrumented
// code never branches on whether tracing is on.
type Trace struct {
	mu       sync.Mutex
	root     *Span
	now      func() time.Time
	open     int
	dangling int
}

// Span is one timed region of a trace. Child spans may be started from
// any goroutine; a span's own counters are mutated under the trace lock.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	wall     time.Duration
	rowsIn   int64
	rowsOut  int64
	bytes    int64
	attrs    map[string]int64
	children []*Span
	ended    bool
	// accum marks a span whose wall time is accumulated via AddTime
	// (summed across workers); End keeps the accumulated value instead of
	// measuring start-to-end.
	accum bool
}

// NewTrace starts a trace with a root span of the given name. The clock
// defaults to time.Now; tests inject a deterministic one.
func NewTrace(name string, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	t := &Trace{now: now}
	t.root = &Span{tr: t, name: name, start: now()}
	t.open = 1
	return t
}

// Root returns the trace's root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a child span under s. Returns nil when tracing is
// disabled (nil receiver) so the caller's End/Add calls all no-op.
func (s *Span) StartSpan(name string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	child := &Span{tr: t, name: name, start: t.now()}
	s.children = append(s.children, child)
	t.open++
	return child
}

// End closes the span, fixing its wall time. Ending twice is a no-op, so
// `defer sp.End()` composes with early explicit ends on error paths.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	if !s.accum {
		s.wall = t.now().Sub(s.start)
	}
	t.open--
}

// AddRowsIn accumulates rows consumed by the span's operator.
func (s *Span) AddRowsIn(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.tr.mu.Lock()
	s.rowsIn += n
	s.tr.mu.Unlock()
}

// AddRowsOut accumulates rows produced by the span's operator.
func (s *Span) AddRowsOut(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.tr.mu.Lock()
	s.rowsOut += n
	s.tr.mu.Unlock()
}

// AddBytes accumulates bytes fetched/transferred within the span.
func (s *Span) AddBytes(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.tr.mu.Lock()
	s.bytes += n
	s.tr.mu.Unlock()
}

// AddTime widens the span's wall time by d without closing it. Used by
// accumulator spans (decode/filter) that sum time across worker
// goroutines rather than measuring their own start-to-end interval.
func (s *Span) AddTime(d time.Duration) {
	if s == nil || d == 0 {
		return
	}
	s.tr.mu.Lock()
	s.accum = true
	s.wall += d
	s.tr.mu.Unlock()
}

// AddAttr accumulates a named counter on the span (cache hits, blocks
// pruned, ...). Attributes with zero deltas are not materialized.
func (s *Span) AddAttr(key string, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]int64{}
	}
	s.attrs[key] += n
	s.tr.mu.Unlock()
}

// spanKey is the context key for the active span.
type spanKey struct{}

// WithSpan returns a context carrying sp as the active span.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the active span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Finish closes the trace: any spans still open (a query that failed
// mid-scan) are force-ended so the profile is complete, and the count of
// such dangling spans is recorded. Returns the materialized profile.
func (t *Trace) Finish() *Profile {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var closeAll func(s *Span)
	closeAll = func(s *Span) {
		if !s.ended {
			s.ended = true
			if !s.accum {
				s.wall = t.now().Sub(s.start)
			}
			t.open--
			if s != t.root {
				t.dangling++
			}
		}
		for _, c := range s.children {
			closeAll(c)
		}
	}
	closeAll(t.root)
	p := profileOf(t.root)
	p.Dangling = t.dangling
	return p
}

// Profile is the immutable, exportable form of a finished trace: a tree
// of per-operator measurements backing EXPLAIN PROFILE and the
// slow-query log.
type Profile struct {
	Name     string           `json:"name"`
	Wall     time.Duration    `json:"wall_ns"`
	RowsIn   int64            `json:"rows_in,omitempty"`
	RowsOut  int64            `json:"rows_out,omitempty"`
	Bytes    int64            `json:"bytes,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*Profile       `json:"children,omitempty"`
	// Dangling is set on the root only: spans force-ended by Finish.
	Dangling int `json:"dangling,omitempty"`
}

// profileOf converts a span subtree; caller holds the trace lock.
func profileOf(s *Span) *Profile {
	p := &Profile{
		Name:    s.name,
		Wall:    s.wall,
		RowsIn:  s.rowsIn,
		RowsOut: s.rowsOut,
		Bytes:   s.bytes,
	}
	if len(s.attrs) > 0 {
		p.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			p.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		p.Children = append(p.Children, profileOf(c))
	}
	return p
}

// Find returns the first profile node with the given name in preorder,
// or nil. Convenience for tests and report tooling.
func (p *Profile) Find(name string) *Profile {
	if p == nil {
		return nil
	}
	if p.Name == name {
		return p
	}
	for _, c := range p.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Visit walks the profile tree in preorder.
func (p *Profile) Visit(fn func(*Profile)) {
	if p == nil {
		return
	}
	fn(p)
	for _, c := range p.Children {
		c.Visit(fn)
	}
}

// Text renders the profile as an indented per-operator report.
func (p *Profile) Text() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	var walk func(n *Profile, depth int)
	walk = func(n *Profile, depth int) {
		fmt.Fprintf(&b, "%s%s  wall=%s", strings.Repeat("  ", depth), n.Name, n.Wall.Round(time.Microsecond))
		if n.RowsIn > 0 {
			fmt.Fprintf(&b, " rows_in=%d", n.RowsIn)
		}
		if n.RowsOut > 0 {
			fmt.Fprintf(&b, " rows_out=%d", n.RowsOut)
		}
		if n.Bytes > 0 {
			fmt.Fprintf(&b, " bytes=%d", n.Bytes)
		}
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%d", k, n.Attrs[k])
			}
		}
		if n.Dangling > 0 {
			fmt.Fprintf(&b, " dangling=%d", n.Dangling)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}
