GO ?= go

.PHONY: all vet build test race chaos obs exec reconcile systables serving check bench bench-all

all: check

# Default gate: vet + build + tests, then the full suite under the race
# detector (the scan pipeline is concurrent; races are tier-1 failures).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector.
race:
	$(GO) test -race ./...

# Chaos smoke: the deterministic fault drill (load + query stream +
# node kill + revive under injected shared-storage faults) plus the
# resilience layer's unit tests, race-checked.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestQueryDeadlinePropagates|TestCacheBreakerDegradesToSharedStorage' ./internal/core/
	$(GO) test -race -count=1 ./internal/resilience/ ./internal/objstore/ ./internal/netsim/

# Observability gate: the metrics/tracing package under the race
# detector (registry and span counters are written concurrently), then
# without it so the disabled-tracer zero-allocation test actually runs
# (it skips under -race, which inflates allocation counts).
obs:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -count=1 -run 'TestDisabledTracerZeroAlloc' ./internal/obs/
	$(GO) test -race -count=1 -run 'TestSlowQuery|TestResetStats' ./internal/core/ ./internal/objstore/

# Streaming-executor gate: the streaming-vs-materialized differential
# over the full workload, the LIMIT pushdown / early-termination and
# memory-budget spill tests, and the cancellation leak check — all
# race-checked (the pipeline is goroutines connected by channels) —
# plus the operator and fan-out helper unit tests.
exec:
	$(GO) test -race -count=1 -run 'TestStreaming|TestLimitPushdown|TestQueryMemoryBudget' ./internal/experiments/
	$(GO) test -race -count=1 ./internal/exec/ ./internal/parallel/

# Reconciler gate: the spare lifecycle and RemoveNode regression tests,
# the membership-churn soak, the full reconcile package (all
# race-checked — membership changes race the query stream by design),
# then the chaos-recovery experiment without the race detector so its
# recovery timings stay meaningful.
reconcile:
	$(GO) test -race -count=1 -run 'TestSpare|TestRemoveNode|TestSoakMembershipChurn' ./internal/core/
	$(GO) test -race -count=1 ./internal/reconcile/
	$(GO) test -count=1 -run 'TestChaosRecovery' -timeout 300s ./internal/experiments/

# System-table gate: the virtual-table layer and Data Collector unit
# tests, the v_monitor fill/differential tests, and the chaos liveness
# drill — all race-checked (virtual scans read state that the load,
# tuple-mover and reconcile paths mutate concurrently). Then the
# DC-overhead gate (emit cost <=3% vs a disabled collector; env-guarded
# so plain `go test ./...` stays deterministic) and the on/off
# benchmark into BENCH_systables.json.
systables:
	$(GO) test -race -count=1 ./internal/systable/
	$(GO) test -race -count=1 -run 'TestVMonitor|TestSessionRing|TestSlowQueryExecStats|TestDisableDataCollector|TestSubclusterGauges|TestReconcileStatusProvider' ./internal/core/
	$(GO) test -race -count=1 -run 'TestSystemTables' -timeout 300s ./internal/experiments/
	EON_DC_GATE=1 $(GO) test -count=1 -run 'TestDCOverheadGate' .
	$(GO) test -json -bench 'BenchmarkDCOverhead' -benchmem -benchtime=20x -run '^$$' . > BENCH_systables.json
	@grep -oE '"Output":"[^"]*"' BENCH_systables.json \
		| sed 's/"Output":"//; s/"$$//; s/\\t/ /g; s/\\n//' \
		| awk '/^Benchmark/ && !/ns\/op/ {name=$$1; next} /ns\/op/ {if ($$0 ~ /^Benchmark/) print; else printf "%s %s\n", name, $$0}'
	@echo "wrote BENCH_systables.json"

# Serving-path gate: the staged-lifecycle unit tests (plan cache,
# prepared statements, result-cache invalidation, admission control,
# parse-error accounting) and the caches-on-vs-off TPC-H differential
# under concurrent DDL/load/mergeout churn — all race-checked (cached
# plans are shared by concurrent executions by design). Then the
# acceptance gate (warm hot-query throughput >=2x uncached, admission
# p99 bounded past the concurrency cap; env-guarded so plain
# `go test ./...` stays deterministic) and the throughput/latency
# benchmark into BENCH_serving.json.
serving:
	$(GO) test -race -count=1 -run 'TestPlanCache|TestPrepared|TestQueryArgs|TestParseError|TestResultCache|TestAdmission|TestSessionTimeout|TestServingSystem' ./internal/core/
	$(GO) test -race -count=1 -run 'TestServingCachesDifferential' -timeout 600s ./internal/experiments/
	EON_SERVING_GATE=1 $(GO) test -count=1 -run 'TestServingGate' -timeout 300s .
	$(GO) test -json -bench 'BenchmarkServingThroughput' -benchtime=1x -run '^$$' . > BENCH_serving.json
	@grep -oE '"Output":"[^"]*"' BENCH_serving.json \
		| sed 's/"Output":"//; s/"$$//; s/\\t/ /g; s/\\n//' \
		| awk '/^Benchmark/ && !/ns\/op/ {name=$$1; next} /ns\/op/ {if ($$0 ~ /^Benchmark/) print; else printf "%s %s\n", name, $$0}'
	@echo "wrote BENCH_serving.json"

# Fig-10 plus the ScanConcurrency sweep (cold/warm caches), with
# allocation stats; the raw `go test -json` event stream is kept in
# BENCH_scan.json for later comparison. The vectorized-vs-row kernel
# comparison runs separately into BENCH_query.json.
bench:
	$(GO) test -json -bench 'BenchmarkFig10_TPCH|BenchmarkScanParallelism' -benchmem -benchtime=1x -run '^$$' . > BENCH_scan.json
	@grep -oE '"Output":"[^"]*"' BENCH_scan.json \
		| sed 's/"Output":"//; s/"$$//; s/\\t/ /g; s/\\n//' \
		| awk '/^Benchmark/ && !/ns\/op/ {name=$$1; next} /ns\/op/ {if ($$0 ~ /^Benchmark/) print; else printf "%s %s\n", name, $$0}'
	@echo "wrote BENCH_scan.json"
	$(GO) test -json -bench 'BenchmarkQueryKernels' -benchmem -benchtime=10x -run '^$$' . > BENCH_query.json
	@grep -oE '"Output":"[^"]*"' BENCH_query.json \
		| sed 's/"Output":"//; s/"$$//; s/\\t/ /g; s/\\n//' \
		| awk '/^Benchmark/ && !/ns\/op/ {name=$$1; next} /ns\/op/ {if ($$0 ~ /^Benchmark/) print; else printf "%s %s\n", name, $$0}'
	@echo "wrote BENCH_query.json"
	$(GO) test -json -bench 'BenchmarkTracingOverhead' -benchmem -benchtime=10x -run '^$$' . > BENCH_obs.json
	@grep -oE '"Output":"[^"]*"' BENCH_obs.json \
		| sed 's/"Output":"//; s/"$$//; s/\\t/ /g; s/\\n//' \
		| awk '/^Benchmark/ && !/ns\/op/ {name=$$1; next} /ns\/op/ {if ($$0 ~ /^Benchmark/) print; else printf "%s %s\n", name, $$0}'
	@echo "wrote BENCH_obs.json"
	$(GO) test -json -bench 'BenchmarkStreamingExec' -benchmem -benchtime=5x -run '^$$' . > BENCH_exec.json
	@grep -oE '"Output":"[^"]*"' BENCH_exec.json \
		| sed 's/"Output":"//; s/"$$//; s/\\t/ /g; s/\\n//' \
		| awk '/^Benchmark/ && !/ns\/op/ {name=$$1; next} /ns\/op/ {if ($$0 ~ /^Benchmark/) print; else printf "%s %s\n", name, $$0}'
	@echo "wrote BENCH_exec.json"
	$(GO) test -json -bench 'BenchmarkReconcileRecovery' -benchtime=1x -run '^$$' -timeout 600s . > BENCH_reconcile.json
	@grep -oE '"Output":"[^"]*"' BENCH_reconcile.json \
		| sed 's/"Output":"//; s/"$$//; s/\\t/ /g; s/\\n//' \
		| awk '/^Benchmark/ && !/ns\/op/ {name=$$1; next} /ns\/op/ {if ($$0 ~ /^Benchmark/) print; else printf "%s %s\n", name, $$0}'
	@echo "wrote BENCH_reconcile.json"

# Every benchmark in the repository (figures + ablations).
bench-all:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .
