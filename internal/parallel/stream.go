package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// streamItem carries one produced value (or the producer's error) to the
// in-order consumer.
type streamItem[T any] struct {
	val T
	err error
}

// StreamOrdered runs produce(ctx, worker, idx) for every idx in [0, n)
// through at most conc concurrent workers and hands each result to
// consume in strict index order, on the caller's goroutine. Unlike
// ForEach it never materializes all results: at most conc produced items
// exist at once (workers acquire a window permit before taking an
// index), so a slow consumer exerts backpressure on the producers — the
// streaming analog of ForEach for pipelines that must bound memory.
//
// The first error (from a producer or from consume) cancels the shared
// context, the remaining items are skipped, and that error is returned.
// All workers have exited by the time StreamOrdered returns. With
// conc <= 1 (or n <= 1) items are produced and consumed serially on the
// caller's goroutine.
func StreamOrdered[T any](ctx context.Context, n, conc int, produce func(ctx context.Context, worker, idx int) (T, error), consume func(idx int, v T) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if conc > n {
		conc = n
	}
	if conc <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := produce(ctx, 0, i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each index gets a one-shot future; the consumer drains them in
	// order. Workers take a window permit BEFORE claiming an index, which
	// guarantees the lowest unconsumed index always has (or will get) a
	// permit holder — taking the permit after claiming can strand the
	// cursor index behind later results holding every permit.
	futures := make([]chan streamItem[T], n)
	for i := range futures {
		futures[i] = make(chan streamItem[T], 1)
	}
	permits := make(chan struct{}, conc)
	for i := 0; i < conc; i++ {
		permits <- struct{}{}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(conc)
	for w := 0; w < conc; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-permits:
				case <-wctx.Done():
					return
				}
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				v, err := produce(wctx, worker, idx)
				futures[idx] <- streamItem[T]{val: v, err: err}
			}
		}(w)
	}

	var firstErr error
	for i := 0; i < n && firstErr == nil; i++ {
		select {
		case it := <-futures[i]:
			if it.err != nil {
				firstErr = it.err
				break
			}
			if err := consume(i, it.val); err != nil {
				firstErr = err
				break
			}
			// The consumed item's permit funds the next index.
			select {
			case permits <- struct{}{}:
			case <-wctx.Done():
			}
		case <-ctx.Done():
			firstErr = ctx.Err()
		}
	}
	cancel()
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
