package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrConflict is returned by Commit when optimistic validation fails: an
// object in the transaction's read or write set was modified by a
// concurrent commit (paper §6.3).
var ErrConflict = errors.New("catalog: optimistic concurrency conflict")

// ErrStale is returned when applying a replicated log record whose version
// does not directly follow the catalog's current version.
var ErrStale = errors.New("catalog: log record does not follow current version")

// LogOp is one object mutation within a transaction log record.
type LogOp struct {
	Delete bool            `json:"delete,omitempty"`
	Kind   Kind            `json:"kind"`
	OID    OID             `json:"oid"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// LogRecord is the redo-log entry for one committed transaction. Records
// contain only metadata; data files are written before commit (paper
// §2.4).
type LogRecord struct {
	Version uint64  `json:"version"`
	NextOID OID     `json:"nextOid"`
	Ops     []LogOp `json:"ops"`
	// Shards lists the shard indexes whose storage objects the
	// transaction touched; GlobalShard appears if global objects changed.
	Shards []int `json:"shards"`

	// decoded memoizes the deserialized ops so fanning a record out to
	// many node catalogs decodes once. Objects in snapshots are treated
	// as immutable (copy-on-write), so sharing pointers is safe.
	decodeOnce sync.Once
	decoded    []Object
	decodeErr  error
}

// DecodedOps returns the record's non-delete objects aligned with Ops
// (nil entries for deletes), decoding at most once.
func (r *LogRecord) DecodedOps() ([]Object, error) {
	r.decodeOnce.Do(func() {
		r.decoded = make([]Object, len(r.Ops))
		for i, op := range r.Ops {
			if op.Delete {
				continue
			}
			o, err := unmarshalObject(op.Kind, op.Data)
			if err != nil {
				r.decodeErr = err
				return
			}
			r.decoded[i] = o
		}
	})
	return r.decoded, r.decodeErr
}

// Catalog is the mutable, multi-version metadata store of one node.
type Catalog struct {
	mu      sync.Mutex // the global catalog lock, held only during commit
	cur     atomic.Pointer[Snapshot]
	nextOID atomic.Uint64

	// persister, when set, durably appends each commit's log record.
	persister *Persister

	// onCommit hooks observe committed records (used to distribute
	// metadata deltas to shard subscribers, §3.2).
	onCommit []func(*LogRecord)
}

// New returns an empty catalog at version 0.
func New() *Catalog {
	c := &Catalog{}
	c.cur.Store(emptySnapshot())
	c.nextOID.Store(1)
	return c
}

// SetPersister attaches durable logging; pass nil to detach.
func (c *Catalog) SetPersister(p *Persister) { c.persister = p }

// Persister returns the attached persister, if any.
func (c *Catalog) Persister() *Persister { return c.persister }

// OnCommit registers a hook invoked (under the commit lock) with every
// committed log record.
func (c *Catalog) OnCommit(fn func(*LogRecord)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onCommit = append(c.onCommit, fn)
}

// Snapshot returns the current consistent view.
func (c *Catalog) Snapshot() *Snapshot { return c.cur.Load() }

// Version returns the current catalog version.
func (c *Catalog) Version() uint64 { return c.cur.Load().version }

// NewOID allocates a fresh object identifier.
func (c *Catalog) NewOID() OID { return OID(c.nextOID.Add(1) - 1) }

// Txn is an in-flight catalog transaction. Modifications happen "offline
// and up front without requiring a global catalog lock"; a write set is
// maintained and validated at commit (paper §6.3).
type Txn struct {
	cat     *Catalog
	base    *Snapshot
	writes  map[OID]Object
	deletes map[OID]struct{}
	reads   map[OID]uint64
	order   []OID // write/delete order for deterministic logs
}

// Begin starts a transaction against the current snapshot.
func (c *Catalog) Begin() *Txn {
	return &Txn{
		cat:     c,
		base:    c.Snapshot(),
		writes:  map[OID]Object{},
		deletes: map[OID]struct{}{},
		reads:   map[OID]uint64{},
	}
}

// Base returns the snapshot the transaction started from.
func (t *Txn) Base() *Snapshot { return t.base }

// Get reads an object through the transaction (uncommitted writes are
// visible) and records the read for OCC validation.
func (t *Txn) Get(oid OID) (Object, bool) {
	if _, del := t.deletes[oid]; del {
		return nil, false
	}
	if o, ok := t.writes[oid]; ok {
		return o, true
	}
	o, ok := t.base.Get(oid)
	if ok {
		t.reads[oid] = t.base.ModVersion(oid)
	}
	return o, ok
}

// TrackRead adds oid to the validation read set without fetching it.
func (t *Txn) TrackRead(oid OID) { t.reads[oid] = t.base.ModVersion(oid) }

// Put stages an object write.
func (t *Txn) Put(o Object) {
	oid := o.GetOID()
	if _, seen := t.writes[oid]; !seen {
		if _, del := t.deletes[oid]; !del {
			t.order = append(t.order, oid)
		}
	}
	delete(t.deletes, oid)
	t.writes[oid] = o
}

// Delete stages an object removal.
func (t *Txn) Delete(oid OID) {
	if _, seen := t.deletes[oid]; !seen {
		if _, w := t.writes[oid]; !w {
			t.order = append(t.order, oid)
		}
	}
	delete(t.writes, oid)
	t.deletes[oid] = struct{}{}
}

// Pending reports whether the transaction has staged changes.
func (t *Txn) Pending() bool { return len(t.writes)+len(t.deletes) > 0 }

// StagedOIDs returns the OIDs the transaction has written or deleted, in
// staging order.
func (t *Txn) StagedOIDs() []OID { return append([]OID(nil), t.order...) }

// Commit validates the transaction under the global catalog lock and, on
// success, installs a new snapshot, appends the log record and returns
// it. On conflict it returns ErrConflict and the catalog is unchanged.
func (c *Catalog) Commit(t *Txn) (*LogRecord, error) {
	return c.commit(t, nil)
}

// CommitValidated is Commit with an extra validation hook executed under
// the commit lock against the latest snapshot; returning an error aborts
// the commit. Eon uses this to verify that all subscribers hold the
// transaction's shard metadata ("no additional subscription has snuck
// in", §3.2).
func (c *Catalog) CommitValidated(t *Txn, validate func(latest *Snapshot) error) (*LogRecord, error) {
	return c.commit(t, validate)
}

func (c *Catalog) commit(t *Txn, validate func(*Snapshot) error) (*LogRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.cur.Load()
	// OCC validation: every object read or written must be unmodified
	// since the transaction began.
	check := func(oid OID, seen uint64) error {
		if cur.modVersion[oid] != seen {
			return fmt.Errorf("%w: object %d modified (saw v%d, now v%d)",
				ErrConflict, oid, seen, cur.modVersion[oid])
		}
		return nil
	}
	for oid, seen := range t.reads {
		if err := check(oid, seen); err != nil {
			return nil, err
		}
	}
	for oid := range t.writes {
		if err := check(oid, t.base.modVersion[oid]); err != nil {
			return nil, err
		}
	}
	for oid := range t.deletes {
		if err := check(oid, t.base.modVersion[oid]); err != nil {
			return nil, err
		}
	}
	if validate != nil {
		if err := validate(cur); err != nil {
			return nil, err
		}
	}

	version := cur.version + 1
	next := &Snapshot{
		version:    version,
		objects:    make(map[OID]Object, len(cur.objects)+len(t.writes)),
		modVersion: make(map[OID]uint64, len(cur.modVersion)+len(t.writes)),
	}
	for oid, o := range cur.objects {
		next.objects[oid] = o
		next.modVersion[oid] = cur.modVersion[oid]
	}

	rec := &LogRecord{Version: version}
	shardSet := map[int]struct{}{}
	for _, oid := range t.order {
		if o, ok := t.writes[oid]; ok {
			raw, err := marshalObject(o)
			if err != nil {
				return nil, fmt.Errorf("catalog: marshal %d: %w", oid, err)
			}
			rec.Ops = append(rec.Ops, LogOp{Kind: o.Kind(), OID: oid, Data: raw})
			shardSet[o.Shard()] = struct{}{}
			next.objects[oid] = o
			next.modVersion[oid] = version
			continue
		}
		if _, ok := t.deletes[oid]; ok {
			old, exists := cur.objects[oid]
			if !exists {
				continue
			}
			rec.Ops = append(rec.Ops, LogOp{Delete: true, Kind: old.Kind(), OID: oid})
			shardSet[old.Shard()] = struct{}{}
			delete(next.objects, oid)
			next.modVersion[oid] = version
		}
	}
	rec.Shards = sortedShardSet(shardSet)
	rec.NextOID = OID(c.nextOID.Load())

	if c.persister != nil {
		if err := c.persister.Append(rec); err != nil {
			return nil, fmt.Errorf("catalog: persist commit: %w", err)
		}
	}
	c.cur.Store(next)
	for _, fn := range c.onCommit {
		fn(rec)
	}
	if c.persister != nil {
		c.persister.MaybeCheckpoint(next)
	}
	return rec, nil
}

func sortedShardSet(set map[int]struct{}) []int {
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// KeepFunc decides whether a replicated storage object belongs in this
// node's catalog. Global objects are always kept. Eon nodes keep objects
// of subscribed shards; Enterprise nodes keep objects they own.
type KeepFunc func(Object) bool

// KeepShards builds a KeepFunc retaining storage objects of the given
// shard indexes.
func KeepShards(shards map[int]bool) KeepFunc {
	return func(o Object) bool { return shards[o.Shard()] }
}

// Apply installs a replicated log record produced by another node's
// commit. keep filters storage objects (nil keeps everything). The
// record version must directly follow the current version.
func (c *Catalog) Apply(rec *LogRecord, keep KeepFunc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.cur.Load()
	if rec.Version != cur.version+1 {
		return fmt.Errorf("%w: have v%d, record v%d", ErrStale, cur.version, rec.Version)
	}
	next := &Snapshot{
		version:    rec.Version,
		objects:    make(map[OID]Object, len(cur.objects)+len(rec.Ops)),
		modVersion: make(map[OID]uint64, len(cur.modVersion)+len(rec.Ops)),
	}
	for oid, o := range cur.objects {
		next.objects[oid] = o
		next.modVersion[oid] = cur.modVersion[oid]
	}
	decoded, err := rec.DecodedOps()
	if err != nil {
		return err
	}
	for i, op := range rec.Ops {
		if op.Delete {
			delete(next.objects, op.OID)
			next.modVersion[op.OID] = rec.Version
			continue
		}
		o := decoded[i]
		if keep != nil {
			if sh := o.Shard(); sh != GlobalShard && !keep(o) {
				// Not subscribed: skip the storage object but still
				// advance the version.
				next.modVersion[op.OID] = rec.Version
				continue
			}
		}
		next.objects[op.OID] = o
		next.modVersion[op.OID] = rec.Version
	}
	if rec.NextOID > OID(c.nextOID.Load()) {
		c.nextOID.Store(uint64(rec.NextOID))
	}
	if c.persister != nil {
		if err := c.persister.Append(rec); err != nil {
			return fmt.Errorf("catalog: persist applied record: %w", err)
		}
	}
	c.cur.Store(next)
	for _, fn := range c.onCommit {
		fn(rec)
	}
	if c.persister != nil {
		c.persister.MaybeCheckpoint(next)
	}
	return nil
}

// InstallObjects adds storage objects to the current snapshot without
// advancing the version — the metadata-transfer step of subscription
// (§3.3): a new subscriber receives the shard's existing storage objects
// from a peer; the global version is unchanged because no transaction
// ran. Objects that already exist are left untouched.
func (c *Catalog) InstallObjects(objs []Object) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.cur.Load()
	next := &Snapshot{
		version:    cur.version,
		objects:    make(map[OID]Object, len(cur.objects)+len(objs)),
		modVersion: make(map[OID]uint64, len(cur.modVersion)+len(objs)),
	}
	for oid, o := range cur.objects {
		next.objects[oid] = o
		next.modVersion[oid] = cur.modVersion[oid]
	}
	for _, o := range objs {
		if _, exists := next.objects[o.GetOID()]; exists {
			continue
		}
		next.objects[o.GetOID()] = o
		next.modVersion[o.GetOID()] = cur.version
	}
	c.cur.Store(next)
}

// DropShardObjects removes all storage objects of a shard from the
// current snapshot without advancing the version — the metadata-drop step
// of unsubscription (§3.3).
func (c *Catalog) DropShardObjects(shardIndex int) []Object {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.cur.Load()
	var dropped []Object
	next := &Snapshot{
		version:    cur.version,
		objects:    make(map[OID]Object, len(cur.objects)),
		modVersion: make(map[OID]uint64, len(cur.modVersion)),
	}
	for oid, o := range cur.objects {
		if o.Shard() == shardIndex {
			dropped = append(dropped, o)
			continue
		}
		next.objects[oid] = o
		next.modVersion[oid] = cur.modVersion[oid]
	}
	c.cur.Store(next)
	return dropped
}

// Install replaces the catalog contents wholesale (used by metadata
// transfer during subscription and by revive).
func (c *Catalog) Install(snap *Snapshot, nextOID OID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if uint64(nextOID) > c.nextOID.Load() {
		c.nextOID.Store(uint64(nextOID))
	}
	c.cur.Store(snap)
}

// MaxOID returns the highest OID present in the snapshot plus one, a
// lower bound for safe OID allocation after installing a snapshot.
func MaxOID(s *Snapshot) OID {
	var max OID
	for oid := range s.objects {
		if oid > max {
			max = oid
		}
	}
	return max + 1
}
