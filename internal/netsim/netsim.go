// Package netsim models the cluster interconnect for the in-process
// simulation: per-message latency, per-link bandwidth, rack locality and
// node reachability. Higher layers call Transfer to account for the cost
// of moving bytes between nodes (metadata distribution, peer cache
// warming, query exchanges) and move the actual data in memory.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"eon/internal/obs"
)

// ErrUnreachable is returned when an endpoint is down or partitioned.
var ErrUnreachable = errors.New("netsim: node unreachable")

// LinkCost describes one direction of a node pair.
type LinkCost struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; 0 = infinite
}

// Stats counts network traffic.
type Stats struct {
	Messages int64
	Bytes    int64
	// Drops counts transfers rejected by the fault schedule.
	Drops int64
}

// OpRange is a half-open interval [From, To) of transfer indices.
type OpRange struct {
	From, To int64
}

func (r OpRange) contains(op int64) bool { return op >= r.From && op < r.To }

// DropWindow fails transfers with ErrUnreachable at the given rate
// within an op range.
type DropWindow struct {
	OpRange
	Rate float64
}

// LatencySpike adds Extra latency to transfers in an op range.
type LatencySpike struct {
	OpRange
	Extra time.Duration
}

// Faults is a deterministic, seedable schedule of injected network
// faults, mirroring objstore.FaultSchedule for the interconnect. Every
// decision is a pure function of (Seed, op index, endpoints).
type Faults struct {
	Seed          int64
	DropWindows   []DropWindow
	LatencySpikes []LatencySpike
}

// netVerdict is the schedule's decision for one transfer.
type netVerdict struct {
	drop  bool
	extra time.Duration
}

// eval decides the fate of transfer op between from and to.
func (f *Faults) eval(op int64, from, to string) netVerdict {
	if f == nil {
		return netVerdict{}
	}
	var v netVerdict
	for i, w := range f.DropWindows {
		if w.contains(op) && roll(f.Seed, op, from+"->"+to, i) < w.Rate {
			v.drop = true
		}
	}
	for _, s := range f.LatencySpikes {
		if s.contains(op) {
			v.extra += s.Extra
		}
	}
	return v
}

// roll derives a uniform value in [0,1) from the seed, op index, link
// and rule index.
func roll(seed, op int64, link string, idx int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%d\x00%s\x00%d", seed, op, link, idx)
	return float64(h.Sum64()>>11) / (1 << 53)
}

// Network is the simulated interconnect. The zero cost configuration
// transfers instantly, which unit tests rely on.
type Network struct {
	mu      sync.RWMutex
	def     LinkCost
	links   map[string]LinkCost // "from->to" overrides
	racks   map[string]string   // node -> rack
	crossRk LinkCost            // cost override for cross-rack links
	hasXRk  bool
	down    map[string]bool
	faults  *Faults

	ops atomic.Int64 // transfer index for the fault schedule

	// Traffic counters are monotonic (the registry view); ResetStats
	// captures a baseline for the Stats() view instead of zeroing, so a
	// concurrent reader can never observe a torn reset.
	messages obs.Counter
	bytes    obs.Counter
	drops    obs.Counter

	statsMu  sync.Mutex
	baseline Stats
}

// New returns a network with the given default link cost.
func New(def LinkCost) *Network {
	return &Network{
		def:   def,
		links: map[string]LinkCost{},
		racks: map[string]string{},
		down:  map[string]bool{},
	}
}

func key(from, to string) string { return from + "->" + to }

// SetLink overrides the cost of one directed link.
func (n *Network) SetLink(from, to string, c LinkCost) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[key(from, to)] = c
}

// SetRack places a node on a rack; links between different racks use the
// cross-rack cost when one is set.
func (n *Network) SetRack(node, rack string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.racks[node] = rack
}

// Rack returns the rack of a node ("" if unplaced).
func (n *Network) Rack(node string) string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.racks[node]
}

// SetCrossRackCost sets the cost of links crossing racks.
func (n *Network) SetCrossRackCost(c LinkCost) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crossRk = c
	n.hasXRk = true
}

// SetDown marks a node unreachable (true) or reachable (false).
func (n *Network) SetDown(node string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[node] = down
}

// IsDown reports whether a node is marked unreachable.
func (n *Network) IsDown(node string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down[node]
}

// costFor resolves the link cost for a directed pair.
func (n *Network) costFor(from, to string) LinkCost {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if c, ok := n.links[key(from, to)]; ok {
		return c
	}
	if n.hasXRk {
		rf, rt := n.racks[from], n.racks[to]
		if rf != rt && (rf != "" || rt != "") {
			return n.crossRk
		}
	}
	return n.def
}

// SetFaults installs (or clears, with nil) the network fault schedule.
func (n *Network) SetFaults(f *Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = f
}

// Transfer accounts for moving size bytes from one node to another,
// sleeping for the modeled cost. It fails if either endpoint is down or
// the fault schedule drops the transfer.
func (n *Network) Transfer(ctx context.Context, from, to string, size int64) error {
	return n.send(ctx, from, to, size, true)
}

// send is the shared cost model behind Transfer and Stream.Send: one
// fault-schedule decision, an optional latency charge, a bandwidth
// charge, and the message/byte counters. includeLatency is false for
// follow-up chunks of an established stream, which are pipelined behind
// the first chunk's round trip.
func (n *Network) send(ctx context.Context, from, to string, size int64, includeLatency bool) error {
	if n.IsDown(from) || n.IsDown(to) {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	n.mu.RLock()
	faults := n.faults
	n.mu.RUnlock()
	var verdict netVerdict
	if faults != nil {
		verdict = faults.eval(n.ops.Add(1)-1, from, to)
	}
	if verdict.drop {
		n.drops.Add(1)
		return fmt.Errorf("%w: %s -> %s (injected fault)", ErrUnreachable, from, to)
	}
	c := n.costFor(from, to)
	d := verdict.extra
	if includeLatency {
		d += c.Latency
	}
	if c.Bandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / c.Bandwidth * float64(time.Second))
	}
	if d > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
	// Re-check after the transfer time: a node killed mid-transfer fails
	// the transfer.
	if n.IsDown(from) || n.IsDown(to) {
		return fmt.Errorf("%w: %s -> %s (during transfer)", ErrUnreachable, from, to)
	}
	n.messages.Add(1)
	n.bytes.Add(size)
	return nil
}

// Stream is a long-lived exchange channel between two nodes for chunked,
// pipelined sends: the link latency is paid once on the first chunk
// (connection setup), and each subsequent chunk pays only its bandwidth
// cost. Every chunk is a separate message for the fault schedule and the
// traffic counters, so drops and latency spikes still apply mid-stream.
// A Stream is not safe for concurrent use; open one per sender
// goroutine.
type Stream struct {
	n        *Network
	from, to string
	opened   bool
}

// Stream opens a chunked send channel from one node to another. Opening
// is free; costs are charged per Send.
func (n *Network) Stream(from, to string) *Stream {
	return &Stream{n: n, from: from, to: to}
}

// Send accounts for one chunk of the stream, sleeping for the modeled
// cost. The first chunk pays the link latency; later chunks are
// pipelined and pay bandwidth only. A failed first chunk leaves the
// stream unopened, so a retry pays latency again.
func (s *Stream) Send(ctx context.Context, size int64) error {
	err := s.n.send(ctx, s.from, s.to, size, !s.opened)
	if err == nil {
		s.opened = true
	}
	return err
}

// read takes a raw snapshot of the monotonic counters, bytes before
// messages (Transfer counts messages before bytes, so a snapshot never
// shows more bytes than its message count accounts for).
func (n *Network) read() Stats {
	b := n.bytes.Value()
	return Stats{Messages: n.messages.Value(), Bytes: b, Drops: n.drops.Value()}
}

// Stats returns traffic totals since the last ResetStats.
func (n *Network) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	cur := n.read()
	return Stats{
		Messages: cur.Messages - n.baseline.Messages,
		Bytes:    cur.Bytes - n.baseline.Bytes,
		Drops:    cur.Drops - n.baseline.Drops,
	}
}

// ResetStats zeroes the Stats() view by capturing a baseline (the
// fault-schedule op index is a schedule position, not a stat, and is not
// reset; the underlying counters stay monotonic for the registry).
func (n *Network) ResetStats() {
	n.statsMu.Lock()
	n.baseline = n.read()
	n.statsMu.Unlock()
}

// Instrument registers the interconnect's traffic counters into reg
// under the "net." prefix.
func (n *Network) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("net.messages", &n.messages)
	reg.RegisterCounter("net.bytes", &n.bytes)
	reg.RegisterCounter("net.drops", &n.drops)
}
