package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"eon/internal/cache"
	"eon/internal/obs"
	"eon/internal/parallel"
	"eon/internal/resilience"
	"eon/internal/storage"
)

// persistFiles makes a built container's files durable before commit.
// Eon (Figure 8): write into the writer's cache, upload to shared
// storage, and ship to peer subscribers' caches so node-down performance
// stays warm. Enterprise: write to the owner's local disk.
//
// Uploads fan out across the node's scan worker pool (ScanConcurrency):
// a wide container's per-column files upload concurrently instead of
// paying one shared-storage round trip per file. Paths are walked in
// sorted order so cache admission order stays deterministic.
//
// Shared-storage writes go through the resilient store view (retries
// with jittered backoff, breaker; §5.3), so no extra retry loop wraps
// them here. Cache and peer interactions are best-effort: a failing
// local cache degrades the load to shared-storage-only instead of
// failing it, and a struggling peer is skipped via its breaker.
func (db *DB) persistFiles(ctx context.Context, writer *Node, files map[string][]byte, shardIdx int, noCache bool) error {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	conc := db.scanConc()

	if db.mode == ModeEnterprise {
		return parallel.ForEach(ctx, len(paths), conc, func(ctx context.Context, _, i int) error {
			return writer.fs.WriteFile(ctx, "data/"+paths[i], files[paths[i]])
		})
	}
	cacheBrk := db.cacheBreakers.For(writer.name)
	err := parallel.ForEach(ctx, len(paths), conc, func(ctx context.Context, _, i int) error {
		path := paths[i]
		data := files[path]
		// 1-2. Write data in the cache (unless the table's shaping
		// policy turns write-through off, §5.2). The cache is an
		// optimization, not a durability point: admission failures count
		// against the node's cache breaker and fall through.
		if !noCache {
			if cacheBrk.Allow() {
				err := writer.cache.Put(ctx, path, data)
				cacheBrk.Record(err != nil)
				if err != nil {
					db.resilient.Counters().Fallback()
				}
			} else {
				db.resilient.Counters().Fallback()
			}
		}
		// 3a. Flush to shared storage (the commit point prerequisite).
		return db.shared.Put(ctx, path, data)
	})
	if err != nil {
		return err
	}
	// 3b. Send to peer subscribers of the shard, in parallel, so their
	// caches are already warm if they take over (§5.2). A peer whose
	// breaker is open is skipped; it will warm from shared storage later.
	// Each peer's files ship through the same bounded pool.
	if noCache {
		return nil
	}
	var wg sync.WaitGroup
	for _, peer := range db.subscriberNodes(shardIdx) {
		if peer == writer || !peer.Up() {
			continue
		}
		brk := db.peerBreakers.For(peer.name)
		if !brk.Allow() {
			continue
		}
		wg.Add(1)
		go func(peer *Node, brk *resilience.Breaker) {
			defer wg.Done()
			_ = parallel.ForEach(ctx, len(paths), conc, func(ctx context.Context, _, i int) error {
				path := paths[i]
				data := files[path]
				err := db.net.Transfer(ctx, writer.name, peer.name, int64(len(data)))
				brk.Record(err != nil)
				if err != nil {
					return nil // peer went down mid-ship; it will warm later
				}
				_ = peer.cache.Put(ctx, path, data)
				return nil
			})
		}(peer, brk)
	}
	wg.Wait()
	return nil
}

// subscriberNodes returns the nodes subscribed to a shard in states that
// serve or will serve data.
func (db *DB) subscriberNodes(shardIdx int) []*Node {
	n, err := db.anyUpNode()
	if err != nil {
		return nil
	}
	snap := n.catalog.Snapshot()
	var out []*Node
	for _, s := range snap.SubscribersOf(shardIdx) {
		if node, ok := db.Node(s.Node); ok {
			out = append(out, node)
		}
	}
	return out
}

// fetchFunc builds the file-read path for scans on a node, without
// instrumentation (maintenance paths: mergeout, flatten, revive).
func (db *DB) fetchFunc(n *Node, bypassCache bool) storage.FetchFunc {
	return db.trackedFetch(n, bypassCache, nil, nil)
}

// trackedFetch builds the file-read path for scans on a node, recording
// fetch counts, bytes, I/O wait and cache outcomes into st (nil st drops
// the records) and onto the fragment's fetch span sp (nil span no-ops).
// Eon reads through the node's cache with a shared-storage fallback
// (optionally bypassing the cache, §5.2); Enterprise reads node-local
// disk. When the node's cache breaker is open the read path degrades
// gracefully: scans go straight to shared storage instead of failing
// (§5.3).
func (db *DB) trackedFetch(n *Node, bypassCache bool, st *scanTally, sp *obs.Span) storage.FetchFunc {
	if db.mode == ModeEnterprise {
		return func(ctx context.Context, path string) ([]byte, error) {
			start := time.Now()
			data, err := n.fs.ReadFile(ctx, "data/"+path)
			if err == nil {
				if st != nil {
					st.fetches.Add(1)
					st.bytesFetched.Add(int64(len(data)))
					st.addIOWait(time.Since(start))
				}
				sp.AddTime(time.Since(start))
				sp.AddBytes(int64(len(data)))
				sp.AddAttr("fetches", 1)
			}
			return data, err
		}
	}
	// Shared-storage reads already retry and hedge inside db.shared.
	fromShared := func(ctx context.Context, path string) ([]byte, error) {
		return db.shared.Get(ctx, path)
	}
	cacheBrk := db.cacheBreakers.For(n.name)
	return func(ctx context.Context, path string) ([]byte, error) {
		start := time.Now()
		var data []byte
		var outcome cache.Outcome
		var err error
		if !cacheBrk.Allow() {
			db.resilient.Counters().Fallback()
			data, err = fromShared(ctx, path)
			outcome = cache.OutcomeMiss
		} else {
			data, outcome, err = n.cache.GetTracked(ctx, path, fromShared, bypassCache)
		}
		if err == nil {
			if st != nil {
				st.fetches.Add(1)
				st.bytesFetched.Add(int64(len(data)))
				st.addIOWait(time.Since(start))
			}
			sp.AddTime(time.Since(start))
			sp.AddBytes(int64(len(data)))
			sp.AddAttr("fetches", 1)
			switch outcome {
			case cache.OutcomeHit:
				if st != nil {
					st.cacheHits.Add(1)
				}
				sp.AddAttr("cache_hits", 1)
			case cache.OutcomeCoalesced:
				if st != nil {
					st.cacheMisses.Add(1)
					st.coalescedFetches.Add(1)
				}
				sp.AddAttr("cache_misses", 1)
				sp.AddAttr("coalesced_fetches", 1)
			default:
				if st != nil {
					st.cacheMisses.Add(1)
				}
				sp.AddAttr("cache_misses", 1)
			}
			db.dcDepotFetches.Emit(obs.DCEvent{
				Node: n.name, A: path, B: outcomeName(outcome),
				V1: int64(len(data)), V2: int64(time.Since(start)),
			})
		}
		return data, err
	}
}

// outcomeName labels a cache outcome for Data Collector events.
func outcomeName(o cache.Outcome) string {
	switch o {
	case cache.OutcomeHit:
		return "hit"
	case cache.OutcomeCoalesced:
		return "coalesced"
	}
	return "miss"
}

// deleteDataFile removes a dropped storage file: immediately from every
// node cache / local disk, and (Eon) queues the shared-storage object for
// deferred deletion once no query or pending revive could reference it
// (§6.5).
func (db *DB) deleteDataFile(ctx context.Context, path string, dropVersion uint64) {
	for _, n := range db.Nodes() {
		if db.mode == ModeEnterprise {
			_ = n.fs.Remove(ctx, "data/"+path)
		} else if n.cache != nil {
			n.cache.Drop(ctx, path)
		}
	}
	if db.mode == ModeEon {
		db.gcMu.Lock()
		db.deferred = append(db.deferred, pendingDelete{path: path, dropVersion: dropVersion})
		db.gcMu.Unlock()
	}
}
