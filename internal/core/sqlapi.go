package core

import (
	"fmt"

	"eon/internal/sql"
	"eon/internal/types"
)

// Execute runs any SQL statement through a session: SELECTs return a
// Result; DDL and DML return a Result with an affected-row count where
// meaningful. A statement that fails to parse still counts into
// query.count / query.errors (plus query.parse_errors): unparseable
// input is a failed query, not a free operation.
func (s *Session) Execute(sqlText string) (*Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		s.db.queryCount.Inc()
		s.db.queryErrors.Inc()
		s.db.parseErrors.Inc()
		return nil, err
	}
	switch st := stmt.(type) {
	case *sql.Select:
		// Thread the original text so slow-query log entries carry it.
		return s.querySelect(st, sqlText)
	case *sql.CreateTable:
		return &Result{}, s.db.CreateTable(st)
	case *sql.CreateProjection:
		return &Result{}, s.db.CreateProjection(st)
	case *sql.Insert:
		return &Result{}, s.db.Insert(st)
	case *sql.Delete:
		n, err := s.db.Delete(st)
		if err != nil {
			return nil, err
		}
		return countResult("deleted", n), nil
	case *sql.Update:
		n, err := s.db.Update(st)
		if err != nil {
			return nil, err
		}
		return countResult("updated", n), nil
	case *sql.AlterAddColumn:
		return &Result{}, s.db.AlterAddColumn(st)
	case *sql.DropTable:
		return &Result{}, s.db.DropTable(st.Name)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", stmt)
}

// countResult wraps an affected-row count as a one-row result.
func countResult(label string, n int64) *Result {
	schema := types.Schema{{Name: label, Type: types.Int64}}
	b := types.NewBatch(schema, 1)
	b.AppendRow(types.Row{types.NewInt(n)})
	return &Result{Columns: []string{label}, Batch: b}
}
