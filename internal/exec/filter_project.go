package exec

import (
	"eon/internal/expr"
	"eon/internal/types"
)

// Filter passes through rows satisfying a bound boolean predicate. On
// the vectorized engine it produces (batch, selection) pairs and never
// gathers unless a plain-Operator consumer forces it to.
type Filter struct {
	input Operator
	pred  expr.Expr
	Eng   Engine
}

// NewFilter wraps input with a predicate (already bound to the input
// schema).
func NewFilter(input Operator, pred expr.Expr) *Filter {
	return &Filter{input: input, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.input.Schema() }

// nextSel implements selOperator: the surviving rows are reported as a
// selection vector over the input batch, with no copying.
func (f *Filter) nextSel() (*types.Batch, []int, error) {
	if f.Eng.Row {
		b, err := f.Next()
		return b, nil, err
	}
	for {
		b, sel, err := pullSel(f.input)
		if err != nil || b == nil {
			return nil, nil, err
		}
		out, err := expr.FilterVec(f.pred, b, sel, f.Eng.Stats)
		if err != nil {
			return nil, nil, err
		}
		if len(out) > 0 {
			return b, out, nil
		}
	}
}

// Next implements Operator.
func (f *Filter) Next() (*types.Batch, error) {
	if f.Eng.Row {
		for {
			b, err := f.input.Next()
			if err != nil || b == nil {
				return nil, err
			}
			sel, err := expr.FilterBatch(f.pred, b)
			if err != nil {
				return nil, err
			}
			if len(sel) == b.NumRows() {
				return b, nil
			}
			if len(sel) > 0 {
				return b.Gather(sel), nil
			}
		}
	}
	b, sel, err := f.nextSel()
	if err != nil || b == nil {
		return nil, err
	}
	if len(sel) == b.NumRows() {
		// An ascending selection covering every row is the identity.
		return b, nil
	}
	return b.Gather(sel), nil
}

// Project computes one output column per bound expression.
type Project struct {
	input  Operator
	exprs  []expr.Expr
	schema types.Schema
	Eng    Engine
}

// NewProject wraps input with expression evaluation. names supplies the
// output column names (aliases).
func NewProject(input Operator, exprs []expr.Expr, names []string) *Project {
	schema := make(types.Schema, len(exprs))
	for i, e := range exprs {
		schema[i] = types.Column{Name: names[i], Type: e.Type()}
	}
	return &Project{input: input, exprs: exprs, schema: schema}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Next implements Operator.
func (p *Project) Next() (*types.Batch, error) {
	if p.Eng.Row {
		b, err := p.input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		out := &types.Batch{Cols: make([]*types.Vector, len(p.exprs))}
		for i, e := range p.exprs {
			v, err := expr.EvalBatch(e, b)
			if err != nil {
				return nil, err
			}
			v.Typ = p.schema[i].Type
			out.Cols[i] = v
		}
		return out, nil
	}
	// Vectorized: consume the upstream selection directly — expressions
	// evaluate densely over the selected rows, so the filtered input is
	// never materialized.
	b, sel, err := pullSel(p.input)
	if err != nil || b == nil {
		return nil, err
	}
	out := &types.Batch{Cols: make([]*types.Vector, len(p.exprs))}
	for i, e := range p.exprs {
		v, err := expr.EvalVec(e, b, sel, p.Eng.Stats)
		if err != nil {
			return nil, err
		}
		if v.Typ != p.schema[i].Type {
			// EvalVec may return an input column unchanged; retype a
			// shallow copy rather than mutating shared storage.
			nv := *v
			nv.Typ = p.schema[i].Type
			v = &nv
		}
		out.Cols[i] = v
	}
	return out, nil
}