package expr

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"eon/internal/types"
)

// The differential property test: random expressions over random
// batches, asserting the vectorized engine is indistinguishable from
// the row engine (EvalBatch / FilterBatch) — including NULL handling,
// empty batches, mixed int/float comparisons, and selection vectors.

var diffSchema = types.Schema{
	{Name: "a", Type: types.Int64},
	{Name: "f", Type: types.Float64},
	{Name: "s", Type: types.Varchar},
	{Name: "o", Type: types.Bool},
	{Name: "d", Type: types.Date},
	{Name: "k", Type: types.Int64},
}

func randDatum(r *rand.Rand, t types.Type, nullProb float64) types.Datum {
	if r.Float64() < nullProb {
		return types.NullDatum(t)
	}
	switch t {
	case types.Int64:
		return types.NewInt(int64(r.Intn(21) - 10))
	case types.Float64:
		return types.NewFloat(float64(r.Intn(41)-20) / 4)
	case types.Varchar:
		words := []string{"", "a", "ab", "STEEL", "small steel box", "Brand#12", "Brand#22", "%odd%"}
		return types.NewString(words[r.Intn(len(words))])
	case types.Bool:
		return types.NewBool(r.Intn(2) == 0)
	case types.Date:
		return types.NewDate(int64(r.Intn(20000)))
	}
	panic("unhandled type")
}

func randBatch(r *rand.Rand, n int, nullProb float64) *types.Batch {
	b := types.NewBatch(diffSchema, n)
	for i := 0; i < n; i++ {
		row := make(types.Row, len(diffSchema))
		for c, col := range diffSchema {
			row[c] = randDatum(r, col.Type, nullProb)
		}
		b.AppendRow(row)
	}
	return b
}

// Expression generators, by result kind. Depth bounds recursion.

func genNum(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(5) {
		case 0:
			return &ColumnRef{Name: "a"}
		case 1:
			return &ColumnRef{Name: "f"}
		case 2:
			return &ColumnRef{Name: "k"}
		case 3:
			return &Literal{Value: randDatum(r, types.Int64, 0.1)}
		default:
			return &Literal{Value: randDatum(r, types.Float64, 0.1)}
		}
	}
	switch r.Intn(6) {
	case 0:
		ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return &Binary{Op: ops[r.Intn(len(ops))], L: genNum(r, depth-1), R: genNum(r, depth-1)}
	case 1:
		return &Unary{Op: OpNeg, E: genNum(r, depth-1)}
	case 2:
		return &Func{Name: "ABS", Args: []Expr{genNum(r, depth-1)}}
	case 3:
		return &Func{Name: "LENGTH", Args: []Expr{genStr(r, depth-1)}}
	case 4:
		fields := []string{"YEAR", "MONTH", "DAY"}
		return &Func{Name: fields[r.Intn(len(fields))], Args: []Expr{&ColumnRef{Name: "d"}}}
	default:
		return &Case{
			Whens: []When{{Cond: genBool(r, depth-1), Then: genNum(r, depth-1)}},
			Else:  genNum(r, depth - 1),
		}
	}
}

func genStr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(2) == 0 {
		if r.Intn(2) == 0 {
			return &ColumnRef{Name: "s"}
		}
		return &Literal{Value: randDatum(r, types.Varchar, 0.1)}
	}
	switch r.Intn(4) {
	case 0:
		name := []string{"LOWER", "UPPER"}[r.Intn(2)]
		return &Func{Name: name, Args: []Expr{genStr(r, depth-1)}}
	case 1:
		return &Func{Name: "SUBSTR", Args: []Expr{
			genStr(r, depth-1),
			&Literal{Value: types.NewInt(int64(r.Intn(6)))},
			&Literal{Value: types.NewInt(int64(r.Intn(6)))},
		}}
	case 2:
		return &Func{Name: "COALESCE", Args: []Expr{genStr(r, depth-1), genStr(r, depth-1)}}
	default:
		return &Case{
			Whens: []When{{Cond: genBool(r, depth-1), Then: genStr(r, depth-1)}},
			Else:  genStr(r, depth - 1),
		}
	}
}

func genBool(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return &ColumnRef{Name: "o"}
		case 1:
			return &Literal{Value: randDatum(r, types.Bool, 0.2)}
		default:
			cmps := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
			return &Binary{Op: cmps[r.Intn(len(cmps))], L: genNum(r, 0), R: genNum(r, 0)}
		}
	}
	switch r.Intn(7) {
	case 0:
		return &Binary{Op: OpAnd, L: genBool(r, depth-1), R: genBool(r, depth-1)}
	case 1:
		return &Binary{Op: OpOr, L: genBool(r, depth-1), R: genBool(r, depth-1)}
	case 2:
		return &Unary{Op: OpNot, E: genBool(r, depth-1)}
	case 3:
		return &IsNull{E: genNum(r, depth-1), Negate: r.Intn(2) == 0}
	case 4:
		var list []Expr
		elemT := []types.Type{types.Int64, types.Float64, types.Varchar}[r.Intn(3)]
		for i := 0; i < 1+r.Intn(4); i++ {
			list = append(list, &Literal{Value: randDatum(r, elemT, 0.15)})
		}
		return &In{E: genNum(r, depth-1), List: list, Negate: r.Intn(2) == 0}
	case 5:
		patterns := []string{"%", "STEEL", "%STEEL%", "Brand#1_", "%a%b%", "small%", "%box", "a_c%"}
		return &Like{E: genStr(r, depth-1), Pattern: patterns[r.Intn(len(patterns))], Negate: r.Intn(2) == 0}
	default:
		cmps := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		op := cmps[r.Intn(len(cmps))]
		if r.Intn(2) == 0 {
			return &Binary{Op: op, L: genStr(r, depth-1), R: genStr(r, depth-1)}
		}
		return &Binary{Op: op, L: genNum(r, depth-1), R: genNum(r, depth-1)}
	}
}

func datumEq(a, b types.Datum) bool {
	if a.Null != b.Null {
		return false
	}
	if a.Null {
		return true
	}
	if a.K.Physical() != b.K.Physical() {
		return false
	}
	switch a.K.Physical() {
	case types.Int64:
		return a.I == b.I
	case types.Float64:
		return a.F == b.F
	case types.Varchar:
		return a.S == b.S
	case types.Bool:
		return a.B == b.B
	}
	return false
}

func checkVecEqual(t *testing.T, label string, want, got *types.Vector) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: length %d != %d", label, got.Len(), want.Len())
	}
	for j := 0; j < want.Len(); j++ {
		if !datumEq(want.Datum(j), got.Datum(j)) {
			t.Fatalf("%s: row %d: vec=%v row-engine=%v", label, j, got.Datum(j), want.Datum(j))
		}
	}
}

func randSel(r *rand.Rand, n int) []int {
	var sel []int
	for i := 0; i < n; i++ {
		if r.Intn(3) > 0 {
			sel = append(sel, i)
		}
	}
	if sel == nil {
		sel = []int{}
	}
	return sel
}

func TestEvalVecMatchesRowEngine(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 3, 17, 64}
	nullProbs := []float64{0, 0.25, 1}
	gens := []func(*rand.Rand, int) Expr{genBool, genNum, genStr}
	for iter := 0; iter < 400; iter++ {
		e := gens[iter%len(gens)](r, 3)
		if err := Bind(e, diffSchema); err != nil {
			t.Fatalf("bind %v: %v", e, err)
		}
		n := sizes[r.Intn(len(sizes))]
		b := randBatch(r, n, nullProbs[r.Intn(len(nullProbs))])
		label := fmt.Sprintf("iter %d expr %v rows %d", iter, e, n)

		want, errW := EvalBatch(e, b)
		var st VecStats
		got, errG := EvalVec(e, b, nil, &st)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("%s: error mismatch row=%v vec=%v", label, errW, errG)
		}
		if errW == nil {
			checkVecEqual(t, label, want, got)
		}

		// The same expression through a selection vector must agree with
		// the row engine over the gathered rows.
		sel := randSel(r, n)
		wantSel, errW := EvalBatch(e, b.Gather(sel))
		gotSel, errG := EvalVec(e, b, sel, &st)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("%s (sel): error mismatch row=%v vec=%v", label, errW, errG)
		}
		if errW == nil {
			checkVecEqual(t, label+" (sel)", wantSel, gotSel)
		}
	}
}

func TestFilterVecMatchesFilterBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 5, 33, 128}
	nullProbs := []float64{0, 0.25, 1}
	for iter := 0; iter < 400; iter++ {
		e := genBool(r, 3)
		if err := Bind(e, diffSchema); err != nil {
			t.Fatalf("bind %v: %v", e, err)
		}
		n := sizes[r.Intn(len(sizes))]
		b := randBatch(r, n, nullProbs[r.Intn(len(nullProbs))])
		label := fmt.Sprintf("iter %d expr %v rows %d", iter, e, n)

		want, errW := FilterBatch(e, b)
		var st VecStats
		got, errG := FilterVec(e, b, nil, &st)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("%s: error mismatch row=%v vec=%v", label, errW, errG)
		}
		if errW != nil {
			continue
		}
		if len(want) != len(got) {
			t.Fatalf("%s: selected %d rows, row engine selected %d (%v vs %v)", label, len(got), len(want), got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: selection differs at %d: %v vs %v", label, i, got, want)
			}
		}

		// Narrowing an existing selection must match filtering the
		// gathered batch and mapping positions back.
		sel := randSel(r, n)
		sub, errW := FilterBatch(e, b.Gather(sel))
		got2, errG := FilterVec(e, b, sel, &st)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("%s (sel): error mismatch row=%v vec=%v", label, errW, errG)
		}
		if errW != nil {
			continue
		}
		want2 := make([]int, len(sub))
		for i, j := range sub {
			want2[i] = sel[j]
		}
		if len(want2) != len(got2) {
			t.Fatalf("%s (sel): selected %d rows, want %d", label, len(got2), len(want2))
		}
		for i := range want2 {
			if want2[i] != got2[i] {
				t.Fatalf("%s (sel): selection differs at %d: %v vs %v", label, i, got2, want2)
			}
		}
	}
}

// TestEvalVecConcurrent exercises a single bound expression from many
// goroutines, the sharing pattern the per-node executor uses. Run with
// -race this proves the bound tree is read-only during evaluation.
func TestEvalVecConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	e := &Binary{Op: OpAnd,
		L: &Like{E: &ColumnRef{Name: "s"}, Pattern: "%STEEL%"},
		R: &Binary{Op: OpOr,
			L: &In{E: &ColumnRef{Name: "a"}, List: []Expr{
				&Literal{Value: types.NewInt(1)}, &Literal{Value: types.NewInt(2)},
			}},
			R: &Binary{Op: OpGt, L: &ColumnRef{Name: "f"}, R: &Literal{Value: types.NewFloat(0)}},
		},
	}
	if err := Bind(e, diffSchema); err != nil {
		t.Fatal(err)
	}
	b := randBatch(r, 256, 0.2)
	want, err := FilterBatch(e, b)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var st VecStats
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := FilterVec(e, b, nil, &st)
				if err != nil || len(got) != len(want) {
					t.Errorf("concurrent FilterVec diverged: %v (%d vs %d rows)", err, len(got), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()
	if st.Fallback.Load() != 0 {
		t.Errorf("expected zero fallback rows, got %d", st.Fallback.Load())
	}
}
