package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky")

func retryFlaky(err error) bool { return errors.Is(err, errFlaky) }

func noJitter(d time.Duration) time.Duration { return 0 }

func TestPolicyRetriesUntilSuccess(t *testing.T) {
	p := Policy{MaxAttempts: 5, Retryable: retryFlaky, Jitter: noJitter}
	var c Counters
	calls := 0
	err := p.Do(context.Background(), &c, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errFlaky
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	st := c.Snapshot()
	if st.Attempts != 3 || st.Retries != 2 || st.Failures != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPolicyPermanentErrorNoRetry(t *testing.T) {
	p := Policy{MaxAttempts: 5, Retryable: retryFlaky, Jitter: noJitter}
	perm := errors.New("permanent")
	calls := 0
	err := p.Do(context.Background(), nil, func(ctx context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// The fixed WithRetry semantics: exhaustion returns immediately with no
// trailing backoff sleep.
func TestPolicyNoTrailingSleepOnExhaustion(t *testing.T) {
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Millisecond,
		Retryable:   retryFlaky,
		// A jitter this large would be visible if the final attempt slept.
		Jitter: func(d time.Duration) time.Duration { return 500 * time.Millisecond },
	}
	// Only the two inter-attempt sleeps should happen; make them tiny by
	// overriding after construction.
	p.Jitter = func(d time.Duration) time.Duration { return 0 }
	start := time.Now()
	err := p.Do(context.Background(), nil, func(ctx context.Context) error { return errFlaky })
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err=%v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("exhaustion slept %v; trailing sleep not removed", elapsed)
	}
}

func TestPolicyBackoffIsCapped(t *testing.T) {
	p := Policy{MaxAttempts: 30, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}.withDefaults()
	if d := p.backoff(20); d != 8*time.Millisecond {
		t.Errorf("backoff(20) = %v, want capped 8ms", d)
	}
	if d := p.backoff(0); d != time.Millisecond {
		t.Errorf("backoff(0) = %v", d)
	}
}

func TestPolicyHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour, Retryable: retryFlaky}
	err := p.Do(ctx, nil, func(ctx context.Context) error { return errFlaky })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want Canceled", err)
	}
}

func TestPolicyOpTimeoutBudget(t *testing.T) {
	// Each attempt hangs; the per-attempt budget carves it up and the
	// parent deadline ends the operation promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	p := Policy{MaxAttempts: 10, OpTimeout: 10 * time.Millisecond, Jitter: noJitter, Retryable: retryFlaky}
	var c Counters
	start := time.Now()
	err := p.Do(ctx, &c, func(actx context.Context) error {
		<-actx.Done()
		return actx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("took %v; deadline not honored promptly", elapsed)
	}
	if st := c.Snapshot(); st.Retries == 0 {
		t.Errorf("attempt timeouts should retry while budget remains: %+v", st)
	}
}

func TestBreakerTripShedHalfOpenRecover(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var c Counters
	b := NewBreaker(BreakerConfig{
		Window: 10, TripRatio: 0.5, MinSamples: 4,
		OpenFor: time.Second, ProbeProb: 1.0, Now: clock,
	}, &c)

	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker must be closed")
	}
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	if b.State() != Open {
		t.Fatalf("state = %v after sustained failures", b.State())
	}
	if b.Allow() {
		t.Error("open breaker must shed")
	}
	if st := c.Snapshot(); st.BreakerOpens != 1 || st.Shed == 0 {
		t.Errorf("stats = %+v", st)
	}

	// Cooldown elapses: half-open probes (ProbeProb=1 admits all).
	now = now.Add(2 * time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after cooldown", b.State())
	}
	if !b.Allow() {
		t.Error("half-open with ProbeProb=1 must admit the probe")
	}
	b.Record(true) // probe fails: reopen
	if b.State() != Open {
		t.Fatalf("failed probe must reopen, state = %v", b.State())
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("want probe admitted")
	}
	b.Record(false) // probe succeeds: close
	if b.State() != Closed {
		t.Fatalf("successful probe must close, state = %v", b.State())
	}
	// The window reset: old failures must not trip it again immediately.
	b.Record(true)
	if b.State() != Closed {
		t.Error("single failure after reset must not trip")
	}
}

func TestBreakerIgnoresBenignOutcomes(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 4, TripRatio: 0.5}, nil)
	for i := 0; i < 100; i++ {
		b.Record(false)
	}
	if b.State() != Closed {
		t.Error("successes must not trip the breaker")
	}
}

func TestBreakerGroupIsPerName(t *testing.T) {
	g := NewGroup(BreakerConfig{Window: 4, MinSamples: 2, TripRatio: 0.5, OpenFor: time.Hour}, nil)
	for i := 0; i < 4; i++ {
		g.For("peerA").Record(true)
	}
	if g.For("peerA").State() != Open {
		t.Error("peerA should be open")
	}
	if g.For("peerB").State() != Closed {
		t.Error("peerB must be independent")
	}
	if g.For("peerA") != g.For("peerA") {
		t.Error("group must memoize breakers")
	}
}

// fakeStore is a scriptable ObjectStore for wrapper tests.
type fakeStore struct {
	mu      sync.Mutex
	getErrs int           // fail this many gets with errFlaky
	getWait time.Duration // latency of the first request only
	slowFor int           // number of requests that see getWait
	gets    int
	objects map[string][]byte
}

type fakeInfo struct{ Key string }

func (f *fakeStore) Put(ctx context.Context, key string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.objects == nil {
		f.objects = map[string][]byte{}
	}
	f.objects[key] = data
	return nil
}

func (f *fakeStore) Get(ctx context.Context, key string) ([]byte, error) {
	f.mu.Lock()
	f.gets++
	wait := time.Duration(0)
	if f.slowFor > 0 {
		f.slowFor--
		wait = f.getWait
	}
	fail := f.getErrs > 0
	if fail {
		f.getErrs--
	}
	data := f.objects[key]
	f.mu.Unlock()
	if wait > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
	if fail {
		return nil, errFlaky
	}
	return data, nil
}

func (f *fakeStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	return f.Get(ctx, key)
}

func (f *fakeStore) List(ctx context.Context, prefix string) ([]fakeInfo, error) {
	return nil, nil
}

func (f *fakeStore) Delete(ctx context.Context, key string) error { return nil }

func TestStoreRetriesGets(t *testing.T) {
	fs := &fakeStore{getErrs: 2, objects: map[string][]byte{"k": []byte("v")}}
	s := Wrap[fakeInfo](fs, Config{
		Policy: Policy{MaxAttempts: 4, Retryable: retryFlaky, Jitter: noJitter},
	})
	data, err := s.Get(context.Background(), "k")
	if err != nil || string(data) != "v" {
		t.Fatalf("get = %q, %v", data, err)
	}
	st := s.Stats()
	if st.Retries != 2 || st.Failures != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreHedgeWinsSlowPrimary(t *testing.T) {
	// First request is slow (200ms), the hedge is instant: the hedged
	// read should complete fast and count a fired+won hedge.
	fs := &fakeStore{getWait: 200 * time.Millisecond, slowFor: 1,
		objects: map[string][]byte{"k": []byte("v")}}
	s := Wrap[fakeInfo](fs, Config{
		Policy:     Policy{MaxAttempts: 2, Retryable: retryFlaky, Jitter: noJitter},
		HedgeDelay: 10 * time.Millisecond,
	})
	start := time.Now()
	data, err := s.Get(context.Background(), "k")
	if err != nil || string(data) != "v" {
		t.Fatalf("get = %q, %v", data, err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("hedge did not absorb slow primary: %v", elapsed)
	}
	st := s.Stats()
	if st.HedgesFired != 1 || st.HedgesWon != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreShedsWhileBreakerOpen(t *testing.T) {
	fs := &fakeStore{getErrs: 1 << 30, objects: map[string][]byte{"k": []byte("v")}}
	s := Wrap[fakeInfo](fs, Config{
		Policy: Policy{MaxAttempts: 3, Retryable: retryFlaky, Jitter: noJitter},
		Breaker: BreakerConfig{
			Window: 8, MinSamples: 4, TripRatio: 0.5, OpenFor: time.Hour,
		},
	})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		s.Get(ctx, "k")
	}
	if s.Breaker().State() != Open {
		t.Fatalf("breaker = %v after sustained failures", s.Breaker().State())
	}
	before := fs.gets
	_, err := s.Get(ctx, "k")
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if fs.gets != before {
		t.Errorf("open breaker leaked %d requests to the store", fs.gets-before)
	}
	if st := s.Stats(); st.Shed == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStorePutListDeleteGoThroughPolicy(t *testing.T) {
	fs := &fakeStore{}
	s := Wrap[fakeInfo](fs, Config{Policy: Policy{MaxAttempts: 2, Retryable: retryFlaky, Jitter: noJitter}})
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Attempts != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Attempt()
	c.Retry()
	c.HedgeFired()
	if c.Snapshot() != (Stats{}) {
		t.Error("nil counters must snapshot zero")
	}
}
