// Package expr implements scalar expressions: the AST produced by the SQL
// parser, name resolution against a schema, three-valued evaluation over
// rows and batches, and the min/max interval analysis the scan uses to
// prune ROS blocks and partitions (paper §2.1: "tracking minimum and
// maximum values of columns in each storage and using expression analysis
// to determine if a predicate could ever be true").
package expr

import (
	"fmt"
	"strings"

	"eon/internal/types"
)

// Op enumerates binary and unary operators.
type Op uint8

// Operators.
const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	case OpNeg:
		return "-"
	}
	return "?"
}

// IsComparison reports whether the operator is one of = <> < <= > >=.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// Expr is a scalar expression node. Expressions are built unbound (column
// references by name), then Bind resolves names against a schema and
// computes result types.
type Expr interface {
	// Type returns the result type; valid only after Bind.
	Type() types.Type
	// String renders the expression as SQL-ish text.
	String() string
}

// ColumnRef names a column; Bind fills Index and Typ.
type ColumnRef struct {
	Name  string
	Index int
	Typ   types.Type
}

// Type implements Expr.
func (c *ColumnRef) Type() types.Type { return c.Typ }

// String implements Expr.
func (c *ColumnRef) String() string { return c.Name }

// Param is a bind-parameter placeholder ("?" in the SQL text), filled at
// execution time by SubstituteParams. Index is the 1-based ordinal in
// appearance order. A Param's type is unknown until a value is bound, so
// plans prepared over parameters re-bind their expressions once the
// literals are substituted.
type Param struct {
	Index int
	Typ   types.Type
}

// Type implements Expr.
func (p *Param) Type() types.Type { return p.Typ }

// String implements Expr.
func (p *Param) String() string { return fmt.Sprintf("$%d", p.Index) }

// Literal is a constant datum.
type Literal struct {
	Value types.Datum
}

// Type implements Expr.
func (l *Literal) Type() types.Type { return l.Value.K }

// String implements Expr.
func (l *Literal) String() string {
	if l.Value.K == types.Varchar && !l.Value.Null {
		return "'" + l.Value.S + "'"
	}
	return l.Value.String()
}

// Binary applies Op to two operands.
type Binary struct {
	Op   Op
	L, R Expr
	Typ  types.Type
}

// Type implements Expr.
func (b *Binary) Type() types.Type { return b.Typ }

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Unary applies OpNot or OpNeg to one operand.
type Unary struct {
	Op  Op
	E   Expr
	Typ types.Type
}

// Type implements Expr.
func (u *Unary) Type() types.Type { return u.Typ }

// String implements Expr.
func (u *Unary) String() string { return u.Op.String() + " " + u.E.String() }

// IsNull tests for NULL (or NOT NULL when Negate is set).
type IsNull struct {
	E      Expr
	Negate bool
}

// Type implements Expr.
func (i *IsNull) Type() types.Type { return types.Bool }

// String implements Expr.
func (i *IsNull) String() string {
	if i.Negate {
		return i.E.String() + " IS NOT NULL"
	}
	return i.E.String() + " IS NULL"
}

// In tests membership in a literal list.
type In struct {
	E      Expr
	List   []Expr
	Negate bool

	// Constant-list state hoisted by Bind when every list element is a
	// literal: a typed hash set when the operand/list types allow, plus
	// the non-NULL literal datums for the generic membership loop.
	// Read-only after Bind (Clone shares it).
	constOK   bool
	constNull bool
	constInts map[int64]struct{}
	constStrs map[string]struct{}
	constList []types.Datum
}

// Type implements Expr.
func (i *In) Type() types.Type { return types.Bool }

// String implements Expr.
func (i *In) String() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.String()
	}
	neg := ""
	if i.Negate {
		neg = " NOT"
	}
	return i.E.String() + neg + " IN (" + strings.Join(parts, ", ") + ")"
}

// Like is a SQL LIKE pattern match with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool

	// compiled caches the pattern's compiled matcher, filled by Bind.
	// Read-only after Bind (Clone shares it).
	compiled *likeMatcher
}

// matcher returns the compiled pattern, compiling on the fly for nodes
// evaluated without a Bind pass.
func (l *Like) matcher() likeMatcher {
	if l.compiled != nil {
		return *l.compiled
	}
	return compileLike(l.Pattern)
}

// Type implements Expr.
func (l *Like) Type() types.Type { return types.Bool }

// String implements Expr.
func (l *Like) String() string {
	neg := ""
	if l.Negate {
		neg = " NOT"
	}
	return l.E.String() + neg + " LIKE '" + l.Pattern + "'"
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // may be nil (NULL)
	Typ   types.Type
}

// When is one WHEN cond THEN value arm.
type When struct {
	Cond Expr
	Then Expr
}

// Type implements Expr.
func (c *Case) Type() types.Type { return c.Typ }

// String implements Expr.
func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Then.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// Func is a scalar function call. Supported: HASH, EXTRACT (via the field
// argument as a string literal), SUBSTR, LOWER, UPPER, ABS, LENGTH,
// COALESCE.
type Func struct {
	Name string
	Args []Expr
	Typ  types.Type
}

// Type implements Expr.
func (f *Func) Type() types.Type { return f.Typ }

// String implements Expr.
func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Col is shorthand for an unbound column reference.
func Col(name string) *ColumnRef { return &ColumnRef{Name: name, Index: -1} }

// Lit is shorthand for a literal.
func Lit(d types.Datum) *Literal { return &Literal{Value: d} }

// IntLit is shorthand for an integer literal.
func IntLit(v int64) *Literal { return Lit(types.NewInt(v)) }

// FloatLit is shorthand for a float literal.
func FloatLit(v float64) *Literal { return Lit(types.NewFloat(v)) }

// StrLit is shorthand for a string literal.
func StrLit(s string) *Literal { return Lit(types.NewString(s)) }

// Bin is shorthand for a binary node.
func Bin(op Op, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// And chains expressions with AND; nil inputs are skipped and a fully nil
// input yields nil.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = Bin(OpAnd, out, e)
		}
	}
	return out
}

// Bind resolves column references in e against schema and computes result
// types. It returns an error for unknown columns or type mismatches.
func Bind(e Expr, schema types.Schema) error {
	switch n := e.(type) {
	case *ColumnRef:
		idx := schema.ColumnIndex(n.Name)
		if idx < 0 {
			return fmt.Errorf("expr: unknown column %q (schema: %s)", n.Name, schema)
		}
		n.Index = idx
		n.Typ = schema[idx].Type
		return nil
	case *Literal:
		return nil
	case *Param:
		// Parameters bind to no column; their type is resolved when a
		// value is substituted (SubstituteParams re-binds the tree).
		return nil
	case *Binary:
		if err := Bind(n.L, schema); err != nil {
			return err
		}
		if err := Bind(n.R, schema); err != nil {
			return err
		}
		return bindBinaryType(n)
	case *Unary:
		if err := Bind(n.E, schema); err != nil {
			return err
		}
		switch n.Op {
		case OpNot:
			n.Typ = types.Bool
		case OpNeg:
			n.Typ = n.E.Type()
		default:
			return fmt.Errorf("expr: bad unary op %v", n.Op)
		}
		return nil
	case *IsNull:
		return Bind(n.E, schema)
	case *In:
		if err := Bind(n.E, schema); err != nil {
			return err
		}
		for _, x := range n.List {
			if err := Bind(x, schema); err != nil {
				return err
			}
		}
		n.hoistConstList()
		return nil
	case *Like:
		m := compileLike(n.Pattern)
		n.compiled = &m
		return Bind(n.E, schema)
	case *Case:
		for _, w := range n.Whens {
			if err := Bind(w.Cond, schema); err != nil {
				return err
			}
			if err := Bind(w.Then, schema); err != nil {
				return err
			}
		}
		if n.Else != nil {
			if err := Bind(n.Else, schema); err != nil {
				return err
			}
		}
		if len(n.Whens) > 0 {
			n.Typ = n.Whens[0].Then.Type()
		}
		return nil
	case *Func:
		for _, a := range n.Args {
			if err := Bind(a, schema); err != nil {
				return err
			}
		}
		return bindFuncType(n)
	}
	return fmt.Errorf("expr: unknown node %T", e)
}

// hoistConstList pre-computes membership state for an all-literal IN
// list: the non-NULL datums, a NULL flag, and — when the operand and
// every list element share an exactly comparable physical class — a
// typed hash set for O(1) membership.
func (n *In) hoistConstList() {
	n.constOK = false
	n.constNull = false
	n.constInts = nil
	n.constStrs = nil
	n.constList = nil
	datums := make([]types.Datum, 0, len(n.List))
	for _, x := range n.List {
		lit, ok := x.(*Literal)
		if !ok {
			return
		}
		if lit.Value.Null {
			n.constNull = true
			continue
		}
		datums = append(datums, lit.Value)
	}
	n.constOK = true
	n.constList = datums
	switch n.E.Type().Physical() {
	case types.Int64:
		for _, d := range datums {
			if d.K.Physical() != types.Int64 {
				return
			}
		}
		n.constInts = make(map[int64]struct{}, len(datums))
		for _, d := range datums {
			n.constInts[d.I] = struct{}{}
		}
	case types.Varchar:
		for _, d := range datums {
			if d.K.Physical() != types.Varchar {
				return
			}
		}
		n.constStrs = make(map[string]struct{}, len(datums))
		for _, d := range datums {
			n.constStrs[d.S] = struct{}{}
		}
	}
}

func bindBinaryType(n *Binary) error {
	lt, rt := n.L.Type(), n.R.Type()
	switch {
	case n.Op.IsComparison():
		n.Typ = types.Bool
	case n.Op == OpAnd || n.Op == OpOr:
		n.Typ = types.Bool
	default: // arithmetic
		if lt.Physical() == types.Float64 || rt.Physical() == types.Float64 {
			n.Typ = types.Float64
		} else {
			n.Typ = lt
		}
	}
	return nil
}

func bindFuncType(n *Func) error {
	switch strings.ToUpper(n.Name) {
	case "HASH":
		n.Typ = types.Int64
	case "EXTRACT", "ABS", "LENGTH", "YEAR", "MONTH", "DAY":
		n.Typ = types.Int64
	case "SUBSTR", "LOWER", "UPPER":
		n.Typ = types.Varchar
	case "COALESCE":
		if len(n.Args) == 0 {
			return fmt.Errorf("expr: COALESCE needs arguments")
		}
		n.Typ = n.Args[0].Type()
	default:
		return fmt.Errorf("expr: unknown function %q", n.Name)
	}
	return nil
}

// Columns returns the set of column indexes referenced by the bound
// expression.
func Columns(e Expr) []int {
	seen := map[int]struct{}{}
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case *ColumnRef:
			seen[n.Index] = struct{}{}
		case *Binary:
			walk(n.L)
			walk(n.R)
		case *Unary:
			walk(n.E)
		case *IsNull:
			walk(n.E)
		case *In:
			walk(n.E)
			for _, a := range n.List {
				walk(a)
			}
		case *Like:
			walk(n.E)
		case *Case:
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if n.Else != nil {
				walk(n.Else)
			}
		case *Func:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sortInts(out)
	return out
}

// ColumnNames returns the distinct column names referenced by e (bound or
// unbound).
func ColumnNames(e Expr) []string {
	seen := map[string]struct{}{}
	var order []string
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case *ColumnRef:
			key := strings.ToLower(n.Name)
			if _, ok := seen[key]; !ok {
				seen[key] = struct{}{}
				order = append(order, n.Name)
			}
		case *Binary:
			walk(n.L)
			walk(n.R)
		case *Unary:
			walk(n.E)
		case *IsNull:
			walk(n.E)
		case *In:
			walk(n.E)
			for _, a := range n.List {
				walk(a)
			}
		case *Like:
			walk(n.E)
		case *Case:
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if n.Else != nil {
				walk(n.Else)
			}
		case *Func:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return order
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
