package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eon/internal/obs"
	"eon/internal/reconcile"
	"eon/internal/types"
	"eon/internal/workload"
)

// profileShape derives, from a span tree, the quantities the
// v_monitor.query_profiles rows must reproduce: span count, summed wall
// time, and the maximum depth.
func profileShape(p *obs.Profile) (spans, wallSum, maxDepth int64) {
	var walk func(n *obs.Profile, d int64)
	walk = func(n *obs.Profile, d int64) {
		spans++
		wallSum += int64(n.Wall)
		if d > maxDepth {
			maxDepth = d
		}
		for _, c := range n.Children {
			walk(c, d+1)
		}
	}
	walk(p, 0)
	return
}

// TestSystemTablesDifferential is the three-way differential over every
// TPC-H query: after each query, v_monitor.query_profiles must flatten
// exactly the span tree Session.LastProfile returns, and
// v_monitor.metrics must agree with both DB.ScanStats and an
// obs.Snapshot taken just before the monitoring read. Only the traced
// session has a profile and monitoring queries never scan storage, so
// every compared quantity is stable across the read.
func TestSystemTablesDifferential(t *testing.T) {
	db, _, err := NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	s.Trace = true
	mon := db.NewSession()

	for i, q := range workload.TPCHQueries() {
		if _, err := s.Query(q.SQL); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		prof := s.LastProfile()
		if prof == nil {
			t.Fatalf("%s: no profile recorded", q.Name)
		}
		wantSpans, wantWall, wantDepth := profileShape(prof)
		scanStats := db.ScanStats()
		snap := db.Registry().Snapshot()

		// The profile table vs the in-memory span tree.
		res, err := mon.Query(`SELECT COUNT(*) AS spans, SUM(p.wall_ns) AS wall,
			MAX(p.depth) AS depth, MAX(p.query_seq) AS seq
			FROM v_monitor.query_profiles p`)
		if err != nil {
			t.Fatalf("%s: query_profiles: %v", q.Name, err)
		}
		row := res.Rows()[0]
		if row[0].I != wantSpans || row[1].I != wantWall || row[2].I != wantDepth {
			t.Errorf("%s: SQL sees %d spans / %d wall / depth %d; LastProfile has %d / %d / %d",
				q.Name, row[0].I, row[1].I, row[2].I, wantSpans, wantWall, wantDepth)
		}
		if row[3].I != int64(i+1) {
			t.Errorf("%s: query_seq = %d, want %d", q.Name, row[3].I, i+1)
		}

		// The metrics table vs the snapshot and the ScanStats tally.
		res, err = mon.Query(`SELECT m.name, m.value FROM v_monitor.metrics m
			WHERE m.kind = 'counter' ORDER BY m.name`)
		if err != nil {
			t.Fatalf("%s: metrics: %v", q.Name, err)
		}
		got := map[string]int64{}
		for _, r := range res.Rows() {
			got[r[0].S] = r[1].I
		}
		// Compare the storage-scan counters: virtual scans touch no
		// storage, so these cannot move between the Snapshot, the
		// ScanStats read and the SQL fill. (Counters the monitoring
		// queries themselves advance — e.g. scan.rows_vectorized from the
		// virtual scan's filter kernels — are legitimately ahead in SQL.)
		for _, c := range []struct {
			metric string
			tally  int64
		}{
			{"scan.fetches", scanStats.Fetches},
			{"scan.bytes_fetched", scanStats.BytesFetched},
			{"scan.rows_scanned", scanStats.RowsScanned},
			{"scan.cache_hits", scanStats.CacheHits},
			{"scan.cache_misses", scanStats.CacheMisses},
			{"scan.containers_scanned", scanStats.ContainersScanned},
		} {
			if got[c.metric] != c.tally {
				t.Errorf("%s: %s = %d via SQL, %d via DB.ScanStats", q.Name, c.metric, got[c.metric], c.tally)
			}
			if got[c.metric] != snap.Counters[c.metric] {
				t.Errorf("%s: %s = %d via SQL, %d via Snapshot", q.Name, c.metric, got[c.metric], snap.Counters[c.metric])
			}
		}
	}
}

// TestSystemTablesNoBlockUnderChaos runs monitoring queries against a
// cluster under concurrent load, tuple-mover passes, reconciler rounds
// and a node kill/revive. The acceptance criterion is liveness: every
// monitoring query completes (fill functions take snapshot cuts and
// never hold hot-path locks), checked by a watchdog on the whole drill.
func TestSystemTablesNoBlockUnderChaos(t *testing.T) {
	db, _, err := NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	rec := reconcile.New(db, reconcile.Config{Spec: reconcile.ClusterSpec{
		Subclusters: []reconcile.SubclusterSpec{{Name: "", Size: 3}},
	}})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var loaderErr, monitorErr atomic.Value

	// Loader: small COPYs into nation keep commits and depot writes hot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		schema := types.Schema{
			{Name: "n_nationkey", Type: types.Int64},
			{Name: "n_name", Type: types.Varchar},
		}
		for i := 0; ctx.Err() == nil; i++ {
			b := types.NewBatch(schema, 8)
			for r := 0; r < 8; r++ {
				b.AppendRow(types.Row{
					types.NewInt(int64(100 + i*8 + r)),
					types.NewString(fmt.Sprintf("chaos-%d", i)),
				})
			}
			if err := db.LoadRows("nation", b); err != nil && ctx.Err() == nil {
				loaderErr.Store(err)
				return
			}
		}
	}()

	// Tuple mover: mergeout passes race the loader's commits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			_, _ = db.RunMergeout()
		}
	}()

	// Reconciler: rounds race everything; the mid-drill kill below gives
	// it real repair work.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			rec.Tick(ctx)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Killer: one kill + recover cycle mid-drill.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(200 * time.Millisecond)
		_ = db.KillNode("node3")
		// The reconciler revives it; nothing else to do.
	}()

	// Monitor (this goroutine): a fixed budget of monitoring queries
	// across every table family, all of which must complete.
	monQueries := []string{
		`SELECT COUNT(*) FROM v_monitor.metrics`,
		`SELECT m.kind, COUNT(*) FROM v_monitor.metrics m GROUP BY m.kind`,
		`SELECT COUNT(*) FROM v_monitor.query_profiles`,
		`SELECT d.node, SUM(d.bytes) FROM v_monitor.depot_storage d GROUP BY d.node`,
		`SELECT COUNT(*) FROM v_monitor.depot_fetches`,
		`SELECT COUNT(*) FROM v_monitor.storage_containers`,
		`SELECT sub.state, COUNT(*) FROM v_monitor.shard_subscriptions sub GROUP BY sub.state`,
		`SELECT COUNT(*) FROM v_monitor.reconcile_status`,
		`SELECT COUNT(*) FROM v_monitor.sessions`,
		`SELECT COUNT(*) FROM v_monitor.dc_depot_fetches`,
		`SELECT COUNT(*) FROM v_monitor.dc_mergeouts`,
		`SELECT a.action, COUNT(*) FROM v_monitor.dc_reconcile_actions a GROUP BY a.action`,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		mon := db.NewSession()
		// At least 25 rounds AND at least 1.5s of wall clock, so the
		// monitoring load overlaps the 200ms kill and the reconciler's
		// revive rather than finishing before the chaos starts.
		start := time.Now()
		for round := 0; round < 25 || time.Since(start) < 1500*time.Millisecond; round++ {
			for _, q := range monQueries {
				if _, err := mon.Query(q); err != nil {
					monitorErr.Store(fmt.Errorf("%s: %w", q, err))
					return
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("monitoring queries did not complete: virtual scans blocked against concurrent load/mergeout/reconcile")
	}
	cancel()
	wg.Wait()
	if err, ok := monitorErr.Load().(error); ok {
		t.Fatalf("monitoring query failed: %v", err)
	}
	if err, ok := loaderErr.Load().(error); ok {
		t.Fatalf("loader failed: %v", err)
	}

	// The drill must have produced evidence in the ring: the revive of
	// node3 emits into dc_reconcile_actions. Poll briefly — the action
	// may land a few reconciler ticks after the monitor loop finishes.
	s := db.NewSession()
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := s.Query(`SELECT COUNT(*) FROM v_monitor.dc_reconcile_actions`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Batch.Cols[0].Ints[0] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Error("no reconcile actions recorded during the drill")
			break
		}
		rec.Tick(context.Background())
		time.Sleep(20 * time.Millisecond)
	}
}
