package objstore

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"eon/internal/obs"
)

// TestResetStatsNotTorn hammers Get/Stats/ResetStats concurrently and
// asserts every snapshot is internally consistent. The old ResetStats
// stored zeros field by field, so a concurrent Stats() could observe a
// half-reset (e.g. bytesRead zeroed but gets not, or vice versa); the
// baseline-subtraction design makes every snapshot coherent. Run under
// -race in CI.
func TestResetStatsNotTorn(t *testing.T) {
	const (
		objSize = 100
		workers = 8
		ops     = 400
	)
	mem := NewMem()
	sim := NewSim(mem, SimConfig{})
	ctx := context.Background()
	payload := make([]byte, objSize)
	for i := 0; i < workers; i++ {
		if err := sim.Put(ctx, fmt.Sprintf("obj-%d", i), payload); err != nil {
			t.Fatalf("seed put: %v", err)
		}
	}
	sim.ResetStats()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("obj-%d", i)
			for j := 0; j < ops; j++ {
				if _, err := sim.Get(ctx, key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			sim.ResetStats()
		}
	}()

	var snapErr error
	for i := 0; i < 2000 && snapErr == nil; i++ {
		st := sim.Stats()
		switch {
		case st.Gets < 0 || st.Puts < 0 || st.BytesRead < 0 || st.BytesWritten < 0 ||
			st.Lists < 0 || st.Deletes < 0 || st.Throttled < 0 || st.Failed < 0:
			snapErr = fmt.Errorf("negative counter in snapshot: %+v", st)
		// Bytes must be accounted for by Gets. An op in flight at the
		// baseline capture may have counted its request but not yet its
		// bytes, so allow one object of slack per worker.
		case st.BytesRead > (st.Gets+workers)*objSize:
			snapErr = fmt.Errorf("snapshot torn: BytesRead=%d > (Gets=%d + %d workers) * %d",
				st.BytesRead, st.Gets, workers, objSize)
		}
	}
	stop.Store(true)
	wg.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
}

func TestResetStatsBaseline(t *testing.T) {
	sim := NewSim(NewMem(), SimConfig{})
	ctx := context.Background()
	if err := sim.Put(ctx, "k", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Gets != 1 || st.Puts != 1 || st.BytesRead != 10 || st.BytesWritten != 10 {
		t.Fatalf("pre-reset stats = %+v", st)
	}
	sim.ResetStats()
	if st := sim.Stats(); st != (Stats{}) {
		t.Fatalf("post-reset stats = %+v, want zero", st)
	}
	if _, err := sim.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if st := sim.Stats(); st.Gets != 1 || st.BytesRead != 10 || st.Puts != 0 {
		t.Fatalf("post-reset second read = %+v", st)
	}
}

// TestInstrumentRegistryMonotonic checks that the registry view keeps
// counting across ResetStats and that the cost gauge prices requests.
func TestInstrumentRegistryMonotonic(t *testing.T) {
	sim := NewSim(NewMem(), SimConfig{})
	reg := obs.NewRegistry()
	sim.Instrument(reg)
	ctx := context.Background()
	if err := sim.Put(ctx, "k", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	sim.ResetStats()
	snap := reg.Snapshot()
	if snap.Counters["objstore.gets"] != 1 || snap.Counters["objstore.puts"] != 1 {
		t.Fatalf("registry counters reset along with Stats view: %+v", snap.Counters)
	}
	if snap.Histograms["objstore.get_ns"].Count != 1 {
		t.Fatalf("get latency histogram count = %d", snap.Histograms["objstore.get_ns"].Count)
	}
	wantCost := int64(Stats{Gets: 1, Puts: 1}.RequestCostUSD(DefaultCosts()) * 1e9)
	if got := snap.Gauges["objstore.request_cost_nano_usd"]; got != wantCost {
		t.Fatalf("cost gauge = %d, want %d", got, wantCost)
	}
}
