// Command tpchgen writes the TPC-H-shaped benchmark dataset as CSV files,
// one per table, for inspection or loading into other systems.
//
//	tpchgen -scale 0.2 -out ./data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"eon/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.1, "scale factor")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	w := workload.DefaultTPCH(*scale)
	w.Seed = *seed
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	tables := w.Tables()
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		batch := tables[name]
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		for i := 0; i < batch.NumRows(); i++ {
			row := batch.Row(i)
			for j, d := range row {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(d.String())
			}
			bw.WriteByte('\n')
		}
		if err := bw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("%s: %d rows -> %s\n", name, batch.NumRows(), path)
	}
}
