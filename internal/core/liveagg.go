package core

import (
	"fmt"
	"strings"

	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/expr"
	"eon/internal/sql"
	"eon/internal/types"
)

// createLiveAggProjection validates and registers a live aggregate
// projection (paper §2.1): pre-computed partial aggregates grouped by the
// projection's plain columns, maintained at load time, "trading the
// ability to maintain pre-computed partial aggregate expressions against
// restrictions on how the base table can be updated".
func (db *DB) createLiveAggProjection(init *Node, txn *catalog.Txn, tbl *catalog.Table, stmt *sql.CreateProjection) error {
	if len(stmt.Cols) == 0 {
		return fmt.Errorf("core: live aggregate projection needs at least one group column")
	}
	groupSet := map[string]bool{}
	for _, c := range stmt.Cols {
		if tbl.Columns.ColumnIndex(c) < 0 {
			return fmt.Errorf("core: table %q has no column %q", tbl.Name, c)
		}
		groupSet[strings.ToLower(c)] = true
	}
	if len(stmt.GroupBy) > 0 {
		if len(stmt.GroupBy) != len(stmt.Cols) {
			return fmt.Errorf("core: GROUP BY must list exactly the projection's plain columns")
		}
		for _, g := range stmt.GroupBy {
			if !groupSet[strings.ToLower(g)] {
				return fmt.Errorf("core: GROUP BY column %q is not a projection column", g)
			}
		}
	}

	liveSchema := make(types.Schema, 0, len(stmt.Cols)+len(stmt.Aggs))
	for _, c := range stmt.Cols {
		idx := tbl.Columns.ColumnIndex(c)
		liveSchema = append(liveSchema, tbl.Columns[idx])
	}
	var liveAggs []catalog.LiveAgg
	usedNames := map[string]bool{}
	for k := range groupSet {
		usedNames[k] = true
	}
	for _, a := range stmt.Aggs {
		la := catalog.LiveAgg{Col: a.Col}
		var typ types.Type
		switch a.Op {
		case sql.AggCountStar:
			la.Op = "countstar"
			typ = types.Int64
		case sql.AggCount:
			la.Op = "count"
			typ = types.Int64
		case sql.AggSum:
			la.Op = "sum"
		case sql.AggMin:
			la.Op = "min"
		case sql.AggMax:
			la.Op = "max"
		default:
			return fmt.Errorf("core: live aggregate projections support SUM/COUNT/MIN/MAX, not %v", a.Op)
		}
		if la.Op != "countstar" {
			idx := tbl.Columns.ColumnIndex(a.Col)
			if idx < 0 {
				return fmt.Errorf("core: table %q has no column %q", tbl.Name, a.Col)
			}
			switch la.Op {
			case "sum":
				phys := tbl.Columns[idx].Type.Physical()
				if phys != types.Int64 && phys != types.Float64 {
					return fmt.Errorf("core: SUM requires a numeric column, %q is %s", a.Col, tbl.Columns[idx].Type)
				}
				typ = tbl.Columns[idx].Type.Physical()
			case "min", "max":
				typ = tbl.Columns[idx].Type
			}
		}
		name := a.Alias
		if name == "" {
			if la.Op == "countstar" {
				name = "count_star"
			} else {
				name = la.Op + "_" + strings.ToLower(a.Col)
			}
		}
		if usedNames[strings.ToLower(name)] {
			return fmt.Errorf("core: duplicate live aggregate column %q", name)
		}
		usedNames[strings.ToLower(name)] = true
		la.Name = name
		liveAggs = append(liveAggs, la)
		liveSchema = append(liveSchema, types.Column{Name: name, Type: typ})
	}

	// Sort and segmentation default to (and must stay within) the group
	// columns, so groups are co-located and per-node merges suffice.
	sortKey := stmt.OrderBy
	if len(sortKey) == 0 {
		sortKey = append([]string(nil), stmt.Cols...)
	}
	for _, s := range sortKey {
		if !groupSet[strings.ToLower(s)] {
			return fmt.Errorf("core: live aggregate sort column %q must be a group column", s)
		}
	}
	var segCols []string
	if !stmt.Replicated {
		segCols = stmt.SegmentBy
		if len(segCols) == 0 {
			segCols = append([]string(nil), stmt.Cols...)
		}
		for _, s := range segCols {
			if !groupSet[strings.ToLower(s)] {
				return fmt.Errorf("core: live aggregate segmentation column %q must be a group column", s)
			}
		}
	}

	proj := &catalog.Projection{
		OID:      init.catalog.NewOID(),
		TableOID: tbl.OID,
		Name:     stmt.Name,
		Columns:  stmt.Cols, SortKey: sortKey, SegmentCols: segCols,
		LiveAggs: liveAggs, LiveSchema: liveSchema,
	}
	txn.Put(proj)
	if db.mode == ModeEnterprise && len(segCols) > 0 && len(db.order) > 1 && stmt.KSafe != 0 {
		buddy := proj.Clone().(*catalog.Projection)
		buddy.OID = init.catalog.NewOID()
		buddy.Name = stmt.Name + "_b1"
		buddy.BuddyOffset = 1
		buddy.BaseOID = proj.OID
		txn.Put(buddy)
	}
	_, err := db.commit(init, txn, nil)
	return err
}

// liveAggDefs maps a projection's aggregates to execution AggDefs over a
// source schema. merge selects re-aggregation semantics (counts sum
// instead of counting) for compaction and query-time merging.
func liveAggDefs(proj *catalog.Projection, source types.Schema, merge bool) ([]exec.AggDef, error) {
	var defs []exec.AggDef
	for _, la := range proj.LiveAggs {
		def := exec.AggDef{Name: la.Name}
		argName := la.Col
		if merge {
			argName = la.Name // partials live in the projection's own column
		}
		if la.Op != "countstar" || merge {
			ref := expr.Col(argName)
			if err := expr.Bind(ref, source); err != nil {
				return nil, err
			}
			def.Arg = ref
		}
		switch la.Op {
		case "countstar":
			if merge {
				def.Kind = exec.AggCountMerge
			} else {
				def.Kind = exec.AggCountStar
			}
		case "count":
			if merge {
				def.Kind = exec.AggCountMerge
			} else {
				def.Kind = exec.AggCount
			}
		case "sum":
			def.Kind = exec.AggSum
		case "min":
			def.Kind = exec.AggMin
		case "max":
			def.Kind = exec.AggMax
		default:
			return nil, fmt.Errorf("core: unknown live aggregate op %q", la.Op)
		}
		defs = append(defs, def)
	}
	return defs, nil
}

// aggregateForLiveProjection turns a source batch into the projection's
// physical rows: groups plus aggregate values, in LiveSchema order. With
// merge=false the source is raw table rows (load path); with merge=true
// it is previously aggregated projection rows (mergeout re-aggregation).
func aggregateForLiveProjection(proj *catalog.Projection, source types.Schema, batch *types.Batch, merge bool) (*types.Batch, error) {
	var keys []expr.Expr
	var keyNames []string
	for _, g := range proj.Columns {
		ref := expr.Col(g)
		if err := expr.Bind(ref, source); err != nil {
			return nil, err
		}
		keys = append(keys, ref)
		keyNames = append(keyNames, g)
	}
	defs, err := liveAggDefs(proj, source, merge)
	if err != nil {
		return nil, err
	}
	op := exec.NewHashAggregate(exec.NewSource(source, batch), keys, keyNames, defs, false)
	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	// Restore the projection's logical column types (e.g. Date keys).
	for i := range out.Cols {
		out.Cols[i].Typ = proj.LiveSchema[i].Type
	}
	return out, nil
}

// tableHasLiveAggregate reports whether any projection of the table
// maintains aggregates, which restricts base-table updates (§2.1).
func tableHasLiveAggregate(projs []*catalog.Projection) bool {
	for _, p := range projs {
		if p.IsLiveAggregate() {
			return true
		}
	}
	return false
}
