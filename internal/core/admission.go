package core

import (
	"container/list"
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"eon/internal/obs"
)

// ErrQueuedTooLong marks a query that spent its entire Session.Timeout
// parked in an admission queue or waiting for execution slots, without
// ever starting to execute. It is distinct from a mid-execution timeout
// (context.DeadlineExceeded surfacing from a scan) so callers can tell
// "the cluster was saturated" from "my query was slow".
var ErrQueuedTooLong = errors.New("core: queued too long awaiting admission")

// admissionController gates queries in front of slot acquisition with
// per-subcluster FIFO queues. A query is admitted when its subcluster is
// under its concurrency cap AND the cluster-wide aggregate of admitted
// queries' memory budgets stays within AdmissionMemoryLimit; otherwise
// it parks in its subcluster's queue in arrival order, bounded by the
// session deadline. Per-subcluster queues keep one saturated subcluster
// from starving another — admission state is segregated exactly like the
// workloads themselves (§4.3).
type admissionController struct {
	mu sync.Mutex
	// limit caps concurrently admitted queries per subcluster (0 = off).
	limit int
	// memLimit caps the aggregate Session.MemoryBudget of admitted
	// queries, cluster-wide (0 = off). A query whose own budget exceeds
	// the limit is admitted when nothing else runs ("admit alone"), so an
	// oversized budget degrades to serial execution instead of
	// deadlocking forever.
	memLimit int64
	subs     map[string]*admQueue
	totalMem int64 // aggregate budget of all admitted queries

	admitted *obs.Counter
	queued   *obs.Counter
	timeouts *obs.Counter
	waitNS   *obs.Histogram
	// ring is the dc_admission_waits ring (nil when the collector is
	// off); admission emits queued -> admitted -> finished transitions.
	ring *obs.DCRing
}

// admQueue is one subcluster's admission state.
type admQueue struct {
	label   string
	running int
	mem     int64
	waiters *list.List // of *admWaiter, FIFO
}

// admWaiter is one parked query.
type admWaiter struct {
	ready    chan struct{}
	mem      int64
	enqueued time.Time
	// admitted is set under the controller lock when a releaser hands
	// this waiter the grant; the waiter may observe it from a deadline
	// race and must then consume the grant rather than abandon it.
	admitted bool
}

func newAdmissionController(limit int, memLimit int64) *admissionController {
	return &admissionController{
		limit: limit, memLimit: memLimit,
		subs:     map[string]*admQueue{},
		admitted: &obs.Counter{}, queued: &obs.Counter{},
		timeouts: &obs.Counter{}, waitNS: &obs.Histogram{},
	}
}

// register wires the controller's metrics into the registry.
func (a *admissionController) register(reg *obs.Registry) {
	reg.RegisterCounter("admission.admitted", a.admitted)
	reg.RegisterCounter("admission.queued", a.queued)
	reg.RegisterCounter("admission.timeouts", a.timeouts)
	reg.RegisterHistogram("admission.wait_ns", a.waitNS)
	reg.GaugeFunc("admission.queue_depth", func() int64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		var n int64
		for _, q := range a.subs {
			n += int64(q.waiters.Len())
		}
		return n
	})
	reg.GaugeFunc("admission.running", func() int64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		var n int64
		for _, q := range a.subs {
			n += int64(q.running)
		}
		return n
	})
}

func subclusterLabel(sc string) string {
	if sc == "" {
		return "default"
	}
	return sc
}

func (a *admissionController) queue(label string) *admQueue {
	q, ok := a.subs[label]
	if !ok {
		q = &admQueue{label: label, waiters: list.New()}
		a.subs[label] = q
	}
	return q
}

// fits reports whether one more query with budget mem can be admitted to
// q right now (caller holds a.mu).
func (a *admissionController) fits(q *admQueue, mem int64) bool {
	if a.limit > 0 && q.running >= a.limit {
		return false
	}
	if a.memLimit > 0 && a.totalMem+mem > a.memLimit {
		// Admit-alone escape: a single query whose budget alone exceeds
		// the limit would otherwise queue forever.
		return a.totalMem == 0
	}
	return true
}

// grant marks one query admitted (caller holds a.mu).
func (a *admissionController) grant(q *admQueue, mem int64) {
	q.running++
	q.mem += mem
	a.totalMem += mem
	a.admitted.Inc()
}

// admit gates one query. It returns a release closure the caller must
// invoke when the query finishes (on every path), or ErrQueuedTooLong
// when ctx expires while parked. node names the initiator for Data
// Collector events; mem is the query's Session.MemoryBudget.
func (a *admissionController) admit(ctx context.Context, node, subcluster string, mem int64) (func(), error) {
	label := subclusterLabel(subcluster)
	a.mu.Lock()
	q := a.queue(label)
	// FIFO: a query may only jump the queue when nobody is parked.
	if q.waiters.Len() == 0 && a.fits(q, mem) {
		a.grant(q, mem)
		a.mu.Unlock()
		a.waitNS.Observe(0)
		a.emit(node, label, "admitted", 0, mem, 0)
		return a.releaser(node, q, mem), nil
	}
	w := &admWaiter{ready: make(chan struct{}), mem: mem, enqueued: time.Now()}
	el := q.waiters.PushBack(w)
	depth := int64(q.waiters.Len())
	a.queued.Inc()
	a.mu.Unlock()
	a.emit(node, label, "queued", 0, mem, depth)

	select {
	case <-w.ready:
		wait := time.Since(w.enqueued)
		a.waitNS.ObserveDuration(wait)
		a.emit(node, label, "admitted", wait, mem, 0)
		return a.releaser(node, q, mem), nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.admitted {
			// The grant raced the deadline; consume it — the deadline
			// context will abort the query at the next stage anyway, and
			// abandoning the grant here would leak it.
			a.mu.Unlock()
			wait := time.Since(w.enqueued)
			a.waitNS.ObserveDuration(wait)
			a.emit(node, label, "admitted", wait, mem, 0)
			return a.releaser(node, q, mem), nil
		}
		q.waiters.Remove(el)
		a.timeouts.Inc()
		a.mu.Unlock()
		wait := time.Since(w.enqueued)
		a.waitNS.ObserveDuration(wait)
		a.emit(node, label, "timeout", wait, mem, 0)
		return nil, ErrQueuedTooLong
	}
}

// releaser returns the closure that ends one admitted query and promotes
// waiters that now fit, in FIFO order.
func (a *admissionController) releaser(node string, q *admQueue, mem int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			q.running--
			q.mem -= mem
			a.totalMem -= mem
			a.promoteLocked()
			a.mu.Unlock()
			a.emit(node, q.label, "finished", 0, mem, 0)
		})
	}
}

// promoteLocked admits queued waiters that now fit, FIFO within each
// subcluster (caller holds a.mu). Freed capacity in one subcluster can
// unblock memory-throttled waiters of another, so all queues are swept.
func (a *admissionController) promoteLocked() {
	for _, q := range a.subs {
		for q.waiters.Len() > 0 {
			w := q.waiters.Front().Value.(*admWaiter)
			if !a.fits(q, w.mem) {
				break
			}
			q.waiters.Remove(q.waiters.Front())
			w.admitted = true
			a.grant(q, w.mem)
			close(w.ready)
		}
	}
}

// emit records one admission lifecycle event into dc_admission_waits
// (V2 is the slots column, used only by slot-acquisition events).
func (a *admissionController) emit(node, label, state string, wait time.Duration, mem, depth int64) {
	a.ring.Emit(obs.DCEvent{
		Node: node, A: label, B: state,
		V1: int64(wait), V3: mem, V4: depth,
	})
}

// admissionRow is one subcluster's state for v_monitor.admission_queue.
type admissionRow struct {
	Subcluster string
	Running    int64
	Queued     int64
	MemBytes   int64
}

// snapshotRows copies per-subcluster admission state, sorted by label.
func (a *admissionController) snapshotRows() []admissionRow {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]admissionRow, 0, len(a.subs))
	for _, q := range a.subs {
		out = append(out, admissionRow{
			Subcluster: q.label, Running: int64(q.running),
			Queued: int64(q.waiters.Len()), MemBytes: q.mem,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subcluster < out[j].Subcluster })
	return out
}
