package core

import (
	"fmt"
	"sort"
	"time"

	"eon/internal/catalog"
	"eon/internal/expr"
	"eon/internal/obs"
	"eon/internal/planner"
	"eon/internal/systable"
	"eon/internal/types"
)

// This file wires the v_monitor virtual schema into the engine: the
// Data Collector rings hot paths emit into, the system-table registry
// the planner resolves v_monitor.* names against, and the scan-time
// materialization of both. Fill functions follow the scan discipline:
// each takes its own snapshot cut (registry snapshot, ring snapshot,
// catalog snapshot, bounded-ring copy) and never holds a hot-path lock
// while building rows, so monitoring queries cannot block or deadlock
// against concurrent loads, mergeouts or reconciler ticks.

// Data Collector ring definitions. Emit sites resolve these rings once
// at database creation and hold the pointer (a nil ring drops emits, so
// a database with the collector disabled pays only a nil check).
var (
	dcDepotFetchesDef = obs.DCRingDef{Name: "depot_fetches",
		ACol: "path", BCol: "outcome", VCols: []string{"bytes", "wait_ns"}}
	dcDepotEvictionsDef = obs.DCRingDef{Name: "depot_evictions",
		ACol: "path", VCols: []string{"bytes"}}
	dcMergeoutsDef = obs.DCRingDef{Name: "mergeouts",
		ACol: "table_name", BCol: "projection", VCols: []string{"containers", "purged_rows", "wall_ns"}}
	dcSpillsDef = obs.DCRingDef{Name: "spills",
		VCols: []string{"peak_mem_bytes", "spill_count", "spill_bytes"}}
	// admission_waits carries the full admission lifecycle: "queued",
	// "admitted", "finished" and "timeout" transitions from the admission
	// controller (wait_ns, mem_bytes, queue_depth populated) plus "slots"
	// events from slot acquisition (wait_ns, slots populated).
	dcAdmissionWaitsDef = obs.DCRingDef{Name: "admission_waits",
		ACol: "subcluster", BCol: "state",
		VCols: []string{"wait_ns", "slots", "mem_bytes", "queue_depth"}}
	dcSlowQueriesDef = obs.DCRingDef{Name: "slow_queries",
		ACol: "sql", BCol: "error", VCols: []string{"wall_ns", "peak_mem_bytes", "spill_bytes"}}
	dcReconcileActionsDef = obs.DCRingDef{Name: "reconcile_actions",
		ACol: "action", BCol: "detail", VCols: []string{"round", "ok", "wall_ns"}}
)

// sessionLogSize bounds the recent-session ring behind
// v_monitor.sessions and v_monitor.query_profiles.
const sessionLogSize = 128

// dcSQLLimit truncates slow-query SQL text in Data Collector events so
// one giant statement cannot crowd a ring's byte budget.
const dcSQLLimit = 512

// installDataCollector builds the collector and resolves every ring the
// engine emits into, then hooks each node cache's eviction callback.
func (db *DB) installDataCollector() {
	if db.cfg.DisableDataCollector {
		return
	}
	db.dc = obs.NewDataCollector(db.cfg.DataCollectorPolicy)
	db.dcDepotFetches = db.dc.Ring(dcDepotFetchesDef)
	db.dcDepotEvictions = db.dc.Ring(dcDepotEvictionsDef)
	db.dcMergeouts = db.dc.Ring(dcMergeoutsDef)
	db.dcSpills = db.dc.Ring(dcSpillsDef)
	db.dcAdmissionWaits = db.dc.Ring(dcAdmissionWaitsDef)
	db.admission.ring = db.dcAdmissionWaits
	db.dcSlowQueries = db.dc.Ring(dcSlowQueriesDef)
	db.dcReconcileActions = db.dc.Ring(dcReconcileActionsDef)
	for _, name := range db.order {
		db.hookCacheEvictions(db.nodes[name])
	}
}

// hookCacheEvictions points a node cache's eviction callback at the
// depot_evictions ring.
func (db *DB) hookCacheEvictions(n *Node) {
	if n == nil || n.cache == nil || db.dcDepotEvictions == nil {
		return
	}
	node := n.name
	ring := db.dcDepotEvictions
	n.cache.SetEvictHook(func(path string, size int64) {
		ring.Emit(obs.DCEvent{Node: node, A: path, V1: size})
	})
}

// DataCollector returns the database's Data Collector (nil when
// disabled). Callers may resolve additional rings from it.
func (db *DB) DataCollector() *obs.DataCollector { return db.dc }

// SystemTables returns the v_monitor virtual-table registry.
func (db *DB) SystemTables() *systable.Registry { return db.sysTables }

// EmitReconcileAction records one reconciler action into the
// dc_reconcile_actions ring (called by the reconcile package; core
// cannot import it).
func (db *DB) EmitReconcileAction(node, action, detail string, round int64, ok bool, wall time.Duration) {
	okv := int64(0)
	if ok {
		okv = 1
	}
	db.dcReconcileActions.Emit(obs.DCEvent{
		Node: node, A: action, B: detail,
		V1: round, V2: okv, V3: int64(wall),
	})
}

// ReconcileStatus is one reconciler's current state as surfaced through
// v_monitor.reconcile_status. The reconcile package installs a provider
// per reconciler (core cannot import it, so the dependency inverts).
type ReconcileStatus struct {
	Code       string
	Round      int64
	Pending    int64
	QueueDepth int64
	P95        time.Duration
	Reasons    []string
}

// SetReconcileStatusProvider installs (or, with a nil fn, removes) a
// named reconcile-status source for v_monitor.reconcile_status.
func (db *DB) SetReconcileStatusProvider(name string, fn func() ReconcileStatus) {
	db.rsMu.Lock()
	defer db.rsMu.Unlock()
	if db.rsProviders == nil {
		db.rsProviders = map[string]func() ReconcileStatus{}
	}
	if fn == nil {
		delete(db.rsProviders, name)
		return
	}
	db.rsProviders[name] = fn
}

// reconcileStatuses snapshots every registered provider, sorted by name.
func (db *DB) reconcileStatuses() []struct {
	Name   string
	Status ReconcileStatus
} {
	db.rsMu.Lock()
	names := make([]string, 0, len(db.rsProviders))
	fns := make([]func() ReconcileStatus, 0, len(db.rsProviders))
	for n := range db.rsProviders {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, db.rsProviders[n])
	}
	db.rsMu.Unlock()
	out := make([]struct {
		Name   string
		Status ReconcileStatus
	}, len(names))
	for i := range names {
		// Call outside db.rsMu: providers take the reconciler's own lock.
		out[i].Name, out[i].Status = names[i], fns[i]()
	}
	return out
}

// trackSession records a session in the bounded recent-session ring.
func (db *DB) trackSession(s *Session) {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	if len(db.sessLog) < sessionLogSize {
		db.sessLog = append(db.sessLog, s)
		return
	}
	db.sessLog[db.sessNext] = s
	db.sessNext = (db.sessNext + 1) % len(db.sessLog)
}

// recentSessions copies the recent-session ring, oldest first.
func (db *DB) recentSessions() []*Session {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	out := make([]*Session, 0, len(db.sessLog))
	out = append(out, db.sessLog[db.sessNext:]...)
	out = append(out, db.sessLog[:db.sessNext]...)
	return out
}

// installSystemTables registers every v_monitor table. Runs at Create
// after the metrics registry and Data Collector are installed.
func (db *DB) installSystemTables() error {
	reg := systable.NewRegistry()
	db.sysTables = reg
	defs := []*systable.Def{
		systable.MetricsDef(func() obs.Snapshot { return db.reg.Snapshot() }),
		db.queryProfilesDef(),
		db.depotStorageDef(),
		db.depotFetchesDef(),
		db.storageContainersDef(),
		db.shardSubscriptionsDef(),
		db.reconcileStatusDef(),
		db.sessionsDef(),
		db.planCacheDef(),
		db.resultCacheDef(),
		db.admissionQueueDef(),
	}
	for _, d := range defs {
		if err := reg.Register(d); err != nil {
			return err
		}
	}
	if db.dc != nil {
		if err := systable.RegisterDC(reg, db.dc); err != nil {
			return err
		}
	}
	return nil
}

// queryProfilesDef flattens the span trees of recent sessions' last
// profiles and the slow-query log. A monitoring query sees its session's
// previous profile: the in-flight trace is not finished until the query
// ends.
func (db *DB) queryProfilesDef() *systable.Def {
	cols := systable.ProfileSchema()
	return &systable.Def{
		Name:    systable.SchemaName + ".query_profiles",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			b := types.NewBatch(cols, 0)
			for _, s := range db.recentSessions() {
				if p := s.LastProfile(); p != nil {
					systable.ProfileRows(b, fmt.Sprintf("session:%d", s.id), s.queries.Load(), p)
				}
			}
			for i, sq := range db.SlowQueries() {
				systable.ProfileRows(b, "slow", int64(i), sq.Profile)
			}
			return b, nil
		},
	}
}

// depotStorageDef lists every node cache's current contents (§5.2), most
// recently used first per node.
func (db *DB) depotStorageDef() *systable.Def {
	cols := types.Schema{
		{Name: "node", Type: types.Varchar},
		{Name: "path", Type: types.Varchar},
		{Name: "bytes", Type: types.Int64},
		{Name: "pinned", Type: types.Bool},
		{Name: "lru_rank", Type: types.Int64},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".depot_storage",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			b := types.NewBatch(cols, 0)
			for _, n := range db.Nodes() {
				if n.cache == nil {
					continue
				}
				for rank, e := range n.cache.Entries() {
					b.AppendRow(types.Row{
						types.NewString(n.name), types.NewString(e.Path),
						types.NewInt(e.Size), types.NewBool(e.Pinned),
						types.NewInt(int64(rank)),
					})
				}
			}
			return b, nil
		},
	}
}

// depotFetchesDef summarizes each node cache's cumulative traffic:
// hits, misses, coalesced fetches, evictions and occupancy. Per-event
// history lives in v_monitor.dc_depot_fetches.
func (db *DB) depotFetchesDef() *systable.Def {
	cols := types.Schema{
		{Name: "node", Type: types.Varchar},
		{Name: "hits", Type: types.Int64},
		{Name: "misses", Type: types.Int64},
		{Name: "coalesced_fetches", Type: types.Int64},
		{Name: "evictions", Type: types.Int64},
		{Name: "bytes_cached", Type: types.Int64},
		{Name: "files", Type: types.Int64},
		{Name: "capacity_bytes", Type: types.Int64},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".depot_fetches",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			b := types.NewBatch(cols, 0)
			for _, n := range db.Nodes() {
				if n.cache == nil {
					continue
				}
				st := n.cache.Stats()
				b.AppendRow(types.Row{
					types.NewString(n.name),
					types.NewInt(st.Hits), types.NewInt(st.Misses),
					types.NewInt(st.CoalescedFetches), types.NewInt(st.Evictions),
					types.NewInt(st.BytesCached), types.NewInt(int64(st.Files)),
					types.NewInt(n.cache.Capacity()),
				})
			}
			return b, nil
		},
	}
}

// storageContainersDef lists the committed storage containers from a
// current catalog cut.
func (db *DB) storageContainersDef() *systable.Def {
	cols := types.Schema{
		{Name: "oid", Type: types.Int64},
		{Name: "table_name", Type: types.Varchar},
		{Name: "projection", Type: types.Varchar},
		{Name: "shard_index", Type: types.Int64},
		{Name: "row_count", Type: types.Int64},
		{Name: "size_bytes", Type: types.Int64},
		{Name: "partition_key", Type: types.Varchar},
		{Name: "owner_node", Type: types.Varchar},
		{Name: "create_version", Type: types.Int64},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".storage_containers",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			init, err := db.anyUpNode()
			if err != nil {
				return nil, err
			}
			snap := init.catalog.Snapshot()
			tblName := map[catalog.OID]string{}
			projName := map[catalog.OID]string{}
			for _, t := range snap.Tables() {
				tblName[t.OID] = t.Name
				for _, p := range snap.ProjectionsOf(t.OID) {
					projName[p.OID] = p.Name
				}
			}
			var scs []*catalog.StorageContainer
			snap.ForEach(catalog.KindStorageContainer, func(o catalog.Object) bool {
				scs = append(scs, o.(*catalog.StorageContainer))
				return true
			})
			sort.Slice(scs, func(i, j int) bool { return scs[i].OID < scs[j].OID })
			b := types.NewBatch(cols, len(scs))
			for _, sc := range scs {
				b.AppendRow(types.Row{
					types.NewInt(int64(sc.OID)),
					types.NewString(tblName[sc.TableOID]),
					types.NewString(projName[sc.ProjOID]),
					types.NewInt(int64(sc.ShardIndex)),
					types.NewInt(sc.RowCount), types.NewInt(sc.SizeBytes),
					types.NewString(sc.PartitionKey), types.NewString(sc.OwnerNode),
					types.NewInt(int64(sc.CreateVersion)),
				})
			}
			return b, nil
		},
	}
}

// shardSubscriptionsDef lists every shard subscription with its
// lifecycle state (§3.3).
func (db *DB) shardSubscriptionsDef() *systable.Def {
	cols := types.Schema{
		{Name: "node", Type: types.Varchar},
		{Name: "shard_index", Type: types.Int64},
		{Name: "state", Type: types.Varchar},
		{Name: "node_up", Type: types.Bool},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".shard_subscriptions",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			init, err := db.anyUpNode()
			if err != nil {
				return nil, err
			}
			snap := init.catalog.Snapshot()
			up := db.UpNodes()
			var subs []*catalog.Subscription
			snap.ForEach(catalog.KindSubscription, func(o catalog.Object) bool {
				subs = append(subs, o.(*catalog.Subscription))
				return true
			})
			sort.Slice(subs, func(i, j int) bool {
				if subs[i].Node != subs[j].Node {
					return subs[i].Node < subs[j].Node
				}
				return subs[i].ShardIndex < subs[j].ShardIndex
			})
			b := types.NewBatch(cols, len(subs))
			for _, s := range subs {
				b.AppendRow(types.Row{
					types.NewString(s.Node), types.NewInt(int64(s.ShardIndex)),
					types.NewString(s.State.String()), types.NewBool(up[s.Node]),
				})
			}
			return b, nil
		},
	}
}

// reconcileStatusDef surfaces every registered reconciler's last tick.
func (db *DB) reconcileStatusDef() *systable.Def {
	cols := types.Schema{
		{Name: "name", Type: types.Varchar},
		{Name: "code", Type: types.Varchar},
		{Name: "round", Type: types.Int64},
		{Name: "pending", Type: types.Int64},
		{Name: "queue_depth", Type: types.Int64},
		{Name: "p95_ns", Type: types.Int64},
		{Name: "reasons", Type: types.Varchar},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".reconcile_status",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			sts := db.reconcileStatuses()
			b := types.NewBatch(cols, len(sts))
			for _, st := range sts {
				reasons := ""
				for i, r := range st.Status.Reasons {
					if i > 0 {
						reasons += "; "
					}
					reasons += r
				}
				b.AppendRow(types.Row{
					types.NewString(st.Name), types.NewString(st.Status.Code),
					types.NewInt(st.Status.Round), types.NewInt(st.Status.Pending),
					types.NewInt(st.Status.QueueDepth), types.NewInt(int64(st.Status.P95)),
					types.NewString(reasons),
				})
			}
			return b, nil
		},
	}
}

// sessionsDef lists the recent sessions ring.
func (db *DB) sessionsDef() *systable.Def {
	cols := types.Schema{
		{Name: "session_id", Type: types.Int64},
		{Name: "subcluster", Type: types.Varchar},
		{Name: "start", Type: types.Timestamp},
		{Name: "queries", Type: types.Int64},
		{Name: "streaming", Type: types.Bool},
		{Name: "memory_budget", Type: types.Int64},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".sessions",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			sess := db.recentSessions()
			b := types.NewBatch(cols, len(sess))
			for _, s := range sess {
				b.AppendRow(types.Row{
					types.NewInt(s.id), types.NewString(s.Subcluster),
					types.NewTimestamp(s.start.UnixMicro()),
					types.NewInt(s.queries.Load()),
					types.NewBool(!s.MaterializedExec),
					types.NewInt(s.MemoryBudget),
				})
			}
			return b, nil
		},
	}
}

// planCacheDef lists the plan cache contents, most recently used first:
// one row per cached statement with its catalog version, parameter
// count, hit count and replan count.
func (db *DB) planCacheDef() *systable.Def {
	cols := types.Schema{
		{Name: "statement", Type: types.Varchar},
		{Name: "assume_no_seg", Type: types.Bool},
		{Name: "catalog_version", Type: types.Int64},
		{Name: "params", Type: types.Int64},
		{Name: "hits", Type: types.Int64},
		{Name: "replans", Type: types.Int64},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".plan_cache",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			rows := db.planCache.snapshotRows()
			b := types.NewBatch(cols, len(rows))
			for _, r := range rows {
				b.AppendRow(types.Row{
					types.NewString(truncateSQL(r.Statement)),
					types.NewBool(r.NoSeg),
					types.NewInt(int64(r.Version)),
					types.NewInt(int64(r.Params)),
					types.NewInt(r.Hits), types.NewInt(r.Replans),
				})
			}
			return b, nil
		},
	}
}

// resultCacheDef lists the result cache contents, most recently used
// first: one row per cached result set with its size and hit count.
func (db *DB) resultCacheDef() *systable.Def {
	cols := types.Schema{
		{Name: "statement", Type: types.Varchar},
		{Name: "args", Type: types.Varchar},
		{Name: "rows", Type: types.Int64},
		{Name: "bytes", Type: types.Int64},
		{Name: "hits", Type: types.Int64},
		{Name: "deps_hash", Type: types.Int64},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".result_cache",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			rows := db.resultCache.snapshotRows()
			b := types.NewBatch(cols, len(rows))
			for _, r := range rows {
				b.AppendRow(types.Row{
					types.NewString(truncateSQL(r.Statement)),
					types.NewString(truncateSQL(r.Args)),
					types.NewInt(int64(r.Rows)), types.NewInt(r.Bytes),
					types.NewInt(r.Hits), types.NewInt(int64(r.DepsHash)),
				})
			}
			return b, nil
		},
	}
}

// admissionQueueDef surfaces per-subcluster admission state: running and
// queued query counts and the aggregate admitted memory budget.
func (db *DB) admissionQueueDef() *systable.Def {
	cols := types.Schema{
		{Name: "subcluster", Type: types.Varchar},
		{Name: "running", Type: types.Int64},
		{Name: "queued", Type: types.Int64},
		{Name: "mem_bytes", Type: types.Int64},
		{Name: "concurrency_limit", Type: types.Int64},
		{Name: "mem_limit_bytes", Type: types.Int64},
	}
	return &systable.Def{
		Name:    systable.SchemaName + ".admission_queue",
		Columns: cols,
		Fill: func() (*types.Batch, error) {
			rows := db.admission.snapshotRows()
			b := types.NewBatch(cols, len(rows))
			for _, r := range rows {
				b.AppendRow(types.Row{
					types.NewString(r.Subcluster),
					types.NewInt(r.Running), types.NewInt(r.Queued),
					types.NewInt(r.MemBytes),
					types.NewInt(int64(db.cfg.SubclusterConcurrency)),
					types.NewInt(db.cfg.AdmissionMemoryLimit),
				})
			}
			return b, nil
		},
	}
}

// materializeVirtual fills a virtual table on the initiator and applies
// the scan's column projection and pushed-down predicate. Never returns
// nil: an empty cut yields an empty batch over the scan schema.
func (db *DB) materializeVirtual(scan *planner.Scan, rowEngine bool, st *scanTally) (*types.Batch, error) {
	full, err := db.sysTables.Fill(scan.Table.Name)
	if err != nil {
		return nil, err
	}
	sel := &types.Batch{Cols: make([]*types.Vector, len(scan.Cols))}
	for i, c := range scan.Cols {
		idx := scan.Table.Columns.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("core: virtual table %s missing column %q", scan.Table.Name, c)
		}
		sel.Cols[i] = full.Cols[idx]
	}
	if scan.Pred != nil {
		var idx []int
		if rowEngine {
			idx, err = expr.FilterBatch(scan.Pred, sel)
		} else {
			idx, err = expr.FilterVec(scan.Pred, sel, nil, st.vecStats())
		}
		if err != nil {
			return nil, err
		}
		if len(idx) == 0 {
			return types.NewBatch(scan.OutSchema, 0), nil
		}
		sel = sel.Gather(idx)
	}
	return sel, nil
}

// truncateSQL bounds SQL text recorded in Data Collector events.
func truncateSQL(s string) string {
	if len(s) > dcSQLLimit {
		return s[:dcSQLLimit]
	}
	return s
}
