package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, conc := range []int{1, 2, 4, 16} {
		const n = 100
		var mu sync.Mutex
		seen := make(map[int]int)
		err := ForEach(context.Background(), n, conc, func(ctx context.Context, worker, idx int) error {
			mu.Lock()
			seen[idx]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		if len(seen) != n {
			t.Fatalf("conc=%d: covered %d of %d indices", conc, len(seen), n)
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("conc=%d: index %d ran %d times", conc, idx, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 0, 8, func(ctx context.Context, worker, idx int) error {
		called = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called with n=0")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const conc = 3
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), 50, conc, func(ctx context.Context, worker, idx int) error {
		v := cur.Add(1)
		for {
			p := peak.Load()
			if v <= p || peak.CompareAndSwap(p, v) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > conc {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, conc)
	}
}

func TestForEachWorkerIDsWithinPool(t *testing.T) {
	const conc = 4
	var mu sync.Mutex
	workers := map[int]bool{}
	err := ForEach(context.Background(), 64, conc, func(ctx context.Context, worker, idx int) error {
		mu.Lock()
		workers[worker] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := range workers {
		if w < 0 || w >= conc {
			t.Fatalf("worker id %d outside [0,%d)", w, conc)
		}
	}
}

func TestForEachFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 1000, 4, func(ctx context.Context, worker, idx int) error {
		ran.Add(1)
		if idx == 5 {
			return boom
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if r := ran.Load(); r >= 1000 {
		t.Fatalf("error did not stop the pool: %d items ran", r)
	}
}

func TestForEachSerialStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := ForEach(context.Background(), 10, 1, func(ctx context.Context, worker, idx int) error {
		ran++
		if idx == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 4 {
		t.Fatalf("ran %d items after error at index 3", ran)
	}
}

func TestForEachHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 100, 4, func(ctx context.Context, worker, idx int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
