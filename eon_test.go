package eon_test

import (
	"fmt"
	"testing"

	"eon"
)

func newCluster(t *testing.T, mode eon.Mode, n int) *eon.DB {
	t.Helper()
	var specs []eon.NodeSpec
	for i := 1; i <= n; i++ {
		specs = append(specs, eon.NodeSpec{Name: fmt.Sprintf("n%d", i)})
	}
	db, err := eon.Create(eon.Config{Mode: mode, Nodes: specs, ShardCount: n})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := newCluster(t, eon.ModeEon, 3)
	s := db.NewSession()
	for _, q := range []string{
		`CREATE TABLE sales (id INTEGER, region VARCHAR, price FLOAT)`,
		`CREATE PROJECTION sales_p AS SELECT * FROM sales ORDER BY id SEGMENTED BY HASH(id) ALL NODES`,
		`INSERT INTO sales VALUES (1, 'east', 10.5), (2, 'west', 20.0), (3, 'east', 5.25)`,
	} {
		if _, err := s.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	res, err := s.Query(`SELECT region, COUNT(*) AS n, SUM(price) AS total FROM sales GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0].S != "east" || rows[0][1].I != 2 {
		t.Errorf("rows = %v", rows)
	}
	if res.Columns[2] != "total" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestPublicAPILoadRows(t *testing.T) {
	db := newCluster(t, eon.ModeEon, 2)
	if _, err := db.Execute(`CREATE TABLE m (k INTEGER, v FLOAT)`); err != nil {
		t.Fatal(err)
	}
	schema := eon.Schema{{Name: "k", Type: eon.Int64}, {Name: "v", Type: eon.Float64}}
	b := eon.NewBatch(schema, 100)
	for i := 0; i < 100; i++ {
		b.AppendRow(eon.Row{eon.Int(int64(i)), eon.Flt(float64(i) / 2)})
	}
	if err := db.LoadRows("m", b); err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(`SELECT COUNT(*), MIN(v), MAX(v) FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows()[0]
	if r[0].I != 100 || r[1].F != 0 || r[2].F != 49.5 {
		t.Errorf("row = %v", r)
	}
}

func TestPublicAPIClusterLifecycle(t *testing.T) {
	shared := eon.NewMemStore()
	db, err := eon.Create(eon.Config{
		Mode:   eon.ModeEon,
		Nodes:  []eon.NodeSpec{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
		Shared: shared,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE TABLE t (id INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}

	// Kill + recover.
	if err := db.KillNode("n2"); err != nil {
		t.Fatal(err)
	}
	if res, err := db.Execute(`SELECT COUNT(*) FROM t`); err != nil || res.Rows()[0][0].I != 3 {
		t.Fatalf("node-down query: %v %v", res, err)
	}
	if err := db.RecoverNode("n2"); err != nil {
		t.Fatal(err)
	}

	// Elastic growth.
	if err := db.AddNode(eon.NodeSpec{Name: "n4"}); err != nil {
		t.Fatal(err)
	}

	// Tuple mover + metadata sync + GC.
	if _, err := db.RunTupleMover(); err != nil {
		t.Fatal(err)
	}
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunGC(); err != nil {
		t.Fatal(err)
	}

	// Shutdown + revive.
	if err := db.Shutdown(); err != nil {
		t.Fatal(err)
	}
	db2, err := eon.Revive(eon.Config{Shared: shared})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Execute(`SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows()[0][0].I != 3 {
		t.Fatalf("revived query: %v %v", res, err)
	}
}

func TestPublicAPISimulatedStorage(t *testing.T) {
	sim := eon.NewSimStore(eon.NewMemStore(), eon.SimConfig{})
	db, err := eon.Create(eon.Config{
		Mode:   eon.ModeEon,
		Nodes:  []eon.NodeSpec{{Name: "n1"}, {Name: "n2"}},
		Shared: sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE TABLE t (id INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if sim.Stats().Puts == 0 {
		t.Error("loads should reach the simulated store")
	}
}

func TestPublicAPIEnterpriseMode(t *testing.T) {
	db := newCluster(t, eon.ModeEnterprise, 3)
	if _, err := db.Execute(`CREATE TABLE t (id INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	if stats, err := db.RunTupleMover(); err != nil {
		t.Fatal(err, stats)
	}
	res, err := db.Execute(`SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows()[0][0].I != 2 {
		t.Fatalf("enterprise query: %v %v", res, err)
	}
}
