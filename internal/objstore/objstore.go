// Package objstore provides the shared-storage substrate of Eon mode: a
// durable, globally addressable, elastic object store with S3-like
// semantics (paper §5).
//
// The store is deliberately not POSIX: objects are immutable once written
// (no append, no rename), there are no directories, and existence is
// checked with List-by-prefix rather than a HEAD request — exactly the
// constraints §5.3 describes. A simulator wrapper (Sim) layers a latency
// and bandwidth model, throttling, transient-failure injection and
// request-cost accounting over any backend so that benches reproduce the
// relative cost of cached versus non-cached access.
package objstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"eon/internal/resilience"
)

// Errors returned by stores. Transient and throttle errors are retryable;
// callers use IsRetryable or WithRetry.
var (
	ErrNotFound  = errors.New("objstore: object not found")
	ErrExists    = errors.New("objstore: object already exists")
	ErrThrottled = errors.New("objstore: request throttled (slow down)")
	ErrTransient = errors.New("objstore: transient internal error")
)

// Info describes one stored object.
type Info struct {
	Key  string
	Size int64
}

// Store is the object-store API the rest of the system programs against.
// All operations are context-cancelable: "users expect their queries to be
// cancelable, so Vertica cannot hang waiting for S3" (§5.3).
type Store interface {
	// Put writes a new immutable object. Overwriting an existing key
	// fails with ErrExists: the engine never modifies written objects.
	Put(ctx context.Context, key string, data []byte) error
	// Get reads a whole object.
	Get(ctx context.Context, key string) ([]byte, error)
	// GetRange reads length bytes at offset (length < 0 means to EOF).
	GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error)
	// List returns all objects whose key begins with prefix, sorted.
	List(ctx context.Context, prefix string) ([]Info, error)
	// Delete removes an object; deleting a missing key is not an error
	// (S3 semantics).
	Delete(ctx context.Context, key string) error
}

// Mem is an in-memory Store backend. It is safe for concurrent use.
type Mem struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{objects: make(map[string][]byte)}
}

// Put implements Store.
func (m *Mem) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objects[key]; ok {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.objects[key] = cp
	return nil
}

// Get implements Store.
func (m *Mem) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// GetRange implements Store.
func (m *Mem) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if offset < 0 || offset > int64(len(data)) {
		return nil, fmt.Errorf("objstore: range [%d,+%d) out of bounds for %s (size %d)", offset, length, key, len(data))
	}
	end := int64(len(data))
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	cp := make([]byte, end-offset)
	copy(cp, data[offset:end])
	return cp, nil
}

// List implements Store.
func (m *Mem) List(ctx context.Context, prefix string) ([]Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Info
	for k, v := range m.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, Info{Key: k, Size: int64(len(v))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Delete implements Store.
func (m *Mem) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, key)
	return nil
}

// Len returns the number of stored objects.
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// TotalBytes returns the sum of object sizes.
func (m *Mem) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, v := range m.objects {
		n += int64(len(v))
	}
	return n
}

// IsRetryable reports whether the error is a transient condition worth
// retrying (throttle or internal error).
func IsRetryable(err error) bool {
	return errors.Is(err, ErrThrottled) || errors.Is(err, ErrTransient)
}

// retryDelayCap bounds WithRetry's doubling backoff.
const retryDelayCap = 200 * time.Millisecond

// WithRetry runs op with a capped full-jitter exponential-backoff retry
// loop, retrying only retryable errors and respecting context
// cancellation. It is a thin wrapper over resilience.Policy; exhaustion
// returns immediately with no trailing backoff sleep.
func WithRetry(ctx context.Context, attempts int, base time.Duration, op func() error) error {
	p := resilience.Policy{
		MaxAttempts: attempts,
		BaseDelay:   base,
		MaxDelay:    retryDelayCap,
		Retryable:   IsRetryable,
	}
	return p.Do(ctx, nil, func(context.Context) error { return op() })
}

// Exists checks for a key using the List API with the key as prefix. The
// paper notes Vertica avoids HEAD requests to stay on S3's
// read-after-write consistency path (§5.3).
func Exists(ctx context.Context, s Store, key string) (bool, error) {
	infos, err := s.List(ctx, key)
	if err != nil {
		return false, err
	}
	for _, in := range infos {
		if in.Key == key {
			return true, nil
		}
	}
	return false, nil
}
