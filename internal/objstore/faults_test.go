package objstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// The same seed must yield the identical fault schedule; a different
// seed must not.
func TestFaultScheduleDeterminism(t *testing.T) {
	build := func(seed int64) []Verdict {
		f := &FaultSchedule{
			Seed:           seed,
			Windows:        []FaultWindow{{OpRange{0, 1000}, 0.2}},
			PrefixRates:    map[string]float64{"data/": 0.1, "metadata/": 0.05},
			ThrottleBursts: []OpRange{{100, 120}},
			LatencySpikes:  []LatencySpike{{OpRange{200, 300}, time.Millisecond}},
		}
		var out []Verdict
		for op := int64(0); op < 1000; op++ {
			out = append(out, f.Eval(op, fmt.Sprintf("data/file-%d", op%17)))
			out = append(out, f.Eval(op, fmt.Sprintf("metadata/n%d/txn", op%3)))
		}
		return out
	}
	a, b := build(42), build(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs under same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := build(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds yielded identical schedules")
	}
}

func TestFaultScheduleWindowsAndBursts(t *testing.T) {
	f := &FaultSchedule{
		Seed:           1,
		Windows:        []FaultWindow{{OpRange{10, 20}, 1.0}},
		ThrottleBursts: []OpRange{{30, 35}},
		LatencySpikes:  []LatencySpike{{OpRange{40, 41}, 5 * time.Millisecond}},
	}
	if v := f.Eval(5, "k"); v.Fail || v.Throttle || v.ExtraLatency != 0 {
		t.Errorf("outside all windows: %+v", v)
	}
	if v := f.Eval(15, "k"); !v.Fail {
		t.Error("rate-1.0 window must fail")
	}
	if v := f.Eval(32, "k"); !v.Throttle {
		t.Error("burst must throttle")
	}
	if v := f.Eval(40, "k"); v.ExtraLatency != 5*time.Millisecond {
		t.Errorf("spike latency = %v", v.ExtraLatency)
	}
}

func TestFaultSchedulePrefixRates(t *testing.T) {
	f := &FaultSchedule{Seed: 7, PrefixRates: map[string]float64{"data/": 1.0}}
	if v := f.Eval(0, "data/x"); !v.Fail {
		t.Error("matching prefix at rate 1.0 must fail")
	}
	if v := f.Eval(0, "metadata/x"); v.Fail {
		t.Error("non-matching prefix must not fail")
	}
}

func TestSimAppliesFaultSchedule(t *testing.T) {
	ctx := context.Background()
	s := NewSim(NewMem(), SimConfig{Faults: &FaultSchedule{
		Seed:           3,
		ThrottleBursts: []OpRange{{1, 2}}, // the second request only
	}})
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("op 0 should pass: %v", err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrThrottled) {
		t.Fatalf("op 1 should be throttled, got %v", err)
	}
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatalf("op 2 should pass: %v", err)
	}
	st := s.Stats()
	if st.Throttled != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// Counter semantics match S3 billing: requests and bytes are counted
// even when the request is canceled during its service time.
func TestSimCountsCanceledRequests(t *testing.T) {
	s := NewSim(NewMem(), SimConfig{GetLatency: 50 * time.Millisecond})
	if err := s.Put(context.Background(), "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := s.Get(ctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	st := s.Stats()
	if st.Gets != 1 || st.BytesRead != 5 {
		t.Errorf("canceled get must still be billed: %+v", st)
	}
}

// A Get for a missing key is still a billed request (S3 bills 404s).
func TestSimCountsFailedRequests(t *testing.T) {
	s := NewSim(NewMem(), SimConfig{})
	if _, err := s.Get(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if st := s.Stats(); st.Gets != 1 {
		t.Errorf("stats = %+v", st)
	}
}
