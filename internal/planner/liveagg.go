package planner

import (
	"fmt"
	"strings"

	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/expr"
	"eon/internal/sql"
	"eon/internal/types"
)

// tryLiveAggregate rewrites a matching aggregate query to read a live
// aggregate projection (paper §2.1: live aggregates "dramatically speed
// up query performance for a variety of aggregation ... operations").
// The query matches when it is a single-table GROUP BY whose keys equal
// the projection's group columns, every aggregate maps to a maintained
// aggregate, and any predicate touches only group columns. ok=false
// falls back to normal planning.
func (p *sessionPlanner) tryLiveAggregate(stmt *sql.Select, items []sql.SelectItem) (*Plan, bool, error) {
	if len(stmt.Joins) > 0 || stmt.Distinct {
		return nil, false, nil
	}
	hasAgg := false
	for _, it := range items {
		if it.Star {
			return nil, false, nil
		}
		if it.Agg != nil {
			hasAgg = true
		}
	}
	if !hasAgg {
		return nil, false, nil
	}
	snap := p.opts.Snapshot
	tbl, ok := snap.TableByName(stmt.From.Table)
	if !ok {
		return nil, false, nil // normal planning reports the error
	}

	for _, lap := range snap.ProjectionsOf(tbl.OID) {
		if !lap.IsLiveAggregate() || lap.BuddyOffset > 0 {
			continue
		}
		plan, ok, err := p.planWithLiveAgg(stmt, items, tbl, lap)
		if err != nil || ok {
			return plan, ok, err
		}
	}
	return nil, false, nil
}

// lapMatches maps a query aggregate to the projection column holding it.
func lapAggColumn(lap *catalog.Projection, agg *sql.AggSpec) (string, bool) {
	var wantOp, wantCol string
	switch agg.Op {
	case sql.AggCountStar:
		wantOp = "countstar"
	case sql.AggCount:
		wantOp = "count"
	case sql.AggSum:
		wantOp = "sum"
	case sql.AggMin:
		wantOp = "min"
	case sql.AggMax:
		wantOp = "max"
	default:
		return "", false
	}
	if wantOp != "countstar" {
		ref, ok := agg.Arg.(*expr.ColumnRef)
		if !ok {
			return "", false
		}
		wantCol = strings.ToLower(baseColumn(ref.Name))
	}
	for _, la := range lap.LiveAggs {
		if la.Op == wantOp && strings.ToLower(la.Col) == wantCol {
			return la.Name, true
		}
	}
	return "", false
}

func (p *sessionPlanner) planWithLiveAgg(stmt *sql.Select, items []sql.SelectItem, tbl *catalog.Table, lap *catalog.Projection) (*Plan, bool, error) {
	groupSet := map[string]bool{}
	for _, c := range lap.Columns {
		groupSet[strings.ToLower(c)] = true
	}

	// GROUP BY keys must be bare columns equal (as a set) to the
	// projection's group columns.
	if len(stmt.GroupBy) != len(lap.Columns) {
		return nil, false, nil
	}
	seen := map[string]bool{}
	var keyCols []string
	for _, g := range stmt.GroupBy {
		ref, ok := g.(*expr.ColumnRef)
		if !ok {
			return nil, false, nil
		}
		name := strings.ToLower(baseColumn(ref.Name))
		if !groupSet[name] || seen[name] {
			return nil, false, nil
		}
		seen[name] = true
		keyCols = append(keyCols, name)
	}

	// WHERE may reference only group columns.
	if stmt.Where != nil {
		for _, n := range expr.ColumnNames(stmt.Where) {
			if !groupSet[strings.ToLower(baseColumn(n))] {
				return nil, false, nil
			}
		}
	}

	// Map select items: plain items to group keys, aggregates to
	// maintained columns.
	type itemTarget struct {
		isKey  bool
		keyPos int
		aggCol string
	}
	var targets []itemTarget
	usedAggCols := map[string]bool{}
	for _, it := range items {
		if it.Agg == nil {
			ref, ok := it.Expr.(*expr.ColumnRef)
			if !ok {
				return nil, false, nil
			}
			name := strings.ToLower(baseColumn(ref.Name))
			pos := -1
			for i, k := range keyCols {
				if k == name {
					pos = i
				}
			}
			if pos < 0 {
				return nil, false, nil
			}
			targets = append(targets, itemTarget{isKey: true, keyPos: pos})
			continue
		}
		col, ok := lapAggColumn(lap, it.Agg)
		if !ok {
			return nil, false, nil
		}
		targets = append(targets, itemTarget{aggCol: col})
		usedAggCols[col] = true
	}

	// --- The query matches; build the plan over the projection. ---
	alias := stmt.From.Name()

	// Scan columns: group columns plus the referenced aggregate columns,
	// in LiveSchema order.
	var cols []string
	var outSchema types.Schema
	for _, c := range lap.LiveSchema {
		low := strings.ToLower(c.Name)
		if groupSet[low] || usedAggCols[c.Name] {
			cols = append(cols, c.Name)
			outSchema = append(outSchema, types.Column{Name: qualify(alias, c.Name), Type: c.Type})
		}
	}
	scan := &Scan{
		Table: tbl, Proj: lap, Alias: alias,
		Cols: cols, OutSchema: outSchema,
		Replicated: lap.Replicated(),
	}
	if !lap.Replicated() {
		for _, s := range lap.SegmentCols {
			pos := outSchema.ColumnIndex(qualify(alias, s))
			if pos < 0 {
				scan.SegmentCols = nil
				break
			}
			scan.SegmentCols = append(scan.SegmentCols, pos)
		}
	}
	if stmt.Where != nil {
		pred := cloneExpr(stmt.Where)
		if err := resolveAndBind(pred, outSchema); err != nil {
			return nil, false, err
		}
		scan.Pred = pred
	}

	// Merge aggregation over the partial groups: counts sum, sums sum,
	// min/min, max/max.
	var keys []expr.Expr
	var keyNames []string
	for i, k := range keyCols {
		ref := expr.Col(qualify(alias, k))
		if err := resolveAndBind(ref, outSchema); err != nil {
			return nil, false, err
		}
		keys = append(keys, ref)
		keyNames = append(keyNames, fmt.Sprintf("_k%d", i))
	}
	var defs []exec.AggDef
	aggPos := map[string]int{}
	for _, la := range lap.LiveAggs {
		if !usedAggCols[la.Name] {
			continue
		}
		ref := expr.Col(qualify(alias, la.Name))
		if err := resolveAndBind(ref, outSchema); err != nil {
			return nil, false, err
		}
		def := exec.AggDef{Name: fmt.Sprintf("_a%d", len(defs)), Arg: ref}
		switch la.Op {
		case "countstar", "count":
			def.Kind = exec.AggCountMerge
		case "sum":
			def.Kind = exec.AggSum
		case "min":
			def.Kind = exec.AggMin
		case "max":
			def.Kind = exec.AggMax
		}
		aggPos[la.Name] = len(defs)
		defs = append(defs, def)
	}
	mode := AggTwoPhase
	if len(scan.SegmentCols) > 0 && segColsCovered(scan.SegmentCols, keys, outSchema) {
		mode = AggLocalFinal
	}
	agg := &Aggregate{Input: scan, Keys: keys, KeyNames: keyNames, Aggs: defs, Mode: mode}
	agg.out = aggOutputSchema(agg)

	// Final projection in select-item order.
	var outs []outMap
	var exprs []expr.Expr
	var names []string
	for i, it := range items {
		var ref *expr.ColumnRef
		if targets[i].isKey {
			ref = expr.Col(keyNames[targets[i].keyPos])
			outs = append(outs, outMap{isKey: true, pos: targets[i].keyPos})
		} else {
			pos := aggPos[targets[i].aggCol]
			ref = expr.Col(fmt.Sprintf("_a%d", pos))
			outs = append(outs, outMap{pos: pos})
		}
		if err := expr.Bind(ref, agg.out); err != nil {
			return nil, false, err
		}
		exprs = append(exprs, ref)
		names = append(names, outputName(it))
	}

	var root Node = agg
	if stmt.Having != nil {
		having := cloneExpr(stmt.Having)
		if err := p.bindHaving(having, items, outs, keyNames, agg.out); err != nil {
			return nil, false, err
		}
		root = &Filter{Input: root, Pred: having}
	}
	proj := &Project{Input: root, Exprs: exprs, Names: names}
	proj.out = make(types.Schema, len(exprs))
	for i, e := range exprs {
		proj.out[i] = types.Column{Name: names[i], Type: e.Type()}
	}
	root = proj

	if len(stmt.OrderBy) > 0 {
		sortKeys, err := p.orderKeys(stmt.OrderBy, root.Schema(), names)
		if err != nil {
			return nil, false, err
		}
		root = &Sort{Input: root, Keys: sortKeys}
	}
	if stmt.Limit >= 0 {
		root = &Limit{Input: root, N: stmt.Limit}
	}
	return &Plan{Root: root, OutputNames: names}, true, nil
}
