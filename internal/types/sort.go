package types

import "sort"

// SortPerm returns the permutation of row indexes that orders the batch
// by the given key columns ascending (NULLs first, matching Datum.Compare).
// The sort is stable so equal keys preserve input order.
func SortPerm(b *Batch, keys []int) []int {
	n := b.NumRows()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		i, j := perm[x], perm[y]
		for _, k := range keys {
			c := b.Cols[k].Datum(i).Compare(b.Cols[k].Datum(j))
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return perm
}

// SortBatch returns a new batch with rows ordered by the key columns.
// A batch already in order is returned as-is (no copy).
func SortBatch(b *Batch, keys []int) *Batch {
	perm := SortPerm(b, keys)
	inOrder := true
	for i, p := range perm {
		if p != i {
			inOrder = false
			break
		}
	}
	if inOrder {
		return b
	}
	return b.Gather(perm)
}

// IsSorted reports whether the batch is ordered by the key columns.
func IsSorted(b *Batch, keys []int) bool {
	n := b.NumRows()
	for i := 1; i < n; i++ {
		for _, k := range keys {
			c := b.Cols[k].Datum(i - 1).Compare(b.Cols[k].Datum(i))
			if c < 0 {
				break
			}
			if c > 0 {
				return false
			}
		}
	}
	return true
}
