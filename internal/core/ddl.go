package core

import (
	"context"
	"fmt"
	"strings"

	"eon/internal/catalog"
	"eon/internal/expr"
	"eon/internal/rosfile"
	"eon/internal/sql"
	"eon/internal/storage"
	"eon/internal/types"
)

// CreateTable registers a new table.
func (db *DB) CreateTable(stmt *sql.CreateTable) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	txn := init.catalog.Begin()
	if _, exists := txn.Base().TableByName(stmt.Name); exists {
		return fmt.Errorf("core: table %q already exists", stmt.Name)
	}
	schema := make(types.Schema, len(stmt.Cols))
	seen := map[string]bool{}
	for i, c := range stmt.Cols {
		low := strings.ToLower(c.Name)
		if seen[low] {
			return fmt.Errorf("core: duplicate column %q", c.Name)
		}
		seen[low] = true
		schema[i] = types.Column{Name: c.Name, Type: c.Type}
	}
	tbl := &catalog.Table{OID: init.catalog.NewOID(), Name: stmt.Name, Columns: schema}
	// Flattened columns (§2.1): denormalized from dimension tables at
	// load time.
	for _, c := range stmt.Cols {
		if c.SetUsing == nil {
			continue
		}
		tbl.Flattened = append(tbl.Flattened, catalog.FlattenedCol{
			Column:   c.Name,
			DimTable: c.SetUsing.DimTable,
			DimValue: c.SetUsing.DimValue,
			FactKey:  c.SetUsing.FactKey,
			DimKey:   c.SetUsing.DimKey,
		})
	}
	if len(tbl.Flattened) > 0 {
		if err := db.validateFlattened(txn.Base(), schema, tbl.Flattened); err != nil {
			return err
		}
	}
	if stmt.PartitionBy != nil {
		// Validate the partition expression binds against the table.
		probe := stmt.PartitionBy
		if err := expr.Bind(probe, schema); err != nil {
			return fmt.Errorf("core: partition expression: %w", err)
		}
		tbl.PartitionExpr = stmt.PartitionBy.String()
	}
	txn.Put(tbl)
	_, err = db.commit(init, txn, nil)
	return err
}

// CreateProjection registers a projection of a table. In Enterprise mode
// a segmented projection automatically gets a buddy projection (rotated
// ring placement, §2.2) unless KSAFE 0 is specified. The table must be
// empty: this engine does not implement projection refresh.
func (db *DB) CreateProjection(stmt *sql.CreateProjection) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	txn := init.catalog.Begin()
	snap := txn.Base()
	tbl, ok := snap.TableByName(stmt.Table)
	if !ok {
		return fmt.Errorf("core: unknown table %q", stmt.Table)
	}
	if _, exists := snap.ProjectionByName(stmt.Name); exists {
		return fmt.Errorf("core: projection %q already exists", stmt.Name)
	}
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		if len(snap.ContainersOf(p.OID, catalog.GlobalShard)) > 0 {
			return fmt.Errorf("core: table %q already has data; create projections before loading", tbl.Name)
		}
	}
	if len(stmt.Aggs) > 0 {
		return db.createLiveAggProjection(init, txn, tbl, stmt)
	}
	cols := stmt.Cols
	if len(cols) == 0 {
		cols = tbl.Columns.Names()
	}
	for _, c := range cols {
		if tbl.Columns.ColumnIndex(c) < 0 {
			return fmt.Errorf("core: table %q has no column %q", tbl.Name, c)
		}
	}
	sortKey := stmt.OrderBy
	if len(sortKey) == 0 {
		sortKey = []string{cols[0]}
	}
	colSet := map[string]bool{}
	for _, c := range cols {
		colSet[strings.ToLower(c)] = true
	}
	for _, s := range sortKey {
		if !colSet[strings.ToLower(s)] {
			return fmt.Errorf("core: sort column %q not in projection", s)
		}
	}
	var segCols []string
	if !stmt.Replicated {
		segCols = stmt.SegmentBy
		if len(segCols) == 0 {
			segCols = []string{cols[0]}
		}
		for _, s := range segCols {
			if !colSet[strings.ToLower(s)] {
				return fmt.Errorf("core: segmentation column %q not in projection", s)
			}
		}
	}
	proj := &catalog.Projection{
		OID:      init.catalog.NewOID(),
		TableOID: tbl.OID,
		Name:     stmt.Name,
		Columns:  cols, SortKey: sortKey, SegmentCols: segCols,
	}
	txn.Put(proj)
	// Enterprise buddy projection for fault tolerance.
	ksafe := stmt.KSafe
	if ksafe < 0 {
		ksafe = 1
	}
	if db.mode == ModeEnterprise && len(segCols) > 0 && ksafe >= 1 && len(db.order) > 1 {
		buddy := proj.Clone().(*catalog.Projection)
		buddy.OID = init.catalog.NewOID()
		buddy.Name = stmt.Name + "_b1"
		buddy.BuddyOffset = 1
		buddy.BaseOID = proj.OID
		txn.Put(buddy)
	}
	_, err = db.commit(init, txn, nil)
	return err
}

// EnsureDefaultProjection creates a superprojection for a table that has
// none (all columns, sorted and segmented by the first column) — the
// behaviour of loading into a freshly created table.
func (db *DB) EnsureDefaultProjection(tableName string) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	snap := init.catalog.Snapshot()
	tbl, ok := snap.TableByName(tableName)
	if !ok {
		return fmt.Errorf("core: unknown table %q", tableName)
	}
	if len(snap.ProjectionsOf(tbl.OID)) > 0 {
		return nil
	}
	return db.CreateProjection(&sql.CreateProjection{
		Name:  tbl.Name + "_super",
		Table: tbl.Name,
		KSafe: -1,
	})
}

// DropTable removes a table, its projections, storage and files.
func (db *DB) DropTable(name string) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	txn := init.catalog.Begin()
	snap := txn.Base()
	tbl, ok := snap.TableByName(name)
	if !ok {
		return fmt.Errorf("core: unknown table %q", name)
	}
	type droppedC struct {
		sc  *catalog.StorageContainer
		dvs []*catalog.DeleteVector
	}
	var dropped []droppedC
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		for _, sc := range snap.ContainersOf(p.OID, catalog.GlobalShard) {
			d := droppedC{sc: sc, dvs: snap.DeleteVectorsOf(sc.OID)}
			for _, dv := range d.dvs {
				txn.Delete(dv.OID)
			}
			txn.Delete(sc.OID)
			dropped = append(dropped, d)
		}
		txn.Delete(p.OID)
	}
	txn.Delete(tbl.OID)
	rec, err := db.commit(init, txn, nil)
	if err != nil {
		return err
	}
	// Files free only when no surviving container references them — a
	// copied table may share them (§5.1, §6.5).
	after := init.catalog.Snapshot()
	for _, d := range dropped {
		db.queueContainerFilesIfUnreferenced(after, d.sc, d.dvs, rec.Version)
	}
	return nil
}

// AlterAddColumn adds a column to a table using optimistic concurrency
// control (§6.3): ROS containers for the new column are generated and
// published up front without holding the global catalog lock; the write
// set is validated at commit and the transaction rolls back on conflict.
func (db *DB) AlterAddColumn(stmt *sql.AlterAddColumn) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	ctx := db.Context()
	txn := init.catalog.Begin()
	snap := txn.Base()
	tblObj, ok := snap.TableByName(stmt.Table)
	if !ok {
		return fmt.Errorf("core: unknown table %q", stmt.Table)
	}
	// Track the read so concurrent schema changes conflict.
	got, _ := txn.Get(tblObj.OID)
	tbl := got.(*catalog.Table).Clone().(*catalog.Table)
	if tbl.Columns.ColumnIndex(stmt.Col.Name) >= 0 {
		return fmt.Errorf("core: column %q already exists", stmt.Col.Name)
	}
	def := stmt.Default
	if def == nil {
		def = expr.Lit(types.NullDatum(stmt.Col.Type))
	}
	if err := expr.Bind(def, tbl.Columns); err != nil {
		return fmt.Errorf("core: default expression: %w", err)
	}

	tbl.Columns = append(tbl.Columns, types.Column{Name: stmt.Col.Name, Type: stmt.Col.Type})
	txn.Put(tbl)

	// Generate the new column's data for every projection and container
	// — offline, before taking the commit lock.
	var newFiles map[string][]byte
	newFiles = map[string][]byte{}
	for _, p := range snap.ProjectionsOf(tblObj.OID) {
		if p.IsLiveAggregate() {
			continue // live aggregates track only their group/agg columns
		}
		pc := p.Clone().(*catalog.Projection)
		pc.Columns = append(pc.Columns, stmt.Col.Name)
		txn.Put(pc)
		projSchema := projectionSchema(tbl, p.Columns)
		for _, sc := range snap.ContainersOf(p.OID, catalog.GlobalShard) {
			var colVec *types.Vector
			if len(expr.Columns(def)) == 0 {
				// Constant default: evaluate once.
				v, err := expr.EvalRow(def, nil)
				if err != nil {
					return err
				}
				v.K = stmt.Col.Type
				colVec = types.NewVector(stmt.Col.Type, int(sc.RowCount))
				for i := int64(0); i < sc.RowCount; i++ {
					colVec.Append(v)
				}
			} else {
				// Derived default: evaluate against the container rows.
				node := db.nodeForStorage(sc)
				if node == nil {
					return fmt.Errorf("core: no node can read container %d", sc.OID)
				}
				rows, err := storage.ReadColumns(ctx, sc, projSchema, db.fetchFunc(node, false), db.scanConc())
				if err != nil {
					return err
				}
				// Default binds to table schema order; build rows.
				colVec = types.NewVector(stmt.Col.Type, rows.NumRows())
				for i := 0; i < rows.NumRows(); i++ {
					full := make(types.Row, len(tbl.Columns))
					for j := range full {
						full[j] = types.NullDatum(tbl.Columns[j].Type)
					}
					for pj, cname := range p.Columns {
						ti := tbl.Columns.ColumnIndex(cname)
						if ti >= 0 {
							full[ti] = rows.Cols[pj].Datum(i)
						}
					}
					v, err := expr.EvalRow(def, full)
					if err != nil {
						return err
					}
					v.K = stmt.Col.Type
					colVec.Append(v)
				}
			}
			img := rosfile.WriteColumn(colVec, rosfile.WriteOptions{})
			sid := storage.SID(init.inst, sc.OID) // reuse container SID namespace
			path := storage.DataPath(sid, stmt.Col.Name)
			newFiles[path] = img

			updated := sc.Clone().(*catalog.StorageContainer)
			if updated.Bundle.Path != "" {
				// Bundled containers gain a side file for the new column.
				if updated.Files == nil {
					updated.Files = map[string]catalog.FileRef{}
				}
			}
			updated.Files[stmt.Col.Name] = catalog.FileRef{Path: path, Size: int64(len(img))}
			updated.SizeBytes += int64(len(img))
			updated.ColStats[stmt.Col.Name] = types.StatsOf(colVec)
			txn.Put(updated)
			// Persist the new column file before commit.
			writer := db.nodeForStorage(sc)
			if writer == nil {
				writer = init
			}
			if err := db.persistFiles(ctx, writer, map[string][]byte{path: img}, sc.ShardIndex, db.neverCacheTable(tbl.Name)); err != nil {
				return err
			}
		}
	}
	_ = newFiles
	_, err = db.commit(init, txn, nil)
	return err
}

// physicalSchema returns the column schema a projection's containers
// store: the resolved table columns, or the live aggregate schema.
func physicalSchema(tbl *catalog.Table, p *catalog.Projection) types.Schema {
	if p.IsLiveAggregate() {
		return p.LiveSchema
	}
	return projectionSchema(tbl, p.Columns)
}

// projectionSchema resolves a projection's column list against its table.
func projectionSchema(tbl *catalog.Table, cols []string) types.Schema {
	out := make(types.Schema, 0, len(cols))
	for _, c := range cols {
		idx := tbl.Columns.ColumnIndex(c)
		if idx >= 0 {
			out = append(out, tbl.Columns[idx])
		}
	}
	return out
}

// nodeForStorage picks an up node able to read a container: any shard
// subscriber in Eon, the owner in Enterprise.
func (db *DB) nodeForStorage(sc *catalog.StorageContainer) *Node {
	if db.mode == ModeEnterprise {
		if n, ok := db.Node(sc.OwnerNode); ok && n.Up() {
			return n
		}
		return nil
	}
	for _, n := range db.subscriberNodes(sc.ShardIndex) {
		if n.Up() {
			return n
		}
	}
	return nil
}

// openContainerColumns opens the requested columns of a container
// (storage handles per-column files, bundles and mixes of both),
// fetching at most concurrency files at once.
func openContainerColumns(ctx context.Context, sc *catalog.StorageContainer, cols []string, fetch storage.FetchFunc, concurrency int) (map[string]*rosfile.Reader, error) {
	return storage.OpenColumns(ctx, sc, cols, fetch, concurrency)
}
