package core

import (
	"context"
	"fmt"

	"eon/internal/catalog"
	"eon/internal/cluster"
	"eon/internal/shard"
	"eon/internal/wos"
)

func newInstanceID() cluster.InstanceID { return cluster.NewInstanceID() }

func freshWOS() *wos.Store { return wos.New() }

// executeRebalanceActions runs planned subscription changes through the
// §3.3 process: PENDING (create) → metadata transfer → PASSIVE → cache
// warm → ACTIVE for subscriptions; REMOVING → (fault-tolerance check) →
// drop metadata and cache for unsubscriptions.
func (db *DB) executeRebalanceActions(actions []shard.Action) error {
	var subs, unsubs []shard.Action
	for _, a := range actions {
		if a.Unsubscribe {
			unsubs = append(unsubs, a)
		} else {
			subs = append(subs, a)
		}
	}
	for _, a := range subs {
		if err := db.subscribe(a.Node, a.ShardIndex, true); err != nil {
			return err
		}
	}
	for _, a := range unsubs {
		if err := db.unsubscribe(a.Node, a.ShardIndex); err != nil {
			return err
		}
	}
	return nil
}

// subscribe runs the full subscription process for one (node, shard)
// pair (§3.3, Figure 4).
func (db *DB) subscribe(nodeName string, shardIdx int, warmCache bool) error {
	return db.subscribeTo(nodeName, shardIdx, warmCache, catalog.SubActive)
}

// subscribeTo runs the subscription process up to the target state:
// ACTIVE for serving subscribers, PASSIVE for warm spares that pre-stage
// a shard without serving it. The process resumes idempotently from
// whatever state an earlier, possibly interrupted, attempt left behind —
// a PENDING subscription redoes the metadata transfer, a PASSIVE one
// skips straight to warming/activation — so a crashed reconcile step can
// simply be re-run.
func (db *DB) subscribeTo(nodeName string, shardIdx int, warmCache bool, target catalog.SubState) error {
	if target != catalog.SubActive && target != catalog.SubPassive {
		return fmt.Errorf("core: invalid subscription target %v", target)
	}
	n, ok := db.Node(nodeName)
	if !ok || !n.Up() {
		return fmt.Errorf("core: cannot subscribe down node %q", nodeName)
	}
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}

	// Find what an earlier attempt may have left behind.
	var cur *catalog.Subscription
	for _, s := range init.catalog.Snapshot().Subscriptions(nodeName) {
		if s.ShardIndex == shardIdx {
			cur = s
			break
		}
	}
	var oid catalog.OID
	needTransfer := true
	switch {
	case cur == nil:
		// 1. Create the subscription in PENDING.
		txn := init.catalog.Begin()
		sub := &catalog.Subscription{
			OID: init.catalog.NewOID(), Node: nodeName,
			ShardIndex: shardIdx, State: catalog.SubPending,
		}
		txn.Put(sub)
		if _, err := db.commit(init, txn, nil); err != nil {
			return err
		}
		oid = sub.OID
	case cur.State == catalog.SubActive || cur.State == catalog.SubRemoving:
		return nil // already serving
	case cur.State == catalog.SubPassive:
		if target == catalog.SubPassive {
			return nil
		}
		oid = cur.OID
		needTransfer = false // metadata landed before the PASSIVE commit
	default: // PENDING: resume from the metadata transfer
		oid = cur.OID
	}

	// 2. Metadata transfer from an existing subscriber: rounds of
	// checkpoint/log transfer; here the source's current shard objects
	// are installed directly (the node's catalog version already tracks
	// the cluster via the commit fan-out).
	source := db.pickPeer(shardIdx, nodeName)
	if source != nil && needTransfer {
		var objs []catalog.Object
		snap := source.catalog.Snapshot()
		snap.ForEach(0, func(o catalog.Object) bool {
			if o.Shard() == shardIdx {
				objs = append(objs, o)
			}
			return true
		})
		var bytes int64
		for range objs {
			bytes += 256 // metadata objects are small
		}
		if err := db.net.Transfer(db.Context(), source.name, nodeName, bytes); err != nil {
			return fmt.Errorf("core: metadata transfer: %w", err)
		}
		n.catalog.InstallObjects(objs)
	}

	// 3. PENDING -> PASSIVE (the node can now participate in commits).
	if needTransfer {
		if err := db.transitionSubscription(oid, catalog.SubPassive); err != nil {
			return err
		}
	}

	// 4. Cache warming from a peer's MRU list (§5.2), preferring a peer
	// in the same subcluster. Optional: "not all new subscribers will
	// care about cache warming". Spares warm here too, so promotion
	// later finds the depot hot.
	if warmCache && db.mode == ModeEon && source != nil && source.cache != nil {
		list := source.cache.MostRecentlyUsed(n.cache.Capacity())
		warmFromPeer(db, n, source, list)
	}

	if target == catalog.SubPassive {
		return nil
	}

	// 5. PASSIVE -> ACTIVE.
	return db.transitionSubscription(oid, catalog.SubActive)
}

// pickPeer chooses an up ACTIVE subscriber of a shard other than self,
// preferring the same subcluster.
func (db *DB) pickPeer(shardIdx int, self string) *Node {
	init, err := db.anyUpNode()
	if err != nil {
		return nil
	}
	snap := init.catalog.Snapshot()
	selfNode, _ := db.Node(self)
	var fallback *Node
	for _, s := range snap.SubscribersOf(shardIdx, catalog.SubActive, catalog.SubRemoving) {
		if s.Node == self {
			continue
		}
		n, ok := db.Node(s.Node)
		if !ok || !n.Up() {
			continue
		}
		if selfNode != nil && selfNode.Subcluster() != "" && n.Subcluster() == selfNode.Subcluster() {
			return n
		}
		if fallback == nil {
			fallback = n
		}
	}
	return fallback
}

// transitionSubscription commits a legal state change (Figure 4).
func (db *DB) transitionSubscription(oid catalog.OID, to catalog.SubState) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	txn := init.catalog.Begin()
	o, ok := txn.Get(oid)
	if !ok {
		return fmt.Errorf("core: subscription %d vanished", oid)
	}
	sub := o.(*catalog.Subscription)
	if !shard.CanTransition(sub.State, to) {
		return fmt.Errorf("core: illegal subscription transition %v -> %v", sub.State, to)
	}
	c := sub.Clone().(*catalog.Subscription)
	c.State = to
	txn.Put(c)
	_, err = db.commit(init, txn, nil)
	return err
}

// unsubscribe runs the removal process: REMOVING → wait for fault
// tolerance → drop metadata, purge cache, drop subscription (§3.3).
func (db *DB) unsubscribe(nodeName string, shardIdx int) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	snap := init.catalog.Snapshot()
	var sub *catalog.Subscription
	for _, s := range snap.Subscriptions(nodeName) {
		if s.ShardIndex == shardIdx {
			sub = s
			break
		}
	}
	if sub == nil {
		return nil
	}
	if sub.State == catalog.SubActive {
		if err := db.transitionSubscription(sub.OID, catalog.SubRemoving); err != nil {
			return err
		}
	}
	// The subscription drops only when enough other ACTIVE subscribers
	// exist (replica shard requires one; segment shards the replication
	// factor minus one — at least one).
	min := 1
	if shardIdx != catalog.ReplicaShard && db.cfg.ReplicationFactor > 1 {
		min = db.cfg.ReplicationFactor - 1
		if min < 1 {
			min = 1
		}
	}
	snap = init.catalog.Snapshot()
	for _, s := range snap.Subscriptions(nodeName) {
		if s.ShardIndex == shardIdx {
			sub = s
		}
	}
	if !shard.CanDrop(snap, sub, min) {
		// Leave it REMOVING; it continues serving queries until a later
		// rebalance provides enough subscribers.
		return nil
	}
	// Drop metadata and purge cached files for the shard.
	txn := init.catalog.Begin()
	txn.Delete(sub.OID)
	if _, err := db.commit(init, txn, nil); err != nil {
		return err
	}
	if n, ok := db.Node(nodeName); ok {
		dropped := n.catalog.DropShardObjects(shardIdx)
		if n.cache != nil {
			for _, o := range dropped {
				if sc, ok := o.(*catalog.StorageContainer); ok {
					for _, f := range sc.AllFiles() {
						n.cache.Drop(db.Context(), f.Path)
					}
				}
				if dv, ok := o.(*catalog.DeleteVector); ok {
					n.cache.Drop(db.Context(), dv.File.Path)
				}
			}
		}
	}
	return nil
}

// completeSubscriptions finishes the re-subscription of a recovered
// node: every PENDING subscription transfers incremental metadata, warms
// the cache from a peer, and returns to ACTIVE (§3.3, §6.1).
func (db *DB) completeSubscriptions(n *Node, warmCache bool) error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	snap := init.catalog.Snapshot()
	for _, s := range snap.Subscriptions(n.name) {
		if s.State != catalog.SubPending {
			continue
		}
		// Incremental metadata: the catch-up already applied missed
		// records; install any shard objects the filter skipped while
		// unsubscribed.
		if peer := db.pickPeer(s.ShardIndex, n.name); peer != nil {
			var objs []catalog.Object
			peer.catalog.Snapshot().ForEach(0, func(o catalog.Object) bool {
				if o.Shard() == s.ShardIndex {
					objs = append(objs, o)
				}
				return true
			})
			n.catalog.InstallObjects(objs)
			if warmCache && db.mode == ModeEon && peer.cache != nil {
				list := peer.cache.MostRecentlyUsed(n.cache.Capacity())
				warmFromPeer(db, n, peer, list)
			}
		}
		if err := db.transitionSubscription(s.OID, catalog.SubPassive); err != nil {
			return err
		}
		if err := db.transitionSubscription(s.OID, catalog.SubActive); err != nil {
			return err
		}
	}
	return nil
}

// warmFromPeer performs the byte-based peer cache warm (§6.1): fetch the
// peer's MRU files from the peer itself, falling back to shared storage.
// The peer's breaker shields the warm from a flapping donor: transfer
// failures are recorded, and once the breaker opens remaining files are
// fetched from shared storage directly (§5.3).
func warmFromPeer(db *DB, n *Node, peer *Node, list []string) int {
	brk := db.peerBreakers.For(peer.name)
	warm := func(ctx context.Context, path string) ([]byte, error) {
		if !brk.Allow() {
			db.resilient.Counters().Fallback()
			return db.shared.Get(ctx, path)
		}
		if data, ok := peer.cache.ReadCached(ctx, path); ok {
			err := db.net.Transfer(ctx, peer.name, n.name, int64(len(data)))
			brk.Record(err != nil)
			if err == nil {
				return data, nil
			}
		}
		return db.shared.Get(ctx, path)
	}
	// Warm through the node's scan worker pool: the per-file transfers
	// overlap, which matters when a takeover warms a large MRU list.
	return n.cache.Warm(db.Context(), list, warm, db.scanConc())
}
