package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"eon/internal/types"
)

// counterVal reads one counter out of the metrics snapshot.
func counterVal(t *testing.T, db *DB, name string) int64 {
	t.Helper()
	return db.Metrics().Counters[name]
}

// rowStrings flattens a result for comparison.
func rowStrings(res *Result) []string {
	var out []string
	for _, row := range res.Rows() {
		var parts []string
		for _, d := range row {
			parts = append(parts, d.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func sameRows(a, b *Result) bool {
	as, bs := rowStrings(a), rowStrings(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestPlanCacheSkipsFrontEnd is the acceptance check for the staged
// lifecycle: a warm plan-cache hit must execute without running the
// lexer, parser or planner — observable as the absence of "parse" and
// "plan" spans in the query profile.
func TestPlanCacheSkipsFrontEnd(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	defer db.Shutdown()
	setupSales(t, db, 40)
	s := db.NewSession()
	s.Trace = true

	cold := mustQuery(t, s, `SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY region`)
	prof := s.LastProfile()
	if prof.Find("parse") == nil || prof.Find("plan") == nil {
		t.Fatalf("cold query should carry parse and plan spans:\n%s", prof.Text())
	}
	hits0 := counterVal(t, db, "plancache.hits")

	// Same statement modulo whitespace, case and trailing semicolon: the
	// normalized key must match without lexing.
	warm := mustQuery(t, s, "select   region, count(*)\nFROM sales GROUP BY region ORDER BY region;")
	prof = s.LastProfile()
	if sp := prof.Find("parse"); sp != nil {
		t.Fatalf("warm hit ran the parser:\n%s", prof.Text())
	}
	if sp := prof.Find("plan"); sp != nil {
		t.Fatalf("warm hit ran the planner:\n%s", prof.Text())
	}
	if prof.Find("admit") == nil {
		t.Fatalf("warm hit lost its admit stage:\n%s", prof.Text())
	}
	if got := counterVal(t, db, "plancache.hits"); got != hits0+1 {
		t.Fatalf("plancache.hits = %d, want %d", got, hits0+1)
	}
	if !sameRows(cold, warm) {
		t.Fatalf("cached plan changed the answer: %v vs %v", rowStrings(cold), rowStrings(warm))
	}
}

// TestPlanCacheReplanAfterCatalogBump checks the middle path: after DDL
// bumps the catalog version the cached plan is stale, but the retained
// AST lets the replan skip the front end (plan span present, parse span
// absent) and the refreshed entry serves hits again.
func TestPlanCacheReplanAfterCatalogBump(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	defer db.Shutdown()
	setupSales(t, db, 30)
	s := db.NewSession()
	s.Trace = true

	q := `SELECT customer FROM sales WHERE sale_id = 7`
	want := mustQuery(t, s, q)

	mustExec(t, s, `CREATE TABLE bump (k INTEGER)`) // catalog version moves

	replans0 := counterVal(t, db, "plancache.replans")
	got := mustQuery(t, s, q)
	prof := s.LastProfile()
	if prof.Find("parse") != nil {
		t.Fatalf("replan re-ran the parser:\n%s", prof.Text())
	}
	if prof.Find("plan") == nil {
		t.Fatalf("stale entry must be replanned:\n%s", prof.Text())
	}
	if got := counterVal(t, db, "plancache.replans"); got != replans0+1 {
		t.Fatalf("plancache.replans = %d, want %d", got, replans0+1)
	}
	if !sameRows(want, got) {
		t.Fatalf("replanned query changed the answer: %v vs %v", rowStrings(want), rowStrings(got))
	}

	// The refreshed entry is warm again.
	mustQuery(t, s, q)
	if prof := s.LastProfile(); prof.Find("plan") != nil {
		t.Fatalf("refreshed entry should hit:\n%s", prof.Text())
	}
}

func TestPreparedStatements(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	defer db.Shutdown()
	setupSales(t, db, 25)
	s := db.NewSession()

	ps, err := s.Prepare(`SELECT customer FROM sales WHERE sale_id = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", ps.NumParams())
	}
	res, err := ps.Query(types.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Rows()[0][0].S != "ada" {
		t.Fatalf("ps.Query($1=1) = %v", rowStrings(res))
	}
	res, err = ps.Query(types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Rows()[0][0].S != "grace" {
		t.Fatalf("ps.Query($1=2) = %v", rowStrings(res))
	}

	if _, err := ps.Query(); err == nil || !strings.Contains(err.Error(), "parameters") {
		t.Fatalf("arg-count mismatch not rejected: %v", err)
	}
	if _, err := s.Prepare(`CREATE TABLE nope (a INTEGER)`); err == nil {
		t.Fatal("Prepare accepted DDL")
	}
	pe0 := counterVal(t, db, "query.parse_errors")
	if _, err := s.Prepare(`SELEKT garbage`); err == nil {
		t.Fatal("Prepare accepted garbage")
	}
	if got := counterVal(t, db, "query.parse_errors"); got != pe0+1 {
		t.Fatalf("query.parse_errors = %d, want %d", got, pe0+1)
	}

	// A re-executed prepared statement rides the plan cache: after the
	// first execution, later ones skip the front end entirely.
	s.Trace = true
	if _, err := ps.Query(types.NewInt(3)); err != nil {
		t.Fatal(err)
	}
	if prof := s.LastProfile(); prof.Find("parse") != nil || prof.Find("plan") != nil {
		t.Fatalf("prepared re-execution ran the front end:\n%s", prof.Text())
	}
}

func TestQueryArgsPositional(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	defer db.Shutdown()
	setupSales(t, db, 25)
	s := db.NewSession()

	res, err := s.QueryArgs(`SELECT customer FROM sales WHERE sale_id = ?`, types.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Rows()[0][0].S != "barbara" {
		t.Fatalf("QueryArgs(?=3) = %v", rowStrings(res))
	}
	if _, err := s.QueryArgs(`SELECT customer FROM sales WHERE sale_id = ?`); err == nil {
		t.Fatal("missing argument not rejected")
	}
	if _, err := s.Query(`SELECT customer FROM sales WHERE sale_id = $1`); err == nil {
		t.Fatal("unbound parameter not rejected")
	}
}

// TestParseErrorAccounting: unparseable input is a failed query, not a
// free operation — on both the Query and Execute entry points.
func TestParseErrorAccounting(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	defer db.Shutdown()
	s := db.NewSession()

	count0 := counterVal(t, db, "query.count")
	errs0 := counterVal(t, db, "query.errors")
	parse0 := counterVal(t, db, "query.parse_errors")
	if _, err := s.Query(`SELEKT 1 FROM nowhere`); err == nil {
		t.Fatal("Query accepted garbage")
	}
	if _, err := s.Execute(`THIS IS NOT SQL`); err == nil {
		t.Fatal("Execute accepted garbage")
	}
	if got := counterVal(t, db, "query.count"); got != count0+2 {
		t.Fatalf("query.count = %d, want %d", got, count0+2)
	}
	if got := counterVal(t, db, "query.errors"); got != errs0+2 {
		t.Fatalf("query.errors = %d, want %d", got, errs0+2)
	}
	if got := counterVal(t, db, "query.parse_errors"); got != parse0+2 {
		t.Fatalf("query.parse_errors = %d, want %d", got, parse0+2)
	}
}

// newServingDB builds an Eon cluster with the result cache enabled.
func newServingDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if len(cfg.Nodes) == 0 {
		for _, n := range []string{"node1", "node2", "node3"} {
			cfg.Nodes = append(cfg.Nodes, NodeSpec{Name: n})
		}
	}
	cfg.Mode = ModeEon
	if cfg.ShardCount == 0 {
		cfg.ShardCount = 3
	}
	db, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestResultCacheServesAndInvalidates: a repeated statement is served
// from the result cache, and any data change the plan depends on — load,
// delete — invalidates it through the catalog fingerprint. Staleness is
// observable as a wrong count; the test proves it never happens.
func TestResultCacheServesAndInvalidates(t *testing.T) {
	db := newServingDB(t, Config{ResultCacheBytes: 1 << 20})
	defer db.Shutdown()
	setupSales(t, db, 40)
	s := db.NewSession()

	q := `SELECT COUNT(*) FROM sales`
	count := func() int64 {
		res := mustQuery(t, s, q)
		return res.Rows()[0][0].I
	}
	if got := count(); got != 40 {
		t.Fatalf("COUNT(*) = %d, want 40", got)
	}
	hits0 := counterVal(t, db, "resultcache.hits")
	if got := count(); got != 40 {
		t.Fatalf("cached COUNT(*) = %d, want 40", got)
	}
	if got := counterVal(t, db, "resultcache.hits"); got != hits0+1 {
		t.Fatalf("resultcache.hits = %d, want %d", got, hits0+1)
	}

	// New data must invalidate: a stale 40 here is the bug this cache
	// design exists to prevent.
	batch := types.NewBatch(types.Schema{
		{Name: "sale_id", Type: types.Int64},
		{Name: "customer", Type: types.Varchar},
		{Name: "price", Type: types.Float64},
		{Name: "region", Type: types.Varchar},
	}, 5)
	for i := 0; i < 5; i++ {
		batch.AppendRow(types.Row{
			types.NewInt(int64(1000 + i)), types.NewString("new"),
			types.NewFloat(1), types.NewString("east"),
		})
	}
	if err := db.LoadRows("sales", batch); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 45 {
		t.Fatalf("COUNT(*) after load = %d, want 45 (stale result served)", got)
	}

	// Deletes flow through delete-vector versions.
	mustExec(t, s, `DELETE FROM sales WHERE sale_id = 1001`)
	if got := count(); got != 44 {
		t.Fatalf("COUNT(*) after delete = %d, want 44 (stale result served)", got)
	}

	// And once the data is quiescent the cache serves again.
	hits1 := counterVal(t, db, "resultcache.hits")
	if got := count(); got != 44 {
		t.Fatalf("COUNT(*) = %d, want 44", got)
	}
	if got := counterVal(t, db, "resultcache.hits"); got != hits1+1 {
		t.Fatalf("resultcache.hits = %d, want %d", got, hits1+1)
	}

	// Parameterized statements cache per argument fingerprint.
	a1, err := s.QueryArgs(`SELECT customer FROM sales WHERE sale_id = $1`, types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.QueryArgs(`SELECT customer FROM sales WHERE sale_id = $1`, types.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Rows()[0][0].S == a2.Rows()[0][0].S {
		t.Fatal("different arguments returned the same cached row")
	}

	// BypassCache sessions never read or populate the cache.
	bypass := db.NewSession()
	bypass.BypassCache = true
	hits2 := counterVal(t, db, "resultcache.hits")
	if _, err := bypass.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := counterVal(t, db, "resultcache.hits"); got != hits2 {
		t.Fatalf("BypassCache query hit the result cache")
	}
}

// TestAdmissionControllerUnit exercises the controller directly: FIFO
// order, the concurrency cap, the memory throttle with its admit-alone
// escape, and the deadline-bounded wait.
func TestAdmissionControllerUnit(t *testing.T) {
	t.Run("concurrency", func(t *testing.T) {
		a := newAdmissionController(1, 0)
		rel1, err := a.admit(context.Background(), "n1", "", 0)
		if err != nil {
			t.Fatal(err)
		}
		// Second query times out in the queue.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		if _, err := a.admit(ctx, "n1", "", 0); !errors.Is(err, ErrQueuedTooLong) {
			t.Fatalf("saturated admit = %v, want ErrQueuedTooLong", err)
		}
		if a.timeouts.Value() != 1 {
			t.Fatalf("timeouts = %d, want 1", a.timeouts.Value())
		}
		// FIFO: two waiters are admitted in arrival order as slots free.
		var mu sync.Mutex
		var order []int
		var wg sync.WaitGroup
		ready := make(chan struct{}, 2)
		for i := 1; i <= 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Serialize enqueue order: waiter i parks before i+1 starts.
				<-ready
				rel, err := a.admit(context.Background(), "n1", "", 0)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				time.Sleep(10 * time.Millisecond)
				rel()
			}(i)
			ready <- struct{}{}
			time.Sleep(20 * time.Millisecond)
		}
		rel1()
		wg.Wait()
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Fatalf("admission order = %v, want [1 2]", order)
		}
	})

	t.Run("memory", func(t *testing.T) {
		a := newAdmissionController(0, 100)
		relA, err := a.admit(context.Background(), "n1", "", 80)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		if _, err := a.admit(ctx, "n1", "", 50); !errors.Is(err, ErrQueuedTooLong) {
			t.Fatalf("over-budget admit = %v, want ErrQueuedTooLong", err)
		}
		relA()
		// Admit-alone: a budget above the limit still runs when idle.
		relBig, err := a.admit(context.Background(), "n1", "", 500)
		if err != nil {
			t.Fatalf("admit-alone failed: %v", err)
		}
		relBig()
	})

	t.Run("subcluster isolation", func(t *testing.T) {
		a := newAdmissionController(1, 0)
		relA, err := a.admit(context.Background(), "n1", "alpha", 0)
		if err != nil {
			t.Fatal(err)
		}
		// A saturated alpha does not block beta.
		relB, err := a.admit(context.Background(), "n2", "beta", 0)
		if err != nil {
			t.Fatalf("beta blocked by alpha: %v", err)
		}
		relA()
		relB()
	})
}

// TestSessionTimeoutBoundsAdmission: a query that spends its whole
// Session.Timeout parked behind a saturated admission slot fails with
// ErrQueuedTooLong, not a generic deadline error.
func TestSessionTimeoutBoundsAdmission(t *testing.T) {
	db := newServingDB(t, Config{
		SubclusterConcurrency: 1,
		QueryCost:             400 * time.Millisecond,
	})
	defer db.Shutdown()
	setupSales(t, db, 10)

	slow := db.NewSession()
	done := make(chan error, 1)
	go func() {
		_, err := slow.Query(`SELECT COUNT(*) FROM sales`)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the slow query get admitted

	fast := db.NewSession()
	fast.Timeout = 50 * time.Millisecond
	_, err := fast.Query(`SELECT COUNT(*) FROM sales`)
	if !errors.Is(err, ErrQueuedTooLong) {
		t.Fatalf("queued query error = %v, want ErrQueuedTooLong", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow query failed: %v", err)
	}
	if got := counterVal(t, db, "admission.timeouts"); got < 1 {
		t.Fatalf("admission.timeouts = %d, want >= 1", got)
	}
}

// TestAdmissionQueuesConcurrent runs more concurrent queries than the
// per-subcluster cap and checks everyone finishes, the queue drains, and
// the waits are visible in the metrics and the Data Collector ring.
func TestAdmissionQueuesConcurrent(t *testing.T) {
	db := newServingDB(t, Config{
		SubclusterConcurrency: 2,
		QueryCost:             20 * time.Millisecond,
	})
	defer db.Shutdown()
	setupSales(t, db, 20)

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			if _, err := s.Query(`SELECT COUNT(*) FROM sales`); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if got := counterVal(t, db, "admission.admitted"); got < 6 {
		t.Fatalf("admission.admitted = %d, want >= 6", got)
	}
	if got := counterVal(t, db, "admission.queued"); got < 1 {
		t.Fatalf("admission.queued = %d, want >= 1 (cap 2, 6 concurrent)", got)
	}
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT a.subcluster, a.running, a.queued FROM v_monitor.admission_queue a`)
	if res.NumRows() != 1 || res.Rows()[0][0].S != "default" {
		t.Fatalf("admission_queue rows = %v", rowStrings(res))
	}
	res = mustQuery(t, s, `SELECT d.state, COUNT(*) FROM v_monitor.dc_admission_waits d GROUP BY d.state ORDER BY d.state`)
	states := map[string]bool{}
	for _, row := range res.Rows() {
		states[row[0].S] = true
	}
	for _, want := range []string{"admitted", "finished", "queued"} {
		if !states[want] {
			t.Fatalf("dc_admission_waits missing %q state: %v", want, rowStrings(res))
		}
	}
}

// TestServingSystemTables smoke-tests the new v_monitor tables.
func TestServingSystemTables(t *testing.T) {
	db := newServingDB(t, Config{ResultCacheBytes: 1 << 20})
	defer db.Shutdown()
	setupSales(t, db, 10)
	s := db.NewSession()

	mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	mustQuery(t, s, `SELECT COUNT(*) FROM sales`) // populate + hit

	res := mustQuery(t, s, `SELECT p.statement, p.params, p.hits FROM v_monitor.plan_cache p`)
	if res.NumRows() < 1 {
		t.Fatal("v_monitor.plan_cache is empty after queries")
	}
	res = mustQuery(t, s, `SELECT r.statement, r.rows, r.hits FROM v_monitor.result_cache r`)
	found := false
	for _, row := range res.Rows() {
		if strings.Contains(row[0].S, "COUNT(*) FROM SALES") {
			found = true
			if row[2].I < 1 {
				t.Fatalf("cached entry has no hits: %v", rowStrings(res))
			}
		}
	}
	if !found {
		t.Fatalf("v_monitor.result_cache missing the hot statement: %v", rowStrings(res))
	}
}
