package exec

import (
	"sync/atomic"

	"eon/internal/types"
)

// MemGovernor enforces a per-query memory budget for pipeline-breaker
// operators (hash aggregate, hash join build, sort). Operators check
// WouldExceed BEFORE charging and spill or flush first, so the governed
// total stays at or under the budget; Charge then records the bytes and
// the high-water mark. A nil governor (and a zero budget) means
// unlimited: every method is a nil-safe no-op or returns zero.
//
// The accounting is estimate-based: charges cover the batches and hash
// tables an operator holds, not transient scratch. All methods are safe
// for concurrent use by the per-node operator chains of one query.
type MemGovernor struct {
	budget int64
	gauge  func(delta int64) // optional external gauge hook (obs)

	used       atomic.Int64
	peak       atomic.Int64
	spills     atomic.Int64
	spillBytes atomic.Int64
}

// NewMemGovernor returns a governor with the given budget in bytes
// (0 = track usage but never request spills). gauge, when non-nil,
// receives every charge and release delta, letting the caller mirror
// usage into a shared metrics gauge.
func NewMemGovernor(budget int64, gauge func(delta int64)) *MemGovernor {
	return &MemGovernor{budget: budget, gauge: gauge}
}

// Limited reports whether the governor enforces a finite budget.
func (g *MemGovernor) Limited() bool { return g != nil && g.budget > 0 }

// Budget returns the configured budget (0 = unlimited).
func (g *MemGovernor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// WouldExceed reports whether charging n more bytes would push usage
// over the budget. Callers spill first, then charge.
func (g *MemGovernor) WouldExceed(n int64) bool {
	if !g.Limited() {
		return false
	}
	return g.used.Load()+n > g.budget
}

// Charge records n bytes as held, updating the peak watermark.
func (g *MemGovernor) Charge(n int64) {
	if g == nil || n == 0 {
		return
	}
	u := g.used.Add(n)
	for {
		p := g.peak.Load()
		if u <= p || g.peak.CompareAndSwap(p, u) {
			break
		}
	}
	if g.gauge != nil {
		g.gauge(n)
	}
}

// Release returns n previously charged bytes.
func (g *MemGovernor) Release(n int64) {
	if g == nil || n == 0 {
		return
	}
	g.used.Add(-n)
	if g.gauge != nil {
		g.gauge(-n)
	}
}

// NoteSpill counts one spill of the given encoded size.
func (g *MemGovernor) NoteSpill(bytes int64) {
	if g == nil {
		return
	}
	g.spills.Add(1)
	g.spillBytes.Add(bytes)
}

// Used returns the currently charged bytes.
func (g *MemGovernor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Peak returns the high-water mark of charged bytes.
func (g *MemGovernor) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Spills returns the number of spill events.
func (g *MemGovernor) Spills() int64 {
	if g == nil {
		return 0
	}
	return g.spills.Load()
}

// SpillBytes returns the total encoded bytes written by spills.
func (g *MemGovernor) SpillBytes() int64 {
	if g == nil {
		return 0
	}
	return g.spillBytes.Load()
}

// Close zeroes any remaining charge (operators torn down mid-query by a
// cancellation never reach their release points) and mirrors the
// correction into the external gauge.
func (g *MemGovernor) Close() {
	if g == nil {
		return
	}
	if u := g.used.Swap(0); u != 0 && g.gauge != nil {
		g.gauge(-u)
	}
}

// vectorMemBytes estimates the resident bytes of one column vector:
// slice headers are ignored, string payloads and the null bitmap are
// counted.
func vectorMemBytes(v *types.Vector) int64 {
	var n int64 = 48 // vector struct + slice headers
	switch v.Typ.Physical() {
	case types.Int64:
		n += 8 * int64(len(v.Ints))
	case types.Float64:
		n += 8 * int64(len(v.Floats))
	case types.Varchar:
		for _, s := range v.Strs {
			n += 16 + int64(len(s))
		}
	case types.Bool:
		n += int64(len(v.Bools))
	}
	n += int64(len(v.Nulls))
	return n
}

// BatchMemBytes estimates the resident bytes of a batch, the unit the
// memory governor charges in.
func BatchMemBytes(b *types.Batch) int64 {
	if b == nil {
		return 0
	}
	var n int64
	for _, v := range b.Cols {
		n += vectorMemBytes(v)
	}
	return n
}
