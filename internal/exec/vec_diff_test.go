package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"eon/internal/expr"
	"eon/internal/types"
)

// Operator-level differential tests: every operator run on the
// vectorized engine must produce byte-identical output (values, NULLs,
// row order) to the row engine. Output orders are deterministic in both
// engines — filters/joins preserve stream order and aggregates emit
// groups in first-seen order — so outputs are compared positionally.

var diffOpSchema = types.Schema{
	{Name: "k", Type: types.Int64},
	{Name: "v", Type: types.Float64},
	{Name: "s", Type: types.Varchar},
	{Name: "d", Type: types.Date},
}

func randOpBatch(r *rand.Rand, n int, nullProb float64) *types.Batch {
	b := types.NewBatch(diffOpSchema, n)
	words := []string{"STEEL", "small steel box", "Brand#12", "Brand#22", "x", ""}
	for i := 0; i < n; i++ {
		row := make(types.Row, len(diffOpSchema))
		for c, col := range diffOpSchema {
			if r.Float64() < nullProb {
				row[c] = types.NullDatum(col.Type)
				continue
			}
			switch col.Type {
			case types.Int64:
				row[c] = types.NewInt(int64(r.Intn(12)))
			case types.Float64:
				row[c] = types.NewFloat(float64(r.Intn(200)) / 8)
			case types.Varchar:
				row[c] = types.NewString(words[r.Intn(len(words))])
			case types.Date:
				row[c] = types.NewDate(int64(10000 + r.Intn(400)))
			}
		}
		b.AppendRow(row)
	}
	return b
}

func mustBind(t *testing.T, e expr.Expr, s types.Schema) expr.Expr {
	t.Helper()
	if err := expr.Bind(e, s); err != nil {
		t.Fatalf("bind: %v", err)
	}
	return e
}

func batchesEqual(t *testing.T, label string, want, got *types.Batch) {
	t.Helper()
	if want.NumCols() != got.NumCols() {
		t.Fatalf("%s: %d cols vs %d", label, got.NumCols(), want.NumCols())
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("%s: %d rows vs %d (row engine)", label, got.NumRows(), want.NumRows())
	}
	for c := 0; c < want.NumCols(); c++ {
		wv, gv := want.Cols[c], got.Cols[c]
		if wv.Typ != gv.Typ {
			t.Fatalf("%s: col %d type %v vs %v", label, c, gv.Typ, wv.Typ)
		}
		for i := 0; i < wv.Len(); i++ {
			wd, gd := wv.Datum(i), gv.Datum(i)
			if wd.Null != gd.Null || (!wd.Null && wd.Compare(gd) != 0) {
				t.Fatalf("%s: col %d row %d: vec=%v row=%v", label, c, i, gd, wd)
			}
		}
	}
}

// runBoth builds the same operator tree twice (the constructor is
// called once per engine because operators are single-use), collects
// both, and compares.
func runBoth(t *testing.T, label string, build func(eng Engine) Operator) {
	t.Helper()
	stats := &expr.VecStats{}
	rowOut, errRow := Collect(build(Engine{Row: true}))
	vecOut, errVec := Collect(build(Engine{Stats: stats}))
	if (errRow == nil) != (errVec == nil) {
		t.Fatalf("%s: error mismatch row=%v vec=%v", label, errRow, errVec)
	}
	if errRow != nil {
		return
	}
	batchesEqual(t, label, rowOut, vecOut)
}

func randPred(r *rand.Rand) expr.Expr {
	preds := []func() expr.Expr{
		func() expr.Expr {
			return &expr.Binary{Op: expr.OpGt, L: &expr.ColumnRef{Name: "v"},
				R: &expr.Literal{Value: types.NewFloat(float64(r.Intn(20)))}}
		},
		func() expr.Expr {
			return &expr.Like{E: &expr.ColumnRef{Name: "s"}, Pattern: "%STEEL%", Negate: r.Intn(2) == 0}
		},
		func() expr.Expr {
			return &expr.In{E: &expr.ColumnRef{Name: "k"}, List: []expr.Expr{
				&expr.Literal{Value: types.NewInt(int64(r.Intn(6)))},
				&expr.Literal{Value: types.NewInt(int64(r.Intn(12)))},
			}}
		},
		func() expr.Expr {
			return &expr.Binary{Op: expr.OpAnd,
				L: &expr.Binary{Op: expr.OpGe, L: &expr.ColumnRef{Name: "k"},
					R: &expr.Literal{Value: types.NewInt(int64(r.Intn(6)))}},
				R: &expr.Binary{Op: expr.OpOr,
					L: &expr.IsNull{E: &expr.ColumnRef{Name: "v"}},
					R: &expr.Binary{Op: expr.OpLt, L: &expr.ColumnRef{Name: "v"},
						R: &expr.Literal{Value: types.NewFloat(18)}}}}
		},
	}
	return preds[r.Intn(len(preds))]()
}

func TestFilterProjectDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 120; iter++ {
		n := []int{0, 1, 7, 40, 130}[r.Intn(5)]
		nullProb := []float64{0, 0.2, 1}[r.Intn(3)]
		batches := []*types.Batch{
			randOpBatch(r, n, nullProb),
			randOpBatch(r, r.Intn(30), nullProb),
		}
		seed := r.Int63()
		label := fmt.Sprintf("iter %d n=%d null=%.1f", iter, n, nullProb)
		runBoth(t, label, func(eng Engine) Operator {
			pr := rand.New(rand.NewSource(seed))
			pred := mustBind(t, randPred(pr), diffOpSchema)
			proj := []expr.Expr{
				mustBind(t, &expr.Binary{Op: expr.OpMul, L: &expr.ColumnRef{Name: "v"},
					R: &expr.Binary{Op: expr.OpSub, L: &expr.Literal{Value: types.NewFloat(1)},
						R: &expr.ColumnRef{Name: "v"}}}, diffOpSchema),
				mustBind(t, &expr.ColumnRef{Name: "k"}, diffOpSchema),
				mustBind(t, &expr.Case{Whens: []expr.When{{
					Cond: mustBind(t, randPred(pr), diffOpSchema),
					Then: &expr.ColumnRef{Name: "v"}}},
					Else: &expr.Literal{Value: types.NewInt(0)}}, diffOpSchema),
			}
			src := NewSource(diffOpSchema, batches...)
			f := NewFilter(src, pred)
			f.Eng = eng
			p := NewProject(f, proj, []string{"e1", "e2", "e3"})
			p.Eng = eng
			return p
		})
	}
}

func TestHashAggregateDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	keySets := [][]expr.Expr{
		nil, // global aggregate
		{&expr.ColumnRef{Name: "k"}},
		{&expr.ColumnRef{Name: "s"}},
		{&expr.ColumnRef{Name: "k"}, &expr.ColumnRef{Name: "s"}},
		{&expr.ColumnRef{Name: "k"}, &expr.ColumnRef{Name: "d"}},
	}
	for iter := 0; iter < 100; iter++ {
		ks := keySets[iter%len(keySets)]
		n := []int{0, 1, 13, 90}[r.Intn(4)]
		nullProb := []float64{0, 0.25, 1}[r.Intn(3)]
		batches := []*types.Batch{randOpBatch(r, n, nullProb), randOpBatch(r, r.Intn(40), nullProb)}
		partial := r.Intn(2) == 0
		label := fmt.Sprintf("iter %d keys=%d n=%d null=%.2f partial=%v", iter, len(ks), n, nullProb, partial)
		runBoth(t, label, func(eng Engine) Operator {
			var keys []expr.Expr
			var names []string
			for i, k := range ks {
				keys = append(keys, mustBind(t, expr.Clone(k), diffOpSchema))
				names = append(names, fmt.Sprintf("g%d", i))
			}
			aggs := []AggDef{
				{Kind: AggCountStar, Name: "cnt"},
				{Kind: AggCount, Arg: mustBind(t, &expr.ColumnRef{Name: "v"}, diffOpSchema), Name: "cntv"},
				{Kind: AggSum, Arg: mustBind(t, &expr.ColumnRef{Name: "v"}, diffOpSchema), Name: "sumv"},
				{Kind: AggSum, Arg: mustBind(t, &expr.ColumnRef{Name: "k"}, diffOpSchema), Name: "sumk"},
				{Kind: AggAvg, Arg: mustBind(t, &expr.ColumnRef{Name: "v"}, diffOpSchema), Name: "avgv"},
				{Kind: AggMin, Arg: mustBind(t, &expr.ColumnRef{Name: "d"}, diffOpSchema), Name: "mind"},
				{Kind: AggMax, Arg: mustBind(t, &expr.ColumnRef{Name: "s"}, diffOpSchema), Name: "maxs"},
			}
			agg := NewHashAggregate(NewSource(diffOpSchema, batches...), keys, names, aggs, partial)
			agg.Eng = eng
			return agg
		})
	}
}

func TestHashJoinDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 60; iter++ {
		nullProb := []float64{0, 0.2}[r.Intn(2)]
		buildB := randOpBatch(r, r.Intn(40), nullProb)
		probeB := []*types.Batch{randOpBatch(r, r.Intn(60), nullProb), randOpBatch(r, r.Intn(20), nullProb)}
		multi := r.Intn(2) == 0
		label := fmt.Sprintf("iter %d multi=%v", iter, multi)
		runBoth(t, label, func(eng Engine) Operator {
			bk, pk := []int{0}, []int{0}
			if multi {
				bk, pk = []int{0, 2}, []int{0, 2}
			}
			j := NewHashJoin(NewSource(diffOpSchema, buildB), NewSource(diffOpSchema, probeB...), bk, pk)
			j.Eng = eng
			return j
		})
	}
}

func TestDistinctDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	oneCol := types.Schema{{Name: "k", Type: types.Int64}}
	for iter := 0; iter < 60; iter++ {
		nullProb := []float64{0, 0.3, 1}[r.Intn(3)]
		full := []*types.Batch{randOpBatch(r, r.Intn(50), nullProb), randOpBatch(r, r.Intn(50), nullProb)}
		// Single-column batches exercise the typed int64 fast path.
		narrow := make([]*types.Batch, len(full))
		for i, b := range full {
			narrow[i] = &types.Batch{Cols: b.Cols[:1]}
		}
		label := fmt.Sprintf("iter %d null=%.1f", iter, nullProb)
		runBoth(t, label+" all-cols", func(eng Engine) Operator {
			d := NewDistinct(NewSource(diffOpSchema, full...))
			d.Eng = eng
			return d
		})
		runBoth(t, label+" int-col", func(eng Engine) Operator {
			d := NewDistinct(NewSource(oneCol, narrow...))
			d.Eng = eng
			return d
		})
	}
}

// TestFilterChainComposesSelections checks that stacked filters pass
// selection vectors through nextSel without gathering in between, and
// still match the row engine.
func TestFilterChainComposesSelections(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	batches := []*types.Batch{randOpBatch(r, 200, 0.15), randOpBatch(r, 77, 0.15)}
	runBoth(t, "filter chain", func(eng Engine) Operator {
		f1 := NewFilter(NewSource(diffOpSchema, batches...),
			mustBind(t, &expr.Binary{Op: expr.OpGt, L: &expr.ColumnRef{Name: "v"},
				R: &expr.Literal{Value: types.NewFloat(5)}}, diffOpSchema))
		f1.Eng = eng
		f2 := NewFilter(f1,
			mustBind(t, &expr.Like{E: &expr.ColumnRef{Name: "s"}, Pattern: "%a%"}, diffOpSchema))
		f2.Eng = eng
		f3 := NewFilter(f2,
			mustBind(t, &expr.Binary{Op: expr.OpLt, L: &expr.ColumnRef{Name: "k"},
				R: &expr.Literal{Value: types.NewInt(9)}}, diffOpSchema))
		f3.Eng = eng
		return f3
	})
}