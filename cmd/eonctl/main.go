// Command eonctl is an interactive SQL shell over an in-process cluster —
// the vsql of this reproduction. Statements are read line by line
// (terminated by ';'); results print as aligned tables. Backslash
// commands drive cluster operations:
//
//	\kill <node>       simulate a node failure
//	\recover <node>    recover a failed node
//	\wipe <node>       simulate instance loss (process and depot both gone)
//	\addnode <node>    grow the cluster
//	\removenode <node> drain and remove a node
//	\spare <node>      provision a warm spare (PASSIVE everywhere, depot pre-warmed)
//	\promote <node> [subcluster]  promote a spare into a subcluster
//	\spec <size> [spares]  declare the desired cluster shape for the reconciler
//	\reconcile         tick the reconciler until it converges (or blocks)
//	\cluster           show reconciler status and node membership
//	\tuplemover        run moveout + mergeout
//	\sync              sync metadata to shared storage
//	\gc                run the file garbage collector
//	\nodes             list nodes and subscriptions
//	\copytable a b     snapshot-copy table a to b (shared files)
//	\droppartition t k drop a table partition
//	\movepartition a b k  move a partition between tables
//	\refresh t         refresh flattened columns of t
//	\tpch <scale>      create and load the TPC-H-shaped dataset
//	\sys [table]       list the v_monitor system tables (or one table's columns)
//	\dc                list Data Collector rings (retained/emitted/dropped/bytes)
//	\stats [json]      dump the cluster metrics registry (text or JSON);
//	                   includes reconcile.* counters once a reconciler runs
//	                   and the per-subcluster subcluster.*.nodes gauges
//	\cache             show plan cache, result cache and admission queues
//	\exec              show the last query's executor stats (peak memory, spills)
//	\profile [json]    show the last query's execution profile
//	\slow [json]       show the slow-query log
//	\trace on|off      toggle per-query span tracing (default on)
//	\q                 quit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"eon"
	"eon/internal/workload"
)

func main() {
	mode := flag.String("mode", "eon", "cluster mode: eon or enterprise")
	nodes := flag.Int("nodes", 3, "node count")
	shards := flag.Int("shards", 3, "segment shard count (eon)")
	slow := flag.Duration("slow", time.Second, "slow-query log threshold (0 disables)")
	budget := flag.Int64("budget", 0, "per-query per-node memory budget in bytes; operators spill to local disk past it (0 = unbounded)")
	flag.Parse()

	cfg := eon.Config{ShardCount: *shards, SlowQueryThreshold: *slow, QueryMemoryBudget: *budget}
	if *mode == "enterprise" {
		cfg.Mode = eon.ModeEnterprise
	} else {
		cfg.Mode = eon.ModeEon
	}
	for i := 1; i <= *nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, eon.NodeSpec{Name: fmt.Sprintf("node%d", i)})
	}
	db, err := eon.Create(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eonctl:", err)
		os.Exit(1)
	}
	fmt.Printf("eonctl: %d-node %s cluster ready. Terminate statements with ';', \\q to quit.\n", *nodes, cfg.Mode)

	session := db.NewSession()
	session.Trace = true // makes \profile available after every query
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("eon=> ")
		} else {
			fmt.Print("eon-> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if trimmed == "\\q" {
				return
			}
			if err := backslash(db, session, trimmed); err != nil {
				fmt.Println("error:", err)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := buf.String()
			buf.Reset()
			run(session, stmt)
		}
		prompt()
	}
}

func run(session *eon.Session, stmt string) {
	res, err := session.Execute(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res == nil || res.Batch == nil || len(res.Columns) == 0 {
		fmt.Println("OK")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows() {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = d.String()
		}
		fmt.Fprintln(w, strings.Join(parts, "\t"))
	}
	w.Flush()
	fmt.Printf("(%d rows)\n", res.NumRows())
}

// rec is the shell's reconciler, created on the first \spec.
var rec *eon.Reconciler

func printReconcileStatus(st eon.ReconcileStatus) {
	fmt.Printf("reconciler: %s (round %d, queue %d, p95 %v)\n", st.Code, st.Round, st.QueueDepth, st.P95)
	for _, r := range st.Reasons {
		fmt.Printf("  - %s\n", r)
	}
}

func backslash(db *eon.DB, session *eon.Session, cmd string) error {
	fields := strings.Fields(cmd)
	asJSON := len(fields) > 1 && fields[1] == "json"
	switch fields[0] {
	case "\\sys":
		reg := db.SystemTables()
		if len(fields) > 1 {
			name := fields[1]
			if !strings.Contains(name, ".") {
				name = "v_monitor." + name
			}
			d, ok := reg.Def(name)
			if !ok {
				return fmt.Errorf("unknown system table %s (try \\sys)", name)
			}
			w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(w, "column\ttype")
			for _, c := range d.Columns {
				fmt.Fprintf(w, "%s\t%s\n", c.Name, c.Type)
			}
			return w.Flush()
		}
		for _, name := range reg.Names() {
			fmt.Println(" ", name)
		}
		fmt.Println("query them with ordinary SQL, e.g. SELECT m.name, m.value FROM v_monitor.metrics m WHERE m.kind = 'counter';")
		return nil
	case "\\dc":
		dc := db.DataCollector()
		if dc == nil {
			fmt.Println("data collector disabled (Config.DisableDataCollector)")
			return nil
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ring\tretained\temitted\tdropped\tbytes")
		for _, r := range dc.Rings() {
			st := r.Stats()
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", st.Name, st.Retained, st.Emitted, st.Dropped, st.Bytes)
		}
		return w.Flush()
	case "\\stats":
		snap := db.Metrics()
		if asJSON {
			fmt.Println(string(snap.JSON()))
		} else {
			fmt.Print(snap.Text())
		}
		return nil
	case "\\cache":
		for _, q := range []struct{ title, sql string }{
			{"v_monitor.plan_cache", "SELECT p.statement, p.assume_no_seg, p.catalog_version, p.params, p.hits, p.replans FROM v_monitor.plan_cache p;"},
			{"v_monitor.result_cache", "SELECT r.statement, r.args, r.rows, r.bytes, r.hits FROM v_monitor.result_cache r;"},
			{"v_monitor.admission_queue", "SELECT a.subcluster, a.running, a.queued, a.mem_bytes, a.concurrency_limit, a.mem_limit_bytes FROM v_monitor.admission_queue a;"},
		} {
			fmt.Println("--", q.title)
			run(session, q.sql)
		}
		return nil
	case "\\exec":
		st := session.LastExecStats()
		engine := "streaming"
		if !st.Streaming {
			engine = "materialized"
		}
		fmt.Printf("executor: %s  peak memory: %d bytes  spills: %d (%d bytes)\n",
			engine, st.PeakMemBytes, st.SpillCount, st.SpillBytes)
		return nil
	case "\\profile":
		prof := session.LastProfile()
		if prof == nil {
			return fmt.Errorf("no profile recorded yet (run a query first)")
		}
		if asJSON {
			b, err := json.MarshalIndent(prof, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		} else {
			fmt.Print(prof.Text())
		}
		return nil
	case "\\slow":
		entries := db.SlowQueries()
		if len(entries) == 0 {
			fmt.Println("slow-query log is empty")
			return nil
		}
		if asJSON {
			b, err := json.MarshalIndent(entries, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(b))
			return nil
		}
		for _, e := range entries {
			status := "ok"
			if e.Err != "" {
				status = "error: " + e.Err
			}
			fmt.Printf("%s  %v  %s  %s\n", e.Start.Format(time.RFC3339), e.Wall, status, strings.TrimSpace(e.SQL))
		}
		return nil
	case "\\trace":
		if len(fields) < 2 || (fields[1] != "on" && fields[1] != "off") {
			return fmt.Errorf("usage: \\trace on|off")
		}
		session.Trace = fields[1] == "on"
		return nil
	case "\\kill":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\kill <node>")
		}
		return db.KillNode(fields[1])
	case "\\wipe":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\wipe <node>")
		}
		return db.WipeNode(fields[1])
	case "\\spare":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\spare <node>")
		}
		return db.AddSpare(eon.NodeSpec{Name: fields[1]})
	case "\\promote":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\promote <node> [subcluster]")
		}
		sub := ""
		if len(fields) > 2 {
			sub = fields[2]
		}
		return db.PromoteSpare(fields[1], sub)
	case "\\spec":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\spec <size> [spares]")
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil || size < 1 {
			return fmt.Errorf("usage: \\spec <size> [spares]")
		}
		spares := 0
		if len(fields) > 2 {
			if spares, err = strconv.Atoi(fields[2]); err != nil || spares < 0 {
				return fmt.Errorf("usage: \\spec <size> [spares]")
			}
		}
		spec := eon.ClusterSpec{
			Subclusters: []eon.SubclusterSpec{{Name: "", Size: size}},
			Spares:      spares,
		}
		if rec == nil {
			rec = db.NewReconciler(eon.ReconcilerConfig{Spec: spec})
		} else {
			rec.SetSpec(spec)
		}
		fmt.Printf("spec: %d members, %d spares; run \\reconcile to converge\n", size, spares)
		return nil
	case "\\reconcile":
		if rec == nil {
			return fmt.Errorf("no spec declared yet (use \\spec <size> [spares])")
		}
		for round := 0; round < 64; round++ {
			st := rec.Tick(context.Background())
			for _, ar := range st.Actions {
				outcome := "ok"
				if ar.Err != "" {
					outcome = "error: " + ar.Err
				}
				fmt.Printf("  %s %s (%s) -> %s\n", ar.Action.Kind, ar.Action.Node, ar.Action.Reason, outcome)
			}
			if st.Code != eon.ReconcileProgressing {
				printReconcileStatus(st)
				return nil
			}
		}
		printReconcileStatus(rec.Status())
		return nil
	case "\\cluster":
		if rec != nil {
			printReconcileStatus(rec.Status())
		} else {
			fmt.Println("reconciler: no spec declared (use \\spec <size> [spares])")
		}
		return backslash(db, session, "\\nodes")
	case "\\recover":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\recover <node>")
		}
		return db.RecoverNode(fields[1])
	case "\\addnode":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\addnode <node>")
		}
		return db.AddNode(eon.NodeSpec{Name: fields[1]})
	case "\\removenode":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\removenode <node>")
		}
		return db.RemoveNode(fields[1])
	case "\\tuplemover":
		stats, err := db.RunTupleMover()
		if err != nil {
			return err
		}
		fmt.Printf("mergeout: %d jobs, %d containers merged, %d rows purged\n",
			stats.Jobs, stats.ContainersMerged, stats.RowsPurged)
		return nil
	case "\\sync":
		if err := db.SyncMetadata(); err != nil {
			return err
		}
		fmt.Printf("truncation version now %d\n", db.TruncationVersion())
		return nil
	case "\\gc":
		n, err := db.RunGC()
		if err != nil {
			return err
		}
		fmt.Printf("deleted %d files\n", n)
		return nil
	case "\\nodes":
		inner := db.Internal()
		for _, n := range inner.Nodes() {
			status := "UP"
			if !n.Up() {
				status = "DOWN"
			}
			subs := n.Catalog().Snapshot().Subscriptions(n.Name())
			var parts []string
			for _, s := range subs {
				parts = append(parts, fmt.Sprintf("%d:%s", s.ShardIndex, s.State))
			}
			fmt.Printf("  %-8s %-5s subscriptions: %s\n", n.Name(), status, strings.Join(parts, " "))
		}
		return nil
	case "\\copytable":
		if len(fields) < 3 {
			return fmt.Errorf("usage: \\copytable <src> <dst>")
		}
		return db.CopyTable(fields[1], fields[2])
	case "\\droppartition":
		if len(fields) < 3 {
			return fmt.Errorf("usage: \\droppartition <table> <key>")
		}
		n, err := db.DropPartition(fields[1], fields[2])
		if err != nil {
			return err
		}
		fmt.Printf("dropped %d containers\n", n)
		return nil
	case "\\movepartition":
		if len(fields) < 4 {
			return fmt.Errorf("usage: \\movepartition <src> <dst> <key>")
		}
		n, err := db.MovePartition(fields[1], fields[2], fields[3])
		if err != nil {
			return err
		}
		fmt.Printf("moved %d containers\n", n)
		return nil
	case "\\refresh":
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\refresh <table>")
		}
		n, err := db.RefreshColumns(fields[1])
		if err != nil {
			return err
		}
		fmt.Printf("rewrote %d containers\n", n)
		return nil
	case "\\tpch":
		scale := 0.05
		if len(fields) > 1 {
			if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
				scale = v
			}
		}
		w := workload.DefaultTPCH(scale)
		err := w.Setup(func(sql string) error {
			_, err := db.Execute(sql)
			return err
		}, db.LoadRows)
		if err != nil {
			return err
		}
		fmt.Printf("TPC-H dataset loaded at scale %.2f\n", scale)
		return nil
	}
	return fmt.Errorf("unknown command %s", fields[0])
}
