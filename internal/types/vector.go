package types

import "fmt"

// Vector is a typed column of values. Exactly one of the value slices is
// populated, selected by the physical class of Typ. Nulls, when non-nil,
// marks NULL positions; a nil Nulls slice means no value is NULL.
type Vector struct {
	Typ    Type
	Nulls  []bool
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
}

// NewVector returns an empty vector of type t with capacity hint capHint.
func NewVector(t Type, capHint int) *Vector {
	v := &Vector{Typ: t}
	switch t.Physical() {
	case Int64:
		v.Ints = make([]int64, 0, capHint)
	case Float64:
		v.Floats = make([]float64, 0, capHint)
	case Varchar:
		v.Strs = make([]string, 0, capHint)
	case Bool:
		v.Bools = make([]bool, 0, capHint)
	}
	return v
}

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.Typ.Physical() {
	case Int64:
		return len(v.Ints)
	case Float64:
		return len(v.Floats)
	case Varchar:
		return len(v.Strs)
	case Bool:
		return len(v.Bools)
	}
	return 0
}

// IsNull reports whether position i is NULL. The null bitmap may be
// shorter than the vector; positions beyond it are non-NULL.
func (v *Vector) IsNull(i int) bool {
	return v.Nulls != nil && i < len(v.Nulls) && v.Nulls[i]
}

// setNull extends the null bitmap (if needed) and marks position i NULL.
func (v *Vector) setNull(i int) {
	if v.Nulls == nil {
		v.Nulls = make([]bool, i+1)
	}
	for len(v.Nulls) <= i {
		v.Nulls = append(v.Nulls, false)
	}
	v.Nulls[i] = true
}

// Append adds a datum to the end of the vector. The datum's physical class
// must match the vector's.
func (v *Vector) Append(d Datum) {
	n := v.Len()
	switch v.Typ.Physical() {
	case Int64:
		v.Ints = append(v.Ints, d.I)
	case Float64:
		v.Floats = append(v.Floats, d.F)
	case Varchar:
		v.Strs = append(v.Strs, d.S)
	case Bool:
		v.Bools = append(v.Bools, d.B)
	}
	if d.Null {
		v.setNull(n)
	} else if v.Nulls != nil {
		for len(v.Nulls) <= n {
			v.Nulls = append(v.Nulls, false)
		}
	}
}

// Datum returns the value at position i as a Datum.
func (v *Vector) Datum(i int) Datum {
	d := Datum{K: v.Typ}
	if v.IsNull(i) {
		d.Null = true
		return d
	}
	switch v.Typ.Physical() {
	case Int64:
		d.I = v.Ints[i]
	case Float64:
		d.F = v.Floats[i]
	case Varchar:
		d.S = v.Strs[i]
	case Bool:
		d.B = v.Bools[i]
	}
	return d
}

// Gather returns a new vector containing the values at the given positions,
// in order. The copy is typed — values move slice-to-slice without Datum
// boxing — and the null bitmap is materialized only when a gathered
// position is actually NULL.
func (v *Vector) Gather(idx []int) *Vector {
	out := &Vector{Typ: v.Typ}
	switch v.Typ.Physical() {
	case Int64:
		out.Ints = make([]int64, len(idx))
		for j, i := range idx {
			out.Ints[j] = v.Ints[i]
		}
	case Float64:
		out.Floats = make([]float64, len(idx))
		for j, i := range idx {
			out.Floats[j] = v.Floats[i]
		}
	case Varchar:
		out.Strs = make([]string, len(idx))
		for j, i := range idx {
			out.Strs[j] = v.Strs[i]
		}
	case Bool:
		out.Bools = make([]bool, len(idx))
		for j, i := range idx {
			out.Bools[j] = v.Bools[i]
		}
	}
	if v.Nulls != nil {
		for j, i := range idx {
			if !v.IsNull(i) {
				continue
			}
			out.setNull(j)
			// Match the Datum-append behaviour: NULL positions store the
			// zero value, so raw-slice consumers (hashing, wire sizing)
			// see the same bytes as before.
			switch v.Typ.Physical() {
			case Int64:
				out.Ints[j] = 0
			case Float64:
				out.Floats[j] = 0
			case Varchar:
				out.Strs[j] = ""
			case Bool:
				out.Bools[j] = false
			}
		}
	}
	return out
}

// Slice returns a new vector holding positions [lo, hi).
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Typ: v.Typ}
	switch v.Typ.Physical() {
	case Int64:
		out.Ints = v.Ints[lo:hi]
	case Float64:
		out.Floats = v.Floats[lo:hi]
	case Varchar:
		out.Strs = v.Strs[lo:hi]
	case Bool:
		out.Bools = v.Bools[lo:hi]
	}
	if v.Nulls != nil && lo < len(v.Nulls) {
		// The bitmap may be shorter than the vector; positions beyond it
		// are non-NULL, so a truncated slice preserves semantics.
		end := hi
		if end > len(v.Nulls) {
			end = len(v.Nulls)
		}
		out.Nulls = v.Nulls[lo:end]
	}
	return out
}

// AppendVector appends all values of o (which must have the same physical
// class) to v.
func (v *Vector) AppendVector(o *Vector) {
	base := v.Len()
	switch v.Typ.Physical() {
	case Int64:
		v.Ints = append(v.Ints, o.Ints...)
	case Float64:
		v.Floats = append(v.Floats, o.Floats...)
	case Varchar:
		v.Strs = append(v.Strs, o.Strs...)
	case Bool:
		v.Bools = append(v.Bools, o.Bools...)
	}
	if o.Nulls != nil {
		// The bitmap may be shorter than the vector; IsNull handles it.
		for i := 0; i < o.Len(); i++ {
			if o.IsNull(i) {
				v.setNull(base + i)
			}
		}
	} else if v.Nulls != nil {
		for len(v.Nulls) < v.Len() {
			v.Nulls = append(v.Nulls, false)
		}
	}
}

// Batch is a horizontal slice of a relation: one vector per column, all the
// same length.
type Batch struct {
	Cols []*Vector
}

// NewBatch returns an empty batch with one vector per schema column.
func NewBatch(s Schema, capHint int) *Batch {
	b := &Batch{Cols: make([]*Vector, len(s))}
	for i, c := range s {
		b.Cols[i] = NewVector(c.Type, capHint)
	}
	return b
}

// NumRows returns the row count of the batch.
func (b *Batch) NumRows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// NumCols returns the column count of the batch.
func (b *Batch) NumCols() int { return len(b.Cols) }

// AppendRow adds one row of datums to the batch.
func (b *Batch) AppendRow(r Row) {
	if len(r) != len(b.Cols) {
		panic(fmt.Sprintf("types: row arity %d != batch arity %d", len(r), len(b.Cols)))
	}
	for i, d := range r {
		b.Cols[i].Append(d)
	}
}

// Row materializes row i as a Row of datums.
func (b *Batch) Row(i int) Row {
	r := make(Row, len(b.Cols))
	for j, c := range b.Cols {
		r[j] = c.Datum(i)
	}
	return r
}

// Rows materializes every row of the batch. Intended for tests and small
// result sets.
func (b *Batch) Rows() []Row {
	out := make([]Row, b.NumRows())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

// Gather returns a new batch containing the given row positions, in order.
func (b *Batch) Gather(idx []int) *Batch {
	out := &Batch{Cols: make([]*Vector, len(b.Cols))}
	for i, c := range b.Cols {
		out.Cols[i] = c.Gather(idx)
	}
	return out
}

// Slice returns a batch view of rows [lo, hi).
func (b *Batch) Slice(lo, hi int) *Batch {
	out := &Batch{Cols: make([]*Vector, len(b.Cols))}
	for i, c := range b.Cols {
		out.Cols[i] = c.Slice(lo, hi)
	}
	return out
}

// AppendBatch appends all rows of o to b (schemas must match positionally).
func (b *Batch) AppendBatch(o *Batch) {
	for i, c := range b.Cols {
		c.AppendVector(o.Cols[i])
	}
}

// BatchFromRows builds a batch from a schema and a slice of rows.
func BatchFromRows(s Schema, rows []Row) *Batch {
	b := NewBatch(s, len(rows))
	for _, r := range rows {
		b.AppendRow(r)
	}
	return b
}
