package experiments

import (
	"testing"
	"time"

	"eon/internal/core"
	"eon/internal/workload"
)

// The experiment tests run tiny configurations and assert the figure
// SHAPES the paper reports, not absolute numbers.

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig10(Fig10Options{
		Scale: 0.05, Reps: 5,
		Queries: workload.TPCHQueries()[:6],
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	cacheWins, s3Slower := 0, 0
	for _, r := range rows {
		// Sub-millisecond runtimes at this scale are noisy; "comparable"
		// means within 3x.
		if r.EonCache <= 3*r.Enterprise {
			cacheWins++
		}
		if r.EonS3 > r.EonCache {
			s3Slower++ // reading from shared storage costs more
		}
	}
	if cacheWins < 4 {
		t.Errorf("Eon in-cache should be comparable to Enterprise on most queries (got %d/6)", cacheWins)
	}
	if s3Slower < 4 {
		t.Errorf("Eon from S3 should be slower than in-cache on most queries (got %d/6)", s3Slower)
	}
}

func TestFig11aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	series, err := Fig11a(Fig11aOptions{
		Scale:           0.02,
		Window:          500 * time.Millisecond,
		Threads:         []int{8, 24},
		EonNodeCounts:   []int{3, 9},
		EnterpriseNodes: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	// Scale-out: 9-node Eon must beat 3-node Eon at high concurrency.
	eon3 := series[0].QPM[len(series[0].QPM)-1]
	eon9 := series[1].QPM[len(series[1].QPM)-1]
	if eon9 <= eon3 {
		t.Errorf("9-node Eon (%.0f qpm) should beat 3-node (%.0f qpm)", eon9, eon3)
	}
	// Elastic throughput scaling: Eon 9-node should beat Enterprise
	// 9-node (which needs all 9 segments per query).
	ent9 := series[2].QPM[len(series[2].QPM)-1]
	if eon9 <= ent9 {
		t.Errorf("Eon 9/3 (%.0f qpm) should out-throughput Enterprise 9 (%.0f qpm)", eon9, ent9)
	}
}

func TestFig11bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	series, err := Fig11b(Fig11bOptions{
		Window:        500 * time.Millisecond,
		Threads:       []int{16},
		EonNodeCounts: []int{3, 9},
		RowsPerLoad:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	lpm3 := series[0].LPM[0]
	lpm9 := series[1].LPM[0]
	if lpm9 <= lpm3 {
		t.Errorf("9-node COPY throughput (%.0f lpm) should beat 3-node (%.0f lpm)", lpm9, lpm3)
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := Fig12Options{
		Scale:   0.02,
		Threads: 20, Window: 500 * time.Millisecond, NumWindows: 6, KillWindow: 3,
	}
	opts.Mode = core.ModeEon
	eonRes, err := Fig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	eonBefore, eonAfter := eonRes.BeforeAfter()
	if eonBefore == 0 || eonAfter == 0 {
		t.Fatalf("eon trace broken: %v", eonRes.WindowCounts)
	}
	eonRetained := eonAfter / eonBefore

	opts.Mode = core.ModeEnterprise
	entRes, err := Fig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	entBefore, entAfter := entRes.BeforeAfter()
	if entBefore == 0 {
		t.Fatalf("enterprise trace broken: %v", entRes.WindowCounts)
	}
	entRetained := entAfter / entBefore

	// The paper's shape: Eon's sharding degrades smoothly (non-cliff);
	// Enterprise's buddy takeover roughly halves throughput.
	if eonRetained < 0.6 {
		t.Errorf("Eon degradation too steep: retained %.2f (windows %v)", eonRetained, eonRes.WindowCounts)
	}
	if eonRetained <= entRetained {
		t.Errorf("Eon (%.2f) should retain more throughput than Enterprise (%.2f)", eonRetained, entRetained)
	}
}

func TestElasticityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Elasticity(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewNodeServes == 0 {
		t.Error("added node serves nothing")
	}
	if res.BytesWarmed == 0 {
		t.Error("added node warmed nothing")
	}
	if res.DatasetBytes == 0 {
		t.Error("dataset accounting broken")
	}
	// The paper's point: scale-out moves the working set, not the
	// dataset (here they coincide at small scale, but warming must not
	// exceed the dataset, and the operation completes quickly).
	if res.BytesWarmed > res.DatasetBytes {
		t.Errorf("warmed %d > dataset %d", res.BytesWarmed, res.DatasetBytes)
	}
}
