package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"eon/internal/catalog"
	"eon/internal/cluster"
)

// metadataPrefix is the shared-storage namespace for catalog uploads,
// qualified by incarnation so each revived cluster writes to a distinct
// location (§3.5).
func (db *DB) metadataPrefix(node string) string {
	return fmt.Sprintf("metadata/%s/%s/", db.incarnation, node)
}

// SyncMetadata uploads each node's new catalog files (transaction logs
// and checkpoints) to shared storage, advances per-node sync intervals,
// recomputes the consensus truncation version (Figure 5) and rewrites
// cluster_info.json. In the paper this runs on a regular configurable
// interval; the simulation invokes it explicitly (and on shutdown).
func (db *DB) SyncMetadata() error {
	if db.mode != ModeEon {
		return nil
	}
	ctx := db.Context()
	for _, n := range db.Nodes() {
		if !n.Up() {
			continue
		}
		if err := db.syncNode(ctx, n); err != nil {
			return err
		}
	}
	return db.updateTruncationVersion(ctx)
}

// syncNode uploads a node's unsynced catalog files and updates its sync
// interval: checkpoints raise the lower bound, transaction logs the
// upper bound.
func (db *DB) syncNode(ctx context.Context, n *Node) error {
	p := n.catalog.Persister()
	if p == nil {
		return nil
	}
	files, err := p.ListFiles(ctx)
	if err != nil {
		return err
	}
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	iv := n.syncIv
	for _, f := range files {
		base := f.Path[strings.LastIndexByte(f.Path, '/')+1:]
		if n.syncSeen[base] {
			continue
		}
		kind, version, ok := catalog.ParseCatalogFile(base)
		if !ok {
			continue
		}
		data, err := n.fs.ReadFile(ctx, f.Path)
		if err != nil {
			return err
		}
		key := db.metadataPrefix(n.name) + base
		// db.shared already retries transient failures; a duplicate upload
		// from an earlier partially-failed sync round is success.
		if e := db.shared.Put(ctx, key, data); e != nil && !strings.Contains(e.Error(), "already exists") {
			return e
		}
		n.syncSeen[base] = true
		switch kind {
		case "txn":
			if version > iv.Upper {
				iv.Upper = version
			}
		case "ckpt":
			if version > iv.Lower {
				iv.Lower = version
			}
			if version > iv.Upper {
				iv.Upper = version
			}
		}
	}
	n.syncIv = iv
	return nil
}

// SyncInterval returns a node's current uploaded-metadata interval.
func (n *Node) SyncInterval() cluster.SyncInterval {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	return n.syncIv
}

// updateTruncationVersion computes the consensus truncation version —
// the minimum across shards of the best subscriber upload (Figure 5) —
// and persists it to cluster_info.json, the revive commit point.
func (db *DB) updateTruncationVersion(ctx context.Context) error {
	leader, err := db.anyUpNode()
	if err != nil {
		return err
	}
	snap := leader.catalog.Snapshot()

	shardSubs := map[int][]string{}
	for _, sh := range snap.Shards() {
		for _, s := range snap.SubscribersOf(sh.Index, catalog.SubActive, catalog.SubRemoving) {
			shardSubs[sh.Index] = append(shardSubs[sh.Index], s.Node)
		}
	}
	intervals := map[string]cluster.SyncInterval{}
	for _, n := range db.Nodes() {
		intervals[n.name] = n.SyncInterval()
	}
	v, ok := cluster.ComputeTruncationVersion(shardSubs, intervals)
	if !ok {
		return nil // nothing synced yet
	}
	if v < db.truncation.Load() {
		return nil // never move the durability point backwards
	}
	db.truncation.Store(v)
	return db.writeClusterInfo(ctx, v, db.cfg.LeaseDuration)
}

// writeClusterInfo rewrites cluster_info.json (delete-then-put: it is the
// one logically mutable object on shared storage). A zero lease writes an
// already-expired lease, releasing the storage for immediate revive.
func (db *DB) writeClusterInfo(ctx context.Context, truncation uint64, lease time.Duration) error {
	var nodes []string
	for _, n := range db.Nodes() {
		nodes = append(nodes, n.name)
	}
	now := db.now()
	info := &cluster.Info{
		Database:          db.cfg.Name,
		Incarnation:       db.incarnation,
		TruncationVersion: truncation,
		Nodes:             nodes,
		Timestamp:         now,
		LeaseExpiry:       now.Add(lease),
	}
	data, err := info.Marshal()
	if err != nil {
		return err
	}
	if err := db.shared.Delete(ctx, cluster.InfoFileName); err != nil && !isNotFound(err) {
		return err
	}
	return db.shared.Put(ctx, cluster.InfoFileName, data)
}

// TruncationVersion returns the current durable truncation version.
func (db *DB) TruncationVersion() uint64 { return db.truncation.Load() }

// Shutdown performs a clean stop: remaining catalog logs upload so
// shared storage has a complete record (§3.5), the truncation version
// advances to the final commit, the lease is released, and the nodes
// stop.
func (db *DB) Shutdown() error {
	if db.shutdown.Load() {
		return nil
	}
	ctx := db.Context()
	if db.mode == ModeEon {
		if err := db.SyncMetadata(); err != nil {
			return err
		}
		// Release the lease so a revive can start immediately.
		if err := db.writeClusterInfo(ctx, db.truncation.Load(), 0); err != nil {
			return err
		}
	}
	db.shutdown.Store(true)
	for _, n := range db.Nodes() {
		n.up.Store(false)
	}
	return nil
}

func isNotFound(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not found")
}
