// Package cache implements the per-node disk cache of shared-storage
// files (paper §5.2). The cache holds entire immutable data files, uses
// least-recently-used eviction, is write-through on data load (newly
// written files are likely to be queried), supports shaping policies
// ("don't use the cache for this query", "never cache table T", pinned
// partitions), and can warm itself from a peer's most-recently-used list
// when a node subscribes to a shard.
//
// Because storage files are never modified, the cache handles only add
// and drop — there is no invalidation path.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"eon/internal/obs"
	"eon/internal/parallel"
	"eon/internal/udfs"
)

// Policy directs how the cache treats a file.
type Policy uint8

// Policies.
const (
	// PolicyDefault caches the file under LRU.
	PolicyDefault Policy = iota
	// PolicyBypass serves the file without admitting it (large batch
	// historical queries must not evict dashboard working sets).
	PolicyBypass
	// PolicyPin caches the file and exempts it from eviction.
	PolicyPin
)

// Fetcher reads a file from shared storage on cache miss.
type Fetcher func(ctx context.Context, path string) ([]byte, error)

// Outcome classifies how a Get was served.
type Outcome uint8

// Get outcomes.
const (
	// OutcomeHit served from the cached file.
	OutcomeHit Outcome = iota
	// OutcomeMiss issued its own shared-storage fetch.
	OutcomeMiss
	// OutcomeCoalesced joined another caller's in-flight fetch of the
	// same path instead of issuing its own.
	OutcomeCoalesced
)

// Stats counts cache traffic.
type Stats struct {
	Hits, Misses, Evictions int64
	// CoalescedFetches counts misses that piggybacked on another
	// caller's in-flight fetch of the same path (single-flight).
	CoalescedFetches int64
	BytesCached      int64
	Files            int
}

type entry struct {
	path   string
	size   int64
	pinned bool
	elem   *list.Element
}

// flight is one in-progress shared-storage fetch that concurrent misses
// on the same path share.
type flight struct {
	done chan struct{} // closed once data/err are set
	data []byte
	err  error
}

// Cache is one node's file cache. The file bytes live on the node's local
// filesystem under dir; the Cache keeps the index and LRU order. Safe for
// concurrent use.
type Cache struct {
	fs  udfs.FileSystem
	dir string

	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[string]*entry
	lru      *list.List // front = most recently used
	policy   func(path string) Policy

	// pending holds byte reservations for admissions whose file write is
	// still in progress: the space is claimed (so eviction accounting is
	// correct) but the entry is not yet readable. Readers treat pending
	// paths as misses; the single-flight layer keeps them from stampeding
	// shared storage.
	pending map[string]int64
	// inflight tracks one shared fetch per missing path (single-flight).
	inflight map[string]*flight

	// Traffic counters are obs metrics so a node can Register them into
	// its registry; they are incremented under c.mu (the atomics cost
	// nothing extra and buy registry visibility).
	hits, misses, evictions, coalesced obs.Counter

	// onEvict, when set, is called once per evicted file, after c.mu is
	// released (it may take its own locks, e.g. a Data Collector emit).
	onEvict func(path string, size int64)
}

// New returns a cache of the given byte capacity backed by dir on fs.
func New(fs udfs.FileSystem, dir string, capacity int64) *Cache {
	return &Cache{
		fs:       fs,
		dir:      dir,
		capacity: capacity,
		entries:  map[string]*entry{},
		lru:      list.New(),
		pending:  map[string]int64{},
		inflight: map[string]*flight{},
	}
}

// SetPolicy installs the shaping policy; nil restores the default.
func (c *Cache) SetPolicy(p func(path string) Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
}

func (c *Cache) policyFor(path string) Policy {
	if c.policy == nil {
		return PolicyDefault
	}
	return c.policy(path)
}

// SetEvictHook installs a callback invoked for every evicted file; nil
// removes it. The hook runs outside the cache lock.
func (c *Cache) SetEvictHook(fn func(path string, size int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvict = fn
}

// Entry describes one cached file for monitoring (v_monitor.depot_storage).
type Entry struct {
	Path   string
	Size   int64
	Pinned bool
}

// Entries lists the cached files in LRU order (most recently used
// first). It copies the index under the cache lock without touching
// file data, so it is safe to call from a monitoring scan against
// concurrent traffic.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.entries))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, Entry{Path: e.path, Size: e.size, Pinned: e.pinned})
	}
	return out
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// local returns the on-disk path for a cached file.
func (c *Cache) local(path string) string { return c.dir + "/" + path }

// Get returns the file contents, reading through the cache. bypass forces
// PolicyBypass for this call regardless of the shaping policy ("don't use
// the cache for this query").
func (c *Cache) Get(ctx context.Context, path string, fetch Fetcher, bypass bool) ([]byte, error) {
	data, _, err := c.GetTracked(ctx, path, fetch, bypass)
	return data, err
}

// GetTracked is Get plus the outcome classification (hit, miss,
// coalesced miss), which scan statistics record per query.
//
// Concurrent misses on one path are single-flighted: the first caller
// issues the shared-storage fetch; later callers wait on it and share
// the result, so N concurrent cold scans of a file cost exactly one
// fetch. If the leading fetch fails, each waiter falls back to its own
// fetch — the leader's failure may be its own cancellation rather than
// the file's.
func (c *Cache) GetTracked(ctx context.Context, path string, fetch Fetcher, bypass bool) ([]byte, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[path]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits.Inc()
		c.mu.Unlock()
		data, err := c.fs.ReadFile(ctx, c.local(path))
		if err == nil {
			return data, OutcomeHit, nil
		}
		// The entry raced with a concurrent eviction; fall through to a
		// shared-storage fetch (not counted as a second miss).
		c.mu.Lock()
		return c.getMiss(ctx, path, fetch, bypass, false)
	}
	c.misses.Inc()
	return c.getMiss(ctx, path, fetch, bypass, true)
}

// getMiss resolves a cache miss with single-flight coalescing. Called
// with c.mu held; returns with it released. coalesce is false on the
// hit-then-read-failed path, which must not wait on a flight it may
// itself have led.
func (c *Cache) getMiss(ctx context.Context, path string, fetch Fetcher, bypass bool, coalesce bool) ([]byte, Outcome, error) {
	if f, ok := c.inflight[path]; ok && coalesce {
		c.coalesced.Inc()
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, OutcomeCoalesced, ctx.Err()
		}
		if f.err == nil {
			return f.data, OutcomeCoalesced, nil
		}
		// The leader failed (possibly just canceled); fetch independently.
		data, err := fetch(ctx, path)
		if err != nil {
			return nil, OutcomeCoalesced, err
		}
		if !bypass && c.policyFor(path) != PolicyBypass {
			_ = c.admit(ctx, path, data)
		}
		return data, OutcomeCoalesced, nil
	}

	var f *flight
	if coalesce {
		f = &flight{done: make(chan struct{})}
		c.inflight[path] = f
	}
	c.mu.Unlock()

	data, err := fetch(ctx, path)
	if err == nil && !bypass && c.policyFor(path) != PolicyBypass {
		// Admit before publishing the flight result so a follower's next
		// Get finds the entry instead of refetching. Admission failure
		// must not fail the read.
		_ = c.admit(ctx, path, data)
	}
	if f != nil {
		f.data, f.err = data, err
		c.mu.Lock()
		delete(c.inflight, path)
		c.mu.Unlock()
		close(f.done)
	}
	if err != nil {
		return nil, OutcomeMiss, err
	}
	return data, OutcomeMiss, nil
}

// Put write-through inserts a newly written file (data load and mergeout
// put their outputs in the cache before uploading, §5.2).
func (c *Cache) Put(ctx context.Context, path string, data []byte) error {
	if c.policyFor(path) == PolicyBypass {
		return nil
	}
	return c.admit(ctx, path, data)
}

// admit stores the file and evicts LRU entries to fit. Files larger than
// the whole cache are not admitted.
//
// The index entry is published only after the file is durably written:
// until then the path holds a pending byte reservation (visible to
// eviction accounting, invisible to readers), so a concurrent Get never
// sees an entry whose backing file does not exist yet and never takes
// the read-fail-refetch path against a half-admitted file.
func (c *Cache) admit(ctx context.Context, path string, data []byte) error {
	size := int64(len(data))
	if size > c.capacity {
		return fmt.Errorf("cache: file %s (%d bytes) exceeds cache capacity %d", path, size, c.capacity)
	}
	c.mu.Lock()
	if _, ok := c.entries[path]; ok {
		c.mu.Unlock()
		return nil // already cached; files are immutable
	}
	if _, ok := c.pending[path]; ok {
		c.mu.Unlock()
		return nil // another caller is admitting the same immutable file
	}
	// Evict from the LRU tail, skipping pinned entries. Pending
	// reservations are not in the LRU, so they cannot be evicted.
	var evict []Entry
	need := c.used + size - c.capacity
	for el := c.lru.Back(); el != nil && need > 0; el = el.Prev() {
		e := el.Value.(*entry)
		if e.pinned {
			continue
		}
		evict = append(evict, Entry{Path: e.path, Size: e.size})
		need -= e.size
	}
	if need > 0 {
		c.mu.Unlock()
		return fmt.Errorf("cache: cannot fit %s: %d bytes pinned", path, c.used)
	}
	for _, ev := range evict {
		e := c.entries[ev.Path]
		c.lru.Remove(e.elem)
		delete(c.entries, ev.Path)
		c.used -= e.size
		c.evictions.Inc()
	}
	c.pending[path] = size
	c.used += size
	onEvict := c.onEvict
	c.mu.Unlock()

	for _, ev := range evict {
		_ = c.fs.Remove(ctx, c.local(ev.Path))
		if onEvict != nil {
			onEvict(ev.Path, ev.Size)
		}
	}
	err := c.fs.WriteFile(ctx, c.local(path), data)

	c.mu.Lock()
	if _, ok := c.pending[path]; !ok {
		// The reservation was wiped by Clear while the write was in
		// flight; the admission is abandoned (Clear already reset the
		// byte accounting).
		c.mu.Unlock()
		if err == nil {
			_ = c.fs.Remove(ctx, c.local(path))
		}
		return err
	}
	delete(c.pending, path)
	if err != nil {
		c.used -= size
		c.mu.Unlock()
		return err
	}
	e := &entry{path: path, size: size, pinned: c.policyFor(path) == PolicyPin}
	e.elem = c.lru.PushFront(e)
	c.entries[path] = e
	c.mu.Unlock()
	return nil
}

// Contains reports whether the file is cached (without touching LRU
// order).
func (c *Cache) Contains(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[path]
	return ok
}

// Drop removes a file from the cache (on storage file delete).
func (c *Cache) Drop(ctx context.Context, path string) {
	c.mu.Lock()
	e, ok := c.entries[path]
	if ok {
		c.lru.Remove(e.elem)
		delete(c.entries, path)
		c.used -= e.size
	}
	c.mu.Unlock()
	if ok {
		_ = c.fs.Remove(ctx, c.local(path))
	}
}

// Clear empties the cache entirely.
func (c *Cache) Clear(ctx context.Context) {
	c.mu.Lock()
	paths := make([]string, 0, len(c.entries))
	for p := range c.entries {
		paths = append(paths, p)
	}
	c.entries = map[string]*entry{}
	c.lru.Init()
	c.used = 0
	// Abandon in-flight admissions: their completion sees the missing
	// reservation and discards the write instead of resurrecting state.
	c.pending = map[string]int64{}
	c.mu.Unlock()
	for _, p := range paths {
		_ = c.fs.Remove(ctx, c.local(p))
	}
}

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits.Value(), Misses: c.misses.Value(), Evictions: c.evictions.Value(),
		CoalescedFetches: c.coalesced.Value(),
		BytesCached:      c.used, Files: len(c.entries),
	}
}

// Register publishes the cache's counters and derived occupancy gauges
// into reg under prefix (e.g. "node.n1.cache.").
func (c *Cache) Register(reg *obs.Registry, prefix string) {
	reg.RegisterCounter(prefix+"hits", &c.hits)
	reg.RegisterCounter(prefix+"misses", &c.misses)
	reg.RegisterCounter(prefix+"evictions", &c.evictions)
	reg.RegisterCounter(prefix+"coalesced_fetches", &c.coalesced)
	reg.GaugeFunc(prefix+"bytes_cached", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.used
	})
	reg.GaugeFunc(prefix+"files", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.entries))
	})
}

// MostRecentlyUsed returns cached file paths in MRU order whose summed
// size fits the byte budget — the list a warming peer requests (§5.2:
// "the subscriber supplies the peer with a capacity target and the peer
// supplies a list of most-recently-used files that fit within the
// budget").
func (c *Cache) MostRecentlyUsed(budget int64) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.size > budget {
			continue
		}
		out = append(out, e.path)
		budget -= e.size
	}
	return out
}

// ReadCached returns the bytes of a cached file without counting a hit or
// miss; used to serve peer warming transfers.
func (c *Cache) ReadCached(ctx context.Context, path string) ([]byte, bool) {
	c.mu.Lock()
	_, ok := c.entries[path]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := c.fs.ReadFile(ctx, c.local(path))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Warm fetches the listed files into the cache (most recently used
// first), skipping files that fail to fetch, and returns the number of
// files admitted. Fetches fan out across at most concurrency workers;
// admissions happen in reverse list order regardless, so the peer's MRU
// file still ends up most recent here and the resulting LRU order is
// deterministic. The fetched set is bounded by the warm budget the MRU
// list was built under, so buffering it before admission is safe.
func (c *Cache) Warm(ctx context.Context, paths []string, fetch Fetcher, concurrency int) int {
	if concurrency < 1 {
		concurrency = 1
	}
	fetched := make([][]byte, len(paths))
	_ = parallel.ForEach(ctx, len(paths), concurrency, func(ctx context.Context, _, i int) error {
		if c.Contains(paths[i]) {
			return nil // admitted lazily below
		}
		data, err := fetch(ctx, paths[i])
		if err != nil {
			return nil // skip this file; warm the rest
		}
		fetched[i] = data
		return nil
	})
	warmed := 0
	// Admit in reverse so the peer's MRU file ends up most recent here.
	for i := len(paths) - 1; i >= 0; i-- {
		if c.Contains(paths[i]) {
			warmed++
			continue
		}
		if fetched[i] == nil {
			continue
		}
		if err := c.admit(ctx, paths[i], fetched[i]); err == nil {
			warmed++
		}
	}
	return warmed
}
