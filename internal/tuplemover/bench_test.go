package tuplemover

import (
	"testing"

	"eon/internal/catalog"
)

// simState drives a synthetic load/merge loop and reports total rows
// written by mergeout (the write-amplification proxy).
type simState struct {
	rows    []int64
	nextOID catalog.OID
	written int64
}

func (s *simState) containers() []*catalog.StorageContainer {
	out := make([]*catalog.StorageContainer, len(s.rows))
	for i, r := range s.rows {
		out[i] = &catalog.StorageContainer{OID: s.nextOID + catalog.OID(i), RowCount: r}
	}
	return out
}

func (s *simState) apply(jobs []Job) {
	drop := map[catalog.OID]bool{}
	var merged []int64
	for _, j := range jobs {
		var rows int64
		for _, sc := range j.Containers {
			drop[sc.OID] = true
			rows += sc.RowCount
		}
		s.written += rows
		merged = append(merged, rows)
	}
	var kept []int64
	for i, r := range s.rows {
		if !drop[s.nextOID+catalog.OID(i)] {
			kept = append(kept, r)
		}
	}
	s.nextOID += catalog.OID(len(s.rows))
	s.rows = append(kept, merged...)
}

// runSim loads `loads` single-row containers, running policy-selected
// mergeout to quiescence after each, and returns rows written.
func runSim(loads int, policy Policy) int64 {
	s := &simState{nextOID: 1}
	for i := 0; i < loads; i++ {
		s.rows = append(s.rows, 1)
		for {
			jobs := SelectJobs(s.containers(), nil, policy)
			if len(jobs) == 0 {
				break
			}
			s.apply(jobs)
		}
	}
	return s.written
}

// naivePolicy merges everything into one container whenever more than
// one exists — the strawman the strata algorithm avoids.
func naiveMergeAll(loads int) int64 {
	s := &simState{nextOID: 1}
	for i := 0; i < loads; i++ {
		s.rows = append(s.rows, 1)
		if len(s.rows) > 1 {
			var total int64
			for _, r := range s.rows {
				total += r
			}
			s.written += total
			s.nextOID += catalog.OID(len(s.rows))
			s.rows = []int64{total}
		}
	}
	return s.written
}

// BenchmarkStrataVsNaive reports the write amplification (rows written
// per row loaded) of tiered-strata mergeout against naive
// merge-everything. The paper's strata algorithm merges "each tuple a
// small fixed number of times" (§2.3); naive merging is quadratic.
func BenchmarkStrataVsNaive(b *testing.B) {
	const loads = 256
	b.Run("strata", func(b *testing.B) {
		var written int64
		for i := 0; i < b.N; i++ {
			written = runSim(loads, Policy{StrataBase: 8, FanIn: 8, MaxFanIn: 8})
		}
		b.ReportMetric(float64(written)/float64(loads), "rows_written_per_row")
	})
	b.Run("naive", func(b *testing.B) {
		var written int64
		for i := 0; i < b.N; i++ {
			written = naiveMergeAll(loads)
		}
		b.ReportMetric(float64(written)/float64(loads), "rows_written_per_row")
	})
}

func TestStrataWriteAmplificationBeatsNaive(t *testing.T) {
	const loads = 256
	strata := runSim(loads, Policy{StrataBase: 8, FanIn: 8, MaxFanIn: 8})
	naive := naiveMergeAll(loads)
	if strata*4 > naive {
		t.Errorf("strata wrote %d rows, naive %d; expected >4x reduction", strata, naive)
	}
}
