package core

import (
	"strings"
	"testing"

	"eon/internal/catalog"
	"eon/internal/types"
)

// setupLAP creates a table with both a regular superprojection and a
// live aggregate projection, then loads rows in several batches.
func setupLAP(t *testing.T, db *DB) {
	t.Helper()
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE clicks (region VARCHAR, hits INTEGER, amount FLOAT)`)
	mustExec(t, s, `CREATE PROJECTION clicks_super AS SELECT * FROM clicks ORDER BY region SEGMENTED BY HASH(region) ALL NODES`)
	mustExec(t, s, `CREATE PROJECTION clicks_agg AS SELECT region, COUNT(*) AS n, SUM(hits) AS total_hits, MIN(amount) AS lo, MAX(amount) AS hi FROM clicks GROUP BY region`)

	schema := types.Schema{
		{Name: "region", Type: types.Varchar},
		{Name: "hits", Type: types.Int64},
		{Name: "amount", Type: types.Float64},
	}
	regions := []string{"east", "west", "north"}
	for load := 0; load < 4; load++ {
		b := types.NewBatch(schema, 30)
		for i := 0; i < 30; i++ {
			b.AppendRow(types.Row{
				types.NewString(regions[i%3]),
				types.NewInt(int64(i + load)),
				types.NewFloat(float64(i*load + 1)),
			})
		}
		if err := db.LoadRows("clicks", b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLiveAggProjectionCreated(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupLAP(t, db)
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	lap, ok := snap.ProjectionByName("clicks_agg")
	if !ok || !lap.IsLiveAggregate() {
		t.Fatal("live aggregate projection missing")
	}
	if len(lap.LiveAggs) != 4 || len(lap.LiveSchema) != 5 {
		t.Errorf("lap = %+v", lap)
	}
	// Segmented and sorted by the group column.
	if len(lap.SegmentCols) != 1 || !strings.EqualFold(lap.SegmentCols[0], "region") {
		t.Errorf("segmentation = %v", lap.SegmentCols)
	}
	// Containers exist for the projection (partials were maintained at
	// load).
	if len(snap.ContainersOf(lap.OID, catalog.GlobalShard)) == 0 {
		t.Error("no live aggregate containers written")
	}
}

func TestLiveAggAnswersMatchBase(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 3, 3)
			setupLAP(t, db)
			s := db.NewSession()
			q := `SELECT region, COUNT(*) AS n, SUM(hits) AS th, MIN(amount) AS lo, MAX(amount) AS hi
				FROM clicks GROUP BY region ORDER BY region`
			res := mustQuery(t, s, q)
			if res.NumRows() != 3 {
				t.Fatalf("rows = %v", res.Rows())
			}
			// Reference from raw rows via a query that cannot use the LAP
			// (AVG is not maintained, forcing the base projection).
			ref := mustQuery(t, s, `SELECT region, COUNT(*) AS n, SUM(hits) AS th, AVG(amount) AS mean
				FROM clicks GROUP BY region ORDER BY region`)
			for i := 0; i < 3; i++ {
				a, b := res.Row(t, i), ref.Row(t, i)
				if a[0].S != b[0].S || a[1].I != b[1].I || a[2].I != b[2].I {
					t.Errorf("row %d: lap %v vs base %v", i, a, b)
				}
			}
		})
	}
}

func TestLiveAggPlanUsesProjection(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupLAP(t, db)
	// Count rows scanned: the LAP holds at most
	// groups x loads x shards rows, far fewer than 120 base rows. Verify
	// via the projection containers' row counts.
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	lap, _ := snap.ProjectionByName("clicks_agg")
	var lapRows int64
	for _, sc := range snap.ContainersOf(lap.OID, catalog.GlobalShard) {
		lapRows += sc.RowCount
	}
	if lapRows == 0 || lapRows >= 120 {
		t.Errorf("lap rows = %d, want far fewer than the 120 base rows", lapRows)
	}
	// And the query actually works with predicate on group col.
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT region, SUM(hits) AS th FROM clicks WHERE region = 'east' GROUP BY region`)
	if res.NumRows() != 1 || res.Row(t, 0)[0].S != "east" {
		t.Errorf("filtered lap query = %v", res.Rows())
	}
}

func TestLiveAggMergeoutFoldsGroups(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupLAP(t, db)
	s := db.NewSession()
	before := mustQuery(t, s, `SELECT region, COUNT(*) AS n, SUM(hits) AS th FROM clicks GROUP BY region ORDER BY region`).Rows()

	// Force compaction (several loads produced several partial
	// containers per shard).
	if _, err := db.RunMergeout(); err != nil {
		t.Fatal(err)
	}
	after := mustQuery(t, s, `SELECT region, COUNT(*) AS n, SUM(hits) AS th FROM clicks GROUP BY region ORDER BY region`).Rows()
	if len(before) != len(after) {
		t.Fatalf("group counts changed: %v vs %v", before, after)
	}
	for i := range before {
		if before[i].String() != after[i].String() {
			t.Errorf("group %d changed across mergeout: %v vs %v", i, before[i], after[i])
		}
	}
}

func TestLiveAggRejectsDML(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupLAP(t, db)
	s := db.NewSession()
	if _, err := s.Execute(`DELETE FROM clicks WHERE hits > 5`); err == nil {
		t.Error("DELETE must be rejected on tables with live aggregates (§2.1)")
	}
	if _, err := s.Execute(`UPDATE clicks SET hits = 0 WHERE region = 'east'`); err == nil {
		t.Error("UPDATE must be rejected on tables with live aggregates (§2.1)")
	}
	// Loads continue to work.
	mustExec(t, s, `INSERT INTO clicks VALUES ('south', 5, 9.5)`)
	res := mustQuery(t, s, `SELECT region, COUNT(*) AS n FROM clicks GROUP BY region ORDER BY region`)
	if res.NumRows() != 4 {
		t.Errorf("rows = %v", res.Rows())
	}
}

func TestLiveAggNonMatchingQueriesFallBack(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupLAP(t, db)
	s := db.NewSession()
	// AVG is not maintained: must fall back to the base projection.
	res := mustQuery(t, s, `SELECT region, AVG(hits) AS m FROM clicks GROUP BY region ORDER BY region`)
	if res.NumRows() != 3 {
		t.Errorf("fallback rows = %v", res.Rows())
	}
	// Predicate on a non-group column: must fall back.
	res = mustQuery(t, s, `SELECT region, COUNT(*) AS n FROM clicks WHERE hits > 100 GROUP BY region`)
	for _, r := range res.Rows() {
		if r[1].I < 0 {
			t.Errorf("row %v", r)
		}
	}
	// Different grouping: must fall back.
	res = mustQuery(t, s, `SELECT hits, COUNT(*) AS n FROM clicks GROUP BY hits ORDER BY hits LIMIT 3`)
	if res.NumRows() == 0 {
		t.Error("group-by-hits should work via base projection")
	}
}

func TestLiveAggValidation(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (k VARCHAR, v INTEGER)`)
	bad := []string{
		`CREATE PROJECTION p1 AS SELECT SUM(v) AS s FROM t`,                                   // no group column
		`CREATE PROJECTION p2 AS SELECT k, SUM(nosuch) AS s FROM t`,                           // unknown column
		`CREATE PROJECTION p3 AS SELECT k, SUM(k) AS s FROM t`,                                // sum of varchar
		`CREATE PROJECTION p4 AS SELECT k, SUM(v) AS s FROM t GROUP BY v`,                     // group mismatch
		`CREATE PROJECTION p5 AS SELECT k, SUM(v) AS s FROM t ORDER BY v`,                     // sort not a group col
		`CREATE PROJECTION p6 AS SELECT k, SUM(v) AS s FROM t SEGMENTED BY HASH(v) ALL NODES`, // seg not group col
	}
	for _, q := range bad {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("%q should be rejected", q)
		}
	}
	// Valid forms.
	mustExec(t, s, `CREATE PROJECTION ok1 AS SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k`)
	mustExec(t, s, `CREATE TABLE t2 (k VARCHAR, v INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION ok2 AS SELECT k, MIN(v) AS lo, MAX(v) AS hi FROM t2`)
}

func TestLiveAggSurvivesNodeDownAndRevive(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupLAP(t, db)
	db.KillNode("node2")
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT region, SUM(hits) AS th FROM clicks GROUP BY region ORDER BY region`)
	if res.NumRows() != 3 {
		t.Errorf("lap query with node down = %v", res.Rows())
	}
}
