package objstore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMemPutGet(t *testing.T) {
	ctx := context.Background()
	m := NewMem()
	if err := m.Put(ctx, "a/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(ctx, "a/b")
	if err != nil || string(got) != "hello" {
		t.Fatalf("get = %q, %v", got, err)
	}
}

func TestMemImmutable(t *testing.T) {
	ctx := context.Background()
	m := NewMem()
	if err := m.Put(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	err := m.Put(ctx, "k", []byte("v2"))
	if !errors.Is(err, ErrExists) {
		t.Errorf("overwrite should fail with ErrExists, got %v", err)
	}
}

func TestMemGetNotFound(t *testing.T) {
	_, err := NewMem().Get(context.Background(), "nope")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestMemGetCopiesData(t *testing.T) {
	ctx := context.Background()
	m := NewMem()
	src := []byte("abc")
	m.Put(ctx, "k", src)
	src[0] = 'z' // caller mutation must not affect stored copy
	got, _ := m.Get(ctx, "k")
	if string(got) != "abc" {
		t.Errorf("stored data mutated: %q", got)
	}
	got[0] = 'q'
	got2, _ := m.Get(ctx, "k")
	if string(got2) != "abc" {
		t.Errorf("returned data aliases store: %q", got2)
	}
}

func TestMemGetRange(t *testing.T) {
	ctx := context.Background()
	m := NewMem()
	m.Put(ctx, "k", []byte("0123456789"))
	got, err := m.GetRange(ctx, "k", 3, 4)
	if err != nil || string(got) != "3456" {
		t.Fatalf("range = %q, %v", got, err)
	}
	got, err = m.GetRange(ctx, "k", 7, -1)
	if err != nil || string(got) != "789" {
		t.Fatalf("range to EOF = %q, %v", got, err)
	}
	if _, err := m.GetRange(ctx, "k", 99, 1); err == nil {
		t.Error("out-of-bounds range should fail")
	}
}

func TestMemListPrefix(t *testing.T) {
	ctx := context.Background()
	m := NewMem()
	m.Put(ctx, "data/1", []byte("x"))
	m.Put(ctx, "data/2", []byte("xy"))
	m.Put(ctx, "meta/1", []byte("z"))
	infos, err := m.List(ctx, "data/")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	if infos[0].Key != "data/1" || infos[1].Size != 2 {
		t.Errorf("list contents = %v", infos)
	}
	all, _ := m.List(ctx, "")
	if len(all) != 3 {
		t.Errorf("list all = %d", len(all))
	}
}

func TestMemDeleteIdempotent(t *testing.T) {
	ctx := context.Background()
	m := NewMem()
	m.Put(ctx, "k", []byte("v"))
	if err := m.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(ctx, "k"); err != nil {
		t.Errorf("second delete should be nil, got %v", err)
	}
	if _, err := m.Get(ctx, "k"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted object should be gone")
	}
}

func TestMemAccounting(t *testing.T) {
	ctx := context.Background()
	m := NewMem()
	m.Put(ctx, "a", make([]byte, 10))
	m.Put(ctx, "b", make([]byte, 5))
	if m.Len() != 2 || m.TotalBytes() != 15 {
		t.Errorf("len=%d bytes=%d", m.Len(), m.TotalBytes())
	}
}

func TestExistsViaList(t *testing.T) {
	ctx := context.Background()
	m := NewMem()
	m.Put(ctx, "abc", []byte("v"))
	m.Put(ctx, "abcd", []byte("v"))
	ok, err := Exists(ctx, m, "abc")
	if err != nil || !ok {
		t.Error("abc should exist")
	}
	ok, _ = Exists(ctx, m, "ab")
	if ok {
		t.Error("prefix-only match must not count as existence")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMem()
	if err := m.Put(ctx, "k", []byte("v")); err == nil {
		t.Error("canceled context should fail")
	}
}

func TestSimStats(t *testing.T) {
	ctx := context.Background()
	s := NewSim(NewMem(), SimConfig{})
	s.Put(ctx, "k", []byte("hello"))
	s.Get(ctx, "k")
	s.List(ctx, "")
	s.Delete(ctx, "k")
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Lists != 1 || st.Deletes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesWritten != 5 || st.BytesRead != 5 {
		t.Errorf("bytes = %+v", st)
	}
	s.ResetStats()
	if s.Stats().Puts != 0 {
		t.Error("reset failed")
	}
}

func TestSimLatency(t *testing.T) {
	ctx := context.Background()
	s := NewSim(NewMem(), SimConfig{GetLatency: 20 * time.Millisecond})
	s.Put(ctx, "k", []byte("v"))
	start := time.Now()
	s.Get(ctx, "k")
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("get should take ~20ms, took %v", elapsed)
	}
}

func TestSimBandwidth(t *testing.T) {
	ctx := context.Background()
	s := NewSim(NewMem(), SimConfig{BytesPerSecond: 1 << 20}) // 1 MiB/s
	data := make([]byte, 1<<18)                               // 256 KiB -> ~250ms
	start := time.Now()
	s.Put(ctx, "k", data)
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("bandwidth-limited put took only %v", elapsed)
	}
}

func TestSimFailureInjection(t *testing.T) {
	ctx := context.Background()
	s := NewSim(NewMem(), SimConfig{FailureRate: 1.0, Seed: 42})
	err := s.Put(ctx, "k", []byte("v"))
	if !errors.Is(err, ErrTransient) {
		t.Errorf("want ErrTransient, got %v", err)
	}
	if s.Stats().Failed != 1 {
		t.Error("failure not counted")
	}
}

func TestSimThrottle(t *testing.T) {
	ctx := context.Background()
	s := NewSim(NewMem(), SimConfig{ThrottleConcurrency: 1, GetLatency: 50 * time.Millisecond})
	s.Put(ctx, "k", []byte("v"))

	var wg sync.WaitGroup
	var throttled int64
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Get(ctx, "k"); errors.Is(err, ErrThrottled) {
				mu.Lock()
				throttled++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if throttled == 0 {
		t.Error("expected some throttled requests")
	}
}

func TestWithRetrySucceedsAfterTransient(t *testing.T) {
	calls := 0
	err := WithRetry(context.Background(), 5, time.Millisecond, func() error {
		calls++
		if calls < 3 {
			return ErrTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestWithRetryGivesUpOnPermanent(t *testing.T) {
	calls := 0
	err := WithRetry(context.Background(), 5, time.Millisecond, func() error {
		calls++
		return ErrNotFound
	})
	if !errors.Is(err, ErrNotFound) || calls != 1 {
		t.Errorf("permanent error should not retry: err=%v calls=%d", err, calls)
	}
}

func TestWithRetryExhausts(t *testing.T) {
	err := WithRetry(context.Background(), 3, time.Microsecond, func() error {
		return ErrThrottled
	})
	if !errors.Is(err, ErrThrottled) {
		t.Errorf("want ErrThrottled after exhaustion, got %v", err)
	}
}

func TestWithRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := WithRetry(ctx, 10, time.Hour, func() error { return ErrTransient })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestRequestCost(t *testing.T) {
	st := Stats{Gets: 1000, Puts: 100}
	c := DefaultCosts()
	cost := st.RequestCostUSD(c)
	want := 1000*c.PerGet + 100*c.PerPut
	if cost != want {
		t.Errorf("cost = %v, want %v", cost, want)
	}
}

func TestSimPreservesImmutability(t *testing.T) {
	ctx := context.Background()
	s := NewSim(NewMem(), SimConfig{})
	s.Put(ctx, "k", []byte("v"))
	if err := s.Put(ctx, "k", []byte("v2")); !errors.Is(err, ErrExists) {
		t.Errorf("sim should pass through ErrExists, got %v", err)
	}
}
