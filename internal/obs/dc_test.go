package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestDCRingEmitSnapshot(t *testing.T) {
	dc := NewDataCollector(DCPolicy{MaxRows: 64, MaxBytes: 1 << 20})
	r := dc.Ring(DCRingDef{Name: "fetches", ACol: "path", BCol: "outcome", VCols: []string{"bytes", "wait_ns"}})
	for i := 0; i < 10; i++ {
		r.Emit(DCEvent{Node: "n1", A: fmt.Sprintf("f%d", i), B: "hit", V1: int64(i), V2: int64(i * 10)})
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("retained %d events, want 10", len(evs))
	}
	// Oldest first, payloads intact.
	seen := map[string]bool{}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNS < evs[i-1].TimeNS {
			t.Fatalf("snapshot not time-ordered at %d", i)
		}
	}
	for _, e := range evs {
		if e.Node != "n1" || e.B != "hit" || e.V2 != e.V1*10 {
			t.Fatalf("event corrupted: %+v", e)
		}
		seen[e.A] = true
	}
	if len(seen) != 10 {
		t.Fatalf("distinct payloads = %d, want 10", len(seen))
	}
	st := r.Stats()
	if st.Emitted != 10 || st.Dropped != 0 || st.Retained != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDCRingRowRetention(t *testing.T) {
	dc := NewDataCollector(DCPolicy{MaxRows: 16, MaxBytes: 1 << 20})
	r := dc.Ring(DCRingDef{Name: "r"})
	// Same node => same shard => capacity is MaxRows/dcShardCount slots.
	for i := 0; i < 100; i++ {
		r.Emit(DCEvent{Node: "n1", V1: int64(i)})
	}
	evs := r.Snapshot()
	if len(evs) == 0 || len(evs) > 16 {
		t.Fatalf("retained %d events, want (0, 16]", len(evs))
	}
	// The newest events survive.
	if got := evs[len(evs)-1].V1; got != 99 {
		t.Fatalf("newest retained V1 = %d, want 99", got)
	}
	if st := r.Stats(); st.Dropped == 0 || st.Emitted != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDCRingByteRetention(t *testing.T) {
	// Tight byte budget: ~4 large events fit per shard.
	dc := NewDataCollector(DCPolicy{MaxRows: 1024, MaxBytes: 4096})
	r := dc.Ring(DCRingDef{Name: "r"})
	big := make([]byte, 200)
	for i := 0; i < 50; i++ {
		r.Emit(DCEvent{Node: "n1", A: string(big), V1: int64(i)})
	}
	st := r.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("retained bytes %d exceed budget 4096", st.Bytes)
	}
	evs := r.Snapshot()
	if len(evs) == 0 {
		t.Fatal("byte expiry dropped everything including the newest event")
	}
	if got := evs[len(evs)-1].V1; got != 49 {
		t.Fatalf("newest retained V1 = %d, want 49", got)
	}
}

func TestDCRingConcurrentEmit(t *testing.T) {
	dc := NewDataCollector(DCPolicy{MaxRows: 256, MaxBytes: 1 << 20})
	r := dc.Ring(DCRingDef{Name: "conc"})
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := fmt.Sprintf("node%d", w)
			for i := 0; i < per; i++ {
				r.Emit(DCEvent{Node: node, V1: int64(i)})
				if i%50 == 0 {
					_ = r.Snapshot() // readers race writers by design
				}
			}
		}(w)
	}
	wg.Wait()
	st := r.Stats()
	if st.Emitted != workers*per {
		t.Fatalf("emitted = %d, want %d", st.Emitted, workers*per)
	}
	evs := r.Snapshot()
	if len(evs) == 0 || len(evs) > 256 {
		t.Fatalf("retained %d, want (0, 256]", len(evs))
	}
	for _, e := range evs {
		if e.V1 < 0 || e.V1 >= per {
			t.Fatalf("torn event: %+v", e)
		}
	}
}

func TestDCNilSafety(t *testing.T) {
	var dc *DataCollector
	if dc.Ring(DCRingDef{Name: "x"}) != nil {
		t.Fatal("nil collector returned a ring")
	}
	var r *DCRing
	r.Emit(DCEvent{Node: "n"}) // must not panic
	if r.Snapshot() != nil || r.Stats().Emitted != 0 {
		t.Fatal("nil ring not inert")
	}
	if dc.Lookup("x") != nil || dc.Rings() != nil {
		t.Fatal("nil collector lookup not inert")
	}
}

func TestDCRingGetOrCreate(t *testing.T) {
	dc := NewDataCollector(DCPolicy{})
	a := dc.Ring(DCRingDef{Name: "same"})
	b := dc.Ring(DCRingDef{Name: "same"})
	if a != b {
		t.Fatal("Ring created a duplicate for the same name")
	}
	if dc.Lookup("same") != a {
		t.Fatal("Lookup missed the ring")
	}
	dc.Ring(DCRingDef{Name: "another"})
	rings := dc.Rings()
	if len(rings) != 2 || rings[0].Name() != "another" || rings[1].Name() != "same" {
		t.Fatalf("Rings() = %v", rings)
	}
	if dc.Policy().MaxRows != 1024 || dc.Policy().MaxBytes != 1<<20 {
		t.Fatalf("defaults not applied: %+v", dc.Policy())
	}
}
