// Package shard implements the sharding mechanism's control-plane rules
// (paper §3): the subscription state machine (Figure 4), rebalance
// planning that keeps every shard fault tolerant and every subcluster
// self-sufficient, the cluster viability invariants (§3.4), and mergeout
// coordinator selection (§6.2).
//
// Functions here are pure: they examine catalog snapshots and return
// planned actions; the core package executes the actions as catalog
// transactions plus data movement.
package shard

import (
	"fmt"
	"sort"

	"eon/internal/catalog"
)

// CanTransition reports whether a subscription may move between states,
// following Figure 4. The pseudo-state "dropped" is represented by
// removing the subscription object, validated by CanDrop.
func CanTransition(from, to catalog.SubState) bool {
	switch from {
	case catalog.SubPending:
		return to == catalog.SubPassive
	case catalog.SubPassive:
		// Cache warm completes, or promotion when all other subscribers
		// fail; either way the next state is ACTIVE.
		return to == catalog.SubActive
	case catalog.SubActive:
		// Node recovery forces re-subscription (back to PENDING);
		// unsubscription declares intent with REMOVING.
		return to == catalog.SubPending || to == catalog.SubRemoving
	case catalog.SubRemoving:
		return false // REMOVING only exits by dropping the subscription
	}
	return false
}

// CanDrop reports whether a REMOVING subscription may be dropped: the
// shard must retain at least minSubscribers other ACTIVE subscribers
// (paper §3.3: "the subscription cannot be dropped until sufficient other
// subscribers exist to ensure the shard remains fault tolerant").
func CanDrop(snap *catalog.Snapshot, sub *catalog.Subscription, minSubscribers int) bool {
	others := 0
	for _, s := range snap.SubscribersOf(sub.ShardIndex, catalog.SubActive) {
		if s.Node != sub.Node {
			others++
		}
	}
	return others >= minSubscribers
}

// Action is one planned subscription change.
type Action struct {
	Node       string
	ShardIndex int
	// Unsubscribe marks the subscription REMOVING instead of creating it.
	Unsubscribe bool
}

// PlanOptions tunes rebalance planning.
type PlanOptions struct {
	// ReplicationFactor is the minimum subscriber count per segment shard
	// (the analog of Enterprise K-safety+1; 2 tolerates one node loss).
	ReplicationFactor int
	// DrainNodes lists nodes whose subscriptions should be removed (node
	// removal / scale-in).
	DrainNodes []string
	// IgnoreNodes lists nodes the planner must pretend do not exist —
	// warm spares, whose PASSIVE subscriptions pre-stage every shard but
	// must neither satisfy the replication factor nor receive planned
	// changes.
	IgnoreNodes []string
}

// PlanRebalance computes the subscription changes needed so that:
//   - every segment shard has at least ReplicationFactor subscribers,
//   - every node subscribes to the replica shard,
//   - every subcluster with members can serve every shard (§4.3),
//   - drained nodes lose their subscriptions once safe,
//   - load is spread onto the least-subscribed nodes first.
//
// The returned actions are in execution order.
func PlanRebalance(snap *catalog.Snapshot, opts PlanOptions) []Action {
	k := opts.ReplicationFactor
	if k < 1 {
		k = 1
	}
	drain := map[string]bool{}
	for _, n := range opts.DrainNodes {
		drain[n] = true
	}
	ignore := map[string]bool{}
	for _, n := range opts.IgnoreNodes {
		ignore[n] = true
	}

	nodes := snap.Nodes()
	var liveNodes []*catalog.Node
	for _, n := range nodes {
		if !drain[n.Name] && !ignore[n.Name] {
			liveNodes = append(liveNodes, n)
		}
	}
	if len(liveNodes) == 0 {
		return nil
	}

	// Current subscription map: node -> shard -> state. Ignored (spare)
	// nodes are left out entirely so their PASSIVE pre-subscriptions do
	// not count toward any shard's subscriber tally.
	subs := map[string]map[int]catalog.SubState{}
	for _, s := range snap.Subscriptions("") {
		if ignore[s.Node] {
			continue
		}
		if subs[s.Node] == nil {
			subs[s.Node] = map[int]catalog.SubState{}
		}
		subs[s.Node][s.ShardIndex] = s.State
	}
	load := map[string]int{}
	for n, m := range subs {
		load[n] = len(m)
	}
	serving := func(node string, shardIdx int) bool {
		st, ok := subs[node][shardIdx]
		return ok && st != catalog.SubRemoving
	}

	var actions []Action
	addSub := func(node string, shardIdx int) {
		actions = append(actions, Action{Node: node, ShardIndex: shardIdx})
		if subs[node] == nil {
			subs[node] = map[int]catalog.SubState{}
		}
		subs[node][shardIdx] = catalog.SubPending
		load[node]++
	}

	// leastLoaded returns live candidate nodes ordered by subscription
	// count then name, filtered to those not already serving the shard.
	leastLoaded := func(shardIdx int, among []*catalog.Node) []string {
		var cands []string
		for _, n := range among {
			if !serving(n.Name, shardIdx) {
				cands = append(cands, n.Name)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if load[cands[i]] != load[cands[j]] {
				return load[cands[i]] < load[cands[j]]
			}
			return cands[i] < cands[j]
		})
		return cands
	}

	shards := snap.Shards()

	// 1. Every live node subscribes to the replica shard.
	for _, sh := range shards {
		if sh.ShardKind != catalog.ReplicaShardKind {
			continue
		}
		for _, n := range liveNodes {
			if !serving(n.Name, sh.Index) {
				addSub(n.Name, sh.Index)
			}
		}
	}

	// 2. Segment shards reach the replication factor.
	for _, sh := range shards {
		if sh.ShardKind != catalog.SegmentShard {
			continue
		}
		have := 0
		for _, n := range liveNodes {
			if serving(n.Name, sh.Index) {
				have++
			}
		}
		for _, cand := range leastLoaded(sh.Index, liveNodes) {
			if have >= k {
				break
			}
			addSub(cand, sh.Index)
			have++
		}
	}

	// 3. Every subcluster covers every segment shard (§4.3: "the
	// subscription rebalance mechanism will ensure that every shard has
	// a node subscriber in the subcluster").
	bySubcluster := map[string][]*catalog.Node{}
	for _, n := range liveNodes {
		if n.Subcluster != "" {
			bySubcluster[n.Subcluster] = append(bySubcluster[n.Subcluster], n)
		}
	}
	var scNames []string
	for sc := range bySubcluster {
		scNames = append(scNames, sc)
	}
	sort.Strings(scNames)
	for _, sc := range scNames {
		members := bySubcluster[sc]
		for _, sh := range shards {
			if sh.ShardKind != catalog.SegmentShard {
				continue
			}
			covered := false
			for _, m := range members {
				if serving(m.Name, sh.Index) {
					covered = true
					break
				}
			}
			if !covered {
				if cands := leastLoaded(sh.Index, members); len(cands) > 0 {
					addSub(cands[0], sh.Index)
				}
			}
		}
	}

	// 4. Drained nodes unsubscribe (executed after replacements exist).
	for _, s := range snap.Subscriptions("") {
		if drain[s.Node] && s.State != catalog.SubRemoving {
			actions = append(actions, Action{Node: s.Node, ShardIndex: s.ShardIndex, Unsubscribe: true})
		}
	}
	return actions
}

// Viability describes whether a set of up nodes can form a functioning
// cluster (paper §3.4).
type Viability struct {
	OK      bool
	Reason  string
	Quorum  bool
	Covered bool
}

// CheckViability verifies the cluster invariants: a quorum of nodes is
// up, and every segment shard plus the replica shard has at least one
// up-node subscription that is ACTIVE.
func CheckViability(snap *catalog.Snapshot, upNodes map[string]bool) Viability {
	total := len(snap.Nodes())
	up := 0
	for _, n := range snap.Nodes() {
		if upNodes[n.Name] {
			up++
		}
	}
	v := Viability{Quorum: total > 0 && up*2 > total}
	if !v.Quorum {
		v.Reason = fmt.Sprintf("no quorum: %d of %d nodes up", up, total)
		return v
	}
	for _, sh := range snap.Shards() {
		ok := false
		for _, s := range snap.SubscribersOf(sh.Index, catalog.SubActive) {
			if upNodes[s.Node] {
				ok = true
				break
			}
		}
		if !ok {
			v.Reason = fmt.Sprintf("shard %d has no ACTIVE subscriber among up nodes", sh.Index)
			return v
		}
	}
	v.Covered = true
	v.OK = true
	return v
}

// MergeoutCoordinators assigns one coordinator per segment shard among
// its ACTIVE subscribers, spreading coordination load round-robin so a
// single node does not own every shard's compaction (§6.2). Nodes in
// onlySubcluster ("" = any) are preferred, isolating compaction work.
func MergeoutCoordinators(snap *catalog.Snapshot, upNodes map[string]bool, onlySubcluster string) map[int]string {
	nodeSC := map[string]string{}
	for _, n := range snap.Nodes() {
		nodeSC[n.Name] = n.Subcluster
	}
	out := map[int]string{}
	load := map[string]int{}
	for _, sh := range snap.Shards() {
		if sh.ShardKind != catalog.SegmentShard {
			continue
		}
		var cands []string
		for _, s := range snap.SubscribersOf(sh.Index, catalog.SubActive) {
			if !upNodes[s.Node] {
				continue
			}
			if onlySubcluster != "" && nodeSC[s.Node] != onlySubcluster {
				continue
			}
			cands = append(cands, s.Node)
		}
		if len(cands) == 0 && onlySubcluster != "" {
			// Fall back to any subscriber if the subcluster cannot cover
			// the shard.
			for _, s := range snap.SubscribersOf(sh.Index, catalog.SubActive) {
				if upNodes[s.Node] {
					cands = append(cands, s.Node)
				}
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.Slice(cands, func(i, j int) bool {
			if load[cands[i]] != load[cands[j]] {
				return load[cands[i]] < load[cands[j]]
			}
			return cands[i] < cands[j]
		})
		out[sh.Index] = cands[0]
		load[cands[0]]++
	}
	return out
}
