package reconcile

import (
	"time"

	"eon/internal/obs"
)

// signals are the load observations one round autoscales on.
type signals struct {
	// QueueDepth is the number of queries parked waiting for exec slots
	// right now — an instantaneous pressure signal.
	QueueDepth int
	// P95 is the 95th-percentile query wall time over the window since
	// the previous round (0 when nothing completed).
	P95 time.Duration
	// Completed counts queries finished in the window.
	Completed int64
}

// readSignals samples the slot queue and diffs the query.wall_ns
// histogram against the previous round's buckets, so P95 reflects only
// the most recent window rather than all-time history.
func (r *Reconciler) readSignals() signals {
	sig := signals{QueueDepth: r.db.QueueDepth()}
	counts := r.db.Registry().Histogram("query.wall_ns").Counts()
	if r.prevHist != nil {
		delta := make([]int64, len(counts))
		for i := range counts {
			d := counts[i] - r.prevHist[i]
			if d > 0 {
				delta[i] = d
				sig.Completed += d
			}
		}
		if sig.Completed > 0 {
			sig.P95 = time.Duration(obs.CountsQuantile(delta, 0.95))
		}
	}
	r.prevHist = counts
	return sig
}

// autoscale nudges the policy's subcluster size: up immediately on
// queue or latency pressure, down only after SettleRounds consecutive
// idle rounds (hysteresis). Called with r.mu held.
func (r *Reconciler) autoscale(sig signals) {
	as := r.spec.Autoscale
	if as == nil {
		return
	}
	var base int
	for _, sc := range r.spec.Subclusters {
		if sc.Name == as.Subcluster {
			base = sc.Size
		}
	}
	size, ok := r.asSize[as.Subcluster]
	if !ok {
		size = base
	}
	size = clampSize(size, as)

	hot := (as.QueueHigh > 0 && sig.QueueDepth >= as.QueueHigh) ||
		(as.P95High > 0 && sig.Completed > 0 && sig.P95 >= as.P95High)
	// Idle: queue drained and latency (if measured) comfortably below
	// the trigger.
	idle := sig.QueueDepth <= as.QueueLow &&
		!(as.P95High > 0 && sig.Completed > 0 && sig.P95 >= as.P95High/2)

	settle := as.SettleRounds
	if settle <= 0 {
		settle = 3
	}
	switch {
	case hot:
		r.idle = 0
		if grown := clampSize(size+1, as); grown != size {
			r.asSize[as.Subcluster] = grown
			r.mScaleUp.Inc()
		}
	case idle:
		r.idle++
		if r.idle >= settle {
			r.idle = 0
			if shrunk := clampSize(size-1, as); shrunk != size {
				r.asSize[as.Subcluster] = shrunk
				r.mScaleDown.Inc()
			}
		}
	default:
		r.idle = 0
	}
}
