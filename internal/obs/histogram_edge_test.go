package obs

import (
	"math"
	"testing"
)

// The v_monitor.metrics percentile columns are computed straight from
// Histogram.Quantile, so its edge cases must return finite, sane values
// rather than NaN or a panic.

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean = %d", s.Mean())
	}
}

func TestHistogramQuantileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(37)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < 0 || got > 37 {
			t.Fatalf("Quantile(%v) = %d, want in [0, 37]", q, got)
		}
	}
	// The estimate clamps to the observed max, so the upper quantiles are
	// exact for a single value.
	if got := h.Quantile(1); got != 37 {
		t.Fatalf("Quantile(1) = %d, want 37", got)
	}
	s := h.Snapshot()
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	// All mass in the open-ended top bucket: interpolation runs against
	// the clamped upper bound and must not overflow or go negative.
	var h Histogram
	const huge = int64(1) << 62
	for i := 0; i < 10; i++ {
		h.Observe(huge + int64(i))
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < huge || got > huge+9 {
			t.Fatalf("Quantile(%v) = %d, want in [2^62, 2^62+9]", q, got)
		}
	}
	s := h.Snapshot()
	if s.Max != huge+9 {
		t.Fatalf("max = %d", s.Max)
	}
	if s.P99 > s.Max || s.P50 < 0 {
		t.Fatalf("overflow-bucket snapshot = %+v", s)
	}
}

func TestHistogramQuantileBucketBoundaries(t *testing.T) {
	// Exact powers of two sit at bucket lower bounds; interpolation at
	// frac 0 and 1 must land inside the bucket, never below lo or at/above
	// a value the clamp would not permit.
	var h Histogram
	for _, v := range []int64{1, 2, 4, 8, 16, 1024, 1 << 30} {
		h2 := Histogram{}
		h2.Observe(v)
		for _, q := range []float64{0, 0.5, 1} {
			got := h2.Quantile(q)
			if got < 0 || got > v {
				t.Fatalf("value %d: Quantile(%v) = %d outside [0, %d]", v, q, got, v)
			}
		}
		h.Observe(v)
	}
	// Mixed boundary values: quantiles monotone, finite, within range.
	prev := int64(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("quantiles not monotone at q=%v: %d < %d", q, got, prev)
		}
		if got < 0 || got > 1<<30 {
			t.Fatalf("Quantile(%v) = %d out of range", q, got)
		}
		if f := float64(got); math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("Quantile(%v) not finite", q)
		}
		prev = got
	}
	// Out-of-range q values clamp instead of misbehaving.
	if h.Quantile(-0.5) < 0 {
		t.Fatal("Quantile(-0.5) went negative")
	}
	if got, max := h.Quantile(2), h.Quantile(1); got != max {
		t.Fatalf("Quantile(2) = %d, want max %d", got, max)
	}
}

func TestCountsQuantileEdgeCases(t *testing.T) {
	// Empty window.
	if got := CountsQuantile(make([]int64, histBuckets), 0.95); got != 0 {
		t.Fatalf("empty window quantile = %d", got)
	}
	// Nil and short slices are tolerated.
	if got := CountsQuantile(nil, 0.5); got != 0 {
		t.Fatalf("nil counts quantile = %d", got)
	}
	// All mass in the overflow bucket.
	counts := make([]int64, histBuckets)
	counts[histBuckets-1] = 5
	got := CountsQuantile(counts, 0.99)
	if got < 1<<62 {
		t.Fatalf("overflow-bucket counts quantile = %d, want >= 2^62", got)
	}
	if f := float64(got); math.IsNaN(f) || math.IsInf(f, 0) {
		t.Fatal("counts quantile not finite")
	}
}
