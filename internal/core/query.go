package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/flowassign"
	"eon/internal/obs"
	"eon/internal/planner"
	"eon/internal/sql"
	"eon/internal/types"
)

// errNodeDown marks failures caused by a participating node going down;
// the session retries with a fresh assignment (§6.1: another subscriber
// immediately serves the shard).
var errNodeDown = errors.New("core: participating node went down")

// CrunchMode selects the §4.4 mechanism for spreading one shard's work
// over several nodes when node count exceeds shard count.
type CrunchMode uint8

// Crunch scaling modes.
const (
	// CrunchOff runs each shard on exactly one node.
	CrunchOff CrunchMode = iota
	// CrunchHashFilter has every helper read the shard's data and keep
	// only rows whose key re-hashes to its sub-partition. Segmentation
	// semantics are preserved, so local joins and aggregates stay legal.
	CrunchHashFilter
	// CrunchContainerSplit physically splits the shard's containers
	// between helpers: each row is read once, but segmentation is lost
	// and the planner must reshuffle joins and two-phase aggregations.
	CrunchContainerSplit
)

// Session is one client connection. Sessions select participating
// subscriptions per query (§4.1) and carry cache-shaping options (§5.2).
type Session struct {
	db *DB
	// Subcluster prioritizes its member nodes for execution (§4.3).
	Subcluster string
	// BypassCache executes queries without populating the cache ("don't
	// use the cache for this query").
	BypassCache bool
	// Crunch enables crunch scaling (§4.4).
	Crunch CrunchMode
	// RowEngine disables the vectorized expression kernels and runs
	// scans and operators row-at-a-time (the reference engine). Both
	// engines produce byte-identical results; the flag exists for
	// differential testing and benchmarking.
	RowEngine bool
	// Timeout bounds each query: the deadline context threads through
	// scans into shared-storage requests, so a query stuck behind a slow
	// or failing store cancels promptly instead of retrying forever
	// (§5.3). 0 means no deadline.
	Timeout time.Duration
	// Trace enables per-query hierarchical span tracing: each query's
	// plan/scan/fragment/operator timeline is captured and exposed via
	// LastProfile (EXPLAIN PROFILE). Tracing is also forced on while the
	// database has a slow-query threshold configured. Off (the default),
	// the instrumented paths run a zero-allocation no-op fast path.
	Trace bool
	// MaterializedExec runs this session's queries through the previous
	// stage-at-a-time executor instead of the streaming pipeline
	// (inherited from Config.MaterializedExec; escape hatch for one
	// release, and the reference side of the differential tests).
	MaterializedExec bool
	// MemoryBudget bounds, per query and per node, the bytes pipeline
	// breakers may hold before spilling to local disk (inherited from
	// Config.QueryMemoryBudget; 0 = never spill, and only sorts and
	// join builds report usage). Only the
	// streaming executor enforces it.
	MemoryBudget int64

	// id and start identify the session in v_monitor.sessions; queries
	// counts the SELECTs it has run (the query_seq of its profile rows).
	id      int64
	start   time.Time
	queries atomic.Int64

	statsMu     sync.Mutex
	lastScan    ScanStats
	lastProfile *obs.Profile
	lastExec    ExecStats
}

// ExecStats summarizes the execution engine's resource behaviour for
// the session's most recent query: which executor ran, the peak bytes
// pipeline breakers held on any one node, and spill activity.
type ExecStats struct {
	// Streaming is false when the query ran on the materialized escape
	// hatch (which does not govern memory).
	Streaming bool
	// PeakMemBytes is the high-water mark of governed operator memory on
	// the busiest node. With a finite MemoryBudget it stays at or under
	// the budget.
	PeakMemBytes int64
	// SpillCount and SpillBytes total the runs written to local disk by
	// budget-governed sorts and aggregations.
	SpillCount int64
	SpillBytes int64
}

// LastExecStats returns the executor resource stats of the session's
// most recent query.
func (s *Session) LastExecStats() ExecStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.lastExec
}

// LastScanStats returns the scan instrumentation of the session's most
// recent successfully executed query: containers and blocks pruned vs
// scanned, bytes fetched, cache behaviour, and the I/O / decode / filter
// time split.
func (s *Session) LastScanStats() ScanStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.lastScan
}

// LastProfile returns the hierarchical execution profile of the
// session's most recent query (EXPLAIN PROFILE): per-operator rows
// in/out, wall time, bytes fetched and cache behaviour. Nil unless
// tracing was on (Session.Trace, or a configured slow-query threshold)
// for the query.
func (s *Session) LastProfile() *obs.Profile {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.lastProfile
}

// NewSession opens a session against the cluster.
func (db *DB) NewSession() *Session {
	s := &Session{
		db:               db,
		MaterializedExec: db.cfg.MaterializedExec,
		MemoryBudget:     db.cfg.QueryMemoryBudget,
		id:               db.sessCtr.Add(1),
		start:            db.now(),
	}
	db.trackSession(s)
	return s
}

// NewSessionOn opens a session connected to a subcluster, isolating its
// workload to those nodes when they can cover all shards.
func (db *DB) NewSessionOn(subcluster string) *Session {
	s := db.NewSession()
	s.Subcluster = subcluster
	return s
}

// Result is a query result.
type Result struct {
	Columns []string
	Batch   *types.Batch
}

// Rows materializes the result rows.
func (r *Result) Rows() []types.Row {
	if r.Batch == nil {
		return nil
	}
	return r.Batch.Rows()
}

// NumRows returns the result row count.
func (r *Result) NumRows() int {
	if r.Batch == nil {
		return 0
	}
	return r.Batch.NumRows()
}

// scanTask is one node's share of one shard: sub-partition Part of Of
// (Of == 1 means the whole shard).
type scanTask struct {
	Shard int
	Part  int
	Of    int
}

// queryEnv is the per-query execution context: the shard-to-node
// assignment the session selected, crunch groups, a consistent catalog
// cut, and slot reservations.
type queryEnv struct {
	ctx        context.Context
	session    *Session
	assignment map[int]string // shard -> primary node
	// crunch maps a shard to the ordered node group collectively serving
	// it (§4.4); absent shards run on their primary only.
	crunch    map[int][]string
	nodes     []string // distinct participating nodes, sorted
	initiator *Node
	version   uint64
	snapshots map[string]*catalog.Snapshot
	// stats accumulates the query's scan instrumentation across all
	// participating nodes' workers (nil on paths without instrumentation).
	stats *scanTally
}

// eng is the execution-engine selector handed to every exec operator
// this query builds: the session's row/vectorized choice plus the
// query's vectorized-row counters.
func (env *queryEnv) eng() exec.Engine {
	return exec.Engine{Row: env.session.RowEngine, Stats: env.stats.vecStats()}
}

// snapshotFor returns the catalog cut captured for a participant at
// query start. Scans must read from this cut — not a fresh snapshot —
// so a concurrent drain that prunes shard metadata after capture
// (without a version bump) cannot cause a silent short read.
func (env *queryEnv) snapshotFor(node string) *catalog.Snapshot {
	return env.snapshots[node]
}

// nodeTasks returns the scan tasks a node serves, in shard order.
func (env *queryEnv) nodeTasks(node string) []scanTask {
	var out []scanTask
	for shard, n := range env.assignment {
		if group, ok := env.crunch[shard]; ok {
			for i, member := range group {
				if member == node {
					out = append(out, scanTask{Shard: shard, Part: i, Of: len(group)})
				}
			}
			continue
		}
		if n == node {
			out = append(out, scanTask{Shard: shard, Part: 0, Of: 1})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// queryRequest carries one SELECT through the staged lifecycle (parse ->
// bind/prepare -> plan -> admit -> execute). The normalized text is the
// cache identity; sel memoizes the parsed AST across retry attempts so a
// node failure never re-runs the front end.
type queryRequest struct {
	sqlText string
	// norm is the plan/result-cache key ("" bypasses both caches:
	// QuerySelect callers hand pre-parsed ASTs the engine never caches).
	norm string
	// sel is the parsed AST when the caller or an earlier attempt already
	// parsed; nil until needed (a warm plan-cache hit never parses).
	sel *sql.Select
	// args are the bound parameter values ($1..$N / "?").
	args []types.Datum
	// nparams is the statement's parameter count, valid once sel is set
	// or a cache entry supplied it.
	nparams int
}

// Query parses, plans and executes a SELECT, retrying with a fresh node
// assignment when a participant fails mid-query. Parsing and planning
// are served from the database plan cache when the same normalized
// statement was planned before at the current catalog version.
func (s *Session) Query(sqlText string) (*Result, error) {
	return s.run(&queryRequest{sqlText: sqlText, norm: sql.Normalize(sqlText)})
}

// QueryArgs executes a parameterized SELECT ("?" or $N placeholders),
// binding args by ordinal. The statement text is cached like Query's, so
// a hot parameterized statement is lexed and planned once and then only
// re-bound per execution.
func (s *Session) QueryArgs(sqlText string, args ...types.Datum) (*Result, error) {
	return s.run(&queryRequest{sqlText: sqlText, norm: sql.Normalize(sqlText), args: args})
}

// QuerySelect executes a parsed SELECT. Caller-built ASTs bypass the
// plan and result caches: the engine cannot prove the AST corresponds to
// any normalized text, and the caller may mutate it between calls.
func (s *Session) QuerySelect(sel *sql.Select) (*Result, error) {
	return s.run(&queryRequest{sel: sel, nparams: sql.NumParams(sel)})
}

func (s *Session) querySelect(sel *sql.Select, sqlText string) (*Result, error) {
	return s.run(&queryRequest{sqlText: sqlText, norm: sql.Normalize(sqlText), sel: sel, nparams: sql.NumParams(sel)})
}

// run drives the retry loop around tryQuery.
func (s *Session) run(req *queryRequest) (*Result, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		res, err := s.tryQuery(req)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !errors.Is(err, errNodeDown) {
			return nil, err
		}
		// Invariant check before retrying: the cluster may no longer be
		// viable (§3.4).
		if init, err2 := s.db.anyUpNode(); err2 == nil {
			s.db.checkViabilityAndMaybeShutdown(init.catalog.Snapshot())
		}
	}
	return nil, lastErr
}

// stageParse runs the front end for a request that needs an AST (cache
// miss or cache bypass), memoizing the result for retry attempts. Parse
// failures surface inside tryQuery's accounting window, so they count
// into query.count / query.errors / query.parse_errors.
func (s *Session) stageParse(req *queryRequest, root *obs.Span) (*sql.Select, error) {
	if req.sel != nil {
		return req.sel, nil
	}
	sp := root.StartSpan("parse")
	stmt, err := sql.Parse(req.sqlText)
	sp.End()
	if err != nil {
		s.db.parseErrors.Inc()
		return nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("core: Query requires a SELECT; use Execute for %T", stmt)
	}
	req.sel = sel
	req.nparams = sql.NumParams(sel)
	return sel, nil
}

// stagePlan resolves the request to a physical plan: a warm plan-cache
// hit returns the shared cached plan without touching the lexer or
// planner (no "parse"/"plan" span appears in the profile — the
// observable proof of the skip); a stale entry replans from the retained
// AST; a cold statement runs the full front end and populates the cache.
func (s *Session) stagePlan(req *queryRequest, env *queryEnv, root *obs.Span, noSeg bool) (*planner.Plan, error) {
	db := s.db
	opts := planner.Options{
		Snapshot:          env.snapshots[env.initiator.name],
		Virtual:           db.sysTables,
		BroadcastRowLimit: db.cfg.BroadcastRowLimit,
		// Container split loses the segmentation property (§4.4).
		AssumeNoSegmentation: noSeg,
	}
	if req.norm == "" || db.planCache == nil {
		// Cache bypass: plan the caller's AST directly (one-shot).
		sel, err := s.stageParse(req, root)
		if err != nil {
			return nil, err
		}
		sp := root.StartSpan("plan")
		plan, err := planner.PlanSelect(sel, opts)
		sp.End()
		return plan, err
	}
	if plan, nparams, ok := db.planCache.lookup(req.norm, noSeg, env.version); ok {
		req.nparams = nparams
		return plan, nil
	}
	// Miss. Recover a pristine AST without the front end if the cache
	// retained one (replan after a catalog bump); otherwise parse.
	if req.sel == nil {
		if sel, nparams, ok := db.planCache.lookupAST(req.norm, noSeg); ok {
			req.sel = sel
			req.nparams = nparams
		} else if _, err := s.stageParse(req, root); err != nil {
			return nil, err
		}
	}
	// Plan a clone: planning resolves and binds column references in
	// place, and req.sel must stay pristine — it is memoized for retries
	// and a copy of it becomes the shared cache AST.
	sp := root.StartSpan("plan")
	plan, err := planner.PlanSelect(sql.CloneSelect(req.sel), opts)
	sp.End()
	if err != nil {
		return nil, err
	}
	db.planCache.insert(req.norm, noSeg, env.version, sql.CloneSelect(req.sel), req.nparams, plan)
	return plan, nil
}

func (s *Session) tryQuery(req *queryRequest) (result *Result, err error) {
	db := s.db
	sqlText := req.sqlText
	init, err := db.anyUpNode()
	if err != nil {
		return nil, err
	}
	env, err := s.selectParticipants(init)
	if err != nil {
		return nil, err
	}
	env.stats = &scanTally{}
	s.queries.Add(1)
	// Reset the exec stats so a query that fails before execution cannot
	// leave (or report) a predecessor's numbers.
	s.statsMu.Lock()
	s.lastExec = ExecStats{}
	s.statsMu.Unlock()

	// Tracing is on when the session asks for it or the database needs
	// profiles for its slow-query log; otherwise trace stays nil and every
	// span operation below is a zero-allocation no-op.
	var trace *obs.Trace
	if s.Trace || db.cfg.SlowQueryThreshold > 0 {
		trace = obs.NewTrace("query", nil)
	}
	queryStart := time.Now()
	defer func() {
		// Finalize query-level accounting on every exit path: a failed
		// query still counts, still observes its wall time, and still
		// leaves a complete profile (Finish force-ends dangling spans).
		wall := time.Since(queryStart)
		db.queryCount.Inc()
		if err != nil {
			db.queryErrors.Inc()
		}
		db.queryWall.ObserveDuration(wall)
		if trace == nil {
			return
		}
		profile := trace.Finish()
		s.statsMu.Lock()
		s.lastProfile = profile
		execStats := s.lastExec
		s.statsMu.Unlock()
		if t := db.cfg.SlowQueryThreshold; t > 0 && wall >= t {
			var errStr string
			if err != nil {
				errStr = err.Error()
			}
			db.recordSlow(SlowQuery{
				SQL: sqlText, Start: queryStart, Wall: wall,
				Err: errStr, Profile: profile, Exec: execStats,
			})
		}
	}()
	root := trace.Root()
	env.ctx = obs.WithSpan(env.ctx, root)
	if s.Timeout > 0 {
		ctx, cancel := context.WithTimeout(env.ctx, s.Timeout)
		defer cancel()
		env.ctx = ctx
	}

	// Stage: plan — served from the plan cache on a warm hit (no parse or
	// plan span), replanned from the cached AST after a catalog bump, or
	// fully parsed and planned on a cold statement.
	noSeg := s.Crunch == CrunchContainerSplit && len(env.crunch) > 0
	plan, err := s.stagePlan(req, env, root, noSeg)
	if err != nil {
		return nil, err
	}

	// Stage: bind — substitute parameter values into copies of the
	// param-bearing plan nodes (the cached plan itself stays untouched
	// and shareable). Also validates the argument count, param'd or not.
	exePlan := plan
	if req.nparams > 0 || len(req.args) > 0 {
		bindSp := root.StartSpan("bind")
		exePlan, err = planner.BindParams(plan, req.args)
		bindSp.End()
		if err != nil {
			return nil, err
		}
	}

	// Stage: result cache — a parameterized hot query whose data
	// dependencies are unchanged returns its cached bytes without
	// admission, slots or execution. Gated off for Enterprise mode (WOS
	// rows are invisible to the catalog fingerprint), virtual scans
	// (live monitoring state), BypassCache sessions, and cache-bypass
	// requests.
	var rkey resultKey
	resultCacheable := false
	if db.resultCache != nil && req.norm != "" && !s.BypassCache && db.mode == ModeEon {
		if fp, ok := env.depsFingerprint(exePlan); ok {
			rkey = resultKey{
				norm: req.norm, args: argsFingerprint(req.args),
				noSeg: noSeg, rowEng: s.RowEngine, matExec: s.MaterializedExec,
				depsHash: fp,
			}
			resultCacheable = true
			if res, ok := db.resultCache.lookup(rkey); ok {
				s.statsMu.Lock()
				s.lastScan = ScanStats{}
				s.statsMu.Unlock()
				return res, nil
			}
		}
	}

	// Stage: admit — per-subcluster FIFO queue with a budgeted-memory
	// throttle, then execution slots (one per shard on its serving node,
	// §4.2). Both waits are bounded by the session deadline and fail with
	// ErrQueuedTooLong, distinct from a mid-execution timeout.
	admitSp := root.StartSpan("admit")
	releaseAdm, err := db.admission.admit(env.ctx, init.name, s.Subcluster, s.MemoryBudget)
	if err != nil {
		admitSp.End()
		return nil, err
	}
	defer releaseAdm()
	release, err := env.acquireSlots()
	admitSp.End()
	if err != nil {
		return nil, err
	}
	defer release()

	// Register running-query versions for GC gossip (§6.5).
	for _, name := range env.nodes {
		if n, ok := db.Node(name); ok {
			n.beginQuery(env.version)
			defer n.endQuery(env.version)
		}
	}

	// Simulated per-node execution time, spent while the slots are held
	// (see Config.QueryCost).
	if db.cfg.QueryCost > 0 {
		time.Sleep(db.cfg.QueryCost)
	}

	var final *types.Batch
	if s.MaterializedExec {
		// Escape-hatch path: stage-at-a-time materialized execution.
		res, execErr := db.executePlan(env, exePlan.Root, root)
		if execErr != nil {
			return nil, execErr
		}
		gatherSp := root.StartSpan("gather")
		final, execErr = db.gather(env, res)
		gatherSp.End()
		if execErr != nil {
			return nil, execErr
		}
		if final != nil {
			gatherSp.AddRowsOut(int64(final.NumRows()))
		}
		s.statsMu.Lock()
		s.lastExec = ExecStats{}
		s.statsMu.Unlock()
	} else {
		final, err = db.runStreaming(env, exePlan, root)
		if err != nil {
			return nil, err
		}
	}
	if final == nil {
		final = types.NewBatch(exePlan.Schema(), 0)
	}
	// Publish the query's scan stats: on the session (most recent query)
	// and into the database's cumulative registry counters.
	env.stats.wallNanos.Store(int64(time.Since(queryStart)))
	snap := env.stats.snapshot()
	db.scanM.add(snap)
	s.statsMu.Lock()
	s.lastScan = snap
	s.statsMu.Unlock()
	result = &Result{Columns: exePlan.OutputNames, Batch: final}
	if resultCacheable {
		// The stored key embeds the dependency fingerprint computed from
		// this query's own catalog cut — exactly the versions the scans
		// read — so a later lookup matches iff its cut is data-identical.
		db.resultCache.store(rkey, result)
	}
	return result, nil
}

// selectParticipants chooses the covering set of subscriptions for this
// query (§4.1) and captures a consistent catalog cut.
func (s *Session) selectParticipants(init *Node) (*queryEnv, error) {
	db := s.db
	shards := make([]int, db.cfg.ShardCount)
	for i := range shards {
		shards[i] = i
	}

	var assignment map[int]string
	snap := init.catalog.Snapshot()
	up := db.UpNodes()

	if db.mode == ModeEnterprise {
		// Fixed layout: the base owner serves each segment; its buddy
		// takes over when it is down (§2.2, §6.1).
		assignment = map[int]string{}
		nNodes := len(db.order)
		for _, sh := range shards {
			base := db.order[sh%nNodes]
			buddy := db.order[(sh+1)%nNodes]
			switch {
			case up[base]:
				assignment[sh] = base
			case up[buddy]:
				assignment[sh] = buddy
			default:
				return nil, fmt.Errorf("core: segment %d unavailable (node and buddy down)", sh)
			}
		}
	} else {
		var nodes []string
		priority := map[string]int{}
		initRack := db.net.Rack(init.name)
		for _, n := range snap.Nodes() {
			if !up[n.Name] {
				continue
			}
			nodes = append(nodes, n.Name)
			switch {
			case s.Subcluster != "":
				// Subcluster isolation (§4.3).
				if n.Subcluster != s.Subcluster {
					priority[n.Name] = 1
				}
			case initRack != "":
				// Rack locality (§4.1): "the starting graph includes only
				// nodes on the same physical rack, encouraging an
				// assignment that avoids sending network data across
				// bandwidth-constrained links."
				if db.net.Rack(n.Name) != initRack {
					priority[n.Name] = 1
				}
			}
		}
		canServe := func(node string, shard int) bool {
			for _, sub := range snap.SubscribersOf(shard) {
				if sub.Node != node {
					continue
				}
				// ACTIVE serves; REMOVING continues to serve until
				// dropped (§3.3).
				if sub.State == catalog.SubActive || sub.State == catalog.SubRemoving {
					return true
				}
			}
			return false
		}
		var err error
		assignment, err = flowassign.Assign(flowassign.Input{
			Shards: shards, Nodes: nodes, CanServe: canServe,
			Priority: priority,
			Seed:     db.cfg.Seed + db.seedCtr.Add(1),
		})
		if err != nil {
			return nil, fmt.Errorf("core: cannot cover all shards: %w", err)
		}
	}

	// Crunch scaling (§4.4): when enabled, every ACTIVE up subscriber of
	// a shard joins its serving group, the primary first.
	crunch := map[int][]string{}
	if s.Crunch != CrunchOff && db.mode == ModeEon {
		for _, sh := range shards {
			group := []string{assignment[sh]}
			for _, sub := range snap.SubscribersOf(sh, catalog.SubActive) {
				if sub.Node != assignment[sh] && up[sub.Node] {
					group = append(group, sub.Node)
				}
			}
			sort.Strings(group[1:])
			if len(group) > 1 {
				crunch[sh] = group
			}
		}
	}

	nodeSet := map[string]bool{init.name: true}
	for _, n := range assignment {
		nodeSet[n] = true
	}
	for _, group := range crunch {
		for _, n := range group {
			nodeSet[n] = true
		}
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// Capture a consistent catalog cut under the commit lock.
	db.commitMu.Lock()
	snapshots := map[string]*catalog.Snapshot{}
	for _, name := range nodes {
		n, ok := db.Node(name)
		if !ok || !n.Up() {
			db.commitMu.Unlock()
			return nil, fmt.Errorf("%w: %s", errNodeDown, name)
		}
		snapshots[name] = n.catalog.Snapshot()
	}
	if db.mode == ModeEon {
		// The assignment came from a planning snapshot taken before the
		// commit lock; a node drain (RemoveNode) can commit a
		// subscription deletion in between and then drop the node's
		// local shard metadata outside the lock. A participant whose own
		// cut no longer shows it serving its shard would silently scan
		// nothing — force a retry against a fresh plan instead.
		serves := func(name string, sh int) bool {
			for _, sub := range snapshots[name].SubscribersOf(sh, catalog.SubActive, catalog.SubRemoving) {
				if sub.Node == name {
					return true
				}
			}
			return false
		}
		for sh, name := range assignment {
			if !serves(name, sh) {
				db.commitMu.Unlock()
				return nil, fmt.Errorf("%w: %s no longer serves shard %d", errNodeDown, name, sh)
			}
		}
		for sh, group := range crunch {
			for _, name := range group {
				if !serves(name, sh) {
					db.commitMu.Unlock()
					return nil, fmt.Errorf("%w: %s no longer serves shard %d", errNodeDown, name, sh)
				}
			}
		}
	}
	db.commitMu.Unlock()

	return &queryEnv{
		ctx:        db.Context(),
		session:    s,
		assignment: assignment,
		crunch:     crunch,
		nodes:      nodes,
		initiator:  init,
		version:    snapshots[init.name].Version(),
		snapshots:  snapshots,
	}, nil
}

// acquireSlots reserves one execution slot per served shard on its node,
// atomically across nodes (§4.2: "a running query requires S of the
// total N*E slots").
func (env *queryEnv) acquireSlots() (func(), error) {
	db := env.session.db
	req := map[string]int{}
	for _, name := range env.nodes {
		if tasks := env.nodeTasks(name); len(tasks) > 0 {
			req[name] = len(tasks)
		}
	}
	alive := func() bool {
		for name := range req {
			n, ok := db.Node(name)
			if !ok || !n.Up() {
				return false
			}
		}
		return !db.shutdown.Load()
	}
	start := time.Now()
	if err := db.slots.acquireCtx(env.ctx, req, alive); err != nil {
		if errors.Is(err, ErrQueuedTooLong) {
			return nil, fmt.Errorf("%w: no execution slots within the session timeout", ErrQueuedTooLong)
		}
		return nil, fmt.Errorf("%w: participant died while queueing", errNodeDown)
	}
	var slots int64
	for _, c := range req {
		slots += int64(c)
	}
	db.dcAdmissionWaits.Emit(obs.DCEvent{
		Node: env.initiator.name,
		A:    subclusterLabel(env.session.Subcluster), B: "slots",
		V1: int64(time.Since(start)), V2: slots,
	})
	return func() { db.slots.release(req) }, nil
}

// distResult is the distributed intermediate state of plan execution.
type distResult struct {
	// perNode holds each participating node's fragment.
	perNode map[string][]*types.Batch
	// single holds data gathered to (or produced on) the initiator.
	single *types.Batch
	// replicated marks single as a full copy available to every node
	// (replicated scans and broadcast sides).
	replicated bool
	// needGlobalDistinct defers duplicate elimination to gather time.
	needGlobalDistinct bool
	schema             types.Schema
}

// gathered reports whether the result already lives on the initiator.
func (r *distResult) gathered() bool { return r.perNode == nil }

// runPerNode executes fn for each participating node's fragment in
// parallel, replacing the fragment with fn's result.
func (db *DB) runPerNode(env *queryEnv, res *distResult, fn func(node string, batches []*types.Batch) ([]*types.Batch, error)) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	type item struct {
		name    string
		batches []*types.Batch
	}
	items := make([]item, 0, len(res.perNode))
	for name, batches := range res.perNode {
		items = append(items, item{name, batches})
	}
	for _, it := range items {
		wg.Add(1)
		go func(name string, batches []*types.Batch) {
			defer wg.Done()
			n, ok := db.Node(name)
			if !ok || !n.Up() {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: %s", errNodeDown, name)
				}
				mu.Unlock()
				return
			}
			out, err := fn(name, batches)
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			res.perNode[name] = out
			mu.Unlock()
		}(it.name, it.batches)
	}
	wg.Wait()
	return firstErr
}

// batchBytes estimates the wire size of a batch for transfer cost
// modeling.
func batchBytes(b *types.Batch) int64 {
	if b == nil {
		return 0
	}
	var total int64
	for _, c := range b.Cols {
		switch c.Typ.Physical() {
		case types.Varchar:
			for _, s := range c.Strs {
				total += int64(len(s)) + 4
			}
		case types.Bool:
			total += int64(c.Len())
		default:
			total += int64(c.Len()) * 8
		}
	}
	return total
}

// gather moves a distributed result to the initiator, applying any
// pending global distinct.
func (db *DB) gather(env *queryEnv, res *distResult) (*types.Batch, error) {
	if res.gathered() {
		return res.single, nil
	}
	out := types.NewBatch(res.schema, 0)
	names := make([]string, 0, len(res.perNode))
	for n := range res.perNode {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, b := range res.perNode[name] {
			if b == nil || b.NumRows() == 0 {
				continue
			}
			if name != env.initiator.name {
				if err := db.net.Transfer(env.ctx, name, env.initiator.name, batchBytes(b)); err != nil {
					return nil, fmt.Errorf("%w: gather from %s: %v", errNodeDown, name, err)
				}
			}
			out.AppendBatch(b)
		}
	}
	if res.needGlobalDistinct {
		var err error
		out, err = distinctBatch(out, env.eng())
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
