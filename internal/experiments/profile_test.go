package experiments

import (
	"strings"
	"testing"
	"time"

	"eon/internal/obs"
	"eon/internal/workload"
)

// profileTotals sums the counter attributes and fetched bytes across a
// profile tree — the same quantities ScanStats accumulates, derived
// independently from the span tree.
type profileTotals struct {
	containersScanned int64
	containersPruned  int64
	blocksScanned     int64
	blocksPruned      int64
	rowsScanned       int64
	fetches           int64
	cacheHits         int64
	cacheMisses       int64
	coalescedFetches  int64
	bytes             int64
	fetchWall         time.Duration
	decodeWall        time.Duration
	filterWall        time.Duration
}

func sumProfile(p *obs.Profile) profileTotals {
	var t profileTotals
	p.Visit(func(n *obs.Profile) {
		t.containersScanned += n.Attrs["containers_scanned"]
		t.containersPruned += n.Attrs["containers_pruned"]
		t.blocksScanned += n.Attrs["blocks_scanned"]
		t.blocksPruned += n.Attrs["blocks_pruned"]
		t.rowsScanned += n.Attrs["rows_scanned"]
		t.fetches += n.Attrs["fetches"]
		t.cacheHits += n.Attrs["cache_hits"]
		t.cacheMisses += n.Attrs["cache_misses"]
		t.coalescedFetches += n.Attrs["coalesced_fetches"]
		switch n.Name {
		case "fetch":
			t.bytes += n.Bytes
			t.fetchWall += n.Wall
		case "decode":
			t.decodeWall += n.Wall
		case "filter":
			t.filterWall += n.Wall
		}
	})
	return t
}

// TestProfileMatchesScanStats is the differential check between the two
// instrumentation paths: for every TPC-H query, the per-query execution
// profile (span tree) must exist, be hierarchical, have no dangling
// spans, and its summed counter attributes must equal the ScanStats
// snapshot recorded through the independent scanTally path.
func TestProfileMatchesScanStats(t *testing.T) {
	db, _, err := NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	s.Trace = true

	for _, q := range workload.TPCHQueries() {
		if _, err := s.Query(q.SQL); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		prof := s.LastProfile()
		if prof == nil {
			t.Fatalf("%s: no profile recorded", q.Name)
		}
		if prof.Name != "query" {
			t.Fatalf("%s: root span is %q, want %q", q.Name, prof.Name, "query")
		}
		if prof.Dangling != 0 {
			t.Errorf("%s: %d dangling spans force-ended", q.Name, prof.Dangling)
		}
		// Hierarchy: plan under the root, a scan operator somewhere, a
		// fragment under it, and the fetch/decode/filter leaves under
		// that.
		if prof.Find("plan") == nil {
			t.Errorf("%s: profile has no plan span", q.Name)
		}
		var scan *obs.Profile
		prof.Visit(func(n *obs.Profile) {
			if scan == nil && strings.HasPrefix(n.Name, "scan:") {
				scan = n
			}
		})
		if scan == nil {
			t.Fatalf("%s: profile has no scan operator span", q.Name)
		}
		var frag *obs.Profile
		scan.Visit(func(n *obs.Profile) {
			if frag == nil && strings.HasPrefix(n.Name, "fragment:") {
				frag = n
			}
		})
		if frag == nil {
			t.Fatalf("%s: scan span has no fragment child", q.Name)
		}
		for _, leaf := range []string{"fetch", "decode", "filter"} {
			if frag.Find(leaf) == nil {
				t.Errorf("%s: fragment has no %s leaf", q.Name, leaf)
			}
		}

		// Differential: span-tree totals vs the scanTally snapshot.
		st := s.LastScanStats()
		got := sumProfile(prof)
		checks := []struct {
			name       string
			prof, stat int64
		}{
			{"containers_scanned", got.containersScanned, st.ContainersScanned},
			{"containers_pruned", got.containersPruned, st.ContainersPruned},
			{"blocks_scanned", got.blocksScanned, st.BlocksScanned},
			{"blocks_pruned", got.blocksPruned, st.BlocksPruned},
			{"rows_scanned", got.rowsScanned, st.RowsScanned},
			{"fetches", got.fetches, st.Fetches},
			{"cache_hits", got.cacheHits, st.CacheHits},
			{"cache_misses", got.cacheMisses, st.CacheMisses},
			{"coalesced_fetches", got.coalescedFetches, st.CoalescedFetches},
			{"bytes_fetched", got.bytes, st.BytesFetched},
		}
		for _, c := range checks {
			if c.prof != c.stat {
				t.Errorf("%s: %s: profile sums to %d, ScanStats says %d", q.Name, c.name, c.prof, c.stat)
			}
		}
		// Time splits: each span samples time.Since after the tally does,
		// so the span total is never below the tally's.
		if got.fetchWall < st.IOWait {
			t.Errorf("%s: fetch span wall %v below ScanStats IOWait %v", q.Name, got.fetchWall, st.IOWait)
		}
		if got.decodeWall < st.Decode {
			t.Errorf("%s: decode span wall %v below ScanStats Decode %v", q.Name, got.decodeWall, st.Decode)
		}
		if got.filterWall < st.Filter {
			t.Errorf("%s: filter span wall %v below ScanStats Filter %v", q.Name, got.filterWall, st.Filter)
		}
		// The root span opens before the query timer starts and closes
		// after it stops, so it brackets the query's wall time from
		// above.
		if st.Wall > 0 && prof.Wall < st.Wall {
			t.Errorf("%s: root span wall %v below query wall %v", q.Name, prof.Wall, st.Wall)
		}
	}
}
