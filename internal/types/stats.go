package types

// ColumnStats summarizes one column of a storage unit (a ROS block or a
// whole container): the minimum and maximum non-null values and whether
// any NULLs are present. AllNull set means every value is NULL, in which
// case Min and Max are meaningless.
type ColumnStats struct {
	Min      Datum `json:"min"`
	Max      Datum `json:"max"`
	HasNulls bool  `json:"hasNulls,omitempty"`
	AllNull  bool  `json:"allNull,omitempty"`
}

// Merge widens s to cover o.
func (s *ColumnStats) Merge(o ColumnStats) {
	if o.AllNull {
		s.HasNulls = true
		if !s.AllNull {
			return
		}
		s.AllNull = true
		return
	}
	if s.AllNull {
		s.Min, s.Max = o.Min, o.Max
		s.AllNull = false
		s.HasNulls = s.HasNulls || o.HasNulls
		return
	}
	if o.Min.Compare(s.Min) < 0 {
		s.Min = o.Min
	}
	if o.Max.Compare(s.Max) > 0 {
		s.Max = o.Max
	}
	s.HasNulls = s.HasNulls || o.HasNulls
}

// StatsOf computes ColumnStats over a vector.
func StatsOf(v *Vector) ColumnStats {
	st := ColumnStats{AllNull: true}
	for i := 0; i < v.Len(); i++ {
		d := v.Datum(i)
		if d.Null {
			st.HasNulls = true
			continue
		}
		if st.AllNull {
			st.Min, st.Max = d, d
			st.AllNull = false
			continue
		}
		if d.Compare(st.Min) < 0 {
			st.Min = d
		}
		if d.Compare(st.Max) > 0 {
			st.Max = d
		}
	}
	return st
}
