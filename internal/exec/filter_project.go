package exec

import (
	"eon/internal/expr"
	"eon/internal/types"
)

// Filter passes through rows satisfying a bound boolean predicate.
type Filter struct {
	input Operator
	pred  expr.Expr
}

// NewFilter wraps input with a predicate (already bound to the input
// schema).
func NewFilter(input Operator, pred expr.Expr) *Filter {
	return &Filter{input: input, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.input.Schema() }

// Next implements Operator.
func (f *Filter) Next() (*types.Batch, error) {
	for {
		b, err := f.input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		sel, err := expr.FilterBatch(f.pred, b)
		if err != nil {
			return nil, err
		}
		if len(sel) == b.NumRows() {
			return b, nil
		}
		if len(sel) > 0 {
			return b.Gather(sel), nil
		}
	}
}

// Project computes one output column per bound expression.
type Project struct {
	input  Operator
	exprs  []expr.Expr
	schema types.Schema
}

// NewProject wraps input with expression evaluation. names supplies the
// output column names (aliases).
func NewProject(input Operator, exprs []expr.Expr, names []string) *Project {
	schema := make(types.Schema, len(exprs))
	for i, e := range exprs {
		schema[i] = types.Column{Name: names[i], Type: e.Type()}
	}
	return &Project{input: input, exprs: exprs, schema: schema}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Next implements Operator.
func (p *Project) Next() (*types.Batch, error) {
	b, err := p.input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	out := &types.Batch{Cols: make([]*types.Vector, len(p.exprs))}
	for i, e := range p.exprs {
		v, err := expr.EvalBatch(e, b)
		if err != nil {
			return nil, err
		}
		v.Typ = p.schema[i].Type
		out.Cols[i] = v
	}
	return out, nil
}
