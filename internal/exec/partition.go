package exec

import (
	"eon/internal/hashring"
	"eon/internal/types"
)

// PartitionByHash splits a batch into n parts by hashing the given key
// columns — the reshuffle primitive behind distributed exchanges and the
// per-shard splitting of load output (§4.5: "an executor which is
// responsible for multiple shards will locally split the output data into
// separate streams for each shard").
func PartitionByHash(b *types.Batch, cols []int, n int) []*types.Batch {
	if n <= 1 {
		return []*types.Batch{b}
	}
	ring := hashring.NewRing(n)
	return PartitionByRing(b, cols, ring)
}

// PartitionByRing splits a batch by the hash-space segments of a ring.
// Part i contains the rows whose key hash lands in segment i.
func PartitionByRing(b *types.Batch, cols []int, ring *hashring.Ring) []*types.Batch {
	n := ring.Count()
	idx := make([][]int, n)
	hashes := hashring.HashBatchCols(b, cols, nil)
	for i, h := range hashes {
		seg := ring.SegmentFor(h)
		idx[seg] = append(idx[seg], i)
	}
	out := make([]*types.Batch, n)
	for i := range out {
		if len(idx[i]) == 0 {
			out[i] = nil
			continue
		}
		out[i] = b.Gather(idx[i])
	}
	return out
}

// HashFilter passes only rows whose key hash falls into the [lo, hi)
// sub-range of a shard's hash region — the crunch-scaling mechanism where
// "two or more nodes can collectively serve a segment shard for the same
// query by applying a new hash segmentation predicate to each row as it
// is read" (§4.4).
type HashFilter struct {
	input Operator
	cols  []int
	ring  *hashring.Ring
	// part selects which of n sub-partitions this node processes.
	part, n int
}

// NewHashFilter splits the key hash space n ways and keeps part `part`.
func NewHashFilter(input Operator, cols []int, part, n int) *HashFilter {
	return &HashFilter{input: input, cols: cols, ring: hashring.NewRing(n), part: part, n: n}
}

// Schema implements Operator.
func (h *HashFilter) Schema() types.Schema { return h.input.Schema() }

// Next implements Operator.
func (h *HashFilter) Next() (*types.Batch, error) {
	for {
		b, err := h.input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		hashes := hashring.HashBatchCols(b, h.cols, nil)
		var keep []int
		for i, hv := range hashes {
			if h.ring.SegmentFor(hv) == h.part {
				keep = append(keep, i)
			}
		}
		if len(keep) == b.NumRows() {
			return b, nil
		}
		if len(keep) > 0 {
			return b.Gather(keep), nil
		}
	}
}
