package experiments

import (
	"fmt"
	"strings"
	"testing"

	"eon/internal/core"
	"eon/internal/types"
	"eon/internal/workload"
)

// allQueries is the full workload: the twenty TPC-H queries plus the
// dashboard and node-down queries.
func allQueries() []workload.Query {
	qs := workload.TPCHQueries()
	return append(qs,
		workload.Query{Name: "Dashboard", SQL: workload.DashboardQuery},
		workload.Query{Name: "NodeDown", SQL: workload.NodeDownQuery},
	)
}

// runEngineDiff executes every workload query on the row engine and on
// the vectorized engine and compares results. With exact set, rows must
// be byte-identical positionally (both engines emit rows in
// deterministic order: filters and joins preserve stream order,
// aggregates emit groups in first-seen order, gather visits nodes in
// sorted order). Without it, rows are compared as multisets with floats
// rounded to 9 significant digits: the per-query seeded shard
// assignment regroups rows across nodes between runs, shifting both
// first-seen group order and float summation order by an ulp — a
// multi-node row-engine run differs from itself the same way.
func runEngineDiff(t *testing.T, db *core.DB, exact bool) {
	t.Helper()
	row := db.NewSession()
	row.RowEngine = true
	vec := db.NewSession()

	var totalVectorized int64
	for _, q := range allQueries() {
		want, err := row.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: row engine: %v", q.Name, err)
		}
		if st := row.LastScanStats(); st.RowsVectorized != 0 {
			t.Errorf("%s: row engine entered vectorized kernels (%d rows)", q.Name, st.RowsVectorized)
		}
		got, err := vec.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: vectorized engine: %v", q.Name, err)
		}
		st := vec.LastScanStats()
		if st.RowsFallback != 0 {
			t.Errorf("%s: vectorized engine fell back on %d rows (want full kernel coverage)", q.Name, st.RowsFallback)
		}
		totalVectorized += st.RowsVectorized

		if got.NumRows() != want.NumRows() {
			t.Fatalf("%s: %d rows vectorized vs %d row engine", q.Name, got.NumRows(), want.NumRows())
		}
		wantRows, gotRows := want.Rows(), got.Rows()
		if exact {
			for i := range wantRows {
				for c := range wantRows[i] {
					wd, gd := wantRows[i][c], gotRows[i][c]
					if wd.Null != gd.Null || (!wd.Null && wd.Compare(gd) != 0) {
						t.Fatalf("%s: row %d col %d: vectorized=%v row engine=%v", q.Name, i, c, gd, wd)
					}
				}
			}
			continue
		}
		counts := map[string]int{}
		for _, r := range wantRows {
			counts[renderRow(r)]++
		}
		for _, r := range gotRows {
			key := renderRow(r)
			if counts[key] == 0 {
				t.Fatalf("%s: vectorized row %s not produced by the row engine", q.Name, key)
			}
			counts[key]--
		}
	}
	if totalVectorized == 0 {
		t.Error("no rows went through the vectorized kernels across the whole workload")
	}
}

// renderRow formats a row as a comparison key, rounding floats to 9
// significant digits.
func renderRow(r types.Row) string {
	var sb strings.Builder
	for i, d := range r {
		if i > 0 {
			sb.WriteByte('|')
		}
		switch {
		case d.Null:
			sb.WriteString("NULL")
		case d.K.Physical() == types.Float64:
			fmt.Fprintf(&sb, "%.9g", d.F)
		default:
			fmt.Fprintf(&sb, "%v", d)
		}
	}
	return sb.String()
}

// TestVectorizedEngineMatchesRowEngineSingleNode pins every shard to
// one node, making both engines fully deterministic, and requires
// byte-identical results (values, NULLs, row order) plus zero
// row-fallback on every workload query.
func TestVectorizedEngineMatchesRowEngineSingleNode(t *testing.T) {
	db, _, err := NewEonCluster(1, 3, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	runEngineDiff(t, db, true)
}

// TestVectorizedEngineMatchesRowEngineCluster runs the same diff on a
// three-node cluster (distributed scans, two-phase aggregation,
// broadcast and reshuffle joins), with float sums compared at 1e-9
// relative tolerance because the seeded per-query shard assignment
// regroups rows between runs.
func TestVectorizedEngineMatchesRowEngineCluster(t *testing.T) {
	db, _, err := NewEonCluster(3, 3, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCH(db, 0.02); err != nil {
		t.Fatal(err)
	}
	runEngineDiff(t, db, false)
}
