package experiments

import (
	"time"

	"eon/internal/catalog"
)

// ElasticityResult captures the §8 elasticity claim: scaling an Eon
// cluster up is a function of cache/working-set size, while Enterprise
// would redistribute the entire dataset.
type ElasticityResult struct {
	// AddNodeTime is the measured wall time of the Eon scale-out
	// (metadata transfer, subscription, cache warm).
	AddNodeTime time.Duration
	// BytesWarmed is what the new node's cache actually pulled.
	BytesWarmed int64
	// DatasetBytes is the total stored data an Enterprise rebalance
	// would have to reshuffle.
	DatasetBytes int64
	// NewNodeServes reports the shards the added node subscribes to.
	NewNodeServes int
}

// Elasticity measures adding a node to a loaded Eon cluster.
func Elasticity(scale float64) (*ElasticityResult, error) {
	if scale <= 0 {
		scale = 0.2
	}
	db, _, err := newEonDB(3, 3, 2, costs{})
	if err != nil {
		return nil, err
	}
	if err := loadTPCH(db, scale); err != nil {
		return nil, err
	}
	// Warm the existing caches so the new node has something to copy.
	if _, err := countRows(db, "lineitem"); err != nil {
		return nil, err
	}

	res := &ElasticityResult{}
	init := db.Nodes()[0]
	snap := init.Catalog().Snapshot()
	snap.ForEach(catalog.KindStorageContainer, func(o catalog.Object) bool {
		res.DatasetBytes += o.(*catalog.StorageContainer).SizeBytes
		return true
	})

	start := time.Now()
	if err := db.AddNode(nodeSpecs(4)[3]); err != nil {
		return nil, err
	}
	res.AddNodeTime = time.Since(start)

	if n, ok := db.Node("node4"); ok {
		res.BytesWarmed = n.Cache().Stats().BytesCached
		res.NewNodeServes = len(init.Catalog().Snapshot().Subscriptions("node4"))
	}
	return res, nil
}
