package expr

// Clone deep-copies an expression tree. Bind mutates column references in
// place, so an AST that must be bound against several schemas (scan
// pushdown, join residuals, per-projection DML predicates) is cloned
// first.
func Clone(e Expr) Expr {
	switch n := e.(type) {
	case *ColumnRef:
		c := *n
		return &c
	case *Literal:
		c := *n
		return &c
	case *Param:
		c := *n
		return &c
	case *Binary:
		c := *n
		c.L = Clone(n.L)
		c.R = Clone(n.R)
		return &c
	case *Unary:
		c := *n
		c.E = Clone(n.E)
		return &c
	case *IsNull:
		c := *n
		c.E = Clone(n.E)
		return &c
	case *In:
		c := *n
		c.E = Clone(n.E)
		c.List = make([]Expr, len(n.List))
		for i, x := range n.List {
			c.List[i] = Clone(x)
		}
		return &c
	case *Like:
		c := *n
		c.E = Clone(n.E)
		return &c
	case *Case:
		c := *n
		c.Whens = make([]When, len(n.Whens))
		for i, w := range n.Whens {
			c.Whens[i] = When{Cond: Clone(w.Cond), Then: Clone(w.Then)}
		}
		if n.Else != nil {
			c.Else = Clone(n.Else)
		}
		return &c
	case *Func:
		c := *n
		c.Args = make([]Expr, len(n.Args))
		for i, a := range n.Args {
			c.Args[i] = Clone(a)
		}
		return &c
	}
	return e
}
