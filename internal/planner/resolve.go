package planner

import (
	"fmt"
	"strings"

	"eon/internal/expr"
	"eon/internal/types"
)

// resolveAndBind rewrites column references in e to the exact names of
// schema entries, then binds. Schema entries may be qualified
// ("alias.col"); references may be bare ("col") or qualified. Bare
// references must match exactly one entry's column part.
func resolveAndBind(e expr.Expr, schema types.Schema) error {
	if e == nil {
		return nil
	}
	if err := resolveColumns(e, schema); err != nil {
		return err
	}
	return expr.Bind(e, schema)
}

func resolveColumns(e expr.Expr, schema types.Schema) error {
	switch n := e.(type) {
	case *expr.ColumnRef:
		name, err := resolveName(n.Name, schema)
		if err != nil {
			return err
		}
		n.Name = name
		return nil
	case *expr.Literal:
		return nil
	case *expr.Param:
		return nil
	case *expr.Binary:
		if err := resolveColumns(n.L, schema); err != nil {
			return err
		}
		return resolveColumns(n.R, schema)
	case *expr.Unary:
		return resolveColumns(n.E, schema)
	case *expr.IsNull:
		return resolveColumns(n.E, schema)
	case *expr.In:
		if err := resolveColumns(n.E, schema); err != nil {
			return err
		}
		for _, x := range n.List {
			if err := resolveColumns(x, schema); err != nil {
				return err
			}
		}
		return nil
	case *expr.Like:
		return resolveColumns(n.E, schema)
	case *expr.Case:
		for _, w := range n.Whens {
			if err := resolveColumns(w.Cond, schema); err != nil {
				return err
			}
			if err := resolveColumns(w.Then, schema); err != nil {
				return err
			}
		}
		if n.Else != nil {
			return resolveColumns(n.Else, schema)
		}
		return nil
	case *expr.Func:
		for _, a := range n.Args {
			if err := resolveColumns(a, schema); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("planner: cannot resolve columns in %T", e)
}

// resolveName maps a reference to the unique matching schema entry name.
func resolveName(ref string, schema types.Schema) (string, error) {
	// Exact match first (covers already-qualified refs and plain
	// single-table schemas).
	if idx := schema.ColumnIndex(ref); idx >= 0 {
		return schema[idx].Name, nil
	}
	lowRef := strings.ToLower(ref)
	if !strings.Contains(ref, ".") {
		// Bare reference: match the column part of qualified entries.
		var found string
		count := 0
		for _, c := range schema {
			name := strings.ToLower(c.Name)
			if i := strings.LastIndexByte(name, '.'); i >= 0 {
				if name[i+1:] == lowRef {
					found = c.Name
					count++
				}
			}
		}
		switch count {
		case 1:
			return found, nil
		case 0:
			return "", fmt.Errorf("planner: unknown column %q (available: %s)", ref, strings.Join(schema.Names(), ", "))
		default:
			return "", fmt.Errorf("planner: ambiguous column %q", ref)
		}
	}
	// Qualified reference against a plain schema: match the column part
	// when unambiguous.
	col := lowRef[strings.LastIndexByte(lowRef, '.')+1:]
	var found string
	count := 0
	for _, c := range schema {
		if strings.ToLower(c.Name) == col {
			found = c.Name
			count++
		}
	}
	if count == 1 {
		return found, nil
	}
	return "", fmt.Errorf("planner: unknown column %q (available: %s)", ref, strings.Join(schema.Names(), ", "))
}

// columnRefNames collects referenced names after resolution (unique, in
// first-use order).
func columnRefNames(e expr.Expr) []string {
	if e == nil {
		return nil
	}
	return expr.ColumnNames(e)
}

// qualify prefixes a column name with a table alias.
func qualify(alias, col string) string { return alias + "." + col }

// baseColumn strips the qualifier from a schema entry name.
func baseColumn(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// refersOnlyTo reports whether all columns referenced by e exist in
// schema (used to split predicates for pushdown).
func refersOnlyTo(e expr.Expr, schema types.Schema) bool {
	for _, name := range columnRefNames(e) {
		if _, err := resolveName(name, schema); err != nil {
			return false
		}
	}
	return true
}

// splitConjuncts flattens a predicate over AND.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// cloneExpr deep-copies an expression so the same AST can be bound
// against different schemas (e.g. scan pushdown vs join residual).
func cloneExpr(e expr.Expr) expr.Expr { return expr.Clone(e) }
