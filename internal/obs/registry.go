package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of metrics. Registration takes a write
// lock; metric updates go straight to the metric's atomics, so the hot
// path never touches the registry. A nil *Registry is valid: lookups
// return nil metrics (which discard updates) and registration is a
// no-op, so subsystems can instrument unconditionally.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterCounter publishes an externally owned counter under name,
// replacing any previous registration (re-created subsystems re-register
// over their predecessors).
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// Gauge returns the named settable gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a derived gauge computed on read.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = &Gauge{fn: fn}
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterHistogram publishes an externally owned histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// Snapshot is a point-in-time copy of every metric in a registry,
// serializable as JSON and renderable as text.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]int64     `json:"gauges"`
	Histograms map[string]HistStats `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistStats{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	// Values are read outside the registry lock: derived gauges may take
	// subsystem locks of their own (e.g. cache internals).
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return b
}

// Text renders the snapshot as aligned, sorted, human-readable lines.
func (s Snapshot) Text() string {
	var b strings.Builder
	section := func(title string, keys []string, line func(k string) string) {
		if len(keys) == 0 {
			return
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s:\n", title)
		width := 0
		for _, k := range keys {
			if len(k) > width {
				width = len(k)
			}
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-*s  %s\n", width, k, line(k))
		}
	}
	ck := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		ck = append(ck, k)
	}
	section("counters", ck, func(k string) string { return fmt.Sprintf("%d", s.Counters[k]) })
	gk := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gk = append(gk, k)
	}
	section("gauges", gk, func(k string) string { return fmt.Sprintf("%d", s.Gauges[k]) })
	hk := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hk = append(hk, k)
	}
	section("histograms", hk, func(k string) string {
		h := s.Histograms[k]
		return fmt.Sprintf("count=%d sum=%d mean=%d p50=%d p95=%d p99=%d max=%d",
			h.Count, h.Sum, h.Mean(), h.P50, h.P95, h.P99, h.Max)
	})
	return b.String()
}

// published is the process-wide set of registries for export endpoints
// (cmd/eon-bench's HTTP handler). Keyed by name; a database re-created
// under the same name replaces its predecessor, so test suites that
// build thousands of short-lived clusters do not accumulate entries.
var (
	pubMu     sync.Mutex
	published = map[string]*Registry{}
)

// Publish exposes a registry process-wide under name (replacing any
// previous registry of that name).
func Publish(name string, r *Registry) {
	if r == nil {
		return
	}
	pubMu.Lock()
	defer pubMu.Unlock()
	published[name] = r
}

// Gather snapshots every published registry, keyed by publish name.
func Gather() map[string]Snapshot {
	pubMu.Lock()
	regs := make(map[string]*Registry, len(published))
	for k, v := range published {
		regs[k] = v
	}
	pubMu.Unlock()
	out := make(map[string]Snapshot, len(regs))
	for k, r := range regs {
		out[k] = r.Snapshot()
	}
	return out
}
