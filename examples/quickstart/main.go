// Quickstart: create a three-node Eon cluster, define a table and a
// projection, load data, and run analytic queries.
package main

import (
	"fmt"
	"log"

	"eon"
)

func main() {
	db, err := eon.Create(eon.Config{
		Mode: eon.ModeEon,
		Nodes: []eon.NodeSpec{
			{Name: "node1"}, {Name: "node2"}, {Name: "node3"},
		},
		ShardCount: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession()

	must(s.Execute(`CREATE TABLE sales (
		sale_id INTEGER, customer VARCHAR, sale_date DATE, price FLOAT
	)`))
	// A projection is the only physical structure: sorted, segmented
	// across the shard space by the customer key.
	must(s.Execute(`CREATE PROJECTION sales_p1 AS
		SELECT * FROM sales ORDER BY sale_date
		SEGMENTED BY HASH(customer) ALL NODES`))

	must(s.Execute(`INSERT INTO sales VALUES
		(1, 'Grace',   DATE '2018-02-01', 50),
		(2, 'Ada',     DATE '2018-03-21', 40),
		(3, 'Barbara', DATE '2018-03-11', 30),
		(4, 'Ada',     DATE '2018-02-01', 20),
		(5, 'Shafi',   DATE '2018-04-01', 10)`))

	res, err := s.Query(`SELECT customer, COUNT(*) AS orders, SUM(price) AS total
		FROM sales GROUP BY customer ORDER BY total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customer  orders  total")
	for _, row := range res.Rows() {
		fmt.Printf("%-9s %-7s %s\n", row[0], row[1], row[2])
	}

	// Deletes are tombstones: files on shared storage are never modified.
	must(s.Execute(`DELETE FROM sales WHERE price < 25`))
	res, err = s.Query(`SELECT COUNT(*) FROM sales`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows after delete: %s\n", res.Rows()[0][0])
}

func must(res *eon.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
	_ = res
}
