package sql

import (
	"testing"

	"eon/internal/types"
)

func TestParseSetUsing(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE f (
		id INTEGER, dim_id INTEGER,
		label VARCHAR SET USING dims.name ON dim_id = dims.d_id
	)`)
	ct := stmt.(*CreateTable)
	if len(ct.Cols) != 3 {
		t.Fatalf("cols = %d", len(ct.Cols))
	}
	su := ct.Cols[2].SetUsing
	if su == nil {
		t.Fatal("SetUsing missing")
	}
	if su.DimTable != "dims" || su.DimValue != "name" || su.FactKey != "dim_id" || su.DimKey != "d_id" {
		t.Errorf("spec = %+v", su)
	}
}

func TestParseSetUsingErrors(t *testing.T) {
	bad := []string{
		`CREATE TABLE f (x VARCHAR SET dims.name ON a = dims.b)`,     // missing USING
		`CREATE TABLE f (x VARCHAR SET USING dims ON a = dims.b)`,    // missing .value
		`CREATE TABLE f (x VARCHAR SET USING dims.v ON a = other.b)`, // table mismatch
		`CREATE TABLE f (x VARCHAR SET USING dims.v ON a)`,           // missing join
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestParseLiveAggProjection(t *testing.T) {
	stmt := mustParse(t, `CREATE PROJECTION p AS SELECT region, COUNT(*) AS n, SUM(x) AS s, MIN(x), MAX(x)
		FROM t GROUP BY region`)
	cp := stmt.(*CreateProjection)
	if len(cp.Cols) != 1 || cp.Cols[0] != "region" {
		t.Errorf("cols = %v", cp.Cols)
	}
	if len(cp.Aggs) != 4 {
		t.Fatalf("aggs = %v", cp.Aggs)
	}
	if cp.Aggs[0].Op != AggCountStar || cp.Aggs[0].Alias != "n" {
		t.Errorf("agg0 = %+v", cp.Aggs[0])
	}
	if cp.Aggs[1].Op != AggSum || cp.Aggs[1].Col != "x" || cp.Aggs[1].Alias != "s" {
		t.Errorf("agg1 = %+v", cp.Aggs[1])
	}
	if cp.Aggs[2].Op != AggMin || cp.Aggs[2].Alias != "" {
		t.Errorf("agg2 = %+v", cp.Aggs[2])
	}
	if len(cp.GroupBy) != 1 || cp.GroupBy[0] != "region" {
		t.Errorf("groupby = %v", cp.GroupBy)
	}
}

func TestParseMoreErrors(t *testing.T) {
	bad := []string{
		`CREATE PROJECTION p AS SELECT COUNT( FROM t`,
		`CREATE PROJECTION p AS SELECT a FROM t SEGMENTED BY HASH() ALL NODES`,
		`CREATE PROJECTION p AS SELECT a FROM t KSAFE x`,
		`ALTER TABLE t DROP COLUMN c`, // only ADD COLUMN supported
		`INSERT INTO t VALUES (1,)`,
		`SELECT a FROM t JOIN`,
		`SELECT a FROM t ORDER BY`,
		`UPDATE t WHERE a = 1`,
		`SELECT a, FROM t`,
		`SELECT CASE WHEN a THEN b FROM t`, // missing END
		`SELECT EXTRACT() FROM t`,
		`DELETE FROM`,
		`DROP t`,
		`CREATE VIEW v AS SELECT 1`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestParseTimestampLiteral(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE ts > TIMESTAMP '2018-06-10 12:00:00'`)
	_ = stmt
	if _, err := Parse(`SELECT a FROM t WHERE ts > TIMESTAMP 'bogus'`); err == nil {
		t.Error("bad timestamp should fail")
	}
	if _, err := Parse(`SELECT a FROM t WHERE d > DATE 'bogus'`); err == nil {
		t.Error("bad date should fail")
	}
}

func TestParseNotPrecedence(t *testing.T) {
	// NOT binds tighter than AND.
	stmt := mustParse(t, `SELECT a FROM t WHERE NOT a = 1 AND b = 2`)
	_ = stmt
}

func TestParseVarcharLength(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE t (s VARCHAR(255), n NUMERIC)`)
	ct := stmt.(*CreateTable)
	if ct.Cols[0].Type != types.Varchar || ct.Cols[1].Type != types.Float64 {
		t.Errorf("types = %+v", ct.Cols)
	}
}

func TestAggOpString(t *testing.T) {
	names := map[AggOp]string{
		AggCountStar: "COUNT", AggCount: "COUNT", AggCountDistinct: "COUNT DISTINCT",
		AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
}

func TestTableRefName(t *testing.T) {
	if (TableRef{Table: "t"}).Name() != "t" {
		t.Error("bare name")
	}
	if (TableRef{Table: "t", Alias: "x"}).Name() != "x" {
		t.Error("alias wins")
	}
}
