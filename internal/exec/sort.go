package exec

import (
	"container/heap"
	"sort"

	"eon/internal/types"
)

// SortSpec is one sort key: a column index of the input schema and a
// direction.
type SortSpec struct {
	Col  int
	Desc bool
}

// Sort materializes its input and emits it ordered by the keys. NULLs
// sort first ascending (last descending). When a limited memory governor
// and a spill store are set, it degrades to an external sort: sorted
// runs spill to local disk whenever the next input batch would push the
// governor over budget, and the runs k-way merge on output. Without
// spilling the behaviour (one sorted output batch) is unchanged.
type Sort struct {
	input Operator
	keys  []SortSpec

	// Mem and Spill, both set with a finite budget, enable the external
	// path. Configured by the executor, like Eng on other operators.
	Mem   *MemGovernor
	Spill SpillStore

	started bool
	emit    *types.Batch // in-memory sorted result (no-spill path)
	charged int64        // governor bytes held for emit
	merge   *sortMerger  // run merger (spill path)
}

// NewSort wraps input with ordering.
func NewSort(input Operator, keys []SortSpec) *Sort {
	return &Sort{input: input, keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.input.Schema() }

// compareRowsAcross orders row ai of batch a against row bi of batch b
// under the sort keys.
func compareRowsAcross(a *types.Batch, ai int, b *types.Batch, bi int, keys []SortSpec) int {
	for _, k := range keys {
		c := a.Cols[k.Col].Datum(ai).Compare(b.Cols[k.Col].Datum(bi))
		if c != 0 {
			if k.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

func compareRows(b *types.Batch, i, j int, keys []SortSpec) int {
	return compareRowsAcross(b, i, b, j, keys)
}

// sortBatch returns b's rows in stable key order.
func sortBatch(b *types.Batch, keys []SortSpec) *types.Batch {
	perm := make([]int, b.NumRows())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return compareRows(b, perm[x], perm[y], keys) < 0
	})
	return b.Gather(perm)
}

// Next implements Operator.
func (s *Sort) Next() (*types.Batch, error) {
	if !s.started {
		s.started = true
		if err := s.run(); err != nil {
			return nil, err
		}
	}
	if s.merge != nil {
		return s.merge.next()
	}
	if s.emit != nil {
		b := s.emit
		s.emit = nil
		s.Mem.Release(s.charged)
		s.charged = 0
		return b, nil
	}
	return nil, nil
}

// run consumes the input, spilling sorted runs when over budget, and
// leaves either an in-memory result (emit) or a run merger (merge).
func (s *Sort) run() error {
	spillable := s.Mem.Limited() && s.Spill != nil
	schema := s.input.Schema()
	acc := types.NewBatch(schema, 0)
	var accBytes int64
	var runs []SpillHandle

	flush := func() error {
		if acc.NumRows() == 0 {
			return nil
		}
		h, err := writeBatchRun(s.Spill, "sortrun", sortBatch(acc, s.keys))
		if err != nil {
			return err
		}
		s.Mem.NoteSpill(h.Size)
		runs = append(runs, h)
		s.Mem.Release(accBytes)
		accBytes = 0
		acc = types.NewBatch(schema, 0)
		return nil
	}

	for {
		b, err := s.input.Next()
		if err != nil {
			s.Mem.Release(accBytes)
			return err
		}
		if b == nil {
			break
		}
		n := BatchMemBytes(b)
		if spillable && acc.NumRows() > 0 && s.Mem.WouldExceed(n) {
			if err := flush(); err != nil {
				s.Mem.Release(accBytes)
				return err
			}
		}
		s.Mem.Charge(n)
		accBytes += n
		acc.AppendBatch(b)
	}

	if len(runs) == 0 {
		if acc.NumRows() == 0 {
			s.Mem.Release(accBytes)
			return nil
		}
		s.emit = sortBatch(acc, s.keys)
		s.charged = accBytes
		return nil
	}
	if err := flush(); err != nil {
		s.Mem.Release(accBytes)
		return err
	}
	m, err := newSortMerger(s.Spill, schema, s.keys, runs)
	if err != nil {
		return err
	}
	s.merge = m
	return nil
}

// sortMerger k-way merges spilled sorted runs. Runs hold consecutive
// input segments in order, so breaking key ties by run index reproduces
// a stable sort of the full input.
type sortMerger struct {
	cursors []*batchRunCursor
	keys    []SortSpec
	schema  types.Schema
	idx     []int // heap of cursor indexes
}

func newSortMerger(st SpillStore, schema types.Schema, keys []SortSpec, runs []SpillHandle) (*sortMerger, error) {
	m := &sortMerger{keys: keys, schema: schema}
	for _, h := range runs {
		c := &batchRunCursor{st: st, h: h, schema: schema}
		if err := c.load(); err != nil {
			return nil, err
		}
		if c.cur != nil {
			m.idx = append(m.idx, len(m.cursors))
		}
		m.cursors = append(m.cursors, c)
	}
	heap.Init(m)
	return m, nil
}

func (m *sortMerger) Len() int { return len(m.idx) }
func (m *sortMerger) Less(i, j int) bool {
	a, b := m.cursors[m.idx[i]], m.cursors[m.idx[j]]
	c := compareRowsAcross(a.cur, a.row, b.cur, b.row, m.keys)
	if c != 0 {
		return c < 0
	}
	return m.idx[i] < m.idx[j]
}
func (m *sortMerger) Swap(i, j int)      { m.idx[i], m.idx[j] = m.idx[j], m.idx[i] }
func (m *sortMerger) Push(x interface{}) { m.idx = append(m.idx, x.(int)) }
func (m *sortMerger) Pop() interface{} {
	old := m.idx
	n := len(old)
	x := old[n-1]
	m.idx = old[:n-1]
	return x
}

// next emits the next merged chunk of up to spillChunkRows rows, or nil
// when all runs are drained.
func (m *sortMerger) next() (*types.Batch, error) {
	if len(m.idx) == 0 {
		return nil, nil
	}
	out := types.NewBatch(m.schema, spillChunkRows)
	for len(m.idx) > 0 && out.NumRows() < spillChunkRows {
		c := m.cursors[m.idx[0]]
		out.AppendRow(c.cur.Row(c.row))
		c.row++
		if err := c.load(); err != nil {
			return nil, err
		}
		if c.cur == nil {
			heap.Pop(m)
		} else {
			heap.Fix(m, 0)
		}
	}
	return out, nil
}

// TopK keeps only the K smallest rows under the sort keys, using a
// bounded heap — the pattern behind dashboard top-K queries.
type TopK struct {
	input Operator
	keys  []SortSpec
	k     int
	done  bool
}

// NewTopK wraps input with a bounded sort.
func NewTopK(input Operator, keys []SortSpec, k int) *TopK {
	return &TopK{input: input, keys: keys, k: k}
}

// Schema implements Operator.
func (t *TopK) Schema() types.Schema { return t.input.Schema() }

// rowHeap is a max-heap of row indexes under the sort keys, so the
// largest retained row is evictable at the top.
type rowHeap struct {
	batch *types.Batch
	keys  []SortSpec
	idx   []int
}

func (h *rowHeap) Len() int { return len(h.idx) }
func (h *rowHeap) Less(i, j int) bool {
	return compareRows(h.batch, h.idx[i], h.idx[j], h.keys) > 0
}
func (h *rowHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *rowHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *rowHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// Next implements Operator.
func (t *TopK) Next() (*types.Batch, error) {
	if t.done {
		return nil, nil
	}
	t.done = true
	all, err := Collect(t.input)
	if err != nil {
		return nil, err
	}
	if all.NumRows() == 0 {
		return nil, nil
	}
	h := &rowHeap{batch: all, keys: t.keys}
	for i := 0; i < all.NumRows(); i++ {
		if h.Len() < t.k {
			heap.Push(h, i)
			continue
		}
		if compareRows(all, i, h.idx[0], t.keys) < 0 {
			h.idx[0] = i
			heap.Fix(h, 0)
		}
	}
	// Extract in ascending order.
	out := make([]int, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(int)
	}
	return all.Gather(out), nil
}
