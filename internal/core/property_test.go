package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"eon/internal/catalog"
	"eon/internal/objstore"
	"eon/internal/storage"
	"eon/internal/types"
)

// Property: any loaded multiset of rows comes back exactly from
// SELECT *, in both modes, regardless of how the loads were batched.
func TestPropertyLoadQueryRoundtrip(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				db := newTestDB(t, mode, 3, 3)
				s := db.NewSession()
				mustExec(t, s, `CREATE TABLE t (id INTEGER, v VARCHAR, f FLOAT)`)

				schema := types.Schema{
					{Name: "id", Type: types.Int64},
					{Name: "v", Type: types.Varchar},
					{Name: "f", Type: types.Float64},
				}
				want := map[string]int{}
				nLoads := rng.Intn(4) + 1
				for l := 0; l < nLoads; l++ {
					nRows := rng.Intn(40) + 1
					b := types.NewBatch(schema, nRows)
					for r := 0; r < nRows; r++ {
						row := types.Row{
							types.NewInt(rng.Int63n(1000)),
							types.NewString(fmt.Sprintf("s%d", rng.Intn(10))),
							types.NewFloat(float64(rng.Intn(100))),
						}
						if rng.Intn(10) == 0 {
							row[1] = types.NullDatum(types.Varchar)
						}
						b.AppendRow(row)
						want[row.String()]++
					}
					if err := db.LoadRows("t", b); err != nil {
						t.Fatal(err)
					}
				}
				res := mustQuery(t, s, `SELECT id, v, f FROM t`)
				got := map[string]int{}
				for _, r := range res.Rows() {
					got[r.String()]++
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d: distinct rows %d != %d", trial, len(got), len(want))
				}
				for k, n := range want {
					if got[k] != n {
						t.Fatalf("trial %d: row %q count %d != %d", trial, k, got[k], n)
					}
				}
			}
		})
	}
}

// Property: aggregates computed by the engine equal aggregates computed
// directly over the generated data.
func TestPropertyAggregatesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := newTestDB(t, ModeEon, 3, 3)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE m (k INTEGER, x INTEGER)`)
	schema := types.Schema{{Name: "k", Type: types.Int64}, {Name: "x", Type: types.Int64}}
	sum := map[int64]int64{}
	count := map[int64]int64{}
	b := types.NewBatch(schema, 500)
	for i := 0; i < 500; i++ {
		k := rng.Int63n(7)
		x := rng.Int63n(100)
		b.AppendRow(types.Row{types.NewInt(k), types.NewInt(x)})
		sum[k] += x
		count[k]++
	}
	if err := db.LoadRows("m", b); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, s, `SELECT k, COUNT(*) AS n, SUM(x) AS sx, MIN(x) AS lo, MAX(x) AS hi FROM m GROUP BY k ORDER BY k`)
	if res.NumRows() != len(sum) {
		t.Fatalf("groups = %d, want %d", res.NumRows(), len(sum))
	}
	for _, r := range res.Rows() {
		k := r[0].I
		if r[1].I != count[k] || r[2].I != sum[k] {
			t.Errorf("group %d: got n=%d sx=%d, want n=%d sx=%d", k, r[1].I, r[2].I, count[k], sum[k])
		}
		if r[3].I > r[4].I {
			t.Errorf("group %d: min %d > max %d", k, r[3].I, r[4].I)
		}
	}
}

// Property: DELETE then SELECT never shows deleted rows, and re-running
// the same DELETE deletes nothing.
func TestPropertyDeleteIdempotent(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 80)
	s := db.NewSession()
	res := mustExec(t, s, `DELETE FROM sales WHERE price > 25`)
	first := res.Row(t, 0)[0].I
	if first == 0 {
		t.Fatal("nothing deleted")
	}
	res = mustExec(t, s, `DELETE FROM sales WHERE price > 25`)
	if second := res.Row(t, 0)[0].I; second != 0 {
		t.Errorf("second identical delete removed %d rows", second)
	}
	if n := mustQuery(t, s, `SELECT COUNT(*) FROM sales WHERE price > 25`).Row(t, 0)[0].I; n != 0 {
		t.Errorf("%d deleted rows still visible", n)
	}
}

// Loads succeed through transient shared-storage failures via the
// balanced retry loop (§5.3).
func TestLoadSurvivesTransientS3Failures(t *testing.T) {
	sim := objstore.NewSim(objstore.NewMem(), objstore.SimConfig{
		FailureRate: 0.3, Seed: 5,
	})
	db, err := Create(Config{
		Mode:   ModeEon,
		Nodes:  []NodeSpec{{Name: "n1"}, {Name: "n2"}},
		Shared: sim, ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))}
	}
	if err := db.LoadRows("t", types.BatchFromRows(types.Schema{{Name: "id", Type: types.Int64}}, rows)); err != nil {
		t.Fatalf("load through 30%% failure rate: %v", err)
	}
	if sim.Stats().Failed == 0 {
		t.Skip("no failures were injected; nothing exercised")
	}
	// Cold reads also retry.
	for _, n := range db.Nodes() {
		n.cache.Clear(db.Context())
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 100 {
		t.Errorf("count = %v", res.Rows())
	}
}

// Partition + min/max pruning: a selective date predicate must not fetch
// every container from shared storage.
func TestPredicatePruningReducesFetches(t *testing.T) {
	sim := objstore.NewSim(objstore.NewMem(), objstore.SimConfig{})
	db, err := Create(Config{
		Mode:   ModeEon,
		Nodes:  []NodeSpec{{Name: "n1"}, {Name: "n2"}},
		Shared: sim, ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE ev (id INTEGER, bucket INTEGER) PARTITION BY bucket`)
	mustExec(t, s, `CREATE PROJECTION ev_p AS SELECT * FROM ev ORDER BY bucket SEGMENTED BY HASH(id) ALL NODES`)
	schema := types.Schema{{Name: "id", Type: types.Int64}, {Name: "bucket", Type: types.Int64}}
	b := types.NewBatch(schema, 1000)
	for i := 0; i < 1000; i++ {
		b.AppendRow(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 10))})
	}
	if err := db.LoadRows("ev", b); err != nil {
		t.Fatal(err)
	}
	// Cold caches + bypass so every fetch hits the (counted) store.
	for _, n := range db.Nodes() {
		n.cache.Clear(db.Context())
	}
	cold := db.NewSession()
	cold.BypassCache = true

	sim.ResetStats()
	full := mustQuery(t, cold, `SELECT COUNT(*) FROM ev`)
	fullGets := sim.Stats().Gets
	if full.Row(t, 0)[0].I != 1000 {
		t.Fatalf("full count = %v", full.Rows())
	}

	sim.ResetStats()
	one := mustQuery(t, cold, `SELECT COUNT(*) FROM ev WHERE bucket = 3`)
	prunedGets := sim.Stats().Gets
	if one.Row(t, 0)[0].I != 100 {
		t.Fatalf("bucket count = %v", one.Rows())
	}
	if prunedGets*2 > fullGets {
		t.Errorf("pruning ineffective: %d gets with predicate vs %d full scan", prunedGets, fullGets)
	}
}

// A killed node mid-query stream never produces wrong results — queries
// either succeed (with a new assignment) or fail cleanly.
func TestKillDuringQueryStream(t *testing.T) {
	db := newTestDB(t, ModeEon, 4, 3)
	setupSales(t, db, 300)
	stop := time.Now().Add(300 * time.Millisecond)
	killed := false
	for time.Now().Before(stop) {
		if !killed && time.Now().Add(-150*time.Millisecond).Before(stop) {
			go db.KillNode("node4")
			killed = true
		}
		res, err := db.NewSession().Query(`SELECT COUNT(*) FROM sales`)
		if err != nil {
			continue // clean failure is acceptable mid-kill
		}
		if res.Row(t, 0)[0].I != 300 {
			t.Fatalf("wrong answer during node kill: %v", res.Rows())
		}
	}
}

// sortInvariant: containers store tuples sorted by the projection sort
// key (verified through the storage layer).
func TestContainersSortedByProjectionKey(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (a INTEGER, b INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION t_p AS SELECT * FROM t ORDER BY b SEGMENTED BY HASH(a) ALL NODES`)
	rng := rand.New(rand.NewSource(3))
	schema := types.Schema{{Name: "a", Type: types.Int64}, {Name: "b", Type: types.Int64}}
	b := types.NewBatch(schema, 200)
	for i := 0; i < 200; i++ {
		b.AppendRow(types.Row{types.NewInt(rng.Int63n(1000)), types.NewInt(rng.Int63n(1000))})
	}
	if err := db.LoadRows("t", b); err != nil {
		t.Fatal(err)
	}
	// Scanning with ORDER BY b per shard should already be sorted within
	// containers; verify via a full read and per-container check.
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	tbl, _ := snap.TableByName("t")
	checked := 0
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		if p.Name != "t_p" {
			continue
		}
		for _, sc := range snap.ContainersOf(p.OID, -1) {
			node := db.nodeForStorage(sc)
			batch, err := readContainer(t, db, node, sc)
			if err != nil {
				t.Fatal(err)
			}
			vals := batch.Cols[1].Ints
			if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
				t.Errorf("container %d not sorted by b", sc.OID)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no containers checked")
	}
}

// readContainer materializes a container's full projection contents.
func readContainer(t *testing.T, db *DB, node *Node, sc *catalog.StorageContainer) (*types.Batch, error) {
	t.Helper()
	snap := node.catalog.Snapshot()
	po, ok := snap.Get(sc.ProjOID)
	if !ok {
		t.Fatalf("projection %d missing", sc.ProjOID)
	}
	proj := po.(*catalog.Projection)
	to, _ := snap.Get(proj.TableOID)
	tbl := to.(*catalog.Table)
	return storage.ReadColumns(db.Context(), sc, projectionSchema(tbl, proj.Columns), db.fetchFunc(node, false), 4)
}
