package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"eon/internal/catalog"
	"eon/internal/exec"
	"eon/internal/netsim"
	"eon/internal/obs"
	"eon/internal/planner"
	"eon/internal/types"
)

// This file is the streaming distributed executor: the default engine
// behind Session.Query. Where the materialized path (execute.go, kept
// behind Config.MaterializedExec for one release) evaluates each plan
// node into per-node batch slices before its parent starts, the
// streaming path builds one pull-based operator pipeline per node and
// connects fragments with small bounded channels, so scan, operator and
// inter-node transfer work overlap and the memory in flight per edge is
// a few batches rather than a stage's full output.
//
// Cross-goroutine edges (scan fragments, gathers, reshuffles,
// broadcasts) are chanOp/mchanOp instances: a driver goroutine drains
// the upstream chain and pushes batches through a channel of depth
// streamDepth, giving natural backpressure. Every driver select-waits on
// the per-query stream context, so cancellation — a session timeout, a
// node failure, or the top-level LIMIT stopping its pull early — tears
// the whole pipeline down promptly: drivers blocked in a channel send or
// inside a scan or network transfer observe ctx.Done and exit, and
// shutdown waits for them all before the query returns.
//
// Row order is kept byte-identical to the materialized path: gathers
// concatenate per-node streams in sorted node order, per-node chains
// mirror execute.go operator for operator, and the pipeline breakers
// (sort, hash aggregate) either never spill (no budget) — in which case
// their output order is exactly the in-memory one — or degrade as
// documented in their own packages.
//
// The per-query memory governor (Session.MemoryBudget, defaulted from
// Config.QueryMemoryBudget) is threaded into every pipeline breaker:
// one exec.MemGovernor per participating node accounts the bytes hash
// tables and sort buffers hold, mirrored into the database-wide
// "exec.mem_bytes" gauge, and when the budget is finite the breakers
// spill key-sorted runs to the node's local disk (exec.FSSpill under
// spill/q<id>/) instead of exceeding it.

// streamDepth is the batch capacity of every cross-goroutine edge: deep
// enough to overlap producer and consumer, shallow enough that an edge
// holds only a few batches.
const streamDepth = 2

// streamResult is the streaming analog of distResult: a per-node set of
// operator chains still distributed across the cluster, a single
// initiator-side stream, or a shared once-materialized copy (replicated
// scans and broadcast sides, which several consumers replay).
type streamResult struct {
	perNode map[string]exec.Operator
	single  exec.Operator
	shared  *sharedBatches
	// replicated marks the result as a full copy logically available on
	// every node.
	replicated bool
	// needGlobalDistinct defers duplicate elimination to gather time.
	needGlobalDistinct bool
	schema             types.Schema
	// sp is the producing plan node's span; consumers count the rows
	// they pull from this result as its rows-out.
	sp *obs.Span
}

// gathered reports whether the result already lives on the initiator.
func (r *streamResult) gathered() bool { return r.perNode == nil }

// op returns an initiator-side operator over a gathered result. Shared
// results get a fresh replay per call, so a broadcast side can feed
// every per-node join.
func (r *streamResult) op() exec.Operator {
	if r.shared != nil {
		sh := r.shared
		schema := r.schema
		return &lazyOp{schema: schema, build: func() (exec.Operator, error) {
			batches, err := sh.get()
			if err != nil {
				return nil, err
			}
			return exec.NewSource(schema, batches...), nil
		}}
	}
	return r.single
}

// sharedBatches materializes one stream exactly once, for results with
// several consumers. The first consumer to pull runs the drain; the
// rest block on the once and then replay the batches.
type sharedBatches struct {
	once    sync.Once
	run     func() ([]*types.Batch, error)
	batches []*types.Batch
	err     error
}

func (s *sharedBatches) get() ([]*types.Batch, error) {
	s.once.Do(func() { s.batches, s.err = s.run() })
	return s.batches, s.err
}

// lazyOp defers building its inner operator until the first pull (the
// inner build may block, e.g. on a shared materialization).
type lazyOp struct {
	schema types.Schema
	build  func() (exec.Operator, error)
	op     exec.Operator
	err    error
}

func (l *lazyOp) Schema() types.Schema { return l.schema }

func (l *lazyOp) Next() (*types.Batch, error) {
	if l.err != nil {
		return nil, l.err
	}
	if l.op == nil {
		l.op, l.err = l.build()
		if l.err != nil {
			return nil, l.err
		}
	}
	return l.op.Next()
}

// spanCount attributes the batches flowing across a plan-node edge:
// rows leaving the child (out on its span) are rows entering the
// consumer (in on its span).
type spanCount struct {
	op      exec.Operator
	out, in *obs.Span
}

func (c *spanCount) Schema() types.Schema { return c.op.Schema() }

func (c *spanCount) Next() (*types.Batch, error) {
	b, err := c.op.Next()
	if b != nil {
		n := int64(b.NumRows())
		c.out.AddRowsOut(n)
		c.in.AddRowsIn(n)
	}
	return b, err
}

// edge wraps op with flow accounting between the producing node's span
// and the consuming node's span (no-op wrapper elided when tracing is
// off).
func edge(op exec.Operator, out, in *obs.Span) exec.Operator {
	if out == nil && in == nil {
		return op
	}
	return &spanCount{op: op, out: out, in: in}
}

// chanOp bridges one producer goroutine to one consumer as an Operator.
// The driver is started lazily on the first pull (begin), pushes batches
// through a bounded channel, and reports its terminal error through
// errc; both sides select on the stream context so cancellation unblocks
// them.
type chanOp struct {
	schema types.Schema
	ctx    context.Context
	ch     chan *types.Batch
	errc   chan error
	begin  func()

	started bool // consumer-side only
	done    bool
}

func newChanOp(ctx context.Context, schema types.Schema) *chanOp {
	return &chanOp{
		schema: schema, ctx: ctx,
		ch:   make(chan *types.Batch, streamDepth),
		errc: make(chan error, 1),
	}
}

// Schema implements Operator.
func (c *chanOp) Schema() types.Schema { return c.schema }

// push hands one batch to the consumer, honoring cancellation.
func (c *chanOp) push(b *types.Batch) error {
	select {
	case c.ch <- b:
		return nil
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// finish terminates the stream. A non-nil err reaches the consumer no
// later than the channel close.
func (c *chanOp) finish(err error) {
	if err != nil {
		c.errc <- err
	}
	close(c.ch)
}

// ensureStarted fires the driver once (consumer goroutine only).
func (c *chanOp) ensureStarted() {
	if !c.started {
		c.started = true
		if c.begin != nil {
			c.begin()
		}
	}
}

// Next implements Operator.
func (c *chanOp) Next() (*types.Batch, error) {
	if c.done {
		return nil, nil
	}
	c.ensureStarted()
	select {
	case b, ok := <-c.ch:
		if !ok {
			c.done = true
			select {
			case err := <-c.errc:
				return nil, err
			default:
				return nil, nil
			}
		}
		return b, nil
	case err := <-c.errc:
		c.done = true
		return nil, err
	case <-c.ctx.Done():
		c.done = true
		return nil, c.ctx.Err()
	}
}

// mchanOp is a chanOp with several producers (the reshuffle exchange):
// the stream ends when every producer has finished, and the first error
// wins.
type mchanOp struct {
	schema    types.Schema
	ctx       context.Context
	ch        chan *types.Batch
	errc      chan error
	begin     func()
	mu        sync.Mutex
	remaining int

	started bool // consumer-side only
	done    bool
}

func newMchanOp(ctx context.Context, schema types.Schema, producers int) *mchanOp {
	return &mchanOp{
		schema: schema, ctx: ctx,
		ch:        make(chan *types.Batch, streamDepth),
		errc:      make(chan error, 1),
		remaining: producers,
	}
}

// Schema implements Operator.
func (m *mchanOp) Schema() types.Schema { return m.schema }

func (m *mchanOp) push(b *types.Batch) error {
	select {
	case m.ch <- b:
		return nil
	case <-m.ctx.Done():
		return m.ctx.Err()
	}
}

// finish records one producer's completion; the last one closes the
// channel.
func (m *mchanOp) finish(err error) {
	if err != nil {
		select {
		case m.errc <- err:
		default:
		}
	}
	m.mu.Lock()
	m.remaining--
	last := m.remaining == 0
	m.mu.Unlock()
	if last {
		close(m.ch)
	}
}

func (m *mchanOp) ensureStarted() {
	if !m.started {
		m.started = true
		if m.begin != nil {
			m.begin()
		}
	}
}

// Next implements Operator.
func (m *mchanOp) Next() (*types.Batch, error) {
	if m.done {
		return nil, nil
	}
	m.ensureStarted()
	select {
	case b, ok := <-m.ch:
		if !ok {
			m.done = true
			select {
			case err := <-m.errc:
				return nil, err
			default:
				return nil, nil
			}
		}
		return b, nil
	case err := <-m.errc:
		m.done = true
		return nil, err
	case <-m.ctx.Done():
		m.done = true
		return nil, m.ctx.Err()
	}
}

// eagerStart fires a set of drivers on the first pull, so every
// fragment of a gather executes concurrently even though the consumer
// reads their streams sequentially in node order.
type eagerStart struct {
	op      exec.Operator
	chans   []*chanOp
	started bool
}

func (e *eagerStart) Schema() types.Schema { return e.op.Schema() }

func (e *eagerStart) Next() (*types.Batch, error) {
	if !e.started {
		e.started = true
		for _, c := range e.chans {
			c.ensureStarted()
		}
	}
	return e.op.Next()
}

// streamCtx is the per-query state of the streaming executor: the
// cancellable context every edge selects on, the driver goroutines to
// wait for, the plan-node spans to close, and the per-node memory
// governors and spill stores.
type streamCtx struct {
	db     *DB
	env    *queryEnv
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	root   *obs.Span
	qid    uint64

	mu     sync.Mutex
	spans  []*obs.Span
	govs   map[string]*exec.MemGovernor
	spills map[string]*exec.FSSpill
}

func (db *DB) newStreamCtx(env *queryEnv, root *obs.Span) *streamCtx {
	ctx, cancel := context.WithCancel(env.ctx)
	return &streamCtx{
		db: db, env: env, ctx: ctx, cancel: cancel, root: root,
		qid:    db.queryCtr.Add(1),
		govs:   map[string]*exec.MemGovernor{},
		spills: map[string]*exec.FSSpill{},
	}
}

// spawn runs fn as a tracked pipeline goroutine.
func (sc *streamCtx) spawn(fn func()) {
	sc.wg.Add(1)
	go func() {
		defer sc.wg.Done()
		fn()
	}()
}

// addSpan registers a plan-node span for closing at shutdown.
func (sc *streamCtx) addSpan(sp *obs.Span) {
	if sp == nil {
		return
	}
	sc.mu.Lock()
	sc.spans = append(sc.spans, sp)
	sc.mu.Unlock()
}

// gov returns the node's memory governor, mirroring charges into the
// database's exec.mem_bytes gauge.
func (sc *streamCtx) gov(node string) *exec.MemGovernor {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	g, ok := sc.govs[node]
	if !ok {
		g = exec.NewMemGovernor(sc.env.session.MemoryBudget, sc.db.execMem.Add)
		sc.govs[node] = g
	}
	return g
}

// spillFor returns the node's spill store (its local disk under a
// per-query prefix), or nil when no finite budget is set — breakers
// without a store never spill.
func (sc *streamCtx) spillFor(node string) exec.SpillStore {
	if sc.env.session.MemoryBudget <= 0 {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	s, ok := sc.spills[node]
	if !ok {
		n, okn := sc.db.Node(node)
		if !okn {
			return nil
		}
		s = exec.NewFSSpill(sc.ctx, n.fs, fmt.Sprintf("spill/q%d", sc.qid))
		sc.spills[node] = s
	}
	return s
}

// shutdown tears the pipeline down: cancel unblocks every driver, wait
// for them, close the plan-node spans, then fold the governors into the
// query's ExecStats (published on the session, the root span and the
// database's exec metrics) and remove the spill files.
func (sc *streamCtx) shutdown() {
	sc.cancel()
	sc.wg.Wait()
	for i := len(sc.spans) - 1; i >= 0; i-- {
		sc.spans[i].End()
	}
	var st ExecStats
	st.Streaming = true
	for _, g := range sc.govs {
		if p := g.Peak(); p > st.PeakMemBytes {
			st.PeakMemBytes = p
		}
		st.SpillCount += g.Spills()
		st.SpillBytes += g.SpillBytes()
		g.Close()
	}
	db := sc.db
	db.execPeak.Observe(st.PeakMemBytes)
	db.execSpills.Add(st.SpillCount)
	db.execSpillBytes.Add(st.SpillBytes)
	if st.SpillCount > 0 {
		db.dcSpills.Emit(obs.DCEvent{
			Node: sc.env.initiator.name,
			V1:   st.PeakMemBytes, V2: st.SpillCount, V3: st.SpillBytes,
		})
	}
	sc.root.AddAttr("peak_mem_bytes", st.PeakMemBytes)
	sc.root.AddAttr("spills", st.SpillCount)
	sc.root.AddAttr("spill_bytes", st.SpillBytes)
	s := sc.env.session
	s.statsMu.Lock()
	s.lastExec = st
	s.statsMu.Unlock()
	// Spill cleanup runs under its own context: the query's is canceled.
	for _, sp := range sc.spills {
		_ = sp.Cleanup(context.Background())
	}
}

// runStreaming executes a plan through the streaming engine and drains
// the top of the pipeline into the final result batch.
func (db *DB) runStreaming(env *queryEnv, plan *planner.Plan, root *obs.Span) (*types.Batch, error) {
	sc := db.newStreamCtx(env, root)
	defer sc.shutdown()
	res, err := sc.build(plan.Root, root)
	if err != nil {
		return nil, err
	}
	gatherSp := root.StartSpan("gather")
	defer gatherSp.End()
	top := sc.gatherTo(res, gatherSp)
	final := types.NewBatch(res.schema, 0)
	for {
		b, err := top.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		final.AppendBatch(b)
	}
	gatherSp.AddRowsOut(int64(final.NumRows()))
	return final, nil
}

// sortedNames returns a result's node names in the deterministic gather
// order.
func sortedNames(perNode map[string]exec.Operator) []string {
	names := make([]string, 0, len(perNode))
	for n := range perNode {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// gatherTo returns an initiator-side operator over a distributed
// result. One driver per source node drains that node's chain and
// streams its batches toward the initiator — non-initiator nodes pay a
// chunked network stream per batch, overlapping transfer with upstream
// compute — while the consumer concatenates the per-node streams in
// sorted node order (exactly the materialized gather's row order) and
// applies any pending global distinct. All drivers start on the first
// pull, so fragments run concurrently.
func (sc *streamCtx) gatherTo(res *streamResult, consumer *obs.Span) exec.Operator {
	if res.gathered() {
		return edge(res.op(), res.sp, consumer)
	}
	env, db := sc.env, sc.db
	names := sortedNames(res.perNode)
	parts := make([]exec.Operator, len(names))
	chans := make([]*chanOp, len(names))
	for i, name := range names {
		name, nodeOp := name, res.perNode[name]
		ch := newChanOp(sc.ctx, res.schema)
		ch.begin = func() {
			sc.spawn(func() {
				n, ok := db.Node(name)
				if !ok || !n.Up() {
					ch.finish(fmt.Errorf("%w: %s", errNodeDown, name))
					return
				}
				var stream *netsim.Stream
				if name != env.initiator.name {
					stream = db.net.Stream(name, env.initiator.name)
				}
				err := func() error {
					for {
						b, err := nodeOp.Next()
						if err != nil {
							return err
						}
						if b == nil {
							return nil
						}
						if b.NumRows() == 0 {
							continue
						}
						if stream != nil {
							if err := stream.Send(sc.ctx, batchBytes(b)); err != nil {
								return fmt.Errorf("%w: gather from %s: %v", errNodeDown, name, err)
							}
						}
						if err := ch.push(b); err != nil {
							return err
						}
					}
				}()
				ch.finish(err)
			})
		}
		chans[i] = ch
		parts[i] = ch
	}
	var combined exec.Operator = &eagerStart{op: exec.NewUnionAll(parts...), chans: chans}
	combined = edge(combined, res.sp, consumer)
	if res.needGlobalDistinct {
		d := exec.NewDistinct(combined)
		d.Eng = env.eng()
		combined = d
	}
	return combined
}

// build recursively translates a plan node into a streaming result. The
// plan-node span stays open while the pipeline runs (operators execute
// lazily under it) and closes at shutdown.
func (sc *streamCtx) build(node planner.Node, parent *obs.Span) (*streamResult, error) {
	sp := parent.StartSpan(spanName(node))
	sc.addSpan(sp)
	switch n := node.(type) {
	case *planner.Scan:
		return sc.buildScan(n, sp)
	case *planner.Filter:
		return sc.buildFilter(n, sp)
	case *planner.Project:
		return sc.buildProject(n, sp)
	case *planner.Join:
		return sc.buildJoin(n, sp)
	case *planner.Aggregate:
		return sc.buildAggregate(n, sp)
	case *planner.DistinctNode:
		return sc.buildDistinct(n, sp)
	case *planner.Sort:
		return sc.buildSort(n, sp)
	case *planner.Limit:
		return sc.buildLimit(n, sp)
	}
	return nil, fmt.Errorf("core: unknown plan node %T", node)
}

// mapResult wraps every stream of a result with a per-node operator
// stage, preserving its distribution. apply receives the executing
// node's name so stages can attach that node's governor.
func (sc *streamCtx) mapResult(in *streamResult, schema types.Schema, sp *obs.Span, apply func(node string, op exec.Operator) exec.Operator) *streamResult {
	out := &streamResult{
		schema: schema, sp: sp,
		replicated:         in.replicated,
		needGlobalDistinct: in.needGlobalDistinct,
	}
	initiator := sc.env.initiator.name
	switch {
	case in.shared != nil:
		out.shared = &sharedBatches{run: func() ([]*types.Batch, error) {
			b, err := exec.Collect(apply(initiator, in.op()))
			if err != nil {
				return nil, err
			}
			return wrap(b), nil
		}}
	case in.gathered():
		out.single = apply(initiator, in.single)
	default:
		out.perNode = map[string]exec.Operator{}
		for name, op := range in.perNode {
			out.perNode[name] = apply(name, op)
		}
	}
	return out
}

// scanOp returns the streaming scan of one node's fragment: a driver
// goroutine runs the scan pipeline (container pruning, bounded-fan-out
// fetch, decode, filter) and feeds surviving batches through the edge
// channel, so downstream operators consume rows while later containers
// are still being fetched, and a canceled query stops the scan
// mid-container.
func (sc *streamCtx) scanOp(n *Node, scan *planner.Scan, tasks []scanTask, mode CrunchMode, sp *obs.Span) exec.Operator {
	env := sc.env
	ch := newChanOp(sc.ctx, scan.OutSchema)
	ch.begin = func() {
		sc.spawn(func() {
			if !n.Up() {
				ch.finish(fmt.Errorf("%w: %s", errNodeDown, n.name))
				return
			}
			fragSp := sp.StartSpan("fragment:" + n.name)
			defer fragSp.End()
			ctx := obs.WithSpan(sc.ctx, fragSp)
			err := sc.db.scanFragmentStream(ctx, n, scan, tasks, env.snapshotFor(n.name),
				env.session.BypassCache, mode, env.session.RowEngine, env.stats,
				func(b *types.Batch) error { return ch.push(b) })
			ch.finish(err)
		})
	}
	return ch
}

func (sc *streamCtx) buildScan(scan *planner.Scan, sp *obs.Span) (*streamResult, error) {
	env := sc.env
	if scan.Virtual {
		// System-table scan: materialize the virtual table on the
		// initiator from live monitoring state (its Fill takes a snapshot
		// cut; no storage, no hot-path locks), then flow it like any
		// replicated source.
		db := sc.db
		res := &streamResult{replicated: true, schema: scan.OutSchema, sp: sp}
		res.shared = &sharedBatches{run: func() ([]*types.Batch, error) {
			fillSp := sp.StartSpan("fill:" + scan.Table.Name)
			b, err := db.materializeVirtual(scan, env.session.RowEngine, env.stats)
			if err != nil {
				fillSp.End()
				return nil, err
			}
			fillSp.AddRowsOut(int64(b.NumRows()))
			fillSp.End()
			return wrap(b), nil
		}}
		return res, nil
	}
	if scan.Replicated {
		// Replicated projections are read once — preferentially on the
		// initiator — and replayed by every consumer.
		op := sc.scanOp(env.initiator, scan, []scanTask{{Shard: catalog.ReplicaShard, Of: 1}}, CrunchOff, sp)
		res := &streamResult{replicated: true, schema: scan.OutSchema, sp: sp}
		res.shared = &sharedBatches{run: func() ([]*types.Batch, error) {
			b, err := exec.Collect(edge(op, sp, nil))
			if err != nil {
				return nil, err
			}
			return wrap(b), nil
		}}
		return res, nil
	}
	res := &streamResult{perNode: map[string]exec.Operator{}, schema: scan.OutSchema, sp: sp}
	for _, name := range env.nodes {
		tasks := env.nodeTasks(name)
		if len(tasks) == 0 {
			continue
		}
		n, ok := sc.db.Node(name)
		if !ok || !n.Up() {
			return nil, fmt.Errorf("%w: %s", errNodeDown, name)
		}
		res.perNode[name] = sc.scanOp(n, scan, tasks, env.session.Crunch, sp)
	}
	return res, nil
}

func (sc *streamCtx) buildFilter(f *planner.Filter, sp *obs.Span) (*streamResult, error) {
	in, err := sc.build(f.Input, sp)
	if err != nil {
		return nil, err
	}
	eng := sc.env.eng()
	return sc.mapResult(in, f.Schema(), sp, func(_ string, op exec.Operator) exec.Operator {
		fl := exec.NewFilter(edge(op, in.sp, sp), f.Pred)
		fl.Eng = eng
		return fl
	}), nil
}

func (sc *streamCtx) buildProject(p *planner.Project, sp *obs.Span) (*streamResult, error) {
	in, err := sc.build(p.Input, sp)
	if err != nil {
		return nil, err
	}
	eng := sc.env.eng()
	return sc.mapResult(in, p.Schema(), sp, func(_ string, op exec.Operator) exec.Operator {
		pr := exec.NewProject(edge(op, in.sp, sp), p.Exprs, p.Names)
		pr.Eng = eng
		return pr
	}), nil
}

// broadcast gathers a result on the initiator and ships every batch to
// each other participant over a per-peer chunked stream as it arrives,
// overlapping transfer with the upstream pipeline. The returned result
// is replicated (a shared cell every per-node join replays).
func (sc *streamCtx) broadcast(res *streamResult, sp *obs.Span) *streamResult {
	env, db := sc.env, sc.db
	out := &streamResult{replicated: true, schema: res.schema, sp: res.sp}
	out.shared = &sharedBatches{run: func() ([]*types.Batch, error) {
		src := sc.gatherTo(res, sp)
		var peers []string
		for _, name := range env.nodes {
			if name != env.initiator.name {
				peers = append(peers, name)
			}
		}
		streams := make([]*netsim.Stream, len(peers))
		for i, p := range peers {
			streams[i] = db.net.Stream(env.initiator.name, p)
		}
		var batches []*types.Batch
		for {
			b, err := src.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				return batches, nil
			}
			if b.NumRows() == 0 {
				continue
			}
			size := batchBytes(b)
			for i, p := range peers {
				if err := streams[i].Send(sc.ctx, size); err != nil {
					return nil, fmt.Errorf("%w: broadcast to %s: %v", errNodeDown, p, err)
				}
			}
			batches = append(batches, b)
		}
	}}
	return out
}

// exchange repartitions a result across the participating nodes by key
// hash: one driver per source node drains its stream, splits each batch
// by hash, and forwards every partition to its target — remote parts
// over a chunked per-link stream — so repartitioned rows reach the
// consuming joins batch by batch instead of materializing per stage.
func (sc *streamCtx) exchange(res *streamResult, schema types.Schema, keys []int) map[string]exec.Operator {
	env, db := sc.env, sc.db
	targets := env.nodes
	nParts := len(targets)

	type source struct {
		name string
		op   exec.Operator
	}
	var sources []source
	if res.gathered() {
		sources = append(sources, source{env.initiator.name, res.op()})
	} else {
		for _, name := range sortedNames(res.perNode) {
			sources = append(sources, source{name, res.perNode[name]})
		}
	}

	outs := make(map[string]*mchanOp, nParts)
	for _, t := range targets {
		outs[t] = newMchanOp(sc.ctx, schema, len(sources))
	}
	// All sources start when any target is first pulled: every target's
	// consumer runs in its own gather driver, so no partition stream
	// lacks a consumer and the exchange cannot deadlock.
	var startOnce sync.Once
	start := func() {
		startOnce.Do(func() {
			for _, src := range sources {
				src := src
				sc.spawn(func() {
					err := func() error {
						streams := map[string]*netsim.Stream{}
						for {
							b, err := src.op.Next()
							if err != nil {
								return err
							}
							if b == nil {
								return nil
							}
							if b.NumRows() == 0 {
								continue
							}
							parts := exec.PartitionByHash(b, keys, nParts)
							for pi, part := range parts {
								if part == nil || part.NumRows() == 0 {
									continue
								}
								target := targets[pi]
								if target != src.name {
									st := streams[target]
									if st == nil {
										st = db.net.Stream(src.name, target)
										streams[target] = st
									}
									if err := st.Send(sc.ctx, batchBytes(part)); err != nil {
										return fmt.Errorf("%w: reshuffle %s->%s: %v", errNodeDown, src.name, target, err)
									}
								}
								if err := outs[target].push(part); err != nil {
									return err
								}
							}
						}
					}()
					for _, t := range targets {
						outs[t].finish(err)
					}
				})
			}
		})
	}
	ops := make(map[string]exec.Operator, nParts)
	for _, t := range targets {
		m := outs[t]
		m.begin = start
		ops[t] = m
	}
	return ops
}

func (sc *streamCtx) buildJoin(j *planner.Join, sp *obs.Span) (*streamResult, error) {
	env := sc.env
	left, err := sc.build(j.Left, sp)
	if err != nil {
		return nil, err
	}
	right, err := sc.build(j.Right, sp)
	if err != nil {
		return nil, err
	}
	eng := env.eng()

	// joinOn builds one node's join: the build side is charged to that
	// node's governor for the lifetime of the probe.
	joinOn := func(node string, lop, rop exec.Operator) exec.Operator {
		op := exec.NewHashJoin(lop, rop, j.LeftKeys, j.RightKeys)
		op.Eng = eng
		op.Mem = sc.gov(node)
		var post exec.Operator = op
		if j.ResidualPred != nil {
			f := exec.NewFilter(op, j.ResidualPred)
			f.Eng = eng
			post = f
		}
		return post
	}

	// Both sides already on the initiator: local join there. A join of
	// two replicated sides stays replicated (shared, multi-consumer).
	if left.gathered() && right.gathered() {
		mk := func() exec.Operator {
			return joinOn(env.initiator.name, edge(left.op(), left.sp, sp), edge(right.op(), right.sp, sp))
		}
		if left.replicated && right.replicated {
			res := &streamResult{replicated: true, schema: j.Schema(), sp: sp}
			res.shared = &sharedBatches{run: func() ([]*types.Batch, error) {
				b, err := exec.Collect(mk())
				if err != nil {
					return nil, err
				}
				return wrap(b), nil
			}}
			return res, nil
		}
		return &streamResult{single: mk(), schema: j.Schema(), sp: sp}, nil
	}

	switch j.Strategy {
	case planner.JoinBroadcastRight:
		right = sc.broadcast(right, sp)
		fallthrough

	case planner.JoinLocal:
		if right.gathered() && right.replicated {
			// Join each left fragment against the full right copy.
			if left.gathered() {
				return &streamResult{
					single: joinOn(env.initiator.name, edge(left.op(), left.sp, sp), edge(right.op(), right.sp, sp)),
					schema: j.Schema(), sp: sp,
				}, nil
			}
			out := &streamResult{perNode: map[string]exec.Operator{}, schema: j.Schema(), sp: sp}
			for name, lop := range left.perNode {
				out.perNode[name] = joinOn(name, edge(lop, left.sp, sp), edge(right.op(), right.sp, sp))
			}
			return out, nil
		}
		if left.gathered() && left.replicated {
			out := &streamResult{perNode: map[string]exec.Operator{}, schema: j.Schema(), sp: sp}
			for name, rop := range right.perNode {
				out.perNode[name] = joinOn(name, edge(left.op(), left.sp, sp), edge(rop, right.sp, sp))
			}
			return out, nil
		}
		// A non-replicated gathered side (e.g. after a distinct): finish
		// the join on the initiator.
		if left.gathered() || right.gathered() {
			return &streamResult{
				single: joinOn(env.initiator.name, sc.gatherTo(left, sp), sc.gatherTo(right, sp)),
				schema: j.Schema(), sp: sp,
			}, nil
		}
		names := map[string]bool{}
		for name := range left.perNode {
			names[name] = true
		}
		for name := range right.perNode {
			names[name] = true
		}
		out := &streamResult{perNode: map[string]exec.Operator{}, schema: j.Schema(), sp: sp}
		for name := range names {
			lop, rop := left.perNode[name], right.perNode[name]
			if lop == nil {
				lop = exec.NewSource(j.Left.Schema())
			}
			if rop == nil {
				rop = exec.NewSource(j.Right.Schema())
			}
			out.perNode[name] = joinOn(name, edge(lop, left.sp, sp), edge(rop, right.sp, sp))
		}
		return out, nil

	case planner.JoinReshuffleBoth:
		lsh := sc.exchange(left, j.Left.Schema(), j.LeftKeys)
		rsh := sc.exchange(right, j.Right.Schema(), j.RightKeys)
		out := &streamResult{perNode: map[string]exec.Operator{}, schema: j.Schema(), sp: sp}
		for _, name := range env.nodes {
			out.perNode[name] = joinOn(name, edge(lsh[name], left.sp, sp), edge(rsh[name], right.sp, sp))
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown join strategy %v", j.Strategy)
}

func (sc *streamCtx) buildAggregate(a *planner.Aggregate, sp *obs.Span) (*streamResult, error) {
	env := sc.env
	in, err := sc.build(a.Input, sp)
	if err != nil {
		return nil, err
	}
	inSchema := a.Input.Schema()
	eng := env.eng()

	// aggOn builds one node's aggregation, budget-governed with the
	// node's local disk as its spill store.
	aggOn := func(node string, op exec.Operator, partial bool) exec.Operator {
		h := exec.NewHashAggregate(op, a.Keys, a.KeyNames, a.Aggs, partial)
		h.Eng = eng
		h.Mem = sc.gov(node)
		h.Spill = sc.spillFor(node)
		return h
	}

	// Gathered or replicated input: aggregate once on the initiator.
	if in.gathered() {
		return &streamResult{
			single: aggOn(env.initiator.name, edge(in.op(), in.sp, sp), false),
			schema: a.Schema(), sp: sp,
		}, nil
	}

	switch a.Mode {
	case planner.AggLocalFinal:
		// Per-node groups are disjoint; aggregate fully locally (§4).
		out := &streamResult{perNode: map[string]exec.Operator{}, schema: a.Schema(), sp: sp}
		for name, op := range in.perNode {
			out.perNode[name] = aggOn(name, edge(op, in.sp, sp), false)
		}
		return out, nil

	case planner.AggInitiatorOnly:
		return &streamResult{
			single: aggOn(env.initiator.name, sc.gatherTo(in, sp), false),
			schema: a.Schema(), sp: sp,
		}, nil

	case planner.AggTwoPhase:
		// Phase 1 per node; the partial streams gather into the phase-2
		// merge on the initiator without materializing in between.
		partialSchema := exec.NewHashAggregate(exec.NewSource(inSchema), a.Keys, a.KeyNames, a.Aggs, true).Schema()
		mid := &streamResult{perNode: map[string]exec.Operator{}, schema: partialSchema}
		for name, op := range in.perNode {
			mid.perNode[name] = aggOn(name, edge(op, in.sp, sp), true)
		}
		mergeKeys, mergeAggs, err := mergeDefs(a, partialSchema)
		if err != nil {
			return nil, err
		}
		h := exec.NewHashAggregate(sc.gatherTo(mid, sp), mergeKeys, a.KeyNames, mergeAggs, false)
		h.Eng = eng
		h.Mem = sc.gov(env.initiator.name)
		h.Spill = sc.spillFor(env.initiator.name)
		return &streamResult{single: h, schema: a.Schema(), sp: sp}, nil
	}
	return nil, fmt.Errorf("core: unknown aggregate mode %v", a.Mode)
}

func (sc *streamCtx) buildDistinct(d *planner.DistinctNode, sp *obs.Span) (*streamResult, error) {
	in, err := sc.build(d.Input, sp)
	if err != nil {
		return nil, err
	}
	eng := sc.env.eng()
	out := sc.mapResult(in, d.Schema(), sp, func(_ string, op exec.Operator) exec.Operator {
		dd := exec.NewDistinct(edge(op, in.sp, sp))
		dd.Eng = eng
		return dd
	})
	// Local dedupe per node; the global pass happens at gather (same
	// contract as the materialized path).
	if !out.gathered() {
		out.needGlobalDistinct = true
	}
	return out, nil
}

// sortOn builds the initiator's budget-governed sort over a gathered
// stream.
func (sc *streamCtx) sortOn(input exec.Operator, keys []exec.SortSpec) *exec.Sort {
	op := exec.NewSort(input, keys)
	op.Mem = sc.gov(sc.env.initiator.name)
	op.Spill = sc.spillFor(sc.env.initiator.name)
	return op
}

func (sc *streamCtx) buildSort(s *planner.Sort, sp *obs.Span) (*streamResult, error) {
	in, err := sc.build(s.Input, sp)
	if err != nil {
		return nil, err
	}
	return &streamResult{
		single: sc.sortOn(sc.gatherTo(in, sp), s.Keys),
		schema: s.Schema(), sp: sp,
	}, nil
}

func (sc *streamCtx) buildLimit(l *planner.Limit, sp *obs.Span) (*streamResult, error) {
	// Sort child: push a local top-k below the gather (dashboard top-k
	// pattern), then re-sort the k-per-node survivors on the initiator.
	if srt, ok := l.Input.(*planner.Sort); ok {
		in, err := sc.build(srt.Input, sp)
		if err != nil {
			return nil, err
		}
		res := in
		if !in.gathered() {
			res = sc.mapResult(in, srt.Schema(), sp, func(_ string, op exec.Operator) exec.Operator {
				return exec.NewTopK(edge(op, in.sp, sp), srt.Keys, int(l.N))
			})
		}
		return &streamResult{
			single: exec.NewLimit(sc.sortOn(sc.gatherTo(res, sp), srt.Keys), l.N),
			schema: l.Schema(), sp: sp,
		}, nil
	}
	in, err := sc.build(l.Input, sp)
	if err != nil {
		return nil, err
	}
	if in.gathered() {
		return &streamResult{
			single: exec.NewLimit(edge(in.op(), in.sp, sp), l.N),
			schema: l.Schema(), sp: sp,
		}, nil
	}
	// No ORDER BY: each fragment can contribute at most N rows, so cap
	// every node's stream below the gather — bounding both the rows
	// shipped and, through pipeline backpressure, how much of each scan
	// runs before the query's own limit stops pulling. (Safe under a
	// pending global distinct: per-node streams are locally distinct, so
	// the first N output rows draw from at most the first N rows of each
	// node's stream.)
	capped := sc.mapResult(in, l.Schema(), sp, func(_ string, op exec.Operator) exec.Operator {
		return exec.NewLimit(edge(op, in.sp, sp), l.N)
	})
	return &streamResult{
		single: exec.NewLimit(sc.gatherTo(capped, sp), l.N),
		schema: l.Schema(), sp: sp,
	}, nil
}
