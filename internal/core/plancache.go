package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"eon/internal/obs"
	"eon/internal/planner"
	"eon/internal/sql"
)

// planCache caches bound physical plans keyed on the normalized SQL
// text, the catalog version the plan was built against, and the
// plan-shaping session knob (crunch segmentation). The key is computable
// without running the lexer — sql.Normalize is a single byte pass — so a
// warm hit skips lexing, parsing, binding and planning entirely; the
// acceptance proof is the absent "parse"/"plan" spans in the query
// profile. Each entry also retains the parsed AST: after a catalog bump
// invalidates the plan, the replan skips the front end and only re-runs
// the planner against the new snapshot.
//
// Cached plans are shared by concurrent executions and must be treated
// as read-only; plan nodes carry no execution state, and bind parameters
// are substituted into copies (planner.BindParams), never in place.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[planCacheKey]*list.Element
	lru     *list.List // of *planEntry; front = most recent

	hits      *obs.Counter
	misses    *obs.Counter
	replans   *obs.Counter
	evictions *obs.Counter
}

// planCacheKey identifies one cacheable statement shape. The catalog
// version is deliberately NOT part of the key: an entry holds the plan
// for exactly one version, and a version mismatch at lookup time becomes
// a replan from the retained AST rather than a second entry (stale plans
// have no further use once the catalog has moved).
type planCacheKey struct {
	norm string
	// noSeg mirrors planner.Options.AssumeNoSegmentation: a
	// container-split crunch session plans joins and aggregations without
	// the segmentation property, so its plans are not interchangeable
	// with ordinary ones.
	noSeg bool
}

// planEntry is one cached statement.
type planEntry struct {
	key     planCacheKey
	sel     *sql.Select // pristine parsed AST; clone before planning
	nparams int
	version uint64 // catalog version plan was built against
	plan    *planner.Plan
	hits    atomic.Int64
	replans atomic.Int64
}

// defaultPlanCacheSize is the entry cap when Config.PlanCacheSize is 0.
const defaultPlanCacheSize = 256

func newPlanCache(max int) *planCache {
	if max < 0 {
		return nil // caching disabled
	}
	if max == 0 {
		max = defaultPlanCacheSize
	}
	return &planCache{
		max:     max,
		entries: map[planCacheKey]*list.Element{},
		lru:     list.New(),
		// Counters are created detached and registered into the metrics
		// registry by installMetrics (the cache is built before the
		// registry exists).
		hits:      &obs.Counter{},
		misses:    &obs.Counter{},
		replans:   &obs.Counter{},
		evictions: &obs.Counter{},
	}
}

// register wires the cache's counters and size gauge into the registry.
func (c *planCache) register(reg *obs.Registry) {
	if c == nil {
		return
	}
	reg.RegisterCounter("plancache.hits", c.hits)
	reg.RegisterCounter("plancache.misses", c.misses)
	reg.RegisterCounter("plancache.replans", c.replans)
	reg.RegisterCounter("plancache.evictions", c.evictions)
	reg.GaugeFunc("plancache.size", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.lru.Len())
	})
}

// lookup returns the cached plan for (norm, noSeg) at exactly the given
// catalog version. ok=false on a cold statement OR a stale plan; stale
// entries keep their AST and are refreshed by the subsequent insert.
func (c *planCache) lookup(norm string, noSeg bool, version uint64) (*planner.Plan, int, bool) {
	if c == nil {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[planCacheKey{norm, noSeg}]
	if !ok {
		c.misses.Inc()
		return nil, 0, false
	}
	e := el.Value.(*planEntry)
	c.lru.MoveToFront(el)
	if e.version != version {
		c.misses.Inc()
		return nil, 0, false
	}
	c.hits.Inc()
	e.hits.Add(1)
	return e.plan, e.nparams, true
}

// lookupAST returns a clone of the retained AST for a statement whose
// plan is stale (or not yet built), letting the caller replan without
// re-running the front end. The clone is required: planning mutates
// column references in place, and the pristine copy stays shared.
func (c *planCache) lookupAST(norm string, noSeg bool) (*sql.Select, int, bool) {
	if c == nil {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[planCacheKey{norm, noSeg}]
	if !ok {
		return nil, 0, false
	}
	e := el.Value.(*planEntry)
	c.replans.Inc()
	e.replans.Add(1)
	return sql.CloneSelect(e.sel), e.nparams, true
}

// insert stores (or refreshes) a statement's plan. sel must be a
// pristine AST the caller will not mutate afterwards.
func (c *planCache) insert(norm string, noSeg bool, version uint64, sel *sql.Select, nparams int, plan *planner.Plan) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := planCacheKey{norm, noSeg}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*planEntry)
		e.version = version
		e.plan = plan
		e.sel = sel
		e.nparams = nparams
		c.lru.MoveToFront(el)
		return
	}
	e := &planEntry{key: key, sel: sel, nparams: nparams, version: version, plan: plan}
	c.entries[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.entries, old.Value.(*planEntry).key)
		c.evictions.Inc()
	}
}

// planCacheRow is one entry's stats for v_monitor.plan_cache.
type planCacheRow struct {
	Statement string
	NoSeg     bool
	Version   uint64
	Params    int
	Hits      int64
	Replans   int64
}

// snapshotRows copies the cache contents, most recently used first.
func (c *planCache) snapshotRows() []planCacheRow {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]planCacheRow, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		out = append(out, planCacheRow{
			Statement: e.key.norm, NoSeg: e.key.noSeg,
			Version: e.version, Params: e.nparams,
			Hits: e.hits.Load(), Replans: e.replans.Load(),
		})
	}
	return out
}
