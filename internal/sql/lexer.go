// Package sql implements the SQL front end: a lexer, an AST and a
// recursive-descent parser for the dialect the engine supports — CREATE
// TABLE / PROJECTION, INSERT, DELETE, UPDATE, ALTER TABLE ADD COLUMN,
// DROP TABLE and SELECT with joins, WHERE, GROUP BY / HAVING, ORDER BY
// and LIMIT, plus the aggregate functions COUNT / SUM / AVG / MIN / MAX
// (with DISTINCT).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // punctuation and operators
	tokParam // bind-parameter placeholder: ? or $N
)

type token struct {
	kind tokenKind
	text string // keywords uppercased; identifiers as written
	pos  int
}

// keywords recognized by the lexer. Identifiers matching these (case
// insensitive) become tokKeyword with uppercase text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"JOIN": true, "INNER": true, "LEFT": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"CREATE": true, "TABLE": true, "PROJECTION": true, "PARTITION": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UPDATE": true, "SET": true, "ALTER": true, "ADD": true, "COLUMN": true,
	"DROP": true, "DEFAULT": true, "SEGMENTED": true, "UNSEGMENTED": true,
	"HASH": true, "ALL": true, "NODES": true, "KSAFE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "USING": true,
	"DISTINCT": true, "DATE": true, "TIMESTAMP": true, "INTERVAL": true,
	"COPY": true, "EXTRACT": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.tokens = append(l.tokens, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.tokens = append(l.tokens, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", start)
}

func (l *lexer) lexOp() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "!=", "<=", ">=", "||":
		l.pos += 2
		text := two
		if two == "!=" {
			text = "<>"
		}
		l.tokens = append(l.tokens, token{kind: tokOp, text: text, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
		l.pos++
		l.tokens = append(l.tokens, token{kind: tokOp, text: string(c), pos: start})
		return nil
	case '?':
		// Positional bind parameter; ordinals are assigned by the parser
		// in appearance order.
		l.pos++
		l.tokens = append(l.tokens, token{kind: tokParam, pos: start})
		return nil
	case '$':
		// Explicit-ordinal bind parameter $N.
		l.pos++
		ds := l.pos
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		if l.pos == ds {
			return fmt.Errorf("sql: expected digits after $ at %d", start)
		}
		l.tokens = append(l.tokens, token{kind: tokParam, text: l.src[ds:l.pos], pos: start})
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, start)
}
