package planner

import (
	"fmt"
	"strings"

	"eon/internal/catalog"
	"eon/internal/expr"
	"eon/internal/sql"
	"eon/internal/types"
)

// VirtualResolver resolves table names that are not in the catalog
// snapshot to synthesized metadata-only handles (the v_monitor system
// tables). Implemented by systable.Registry.
type VirtualResolver interface {
	LookupVirtual(name string) (*catalog.Table, bool)
}

// Options configures planning.
type Options struct {
	// Snapshot supplies table, projection and container metadata.
	Snapshot *catalog.Snapshot
	// Virtual, when set, resolves virtual (system) tables after the
	// snapshot misses. Virtual scans are planned Replicated: they
	// materialize on the initiator and need no data movement.
	Virtual VirtualResolver
	// BroadcastRowLimit: a non-co-segmented join side with at most this
	// many rows is broadcast instead of reshuffled.
	BroadcastRowLimit int64
	// UseBuddies admits buddy projections as scan candidates (Enterprise
	// node-down planning substitutes buddies at execution instead).
	UseBuddies bool
	// AssumeNoSegmentation drops segmentation tracking so joins reshuffle
	// and aggregations run two-phase. Container-split crunch scaling
	// (§4.4) requires it: "the data is no longer segmented such that a
	// node has all the rows whose segmentation columns match".
	AssumeNoSegmentation bool
}

// PlanSelect builds a distributed physical plan for a SELECT.
func PlanSelect(stmt *sql.Select, opts Options) (*Plan, error) {
	p := &sessionPlanner{opts: opts}
	return p.plan(stmt)
}

type sessionPlanner struct {
	opts Options
}

// tableScope tracks one FROM-clause table and its scan.
type tableScope struct {
	ref     sql.TableRef
	tbl     *catalog.Table
	virtual bool
	scan    *Scan
}

// resolveTable finds a table in the catalog snapshot, falling back to
// the virtual resolver.
func (p *sessionPlanner) resolveTable(name string) (*catalog.Table, bool, bool) {
	if tbl, ok := p.opts.Snapshot.TableByName(name); ok {
		return tbl, false, true
	}
	if p.opts.Virtual != nil {
		if tbl, ok := p.opts.Virtual.LookupVirtual(name); ok {
			return tbl, true, true
		}
	}
	return nil, false, false
}

func (p *sessionPlanner) plan(stmt *sql.Select) (*Plan, error) {
	// Expand SELECT * before anything else.
	items, err := p.expandStar(stmt)
	if err != nil {
		return nil, err
	}

	// A matching aggregate query reads a live aggregate projection
	// instead of the base data (§2.1).
	if lapPlan, ok, err := p.tryLiveAggregate(stmt, items); err != nil {
		return nil, err
	} else if ok {
		return lapPlan, nil
	}

	// Gather per-table needed columns and interesting columns (join and
	// group keys drive projection choice).
	refs := append([]sql.TableRef{stmt.From}, joinRefs(stmt.Joins)...)
	scopes := make([]*tableScope, len(refs))
	seenAlias := map[string]bool{}
	for i, r := range refs {
		tbl, virtual, ok := p.resolveTable(r.Table)
		if !ok {
			return nil, fmt.Errorf("planner: unknown table %q", r.Table)
		}
		alias := strings.ToLower(r.Name())
		if seenAlias[alias] {
			return nil, fmt.Errorf("planner: duplicate table alias %q", r.Name())
		}
		seenAlias[alias] = true
		scopes[i] = &tableScope{ref: r, tbl: tbl, virtual: virtual}
	}

	needed, interesting, err := p.collectColumns(stmt, items, scopes)
	if err != nil {
		return nil, err
	}

	// Build scans with projection choice and predicate pushdown.
	whereConjuncts := splitConjuncts(stmt.Where)
	var postJoinPred []expr.Expr
	for i, sc := range scopes {
		scan, err := p.buildScan(sc, needed[i], interesting[i])
		if err != nil {
			return nil, err
		}
		sc.scan = scan
	}
	// Push single-table conjuncts into scans; keep the rest.
	for _, cj := range whereConjuncts {
		pushed := false
		for _, sc := range scopes {
			if refersOnlyTo(cj, sc.scan.OutSchema) {
				bound := cloneExpr(cj)
				if err := resolveAndBind(bound, sc.scan.OutSchema); err != nil {
					return nil, err
				}
				sc.scan.Pred = expr.And(sc.scan.Pred, bound)
				pushed = true
				break
			}
		}
		if !pushed {
			postJoinPred = append(postJoinPred, cj)
		}
	}

	// Left-deep join tree.
	var root Node = scopes[0].scan
	for ji, j := range stmt.Joins {
		right := scopes[ji+1].scan
		node, err := p.buildJoin(root, right, j.On)
		if err != nil {
			return nil, err
		}
		root = node
	}

	// Post-join WHERE remainder.
	if len(postJoinPred) > 0 {
		combined := expr.And(postJoinPred...)
		bound := cloneExpr(combined)
		if err := resolveAndBind(bound, root.Schema()); err != nil {
			return nil, err
		}
		root = &Filter{Input: root, Pred: bound}
	}

	hasAgg := false
	for _, it := range items {
		if it.Agg != nil {
			hasAgg = true
		}
	}

	var outputNames []string
	if hasAgg || len(stmt.GroupBy) > 0 {
		root, outputNames, err = p.buildAggregation(stmt, items, root)
		if err != nil {
			return nil, err
		}
	} else {
		// Plain projection.
		var exprs []expr.Expr
		var names []string
		for _, it := range items {
			e := cloneExpr(it.Expr)
			if err := resolveAndBind(e, root.Schema()); err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			names = append(names, outputName(it))
		}
		proj := &Project{Input: root, Exprs: exprs, Names: names}
		proj.out = make(types.Schema, len(exprs))
		for i, e := range exprs {
			proj.out[i] = types.Column{Name: names[i], Type: e.Type()}
		}
		root = proj
		outputNames = names
		if stmt.Having != nil {
			return nil, fmt.Errorf("planner: HAVING requires aggregation")
		}
	}

	if stmt.Distinct {
		root = &DistinctNode{Input: root}
	}

	// ORDER BY against the output schema.
	if len(stmt.OrderBy) > 0 {
		keys, err := p.orderKeys(stmt.OrderBy, root.Schema(), outputNames)
		if err != nil {
			return nil, err
		}
		root = &Sort{Input: root, Keys: keys}
	}
	if stmt.Limit >= 0 {
		root = &Limit{Input: root, N: stmt.Limit}
	}

	return &Plan{Root: root, OutputNames: outputNames}, nil
}

func joinRefs(joins []sql.Join) []sql.TableRef {
	out := make([]sql.TableRef, len(joins))
	for i, j := range joins {
		out[i] = j.Table
	}
	return out
}

// expandStar rewrites SELECT * into explicit column items.
func (p *sessionPlanner) expandStar(stmt *sql.Select) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range stmt.Items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		refs := append([]sql.TableRef{stmt.From}, joinRefs(stmt.Joins)...)
		for _, r := range refs {
			tbl, _, ok := p.resolveTable(r.Table)
			if !ok {
				return nil, fmt.Errorf("planner: unknown table %q", r.Table)
			}
			for _, c := range tbl.Columns {
				name := c.Name
				if len(refs) > 1 {
					name = qualify(r.Name(), c.Name)
				}
				out = append(out, sql.SelectItem{Expr: expr.Col(name), Alias: c.Name})
			}
		}
	}
	return out, nil
}

// collectColumns finds, per table scope, the set of its columns the query
// references (needed) and those used as join or group keys (interesting).
func (p *sessionPlanner) collectColumns(stmt *sql.Select, items []sql.SelectItem, scopes []*tableScope) (needed []map[string]bool, interesting []map[string]bool, err error) {
	needed = make([]map[string]bool, len(scopes))
	interesting = make([]map[string]bool, len(scopes))
	for i := range scopes {
		needed[i] = map[string]bool{}
		interesting[i] = map[string]bool{}
	}
	// resolveOwner finds which scope a reference belongs to.
	resolveOwner := func(ref string) (int, string, error) {
		low := strings.ToLower(ref)
		if i := strings.LastIndexByte(low, '.'); i >= 0 {
			alias, col := low[:i], low[i+1:]
			for si, sc := range scopes {
				if strings.ToLower(sc.ref.Name()) == alias {
					if sc.tbl.Columns.ColumnIndex(col) < 0 {
						return 0, "", fmt.Errorf("planner: table %q has no column %q", sc.ref.Name(), col)
					}
					return si, col, nil
				}
			}
			return 0, "", fmt.Errorf("planner: unknown table alias in %q", ref)
		}
		found := -1
		for si, sc := range scopes {
			if sc.tbl.Columns.ColumnIndex(low) >= 0 {
				if found >= 0 {
					return 0, "", fmt.Errorf("planner: ambiguous column %q", ref)
				}
				found = si
			}
		}
		if found < 0 {
			return 0, "", fmt.Errorf("planner: unknown column %q", ref)
		}
		return found, low, nil
	}
	addRefs := func(e expr.Expr, markInteresting bool) error {
		for _, name := range columnRefNames(e) {
			si, col, err := resolveOwner(name)
			if err != nil {
				return err
			}
			needed[si][col] = true
			if markInteresting {
				interesting[si][col] = true
			}
		}
		return nil
	}
	for _, it := range items {
		if it.Expr != nil {
			if err := addRefs(it.Expr, false); err != nil {
				return nil, nil, err
			}
		}
		if it.Agg != nil && it.Agg.Arg != nil {
			if err := addRefs(it.Agg.Arg, false); err != nil {
				return nil, nil, err
			}
		}
	}
	if stmt.Where != nil {
		if err := addRefs(stmt.Where, false); err != nil {
			return nil, nil, err
		}
	}
	for _, j := range stmt.Joins {
		if err := addRefs(j.On, true); err != nil {
			return nil, nil, err
		}
	}
	for _, g := range stmt.GroupBy {
		if err := addRefs(g, true); err != nil {
			return nil, nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		if o.Expr != nil {
			// Order keys may reference aliases; ignore resolution
			// failures here (handled against the output schema later).
			_ = addRefs(o.Expr, false)
		}
	}
	return needed, interesting, nil
}

// buildScan chooses a projection and constructs the scan node.
func (p *sessionPlanner) buildScan(sc *tableScope, needed, interesting map[string]bool) (*Scan, error) {
	// Virtual tables have no projections: the scan reads the synthesized
	// schema directly and materializes on the initiator (Replicated), so
	// joins against them are always local and predicate pushdown applies
	// to the materialized batch.
	if sc.virtual {
		if len(needed) == 0 && len(sc.tbl.Columns) > 0 {
			needed = map[string]bool{strings.ToLower(sc.tbl.Columns[0].Name): true}
		}
		var cols []string
		var outSchema types.Schema
		for _, c := range sc.tbl.Columns {
			if !needed[strings.ToLower(c.Name)] {
				continue
			}
			cols = append(cols, c.Name)
			outSchema = append(outSchema, types.Column{
				Name: qualify(sc.ref.Name(), c.Name),
				Type: c.Type,
			})
		}
		return &Scan{
			Table:      sc.tbl,
			Alias:      sc.ref.Name(),
			Cols:       cols,
			OutSchema:  outSchema,
			Replicated: true,
			Virtual:    true,
		}, nil
	}

	snap := p.opts.Snapshot
	projs := snap.ProjectionsOf(sc.tbl.OID)
	if len(projs) == 0 {
		return nil, fmt.Errorf("planner: table %q has no projections", sc.tbl.Name)
	}
	var best *catalog.Projection
	bestScore := -1 << 30
	for _, proj := range projs {
		if proj.BuddyOffset > 0 && !p.opts.UseBuddies {
			continue
		}
		if proj.IsLiveAggregate() {
			// Live aggregates answer only matching aggregate queries,
			// handled by the rewrite path; their row counts differ from
			// the base table.
			continue
		}
		if !projectionCovers(proj, needed) {
			continue
		}
		score := 0
		if len(proj.SegmentCols) > 0 {
			all := true
			for _, s := range proj.SegmentCols {
				if !interesting[strings.ToLower(s)] {
					all = false
					break
				}
			}
			if all && len(interesting) > 0 {
				score += 8
			}
		} else {
			score += 4 // replicated: always local
		}
		// Narrower projections win ties.
		score -= len(proj.Columns)
		if score > bestScore || (score == bestScore && best != nil && proj.OID < best.OID) {
			best, bestScore = proj, score
		}
	}
	if best == nil {
		return nil, fmt.Errorf("planner: no projection of %q covers columns %v", sc.tbl.Name, keys(needed))
	}

	// A query referencing no columns (e.g. SELECT COUNT(*)) still scans
	// one column to drive row counts; pick the projection's first.
	if len(needed) == 0 && len(best.Columns) > 0 {
		needed = map[string]bool{strings.ToLower(best.Columns[0]): true}
	}

	// Scan columns in projection order, qualified output names.
	var cols []string
	var outSchema types.Schema
	for _, c := range best.Columns {
		if !needed[strings.ToLower(c)] {
			continue
		}
		idx := sc.tbl.Columns.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("planner: projection %q column %q missing from table", best.Name, c)
		}
		cols = append(cols, c)
		outSchema = append(outSchema, types.Column{
			Name: qualify(sc.ref.Name(), c),
			Type: sc.tbl.Columns[idx].Type,
		})
	}
	scan := &Scan{
		Table:      sc.tbl,
		Proj:       best,
		Alias:      sc.ref.Name(),
		Cols:       cols,
		OutSchema:  outSchema,
		Replicated: best.Replicated(),
	}
	if !best.Replicated() && !p.opts.AssumeNoSegmentation {
		for _, s := range best.SegmentCols {
			pos := outSchema.ColumnIndex(qualify(sc.ref.Name(), s))
			if pos < 0 {
				// Segmentation column not read by the query; scan still
				// knows its segmentation but positions are unusable.
				scan.SegmentCols = nil
				break
			}
			scan.SegmentCols = append(scan.SegmentCols, pos)
		}
	}
	return scan, nil
}

func projectionCovers(p *catalog.Projection, needed map[string]bool) bool {
	have := map[string]bool{}
	for _, c := range p.Columns {
		have[strings.ToLower(c)] = true
	}
	for n := range needed {
		if !have[n] {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// buildJoin extracts equi-join keys from the ON condition and picks a
// strategy.
func (p *sessionPlanner) buildJoin(left Node, right *Scan, on expr.Expr) (*Join, error) {
	outSchema := append(append(types.Schema{}, left.Schema()...), right.Schema()...)
	j := &Join{Left: left, Right: right, outSchema: outSchema}

	var residual []expr.Expr
	for _, cj := range splitConjuncts(on) {
		b, ok := cj.(*expr.Binary)
		if ok && b.Op == expr.OpEq {
			lc, lok := b.L.(*expr.ColumnRef)
			rc, rok := b.R.(*expr.ColumnRef)
			if lok && rok {
				lName, lErr := resolveName(lc.Name, left.Schema())
				rName, rErr := resolveName(rc.Name, right.Schema())
				if lErr == nil && rErr == nil {
					j.LeftKeys = append(j.LeftKeys, left.Schema().ColumnIndex(lName))
					j.RightKeys = append(j.RightKeys, right.Schema().ColumnIndex(rName))
					continue
				}
				// Maybe the sides are swapped.
				lName2, lErr2 := resolveName(rc.Name, left.Schema())
				rName2, rErr2 := resolveName(lc.Name, right.Schema())
				if lErr2 == nil && rErr2 == nil {
					j.LeftKeys = append(j.LeftKeys, left.Schema().ColumnIndex(lName2))
					j.RightKeys = append(j.RightKeys, right.Schema().ColumnIndex(rName2))
					continue
				}
			}
		}
		residual = append(residual, cj)
	}
	if len(j.LeftKeys) == 0 {
		return nil, fmt.Errorf("planner: join requires at least one equi-join condition")
	}
	if len(residual) > 0 {
		combined := expr.And(residual...)
		bound := cloneExpr(combined)
		if err := resolveAndBind(bound, outSchema); err != nil {
			return nil, err
		}
		j.ResidualPred = bound
	}

	leftSeg := segmentColsOf(left)
	j.Strategy = p.pickJoinStrategy(j, leftSeg, right)
	j.OutSegmentCols = p.joinOutputSegmentation(j, leftSeg, right)
	return j, nil
}

func (p *sessionPlanner) pickJoinStrategy(j *Join, leftSeg []int, right *Scan) JoinStrategy {
	// Replicated right side: every node holds it entirely.
	if right.Replicated {
		return JoinLocal
	}
	// Co-segmentation: both sides segmented on aligned join keys (§4:
	// "identical values will be hashed to same value, be stored in the
	// same shard, and served by the same node").
	if len(leftSeg) > 0 && len(right.SegmentCols) > 0 && len(leftSeg) == len(right.SegmentCols) {
		aligned := true
		for i := range leftSeg {
			li := indexOf(j.LeftKeys, leftSeg[i])
			ri := indexOf(j.RightKeys, right.SegmentCols[i])
			if li < 0 || ri < 0 || li != ri {
				aligned = false
				break
			}
		}
		if aligned {
			return JoinLocal
		}
	}
	// Small right side: broadcast.
	if p.opts.BroadcastRowLimit > 0 && p.tableRows(right) <= p.opts.BroadcastRowLimit {
		return JoinBroadcastRight
	}
	return JoinReshuffleBoth
}

// joinOutputSegmentation reports how the join output stays segmented.
func (p *sessionPlanner) joinOutputSegmentation(j *Join, leftSeg []int, right *Scan) []int {
	switch j.Strategy {
	case JoinLocal, JoinBroadcastRight:
		return leftSeg // left rows stay where they were
	case JoinReshuffleBoth:
		// Output is partitioned by the join keys (left positions).
		return append([]int(nil), j.LeftKeys...)
	}
	return nil
}

func (p *sessionPlanner) tableRows(s *Scan) int64 {
	var rows int64
	for _, sc := range p.opts.Snapshot.ContainersOf(s.Proj.OID, catalog.GlobalShard) {
		rows += sc.RowCount
	}
	return rows
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// segmentColsOf tracks segmentation positions through the plan.
func segmentColsOf(n Node) []int {
	switch t := n.(type) {
	case *Scan:
		return t.SegmentCols
	case *Join:
		return t.OutSegmentCols
	case *Filter:
		return segmentColsOf(t.Input)
	}
	return nil
}

func outputName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != nil {
		if it.Agg.Arg != nil {
			return strings.ToLower(it.Agg.Op.String()) + "(" + it.Agg.Arg.String() + ")"
		}
		return "count(*)"
	}
	if c, ok := it.Expr.(*expr.ColumnRef); ok {
		return baseColumn(c.Name)
	}
	return it.Expr.String()
}
