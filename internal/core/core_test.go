package core

import (
	"fmt"
	"testing"

	"eon/internal/types"
)

// newTestDB creates a database with n nodes in the given mode.
func newTestDB(t *testing.T, mode Mode, n int, shards int) *DB {
	t.Helper()
	var specs []NodeSpec
	for i := 0; i < n; i++ {
		specs = append(specs, NodeSpec{Name: fmt.Sprintf("node%d", i+1)})
	}
	db, err := Create(Config{
		Mode:       mode,
		Nodes:      specs,
		ShardCount: shards,
		WOSMaxRows: 4, // small threshold so tests hit both WOS and ROS paths
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// setupSales creates the sales table/projections and loads rows.
func setupSales(t *testing.T, db *DB, rows int) {
	t.Helper()
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE sales (sale_id INTEGER, customer VARCHAR, price FLOAT, region VARCHAR)`)
	mustExec(t, s, `CREATE PROJECTION sales_p1 AS SELECT * FROM sales ORDER BY sale_id SEGMENTED BY HASH(sale_id) ALL NODES`)
	batch := types.NewBatch(types.Schema{
		{Name: "sale_id", Type: types.Int64},
		{Name: "customer", Type: types.Varchar},
		{Name: "price", Type: types.Float64},
		{Name: "region", Type: types.Varchar},
	}, rows)
	customers := []string{"ada", "grace", "barbara", "shafi", "frances"}
	regions := []string{"east", "west"}
	for i := 0; i < rows; i++ {
		batch.AppendRow(types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(customers[i%len(customers)]),
			types.NewFloat(float64((i % 50) + 1)),
			types.NewString(regions[i%len(regions)]),
		})
	}
	if err := db.LoadRows("sales", batch); err != nil {
		t.Fatal(err)
	}
}

func mustExec(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	res, err := s.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return res
}

func mustQuery(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	res, err := s.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return res
}

func modes() map[string]Mode {
	return map[string]Mode{"eon": ModeEon, "enterprise": ModeEnterprise}
}

func TestLoadAndCount(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 3, 3)
			setupSales(t, db, 100)
			s := db.NewSession()
			res := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
			if res.NumRows() != 1 || res.Batch.Cols[0].Ints[0] != 100 {
				t.Fatalf("count = %v", res.Rows())
			}
		})
	}
}

func TestFilterAndProject(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 3, 3)
			setupSales(t, db, 100)
			s := db.NewSession()
			res := mustQuery(t, s, `SELECT sale_id, price FROM sales WHERE price > 45 ORDER BY sale_id`)
			for _, r := range res.Rows() {
				if r[1].F <= 45 {
					t.Errorf("row %v violates predicate", r)
				}
			}
			if res.NumRows() != 10 { // prices cycle 1..50; 46..50 = 5 of 50 -> 10 of 100
				t.Errorf("rows = %d", res.NumRows())
			}
		})
	}
}

func TestGroupByOnSegmentationColumn(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 3, 3)
			setupSales(t, db, 100)
			s := db.NewSession()
			res := mustQuery(t, s, `SELECT sale_id, COUNT(*) AS n FROM sales GROUP BY sale_id ORDER BY sale_id LIMIT 5`)
			if res.NumRows() != 5 {
				t.Fatalf("rows = %d", res.NumRows())
			}
			for i, r := range res.Rows() {
				if r[0].I != int64(i+1) || r[1].I != 1 {
					t.Errorf("row = %v", r)
				}
			}
		})
	}
}

func TestGroupByTwoPhase(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 3, 3)
			setupSales(t, db, 100)
			s := db.NewSession()
			res := mustQuery(t, s, `SELECT region, COUNT(*) AS n, SUM(price) AS total, AVG(price) AS mean FROM sales GROUP BY region ORDER BY region`)
			if res.NumRows() != 2 {
				t.Fatalf("rows = %v", res.Rows())
			}
			east := res.Row(t, 0)
			if east[0].S != "east" || east[1].I != 50 {
				t.Errorf("east = %v", east)
			}
			// AVG must equal SUM/COUNT.
			if east[3].F != east[2].F/float64(east[1].I) {
				t.Errorf("avg mismatch: %v", east)
			}
		})
	}
}

// Row fetches one row of a result for test assertions.
func (r *Result) Row(t *testing.T, i int) types.Row {
	t.Helper()
	if i >= r.NumRows() {
		t.Fatalf("row %d out of %d", i, r.NumRows())
	}
	return r.Batch.Row(i)
}

func TestOrderByLimitDesc(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT sale_id, price FROM sales ORDER BY price DESC, sale_id LIMIT 3`)
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Row(t, 0)[1].F != 50 {
		t.Errorf("top price = %v", res.Row(t, 0))
	}
}

func TestInsertAndQuery(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 2, 2)
			s := db.NewSession()
			mustExec(t, s, `CREATE TABLE t (id INTEGER, name VARCHAR)`)
			mustExec(t, s, `INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, NULL)`)
			res := mustQuery(t, s, `SELECT id, name FROM t ORDER BY id`)
			if res.NumRows() != 3 {
				t.Fatalf("rows = %v", res.Rows())
			}
			if !res.Row(t, 2)[1].Null {
				t.Error("null value lost")
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 2, 2)
			setupSales(t, db, 50)
			s := db.NewSession()
			res := mustExec(t, s, `DELETE FROM sales WHERE price <= 10`)
			deleted := res.Row(t, 0)[0].I
			if deleted == 0 {
				t.Fatal("nothing deleted")
			}
			cnt := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
			if cnt.Row(t, 0)[0].I != 50-deleted {
				t.Errorf("count after delete = %v (deleted %d)", cnt.Rows(), deleted)
			}
			// Deleted rows must be invisible.
			rem := mustQuery(t, s, `SELECT COUNT(*) FROM sales WHERE price <= 10`)
			if rem.Row(t, 0)[0].I != 0 {
				t.Errorf("deleted rows visible: %v", rem.Rows())
			}
		})
	}
}

func TestUpdate(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 2, 2)
			s := db.NewSession()
			mustExec(t, s, `CREATE TABLE t (id INTEGER, v INTEGER)`)
			mustExec(t, s, `INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)
			mustExec(t, s, `UPDATE t SET v = v + 100 WHERE id >= 2`)
			res := mustQuery(t, s, `SELECT id, v FROM t ORDER BY id`)
			want := []int64{10, 120, 130}
			if res.NumRows() != 3 {
				t.Fatalf("rows = %v", res.Rows())
			}
			for i, w := range want {
				if res.Row(t, i)[1].I != w {
					t.Errorf("row %d = %v, want v=%d", i, res.Row(t, i), w)
				}
			}
		})
	}
}

func TestJoinCoSegmented(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 3, 3)
			s := db.NewSession()
			mustExec(t, s, `CREATE TABLE orders (o_id INTEGER, cust INTEGER, amount FLOAT)`)
			mustExec(t, s, `CREATE PROJECTION orders_p AS SELECT * FROM orders ORDER BY o_id SEGMENTED BY HASH(cust) ALL NODES`)
			mustExec(t, s, `CREATE TABLE customers (c_id INTEGER, name VARCHAR)`)
			mustExec(t, s, `CREATE PROJECTION customers_p AS SELECT * FROM customers ORDER BY c_id SEGMENTED BY HASH(c_id) ALL NODES`)
			for i := 1; i <= 20; i++ {
				mustExec(t, s, fmt.Sprintf(`INSERT INTO customers VALUES (%d, 'cust%d')`, i, i))
				mustExec(t, s, fmt.Sprintf(`INSERT INTO orders VALUES (%d, %d, %d.5)`, i*10, (i%5)+1, i))
			}
			res := mustQuery(t, s, `SELECT c.name, COUNT(*) AS n FROM orders o JOIN customers c ON o.cust = c.c_id GROUP BY c.name ORDER BY c.name`)
			if res.NumRows() != 5 {
				t.Fatalf("join groups = %v", res.Rows())
			}
			for _, r := range res.Rows() {
				if r[1].I != 4 {
					t.Errorf("group = %v, want 4 orders each", r)
				}
			}
		})
	}
}

func TestJoinWithReplicatedDimension(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE facts (id INTEGER, dim_id INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION facts_p AS SELECT * FROM facts ORDER BY id SEGMENTED BY HASH(id) ALL NODES`)
	mustExec(t, s, `CREATE TABLE dims (d_id INTEGER, label VARCHAR)`)
	mustExec(t, s, `CREATE PROJECTION dims_p AS SELECT * FROM dims ORDER BY d_id UNSEGMENTED ALL NODES`)
	mustExec(t, s, `INSERT INTO dims VALUES (1, 'one'), (2, 'two')`)
	for i := 1; i <= 10; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO facts VALUES (%d, %d)`, i, (i%2)+1))
	}
	res := mustQuery(t, s, `SELECT d.label, COUNT(*) AS n FROM facts f JOIN dims d ON f.dim_id = d.d_id GROUP BY d.label ORDER BY d.label`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
	if res.Row(t, 0)[1].I != 5 || res.Row(t, 1)[1].I != 5 {
		t.Errorf("counts = %v", res.Rows())
	}
}

func TestJoinReshuffle(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 3, 3)
			s := db.NewSession()
			// Both tables segmented by their id, joined on non-seg cols.
			mustExec(t, s, `CREATE TABLE a (a_id INTEGER, k INTEGER)`)
			mustExec(t, s, `CREATE PROJECTION a_p AS SELECT * FROM a ORDER BY a_id SEGMENTED BY HASH(a_id) ALL NODES`)
			mustExec(t, s, `CREATE TABLE b (b_id INTEGER, k INTEGER)`)
			mustExec(t, s, `CREATE PROJECTION b_p AS SELECT * FROM b ORDER BY b_id SEGMENTED BY HASH(b_id) ALL NODES`)
			for i := 1; i <= 12; i++ {
				mustExec(t, s, fmt.Sprintf(`INSERT INTO a VALUES (%d, %d)`, i, i%4))
				mustExec(t, s, fmt.Sprintf(`INSERT INTO b VALUES (%d, %d)`, 100+i, i%4))
			}
			res := mustQuery(t, s, `SELECT COUNT(*) FROM a JOIN b ON a.k = b.k`)
			// Each k in 0..3 has 3 rows in each table: 4 * 3*3 = 36.
			if res.Row(t, 0)[0].I != 36 {
				t.Errorf("reshuffle join count = %v", res.Rows())
			}
		})
	}
}

func TestCountDistinct(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT region, COUNT(DISTINCT customer) AS n FROM sales GROUP BY region ORDER BY region`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
	// 5 customers cycle with 2 regions over 100 rows: even sale ids get
	// west; customers alternate so each region sees all 5 customers
	// (gcd(5,2)=1).
	for _, r := range res.Rows() {
		if r[1].I != 5 {
			t.Errorf("distinct customers = %v", r)
		}
	}
}

func TestSelectDistinct(t *testing.T) {
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 100)
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT DISTINCT region FROM sales ORDER BY region`)
	if res.NumRows() != 2 {
		t.Errorf("distinct regions = %v", res.Rows())
	}
}

func TestHaving(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 100)
	s := db.NewSession()
	res := mustQuery(t, s, `SELECT customer, COUNT(*) AS n FROM sales GROUP BY customer HAVING n >= 20 ORDER BY customer`)
	for _, r := range res.Rows() {
		if r[1].I < 20 {
			t.Errorf("having violated: %v", r)
		}
	}
	if res.NumRows() != 5 { // 100 rows / 5 customers = 20 each
		t.Errorf("rows = %v", res.Rows())
	}
}

func TestAlterAddColumn(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 2, 2)
			s := db.NewSession()
			mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
			mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3), (4), (5)`)
			mustExec(t, s, `ALTER TABLE t ADD COLUMN status VARCHAR DEFAULT 'new'`)
			res := mustQuery(t, s, `SELECT id, status FROM t ORDER BY id`)
			if res.NumRows() != 5 {
				t.Fatalf("rows = %v", res.Rows())
			}
			for _, r := range res.Rows() {
				if r[1].S != "new" {
					t.Errorf("default not applied: %v", r)
				}
			}
			// New loads include the column.
			mustExec(t, s, `INSERT INTO t VALUES (6, 'old')`)
			res = mustQuery(t, s, `SELECT COUNT(*) FROM t WHERE status = 'new'`)
			if res.Row(t, 0)[0].I != 5 {
				t.Errorf("count = %v", res.Rows())
			}
		})
	}
}

func TestDropTable(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 20)
	s := db.NewSession()
	mustExec(t, s, `DROP TABLE sales`)
	if _, err := s.Query(`SELECT COUNT(*) FROM sales`); err == nil {
		t.Error("dropped table should not be queryable")
	}
}

func TestPartitionedTable(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE events (id INTEGER, month INTEGER) PARTITION BY month`)
	batch := types.NewBatch(types.Schema{
		{Name: "id", Type: types.Int64}, {Name: "month", Type: types.Int64},
	}, 30)
	for i := 0; i < 30; i++ {
		batch.AppendRow(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i%3 + 1))})
	}
	if err := db.LoadRows("events", batch); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, s, `SELECT COUNT(*) FROM events WHERE month = 2`)
	if res.Row(t, 0)[0].I != 10 {
		t.Errorf("count = %v", res.Rows())
	}
	// Partition keys recorded on containers.
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	keys := map[string]bool{}
	tbl, _ := snap.TableByName("events")
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		for _, sc := range snap.ContainersOf(p.OID, -1) {
			keys[sc.PartitionKey] = true
		}
	}
	if len(keys) != 3 {
		t.Errorf("partition keys = %v", keys)
	}
}

func TestEnterpriseWOSVisibleInQueries(t *testing.T) {
	db := newTestDB(t, ModeEnterprise, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	// Small inserts stay in the WOS (threshold 4).
	mustExec(t, s, `INSERT INTO t VALUES (1), (2)`)
	res := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 2 {
		t.Fatalf("WOS rows invisible: %v", res.Rows())
	}
	// Verify it actually is in the WOS, not ROS.
	totalWOS := 0
	for _, n := range db.Nodes() {
		totalWOS += n.wos.TotalRows()
	}
	if totalWOS == 0 {
		t.Error("small insert should buffer in WOS")
	}
}

func TestEonHasNoWOS(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	for _, n := range db.Nodes() {
		if n.wos != nil {
			t.Error("Eon mode must not have a WOS (§5.1)")
		}
	}
	// Data must be on shared storage before commit returned.
	infos, err := db.SharedStore().List(db.Context(), "data/")
	if err != nil || len(infos) == 0 {
		t.Error("Eon load must upload to shared storage")
	}
}

func TestCommitUploadsBeforeVisible(t *testing.T) {
	// Every committed container's files exist on shared storage (§4.5).
	db := newTestDB(t, ModeEon, 3, 3)
	setupSales(t, db, 200)
	init, _ := db.anyUpNode()
	snap := init.catalog.Snapshot()
	ctx := db.Context()
	checked := 0
	tbl, _ := snap.TableByName("sales")
	for _, p := range snap.ProjectionsOf(tbl.OID) {
		for _, sc := range snap.ContainersOf(p.OID, -1) {
			for _, f := range sc.AllFiles() {
				if _, err := db.SharedStore().Get(ctx, f.Path); err != nil {
					t.Errorf("committed file missing from shared storage: %s", f.Path)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no files checked")
	}
}

func TestQueryUsesCacheSecondTime(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 100)
	s := db.NewSession()
	mustQuery(t, s, `SELECT COUNT(*) FROM sales WHERE price > 0`)
	// All reads after the write-through load should hit the cache: the
	// shared store sees only the load-time puts, not gets.
	sim, isSim := db.SharedStore().(interface{ Stats() interface{} })
	_ = sim
	_ = isSim
	hits := int64(0)
	for _, n := range db.Nodes() {
		st := n.Cache().Stats()
		hits += st.Hits
	}
	if hits == 0 {
		t.Error("second read should be served from cache")
	}
}
