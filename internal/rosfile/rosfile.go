// Package rosfile implements the Read Optimized Store container file
// format (paper §2.3): per-column files holding blocks of encoded, sorted
// column data followed by a footer with a position index. The position
// index maps tuple offsets to blocks and records per-block minimum and
// maximum values and null counts, which the scan uses for predicate
// pruning. Small column files can be concatenated into a single bundle
// file to reduce file count, exactly as the paper describes.
//
// ROS files are immutable: the writer produces a complete byte image that
// is written once and never modified.
package rosfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"eon/internal/colenc"
	"eon/internal/types"
)

// Magic trails every column file, guarding against truncation.
const Magic = 0x524F5346 // "ROSF"

// DefaultBlockRows is the number of tuples per encoded block.
const DefaultBlockRows = 4096

// ErrCorrupt is returned for malformed files.
var ErrCorrupt = errors.New("rosfile: corrupt file")

// BlockMeta describes one encoded block within a column file.
type BlockMeta struct {
	Offset    int64
	Length    int64
	RowStart  int64 // tuple offset of the block's first row
	RowCount  int64
	NullCount int64
	Min       types.Datum // min over non-null values; meaningless if all null
	Max       types.Datum
}

// Footer is the position index of a column file.
type Footer struct {
	Type     types.Type
	RowCount int64
	Blocks   []BlockMeta
}

// appendDatum serializes a datum for footer min/max storage.
func appendDatum(b []byte, d types.Datum) []byte {
	if d.Null {
		return append(b, 0)
	}
	switch d.K.Physical() {
	case types.Int64:
		b = append(b, 1)
		return binary.AppendVarint(b, d.I)
	case types.Float64:
		b = append(b, 2)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(d.F))
	case types.Varchar:
		b = append(b, 3)
		b = binary.AppendUvarint(b, uint64(len(d.S)))
		return append(b, d.S...)
	case types.Bool:
		b = append(b, 4)
		if d.B {
			return append(b, 1)
		}
		return append(b, 0)
	}
	return append(b, 0)
}

func readDatum(b []byte, pos int, t types.Type) (types.Datum, int, error) {
	if pos >= len(b) {
		return types.Datum{}, pos, ErrCorrupt
	}
	tag := b[pos]
	pos++
	d := types.Datum{K: t}
	switch tag {
	case 0:
		d.Null = true
		return d, pos, nil
	case 1:
		v, n := binary.Varint(b[pos:])
		if n <= 0 {
			return d, pos, ErrCorrupt
		}
		d.I = v
		return d, pos + n, nil
	case 2:
		if pos+8 > len(b) {
			return d, pos, ErrCorrupt
		}
		d.F = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
		return d, pos + 8, nil
	case 3:
		l, n := binary.Uvarint(b[pos:])
		if n <= 0 || pos+n+int(l) > len(b) {
			return d, pos, ErrCorrupt
		}
		d.S = string(b[pos+n : pos+n+int(l)])
		return d, pos + n + int(l), nil
	case 4:
		if pos >= len(b) {
			return d, pos, ErrCorrupt
		}
		d.B = b[pos] != 0
		return d, pos + 1, nil
	}
	return d, pos, fmt.Errorf("rosfile: bad datum tag %d: %w", tag, ErrCorrupt)
}

// WriteOptions controls column file construction.
type WriteOptions struct {
	// BlockRows is the tuples-per-block target (default DefaultBlockRows).
	BlockRows int
	// Sorted tells the encoder the column is in sort order, steering it
	// toward RLE/delta encodings.
	Sorted bool
	// Encoding forces a specific encoding for every block; nil means the
	// encoder chooses per block.
	Encoding *colenc.Encoding
}

// WriteColumn serializes a whole column into the ROS column-file format
// and returns the file image.
func WriteColumn(v *types.Vector, opts WriteOptions) []byte {
	blockRows := opts.BlockRows
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	var out []byte
	var blocks []BlockMeta
	n := v.Len()
	for lo := 0; lo < n; lo += blockRows {
		hi := lo + blockRows
		if hi > n {
			hi = n
		}
		part := v.Slice(lo, hi)
		enc := colenc.Choose(part, opts.Sorted)
		if opts.Encoding != nil {
			enc = *opts.Encoding
		}
		payload := colenc.Encode(part, enc)
		meta := BlockMeta{
			Offset:   int64(len(out)),
			Length:   int64(len(payload)),
			RowStart: int64(lo),
			RowCount: int64(hi - lo),
		}
		meta.Min, meta.Max, meta.NullCount = blockStats(part)
		out = append(out, payload...)
		blocks = append(blocks, meta)
	}
	footer := Footer{Type: v.Typ, RowCount: int64(n), Blocks: blocks}
	fb := encodeFooter(footer)
	out = append(out, fb...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(fb)))
	out = binary.LittleEndian.AppendUint32(out, Magic)
	return out
}

func blockStats(v *types.Vector) (min, max types.Datum, nulls int64) {
	min = types.NullDatum(v.Typ)
	max = types.NullDatum(v.Typ)
	first := true
	for i := 0; i < v.Len(); i++ {
		d := v.Datum(i)
		if d.Null {
			nulls++
			continue
		}
		if first {
			min, max = d, d
			first = false
			continue
		}
		if d.Compare(min) < 0 {
			min = d
		}
		if d.Compare(max) > 0 {
			max = d
		}
	}
	return min, max, nulls
}

func encodeFooter(f Footer) []byte {
	var b []byte
	b = append(b, byte(f.Type))
	b = binary.AppendVarint(b, f.RowCount)
	b = binary.AppendUvarint(b, uint64(len(f.Blocks)))
	for _, blk := range f.Blocks {
		b = binary.AppendVarint(b, blk.Offset)
		b = binary.AppendVarint(b, blk.Length)
		b = binary.AppendVarint(b, blk.RowStart)
		b = binary.AppendVarint(b, blk.RowCount)
		b = binary.AppendVarint(b, blk.NullCount)
		b = appendDatum(b, blk.Min)
		b = appendDatum(b, blk.Max)
	}
	return b
}

func decodeFooter(b []byte) (Footer, error) {
	var f Footer
	if len(b) < 1 {
		return f, ErrCorrupt
	}
	f.Type = types.Type(b[0])
	pos := 1
	rc, n := binary.Varint(b[pos:])
	if n <= 0 {
		return f, ErrCorrupt
	}
	pos += n
	f.RowCount = rc
	cnt, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return f, ErrCorrupt
	}
	pos += n
	f.Blocks = make([]BlockMeta, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		var blk BlockMeta
		var err error
		for _, dst := range []*int64{&blk.Offset, &blk.Length, &blk.RowStart, &blk.RowCount, &blk.NullCount} {
			v, n := binary.Varint(b[pos:])
			if n <= 0 {
				return f, ErrCorrupt
			}
			*dst = v
			pos += n
		}
		blk.Min, pos, err = readDatum(b, pos, f.Type)
		if err != nil {
			return f, err
		}
		blk.Max, pos, err = readDatum(b, pos, f.Type)
		if err != nil {
			return f, err
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f, nil
}

// Reader decodes a column file image.
type Reader struct {
	data   []byte
	footer Footer
}

// NewReader parses the footer of a column file image.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < 8 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(data[len(data)-4:]) != Magic {
		return nil, fmt.Errorf("rosfile: bad magic: %w", ErrCorrupt)
	}
	flen := int(binary.LittleEndian.Uint32(data[len(data)-8:]))
	if flen < 0 || flen > len(data)-8 {
		return nil, ErrCorrupt
	}
	footer, err := decodeFooter(data[len(data)-8-flen : len(data)-8])
	if err != nil {
		return nil, err
	}
	return &Reader{data: data, footer: footer}, nil
}

// Footer returns the parsed position index.
func (r *Reader) Footer() Footer { return r.footer }

// RowCount returns the number of tuples in the column.
func (r *Reader) RowCount() int64 { return r.footer.RowCount }

// Type returns the column's logical type.
func (r *Reader) Type() types.Type { return r.footer.Type }

// ReadBlock decodes block i into a vector.
func (r *Reader) ReadBlock(i int) (*types.Vector, error) {
	if i < 0 || i >= len(r.footer.Blocks) {
		return nil, fmt.Errorf("rosfile: block %d out of range", i)
	}
	blk := r.footer.Blocks[i]
	if blk.Offset < 0 || blk.Offset+blk.Length > int64(len(r.data)) {
		return nil, ErrCorrupt
	}
	return colenc.Decode(r.data[blk.Offset:blk.Offset+blk.Length], r.footer.Type)
}

// ReadAll decodes the entire column into one vector.
func (r *Reader) ReadAll() (*types.Vector, error) {
	out := types.NewVector(r.footer.Type, int(r.footer.RowCount))
	for i := range r.footer.Blocks {
		v, err := r.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		out.AppendVector(v)
	}
	return out, nil
}

// BlockForRow returns the index of the block containing tuple offset row,
// or -1 if out of range.
func (r *Reader) BlockForRow(row int64) int {
	for i, blk := range r.footer.Blocks {
		if row >= blk.RowStart && row < blk.RowStart+blk.RowCount {
			return i
		}
	}
	return -1
}
