package core

import (
	"context"
	"fmt"
	"time"

	"eon/internal/catalog"
	"eon/internal/expr"
	"eon/internal/hashring"
	"eon/internal/obs"
	"eon/internal/parallel"
	"eon/internal/planner"
	"eon/internal/rosfile"
	"eon/internal/storage"
	"eon/internal/types"
)

// scanSpans carries a fragment's tracing spans through the scan
// pipeline: the fragment span itself (pruning and row attributes) plus
// fetch/decode/filter accumulator children whose wall time is summed
// across the fragment's concurrent workers. The zero value (tracing
// off) no-ops everywhere.
type scanSpans struct {
	frag   *obs.Span
	fetch  *obs.Span
	decode *obs.Span
	filter *obs.Span
}

// newScanSpans opens the accumulator children under frag (all nil when
// frag is nil).
func newScanSpans(frag *obs.Span) scanSpans {
	return scanSpans{
		frag:   frag,
		fetch:  frag.StartSpan("fetch"),
		decode: frag.StartSpan("decode"),
		filter: frag.StartSpan("filter"),
	}
}

// end closes the accumulator children (the fragment span belongs to the
// caller).
func (s scanSpans) end() {
	s.fetch.End()
	s.decode.End()
	s.filter.End()
}

// containerWork is one unit of scan work: a container of one scan task,
// tagged with its position in the fragment's deterministic output order.
type containerWork struct {
	task scanTask
	sc   *catalog.StorageContainer
	// hashFilter marks crunch hash-filter post-processing (§4.4).
	hashFilter bool
}

// scanFragment reads one node's share of a scan into a batch slice (the
// materialized executor's entry point); it is a collecting wrapper over
// scanFragmentStream.
func (db *DB) scanFragment(ctx context.Context, node *Node, scan *planner.Scan, tasks []scanTask, snap *catalog.Snapshot, bypassCache bool, mode CrunchMode, rowEngine bool, st *scanTally) ([]*types.Batch, error) {
	var out []*types.Batch
	err := db.scanFragmentStream(ctx, node, scan, tasks, snap, bypassCache, mode, rowEngine, st, func(b *types.Batch) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scanFragmentStream reads one node's share of a scan and hands each
// surviving batch to emit as it is produced: the containers of the
// chosen projection whose shards (or shard sub-partitions, under crunch
// scaling) the session assigned to this node, with container- and
// block-level min/max pruning, delete-vector filtering and predicate
// evaluation. The executor "attaches storage for the shards the session
// has instructed it to serve" from its own catalog (§4).
//
// Containers are scanned through a bounded worker window
// (ScanConcurrency) so cold scans overlap their shared-storage fetches
// instead of paying containers x columns round trips serially, but —
// unlike a materializing pool — at most that window of container
// results exists at once: emit runs on the caller's goroutine in strict
// (task, container) order (exactly the serial pipeline's order), and a
// slow or early-terminating consumer backpressures the workers through
// the window.
func (db *DB) scanFragmentStream(ctx context.Context, node *Node, scan *planner.Scan, tasks []scanTask, snap *catalog.Snapshot, bypassCache bool, mode CrunchMode, rowEngine bool, st *scanTally, emit func(*types.Batch) error) error {
	// The fragment span arrives via the context (set by execScan); the
	// fetch/decode/filter accumulator children aggregate worker time.
	sps := newScanSpans(obs.SpanFrom(ctx))
	defer sps.end()
	// The scan reads from the query's captured catalog cut, not a fresh
	// snapshot: a concurrent drain (RemoveNode → unsubscribe) deletes the
	// subscription and then prunes the node's local shard metadata via
	// DropShardObjects, which does not advance the catalog version. A
	// fresh snapshot taken here could pass any version check yet have no
	// containers for an assigned shard — a silent short read. The captured
	// cut is immutable (copy-on-write), so the containers it references
	// remain scannable; dropped depot files fall back to shared storage.
	if snap == nil {
		snap = node.catalog.Snapshot()
	}
	wosProjs := map[catalog.OID]bool{}
	var shards []int
	var work []containerWork
	for _, task := range tasks {
		shardIdx := task.Shard
		shards = append(shards, shardIdx)
		// Enterprise: a node serving a shard it does not own in the base
		// projection reads the buddy copy instead — "the global query
		// plan does not change when a node is down, merely a different
		// node serves the underlying data" (§6.1).
		proj := scan.Proj
		if db.mode == ModeEnterprise && shardIdx != catalog.ReplicaShard && !scan.Replicated {
			p, err := db.projectionCopyFor(snap, scan.Proj, shardIdx, node.name)
			if err != nil {
				return err
			}
			proj = p
		}
		wosProjs[proj.OID] = true

		containers := snap.ContainersOf(proj.OID, shardIdx)
		// Container split (§4.4): "each node sharing a segment scans a
		// distinct subset of the containers".
		useContainerSplit := task.Of > 1 &&
			(mode == CrunchContainerSplit || len(scan.SegmentCols) == 0)
		for ci, sc := range containers {
			if db.mode == ModeEnterprise && sc.OwnerNode != node.name {
				continue
			}
			if useContainerSplit && ci%task.Of != task.Part {
				continue
			}
			work = append(work, containerWork{
				task: task,
				sc:   sc,
				// Hash filter (§4.4): "applying a new hash segmentation
				// predicate to each row as it is read" — selective
				// predicates were already applied by the scan, reducing
				// the hashing burden.
				hashFilter: task.Of > 1 && !useContainerSplit,
			})
		}
	}

	// Scan the containers through a bounded streaming window. Each worker
	// keeps its own hash-filter scratch state (ring + hash buffer) so
	// crunch hash-filtering allocates once per worker, not once per batch.
	conc := db.scanConc()
	filters := make([]hashFilterState, conc)
	err := parallel.StreamOrdered(ctx, len(work), conc,
		func(ctx context.Context, worker, i int) ([]*types.Batch, error) {
			w := work[i]
			batches, err := db.scanContainer(ctx, node, scan, snap, w.sc, bypassCache, rowEngine, st, sps)
			if err != nil {
				return nil, err
			}
			if w.hashFilter {
				batches = filters[worker].filter(batches, scan.SegmentCols, w.task.Part, w.task.Of)
			}
			return batches, nil
		},
		func(_ int, batches []*types.Batch) error {
			for _, b := range batches {
				if b == nil || b.NumRows() == 0 {
					continue
				}
				if err := emit(b); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return err
	}

	if scan.Replicated {
		wosProjs = map[catalog.OID]bool{scan.Proj.OID: true}
	}
	// Enterprise: merge WOS rows of the projection copies this node read.
	if db.mode == ModeEnterprise && node.wos != nil {
		for projOID := range wosProjs {
			wb := node.wos.Rows(projOID)
			if wb == nil || wb.NumRows() == 0 {
				continue
			}
			b, err := db.filterWOSRows(node, scan, wb, shards, rowEngine, st)
			if err != nil {
				return err
			}
			if b != nil && b.NumRows() > 0 {
				if err := emit(b); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// hashFilterState is one scan worker's reusable crunch hash-filter
// scratch: the segmentation ring (rebuilt only when the sub-partition
// count changes) and the per-batch hash buffer.
type hashFilterState struct {
	of      int
	ring    *hashring.Ring
	hashes  []uint32
	keepBuf []int
}

// filter keeps only rows whose segmentation-column hash lands in
// sub-partition part of of.
func (h *hashFilterState) filter(batches []*types.Batch, segCols []int, part, of int) []*types.Batch {
	if h.ring == nil || h.of != of {
		h.ring = hashring.NewRing(of)
		h.of = of
	}
	var out []*types.Batch
	for _, b := range batches {
		if b == nil || b.NumRows() == 0 {
			continue
		}
		h.hashes = hashring.HashBatchCols(b, segCols, h.hashes[:0])
		keep := h.keepBuf[:0]
		for i, hash := range h.hashes {
			if h.ring.SegmentFor(hash) == part {
				keep = append(keep, i)
			}
		}
		h.keepBuf = keep[:0]
		if len(keep) == b.NumRows() {
			out = append(out, b)
		} else if len(keep) > 0 {
			// Gather retains the selection internally, so hand it an
			// owned copy rather than the reusable scratch buffer.
			out = append(out, b.Gather(append([]int(nil), keep...)))
		}
	}
	return out
}

// projectionCopyFor finds, within a projection's buddy family, the copy
// whose owner for the given segment is the given node.
func (db *DB) projectionCopyFor(snap *catalog.Snapshot, base *catalog.Projection, shardIdx int, nodeName string) (*catalog.Projection, error) {
	family := []*catalog.Projection{}
	for _, p := range snap.ProjectionsOf(base.TableOID) {
		if p.OID == base.OID || p.BaseOID == base.OID || (base.BaseOID != 0 && (p.OID == base.BaseOID || p.BaseOID == base.BaseOID)) {
			family = append(family, p)
		}
	}
	nNodes := len(db.order)
	for _, p := range family {
		if db.order[(shardIdx+p.BuddyOffset)%nNodes] == nodeName {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: node %s holds no copy of projection %s for segment %d", nodeName, base.Name, shardIdx)
}

// containerStats builds the pruning StatsFunc from catalog column stats.
func containerStats(scan *planner.Scan, sc *catalog.StorageContainer) expr.StatsFunc {
	return func(col int) (types.ColumnStats, bool) {
		if col < 0 || col >= len(scan.Cols) {
			return types.ColumnStats{}, false
		}
		st, ok := sc.ColStats[scan.Cols[col]]
		return st, ok
	}
}

// decodedBlock is one block decoded by the scan pipeline's producer,
// awaiting delete-vector and predicate filtering by the consumer.
type decodedBlock struct {
	blk   rosfile.BlockMeta
	batch *types.Batch
	err   error
}

// scanContainer reads the needed columns of one container. Column files
// and delete vectors are fetched with a bounded concurrent fan-out, and
// block decode is pipelined with filtering: block i+1 decodes while the
// delete-vector and predicate evaluation of block i runs.
func (db *DB) scanContainer(ctx context.Context, node *Node, scan *planner.Scan, snap *catalog.Snapshot, sc *catalog.StorageContainer, bypassCache, rowEngine bool, st *scanTally, sps scanSpans) ([]*types.Batch, error) {
	// Container-level pruning from catalog stats — no file access
	// needed (§2.1).
	if scan.Pred != nil && !expr.CouldMatch(scan.Pred, containerStats(scan, sc)) {
		if st != nil {
			st.containersPruned.Add(1)
		}
		sps.frag.AddAttr("containers_pruned", 1)
		return nil, nil
	}

	// Per-table shaping policy (§5.2): never-cache tables bypass.
	if db.neverCacheTable(scan.Table.Name) {
		bypassCache = true
	}
	conc := db.scanConc()
	fetch := db.trackedFetch(node, bypassCache, st, sps.fetch)
	readers, err := openContainerColumns(ctx, sc, scan.Cols, fetch, conc)
	if err != nil {
		return nil, err
	}

	// Fetch and merge the delete vectors covering this container,
	// concurrently — cold containers often carry several.
	var dvFiles []string
	for _, dv := range snap.DeleteVectorsOf(sc.OID) {
		if db.mode == ModeEnterprise && dv.OwnerNode != node.name {
			continue
		}
		dvFiles = append(dvFiles, dv.File.Path)
	}
	dvLists := make([][]int64, len(dvFiles))
	if err := parallel.ForEach(ctx, len(dvFiles), conc, func(ctx context.Context, _, i int) error {
		data, err := fetch(ctx, dvFiles[i])
		if err != nil {
			return err
		}
		positions, err := storage.ReadDeleteVector(data)
		if err != nil {
			return err
		}
		dvLists[i] = positions
		return nil
	}); err != nil {
		return nil, err
	}
	deletes := storage.NewDeleteSet(dvLists...)
	if st != nil {
		st.containersScanned.Add(1)
	}
	sps.frag.AddAttr("containers_scanned", 1)

	// Read block by block with footer min/max pruning on the scanned
	// columns' readers (block boundaries are aligned across a
	// container's columns). The producer goroutine decodes blocks in
	// order into a small channel; this goroutine filters them, so decode
	// and filter overlap.
	first := readers[scan.Cols[0]]
	nBlocks := len(first.Footer().Blocks)
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	blocks := make(chan decodedBlock, 2)
	go func() {
		defer close(blocks)
		for bi := 0; bi < nBlocks; bi++ {
			if scan.Pred != nil && !blockCouldMatch(scan, readers, bi) {
				if st != nil {
					st.blocksPruned.Add(1)
				}
				sps.frag.AddAttr("blocks_pruned", 1)
				continue
			}
			start := time.Now()
			batch := &types.Batch{Cols: make([]*types.Vector, len(scan.Cols))}
			var decodeErr error
			for ci, col := range scan.Cols {
				v, err := readers[col].ReadBlock(bi)
				if err != nil {
					decodeErr = err
					break
				}
				v.Typ = scan.OutSchema[ci].Type
				batch.Cols[ci] = v
			}
			if st != nil {
				st.addDecode(time.Since(start))
			}
			sps.decode.AddTime(time.Since(start))
			d := decodedBlock{blk: first.Footer().Blocks[bi], batch: batch, err: decodeErr}
			select {
			case blocks <- d:
			case <-pctx.Done():
				return
			}
			if decodeErr != nil {
				return
			}
		}
	}()

	var out []*types.Batch
	for d := range blocks {
		if d.err != nil {
			return nil, d.err
		}
		if st != nil {
			st.blocksScanned.Add(1)
			st.rowsScanned.Add(int64(d.batch.NumRows()))
		}
		sps.frag.AddAttr("blocks_scanned", 1)
		sps.frag.AddAttr("rows_scanned", int64(d.batch.NumRows()))
		start := time.Now()
		batch, err := filterScanBatch(scan, deletes, d, rowEngine, st)
		if st != nil {
			st.addFilter(time.Since(start))
		}
		sps.filter.AddTime(time.Since(start))
		if err != nil {
			return nil, err
		}
		if batch != nil {
			out = append(out, batch)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// filterScanBatch applies delete-vector and predicate filtering to one
// decoded block. On the vectorized engine the delete vector's live
// positions feed the predicate kernels as the initial selection vector,
// so the surviving rows are materialized with a single Gather at the
// end; the row engine gathers after each stage (the reference path).
// Returns a nil batch when no rows survive.
func filterScanBatch(scan *planner.Scan, deletes *storage.DeleteSet, d decodedBlock, rowEngine bool, st *scanTally) (*types.Batch, error) {
	batch := d.batch
	if rowEngine {
		if deletes.Len() > 0 {
			live := deletes.LivePositions(d.blk.RowStart, batch.NumRows())
			if len(live) == 0 {
				return nil, nil
			}
			if len(live) < batch.NumRows() {
				batch = batch.Gather(live)
			}
		}
		if scan.Pred != nil {
			sel, err := expr.FilterBatch(scan.Pred, batch)
			if err != nil {
				return nil, err
			}
			if len(sel) == 0 {
				return nil, nil
			}
			if len(sel) < batch.NumRows() {
				batch = batch.Gather(sel)
			}
		}
		return batch, nil
	}
	// sel == nil means every row is selected; hasSel distinguishes a real
	// (possibly shorter) selection that still needs gathering.
	var sel []int
	hasSel := false
	if deletes.Len() > 0 {
		live := deletes.LivePositions(d.blk.RowStart, batch.NumRows())
		if len(live) == 0 {
			return nil, nil
		}
		if len(live) < batch.NumRows() {
			sel, hasSel = live, true
		}
	}
	if scan.Pred != nil {
		s, err := expr.FilterVec(scan.Pred, batch, sel, st.vecStats())
		if err != nil {
			return nil, err
		}
		if len(s) == 0 {
			return nil, nil
		}
		sel, hasSel = s, len(s) < batch.NumRows()
	}
	if hasSel {
		batch = batch.Gather(sel)
	}
	return batch, nil
}

// blockCouldMatch applies min/max pruning using the footers of every
// scanned column at block index bi (the position index of §2.3 stores
// per-block minimum and maximum values).
func blockCouldMatch(scan *planner.Scan, readers map[string]*rosfile.Reader, bi int) bool {
	stats := func(col int) (types.ColumnStats, bool) {
		if col < 0 || col >= len(scan.Cols) {
			return types.ColumnStats{}, false
		}
		r := readers[scan.Cols[col]]
		if r == nil || bi >= len(r.Footer().Blocks) {
			return types.ColumnStats{}, false
		}
		blk := r.Footer().Blocks[bi]
		return types.ColumnStats{
			Min:      blk.Min,
			Max:      blk.Max,
			HasNulls: blk.NullCount > 0,
			AllNull:  blk.NullCount == blk.RowCount,
		}, true
	}
	return expr.CouldMatch(scan.Pred, stats)
}

// filterWOSRows projects WOS rows to the scan's columns, restricts them
// to the node's shards, and applies the predicate.
func (db *DB) filterWOSRows(node *Node, scan *planner.Scan, wb *types.Batch, shards []int, rowEngine bool, st *scanTally) (*types.Batch, error) {
	projSchema := make(types.Schema, len(scan.Proj.Columns))
	// WOS batches are stored in projection column order.
	for i, c := range scan.Proj.Columns {
		projSchema[i] = types.Column{Name: c}
	}
	// Select the needed columns in scan order.
	sel := &types.Batch{Cols: make([]*types.Vector, len(scan.Cols))}
	for i, c := range scan.Cols {
		idx := projSchema.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("core: WOS missing column %q", c)
		}
		sel.Cols[i] = wb.Cols[idx]
	}
	// WOS rows were already routed to this node per shard at load time;
	// every buffered row of this projection copy belongs to a shard the
	// node owns, so no further shard filtering is needed.
	_ = shards
	if scan.Pred != nil {
		var idx []int
		var err error
		if rowEngine {
			idx, err = expr.FilterBatch(scan.Pred, sel)
		} else {
			idx, err = expr.FilterVec(scan.Pred, sel, nil, st.vecStats())
		}
		if err != nil {
			return nil, err
		}
		if len(idx) == 0 {
			return nil, nil
		}
		sel = sel.Gather(idx)
	}
	return sel, nil
}
