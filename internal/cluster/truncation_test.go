package cluster

import "testing"

// Table-driven edge cases of the Figure 5 consensus computation.
func TestComputeTruncationVersionTable(t *testing.T) {
	cases := []struct {
		name      string
		shardSubs map[int][]string
		intervals map[string]SyncInterval
		want      uint64
		wantOK    bool
	}{
		{
			name:      "empty shard map",
			shardSubs: map[int][]string{},
			intervals: map[string]SyncInterval{"n1": {Lower: 1, Upper: 9}},
			wantOK:    false,
		},
		{
			name:      "nil inputs",
			shardSubs: nil,
			intervals: nil,
			wantOK:    false,
		},
		{
			name: "shard with no subscriber upload blocks consensus",
			shardSubs: map[int][]string{
				0: {"n1"},
				1: {"n2"}, // n2 never uploaded
			},
			intervals: map[string]SyncInterval{"n1": {Upper: 7}},
			wantOK:    false,
		},
		{
			name: "shard with empty subscriber list blocks consensus",
			shardSubs: map[int][]string{
				0: {"n1"},
				1: {},
			},
			intervals: map[string]SyncInterval{"n1": {Upper: 7}},
			wantOK:    false,
		},
		{
			name: "consensus is min over shards of best subscriber upper",
			shardSubs: map[int][]string{
				0: {"n1", "n2"}, // best 9
				1: {"n2", "n3"}, // best 6
				2: {"n1", "n3"}, // best 9
			},
			intervals: map[string]SyncInterval{
				"n1": {Upper: 9},
				"n2": {Upper: 4},
				"n3": {Upper: 6},
			},
			want:   6,
			wantOK: true,
		},
		{
			name:      "single shard single subscriber",
			shardSubs: map[int][]string{0: {"n1"}},
			intervals: map[string]SyncInterval{"n1": {Upper: 3}},
			want:      3,
			wantOK:    true,
		},
		{
			name:      "subscriber with zero upper still counts as an upload",
			shardSubs: map[int][]string{0: {"n1"}},
			intervals: map[string]SyncInterval{"n1": {Upper: 0}},
			want:      0,
			wantOK:    true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, ok := ComputeTruncationVersion(tc.shardSubs, tc.intervals)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if ok && v != tc.want {
				t.Errorf("version = %d, want %d", v, tc.want)
			}
		})
	}
}
