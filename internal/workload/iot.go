package workload

import (
	"math/rand"

	"eon/internal/types"
)

// IoT models the Figure 11b workload: many tables loaded concurrently
// with small batches — "the scenario is typical of an internet of things
// workload". Each COPY statement loads a batch whose logical size stands
// in for the paper's 50 MB input files.
type IoT struct {
	// RowsPerLoad is the batch size of one COPY.
	RowsPerLoad int
	Seed        int64
}

// DefaultIoT returns the standard configuration.
func DefaultIoT() IoT { return IoT{RowsPerLoad: 2000, Seed: 7} }

// DDL returns the sensor-readings schema.
func (w IoT) DDL() []string {
	return []string{
		`CREATE TABLE readings (device_id INTEGER, ts INTEGER, metric VARCHAR, value FLOAT)`,
		`CREATE PROJECTION readings_super AS SELECT * FROM readings ORDER BY device_id, ts SEGMENTED BY HASH(device_id) ALL NODES`,
	}
}

// Schema returns the readings schema for batch construction.
func (w IoT) Schema() types.Schema {
	return types.Schema{
		{Name: "device_id", Type: types.Int64},
		{Name: "ts", Type: types.Int64},
		{Name: "metric", Type: types.Varchar},
		{Name: "value", Type: types.Float64},
	}
}

var metrics = []string{"temp", "humidity", "pressure", "voltage"}

// Batch generates one load's rows; seq distinguishes concurrent loads so
// data stays unique and deterministic.
func (w IoT) Batch(seq int64) *types.Batch {
	rng := rand.New(rand.NewSource(w.Seed + seq))
	b := types.NewBatch(w.Schema(), w.RowsPerLoad)
	base := seq * int64(w.RowsPerLoad)
	for i := 0; i < w.RowsPerLoad; i++ {
		b.AppendRow(types.Row{
			types.NewInt(int64(rng.Intn(1000))),
			types.NewInt(base + int64(i)),
			types.NewString(metrics[rng.Intn(len(metrics))]),
			types.NewFloat(rng.Float64() * 100),
		})
	}
	return b
}
