package expr

import "eon/internal/types"

// ColumnStats aliases types.ColumnStats: the min/max/null summary of one
// column of a storage unit (a ROS block or a whole container).
type ColumnStats = types.ColumnStats

// StatsFunc supplies stats for a bound column index; ok=false means the
// column's stats are unknown and the analysis must be conservative.
type StatsFunc func(col int) (ColumnStats, bool)

// CouldMatch reports whether the bound predicate could evaluate to TRUE
// for any row whose columns lie within the supplied min/max bounds. A
// false result proves no row matches, allowing the storage unit to be
// pruned (paper §2.1). The analysis is conservative: any construct it
// cannot reason about yields true.
func CouldMatch(e Expr, stats StatsFunc) bool {
	return couldMatch(e, stats)
}

func couldMatch(e Expr, stats StatsFunc) bool {
	switch n := e.(type) {
	case *Literal:
		if n.Value.K == types.Bool && !n.Value.Null {
			return n.Value.B
		}
		return true
	case *Binary:
		switch n.Op {
		case OpAnd:
			// A conjunction can match only if each conjunct can.
			return couldMatch(n.L, stats) && couldMatch(n.R, stats)
		case OpOr:
			return couldMatch(n.L, stats) || couldMatch(n.R, stats)
		}
		if n.Op.IsComparison() {
			return comparisonCouldMatch(n, stats)
		}
		return true
	case *IsNull:
		col, ok := n.E.(*ColumnRef)
		if !ok {
			return true
		}
		st, known := stats(col.Index)
		if !known {
			return true
		}
		if n.Negate {
			return !st.AllNull
		}
		return st.HasNulls || st.AllNull
	case *In:
		if n.Negate {
			return true
		}
		col, ok := n.E.(*ColumnRef)
		if !ok {
			return true
		}
		st, known := stats(col.Index)
		if !known {
			return true
		}
		if st.AllNull {
			return false // all-NULL can never satisfy IN
		}
		for _, le := range n.List {
			lit, ok := le.(*Literal)
			if !ok {
				return true
			}
			if lit.Value.Null {
				continue
			}
			if compareMixed(lit.Value, st.Min) >= 0 && compareMixed(lit.Value, st.Max) <= 0 {
				return true
			}
		}
		return false
	}
	return true
}

// comparisonCouldMatch analyzes col <op> literal (or literal <op> col).
func comparisonCouldMatch(n *Binary, stats StatsFunc) bool {
	col, lit, op, ok := normalizeComparison(n)
	if !ok {
		return true
	}
	st, known := stats(col.Index)
	if !known {
		return true
	}
	if st.AllNull || lit.Null {
		return false // comparison with NULL is never TRUE
	}
	cMin := compareMixed(st.Min, lit)
	cMax := compareMixed(st.Max, lit)
	switch op {
	case OpEq:
		return cMin <= 0 && cMax >= 0
	case OpNe:
		// Only impossible when every value equals the literal.
		return !(cMin == 0 && cMax == 0)
	case OpLt:
		return cMin < 0
	case OpLe:
		return cMin <= 0
	case OpGt:
		return cMax > 0
	case OpGe:
		return cMax >= 0
	}
	return true
}

// normalizeComparison rewrites the comparison so the column is on the
// left; returns ok=false if the shape is not column-vs-literal.
func normalizeComparison(n *Binary) (*ColumnRef, types.Datum, Op, bool) {
	if c, ok := n.L.(*ColumnRef); ok {
		if l, ok := n.R.(*Literal); ok {
			return c, l.Value, n.Op, true
		}
	}
	if c, ok := n.R.(*ColumnRef); ok {
		if l, ok := n.L.(*Literal); ok {
			return c, l.Value, flipOp(n.Op), true
		}
	}
	return nil, types.Datum{}, OpInvalid, false
}

func flipOp(op Op) Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}
