// Command eon-bench regenerates the paper's evaluation figures (§8) and
// prints the same rows/series each figure plots.
//
// Usage:
//
//	eon-bench [-metrics addr] fig10 [-scale 0.2] [-reps 3]
//	eon-bench fig11a [-scale 0.02] [-window 600ms]
//	eon-bench fig11b [-window 600ms]
//	eon-bench fig12 [-scale 0.02]
//	eon-bench elasticity [-scale 0.2]
//	eon-bench serving [-scale 0.02] [-threads 16] [-window 500ms]
//	eon-bench all
//
// With -metrics, an HTTP endpoint serves every live cluster's metrics
// registry while the benchmark runs (JSON by default, ?format=text for
// the aligned view).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"eon/internal/core"
	"eon/internal/experiments"
	"eon/internal/obs"
)

func main() {
	metrics := flag.String("metrics", "", "serve /metrics on this address while benchmarks run (e.g. :8080)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler())
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "eon-bench: metrics endpoint:", err)
			}
		}()
		fmt.Printf("serving metrics on http://%s/metrics\n", *metrics)
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	var err error
	switch cmd {
	case "fig10":
		err = runFig10(args)
	case "fig11a":
		err = runFig11a(args)
	case "fig11b":
		err = runFig11b(args)
	case "fig12":
		err = runFig12(args)
	case "elasticity":
		err = runElasticity(args)
	case "serving":
		err = runServing(args)
	case "all":
		for _, fn := range []func([]string) error{runFig10, runFig11a, runFig11b, runFig12, runElasticity, runServing} {
			if err = fn(nil); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eon-bench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: eon-bench [-metrics addr] <fig10|fig11a|fig11b|fig12|elasticity|serving|all> [flags]`)
}

func runFig10(args []string) error {
	fs := flag.NewFlagSet("fig10", flag.ExitOnError)
	scale := fs.Float64("scale", 0.2, "TPC-H scale factor")
	reps := fs.Int("reps", 3, "repetitions per query (median reported)")
	fs.Parse(args)

	fmt.Printf("Figure 10: TPC-H query runtimes, Enterprise vs Eon (scale %.2f)\n", *scale)
	rows, err := experiments.Fig10(experiments.Fig10Options{Scale: *scale, Reps: *reps})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tenterprise\teon in-cache\teon from S3")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%v\n", r.Query,
			r.Enterprise.Round(time.Microsecond),
			r.EonCache.Round(time.Microsecond),
			r.EonS3.Round(time.Microsecond))
	}
	return w.Flush()
}

func runFig11a(args []string) error {
	fs := flag.NewFlagSet("fig11a", flag.ExitOnError)
	scale := fs.Float64("scale", 0.02, "TPC-H scale factor")
	window := fs.Duration("window", 600*time.Millisecond, "measurement window per point")
	fs.Parse(args)

	fmt.Println("Figure 11a: dashboard query throughput (queries/minute) via elastic throughput scaling")
	series, err := experiments.Fig11a(experiments.Fig11aOptions{Scale: *scale, Window: *window})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "threads")
	for _, s := range series {
		fmt.Fprintf(w, "\t%s", s.Label)
	}
	fmt.Fprintln(w)
	for ti, th := range series[0].Threads {
		fmt.Fprintf(w, "%d", th)
		for _, s := range series {
			fmt.Fprintf(w, "\t%.0f", s.QPM[ti])
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func runFig11b(args []string) error {
	fs := flag.NewFlagSet("fig11b", flag.ExitOnError)
	window := fs.Duration("window", 600*time.Millisecond, "measurement window per point")
	fs.Parse(args)

	fmt.Println("Figure 11b: concurrent small-COPY throughput (loads/minute)")
	series, err := experiments.Fig11b(experiments.Fig11bOptions{Window: *window})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "threads")
	for _, s := range series {
		fmt.Fprintf(w, "\t%s", s.Label)
	}
	fmt.Fprintln(w)
	for ti, th := range series[0].Threads {
		fmt.Fprintf(w, "%d", th)
		for _, s := range series {
			fmt.Fprintf(w, "\t%.0f", s.LPM[ti])
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func runFig12(args []string) error {
	fs := flag.NewFlagSet("fig12", flag.ExitOnError)
	scale := fs.Float64("scale", 0.02, "TPC-H scale factor")
	fs.Parse(args)

	fmt.Println("Figure 12: throughput trace, kill 1 node mid-run (queries per window)")
	for _, mode := range []core.Mode{core.ModeEon, core.ModeEnterprise} {
		res, err := experiments.Fig12(experiments.Fig12Options{Mode: mode, Scale: *scale, Threads: 20, NumWindows: 8, KillWindow: 4})
		if err != nil {
			return err
		}
		before, after := res.BeforeAfter()
		fmt.Printf("%-22s windows=%v  (kill at window %d; retained %.0f%%)\n",
			res.Label+":", res.WindowCounts, res.KillWindow, 100*after/before)
	}
	return nil
}

func runElasticity(args []string) error {
	fs := flag.NewFlagSet("elasticity", flag.ExitOnError)
	scale := fs.Float64("scale", 0.2, "TPC-H scale factor")
	fs.Parse(args)

	fmt.Println("Elasticity (§8): add a node to a loaded 3-node Eon cluster")
	res, err := experiments.Elasticity(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("  add-node wall time:     %v\n", res.AddNodeTime.Round(time.Millisecond))
	fmt.Printf("  cache bytes warmed:     %d\n", res.BytesWarmed)
	fmt.Printf("  dataset bytes (total):  %d  (an Enterprise rebalance would reshuffle all of it)\n", res.DatasetBytes)
	fmt.Printf("  shards served by node4: %d\n", res.NewNodeServes)
	return nil
}

func runServing(args []string) error {
	fs := flag.NewFlagSet("serving", flag.ExitOnError)
	scale := fs.Float64("scale", 0.02, "TPC-H scale factor")
	threads := fs.Int("threads", 16, "concurrent sessions")
	window := fs.Duration("window", 500*time.Millisecond, "throughput window")
	fs.Parse(args)

	fmt.Println("Serving path: hot-query throughput with the plan/result caches on vs off,")
	fmt.Printf("and admission latency at %d sessions over a 4-way subcluster cap\n", *threads)
	res, err := experiments.ServingThroughput(experiments.ServingOptions{
		Scale: *scale, Threads: *threads, Window: *window,
	})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "serving path\tqueries/min")
	fmt.Fprintf(w, "caches off\t%.0f\n", res.UncachedQPM)
	fmt.Fprintf(w, "caches on\t%.0f\n", res.CachedQPM)
	w.Flush()
	if res.UncachedQPM > 0 {
		fmt.Printf("speedup: %.1fx\n", res.CachedQPM/res.UncachedQPM)
	}
	fmt.Printf("admission (oversubscribed): p50 %v  p99 %v  queued %d  timeouts %d\n",
		res.AdmissionP50.Round(time.Microsecond), res.AdmissionP99.Round(time.Microsecond),
		res.AdmissionQueued, res.AdmissionTimeouts)
	return nil
}
