package core

import "sync"

// slotManager allocates per-node execution slots (§4.2) with
// all-or-nothing semantics: a request for several slots — possibly
// multiple on one node, as when a buddy serves two segments after a
// failure — either acquires them all atomically or waits. Partial holds
// are never visible, which rules out the multi-unit deadlock where
// concurrent queries each hold one of a node's slots while waiting for a
// second.
type slotManager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail map[string]int
	cap   map[string]int
}

func newSlotManager() *slotManager {
	m := &slotManager{avail: map[string]int{}, cap: map[string]int{}}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// register sets a node's slot capacity.
func (m *slotManager) register(node string, slots int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cap[node] = slots
	m.avail[node] = slots
	m.cond.Broadcast()
}

// acquire blocks until every requested slot count is simultaneously
// available, then takes them. ok reports whether validate approved the
// request at grant time (a node may have gone down while waiting).
func (m *slotManager) acquire(req map[string]int, validate func() bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		ready := true
		for node, n := range req {
			if m.avail[node] < n {
				ready = false
				break
			}
		}
		if ready {
			if validate != nil && !validate() {
				return false
			}
			for node, n := range req {
				m.avail[node] -= n
			}
			return true
		}
		if validate != nil && !validate() {
			return false
		}
		m.cond.Wait()
	}
}

// release returns slots to the pool.
func (m *slotManager) release(req map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for node, n := range req {
		m.avail[node] += n
		if m.avail[node] > m.cap[node] {
			m.avail[node] = m.cap[node]
		}
	}
	m.cond.Broadcast()
}

// kick wakes all waiters so they can re-validate (e.g. after a node
// failure changes what a waiting query should do).
func (m *slotManager) kick() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}
