package exec

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"eon/internal/types"
	"eon/internal/udfs"
)

// SpillHandle identifies one spill file written through a SpillStore.
type SpillHandle struct {
	Path string
	Size int64
}

// SpillStore is the narrow disk interface pipeline breakers spill
// through when the memory governor reports the budget exhausted. Files
// are written whole (the UDFS contract) and read back incrementally.
type SpillStore interface {
	// Put writes one spill file of the given kind and returns its handle.
	Put(kind string, data []byte) (SpillHandle, error)
	// ReadAt reads length bytes at offset from a spilled file.
	ReadAt(h SpillHandle, offset, length int64) ([]byte, error)
}

// FSSpill adapts a udfs.FileSystem (a node's simulated local disk) to
// SpillStore. Every file lands under the store's prefix, so a query's
// spill can be removed wholesale when it finishes. Writes and reads run
// under the query context; Cleanup takes its own context because it must
// work after the query's has been canceled.
type FSSpill struct {
	ctx    context.Context
	fs     udfs.FileSystem
	prefix string
	seq    atomic.Int64
}

// NewFSSpill returns a spill store writing under prefix on fs.
func NewFSSpill(ctx context.Context, fs udfs.FileSystem, prefix string) *FSSpill {
	return &FSSpill{ctx: ctx, fs: fs, prefix: prefix}
}

// Put implements SpillStore.
func (s *FSSpill) Put(kind string, data []byte) (SpillHandle, error) {
	path := fmt.Sprintf("%s/%06d.%s", s.prefix, s.seq.Add(1), kind)
	if err := s.fs.WriteFile(s.ctx, path, data); err != nil {
		return SpillHandle{}, err
	}
	return SpillHandle{Path: path, Size: int64(len(data))}, nil
}

// ReadAt implements SpillStore.
func (s *FSSpill) ReadAt(h SpillHandle, offset, length int64) ([]byte, error) {
	return s.fs.ReadAt(s.ctx, h.Path, offset, length)
}

// Cleanup removes every file under the store's prefix.
func (s *FSSpill) Cleanup(ctx context.Context) error {
	infos, err := s.fs.List(ctx, s.prefix+"/")
	if err != nil {
		return err
	}
	for _, in := range infos {
		if err := s.fs.Remove(ctx, in.Path); err != nil {
			return err
		}
	}
	return nil
}

// spillChunkRows bounds the rows per frame in a spilled run, so reading
// a run back holds one frame of rows at a time, not the whole run.
const spillChunkRows = 4096

// aggRecsPerFrame bounds group records per frame in an aggregation run.
const aggRecsPerFrame = 512

// ---- framing ----
//
// A spill file is a sequence of frames: [u32 little-endian payload
// length][payload]. Frames decode independently, so a reader holds one
// frame in memory at a time.

func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// readFrame reads the frame starting at off. A nil payload with no error
// means the file is exhausted.
func readFrame(st SpillStore, h SpillHandle, off int64) (payload []byte, next int64, err error) {
	if off >= h.Size {
		return nil, off, nil
	}
	hdr, err := st.ReadAt(h, off, 4)
	if err != nil {
		return nil, 0, err
	}
	if len(hdr) < 4 {
		return nil, 0, fmt.Errorf("exec: truncated spill frame header in %s", h.Path)
	}
	n := int64(binary.LittleEndian.Uint32(hdr))
	payload, err = st.ReadAt(h, off+4, n)
	if err != nil {
		return nil, 0, err
	}
	if int64(len(payload)) < n {
		return nil, 0, fmt.Errorf("exec: truncated spill frame in %s", h.Path)
	}
	return payload, off + 4 + n, nil
}

// byteReader is a bounds-checked cursor over one decoded frame.
type byteReader struct {
	data []byte
	pos  int
	err  error
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("exec: truncated spill payload")
	}
}

func (r *byteReader) u8() byte {
	if r.err != nil || r.pos+1 > len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *byteReader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *byteReader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.data) {
		r.fail()
		return nil
	}
	v := r.data[r.pos : r.pos+n]
	r.pos += n
	return v
}

// ---- batch codec ----
//
// One frame payload holds one batch: u32 row count, then per column a
// null-bitmap presence byte (+ bitmap) and the typed values. The schema
// is not stored; the reader supplies it.

func encodeBatch(dst []byte, b *types.Batch) []byte {
	rows := b.NumRows()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
	for _, v := range b.Cols {
		hasNulls := false
		for i := 0; i < rows; i++ {
			if v.IsNull(i) {
				hasNulls = true
				break
			}
		}
		if hasNulls {
			dst = append(dst, 1)
			for i := 0; i < rows; i++ {
				if v.IsNull(i) {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		} else {
			dst = append(dst, 0)
		}
		switch v.Typ.Physical() {
		case types.Int64:
			for _, x := range v.Ints {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
			}
		case types.Float64:
			for _, x := range v.Floats {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
			}
		case types.Varchar:
			for _, s := range v.Strs {
				dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
				dst = append(dst, s...)
			}
		case types.Bool:
			for _, x := range v.Bools {
				if x {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		}
	}
	return dst
}

func decodeBatch(schema types.Schema, payload []byte) (*types.Batch, error) {
	r := &byteReader{data: payload}
	rows := int(r.u32())
	b := &types.Batch{Cols: make([]*types.Vector, len(schema))}
	for ci, col := range schema {
		v := &types.Vector{Typ: col.Type}
		var nulls []bool
		if r.u8() == 1 {
			raw := r.bytes(rows)
			nulls = make([]bool, rows)
			for i := range raw {
				nulls[i] = raw[i] == 1
			}
		}
		switch col.Type.Physical() {
		case types.Int64:
			v.Ints = make([]int64, rows)
			for i := range v.Ints {
				v.Ints[i] = int64(r.u64())
			}
		case types.Float64:
			v.Floats = make([]float64, rows)
			for i := range v.Floats {
				v.Floats[i] = math.Float64frombits(r.u64())
			}
		case types.Varchar:
			v.Strs = make([]string, rows)
			for i := range v.Strs {
				v.Strs[i] = string(r.bytes(int(r.u32())))
			}
		case types.Bool:
			v.Bools = make([]bool, rows)
			for i := range v.Bools {
				v.Bools[i] = r.u8() == 1
			}
		}
		v.Nulls = nulls
		b.Cols[ci] = v
	}
	if r.err != nil {
		return nil, r.err
	}
	return b, nil
}

// writeBatchRun spills a batch as one run file of framed chunks.
func writeBatchRun(st SpillStore, kind string, b *types.Batch) (SpillHandle, error) {
	var buf []byte
	rows := b.NumRows()
	for lo := 0; lo < rows; lo += spillChunkRows {
		hi := lo + spillChunkRows
		if hi > rows {
			hi = rows
		}
		buf = appendFrame(buf, encodeBatch(nil, b.Slice(lo, hi)))
	}
	return st.Put(kind, buf)
}

// batchRunCursor reads a spilled batch run back frame by frame, exposing
// the current row as (cur, row).
type batchRunCursor struct {
	st     SpillStore
	h      SpillHandle
	schema types.Schema
	off    int64
	cur    *types.Batch
	row    int
}

// load advances to the next available row, fetching the next frame when
// the current one is exhausted. cur == nil after load means end of run.
func (c *batchRunCursor) load() error {
	for c.cur == nil || c.row >= c.cur.NumRows() {
		payload, next, err := readFrame(c.st, c.h, c.off)
		if err != nil {
			return err
		}
		if payload == nil {
			c.cur = nil
			return nil
		}
		b, err := decodeBatch(c.schema, payload)
		if err != nil {
			return err
		}
		c.off = next
		c.cur = b
		c.row = 0
	}
	return nil
}

// ---- datum / aggregation-state codec ----

func appendDatum(dst []byte, d types.Datum) []byte {
	dst = append(dst, byte(d.K))
	if d.Null {
		return append(dst, 1)
	}
	dst = append(dst, 0)
	switch d.K.Physical() {
	case types.Int64:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(d.I))
	case types.Float64:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.F))
	case types.Varchar:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.S)))
		dst = append(dst, d.S...)
	case types.Bool:
		if d.B {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func (r *byteReader) datum() types.Datum {
	d := types.Datum{K: types.Type(r.u8())}
	if r.u8() == 1 {
		d.Null = true
		return d
	}
	switch d.K.Physical() {
	case types.Int64:
		d.I = int64(r.u64())
	case types.Float64:
		d.F = math.Float64frombits(r.u64())
	case types.Varchar:
		d.S = string(r.bytes(int(r.u32())))
	case types.Bool:
		d.B = r.u8() == 1
	}
	return d
}

func appendAggState(dst []byte, s *aggState) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.count))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.sumI))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.sumF))
	if s.init {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendDatum(dst, s.min)
	dst = appendDatum(dst, s.max)
	return dst
}

func (r *byteReader) aggState() aggState {
	var s aggState
	s.count = int64(r.u64())
	s.sumI = int64(r.u64())
	s.sumF = math.Float64frombits(r.u64())
	s.init = r.u8() == 1
	s.min = r.datum()
	s.max = r.datum()
	return s
}

// aggRecord is one spilled group: its hash key bytes (the run sort
// order), the materialized key datums and the per-aggregate states.
type aggRecord struct {
	key    []byte
	row    types.Row
	states []aggState
}

func appendAggRecord(dst []byte, key []byte, row types.Row, states []aggState) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(row)))
	for _, d := range row {
		dst = appendDatum(dst, d)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(states)))
	for i := range states {
		dst = appendAggState(dst, &states[i])
	}
	return dst
}

func (r *byteReader) aggRecord() aggRecord {
	var rec aggRecord
	rec.key = append([]byte(nil), r.bytes(int(r.u32()))...)
	nk := int(r.u32())
	if nk > 0 {
		rec.row = make(types.Row, nk)
		for i := range rec.row {
			rec.row[i] = r.datum()
		}
	}
	na := int(r.u32())
	rec.states = make([]aggState, na)
	for i := range rec.states {
		rec.states[i] = r.aggState()
	}
	return rec
}

// aggRunCursor reads a spilled aggregation run record by record.
type aggRunCursor struct {
	st   SpillStore
	h    SpillHandle
	off  int64
	recs []aggRecord
	pos  int
}

// head returns the current record (valid after a successful load with
// done() false).
func (c *aggRunCursor) head() *aggRecord { return &c.recs[c.pos] }

func (c *aggRunCursor) done() bool { return c.recs == nil }

// load advances to the next record, fetching the next frame as needed.
func (c *aggRunCursor) load() error {
	for c.recs == nil || c.pos >= len(c.recs) {
		payload, next, err := readFrame(c.st, c.h, c.off)
		if err != nil {
			return err
		}
		if payload == nil {
			c.recs = nil
			return nil
		}
		r := &byteReader{data: payload}
		var recs []aggRecord
		for r.pos < len(r.data) && r.err == nil {
			recs = append(recs, r.aggRecord())
		}
		if r.err != nil {
			return r.err
		}
		c.off = next
		c.recs = recs
		c.pos = 0
	}
	return nil
}
