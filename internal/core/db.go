// Package core integrates the substrates into the database engine: a
// multi-node cluster (simulated in-process) that runs in either
// Enterprise mode (shared-nothing, buddy projections, WOS, node-local
// storage) or Eon mode (shared storage, segment shards, subscriptions,
// per-node file cache) — the paper's central contrast. The optimizer and
// execution engine are shared between modes; storage layout, fault
// tolerance and recovery differ (paper §1, §3-§6).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eon/internal/cache"
	"eon/internal/catalog"
	"eon/internal/cluster"
	"eon/internal/hashring"
	"eon/internal/netsim"
	"eon/internal/objstore"
	"eon/internal/obs"
	"eon/internal/resilience"
	"eon/internal/systable"
	"eon/internal/tuplemover"
	"eon/internal/udfs"
	"eon/internal/wos"
)

// Mode selects the architecture.
type Mode uint8

// The two architectures.
const (
	// ModeEnterprise is the original shared-nothing design: node-local
	// storage, buddy projections for fault tolerance, a WOS with
	// moveout.
	ModeEnterprise Mode = iota
	// ModeEon places data and metadata on shared storage with segment
	// shards, subscriptions and per-node caches.
	ModeEon
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeEon {
		return "eon"
	}
	return "enterprise"
}

// NodeSpec describes one cluster member at creation.
type NodeSpec struct {
	Name       string
	Subcluster string
	Rack       string
}

// Config configures a database.
type Config struct {
	Mode Mode
	Name string
	// Nodes are the initial cluster members.
	Nodes []NodeSpec
	// ShardCount fixes the number of segment shards at database creation
	// (Eon; §3.1). Enterprise uses one segment per initial node.
	ShardCount int
	// ReplicationFactor is the minimum subscribers per shard in Eon
	// (default 2, tolerating one node loss — the analog of K-safety 1).
	ReplicationFactor int
	// ExecSlots is the per-node concurrent query slot count E (§4.2).
	ExecSlots int
	// ScanConcurrency bounds the intra-node scan fan-out: containers of a
	// fragment scanned in parallel, column files and delete vectors of a
	// container fetched in parallel, and files uploaded in parallel on
	// the write path. <= 0 derives the default from runtime.GOMAXPROCS.
	// 1 reproduces the fully serial pipeline.
	ScanConcurrency int
	// CacheBytes is the per-node cache capacity (Eon).
	CacheBytes int64
	// WOSMaxRows: Enterprise loads smaller than this buffer in the WOS;
	// larger loads write ROS directly. Moveout drains WOS buffers.
	WOSMaxRows int
	// Shared is the shared storage (Eon). Defaults to an in-memory
	// store.
	Shared objstore.Store
	// Net models the interconnect. Defaults to a zero-cost network.
	Net *netsim.Network
	// BundleThreshold controls small-container bundling (§2.3); 0 uses
	// the storage default, <0 disables.
	BundleThreshold int64
	// BroadcastRowLimit is the planner's small-table broadcast cutoff.
	BroadcastRowLimit int64
	// Mergeout tunes the tuple mover.
	Mergeout tuplemover.Policy
	// CheckpointThreshold is the catalog checkpoint trigger in log
	// bytes.
	CheckpointThreshold int64
	// LeaseDuration is the revive lease written to cluster_info.json.
	LeaseDuration time.Duration
	// QueryCost simulates the per-node execution time of one query: it
	// is slept while the query's execution slots are held, so throughput
	// scales with total cluster slots (§4.2) rather than with the host
	// machine running the simulation. 0 disables.
	QueryCost time.Duration
	// LoadCost is the analogous simulated ingest time per COPY.
	LoadCost time.Duration
	// Seed makes participating-subscription selection deterministic.
	Seed int64
	// Now overrides the wall clock (lease tests).
	Now func() time.Time
	// Resilience tunes the shared-storage retry/hedge/breaker layer
	// (§5.3). nil uses resilience.DefaultConfig.
	Resilience *resilience.Config
	// SlowQueryThreshold enables the slow-query log: queries whose wall
	// time reaches the threshold (including failed queries) are recorded
	// with their full execution profile. A non-zero threshold forces
	// per-query tracing on for every session. 0 disables.
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize bounds the slow-query log ring (default 64).
	SlowQueryLogSize int
	// QueryMemoryBudget bounds, per query and per node, the bytes the
	// pipeline-breaker operators (hash aggregate, hash join build, sort)
	// may hold; when the budget is finite those operators spill sorted
	// runs to the node's local disk instead of exceeding it. 0 (the
	// default) never spills: sorts and join builds still report usage,
	// while the in-memory aggregate skips the accounting entirely.
	// Sessions inherit the value into Session.MemoryBudget and may
	// override it per connection.
	QueryMemoryBudget int64
	// MaterializedExec runs queries through the previous stage-at-a-time
	// executor (each plan node materializes its full per-node output
	// before its parent starts) instead of the streaming pipeline. Escape
	// hatch for one release; sessions inherit it and may override.
	MaterializedExec bool
	// PlanCacheSize bounds the plan cache (entries of normalized SQL ->
	// bound physical plan). 0 uses the default (256); negative disables
	// plan caching entirely. Warm hits skip lexing, parsing and planning.
	PlanCacheSize int
	// ResultCacheBytes bounds the result-set cache for parameterized hot
	// queries. 0 (the default) disables it. Entries are invalidated by
	// the shard-level catalog object versions the plan reads — never by
	// wall time — so a cached result is served only while every table,
	// projection, storage container and delete vector it touched is
	// unchanged.
	ResultCacheBytes int64
	// SubclusterConcurrency caps concurrently admitted queries per
	// subcluster; excess queries park in a per-subcluster FIFO admission
	// queue bounded by the session timeout. 0 disables the cap.
	SubclusterConcurrency int
	// AdmissionMemoryLimit caps the aggregate Session.MemoryBudget of
	// concurrently admitted queries, cluster-wide; a query that would
	// push the aggregate past the limit queues until running queries
	// finish (a query whose own budget exceeds the limit is admitted
	// alone). 0 disables the throttle.
	AdmissionMemoryLimit int64
	// DataCollectorPolicy bounds each Data Collector event ring (rows
	// and bytes); zero fields take the obs defaults (1024 rows, 1 MiB).
	DataCollectorPolicy obs.DCPolicy
	// DisableDataCollector turns the Data Collector off entirely: hot
	// paths pay only a nil-ring check and the v_monitor.dc_* tables are
	// absent. The overhead benchmark's baseline.
	DisableDataCollector bool
}

// resilienceConfig resolves the shared-storage resilience configuration,
// installing the objstore error classifier and the cluster seed.
func (c *Config) resilienceConfig() resilience.Config {
	var rc resilience.Config
	if c.Resilience != nil {
		rc = *c.Resilience
	} else {
		rc = resilience.DefaultConfig(objstore.IsRetryable)
	}
	if rc.Policy.Retryable == nil {
		rc.Policy.Retryable = objstore.IsRetryable
	}
	if rc.Seed == 0 {
		rc.Seed = c.Seed + 1
	}
	return rc
}

func (c *Config) fillDefaults() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("core: at least one node required")
	}
	if c.Name == "" {
		c.Name = "db"
	}
	if c.ShardCount <= 0 {
		if c.Mode == ModeEon {
			c.ShardCount = len(c.Nodes)
		} else {
			c.ShardCount = len(c.Nodes)
		}
	}
	if c.Mode == ModeEnterprise {
		// Enterprise segmentation is tied to the node ring.
		c.ShardCount = len(c.Nodes)
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor > len(c.Nodes) {
		c.ReplicationFactor = len(c.Nodes)
	}
	if c.ExecSlots <= 0 {
		c.ExecSlots = 4
	}
	if c.ScanConcurrency <= 0 {
		c.ScanConcurrency = runtime.GOMAXPROCS(0)
		if c.ScanConcurrency < 2 {
			c.ScanConcurrency = 2
		}
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.WOSMaxRows <= 0 {
		c.WOSMaxRows = 1024
	}
	if c.Shared == nil {
		c.Shared = objstore.NewMem()
	}
	if c.Net == nil {
		c.Net = netsim.New(netsim.LinkCost{})
	}
	if c.Mergeout.FanIn == 0 {
		c.Mergeout = tuplemover.DefaultPolicy()
	}
	if c.CheckpointThreshold <= 0 {
		c.CheckpointThreshold = 256 << 10
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 2 * time.Minute
	}
	if c.SlowQueryLogSize <= 0 {
		c.SlowQueryLogSize = 64
	}
	return nil
}

// Node is one cluster member.
type Node struct {
	name string
	// scMu guards subcluster and spare, which change when a warm spare is
	// promoted into a subcluster (spare.go).
	scMu       sync.RWMutex
	subcluster string
	spare      bool
	inst       cluster.InstanceID
	catalog    *catalog.Catalog
	fs         *udfs.MemFS  // the node's local disk
	cache      *cache.Cache // Eon file cache
	wos        *wos.Store   // Enterprise write-optimized store
	up         atomic.Bool

	// sync interval of uploaded catalog metadata (Eon, §3.5).
	syncMu   sync.Mutex
	syncIv   cluster.SyncInterval
	syncSeen map[string]bool // catalog files already uploaded

	// running-query version tracking for file GC gossip (§6.5).
	queryMu      sync.Mutex
	runningQ     map[uint64]int // snapshot version -> active query count
	minQReported uint64         // monotonically increasing gossip value
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Subcluster returns the node's current subcluster ("" for the default
// subcluster and for unpromoted spares).
func (n *Node) Subcluster() string {
	n.scMu.RLock()
	defer n.scMu.RUnlock()
	return n.subcluster
}

// Spare reports whether the node is an unpromoted warm spare.
func (n *Node) Spare() bool {
	n.scMu.RLock()
	defer n.scMu.RUnlock()
	return n.spare
}

// setMembership updates the node's subcluster/spare pair (promotion).
func (n *Node) setMembership(subcluster string, spare bool) {
	n.scMu.Lock()
	n.subcluster = subcluster
	n.spare = spare
	n.scMu.Unlock()
}

// Up reports whether the node is running.
func (n *Node) Up() bool { return n.up.Load() }

// Cache returns the node's file cache (nil in Enterprise mode).
func (n *Node) Cache() *cache.Cache { return n.cache }

// Catalog returns the node's catalog.
func (n *Node) Catalog() *catalog.Catalog { return n.catalog }

// InstanceID returns the node's current process instance id.
func (n *Node) InstanceID() cluster.InstanceID { return n.inst }

// beginQuery registers a running query at a snapshot version.
func (n *Node) beginQuery(version uint64) {
	n.queryMu.Lock()
	defer n.queryMu.Unlock()
	n.runningQ[version]++
}

// endQuery deregisters a running query.
func (n *Node) endQuery(version uint64) {
	n.queryMu.Lock()
	defer n.queryMu.Unlock()
	if n.runningQ[version] <= 1 {
		delete(n.runningQ, version)
	} else {
		n.runningQ[version]--
	}
}

// minQueryVersion gossips the minimum catalog version of running
// queries, monotonically increasing (§6.5). current is the node's
// catalog version, reported when no queries run.
func (n *Node) minQueryVersion(current uint64) uint64 {
	n.queryMu.Lock()
	defer n.queryMu.Unlock()
	min := current
	for v := range n.runningQ {
		if v < min {
			min = v
		}
	}
	if min < n.minQReported {
		min = n.minQReported
	}
	n.minQReported = min
	return min
}

// pendingDelete is a storage file awaiting safe deletion (§6.5).
type pendingDelete struct {
	path        string
	dropVersion uint64
}

// DB is one database: a set of nodes plus (in Eon mode) shared storage.
type DB struct {
	cfg  Config
	mode Mode

	// commitMu is the cluster-wide commit serialization (the global
	// catalog lock of §6.3 spans the distributed commit in this
	// simulation).
	commitMu sync.Mutex

	nodesMu sync.RWMutex
	nodes   map[string]*Node
	order   []string // creation order; the Enterprise logical ring

	// shared is the resilient view of shared storage: every access below
	// retries with jittered backoff, hedges GETs and trips the store
	// breaker on sustained pressure (§5.3).
	shared    objstore.Store
	resilient *resilience.Store[objstore.Info]
	// peerBreakers guard node-to-node interactions (commit-time cache
	// shipping, peer cache warming): a dead or struggling peer is skipped
	// and the read path degrades to shared storage.
	peerBreakers *resilience.Group
	// cacheBreakers guard each node's local cache admission; sustained
	// admission failures bypass the cache rather than failing the load
	// or scan.
	cacheBreakers *resilience.Group
	sharedFS      *udfs.ObjectFS
	net           *netsim.Network
	ring          *hashring.Ring

	// slots allocates per-node execution slots (§4.2).
	slots *slotManager
	// admission gates queries in front of slot acquisition: per-subcluster
	// FIFO queues with a budgeted-memory throttle (admission.go).
	admission *admissionController
	// planCache serves bound plans by normalized SQL text (plancache.go);
	// nil when disabled.
	planCache *planCache
	// resultCache serves whole result sets of hot parameterized queries,
	// invalidated by catalog mod-versions (resultcache.go); nil unless
	// Config.ResultCacheBytes is set.
	resultCache *resultCache

	incarnation cluster.IncarnationID

	// recordLog is the in-memory commit history used for node catch-up.
	logMu     sync.Mutex
	recordLog []*catalog.LogRecord

	// deferred file deletions (§6.5).
	gcMu     sync.Mutex
	deferred []pendingDelete

	truncation atomic.Uint64
	seedCtr    atomic.Int64
	shutdown   atomic.Bool
	clockSkew  atomic.Int64 // test hook: artificial now() offset in ns

	// cache shaping (§5.2): tables whose files bypass node caches, both
	// at load (write-through off) and at scan.
	policyMu   sync.RWMutex
	neverCache map[string]bool

	// reg is the database's metrics registry: every subsystem (objstore,
	// resilience, netsim, caches, scan path, tuple mover) registers into
	// it, and the legacy Stats accessors are derived views over it.
	reg *obs.Registry
	// scanM holds the cumulative scan counters (in reg).
	scanM scanMetrics
	// Query-level metrics (in reg).
	queryWall   *obs.Histogram
	queryCount  *obs.Counter
	queryErrors *obs.Counter
	parseErrors *obs.Counter
	// Streaming-executor metrics (in reg): live governed bytes across
	// all running queries, per-query peak distribution, spill activity.
	execMem        *obs.Gauge
	execPeak       *obs.Histogram
	execSpills     *obs.Counter
	execSpillBytes *obs.Counter
	// queryCtr names per-query spill directories.
	queryCtr atomic.Uint64
	// Tuple-mover metrics (in reg).
	mergeoutNS   *obs.Histogram
	mergeoutJobs *obs.Counter

	// slow-query log: a bounded ring of the most recent threshold-crossing
	// queries with their profiles.
	slowMu   sync.Mutex
	slowLog  []SlowQuery
	slowNext int

	// Data Collector (systable.go): retention-bounded event rings fed by
	// hot paths, surfaced as v_monitor.dc_* tables. All ring pointers are
	// nil when Config.DisableDataCollector is set; emits then no-op.
	dc                 *obs.DataCollector
	dcDepotFetches     *obs.DCRing
	dcDepotEvictions   *obs.DCRing
	dcMergeouts        *obs.DCRing
	dcSpills           *obs.DCRing
	dcAdmissionWaits   *obs.DCRing
	dcSlowQueries      *obs.DCRing
	dcReconcileActions *obs.DCRing

	// sysTables is the v_monitor virtual-table registry the planner
	// resolves against and the executor materializes from.
	sysTables *systable.Registry

	// recent-session ring (v_monitor.sessions, v_monitor.query_profiles).
	sessMu   sync.Mutex
	sessLog  []*Session
	sessNext int
	sessCtr  atomic.Int64

	// reconcile-status providers (v_monitor.reconcile_status), installed
	// by the reconcile package.
	rsMu        sync.Mutex
	rsProviders map[string]func() ReconcileStatus
}

// SlowQuery is one slow-query log entry: a query whose wall time reached
// Config.SlowQueryThreshold, with its complete execution profile (failed
// queries are logged too; their profiles are force-completed).
type SlowQuery struct {
	SQL     string        `json:"sql,omitempty"`
	Start   time.Time     `json:"start"`
	Wall    time.Duration `json:"wall_ns"`
	Err     string        `json:"err,omitempty"`
	Profile *obs.Profile  `json:"profile,omitempty"`
	// Exec carries the executor's resource stats for the query: peak
	// governed memory and spill activity.
	Exec ExecStats `json:"exec"`
}

// recordSlow appends an entry to the bounded slow-query ring and emits
// a dc_slow_queries event.
func (db *DB) recordSlow(e SlowQuery) {
	db.dcSlowQueries.Emit(obs.DCEvent{
		A: truncateSQL(e.SQL), B: e.Err,
		V1: int64(e.Wall), V2: e.Exec.PeakMemBytes, V3: e.Exec.SpillBytes,
	})
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	if len(db.slowLog) < db.cfg.SlowQueryLogSize {
		db.slowLog = append(db.slowLog, e)
		return
	}
	db.slowLog[db.slowNext] = e
	db.slowNext = (db.slowNext + 1) % len(db.slowLog)
}

// SlowQueries returns the slow-query log entries, oldest first.
func (db *DB) SlowQueries() []SlowQuery {
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	out := make([]SlowQuery, 0, len(db.slowLog))
	out = append(out, db.slowLog[db.slowNext:]...)
	out = append(out, db.slowLog[:db.slowNext]...)
	return out
}

// Registry returns the database's metrics registry.
func (db *DB) Registry() *obs.Registry { return db.reg }

// Metrics snapshots every metric in the database's registry.
func (db *DB) Metrics() obs.Snapshot { return db.reg.Snapshot() }

// scanConc returns the configured intra-node scan/upload fan-out bound.
func (db *DB) scanConc() int { return db.cfg.ScanConcurrency }

// ScanStats returns the cumulative scan statistics across all queries
// run against this database; Wall sums the wall time of every query. It
// is a derived view over the metrics registry's "scan." counters.
func (db *DB) ScanStats() ScanStats { return db.scanM.snapshot() }

// SetNeverCacheTable installs the "never cache table T" shaping policy
// (§5.2): the table's files are not admitted at load or scan time, so
// large batch/archive tables cannot evict dashboard working sets.
func (db *DB) SetNeverCacheTable(table string, never bool) {
	db.policyMu.Lock()
	defer db.policyMu.Unlock()
	if db.neverCache == nil {
		db.neverCache = map[string]bool{}
	}
	db.neverCache[lowerASCII(table)] = never
}

func (db *DB) neverCacheTable(table string) bool {
	db.policyMu.RLock()
	defer db.policyMu.RUnlock()
	return db.neverCache[lowerASCII(table)]
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// installResilience installs the resilient shared-storage wrapper and
// the per-node breaker groups; all groups aggregate into the wrapper's
// counters so ResilienceStats is one coherent snapshot.
func (db *DB) installResilience(rs *resilience.Store[objstore.Info], cfg resilience.Config) {
	db.resilient = rs
	db.shared = rs
	bc := cfg.Breaker
	bc.Seed = cfg.Seed + 2
	db.peerBreakers = resilience.NewGroup(bc, rs.Counters())
	bc.Seed = cfg.Seed + 3
	db.cacheBreakers = resilience.NewGroup(bc, rs.Counters())
}

// Mode returns the database mode.
func (db *DB) Mode() Mode { return db.mode }

// SharedStore returns the shared object store (Eon), viewed through the
// resilience layer.
func (db *DB) SharedStore() objstore.Store { return db.shared }

// ResilienceStats returns a snapshot of the shared-storage resilience
// counters: retries, hedges, breaker transitions, sheds and
// degradation fallbacks.
func (db *DB) ResilienceStats() resilience.Stats { return db.resilient.Stats() }

// SharedBreaker returns the shared-storage circuit breaker.
func (db *DB) SharedBreaker() *resilience.Breaker { return db.resilient.Breaker() }

// Net returns the simulated network.
func (db *DB) Net() *netsim.Network { return db.net }

// Ring returns the segment-shard hash ring.
func (db *DB) Ring() *hashring.Ring { return db.ring }

// Incarnation returns the cluster's current incarnation id.
func (db *DB) Incarnation() cluster.IncarnationID { return db.incarnation }

// Node returns a node by name.
func (db *DB) Node(name string) (*Node, bool) {
	db.nodesMu.RLock()
	defer db.nodesMu.RUnlock()
	n, ok := db.nodes[name]
	return n, ok
}

// Nodes returns all nodes in creation order.
func (db *DB) Nodes() []*Node {
	db.nodesMu.RLock()
	defer db.nodesMu.RUnlock()
	out := make([]*Node, 0, len(db.order))
	for _, name := range db.order {
		out = append(out, db.nodes[name])
	}
	return out
}

// QueueDepth reports how many queries are parked waiting for execution
// slots — the load signal the reconciler's autoscaler keys off (§4.3).
func (db *DB) QueueDepth() int { return db.slots.waitingCount() }

// SlotsOutstanding reports the execution slots currently held across the
// cluster; it is 0 when the system is quiescent (leak checks).
func (db *DB) SlotsOutstanding() int { return db.slots.outstanding() }

// ReplicationFactor returns the configured minimum subscribers per
// segment shard.
func (db *DB) ReplicationFactor() int { return db.cfg.ReplicationFactor }

// Spares returns the names of unpromoted warm-spare nodes, sorted by
// creation order.
func (db *DB) Spares() []string {
	var out []string
	for _, n := range db.Nodes() {
		if n.Spare() {
			out = append(out, n.name)
		}
	}
	return out
}

// UpNodes returns the names of running nodes.
func (db *DB) UpNodes() map[string]bool {
	out := map[string]bool{}
	for _, n := range db.Nodes() {
		if n.Up() {
			out[n.name] = true
		}
	}
	return out
}

// anyUpNode returns some running node (the lowest-named, making leader
// choice deterministic).
func (db *DB) anyUpNode() (*Node, error) {
	if db.shutdown.Load() {
		return nil, fmt.Errorf("core: cluster is shut down")
	}
	var best *Node
	for _, n := range db.Nodes() {
		if n.Up() && (best == nil || n.name < best.name) {
			best = n
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no nodes up")
	}
	return best, nil
}

// now returns the simulated current time (wall clock or test hook, plus
// any test skew).
func (db *DB) now() time.Time {
	base := time.Now()
	if db.cfg.Now != nil {
		base = db.cfg.Now()
	}
	return base.Add(time.Duration(db.clockSkew.Load()))
}

// AdvanceClock shifts the database's notion of now, for lease tests.
func (db *DB) AdvanceClock(d time.Duration) {
	db.clockSkew.Add(int64(d))
}

func newNode(spec NodeSpec, cfg *Config) *Node {
	n := &Node{
		name:       spec.Name,
		subcluster: spec.Subcluster,
		inst:       cluster.NewInstanceID(),
		catalog:    catalog.New(),
		fs:         udfs.NewMemFS(),
		runningQ:   map[uint64]int{},
		syncSeen:   map[string]bool{},
	}
	n.catalog.SetPersister(catalog.NewPersister(n.fs, "catalog", cfg.CheckpointThreshold))
	if cfg.Mode == ModeEon {
		n.cache = cache.New(n.fs, "cache", cfg.CacheBytes)
	} else {
		n.wos = wos.New()
	}
	n.up.Store(true)
	return n
}

// Create initializes a new database cluster.
func Create(cfg Config) (*DB, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	db := &DB{
		cfg:         cfg,
		mode:        cfg.Mode,
		nodes:       map[string]*Node{},
		net:         cfg.Net,
		ring:        hashring.NewRing(cfg.ShardCount),
		incarnation: cluster.NewIncarnationID(),
	}
	rc := cfg.resilienceConfig()
	db.installResilience(resilience.Wrap[objstore.Info](cfg.Shared, rc), rc)
	db.sharedFS = udfs.NewObjectFS(db.shared)
	db.slots = newSlotManager()
	db.admission = newAdmissionController(cfg.SubclusterConcurrency, cfg.AdmissionMemoryLimit)
	db.planCache = newPlanCache(cfg.PlanCacheSize)
	db.resultCache = newResultCache(cfg.ResultCacheBytes)
	for _, spec := range cfg.Nodes {
		if _, dup := db.nodes[spec.Name]; dup {
			return nil, fmt.Errorf("core: duplicate node name %q", spec.Name)
		}
		n := newNode(spec, &cfg)
		db.nodes[spec.Name] = n
		db.order = append(db.order, spec.Name)
		db.slots.register(spec.Name, cfg.ExecSlots)
		if spec.Rack != "" {
			db.net.SetRack(spec.Name, spec.Rack)
		}
	}
	db.installMetrics()
	db.installDataCollector()
	if err := db.installSystemTables(); err != nil {
		return nil, err
	}
	if err := db.bootstrapCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// installMetrics builds the database's metrics registry and registers
// every subsystem into it: objstore traffic and cost (when shared
// storage is the simulator), resilience counters, interconnect traffic,
// the scan pipeline's cumulative counters, query/mergeout timings, and
// per-node gauges (cache occupancy, catalog version, WOS rows). The
// registry is published process-wide under the database name for export
// endpoints.
func (db *DB) installMetrics() {
	reg := obs.NewRegistry()
	db.reg = reg
	db.scanM.init(reg)
	db.queryWall = reg.Histogram("query.wall_ns")
	db.queryCount = reg.Counter("query.count")
	db.queryErrors = reg.Counter("query.errors")
	db.parseErrors = reg.Counter("query.parse_errors")
	db.planCache.register(reg)
	db.resultCache.register(reg)
	db.admission.register(reg)
	db.execMem = reg.Gauge("exec.mem_bytes")
	db.execPeak = reg.Histogram("exec.query_peak_mem_bytes")
	db.execSpills = reg.Counter("exec.spills")
	db.execSpillBytes = reg.Counter("exec.spill_bytes")
	db.mergeoutNS = reg.Histogram("tuplemover.mergeout_ns")
	db.mergeoutJobs = reg.Counter("tuplemover.jobs")
	reg.GaugeFunc("slots.waiting", func() int64 {
		return int64(db.slots.waitingCount())
	})
	reg.GaugeFunc("slots.held", func() int64 {
		return int64(db.slots.outstanding())
	})
	if sim, ok := db.cfg.Shared.(*objstore.Sim); ok {
		sim.Instrument(reg)
	}
	db.resilient.Counters().Register(reg, "resilience.")
	db.net.Instrument(reg)
	for _, name := range db.order {
		n := db.nodes[name]
		prefix := "node." + name + "."
		if n.cache != nil {
			n.cache.Register(reg, prefix+"cache.")
		}
		cat := n.catalog
		reg.GaugeFunc(prefix+"catalog.version", func() int64 {
			return int64(cat.Version())
		})
		if n.wos != nil {
			w := n.wos
			reg.GaugeFunc(prefix+"wos.rows", func() int64 {
				return int64(w.TotalRows())
			})
		}
		db.ensureSubclusterGauges(n.Subcluster())
	}
	obs.Publish(db.cfg.Name, reg)
}

// ensureSubclusterGauges registers the per-subcluster membership gauges
// ("" registers as "default"): total member nodes and up members, both
// computed on read so they track promotions and failures. Registration
// is idempotent — re-registering a subcluster replaces its gauges with
// equivalent ones — so the helper is called at install time and again
// whenever a node joins or a spare is promoted.
func (db *DB) ensureSubclusterGauges(sc string) {
	label := sc
	if label == "" {
		label = "default"
	}
	count := func(upOnly bool) int64 {
		var n int64
		for _, node := range db.Nodes() {
			if node.Spare() || node.Subcluster() != sc {
				continue
			}
			if upOnly && !node.Up() {
				continue
			}
			n++
		}
		return n
	}
	db.reg.GaugeFunc("subcluster."+label+".nodes", func() int64 { return count(false) })
	db.reg.GaugeFunc("subcluster."+label+".up_nodes", func() int64 { return count(true) })
}

// bootstrapCatalog commits the initial node, shard and subscription
// objects.
func (db *DB) bootstrapCatalog() error {
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	txn := init.catalog.Begin()
	for _, name := range db.order {
		n := db.nodes[name]
		txn.Put(&catalog.Node{OID: init.catalog.NewOID(), Name: n.name, Subcluster: n.Subcluster()})
	}
	for i := 0; i < db.cfg.ShardCount; i++ {
		seg := db.ring.Segment(i)
		txn.Put(&catalog.Shard{
			OID: init.catalog.NewOID(), Index: i,
			ShardKind: catalog.SegmentShard, Lo: seg.Start, Hi: seg.End,
		})
	}
	txn.Put(&catalog.Shard{
		OID: init.catalog.NewOID(), Index: catalog.ReplicaShard,
		ShardKind: catalog.ReplicaShardKind, Lo: 0, Hi: hashring.SpaceSize,
	})
	// Initial subscriptions.
	if db.mode == ModeEon {
		k := db.cfg.ReplicationFactor
		nNodes := len(db.order)
		for i := 0; i < db.cfg.ShardCount; i++ {
			for r := 0; r < k; r++ {
				node := db.order[(i+r)%nNodes]
				txn.Put(&catalog.Subscription{
					OID: init.catalog.NewOID(), Node: node,
					ShardIndex: i, State: catalog.SubActive,
				})
			}
		}
		for _, name := range db.order {
			txn.Put(&catalog.Subscription{
				OID: init.catalog.NewOID(), Node: name,
				ShardIndex: catalog.ReplicaShard, State: catalog.SubActive,
			})
		}
	} else {
		// Enterprise: node i serves segment i (base) and its buddy
		// segment — the rotated ring (§2.2).
		nNodes := len(db.order)
		for i := 0; i < db.cfg.ShardCount; i++ {
			base := db.order[i%nNodes]
			buddy := db.order[(i+1)%nNodes]
			txn.Put(&catalog.Subscription{OID: init.catalog.NewOID(), Node: base, ShardIndex: i, State: catalog.SubActive})
			if buddy != base {
				txn.Put(&catalog.Subscription{OID: init.catalog.NewOID(), Node: buddy, ShardIndex: i, State: catalog.SubActive})
			}
		}
		for _, name := range db.order {
			txn.Put(&catalog.Subscription{
				OID: init.catalog.NewOID(), Node: name,
				ShardIndex: catalog.ReplicaShard, State: catalog.SubActive,
			})
		}
	}
	_, err = db.commit(init, txn, nil)
	return err
}

// keepFuncFor builds the metadata filter for one node's catalog.
func (db *DB) keepFuncFor(n *Node) catalog.KeepFunc {
	if db.mode == ModeEnterprise {
		name := n.name
		return func(o catalog.Object) bool {
			switch t := o.(type) {
			case *catalog.StorageContainer:
				return t.OwnerNode == name
			case *catalog.DeleteVector:
				return t.OwnerNode == name
			}
			return true
		}
	}
	// Eon: keep objects of subscribed shards (any state — metadata is
	// eagerly redistributed to PENDING subscribers too, §3.2).
	snap := n.catalog.Snapshot()
	keep := map[int]bool{}
	for _, s := range snap.Subscriptions(n.name) {
		keep[s.ShardIndex] = true
	}
	return func(o catalog.Object) bool { return keep[o.Shard()] }
}

// commit runs the cluster-wide commit protocol: OCC-validate and commit
// on the initiator, then replicate the record to every other up node
// with its metadata filter. Down nodes catch up from the record log on
// recovery.
func (db *DB) commit(initiator *Node, txn *catalog.Txn, validate func(*catalog.Snapshot) error) (*catalog.LogRecord, error) {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.shutdown.Load() {
		return nil, fmt.Errorf("core: cluster is shut down")
	}
	rec, err := initiator.catalog.CommitValidated(txn, validate)
	if err != nil {
		return nil, err
	}
	db.logMu.Lock()
	db.recordLog = append(db.recordLog, rec)
	db.logMu.Unlock()
	// Fan the record out to the other nodes in parallel (the paper
	// piggybacks metadata deltas on existing messages, §3.2).
	var wg sync.WaitGroup
	for _, n := range db.Nodes() {
		if n == initiator || !n.Up() {
			continue
		}
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			if err := n.catalog.Apply(rec, db.keepFuncFor(n)); err != nil {
				// A node that cannot apply a committed record is broken;
				// take it down rather than diverge (§3.4).
				n.up.Store(false)
			}
		}(n)
	}
	wg.Wait()
	return rec, nil
}

// recordsAfter returns committed records with version > v.
func (db *DB) recordsAfter(v uint64) []*catalog.LogRecord {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	var out []*catalog.LogRecord
	for _, r := range db.recordLog {
		if r.Version > v {
			out = append(out, r)
		}
	}
	return out
}

// Context returns a background context (placeholder for per-session
// deadlines).
func (db *DB) Context() context.Context { return context.Background() }
