// Package tuplemover implements mergeout planning (paper §2.3, §6.2):
// selecting ROS containers to compact using an exponentially tiered
// strata algorithm, so each tuple is merged only a small fixed number of
// times, while aggressively bounding container count and purging deleted
// rows.
//
// Selection is pure planning over catalog metadata; the core package
// executes jobs (read → merge-sort → write → swap) and, in Eon mode, a
// per-shard mergeout coordinator chooses and farms out jobs.
package tuplemover

import (
	"math"
	"sort"

	"eon/internal/catalog"
)

// Policy tunes mergeout selection.
type Policy struct {
	// StrataBase is the exponential tier base: containers with row counts
	// in [base^k, base^(k+1)) share stratum k.
	StrataBase float64
	// FanIn is the minimum number of same-stratum containers worth
	// merging.
	FanIn int
	// MaxFanIn caps containers per job, avoiding expensive large fan-in
	// merges.
	MaxFanIn int
	// PurgeFraction triggers a single-container rewrite when the deleted
	// row fraction exceeds it (deleted records are "a factor in its
	// selection for mergeout").
	PurgeFraction float64
	// MaxContainers, when >0, forces merging the smallest containers
	// whenever a projection-shard's container count exceeds it,
	// constraining metadata size (§2.3).
	MaxContainers int
}

// DefaultPolicy mirrors sensible production defaults.
func DefaultPolicy() Policy {
	return Policy{
		StrataBase:    8,
		FanIn:         4,
		MaxFanIn:      16,
		PurgeFraction: 0.2,
		MaxContainers: 64,
	}
}

// Job is one planned mergeout: the input containers are merged into one
// new container and dropped in the same transaction.
type Job struct {
	Containers []*catalog.StorageContainer
	// Purge marks a job selected for delete-purge rather than strata
	// compaction (it may contain a single container).
	Purge bool
}

// Stratum returns the tier of a container by row count.
func Stratum(rows int64, base float64) int {
	if rows <= 1 {
		return 0
	}
	if base <= 1 {
		base = 2
	}
	return int(math.Log(float64(rows)) / math.Log(base))
}

// SelectJobs plans mergeout for one projection-shard's containers.
// dvCounts supplies deleted row counts per container OID.
func SelectJobs(containers []*catalog.StorageContainer, dvCounts map[catalog.OID]int64, p Policy) []Job {
	if p.FanIn < 2 {
		p.FanIn = 2
	}
	if p.MaxFanIn < p.FanIn {
		p.MaxFanIn = p.FanIn
	}

	var jobs []Job
	used := map[catalog.OID]bool{}

	// 1. Purge-driven selection: containers whose deleted fraction
	// exceeds the threshold are rewritten.
	if p.PurgeFraction > 0 {
		for _, sc := range containers {
			if sc.RowCount == 0 {
				continue
			}
			if float64(dvCounts[sc.OID])/float64(sc.RowCount) > p.PurgeFraction {
				jobs = append(jobs, Job{Containers: []*catalog.StorageContainer{sc}, Purge: true})
				used[sc.OID] = true
			}
		}
	}

	// 2. Strata compaction: group unused containers by stratum; merge
	// groups reaching the fan-in.
	strata := map[int][]*catalog.StorageContainer{}
	for _, sc := range containers {
		if used[sc.OID] {
			continue
		}
		s := Stratum(sc.RowCount, p.StrataBase)
		strata[s] = append(strata[s], sc)
	}
	var levels []int
	for s := range strata {
		levels = append(levels, s)
	}
	sort.Ints(levels)
	for _, s := range levels {
		group := strata[s]
		sort.Slice(group, func(i, j int) bool {
			if group[i].RowCount != group[j].RowCount {
				return group[i].RowCount < group[j].RowCount
			}
			return group[i].OID < group[j].OID
		})
		for len(group) >= p.FanIn {
			n := p.MaxFanIn
			if n > len(group) {
				n = len(group)
			}
			job := Job{Containers: group[:n]}
			for _, sc := range job.Containers {
				used[sc.OID] = true
			}
			jobs = append(jobs, job)
			group = group[n:]
		}
	}

	// 3. Container-count pressure: if still over the cap, merge the
	// smallest remaining containers regardless of strata.
	if p.MaxContainers > 0 {
		remaining := 0
		var free []*catalog.StorageContainer
		for _, sc := range containers {
			if !used[sc.OID] {
				free = append(free, sc)
				remaining++
			}
		}
		if remaining > p.MaxContainers && len(free) >= 2 {
			sort.Slice(free, func(i, j int) bool {
				if free[i].RowCount != free[j].RowCount {
					return free[i].RowCount < free[j].RowCount
				}
				return free[i].OID < free[j].OID
			})
			n := remaining - p.MaxContainers + 1
			if n < 2 {
				n = 2
			}
			if n > p.MaxFanIn {
				n = p.MaxFanIn
			}
			if n > len(free) {
				n = len(free)
			}
			jobs = append(jobs, Job{Containers: free[:n]})
		}
	}
	return jobs
}
