package core

import (
	"testing"
)

// crunchDB builds a cluster with more nodes than shards and replication
// high enough that every node subscribes to every shard (the §4.4
// setting).
func crunchDB(t *testing.T) *DB {
	t.Helper()
	db, err := Create(Config{
		Mode: ModeEon,
		Nodes: []NodeSpec{
			{Name: "node1"}, {Name: "node2"}, {Name: "node3"}, {Name: "node4"},
		},
		ShardCount:        2,
		ReplicationFactor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCrunchHashFilterCorrect(t *testing.T) {
	db := crunchDB(t)
	setupSales(t, db, 500)

	plain := db.NewSession()
	want := mustQuery(t, plain, `SELECT region, COUNT(*) AS n, SUM(price) AS s FROM sales GROUP BY region ORDER BY region`).Rows()

	crunch := db.NewSession()
	crunch.Crunch = CrunchHashFilter
	got := mustQuery(t, crunch, `SELECT region, COUNT(*) AS n, SUM(price) AS s FROM sales GROUP BY region ORDER BY region`).Rows()

	if len(got) != len(want) {
		t.Fatalf("crunch rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("row %d: crunch %v != plain %v", i, got[i], want[i])
		}
	}
}

func TestCrunchContainerSplitCorrect(t *testing.T) {
	db := crunchDB(t)
	setupSales(t, db, 500)

	plain := db.NewSession()
	want := mustQuery(t, plain, `SELECT COUNT(*), SUM(price) FROM sales WHERE price > 10`).Rows()

	crunch := db.NewSession()
	crunch.Crunch = CrunchContainerSplit
	got := mustQuery(t, crunch, `SELECT COUNT(*), SUM(price) FROM sales WHERE price > 10`).Rows()

	if got[0].String() != want[0].String() {
		t.Errorf("container split: %v != %v", got[0], want[0])
	}
}

func TestCrunchHashFilterPreservesLocalJoins(t *testing.T) {
	db := crunchDB(t)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE l (k INTEGER, v INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION l_p AS SELECT * FROM l ORDER BY k SEGMENTED BY HASH(k) ALL NODES`)
	mustExec(t, s, `CREATE TABLE r (k INTEGER, w INTEGER)`)
	mustExec(t, s, `CREATE PROJECTION r_p AS SELECT * FROM r ORDER BY k SEGMENTED BY HASH(k) ALL NODES`)
	for i := 1; i <= 40; i++ {
		mustExec(t, s, insertKV("l", i%8, i))
		mustExec(t, s, insertKV("r", i%8, i*2))
	}
	plainRows := mustQuery(t, s, `SELECT COUNT(*) FROM l JOIN r ON l.k = r.k`).Rows()

	crunch := db.NewSession()
	crunch.Crunch = CrunchHashFilter
	crunchRows := mustQuery(t, crunch, `SELECT COUNT(*) FROM l JOIN r ON l.k = r.k`).Rows()
	if plainRows[0][0].I != crunchRows[0][0].I {
		t.Errorf("co-segmented join under hash filter: %v != %v", crunchRows, plainRows)
	}
}

func insertKV(table string, k, v int) string {
	return "INSERT INTO " + table + " VALUES (" + itoa(k) + ", " + itoa(v) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestCrunchSpreadsWork(t *testing.T) {
	db := crunchDB(t)
	setupSales(t, db, 500)
	s := db.NewSession()
	s.Crunch = CrunchHashFilter
	env, err := s.selectParticipants(mustUp(t, db))
	if err != nil {
		t.Fatal(err)
	}
	if len(env.crunch) == 0 {
		t.Fatal("crunch groups should form when nodes > shards")
	}
	// Every node should receive at least one task.
	busy := 0
	for _, name := range env.nodes {
		if len(env.nodeTasks(name)) > 0 {
			busy++
		}
	}
	if busy < 4 {
		t.Errorf("crunch should engage all 4 nodes, engaged %d", busy)
	}
	// Sub-partitions of each shard cover it exactly once per group
	// member.
	for shard, group := range env.crunch {
		parts := map[int]bool{}
		for _, name := range env.nodes {
			for _, task := range env.nodeTasks(name) {
				if task.Shard == shard {
					if parts[task.Part] {
						t.Errorf("shard %d part %d assigned twice", shard, task.Part)
					}
					parts[task.Part] = true
					if task.Of != len(group) {
						t.Errorf("task of=%d, group=%d", task.Of, len(group))
					}
				}
			}
		}
		if len(parts) != len(group) {
			t.Errorf("shard %d: %d parts for group of %d", shard, len(parts), len(group))
		}
	}
}
