package sql

import (
	"testing"

	"eon/internal/expr"
	"eon/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE sales (
		sale_id INTEGER, customer VARCHAR(64), sale_date DATE, price FLOAT, ok BOOLEAN
	)`)
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "sales" || len(ct.Cols) != 5 {
		t.Fatalf("ct = %+v", ct)
	}
	if ct.Cols[2].Type != types.Date || ct.Cols[3].Type != types.Float64 {
		t.Errorf("types = %+v", ct.Cols)
	}
	if ct.PartitionBy != nil {
		t.Error("no partition clause expected")
	}
}

func TestCreateTablePartitionBy(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE events (ts DATE, v INTEGER) PARTITION BY EXTRACT('month', ts)`)
	ct := stmt.(*CreateTable)
	if ct.PartitionBy == nil {
		t.Fatal("partition expression missing")
	}
	f, ok := ct.PartitionBy.(*expr.Func)
	if !ok || f.Name != "EXTRACT" {
		t.Errorf("partition expr = %v", ct.PartitionBy)
	}
}

func TestCreateProjection(t *testing.T) {
	stmt := mustParse(t, `CREATE PROJECTION sales_p1 AS SELECT sale_id, customer, price FROM sales
		ORDER BY customer, sale_id SEGMENTED BY HASH(sale_id) ALL NODES KSAFE 1`)
	cp := stmt.(*CreateProjection)
	if cp.Name != "sales_p1" || cp.Table != "sales" {
		t.Fatalf("cp = %+v", cp)
	}
	if len(cp.Cols) != 3 || len(cp.OrderBy) != 2 || len(cp.SegmentBy) != 1 {
		t.Errorf("cp = %+v", cp)
	}
	if cp.SegmentBy[0] != "sale_id" || cp.KSafe != 1 || cp.Replicated {
		t.Errorf("cp = %+v", cp)
	}
}

func TestCreateProjectionReplicated(t *testing.T) {
	stmt := mustParse(t, `CREATE PROJECTION dim_p AS SELECT * FROM dim UNSEGMENTED ALL NODES`)
	cp := stmt.(*CreateProjection)
	if !cp.Replicated || len(cp.Cols) != 0 {
		t.Errorf("cp = %+v", cp)
	}
}

func TestInsert(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO sales VALUES (1, 'Grace', DATE '2018-02-01', 50.5), (2, 'Ada', NULL, 40)`)
	ins := stmt.(*Insert)
	if ins.Table != "sales" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 4 {
		t.Fatalf("ins = %+v", ins)
	}
	d := ins.Rows[0][2].(*expr.Literal).Value
	if d.K != types.Date {
		t.Errorf("date literal type = %v", d.K)
	}
	if !ins.Rows[1][2].(*expr.Literal).Value.Null {
		t.Error("NULL literal")
	}
}

func TestDelete(t *testing.T) {
	stmt := mustParse(t, `DELETE FROM sales WHERE price > 100 AND customer = 'Ada'`)
	d := stmt.(*Delete)
	if d.Table != "sales" || d.Where == nil {
		t.Fatalf("d = %+v", d)
	}
	stmt = mustParse(t, `DELETE FROM sales`)
	if stmt.(*Delete).Where != nil {
		t.Error("where should be nil")
	}
}

func TestUpdate(t *testing.T) {
	stmt := mustParse(t, `UPDATE sales SET price = price * 2, customer = 'X' WHERE sale_id = 5`)
	u := stmt.(*Update)
	if u.Table != "sales" || len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("u = %+v", u)
	}
	if u.Set[0].Column != "price" || u.Set[1].Column != "customer" {
		t.Errorf("set = %+v", u.Set)
	}
}

func TestAlterAddColumn(t *testing.T) {
	stmt := mustParse(t, `ALTER TABLE sales ADD COLUMN region VARCHAR DEFAULT 'unknown'`)
	a := stmt.(*AlterAddColumn)
	if a.Table != "sales" || a.Col.Name != "region" || a.Col.Type != types.Varchar {
		t.Fatalf("a = %+v", a)
	}
	if a.Default == nil {
		t.Error("default missing")
	}
	stmt = mustParse(t, `ALTER TABLE sales ADD COLUMN n INTEGER`)
	if stmt.(*AlterAddColumn).Default != nil {
		t.Error("default should be nil")
	}
}

func TestDropTable(t *testing.T) {
	stmt := mustParse(t, `DROP TABLE sales;`)
	if stmt.(*DropTable).Name != "sales" {
		t.Error("drop table name")
	}
}

func TestSelectBasic(t *testing.T) {
	stmt := mustParse(t, `SELECT customer, price FROM sales WHERE price > 10 ORDER BY price DESC LIMIT 5`)
	s := stmt.(*Select)
	if len(s.Items) != 2 || s.From.Table != "sales" || s.Where == nil {
		t.Fatalf("s = %+v", s)
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc || s.Limit != 5 {
		t.Errorf("orderby/limit = %+v %d", s.OrderBy, s.Limit)
	}
}

func TestSelectStar(t *testing.T) {
	s := mustParse(t, `SELECT * FROM sales`).(*Select)
	if len(s.Items) != 1 || !s.Items[0].Star {
		t.Errorf("items = %+v", s.Items)
	}
	if s.Limit != -1 {
		t.Error("default limit -1")
	}
}

func TestSelectAggregates(t *testing.T) {
	s := mustParse(t, `SELECT customer, COUNT(*), SUM(price * (1 - discount)) AS revenue,
		AVG(price), MIN(price), MAX(price), COUNT(DISTINCT customer) c
		FROM sales GROUP BY customer HAVING revenue > 100`).(*Select)
	if len(s.Items) != 7 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if s.Items[1].Agg == nil || s.Items[1].Agg.Op != AggCountStar {
		t.Errorf("count(*) = %+v", s.Items[1])
	}
	if s.Items[2].Agg.Op != AggSum || s.Items[2].Alias != "revenue" {
		t.Errorf("sum = %+v", s.Items[2])
	}
	if s.Items[3].Agg.Op != AggAvg || s.Items[4].Agg.Op != AggMin || s.Items[5].Agg.Op != AggMax {
		t.Error("avg/min/max")
	}
	if s.Items[6].Agg.Op != AggCountDistinct || s.Items[6].Alias != "c" {
		t.Errorf("count distinct = %+v", s.Items[6])
	}
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Error("group/having")
	}
}

func TestSelectJoins(t *testing.T) {
	s := mustParse(t, `SELECT o.id, c.name FROM orders o JOIN customers AS c ON o.cust_id = c.id
		INNER JOIN items i ON i.order_id = o.id WHERE c.name LIKE 'A%'`).(*Select)
	if s.From.Table != "orders" || s.From.Alias != "o" {
		t.Fatalf("from = %+v", s.From)
	}
	if len(s.Joins) != 2 || s.Joins[0].Table.Alias != "c" || s.Joins[1].Table.Name() != "i" {
		t.Fatalf("joins = %+v", s.Joins)
	}
	cr, ok := s.Items[0].Expr.(*expr.ColumnRef)
	if !ok || cr.Name != "o.id" {
		t.Errorf("qualified column = %+v", s.Items[0].Expr)
	}
}

func TestSelectDistinct(t *testing.T) {
	s := mustParse(t, `SELECT DISTINCT customer FROM sales`).(*Select)
	if !s.Distinct {
		t.Error("distinct flag")
	}
}

func TestOrderByPosition(t *testing.T) {
	s := mustParse(t, `SELECT a, b FROM t ORDER BY 2 DESC, a`).(*Select)
	if s.OrderBy[0].Position != 2 || !s.OrderBy[0].Desc {
		t.Errorf("order = %+v", s.OrderBy)
	}
	if s.OrderBy[1].Expr == nil || s.OrderBy[1].Desc {
		t.Errorf("order = %+v", s.OrderBy)
	}
}

func TestExprPrecedence(t *testing.T) {
	e, err := ParseExpr(`1 + 2 * 3`)
	if err != nil {
		t.Fatal(err)
	}
	if err := expr.Bind(e, nil); err != nil {
		t.Fatal(err)
	}
	d, err := expr.EvalRow(e, nil)
	if err != nil || d.I != 7 {
		t.Errorf("1+2*3 = %v, %v", d, err)
	}
	e, _ = ParseExpr(`(1 + 2) * 3`)
	expr.Bind(e, nil)
	d, _ = expr.EvalRow(e, nil)
	if d.I != 9 {
		t.Errorf("(1+2)*3 = %v", d)
	}
}

func TestExprBooleanPrecedence(t *testing.T) {
	// a OR b AND c parses as a OR (b AND c).
	e, err := ParseExpr(`TRUE OR FALSE AND FALSE`)
	if err != nil {
		t.Fatal(err)
	}
	expr.Bind(e, nil)
	d, _ := expr.EvalRow(e, nil)
	if !d.B {
		t.Error("OR/AND precedence wrong")
	}
}

func TestExprBetween(t *testing.T) {
	e, err := ParseExpr(`5 BETWEEN 1 AND 10`)
	if err != nil {
		t.Fatal(err)
	}
	expr.Bind(e, nil)
	d, _ := expr.EvalRow(e, nil)
	if !d.B {
		t.Error("between")
	}
	e, _ = ParseExpr(`5 NOT BETWEEN 1 AND 10`)
	expr.Bind(e, nil)
	d, _ = expr.EvalRow(e, nil)
	if d.B {
		t.Error("not between")
	}
}

func TestExprInNotIn(t *testing.T) {
	e, _ := ParseExpr(`3 IN (1, 2, 3)`)
	expr.Bind(e, nil)
	d, _ := expr.EvalRow(e, nil)
	if !d.B {
		t.Error("in")
	}
	e, _ = ParseExpr(`3 NOT IN (1, 2)`)
	expr.Bind(e, nil)
	d, _ = expr.EvalRow(e, nil)
	if !d.B {
		t.Error("not in")
	}
}

func TestExprCase(t *testing.T) {
	e, err := ParseExpr(`CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END`)
	if err != nil {
		t.Fatal(err)
	}
	expr.Bind(e, nil)
	d, _ := expr.EvalRow(e, nil)
	if d.S != "b" {
		t.Errorf("case = %v", d)
	}
}

func TestExprUnaryMinus(t *testing.T) {
	e, _ := ParseExpr(`-5`)
	if lit, ok := e.(*expr.Literal); !ok || lit.Value.I != -5 {
		t.Errorf("negative literal folding: %v", e)
	}
	e, _ = ParseExpr(`-1.5`)
	if lit, ok := e.(*expr.Literal); !ok || lit.Value.F != -1.5 {
		t.Errorf("negative float folding: %v", e)
	}
}

func TestExprStringEscape(t *testing.T) {
	e, err := ParseExpr(`'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*expr.Literal).Value.S != "it's" {
		t.Errorf("escaped string = %v", e)
	}
}

func TestExprIsNull(t *testing.T) {
	e, _ := ParseExpr(`NULL IS NULL`)
	expr.Bind(e, nil)
	d, _ := expr.EvalRow(e, nil)
	if !d.B {
		t.Error("null is null")
	}
	e, _ = ParseExpr(`1 IS NOT NULL`)
	expr.Bind(e, nil)
	d, _ = expr.EvalRow(e, nil)
	if !d.B {
		t.Error("1 is not null")
	}
}

func TestCommentsSkipped(t *testing.T) {
	s := mustParse(t, "SELECT a -- trailing comment\nFROM t")
	if s.(*Select).From.Table != "t" {
		t.Error("comment handling")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"CREATE TABLE t",
		"CREATE TABLE t (a blob)",
		"INSERT INTO t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP",
		"'unterminated",
		"SELECT a FROM t; extra",
		"UPDATE t SET",
		"DELETE t",
		"SELECT CASE END FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestTrailingSemicolonOK(t *testing.T) {
	mustParse(t, "SELECT a FROM t;")
}

func TestHashFunctionInExpr(t *testing.T) {
	e, err := ParseExpr(`HASH(a, b)`)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := e.(*expr.Func)
	if !ok || f.Name != "HASH" || len(f.Args) != 2 {
		t.Errorf("hash = %v", e)
	}
}

func TestExtractFromSyntax(t *testing.T) {
	e, err := ParseExpr(`EXTRACT(year FROM d)`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*expr.Func)
	if f.Name != "EXTRACT" || len(f.Args) != 2 {
		t.Errorf("extract = %v", e)
	}
	if f.Args[0].(*expr.Literal).Value.S != "year" {
		t.Errorf("field = %v", f.Args[0])
	}
}
