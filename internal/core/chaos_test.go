package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"eon/internal/cluster"
	"eon/internal/objstore"
	"eon/internal/resilience"
	"eon/internal/types"
)

// chaosResilience is a lenient retry/breaker configuration for chaos
// runs: enough attempts to drain a throttle burst (the burst is a range
// of store op indices, so each retry advances through it) and a breaker
// that only trips on near-total failure, so the schedule's 5% rate
// cannot wedge the cluster behind an open breaker.
func chaosResilience() *resilience.Config {
	return &resilience.Config{
		Policy: resilience.Policy{
			MaxAttempts: 8,
			BaseDelay:   200 * time.Microsecond,
			MaxDelay:    2 * time.Millisecond,
			OpTimeout:   2 * time.Second,
			Retryable:   objstore.IsRetryable,
		},
		HedgeDelay: time.Millisecond,
		Breaker: resilience.BreakerConfig{
			Window:     40,
			TripRatio:  0.9,
			MinSamples: 40,
			OpenFor:    10 * time.Millisecond,
		},
		Seed: 11,
	}
}

// chaosSchedule is the deterministic fault schedule for TestChaos: a 5%
// transient-failure window across the whole run, two throttle bursts, a
// latency spike, and an elevated rate on the data/ prefix.
func chaosSchedule(seed int64) *objstore.FaultSchedule {
	return &objstore.FaultSchedule{
		Seed:           seed,
		Windows:        []objstore.FaultWindow{{OpRange: objstore.OpRange{From: 0, To: 1 << 20}, Rate: 0.05}},
		PrefixRates:    map[string]float64{"data/": 0.03},
		ThrottleBursts: []objstore.OpRange{{From: 120, To: 132}, {From: 400, To: 412}},
		LatencySpikes:  []objstore.LatencySpike{{OpRange: objstore.OpRange{From: 200, To: 260}, Extra: 4 * time.Millisecond}},
	}
}

// TestChaos is the end-to-end fault drill of §5.3: a 3-node/6-shard Eon
// cluster runs load and a query stream over shared storage that fails,
// throttles and spikes on a deterministic schedule, loses a node
// mid-stream, recovers it, shuts down and revives. Every query must
// return the correct answer or fail cleanly; the revived cluster must
// see uncorrupted metadata; and the resilience layer must visibly have
// absorbed faults (retries > 0).
func TestChaos(t *testing.T) {
	sim := objstore.NewSim(objstore.NewMem(), objstore.SimConfig{
		GetLatency: 2 * time.Millisecond,
		Seed:       7,
		Faults:     chaosSchedule(21),
	})
	db, err := Create(Config{
		Mode:       ModeEon,
		Nodes:      []NodeSpec{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
		ShardCount: 6,
		Shared:     sim,
		Seed:       9,
		Resilience: chaosResilience(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE chaos (id INTEGER, grp INTEGER)`)
	schema := types.Schema{{Name: "id", Type: types.Int64}, {Name: "grp", Type: types.Int64}}
	const rows = 400
	var wantSum int64
	b := types.NewBatch(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7))})
		wantSum += int64(i)
	}
	if err := db.LoadRows("chaos", b); err != nil {
		t.Fatalf("load under faults: %v", err)
	}

	// Query stream with a node kill and recovery in the middle. Cold
	// reads (cleared caches) force shared-storage traffic into the fault
	// schedule.
	succeeded := 0
	for q := 0; q < 20; q++ {
		if q == 7 {
			if err := db.KillNode("n3"); err != nil {
				t.Fatal(err)
			}
		}
		if q == 14 {
			if err := db.RecoverNode("n3"); err != nil {
				t.Fatalf("recover under faults: %v", err)
			}
		}
		if q%3 == 0 {
			for _, n := range db.Nodes() {
				if n.Up() {
					n.cache.Clear(db.Context())
				}
			}
		}
		res, err := db.NewSession().Query(`SELECT COUNT(*), SUM(id) FROM chaos`)
		if err != nil {
			// Clean failure is acceptable under chaos; wrong answers are not.
			continue
		}
		r := res.Row(t, 0)
		if r[0].I != rows || r[1].I != wantSum {
			t.Fatalf("query %d: corrupted result count=%d sum=%d (want %d/%d)", q, r[0].I, r[1].I, rows, wantSum)
		}
		succeeded++
	}
	if succeeded < 15 {
		t.Fatalf("only %d/20 queries succeeded under a 5%% fault rate with retries", succeeded)
	}

	// The resilience layer must have been exercised, observably.
	st := db.ResilienceStats()
	if st.Retries == 0 {
		t.Errorf("no retries recorded under a 5%% failure schedule: %+v", st)
	}
	if st.Attempts == 0 || st.Attempts < st.Retries {
		t.Errorf("implausible counters: %+v", st)
	}
	if sim.Stats().Failed == 0 && sim.Stats().Throttled == 0 {
		t.Fatal("fault schedule injected nothing; chaos run is vacuous")
	}

	// Shutdown then revive from the same (still faulty) storage: the
	// commit-point file must parse and the revived cluster must agree on
	// the data — zero tolerated corruption.
	if err := db.Shutdown(); err != nil {
		t.Fatalf("shutdown under faults: %v", err)
	}
	var raw []byte
	err = objstore.WithRetry(context.Background(), 8, time.Millisecond, func() error {
		var e error
		raw, e = sim.Get(context.Background(), cluster.InfoFileName)
		return e
	})
	if err != nil {
		t.Fatalf("read %s: %v", cluster.InfoFileName, err)
	}
	info, err := cluster.ParseInfo(raw)
	if err != nil {
		t.Fatalf("corrupted %s: %v", cluster.InfoFileName, err)
	}
	if info.TruncationVersion == 0 {
		t.Error("truncation version never advanced")
	}
	rdb, err := Revive(Config{
		Shared:     sim,
		Seed:       9,
		Resilience: chaosResilience(),
	})
	if err != nil {
		t.Fatalf("revive under faults: %v", err)
	}
	res, err := rdb.NewSession().Query(`SELECT COUNT(*), SUM(id) FROM chaos`)
	if err != nil {
		t.Fatalf("post-revive query: %v", err)
	}
	r := res.Row(t, 0)
	if r[0].I != rows || r[1].I != wantSum {
		t.Fatalf("post-revive corruption: count=%d sum=%d (want %d/%d)", r[0].I, r[1].I, rows, wantSum)
	}
}

// A session deadline must propagate through the scan path into
// shared-storage requests: a query against a slow store cancels
// promptly with context.DeadlineExceeded instead of waiting out the
// store, and leaks no goroutines.
func TestQueryDeadlinePropagates(t *testing.T) {
	sim := objstore.NewSim(objstore.NewMem(), objstore.SimConfig{
		GetLatency: 200 * time.Millisecond,
	})
	db, err := Create(Config{
		Mode:       ModeEon,
		Nodes:      []NodeSpec{{Name: "n1"}, {Name: "n2"}},
		ShardCount: 2,
		Shared:     sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE slow (id INTEGER)`)
	rows := make([]types.Row, 50)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))}
	}
	if err := db.LoadRows("slow", types.BatchFromRows(types.Schema{{Name: "id", Type: types.Int64}}, rows)); err != nil {
		t.Fatal(err)
	}
	for _, n := range db.Nodes() {
		n.cache.Clear(db.Context())
	}
	before := runtime.NumGoroutine()

	qs := db.NewSession()
	qs.BypassCache = true
	qs.Timeout = 30 * time.Millisecond
	start := time.Now()
	_, err = qs.Query(`SELECT COUNT(*) FROM slow`)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against a 200ms/Get store finished within a 30ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline not prompt: query took %v", elapsed)
	}

	// The canceled store requests and any hedges must not leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+3 {
		t.Errorf("goroutine leak: %d before, %d after", before, g)
	}

	// Without a deadline the same query succeeds.
	ok := db.NewSession()
	ok.BypassCache = true
	res := mustQuery(t, ok, `SELECT COUNT(*) FROM slow`)
	if res.Row(t, 0)[0].I != 50 {
		t.Fatalf("count = %v", res.Rows())
	}
}

// An open cache breaker degrades reads and loads to shared storage
// instead of failing them (§5.3 graceful degradation).
func TestCacheBreakerDegradesToSharedStorage(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 60)

	// Trip every node's cache breaker by force-feeding failures.
	for _, n := range db.Nodes() {
		brk := db.cacheBreakers.For(n.name)
		for i := 0; i < 64; i++ {
			brk.Record(true)
		}
		if brk.State() != resilience.Open {
			t.Fatalf("breaker for %s not open", n.name)
		}
	}

	// Loads still succeed: cache admission is skipped, shared storage is
	// the durability point.
	b := types.NewBatch(types.Schema{
		{Name: "sale_id", Type: types.Int64},
		{Name: "customer", Type: types.Varchar},
		{Name: "price", Type: types.Float64},
		{Name: "region", Type: types.Varchar},
	}, 10)
	for i := 0; i < 10; i++ {
		b.AppendRow(types.Row{
			types.NewInt(int64(1000 + i)), types.NewString("x"),
			types.NewFloat(1), types.NewString("east"),
		})
	}
	if err := db.LoadRows("sales", b); err != nil {
		t.Fatalf("load with open cache breakers: %v", err)
	}

	// Reads fall through to shared storage.
	for _, n := range db.Nodes() {
		n.cache.Clear(db.Context())
	}
	res := mustQuery(t, db.NewSession(), `SELECT COUNT(*) FROM sales`)
	if res.Row(t, 0)[0].I != 70 {
		t.Fatalf("count = %v", res.Rows())
	}
	st := db.ResilienceStats()
	if st.Fallbacks == 0 {
		t.Errorf("no degradation fallbacks recorded: %+v", st)
	}
}
