package core

import (
	"fmt"
	"testing"

	"eon/internal/objstore"
)

// Many commits force catalog checkpoints (and local log pruning); the
// sync must still give revive a contiguous checkpoint+log history.
func TestReviveAfterManyCheckpoints(t *testing.T) {
	shared := objstore.NewMem()
	db, err := Create(Config{
		Mode:                ModeEon,
		Nodes:               []NodeSpec{{Name: "node1"}, {Name: "node2"}},
		Shared:              shared,
		ShardCount:          2,
		CheckpointThreshold: 512, // tiny: checkpoint every few commits
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER, v VARCHAR)`)
	for i := 0; i < 40; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row%d')`, i, i))
		if i%10 == 9 {
			if err := db.SyncMetadata(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Shutdown(); err != nil {
		t.Fatal(err)
	}

	db2, err := Revive(Config{Shared: shared})
	if err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db2.NewSession(), `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 40 {
		t.Errorf("revived count = %v", res.Rows())
	}
	// And revive again after more commits (multi-incarnation chain).
	mustExec(t, db2.NewSession(), `INSERT INTO t VALUES (100, 'x')`)
	if err := db2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	db3, err := Revive(Config{Shared: shared})
	if err != nil {
		t.Fatal(err)
	}
	res = mustQuery(t, db3.NewSession(), `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 41 {
		t.Errorf("second revive count = %v", res.Rows())
	}
}

// A full cluster lifecycle against the on-disk object store backend.
func TestDiskBackedSharedStorage(t *testing.T) {
	disk, err := objstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Create(Config{
		Mode:       ModeEon,
		Nodes:      []NodeSpec{{Name: "n1"}, {Name: "n2"}},
		Shared:     disk,
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`)
	res := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 3 {
		t.Fatalf("count = %v", res.Rows())
	}
	if err := db.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Revive from the same directory.
	db2, err := Revive(Config{Shared: disk})
	if err != nil {
		t.Fatal(err)
	}
	res = mustQuery(t, db2.NewSession(), `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 3 {
		t.Errorf("disk revive count = %v", res.Rows())
	}
}

// The GC deferred-delete queue does not survive revive; the leaked-file
// scrub reclaims anything left behind.
func TestScrubAfterRevive(t *testing.T) {
	shared := objstore.NewMem()
	db, err := Create(Config{
		Mode:       ModeEon,
		Nodes:      []NodeSpec{{Name: "node1"}, {Name: "node2"}},
		Shared:     shared,
		ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t (id INTEGER)`)
	for i := 0; i < 8; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3), (4), (5)`)
	}
	// Mergeout queues the replaced files, but the cluster dies before GC
	// runs.
	if _, err := db.RunMergeout(); err != nil {
		t.Fatal(err)
	}
	if err := db.Shutdown(); err != nil {
		t.Fatal(err)
	}

	db2, err := Revive(Config{Shared: shared})
	if err != nil {
		t.Fatal(err)
	}
	removed, err := db2.ScrubLeakedFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Error("scrub should reclaim the pre-revive merge leftovers")
	}
	res := mustQuery(t, db2.NewSession(), `SELECT COUNT(*) FROM t`)
	if res.Row(t, 0)[0].I != 40 {
		t.Errorf("count after scrub = %v", res.Rows())
	}
}
