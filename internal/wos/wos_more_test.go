package wos

import (
	"errors"
	"testing"

	"eon/internal/types"
)

func TestRemoveWhere(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1, 2, 3, 4, 5))
	removed, err := s.RemoveWhere(1, func(r types.Row) (bool, error) {
		return r[0].I%2 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed.NumRows() != 2 {
		t.Fatalf("removed = %v", removed.Rows())
	}
	if s.RowCount(1) != 3 {
		t.Errorf("remaining = %d", s.RowCount(1))
	}
	// Removing everything empties the projection.
	if _, err := s.RemoveWhere(1, func(types.Row) (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	if s.RowCount(1) != 0 {
		t.Error("buffer should be empty")
	}
	// Removing from an empty buffer is a no-op.
	removed, err = s.RemoveWhere(1, func(types.Row) (bool, error) { return true, nil })
	if err != nil || removed != nil {
		t.Errorf("empty remove = %v, %v", removed, err)
	}
}

func TestRemoveWhereNoMatch(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1, 2))
	removed, err := s.RemoveWhere(1, func(types.Row) (bool, error) { return false, nil })
	if err != nil || removed != nil {
		t.Errorf("no-match remove = %v, %v", removed, err)
	}
	if s.RowCount(1) != 2 {
		t.Error("rows lost")
	}
}

func TestRemoveWherePredicateError(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1))
	boom := errors.New("boom")
	if _, err := s.RemoveWhere(1, func(types.Row) (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestTransform(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1, 2, 3))
	err := s.Transform(1, func(b *types.Batch) (*types.Batch, error) {
		for i := range b.Cols[0].Ints {
			b.Cols[0].Ints[i] *= 10
		}
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Rows(1)
	if got.Cols[0].Ints[0] != 10 || got.Cols[0].Ints[2] != 30 {
		t.Errorf("transformed = %v", got.Cols[0].Ints)
	}
	// Nil return empties the buffer.
	if err := s.Transform(1, func(*types.Batch) (*types.Batch, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if s.RowCount(1) != 0 {
		t.Error("nil transform should empty")
	}
	// Transform on missing projection is a no-op.
	if err := s.Transform(99, func(*types.Batch) (*types.Batch, error) { return nil, nil }); err != nil {
		t.Error(err)
	}
}

func TestTransformError(t *testing.T) {
	s := New()
	s.Insert(1, schema, batchOf(1))
	boom := errors.New("boom")
	if err := s.Transform(1, func(*types.Batch) (*types.Batch, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if s.RowCount(1) != 1 {
		t.Error("failed transform must not lose rows")
	}
}
