package core

import (
	"testing"
)

// setupFlattened creates a dimension table and a fact table with a
// SET USING column denormalized from it.
func setupFlattened(t *testing.T, db *DB) {
	t.Helper()
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE dims (d_id INTEGER, label VARCHAR)`)
	mustExec(t, s, `CREATE PROJECTION dims_p AS SELECT * FROM dims ORDER BY d_id UNSEGMENTED ALL NODES`)
	mustExec(t, s, `INSERT INTO dims VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	mustExec(t, s, `CREATE TABLE facts (
		id INTEGER, dim_id INTEGER,
		dim_label VARCHAR SET USING dims.label ON dim_id = dims.d_id
	)`)
	mustExec(t, s, `CREATE PROJECTION facts_p AS SELECT * FROM facts ORDER BY id SEGMENTED BY HASH(id) ALL NODES`)
}

func TestFlattenedColumnFilledAtLoad(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 2, 2)
			setupFlattened(t, db)
			s := db.NewSession()
			// Loaded values for the flattened column are ignored; the
			// dimension lookup wins. An unmatched key yields NULL.
			mustExec(t, s, `INSERT INTO facts VALUES
				(10, 1, 'ignored'), (11, 2, NULL), (12, 99, 'also-ignored')`)
			res := mustQuery(t, s, `SELECT id, dim_label FROM facts ORDER BY id`)
			rows := res.Rows()
			if rows[0][1].S != "one" || rows[1][1].S != "two" {
				t.Errorf("flattened values = %v", rows)
			}
			if !rows[2][1].Null {
				t.Errorf("unmatched key should be NULL: %v", rows[2])
			}
			// Join-free denormalized query.
			cnt := mustQuery(t, s, `SELECT COUNT(*) FROM facts WHERE dim_label = 'one'`)
			if cnt.Row(t, 0)[0].I != 1 {
				t.Errorf("count = %v", cnt.Rows())
			}
		})
	}
}

func TestRefreshColumnsAfterDimensionChange(t *testing.T) {
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			db := newTestDB(t, mode, 2, 2)
			setupFlattened(t, db)
			s := db.NewSession()
			mustExec(t, s, `INSERT INTO facts VALUES (10, 1, NULL), (11, 2, NULL), (12, 4, NULL)`)

			// The dimension grows: key 4 appears.
			mustExec(t, s, `INSERT INTO dims VALUES (4, 'four')`)
			// Until refresh, the fact still shows the stale NULL.
			res := mustQuery(t, s, `SELECT dim_label FROM facts WHERE id = 12`)
			if !res.Row(t, 0)[0].Null {
				t.Fatalf("pre-refresh value = %v", res.Rows())
			}

			n, err := db.RefreshColumns("facts")
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("refresh rewrote nothing")
			}
			res = mustQuery(t, s, `SELECT dim_label FROM facts WHERE id = 12`)
			if res.Row(t, 0)[0].S != "four" {
				t.Errorf("post-refresh value = %v", res.Rows())
			}
			// Untouched rows keep their values.
			res = mustQuery(t, s, `SELECT dim_label FROM facts WHERE id = 10`)
			if res.Row(t, 0)[0].S != "one" {
				t.Errorf("row 10 = %v", res.Rows())
			}
		})
	}
}

func TestFlattenedValidation(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE d (k INTEGER, v VARCHAR)`)
	bad := []string{
		`CREATE TABLE f1 (id INTEGER, x VARCHAR SET USING nodim.v ON id = nodim.k)`, // unknown dim
		`CREATE TABLE f2 (id INTEGER, x VARCHAR SET USING d.nosuch ON id = d.k)`,    // unknown value col
		`CREATE TABLE f3 (id INTEGER, x VARCHAR SET USING d.v ON nosuch = d.k)`,     // unknown fact key
		`CREATE TABLE f4 (id INTEGER, x INTEGER SET USING d.v ON id = d.k)`,         // value type mismatch
		`CREATE TABLE f5 (id VARCHAR, x VARCHAR SET USING d.v ON id = d.k)`,         // key type mismatch
	}
	for _, q := range bad {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("%q should be rejected", q)
		}
	}
	mustExec(t, s, `CREATE TABLE ok (id INTEGER, x VARCHAR SET USING d.v ON id = d.k)`)
}

// A live aggregate grouped by a flattened column must be rebuilt when
// the flattened values refresh, or its groups would carry stale keys.
func TestRefreshRebuildsLiveAggregate(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupFlattened(t, db)
	s := db.NewSession()
	mustExec(t, s, `CREATE PROJECTION facts_agg AS SELECT dim_label, COUNT(*) AS n FROM facts GROUP BY dim_label`)
	mustExec(t, s, `INSERT INTO facts VALUES (1, 1, NULL), (2, 1, NULL), (3, 2, NULL)`)

	res := mustQuery(t, s, `SELECT dim_label, COUNT(*) AS n FROM facts GROUP BY dim_label ORDER BY dim_label`)
	if res.NumRows() != 2 || res.Row(t, 0)[0].S != "one" || res.Row(t, 0)[1].I != 2 {
		t.Fatalf("pre-refresh groups = %v", res.Rows())
	}

	// Rename dimension value 'one' -> 'uno' and refresh.
	mustExec(t, s, `UPDATE dims SET label = 'uno' WHERE d_id = 1`)
	if _, err := db.RefreshColumns("facts"); err != nil {
		t.Fatal(err)
	}
	res = mustQuery(t, s, `SELECT dim_label, COUNT(*) AS n FROM facts GROUP BY dim_label ORDER BY dim_label`)
	byLabel := map[string]int64{}
	for _, r := range res.Rows() {
		byLabel[r[0].S] = r[1].I
	}
	if byLabel["uno"] != 2 || byLabel["two"] != 1 {
		t.Errorf("post-refresh groups = %v (LAP stale?)", res.Rows())
	}
	if _, stale := byLabel["one"]; stale {
		t.Errorf("stale group 'one' survived refresh: %v", res.Rows())
	}
}

func TestRefreshColumnsNoFlattened(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupSales(t, db, 10)
	n, err := db.RefreshColumns("sales")
	if err != nil || n != 0 {
		t.Errorf("refresh on plain table = %d, %v", n, err)
	}
}

func TestFlattenedRefreshKeepsRowCounts(t *testing.T) {
	db := newTestDB(t, ModeEon, 2, 2)
	setupFlattened(t, db)
	s := db.NewSession()
	for i := 0; i < 5; i++ {
		mustExec(t, s, `INSERT INTO facts VALUES (1, 1, NULL), (2, 2, NULL), (3, 3, NULL)`)
	}
	before := mustQuery(t, s, `SELECT COUNT(*) FROM facts`).Row(t, 0)[0].I
	if _, err := db.RefreshColumns("facts"); err != nil {
		t.Fatal(err)
	}
	after := mustQuery(t, s, `SELECT COUNT(*) FROM facts`).Row(t, 0)[0].I
	if before != after {
		t.Errorf("refresh changed row count: %d -> %d", before, after)
	}
	// Old container files eventually free.
	if err := db.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	if n, err := db.RunGC(); err != nil || n == 0 {
		t.Errorf("gc after refresh = %d, %v", n, err)
	}
}
