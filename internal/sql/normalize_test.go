package sql

import "testing"

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"select a from t", "SELECT A FROM T"},
		{"SELECT  a\n\tFROM t ;", "SELECT A FROM T"},
		{"select a from t -- comment\nwhere b = 1", "SELECT A FROM T WHERE B = 1"},
		{"select 'MiXeD case''s' from t", "SELECT 'MiXeD case''s' FROM T"},
		{"  select a  ", "SELECT A"},
		{"select a from t;;", "SELECT A FROM T"},
		{"select a where x='a--b'", "SELECT A WHERE X='a--b'"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Equivalent spellings must share a key; different literals must not.
	if Normalize("select a from t where b=1") != Normalize("SELECT  a FROM t WHERE b=1 ;") {
		t.Error("equivalent queries normalize differently")
	}
	if Normalize("select 'x' from t") == Normalize("select 'X' from t") {
		t.Error("string literals must be case-preserved")
	}
}

func TestParseParams(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE b = ? AND c < ?")
	if err != nil {
		t.Fatal(err)
	}
	if n := NumParams(stmt); n != 2 {
		t.Fatalf("NumParams = %d, want 2", n)
	}
	stmt, err = Parse("SELECT a FROM t WHERE b = $2 AND c = $1")
	if err != nil {
		t.Fatal(err)
	}
	if n := NumParams(stmt); n != 2 {
		t.Fatalf("NumParams = %d, want 2", n)
	}
	if _, err := Parse("SELECT a FROM t WHERE b = $0"); err == nil {
		t.Fatal("expected error for $0")
	}
	stmt, err = Parse("SELECT a FROM t WHERE b = 1")
	if err != nil {
		t.Fatal(err)
	}
	if n := NumParams(stmt); n != 0 {
		t.Fatalf("NumParams = %d, want 0", n)
	}
}
