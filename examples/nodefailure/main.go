// Node failure: shards are never down (paper §6.1). Kill a node and
// queries keep answering from the remaining subscribers; recover it and
// re-subscription plus peer cache warming bring it back without a
// table-lock repair.
package main

import (
	"fmt"
	"log"

	"eon"
	"eon/internal/workload"
)

func main() {
	db, err := eon.Create(eon.Config{
		Mode: eon.ModeEon,
		Nodes: []eon.NodeSpec{
			{Name: "node1"}, {Name: "node2"}, {Name: "node3"}, {Name: "node4"},
		},
		ShardCount:        3,
		ReplicationFactor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	w := workload.DefaultTPCH(0.05)
	s := db.NewSession()
	err = w.Setup(func(sql string) error {
		_, err := s.Execute(sql)
		return err
	}, db.LoadRows)
	if err != nil {
		log.Fatal(err)
	}

	count := func(label string) {
		res, err := s.Query(`SELECT COUNT(*) FROM lineitem`)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s lineitem count = %s\n", label, res.Rows()[0][0])
	}

	count("healthy cluster:")

	fmt.Println("\n-- killing node2 --")
	if err := db.KillNode("node2"); err != nil {
		log.Fatal(err)
	}
	// No repair needed: another subscriber of each shard serves
	// immediately, and its cache was warmed at load time by the peer
	// shipping of Figure 8.
	count("node2 down:")

	fmt.Println("\n-- recovering node2 --")
	if err := db.RecoverNode("node2"); err != nil {
		log.Fatal(err)
	}
	inner := db.Internal()
	n2, _ := inner.Node("node2")
	st := n2.Cache().Stats()
	fmt.Printf("node2 rejoined: catalog v%d, cache %d files / %d bytes (peer-warmed)\n",
		n2.Catalog().Version(), st.Files, st.BytesCached)
	count("after recovery:")

	// Contrast: losing too many nodes violates the cluster invariants
	// (§3.4) and the cluster shuts itself down rather than risk wrong
	// answers.
	fmt.Println("\n-- killing node1 and node3 --")
	db.KillNode("node1")
	db.KillNode("node3")
	if db.IsShutdown() {
		fmt.Println("cluster shut down automatically: no quorum / shard coverage")
	}
}
