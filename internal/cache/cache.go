// Package cache implements the per-node disk cache of shared-storage
// files (paper §5.2). The cache holds entire immutable data files, uses
// least-recently-used eviction, is write-through on data load (newly
// written files are likely to be queried), supports shaping policies
// ("don't use the cache for this query", "never cache table T", pinned
// partitions), and can warm itself from a peer's most-recently-used list
// when a node subscribes to a shard.
//
// Because storage files are never modified, the cache handles only add
// and drop — there is no invalidation path.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"eon/internal/udfs"
)

// Policy directs how the cache treats a file.
type Policy uint8

// Policies.
const (
	// PolicyDefault caches the file under LRU.
	PolicyDefault Policy = iota
	// PolicyBypass serves the file without admitting it (large batch
	// historical queries must not evict dashboard working sets).
	PolicyBypass
	// PolicyPin caches the file and exempts it from eviction.
	PolicyPin
)

// Fetcher reads a file from shared storage on cache miss.
type Fetcher func(ctx context.Context, path string) ([]byte, error)

// Stats counts cache traffic.
type Stats struct {
	Hits, Misses, Evictions int64
	BytesCached             int64
	Files                   int
}

type entry struct {
	path   string
	size   int64
	pinned bool
	elem   *list.Element
}

// Cache is one node's file cache. The file bytes live on the node's local
// filesystem under dir; the Cache keeps the index and LRU order. Safe for
// concurrent use.
type Cache struct {
	fs  udfs.FileSystem
	dir string

	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[string]*entry
	lru      *list.List // front = most recently used
	policy   func(path string) Policy

	hits, misses, evictions int64
}

// New returns a cache of the given byte capacity backed by dir on fs.
func New(fs udfs.FileSystem, dir string, capacity int64) *Cache {
	return &Cache{
		fs:       fs,
		dir:      dir,
		capacity: capacity,
		entries:  map[string]*entry{},
		lru:      list.New(),
	}
}

// SetPolicy installs the shaping policy; nil restores the default.
func (c *Cache) SetPolicy(p func(path string) Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
}

func (c *Cache) policyFor(path string) Policy {
	if c.policy == nil {
		return PolicyDefault
	}
	return c.policy(path)
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// local returns the on-disk path for a cached file.
func (c *Cache) local(path string) string { return c.dir + "/" + path }

// Get returns the file contents, reading through the cache. bypass forces
// PolicyBypass for this call regardless of the shaping policy ("don't use
// the cache for this query").
func (c *Cache) Get(ctx context.Context, path string, fetch Fetcher, bypass bool) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[path]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		data, err := c.fs.ReadFile(ctx, c.local(path))
		if err == nil {
			return data, nil
		}
		// The entry raced with a concurrent eviction; fall through to a
		// shared-storage fetch.
	} else {
		c.misses++
		c.mu.Unlock()
	}

	data, err := fetch(ctx, path)
	if err != nil {
		return nil, err
	}
	if !bypass && c.policyFor(path) != PolicyBypass {
		_ = c.admit(ctx, path, data) // admission failure must not fail the read
	}
	return data, nil
}

// Put write-through inserts a newly written file (data load and mergeout
// put their outputs in the cache before uploading, §5.2).
func (c *Cache) Put(ctx context.Context, path string, data []byte) error {
	if c.policyFor(path) == PolicyBypass {
		return nil
	}
	return c.admit(ctx, path, data)
}

// admit stores the file and evicts LRU entries to fit. Files larger than
// the whole cache are not admitted.
func (c *Cache) admit(ctx context.Context, path string, data []byte) error {
	size := int64(len(data))
	if size > c.capacity {
		return fmt.Errorf("cache: file %s (%d bytes) exceeds cache capacity %d", path, size, c.capacity)
	}
	c.mu.Lock()
	if _, ok := c.entries[path]; ok {
		c.mu.Unlock()
		return nil // already cached; files are immutable
	}
	// Evict from the LRU tail, skipping pinned entries.
	var evict []string
	need := c.used + size - c.capacity
	for el := c.lru.Back(); el != nil && need > 0; el = el.Prev() {
		e := el.Value.(*entry)
		if e.pinned {
			continue
		}
		evict = append(evict, e.path)
		need -= e.size
	}
	if need > 0 {
		c.mu.Unlock()
		return fmt.Errorf("cache: cannot fit %s: %d bytes pinned", path, c.used)
	}
	for _, p := range evict {
		e := c.entries[p]
		c.lru.Remove(e.elem)
		delete(c.entries, p)
		c.used -= e.size
		c.evictions++
	}
	e := &entry{path: path, size: size, pinned: c.policyFor(path) == PolicyPin}
	e.elem = c.lru.PushFront(e)
	c.entries[path] = e
	c.used += size
	c.mu.Unlock()

	for _, p := range evict {
		_ = c.fs.Remove(ctx, c.local(p))
	}
	return c.fs.WriteFile(ctx, c.local(path), data)
}

// Contains reports whether the file is cached (without touching LRU
// order).
func (c *Cache) Contains(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[path]
	return ok
}

// Drop removes a file from the cache (on storage file delete).
func (c *Cache) Drop(ctx context.Context, path string) {
	c.mu.Lock()
	e, ok := c.entries[path]
	if ok {
		c.lru.Remove(e.elem)
		delete(c.entries, path)
		c.used -= e.size
	}
	c.mu.Unlock()
	if ok {
		_ = c.fs.Remove(ctx, c.local(path))
	}
}

// Clear empties the cache entirely.
func (c *Cache) Clear(ctx context.Context) {
	c.mu.Lock()
	paths := make([]string, 0, len(c.entries))
	for p := range c.entries {
		paths = append(paths, p)
	}
	c.entries = map[string]*entry{}
	c.lru.Init()
	c.used = 0
	c.mu.Unlock()
	for _, p := range paths {
		_ = c.fs.Remove(ctx, c.local(p))
	}
}

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		BytesCached: c.used, Files: len(c.entries),
	}
}

// MostRecentlyUsed returns cached file paths in MRU order whose summed
// size fits the byte budget — the list a warming peer requests (§5.2:
// "the subscriber supplies the peer with a capacity target and the peer
// supplies a list of most-recently-used files that fit within the
// budget").
func (c *Cache) MostRecentlyUsed(budget int64) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.size > budget {
			continue
		}
		out = append(out, e.path)
		budget -= e.size
	}
	return out
}

// ReadCached returns the bytes of a cached file without counting a hit or
// miss; used to serve peer warming transfers.
func (c *Cache) ReadCached(ctx context.Context, path string) ([]byte, bool) {
	c.mu.Lock()
	_, ok := c.entries[path]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := c.fs.ReadFile(ctx, c.local(path))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Warm fetches each listed file into the cache in order (most recently
// used first), stopping silently on fetch errors for individual files.
// It returns the number of files admitted.
func (c *Cache) Warm(ctx context.Context, paths []string, fetch Fetcher) int {
	warmed := 0
	// Admit in reverse so the peer's MRU file ends up most recent here.
	for i := len(paths) - 1; i >= 0; i-- {
		p := paths[i]
		if c.Contains(p) {
			warmed++
			continue
		}
		data, err := fetch(ctx, p)
		if err != nil {
			continue
		}
		if err := c.admit(ctx, p, data); err == nil {
			warmed++
		}
	}
	return warmed
}
