package planner

import (
	"testing"

	"eon/internal/catalog"
	"eon/internal/sql"
	"eon/internal/types"
)

// lapCatalog builds a table with a base projection and a live aggregate
// projection grouped by region.
func lapCatalog(t *testing.T) *catalog.Snapshot {
	t.Helper()
	c := catalog.New()
	txn := c.Begin()
	tbl := &catalog.Table{OID: c.NewOID(), Name: "clicks", Columns: types.Schema{
		{Name: "region", Type: types.Varchar},
		{Name: "hits", Type: types.Int64},
	}}
	txn.Put(tbl)
	txn.Put(&catalog.Projection{
		OID: c.NewOID(), TableOID: tbl.OID, Name: "clicks_super",
		Columns: []string{"region", "hits"}, SortKey: []string{"region"},
		SegmentCols: []string{"region"},
	})
	txn.Put(&catalog.Projection{
		OID: c.NewOID(), TableOID: tbl.OID, Name: "clicks_agg",
		Columns: []string{"region"}, SortKey: []string{"region"},
		SegmentCols: []string{"region"},
		LiveAggs: []catalog.LiveAgg{
			{Op: "countstar", Name: "n"},
			{Op: "sum", Col: "hits", Name: "total"},
		},
		LiveSchema: types.Schema{
			{Name: "region", Type: types.Varchar},
			{Name: "n", Type: types.Int64},
			{Name: "total", Type: types.Int64},
		},
	})
	if _, err := c.Commit(txn); err != nil {
		t.Fatal(err)
	}
	return c.Snapshot()
}

func planLAP(t *testing.T, snap *catalog.Snapshot, q string) *Plan {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanSelect(stmt.(*sql.Select), Options{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestLAPRewriteMatchingQuery(t *testing.T) {
	snap := lapCatalog(t)
	plan := planLAP(t, snap, `SELECT region, COUNT(*) AS n, SUM(hits) AS total FROM clicks GROUP BY region ORDER BY region`)
	scan := findScan(plan.Root)
	if scan == nil || scan.Proj.Name != "clicks_agg" {
		t.Fatalf("scan projection = %v, want clicks_agg", scan)
	}
	agg := findAgg(plan.Root)
	if agg == nil {
		t.Fatal("no aggregate")
	}
	if agg.Mode != AggLocalFinal {
		t.Errorf("mode = %v (segmented by group key should be LOCAL)", agg.Mode)
	}
	if len(plan.OutputNames) != 3 || plan.OutputNames[1] != "n" {
		t.Errorf("outputs = %v", plan.OutputNames)
	}
}

func TestLAPRewriteWithGroupColumnPredicate(t *testing.T) {
	snap := lapCatalog(t)
	plan := planLAP(t, snap, `SELECT region, SUM(hits) AS total FROM clicks WHERE region = 'east' GROUP BY region`)
	scan := findScan(plan.Root)
	if scan.Proj.Name != "clicks_agg" {
		t.Errorf("projection = %s", scan.Proj.Name)
	}
	if scan.Pred == nil {
		t.Error("group-column predicate should push to the LAP scan")
	}
}

func TestLAPNoRewriteCases(t *testing.T) {
	snap := lapCatalog(t)
	cases := []string{
		`SELECT region, AVG(hits) AS m FROM clicks GROUP BY region`,               // unmaintained agg
		`SELECT region, COUNT(*) AS n FROM clicks WHERE hits > 1 GROUP BY region`, // non-group predicate
		`SELECT hits, COUNT(*) AS n FROM clicks GROUP BY hits`,                    // different grouping
		`SELECT region, hits FROM clicks`,                                         // no aggregation at all
	}
	for _, q := range cases {
		plan := planLAP(t, snap, q)
		scan := findScan(plan.Root)
		if scan.Proj.Name == "clicks_agg" {
			t.Errorf("%q should not use the live aggregate projection", q)
		}
	}
}

func TestLAPRewriteMinMax(t *testing.T) {
	c := catalog.New()
	txn := c.Begin()
	tbl := &catalog.Table{OID: c.NewOID(), Name: "m", Columns: types.Schema{
		{Name: "k", Type: types.Int64},
		{Name: "v", Type: types.Float64},
	}}
	txn.Put(tbl)
	txn.Put(&catalog.Projection{
		OID: c.NewOID(), TableOID: tbl.OID, Name: "m_super",
		Columns: []string{"k", "v"}, SortKey: []string{"k"}, SegmentCols: []string{"k"},
	})
	txn.Put(&catalog.Projection{
		OID: c.NewOID(), TableOID: tbl.OID, Name: "m_agg",
		Columns: []string{"k"}, SortKey: []string{"k"}, SegmentCols: []string{"k"},
		LiveAggs: []catalog.LiveAgg{
			{Op: "min", Col: "v", Name: "lo"},
			{Op: "max", Col: "v", Name: "hi"},
		},
		LiveSchema: types.Schema{
			{Name: "k", Type: types.Int64},
			{Name: "lo", Type: types.Float64},
			{Name: "hi", Type: types.Float64},
		},
	})
	if _, err := c.Commit(txn); err != nil {
		t.Fatal(err)
	}
	plan := planLAP(t, c.Snapshot(), `SELECT k, MIN(v) AS lo, MAX(v) AS hi FROM m GROUP BY k`)
	if findScan(plan.Root).Proj.Name != "m_agg" {
		t.Error("min/max query should use the live aggregate")
	}
}
