// Package reconcile closes the loop from a declarative cluster shape to
// the observed cluster state (paper §4.3, §6.1–§6.4): a reconciler owns
// a ClusterSpec (subclusters and their sizes, warm-spare pool size,
// replication factor, autoscale policy) and, each round, diffs it
// against the live catalog and node state, plans a bounded prioritized
// action list — promote a warm spare over a dead member, revive, add,
// remove, rebalance — and executes it with per-action retry and
// cross-round backoff. The rounds are level-triggered and idempotent:
// every round re-derives the plan from observed state, so a crashed or
// abandoned reconcile step is simply re-planned by the next round (the
// Kubernetes-operator pattern the production Vertica operator uses).
package reconcile

import (
	"context"
	"sort"
	"sync"
	"time"

	"eon/internal/core"
	"eon/internal/obs"
	"eon/internal/resilience"
)

// SubclusterSpec declares one subcluster and its desired size.
type SubclusterSpec struct {
	// Name is the subcluster name ("" is the default subcluster).
	Name string
	// Size is the desired number of serving members.
	Size int
}

// AutoscalePolicy scales one subcluster between Min and Max members on
// load signals (§4.3: "add nodes when demand is high and remove them
// when demand is low").
type AutoscalePolicy struct {
	// Subcluster is the subcluster the policy drives.
	Subcluster string
	// Min and Max bound the autoscaled size.
	Min, Max int
	// QueueHigh scales up when the slot-queue depth reaches it (>0).
	QueueHigh int
	// P95High scales up when the windowed query p95 reaches it (>0).
	P95High time.Duration
	// QueueLow is the scale-down queue-depth ceiling (a round counts as
	// idle only when depth <= QueueLow).
	QueueLow int
	// SettleRounds is how many consecutive idle rounds precede a
	// scale-down (default 3) — hysteresis against flapping.
	SettleRounds int
}

// ClusterSpec is the desired cluster shape.
type ClusterSpec struct {
	// Subclusters lists every desired subcluster; members of undeclared
	// subclusters are drained and removed.
	Subclusters []SubclusterSpec
	// Spares is the desired warm-spare pool size.
	Spares int
	// ReplicationFactor overrides the database's configured minimum
	// subscribers per segment shard (0 keeps the database default).
	ReplicationFactor int
	// Autoscale, when set, lets load signals adjust one subcluster's
	// size within bounds.
	Autoscale *AutoscalePolicy
}

// StatusCode classifies a reconcile round's outcome.
type StatusCode uint8

// The three convergence states.
const (
	// Converged: observed state matches the spec; the round planned
	// nothing.
	Converged StatusCode = iota
	// Progressing: actions are planned or executing and none is stuck.
	Progressing
	// Blocked: an action keeps failing (or the cluster is shut down);
	// operator attention is needed.
	Blocked
)

// String names the code.
func (c StatusCode) String() string {
	switch c {
	case Converged:
		return "Converged"
	case Progressing:
		return "Progressing"
	case Blocked:
		return "Blocked"
	}
	return "?"
}

// Status is the reconciler's externally visible state after a round.
type Status struct {
	Code StatusCode
	// Round is the tick number that produced this status.
	Round int64
	// Reasons explains Progressing/Blocked in operator terms.
	Reasons []string
	// Pending counts the actions still outstanding after the round.
	Pending int
	// QueueDepth and P95 are the load signals read this round.
	QueueDepth int
	P95        time.Duration
	// Actions lists what the round executed.
	Actions []ActionResult
}

// Config tunes a Reconciler.
type Config struct {
	// Spec is the initial desired state (replaceable via SetSpec).
	Spec ClusterSpec
	// MaxActionsPerRound bounds how much one round changes (default 4):
	// convergence proceeds in small, observable steps.
	MaxActionsPerRound int
	// Retry is the in-round per-action retry policy. The zero value
	// retries 3 attempts with millisecond backoff.
	Retry resilience.Policy
	// FailThreshold is how many consecutive failed rounds an action
	// survives before the reconciler reports Blocked (default 5).
	FailThreshold int
	// BackoffBase/BackoffMax shape the cross-round backoff of a failing
	// action (defaults 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Interval is the Run loop cadence (default 100ms).
	Interval time.Duration
}

// failState tracks a persistently failing action across rounds.
type failState struct {
	count int
	next  time.Time
	last  string
}

// Reconciler drives one database toward its ClusterSpec.
type Reconciler struct {
	db  *core.DB
	cfg Config

	mu   sync.Mutex
	spec ClusterSpec
	// statusMu guards status and profile separately from r.mu so readers
	// (Status, LastProfile, the v_monitor.reconcile_status provider)
	// never wait behind an in-flight round holding r.mu.
	statusMu sync.Mutex
	status   Status
	round    int64
	// asSize holds the autoscaled desired size per subcluster.
	asSize   map[string]int
	idle     int
	prevHist []int64
	fails    map[string]*failState
	profile  *obs.Profile

	// reconcile.* metrics, registered into the database registry.
	mRounds, mActions, mErrors        *obs.Counter
	mPromote, mRevive, mAdd, mRemove  *obs.Counter
	mRebalance, mSpareAdd, mSpareWarm *obs.Counter
	mScaleUp, mScaleDown              *obs.Counter
	mConverged, mPending              *obs.Gauge
	mRoundNS                          *obs.Histogram
}

// New builds a reconciler for db. It performs no action until Tick or
// Run is called.
func New(db *core.DB, cfg Config) *Reconciler {
	if cfg.MaxActionsPerRound <= 0 {
		cfg.MaxActionsPerRound = 4
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Retry.MaxAttempts == 0 && cfg.Retry.Retryable == nil {
		cfg.Retry = resilience.Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			Retryable:   func(error) bool { return true },
		}
	}
	reg := db.Registry()
	r := &Reconciler{
		db:     db,
		cfg:    cfg,
		spec:   cfg.Spec,
		asSize: map[string]int{},
		fails:  map[string]*failState{},

		mRounds:    reg.Counter("reconcile.rounds"),
		mActions:   reg.Counter("reconcile.actions"),
		mErrors:    reg.Counter("reconcile.action_errors"),
		mPromote:   reg.Counter("reconcile.promotions"),
		mRevive:    reg.Counter("reconcile.revives"),
		mAdd:       reg.Counter("reconcile.adds"),
		mRemove:    reg.Counter("reconcile.removes"),
		mRebalance: reg.Counter("reconcile.rebalances"),
		mSpareAdd:  reg.Counter("reconcile.spares_added"),
		mSpareWarm: reg.Counter("reconcile.spares_warmed"),
		mScaleUp:   reg.Counter("reconcile.scale_ups"),
		mScaleDown: reg.Counter("reconcile.scale_downs"),
		mConverged: reg.Gauge("reconcile.converged"),
		mPending:   reg.Gauge("reconcile.pending_actions"),
		mRoundNS:   reg.Histogram("reconcile.round_ns"),
	}
	r.status = Status{Code: Progressing, Reasons: []string{"not yet reconciled"}}
	// Surface round status through v_monitor.reconcile_status (the
	// dependency inverts: core cannot import reconcile).
	db.SetReconcileStatusProvider("reconciler", func() core.ReconcileStatus {
		st := r.Status()
		return core.ReconcileStatus{
			Code: st.Code.String(), Round: st.Round,
			Pending: int64(st.Pending), QueueDepth: int64(st.QueueDepth),
			P95: st.P95, Reasons: st.Reasons,
		}
	})
	return r
}

// Spec returns the current desired state.
func (r *Reconciler) Spec() ClusterSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spec
}

// SetSpec replaces the desired state; the next round reconciles toward
// it. Autoscale and failure state reset, since they described progress
// toward the old spec.
func (r *Reconciler) SetSpec(spec ClusterSpec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spec = spec
	r.asSize = map[string]int{}
	r.idle = 0
	r.fails = map[string]*failState{}
}

// Status returns the most recent round's status.
func (r *Reconciler) Status() Status {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	return r.status
}

// setStatus publishes a round's status.
func (r *Reconciler) setStatus(st Status) {
	r.statusMu.Lock()
	r.status = st
	r.statusMu.Unlock()
}

// LastProfile returns the span profile of the most recent round.
func (r *Reconciler) LastProfile() *obs.Profile {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	return r.profile
}

// Tick runs one reconcile round: observe, diff, act (bounded), report.
func (r *Reconciler) Tick(ctx context.Context) Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := time.Now()
	r.round++
	r.mRounds.Inc()

	trace := obs.NewTrace("reconcile", nil)
	root := trace.Root()
	defer func() {
		root.End()
		st := r.Status()
		r.statusMu.Lock()
		r.profile = trace.Finish()
		r.statusMu.Unlock()
		r.mRoundNS.ObserveDuration(time.Since(start))
		r.mConverged.Set(boolGauge(st.Code == Converged))
		r.mPending.Set(int64(st.Pending))
	}()

	if r.db.IsShutdown() {
		st := Status{
			Code: Blocked, Round: r.round,
			Reasons: []string{"cluster is shut down; revive it from shared storage"},
		}
		r.setStatus(st)
		return st
	}

	// Load signals feed the autoscaler before the diff, so a spec
	// adjustment and the actions it implies land in the same round.
	sigSpan := root.StartSpan("signals")
	sig := r.readSignals()
	r.autoscale(sig)
	sigSpan.End()

	diffSpan := root.StartSpan("diff")
	plan := r.diff()
	diffSpan.End()

	actSpan := root.StartSpan("act")
	results := r.act(ctx, plan, actSpan)
	actSpan.End()

	// Re-derive the remaining work from post-action state: an empty plan
	// is the definition of Converged.
	remaining := r.diff()

	st := Status{
		Round:      r.round,
		Pending:    len(remaining),
		QueueDepth: sig.QueueDepth,
		P95:        sig.P95,
		Actions:    results,
	}
	var blocked []string
	for key, fs := range r.fails {
		if fs.count >= r.cfg.FailThreshold {
			blocked = append(blocked, key+" keeps failing: "+fs.last)
		}
	}
	sort.Strings(blocked)
	switch {
	case len(blocked) > 0:
		st.Code = Blocked
		st.Reasons = blocked
	case len(remaining) == 0:
		st.Code = Converged
	default:
		st.Code = Progressing
		for i, a := range remaining {
			if i == 4 {
				break // cap the reasons; Pending carries the full count
			}
			st.Reasons = append(st.Reasons, a.describe())
		}
	}
	r.setStatus(st)
	return st
}

// Run ticks the reconciler at the configured interval until ctx ends.
func (r *Reconciler) Run(ctx context.Context) {
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Tick(ctx)
		}
	}
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
