package objstore

import (
	"hash/fnv"
	"strconv"
	"time"
)

// OpRange is a half-open interval [From, To) of request indices. The
// simulator numbers every request (across all operation kinds) with a
// monotonically increasing op index, so a schedule expressed in op
// ranges replays identically for identical workloads regardless of wall
// clock speed.
type OpRange struct {
	From, To int64
}

// contains reports whether op falls in the range.
func (r OpRange) contains(op int64) bool { return op >= r.From && op < r.To }

// FaultWindow injects transient failures at the given rate within an op
// range ("timed failure windows").
type FaultWindow struct {
	OpRange
	// Rate is the probability in [0,1] that a request in the window
	// fails with ErrTransient.
	Rate float64
}

// LatencySpike adds Extra service time to every request in an op range.
type LatencySpike struct {
	OpRange
	Extra time.Duration
}

// FaultSchedule is a deterministic, seedable schedule of injected
// shared-storage faults. Every decision is a pure function of
// (Seed, op index, key), so the same seed yields the identical schedule
// on every run — the property chaos tests assert.
type FaultSchedule struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// Windows are op-index ranges with elevated transient-failure rates.
	Windows []FaultWindow
	// PrefixRates fail requests whose key starts with a prefix at the
	// given rate (e.g. target only "data/" or one node's metadata).
	PrefixRates map[string]float64
	// ThrottleBursts reject every request in the range with ErrThrottled
	// (S3 SlowDown storms).
	ThrottleBursts []OpRange
	// LatencySpikes add service time within op ranges (heavy-tailed GET
	// latency that hedged reads absorb).
	LatencySpikes []LatencySpike
}

// Verdict is the schedule's decision for one request.
type Verdict struct {
	Fail         bool // reject with ErrTransient
	Throttle     bool // reject with ErrThrottled
	ExtraLatency time.Duration
}

// Eval decides the fate of request op on key. It is a pure function:
// calling it twice with the same arguments returns the same verdict.
func (f *FaultSchedule) Eval(op int64, key string) Verdict {
	if f == nil {
		return Verdict{}
	}
	var v Verdict
	for _, b := range f.ThrottleBursts {
		if b.contains(op) {
			v.Throttle = true
		}
	}
	for i, w := range f.Windows {
		if w.contains(op) && f.roll(op, key, "window", i) < w.Rate {
			v.Fail = true
		}
	}
	for prefix, rate := range f.PrefixRates {
		// The salt embeds the prefix itself so map iteration order cannot
		// affect the decision.
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix &&
			f.roll(op, key, "prefix:"+prefix, 0) < rate {
			v.Fail = true
		}
	}
	for _, s := range f.LatencySpikes {
		if s.contains(op) {
			v.ExtraLatency += s.Extra
		}
	}
	return v
}

// roll derives a uniform value in [0,1) from the schedule seed, the op
// index, the key and a salt identifying the deciding rule, so distinct
// rules draw independent values.
func (f *FaultSchedule) roll(op int64, key, salt string, idx int) float64 {
	h := fnv.New64a()
	h.Write([]byte(strconv.FormatInt(f.Seed, 10)))
	h.Write([]byte{0})
	h.Write([]byte(strconv.FormatInt(op, 10)))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(idx)))
	return float64(h.Sum64()>>11) / (1 << 53)
}
