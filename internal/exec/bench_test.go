package exec

import (
	"math/rand"
	"testing"

	"eon/internal/expr"
	"eon/internal/types"
)

func benchBatch(n int) (*types.Batch, types.Schema) {
	schema := types.Schema{
		{Name: "k", Type: types.Int64},
		{Name: "v", Type: types.Float64},
		{Name: "s", Type: types.Varchar},
	}
	rng := rand.New(rand.NewSource(1))
	b := types.NewBatch(schema, n)
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		b.AppendRow(types.Row{
			types.NewInt(rng.Int63n(1000)),
			types.NewFloat(rng.Float64() * 100),
			types.NewString(labels[rng.Intn(4)]),
		})
	}
	return b, schema
}

func BenchmarkFilter(b *testing.B) {
	data, schema := benchBatch(8192)
	pred := expr.Bin(expr.OpGt, expr.Col("v"), expr.FloatLit(50))
	if err := expr.Bind(pred, schema); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		op := NewFilter(NewSource(schema, data), pred)
		if _, err := Collect(op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	left, schema := benchBatch(4096)
	right, _ := benchBatch(4096)
	for i := 0; i < b.N; i++ {
		op := NewHashJoin(NewSource(schema, left), NewSource(schema, right), []int{0}, []int{0})
		if _, err := Collect(op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashAggregate(b *testing.B) {
	data, schema := benchBatch(8192)
	key := expr.Col("s")
	arg := expr.Col("v")
	if err := expr.Bind(key, schema); err != nil {
		b.Fatal(err)
	}
	if err := expr.Bind(arg, schema); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		op := NewHashAggregate(NewSource(schema, data),
			[]expr.Expr{key}, []string{"s"},
			[]AggDef{{Kind: AggSum, Arg: arg, Name: "total"}, {Kind: AggCountStar, Name: "n"}},
			false)
		if _, err := Collect(op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopK(b *testing.B) {
	data, schema := benchBatch(8192)
	for i := 0; i < b.N; i++ {
		op := NewTopK(NewSource(schema, data), []SortSpec{{Col: 1, Desc: true}}, 10)
		if _, err := Collect(op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionByHash(b *testing.B) {
	data, _ := benchBatch(8192)
	for i := 0; i < b.N; i++ {
		PartitionByHash(data, []int{0}, 8)
	}
}
