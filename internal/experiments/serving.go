package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"eon/internal/core"
	"eon/internal/objstore"
	"eon/internal/workload"
)

// ServingOptions parameterizes the serving-path experiment: hot-query
// throughput with the plan/result caches on vs off, plus admission-queue
// latency past the per-subcluster concurrency cap.
type ServingOptions struct {
	// Scale is the TPC-H scale factor (default 0.02).
	Scale float64
	// Threads is the concurrent session count (default 16).
	Threads int
	// Window is the throughput measurement window (default 500ms).
	Window time.Duration
	// AdmissionCap is the per-subcluster concurrency limit for the
	// admission phase (default 4; Threads sessions contend for it).
	AdmissionCap int
	// QueriesPerThread is the per-session sample count of the admission
	// phase (default 25).
	QueriesPerThread int
}

// ServingResult is the experiment outcome.
type ServingResult struct {
	// CachedQPM and UncachedQPM are hot-query completions per minute
	// with the serving caches on and off.
	CachedQPM, UncachedQPM float64
	// AdmissionP50 and AdmissionP99 are end-to-end latencies of queries
	// run at Threads-way concurrency against an AdmissionCap-way limit —
	// every sample but the first few queues.
	AdmissionP50, AdmissionP99 time.Duration
	// AdmissionTimeouts counts queries that gave up waiting (must be 0:
	// the sessions run without deadlines).
	AdmissionTimeouts int64
	// AdmissionQueued counts queries that parked before admission;
	// proves the cap actually bit during the phase.
	AdmissionQueued int64
}

func (o *ServingOptions) defaults() {
	if o.Scale == 0 {
		o.Scale = 0.02
	}
	if o.Threads == 0 {
		o.Threads = 16
	}
	if o.Window == 0 {
		o.Window = 500 * time.Millisecond
	}
	if o.AdmissionCap == 0 {
		o.AdmissionCap = 4
	}
	if o.QueriesPerThread == 0 {
		o.QueriesPerThread = 25
	}
}

// newServingBenchDB builds the experiment cluster. cached toggles the
// whole serving cache stack; subCap and queryCost shape the admission
// phase (0 for the throughput phase).
func newServingBenchDB(cached bool, subCap int, queryCost time.Duration) (*core.DB, error) {
	sim := objstore.NewSim(objstore.NewMem(), SharedStorageSim(1))
	cfg := core.Config{
		Mode:                  core.ModeEon,
		Nodes:                 nodeSpecs(3),
		ShardCount:            3,
		ReplicationFactor:     2,
		Shared:                sim,
		Net:                   ClusterNet(),
		ExecSlots:             8,
		QueryCost:             queryCost,
		SubclusterConcurrency: subCap,
	}
	if cached {
		cfg.ResultCacheBytes = 16 << 20
	} else {
		cfg.PlanCacheSize = -1 // fully uncached serving path
	}
	return core.Create(cfg)
}

// ServingThroughput measures the staged serving path. Phase one: the
// same hot analytic query (TPC-H Q1) hammered by Threads sessions for
// Window, on a cache-enabled and a cache-disabled cluster — the cached
// cluster serves warm executions from the result cache without parsing,
// planning or executing. Phase two: Threads sessions contend for an
// AdmissionCap-way admission limit and the per-query latency percentiles
// quantify the queueing behaviour.
func ServingThroughput(opt ServingOptions) (ServingResult, error) {
	opt.defaults()
	var res ServingResult
	hot := workload.TPCHQueries()[0].SQL // Q1: wide scan + grouped aggregation

	for _, cached := range []bool{false, true} {
		db, err := newServingBenchDB(cached, 0, 0)
		if err != nil {
			return res, err
		}
		if err := loadTPCH(db, opt.Scale); err != nil {
			return res, err
		}
		sessions := make([]*core.Session, opt.Threads)
		for i := range sessions {
			sessions[i] = db.NewSession()
		}
		// Warm everything measurable: depot caches, and on the cached
		// cluster the plan and result caches.
		if _, err := sessions[0].Query(hot); err != nil {
			return res, err
		}
		qpm, err := runThroughput(opt.Threads, opt.Window, func(w int) error {
			_, err := sessions[w].Query(hot)
			return err
		})
		if err != nil {
			return res, err
		}
		if cached {
			res.CachedQPM = qpm
		} else {
			res.UncachedQPM = qpm
		}
	}

	// Admission phase: every query costs ~QueryCost while holding its
	// slots, sessions bypass the result cache so each one really
	// executes, and Threads-way concurrency contends for AdmissionCap.
	db, err := newServingBenchDB(true, opt.AdmissionCap, 3*time.Millisecond)
	if err != nil {
		return res, err
	}
	if err := loadTPCH(db, opt.Scale); err != nil {
		return res, err
	}
	const admQ = `SELECT COUNT(*) FROM nation`
	latencies := make([]time.Duration, opt.Threads*opt.QueriesPerThread)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < opt.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			s.BypassCache = true
			for i := 0; i < opt.QueriesPerThread; i++ {
				start := time.Now()
				if _, err := s.Query(admQ); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("admission phase worker %d: %w", w, err)
					}
					mu.Unlock()
					return
				}
				latencies[w*opt.QueriesPerThread+i] = time.Since(start)
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.AdmissionP50 = latencies[len(latencies)/2]
	res.AdmissionP99 = latencies[len(latencies)*99/100]
	counters := db.Metrics().Counters
	res.AdmissionTimeouts = counters["admission.timeouts"]
	res.AdmissionQueued = counters["admission.queued"]
	return res, nil
}
