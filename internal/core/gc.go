package core

import (
	"strings"

	"eon/internal/catalog"
	"eon/internal/storage"
)

// RunGC deletes queued shared-storage files that are provably
// unreferenced (§6.5). A file dropped at catalog version V may be
// removed only when (a) the cluster's gossiped minimum running-query
// version exceeds V — no query on any node can still reference it — and
// (b) the truncation version has passed V — a catastrophic revive can no
// longer resurrect the catalog entry that referenced it. It returns the
// number of files deleted.
func (db *DB) RunGC() (int, error) {
	if db.mode != ModeEon {
		return 0, nil // Enterprise deletes locally at drop time
	}
	ctx := db.Context()

	// Gossip: each node reports the minimum catalog version of its
	// running queries (monotonically increasing).
	minQ := ^uint64(0)
	for _, n := range db.Nodes() {
		if !n.Up() {
			continue
		}
		v := n.minQueryVersion(n.catalog.Version())
		if v < minQ {
			minQ = v
		}
	}
	limit := minQ
	if t := db.truncation.Load(); t < limit {
		limit = t
	}

	db.gcMu.Lock()
	var ready []pendingDelete
	var still []pendingDelete
	for _, p := range db.deferred {
		if p.dropVersion <= limit {
			ready = append(ready, p)
		} else {
			still = append(still, p)
		}
	}
	db.deferred = still
	db.gcMu.Unlock()

	deleted := 0
	for _, p := range ready {
		if err := db.shared.Delete(ctx, p.path); err != nil {
			// Requeue on failure; deletion is eventually retried.
			db.gcMu.Lock()
			db.deferred = append(db.deferred, p)
			db.gcMu.Unlock()
			continue
		}
		deleted++
	}
	return deleted, nil
}

// PendingDeletes reports the deferred-deletion queue length.
func (db *DB) PendingDeletes() int {
	db.gcMu.Lock()
	defer db.gcMu.Unlock()
	return len(db.deferred)
}

// ScrubLeakedFiles is the fallback global enumeration (§6.5): it lists
// every data file on shared storage, aggregates the referenced files from
// all node catalogs, skips files whose name carries the instance id of a
// currently running node (concurrently created), and deletes the rest.
// Expensive; run manually after crashes.
func (db *DB) ScrubLeakedFiles() ([]string, error) {
	if db.mode != ModeEon {
		return nil, nil
	}
	ctx := db.Context()

	referenced := map[string]bool{}
	for _, n := range db.Nodes() {
		snap := n.catalog.Snapshot()
		snap.ForEach(catalog.KindStorageContainer, func(o catalog.Object) bool {
			for _, f := range o.(*catalog.StorageContainer).AllFiles() {
				referenced[f.Path] = true
			}
			return true
		})
		snap.ForEach(catalog.KindDeleteVector, func(o catalog.Object) bool {
			referenced[o.(*catalog.DeleteVector).File.Path] = true
			return true
		})
	}
	// Files queued for deferred deletion are known, not leaked.
	db.gcMu.Lock()
	for _, p := range db.deferred {
		referenced[p.path] = true
	}
	db.gcMu.Unlock()

	var livePrefixes []string
	for _, n := range db.Nodes() {
		if n.Up() {
			livePrefixes = append(livePrefixes, storage.InstancePrefix(n.inst))
		}
	}

	infos, err := db.shared.List(ctx, "data/")
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, fi := range infos {
		if referenced[fi.Key] {
			continue
		}
		skip := false
		for _, p := range livePrefixes {
			if strings.HasPrefix(fi.Key, p) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if err := db.shared.Delete(ctx, fi.Key); err == nil {
			removed = append(removed, fi.Key)
		}
	}
	return removed, nil
}
