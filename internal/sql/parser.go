package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"eon/internal/expr"
	"eon/internal/types"
)

// Parse parses one SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// ParseExpr parses a standalone scalar expression (used for partition
// expressions stored as text in the catalog).
func ParseExpr(src string) (expr.Expr, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	tokens []token
	pos    int
	// nparams counts positional "?" placeholders seen so far; each is
	// assigned the next 1-based ordinal in appearance order.
	nparams int
}

func (p *parser) peek() token { return p.tokens[p.pos] }

func (p *parser) next() token {
	t := p.tokens[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind and (optionally)
// text.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errorf("expected %q, found %q", text, p.peek().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// ident consumes an identifier (keywords are not identifiers).
func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", p.errorf("expected identifier, found %q", p.peek().text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "CREATE"):
		p.next()
		if p.accept(tokKeyword, "TABLE") {
			return p.parseCreateTable()
		}
		if p.accept(tokKeyword, "PROJECTION") {
			return p.parseCreateProjection()
		}
		return nil, p.errorf("expected TABLE or PROJECTION after CREATE")
	case p.accept(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.accept(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.accept(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.accept(tokKeyword, "ALTER"):
		return p.parseAlter()
	case p.accept(tokKeyword, "DROP"):
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	}
	return nil, p.errorf("unsupported statement starting with %q", p.peek().text)
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		col, err := p.parseColDef()
		if err != nil {
			return nil, err
		}
		ct.Cols = append(ct.Cols, col)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "PARTITION") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ct.PartitionBy = e
	}
	return ct, nil
}

func (p *parser) parseColDef() (ColDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColDef{}, err
	}
	// Type name: an identifier or a type-ish keyword (DATE, TIMESTAMP).
	var typeName string
	switch {
	case p.at(tokIdent, ""):
		typeName = p.next().text
	case p.at(tokKeyword, "DATE") || p.at(tokKeyword, "TIMESTAMP"):
		typeName = p.next().text
	default:
		return ColDef{}, p.errorf("expected type for column %q", name)
	}
	// Swallow optional length like VARCHAR(64).
	if p.accept(tokOp, "(") {
		for !p.at(tokOp, ")") && !p.at(tokEOF, "") {
			p.next()
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return ColDef{}, err
		}
	}
	t, err := types.ParseType(typeName)
	if err != nil {
		return ColDef{}, err
	}
	def := ColDef{Name: name, Type: t}
	// Flattened column: SET USING dim.value ON factkey = dim.key (§2.1).
	if p.accept(tokKeyword, "SET") {
		if _, err := p.expect(tokKeyword, "USING"); err != nil {
			return ColDef{}, err
		}
		dimTable, err := p.ident()
		if err != nil {
			return ColDef{}, err
		}
		if _, err := p.expect(tokOp, "."); err != nil {
			return ColDef{}, err
		}
		dimValue, err := p.ident()
		if err != nil {
			return ColDef{}, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return ColDef{}, err
		}
		factKey, err := p.ident()
		if err != nil {
			return ColDef{}, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return ColDef{}, err
		}
		dimTable2, err := p.ident()
		if err != nil {
			return ColDef{}, err
		}
		if _, err := p.expect(tokOp, "."); err != nil {
			return ColDef{}, err
		}
		dimKey, err := p.ident()
		if err != nil {
			return ColDef{}, err
		}
		if !stringsEqualFold(dimTable, dimTable2) {
			return ColDef{}, p.errorf("SET USING join must reference the dimension table %q", dimTable)
		}
		def.SetUsing = &SetUsingSpec{DimTable: dimTable, DimValue: dimValue, FactKey: factKey, DimKey: dimKey}
	}
	return def, nil
}

func stringsEqualFold(a, b string) bool { return strings.EqualFold(a, b) }

func (p *parser) parseCreateProjection() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	cp := &CreateProjection{Name: name, KSafe: -1}
	if p.accept(tokOp, "*") {
		// all columns
	} else {
		for {
			// A live aggregate item: SUM/COUNT/MIN/MAX(col | *) [AS a].
			if op, ok := aggKeywords[p.peek().text]; ok && p.peek().kind == tokKeyword &&
				p.tokens[p.pos+1].kind == tokOp && p.tokens[p.pos+1].text == "(" {
				p.next() // agg keyword
				p.next() // (
				agg := ProjAgg{Op: op}
				if op == AggCount && p.accept(tokOp, "*") {
					agg.Op = AggCountStar
				} else {
					col, err := p.ident()
					if err != nil {
						return nil, err
					}
					agg.Col = col
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
				if p.accept(tokKeyword, "AS") {
					agg.Alias, err = p.ident()
					if err != nil {
						return nil, err
					}
				} else if p.at(tokIdent, "") {
					agg.Alias = p.next().text
				}
				cp.Aggs = append(cp.Aggs, agg)
			} else {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				cp.Cols = append(cp.Cols, col)
			}
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	cp.Table, err = p.ident()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			cp.GroupBy = append(cp.GroupBy, col)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			cp.OrderBy = append(cp.OrderBy, col)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	switch {
	case p.accept(tokKeyword, "SEGMENTED"):
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "HASH"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			cp.SegmentBy = append(cp.SegmentBy, col)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		p.accept(tokKeyword, "ALL")
		p.accept(tokKeyword, "NODES")
	case p.accept(tokKeyword, "UNSEGMENTED"):
		p.accept(tokKeyword, "ALL")
		p.accept(tokKeyword, "NODES")
		cp.Replicated = true
	}
	if p.accept(tokKeyword, "KSAFE") {
		if !p.at(tokNumber, "") {
			return nil, p.errorf("expected number after KSAFE")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return nil, err
		}
		cp.KSafe = n
	}
	return cp, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		d.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, SetClause{Column: col, Value: val})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		u.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) parseAlter() (Statement, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ADD"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "COLUMN"); err != nil {
		return nil, err
	}
	col, err := p.parseColDef()
	if err != nil {
		return nil, err
	}
	a := &AlterAddColumn{Table: table, Col: col}
	if p.accept(tokKeyword, "DEFAULT") {
		a.Default, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	var err error
	sel.From, err = p.parseTableRef()
	if err != nil {
		return nil, err
	}
	for {
		if p.accept(tokKeyword, "INNER") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, Join{Table: tr, On: on})
	}
	if p.accept(tokKeyword, "WHERE") {
		sel.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		sel.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			var item OrderItem
			if p.at(tokNumber, "") && !strings.Contains(p.peek().text, ".") {
				n, _ := strconv.Atoi(p.next().text)
				item.Position = n
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Expr = e
			}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		if !p.at(tokNumber, "") {
			return nil, p.errorf("expected number after LIMIT")
		}
		n, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	// Schema-qualified name (v_monitor.metrics): the dotted pair is one
	// table name; base tables stay single-identifier.
	if p.accept(tokOp, ".") {
		part, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		name = name + "." + part
	}
	tr := TableRef{Table: name}
	if p.accept(tokKeyword, "AS") {
		tr.Alias, err = p.ident()
		if err != nil {
			return TableRef{}, err
		}
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// aggKeywords maps aggregate keywords to ops.
var aggKeywords = map[string]AggOp{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	var item SelectItem
	if op, ok := aggKeywords[p.peek().text]; ok && p.peek().kind == tokKeyword {
		// Look ahead for '(' to distinguish an aggregate call.
		if p.tokens[p.pos+1].kind == tokOp && p.tokens[p.pos+1].text == "(" {
			p.next() // agg keyword
			p.next() // (
			spec := &AggSpec{Op: op}
			if op == AggCount && p.accept(tokOp, "*") {
				spec.Op = AggCountStar
			} else {
				if p.accept(tokKeyword, "DISTINCT") {
					if op != AggCount {
						return item, p.errorf("DISTINCT only supported with COUNT")
					}
					spec.Op = AggCountDistinct
				}
				arg, err := p.parseExpr()
				if err != nil {
					return item, err
				}
				spec.Arg = arg
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return item, err
			}
			item.Agg = spec
		}
	}
	if item.Agg == nil {
		e, err := p.parseExpr()
		if err != nil {
			return item, err
		}
		item.Expr = e
	}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

// --- expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(expr.OpOr, left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(expr.OpAnd, left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNot, E: e}, nil
	}
	return p.parseComparison()
}

var compOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe,
	">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		negate := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{E: left, Negate: negate}, nil
	}
	negate := false
	if p.at(tokKeyword, "NOT") {
		// NOT IN / NOT LIKE / NOT BETWEEN
		save := p.pos
		p.next()
		if p.at(tokKeyword, "IN") || p.at(tokKeyword, "LIKE") || p.at(tokKeyword, "BETWEEN") {
			negate = true
		} else {
			p.pos = save
			return left, nil
		}
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		in := &expr.In{E: left, Negate: negate}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.accept(tokKeyword, "LIKE"):
		if !p.at(tokString, "") {
			return nil, p.errorf("LIKE requires a string literal pattern")
		}
		pat := p.next().text
		return &expr.Like{E: left, Pattern: pat, Negate: negate}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		between := expr.Bin(expr.OpAnd,
			expr.Bin(expr.OpGe, left, lo),
			expr.Bin(expr.OpLe, left, hi))
		if negate {
			return &expr.Unary{Op: expr.OpNot, E: between}, nil
		}
		return between, nil
	}
	if p.peek().kind == tokOp {
		if op, ok := compOps[p.peek().text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.Bin(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.Op
		switch {
		case p.accept(tokOp, "+"):
			op = expr.OpAdd
		case p.accept(tokOp, "-"):
			op = expr.OpSub
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(op, left, right)
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.Op
		switch {
		case p.accept(tokOp, "*"):
			op = expr.OpMul
		case p.accept(tokOp, "/"):
			op = expr.OpDiv
		case p.accept(tokOp, "%"):
			op = expr.OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(op, left, right)
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*expr.Literal); ok && !lit.Value.Null {
			v := lit.Value
			switch v.K.Physical() {
			case types.Int64:
				v.I = -v.I
				return expr.Lit(v), nil
			case types.Float64:
				v.F = -v.F
				return expr.Lit(v), nil
			}
		}
		return &expr.Unary{Op: expr.OpNeg, E: e}, nil
	}
	p.accept(tokOp, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return expr.FloatLit(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return expr.IntLit(n), nil
	case t.kind == tokString:
		p.next()
		return expr.StrLit(t.text), nil
	case t.kind == tokParam:
		p.next()
		if t.text == "" { // positional "?"
			p.nparams++
			return &expr.Param{Index: p.nparams}, nil
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, p.errorf("bad parameter ordinal $%s", t.text)
		}
		if n > p.nparams {
			p.nparams = n
		}
		return &expr.Param{Index: n}, nil
	case t.kind == tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return expr.Lit(types.NullDatum(types.Unknown)), nil
		case "TRUE":
			p.next()
			return expr.Lit(types.NewBool(true)), nil
		case "FALSE":
			p.next()
			return expr.Lit(types.NewBool(false)), nil
		case "DATE":
			p.next()
			if !p.at(tokString, "") {
				return nil, p.errorf("DATE requires a string literal")
			}
			s := p.next().text
			tm, err := time.Parse("2006-01-02", s)
			if err != nil {
				return nil, p.errorf("bad date %q", s)
			}
			return expr.Lit(types.NewDate(tm.Unix() / 86400)), nil
		case "TIMESTAMP":
			p.next()
			if !p.at(tokString, "") {
				return nil, p.errorf("TIMESTAMP requires a string literal")
			}
			s := p.next().text
			tm, err := time.Parse("2006-01-02 15:04:05", s)
			if err != nil {
				return nil, p.errorf("bad timestamp %q", s)
			}
			return expr.Lit(types.NewTimestamp(tm.UnixMicro())), nil
		case "CASE":
			return p.parseCase()
		case "EXTRACT":
			p.next()
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			var field string
			if p.at(tokString, "") || p.at(tokIdent, "") {
				field = p.next().text
			} else {
				return nil, p.errorf("expected EXTRACT field")
			}
			if !p.accept(tokKeyword, "FROM") {
				p.accept(tokOp, ",")
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &expr.Func{Name: "EXTRACT", Args: []expr.Expr{expr.StrLit(field), arg}}, nil
		case "HASH", "MIN", "MAX": // HASH(...) as scalar; MIN/MAX only in select items
			if t.text == "HASH" {
				p.next()
				return p.parseCallArgs("HASH")
			}
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case t.kind == tokIdent:
		name := p.next().text
		// Function call?
		if p.at(tokOp, "(") {
			return p.parseCallArgs(name)
		}
		// Qualified column t.c?
		if p.accept(tokOp, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return expr.Col(name + "." + col), nil
		}
		return expr.Col(name), nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

func (p *parser) parseCallArgs(name string) (expr.Expr, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	f := &expr.Func{Name: strings.ToUpper(name)}
	if !p.at(tokOp, ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseCase() (expr.Expr, error) {
	p.next() // CASE
	c := &expr.Case{}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, expr.When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}
