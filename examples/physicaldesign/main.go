// Physical design: the paper's §2.1 toolbox — live aggregate projections
// that maintain pre-computed partial aggregates at load time, and
// flattened tables that denormalize dimension attributes into facts with
// a refresh mechanism.
package main

import (
	"fmt"
	"log"
	"time"

	"eon"
)

func main() {
	db, err := eon.Create(eon.Config{
		Mode: eon.ModeEon,
		Nodes: []eon.NodeSpec{
			{Name: "node1"}, {Name: "node2"}, {Name: "node3"},
		},
		ShardCount: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession()
	exec := func(q string) {
		if _, err := s.Execute(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}

	// A dimension table and a fact table with a flattened column: every
	// loaded fact row denormalizes the product name at load time, so
	// queries never need the join.
	exec(`CREATE TABLE products (p_id INTEGER, p_name VARCHAR)`)
	exec(`CREATE PROJECTION products_p AS SELECT * FROM products ORDER BY p_id UNSEGMENTED ALL NODES`)
	exec(`INSERT INTO products VALUES (1, 'anvil'), (2, 'rocket'), (3, 'magnet')`)

	exec(`CREATE TABLE orders (
		o_id INTEGER, product_id INTEGER, qty INTEGER,
		product_name VARCHAR SET USING products.p_name ON product_id = products.p_id
	)`)
	exec(`CREATE PROJECTION orders_p AS SELECT * FROM orders ORDER BY o_id SEGMENTED BY HASH(o_id) ALL NODES`)
	// A live aggregate projection: per-product order counts and total
	// quantity, maintained incrementally at every load.
	exec(`CREATE PROJECTION orders_agg AS SELECT product_name, COUNT(*) AS n, SUM(qty) AS total
		FROM orders GROUP BY product_name`)

	for i := 1; i <= 300; i++ {
		exec(fmt.Sprintf(`INSERT INTO orders VALUES (%d, %d, %d, NULL)`, i, i%3+1, i%7+1))
	}

	// The flattened column was filled at load: no join needed.
	res, err := s.Query(`SELECT o_id, product_name FROM orders WHERE o_id <= 3 ORDER BY o_id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flattened rows (no join executed):")
	for _, r := range res.Rows() {
		fmt.Printf("  order %s -> %s\n", r[0], r[1])
	}

	// The aggregate query is answered from the live aggregate
	// projection's partial groups, not by scanning 300 base rows.
	start := time.Now()
	res, err = s.Query(`SELECT product_name, COUNT(*) AS n, SUM(qty) AS total
		FROM orders GROUP BY product_name ORDER BY total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-product totals (served by the live aggregate, %v):\n", time.Since(start).Round(time.Microsecond))
	for _, r := range res.Rows() {
		fmt.Printf("  %-8s orders=%-4s qty=%s\n", r[0], r[1], r[2])
	}

	// The dimension changes; refresh recomputes the flattened column.
	exec(`UPDATE products SET p_name = 'mega-anvil' WHERE p_id = 1`)
	n, err := db.RefreshColumns("orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefreshed flattened columns (%d containers rewritten)\n", n)
	res, err = s.Query(`SELECT COUNT(*) FROM orders WHERE product_name = 'mega-anvil'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders now labeled mega-anvil: %s\n", res.Rows()[0][0])
}
