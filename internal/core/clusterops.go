package core

import (
	"fmt"

	"eon/internal/catalog"
	"eon/internal/shard"
)

// checkViabilityAndMaybeShutdown enforces the §3.4 invariants: if the up
// nodes cannot form a viable cluster (quorum plus ACTIVE coverage of
// every shard), the cluster shuts down to avoid divergence or wrong
// answers.
func (db *DB) checkViabilityAndMaybeShutdown(snap *catalog.Snapshot) shard.Viability {
	v := shard.CheckViability(snap, db.UpNodes())
	if !v.OK {
		db.shutdown.Store(true)
	}
	return v
}

// IsShutdown reports whether the cluster went down due to invariant
// violation or an explicit Shutdown.
func (db *DB) IsShutdown() bool { return db.shutdown.Load() }

// KillNode simulates a node failure: the process state (WOS contents,
// in-flight work) is lost; the node's disk (cache, catalog files)
// survives as instance storage.
func (db *DB) KillNode(name string) error {
	n, ok := db.Node(name)
	if !ok {
		return fmt.Errorf("core: unknown node %q", name)
	}
	if !n.Up() {
		return nil
	}
	n.up.Store(false)
	db.net.SetDown(name, true)
	db.slots.kick() // waiters on the dead node's slots must re-validate
	if init, err := db.anyUpNode(); err == nil {
		db.checkViabilityAndMaybeShutdown(init.catalog.Snapshot())
	} else {
		db.shutdown.Store(true)
	}
	return nil
}

// RecoverNode brings a failed node back (§6.1): the node rejoins, its
// stale ACTIVE subscriptions are forced back to PENDING (re-subscription),
// it catches up on missed catalog commits, transfers incremental shard
// metadata, optionally warms its cache from a peer, and finally returns
// its subscriptions to ACTIVE.
func (db *DB) RecoverNode(name string) error {
	n, ok := db.Node(name)
	if !ok {
		return fmt.Errorf("core: unknown node %q", name)
	}
	if n.Up() {
		return nil
	}
	if db.shutdown.Load() {
		return fmt.Errorf("core: cluster is shut down; revive it instead")
	}

	// A restarted process has a fresh instance id (§5.1) and empty WOS.
	n.inst = newInstanceID()
	if db.mode == ModeEnterprise && n.wos != nil {
		n.wos = freshWOS()
	}

	// Catch up on missed commits before rejoining the commit fan-out,
	// atomically with marking the node up (incremental shard diffs;
	// §6.1: "re-subscription is less resource intensive").
	db.commitMu.Lock()
	for _, rec := range db.recordsAfter(n.catalog.Version()) {
		if err := n.catalog.Apply(rec, db.keepFuncFor(n)); err != nil {
			db.commitMu.Unlock()
			return fmt.Errorf("core: node %s catch-up failed at v%d: %w", n.name, rec.Version, err)
		}
	}
	n.up.Store(true)
	db.commitMu.Unlock()
	db.net.SetDown(name, false)

	init, err := db.anyUpNode()
	if err != nil {
		return err
	}

	// Force re-subscription: ACTIVE -> PENDING for the recovering node
	// (§3.3). Committed by the cluster upon invitation back.
	if db.mode == ModeEon {
		txn := init.catalog.Begin()
		for _, s := range txn.Base().Subscriptions(name) {
			if s.State == catalog.SubActive {
				c := s.Clone().(*catalog.Subscription)
				c.State = catalog.SubPending
				txn.Put(c)
			}
		}
		if txn.Pending() {
			if _, err := db.commit(init, txn, nil); err != nil {
				return err
			}
		}
	}

	if db.mode == ModeEon {
		// Complete re-subscription: PENDING -> PASSIVE -> ACTIVE with a
		// lukewarm cache warm from a peer.
		if err := db.completeSubscriptions(n, true); err != nil {
			return err
		}
	}
	return nil
}

// AddNode grows the cluster (§6.4): the new node is registered, the
// rebalancer assigns it subscriptions, metadata transfers and the cache
// warms — no data redistribution is needed because data lives on shared
// storage.
func (db *DB) AddNode(spec NodeSpec) error {
	if db.mode == ModeEnterprise {
		return fmt.Errorf("core: Enterprise node addition requires full data redistribution; not supported in this reproduction")
	}
	db.nodesMu.Lock()
	if _, dup := db.nodes[spec.Name]; dup {
		db.nodesMu.Unlock()
		return fmt.Errorf("core: node %q already exists", spec.Name)
	}
	n := newNode(spec, &db.cfg)
	n.up.Store(false) // joins the commit fan-out only once caught up
	db.nodes[spec.Name] = n
	db.order = append(db.order, spec.Name)
	db.nodesMu.Unlock()
	db.slots.register(spec.Name, db.cfg.ExecSlots)
	if spec.Rack != "" {
		db.net.SetRack(spec.Name, spec.Rack)
	}
	db.hookCacheEvictions(n)
	db.ensureSubclusterGauges(spec.Subcluster)

	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	// Bring the new node's catalog up to the cluster version, atomically
	// with joining the commit fan-out.
	db.commitMu.Lock()
	for _, rec := range db.recordsAfter(n.catalog.Version()) {
		if err := n.catalog.Apply(rec, db.keepFuncFor(n)); err != nil {
			db.commitMu.Unlock()
			return fmt.Errorf("core: new node %s catch-up failed: %w", n.name, err)
		}
	}
	n.up.Store(true)
	db.commitMu.Unlock()
	// Register the node object.
	txn := init.catalog.Begin()
	txn.Put(&catalog.Node{OID: init.catalog.NewOID(), Name: spec.Name, Subcluster: spec.Subcluster})
	if _, err := db.commit(init, txn, nil); err != nil {
		return err
	}
	return db.Rebalance()
}

// RemoveNode drains a node's subscriptions and removes it (§6.4:
// "removing a node is as simple as ensuring any segment served by the
// node is also served by another node").
func (db *DB) RemoveNode(name string) error {
	if db.mode == ModeEnterprise {
		return fmt.Errorf("core: Enterprise node removal requires data redistribution; not supported in this reproduction")
	}
	n, ok := db.Node(name)
	if !ok {
		return fmt.Errorf("core: unknown node %q", name)
	}
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	if init == n {
		for _, cand := range db.Nodes() {
			if cand.Up() && cand.name != name {
				init = cand
				break
			}
		}
		if init == n {
			return fmt.Errorf("core: cannot remove the last node")
		}
	}
	// Plan with the node drained, execute the subscription changes, then
	// drop the node object. Spares are invisible to the planner: their
	// PASSIVE pre-subscriptions must not count toward replication.
	planSnap := init.catalog.Snapshot()
	actions := shard.PlanRebalance(planSnap, shard.PlanOptions{
		ReplicationFactor: db.cfg.ReplicationFactor,
		DrainNodes:        []string{name},
		IgnoreNodes:       spareNames(planSnap, name),
	})
	if err := db.executeRebalanceActions(actions); err != nil {
		return err
	}
	txn := init.catalog.Begin()
	snap := txn.Base()
	if node, ok := snap.NodeByName(name); ok {
		txn.Delete(node.OID)
	}
	for _, s := range snap.Subscriptions(name) {
		txn.Delete(s.OID)
	}
	if _, err := db.commit(init, txn, nil); err != nil {
		return err
	}
	n.up.Store(false)
	db.net.SetDown(name, true)
	// Waiters may be parked on the removed node's slots; wake them so they
	// re-validate and retry on surviving nodes (same as KillNode).
	db.slots.kick()
	db.slots.unregister(name)
	db.nodesMu.Lock()
	delete(db.nodes, name)
	for i, o := range db.order {
		if o == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	db.nodesMu.Unlock()
	// The catalog deletion committed while the node was still up, so a
	// concurrent query can have picked the node in between; re-check the
	// §3.4 invariants against the post-removal state the way KillNode
	// does.
	if init2, err := db.anyUpNode(); err == nil {
		db.checkViabilityAndMaybeShutdown(init2.catalog.Snapshot())
	} else {
		db.shutdown.Store(true)
	}
	return nil
}

// Rebalance plans and executes subscription changes so every shard is
// fault tolerant and every subcluster self-sufficient (§3.1, §4.3).
// Warm spares are excluded: their PASSIVE pre-subscriptions neither
// satisfy the replication factor nor receive planned changes.
func (db *DB) Rebalance() error { return db.RebalanceTo(0) }

// RebalanceTo is Rebalance with an explicit replication factor; 0 uses
// the configured one. The reconciler drives spec-level replication
// changes through it.
func (db *DB) RebalanceTo(k int) error {
	if k <= 0 {
		k = db.cfg.ReplicationFactor
	}
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	snap := init.catalog.Snapshot()
	actions := shard.PlanRebalance(snap, shard.PlanOptions{
		ReplicationFactor: k,
		IgnoreNodes:       spareNames(snap, ""),
	})
	return db.executeRebalanceActions(actions)
}
