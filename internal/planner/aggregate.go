package planner

import (
	"fmt"
	"strings"

	"eon/internal/exec"
	"eon/internal/expr"
	"eon/internal/sql"
	"eon/internal/types"
)

// outMap records whether a select item maps to a group key or an
// aggregate, and its position within that group.
type outMap struct {
	isKey bool
	pos   int
}

// buildAggregation plans GROUP BY / aggregate queries: the Aggregate node
// over the input stream, a final Project mapping select items to the
// aggregate output, and HAVING as a filter over that output.
func (p *sessionPlanner) buildAggregation(stmt *sql.Select, items []sql.SelectItem, input Node) (Node, []string, error) {
	inSchema := input.Schema()

	// Group keys, bound to the input stream.
	var keyExprs []expr.Expr
	var keyNames []string
	keyText := map[string]int{} // rendered expr -> key position
	for _, g := range stmt.GroupBy {
		bound := cloneExpr(g)
		if err := resolveAndBind(bound, inSchema); err != nil {
			return nil, nil, err
		}
		keyText[bound.String()] = len(keyExprs)
		keyExprs = append(keyExprs, bound)
		keyNames = append(keyNames, fmt.Sprintf("_k%d", len(keyExprs)-1))
	}

	// Plain select items must match a group key; aggregates become
	// AggDefs.
	var outs []outMap
	var aggs []exec.AggDef
	countDistincts := 0
	for _, it := range items {
		if it.Agg == nil {
			bound := cloneExpr(it.Expr)
			if err := resolveAndBind(bound, inSchema); err != nil {
				return nil, nil, err
			}
			pos, ok := keyText[bound.String()]
			if !ok {
				return nil, nil, fmt.Errorf("planner: %s must appear in GROUP BY", bound)
			}
			outs = append(outs, outMap{isKey: true, pos: pos})
			continue
		}
		def := exec.AggDef{Name: fmt.Sprintf("_a%d", len(aggs))}
		if it.Agg.Arg != nil {
			bound := cloneExpr(it.Agg.Arg)
			if err := resolveAndBind(bound, inSchema); err != nil {
				return nil, nil, err
			}
			def.Arg = bound
		}
		switch it.Agg.Op {
		case sql.AggCountStar:
			def.Kind = exec.AggCountStar
		case sql.AggCount:
			def.Kind = exec.AggCount
		case sql.AggCountDistinct:
			def.Kind = exec.AggCount
			countDistincts++
		case sql.AggSum:
			def.Kind = exec.AggSum
		case sql.AggAvg:
			def.Kind = exec.AggAvg
		case sql.AggMin:
			def.Kind = exec.AggMin
		case sql.AggMax:
			def.Kind = exec.AggMax
		default:
			return nil, nil, fmt.Errorf("planner: unsupported aggregate %v", it.Agg.Op)
		}
		outs = append(outs, outMap{isKey: false, pos: len(aggs)})
		aggs = append(aggs, def)
	}

	// Distribution mode: if the stream's segmentation columns are all
	// group keys, groups are node-disjoint (§4).
	mode := AggTwoPhase
	segCols := segmentColsOf(input)
	if len(segCols) > 0 && len(keyExprs) > 0 && segColsCovered(segCols, keyExprs, inSchema) {
		mode = AggLocalFinal
	}

	var aggNode Node
	if countDistincts > 0 {
		if len(aggs) != 1 {
			return nil, nil, fmt.Errorf("planner: COUNT(DISTINCT) cannot be combined with other aggregates")
		}
		// Deduplicate (keys, arg) first, then count per key group.
		distinctExprs := append(append([]expr.Expr{}, keyExprs...), aggs[0].Arg)
		distinctNames := append(append([]string{}, keyNames...), "_dv")
		proj := &Project{Input: input, Exprs: distinctExprs, Names: distinctNames}
		proj.out = make(types.Schema, len(distinctExprs))
		for i, e := range distinctExprs {
			proj.out[i] = types.Column{Name: distinctNames[i], Type: e.Type()}
		}
		var dn Node = &DistinctNode{Input: proj}
		// Rebind keys and the count arg against the distinct output.
		var keys2 []expr.Expr
		for i := range keyExprs {
			c := expr.Col(distinctNames[i])
			if err := expr.Bind(c, proj.out); err != nil {
				return nil, nil, err
			}
			keys2 = append(keys2, c)
		}
		argRef := expr.Col("_dv")
		if err := expr.Bind(argRef, proj.out); err != nil {
			return nil, nil, err
		}
		countMode := AggInitiatorOnly
		if mode == AggLocalFinal {
			countMode = AggLocalFinal
		}
		agg := &Aggregate{
			Input:    dn,
			Keys:     keys2,
			KeyNames: keyNames,
			Aggs:     []exec.AggDef{{Kind: exec.AggCount, Arg: argRef, Name: "_a0"}},
			Mode:     countMode,
		}
		agg.out = aggOutputSchema(agg)
		aggNode = agg
	} else {
		agg := &Aggregate{Input: input, Keys: keyExprs, KeyNames: keyNames, Aggs: aggs, Mode: mode}
		agg.out = aggOutputSchema(agg)
		aggNode = agg
	}

	// Final projection: select items in order over the aggregate output.
	aggSchema := aggNode.Schema()
	var exprs []expr.Expr
	var names []string
	for i, it := range items {
		var ref *expr.ColumnRef
		if outs[i].isKey {
			ref = expr.Col(keyNames[outs[i].pos])
		} else {
			ref = expr.Col(fmt.Sprintf("_a%d", outs[i].pos))
		}
		if err := expr.Bind(ref, aggSchema); err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, ref)
		names = append(names, outputName(it))
	}

	var root Node = aggNode

	// HAVING filters the aggregate output; references use select aliases
	// or group-by expressions.
	if stmt.Having != nil {
		having := cloneExpr(stmt.Having)
		if err := p.bindHaving(having, items, outs, keyNames, aggSchema); err != nil {
			return nil, nil, err
		}
		root = &Filter{Input: root, Pred: having}
	}

	proj := &Project{Input: root, Exprs: exprs, Names: names}
	proj.out = make(types.Schema, len(exprs))
	for i, e := range exprs {
		proj.out[i] = types.Column{Name: names[i], Type: e.Type()}
	}
	return proj, names, nil
}

// aggOutputSchema computes the logical (final) output schema of an
// aggregate node: key columns then aggregate columns. Execution may emit
// a different partial schema in two-phase mode; this is the post-merge
// shape.
func aggOutputSchema(a *Aggregate) types.Schema {
	var out types.Schema
	for i, k := range a.Keys {
		out = append(out, types.Column{Name: a.KeyNames[i], Type: k.Type()})
	}
	for _, d := range a.Aggs {
		out = append(out, types.Column{Name: d.Name, Type: aggResultType(d)})
	}
	return out
}

func aggResultType(d exec.AggDef) types.Type {
	switch d.Kind {
	case exec.AggCountStar, exec.AggCount, exec.AggCountMerge:
		return types.Int64
	case exec.AggAvg, exec.AggAvgMerge:
		return types.Float64
	case exec.AggSum:
		if d.Arg != nil && d.Arg.Type().Physical() == types.Float64 {
			return types.Float64
		}
		return types.Int64
	default:
		if d.Arg != nil {
			return d.Arg.Type()
		}
		return types.Unknown
	}
}

// segColsCovered reports whether every segmentation column position
// appears as a plain column-reference group key.
func segColsCovered(segCols []int, keys []expr.Expr, schema types.Schema) bool {
	for _, sc := range segCols {
		covered := false
		for _, k := range keys {
			if c, ok := k.(*expr.ColumnRef); ok && c.Index == sc {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// bindHaving resolves HAVING references: select aliases map to the
// aggregate output columns; bare column names map to group keys.
func (p *sessionPlanner) bindHaving(e expr.Expr, items []sql.SelectItem, outs []outMap, keyNames []string, aggSchema types.Schema) error {
	aliasTo := map[string]string{}
	for i, it := range items {
		var target string
		if outs[i].isKey {
			target = keyNames[outs[i].pos]
		} else {
			target = fmt.Sprintf("_a%d", outs[i].pos)
		}
		aliasTo[strings.ToLower(outputName(it))] = target
		if it.Alias != "" {
			aliasTo[strings.ToLower(it.Alias)] = target
		}
	}
	var rewrite func(expr.Expr) error
	rewrite = func(x expr.Expr) error {
		switch n := x.(type) {
		case *expr.ColumnRef:
			if t, ok := aliasTo[strings.ToLower(n.Name)]; ok {
				n.Name = t
			}
			return nil
		case *expr.Binary:
			if err := rewrite(n.L); err != nil {
				return err
			}
			return rewrite(n.R)
		case *expr.Unary:
			return rewrite(n.E)
		case *expr.IsNull:
			return rewrite(n.E)
		case *expr.In:
			if err := rewrite(n.E); err != nil {
				return err
			}
			for _, a := range n.List {
				if err := rewrite(a); err != nil {
					return err
				}
			}
			return nil
		case *expr.Like:
			return rewrite(n.E)
		case *expr.Case:
			for _, w := range n.Whens {
				if err := rewrite(w.Cond); err != nil {
					return err
				}
				if err := rewrite(w.Then); err != nil {
					return err
				}
			}
			if n.Else != nil {
				return rewrite(n.Else)
			}
			return nil
		case *expr.Func:
			for _, a := range n.Args {
				if err := rewrite(a); err != nil {
					return err
				}
			}
			return nil
		}
		return nil
	}
	if err := rewrite(e); err != nil {
		return err
	}
	return resolveAndBind(e, aggSchema)
}

// orderKeys resolves ORDER BY items to output column positions.
func (p *sessionPlanner) orderKeys(orderBy []sql.OrderItem, outSchema types.Schema, outputNames []string) ([]exec.SortSpec, error) {
	var keys []exec.SortSpec
	for _, o := range orderBy {
		if o.Position > 0 {
			if o.Position > len(outSchema) {
				return nil, fmt.Errorf("planner: ORDER BY position %d out of range", o.Position)
			}
			keys = append(keys, exec.SortSpec{Col: o.Position - 1, Desc: o.Desc})
			continue
		}
		// Match an output name / alias first.
		if c, ok := o.Expr.(*expr.ColumnRef); ok {
			matched := -1
			for i, n := range outputNames {
				if strings.EqualFold(n, c.Name) || strings.EqualFold(baseColumn(n), baseColumn(c.Name)) {
					matched = i
					break
				}
			}
			if matched >= 0 {
				keys = append(keys, exec.SortSpec{Col: matched, Desc: o.Desc})
				continue
			}
		}
		return nil, fmt.Errorf("planner: ORDER BY must reference an output column (got %s)", o.Expr)
	}
	return keys, nil
}
