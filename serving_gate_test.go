package eon

import (
	"os"
	"testing"

	"eon/internal/experiments"
)

// TestServingGate enforces the serving-path acceptance criteria: with
// the plan and result caches on, hot-query throughput must be at least
// 2x the uncached serving path, and past the per-subcluster admission
// cap the latency tail must stay bounded — FIFO queueing with no
// starvation (p99 within a small multiple of p50) and zero timeouts for
// deadline-free sessions. It is a benchmark in test clothing, so it only
// runs under `make serving` (EON_SERVING_GATE=1); plain `go test ./...`
// skips it to keep tier-1 runs deterministic.
func TestServingGate(t *testing.T) {
	if os.Getenv("EON_SERVING_GATE") != "1" {
		t.Skip("set EON_SERVING_GATE=1 (make serving) to run the serving gate")
	}
	const (
		attempts    = 3
		minSpeedup  = 2.0
		maxTailOver = 10 // p99 <= 10 * p50
	)
	var last experiments.ServingResult
	for i := 0; i < attempts; i++ {
		res, err := experiments.ServingThroughput(experiments.ServingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		last = res
		t.Logf("attempt %d: cached=%.0f qpm uncached=%.0f qpm (%.2fx), admission p50=%v p99=%v queued=%d timeouts=%d",
			i+1, res.CachedQPM, res.UncachedQPM, res.CachedQPM/res.UncachedQPM,
			res.AdmissionP50, res.AdmissionP99, res.AdmissionQueued, res.AdmissionTimeouts)
		if res.AdmissionTimeouts != 0 {
			t.Fatalf("admission dropped %d deadline-free queries", res.AdmissionTimeouts)
		}
		if res.AdmissionQueued == 0 {
			t.Fatal("admission phase never queued — the cap did not bite, the tail bound is vacuous")
		}
		if res.CachedQPM >= minSpeedup*res.UncachedQPM &&
			res.AdmissionP99 <= maxTailOver*res.AdmissionP50 {
			return
		}
	}
	if last.CachedQPM < minSpeedup*last.UncachedQPM {
		t.Errorf("cached hot-query throughput %.0f qpm is under %gx the uncached %.0f qpm after %d attempts",
			last.CachedQPM, minSpeedup, last.UncachedQPM, attempts)
	}
	if last.AdmissionP99 > maxTailOver*last.AdmissionP50 {
		t.Errorf("admission p99 %v exceeds %dx p50 %v after %d attempts",
			last.AdmissionP99, maxTailOver, last.AdmissionP50, attempts)
	}
}
