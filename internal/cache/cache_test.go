package cache

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"eon/internal/udfs"
)

func newTestCache(capacity int64) *Cache {
	return New(udfs.NewMemFS(), "cache", capacity)
}

// countingFetcher returns data of the requested size and counts calls.
type countingFetcher struct {
	data  map[string][]byte
	calls int
}

func (f *countingFetcher) fetch(ctx context.Context, path string) ([]byte, error) {
	f.calls++
	d, ok := f.data[path]
	if !ok {
		return nil, errors.New("no such object")
	}
	return d, nil
}

func TestGetMissThenHit(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(1024)
	f := &countingFetcher{data: map[string][]byte{"a": []byte("hello")}}

	got, err := c.Get(ctx, "a", f.fetch, false)
	if err != nil || string(got) != "hello" {
		t.Fatalf("get = %q, %v", got, err)
	}
	got, err = c.Get(ctx, "a", f.fetch, false)
	if err != nil || string(got) != "hello" {
		t.Fatalf("second get = %q, %v", got, err)
	}
	if f.calls != 1 {
		t.Errorf("fetcher called %d times, want 1", f.calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(10)
	f := &countingFetcher{data: map[string][]byte{
		"a": make([]byte, 4), "b": make([]byte, 4), "c": make([]byte, 4),
	}}
	c.Get(ctx, "a", f.fetch, false)
	c.Get(ctx, "b", f.fetch, false)
	c.Get(ctx, "a", f.fetch, false) // touch a, making b the LRU
	c.Get(ctx, "c", f.fetch, false) // evicts b
	if !c.Contains("a") || !c.Contains("c") {
		t.Error("a and c should be cached")
	}
	if c.Contains("b") {
		t.Error("b should have been evicted as LRU")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestOversizeFileNotAdmitted(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(4)
	f := &countingFetcher{data: map[string][]byte{"big": make([]byte, 100)}}
	got, err := c.Get(ctx, "big", f.fetch, false)
	if err != nil || len(got) != 100 {
		t.Fatalf("oversize read must still succeed: %v", err)
	}
	if c.Contains("big") {
		t.Error("oversize file must not be admitted")
	}
}

func TestPutWriteThrough(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	if err := c.Put(ctx, "loaded", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("loaded") {
		t.Error("write-through file should be cached")
	}
	f := &countingFetcher{data: map[string][]byte{}}
	got, err := c.Get(ctx, "loaded", f.fetch, false)
	if err != nil || string(got) != "xyz" || f.calls != 0 {
		t.Errorf("cached read = %q calls=%d err=%v", got, f.calls, err)
	}
}

func TestBypassPerCall(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	f := &countingFetcher{data: map[string][]byte{"a": []byte("v")}}
	c.Get(ctx, "a", f.fetch, true)
	if c.Contains("a") {
		t.Error("bypassed get must not admit")
	}
}

func TestShapingPolicyBypass(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	c.SetPolicy(func(path string) Policy {
		if path == "never" {
			return PolicyBypass
		}
		return PolicyDefault
	})
	f := &countingFetcher{data: map[string][]byte{"never": []byte("v"), "ok": []byte("v")}}
	c.Get(ctx, "never", f.fetch, false)
	c.Get(ctx, "ok", f.fetch, false)
	if c.Contains("never") {
		t.Error("never-cache policy violated")
	}
	if !c.Contains("ok") {
		t.Error("default policy file should cache")
	}
	if err := c.Put(ctx, "never", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if c.Contains("never") {
		t.Error("write-through must respect bypass policy")
	}
}

func TestPinnedNotEvicted(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(10)
	c.SetPolicy(func(path string) Policy {
		if path == "pinned" {
			return PolicyPin
		}
		return PolicyDefault
	})
	c.Put(ctx, "pinned", make([]byte, 6))
	f := &countingFetcher{data: map[string][]byte{"x": make([]byte, 4), "y": make([]byte, 4)}}
	c.Get(ctx, "x", f.fetch, false)
	c.Get(ctx, "y", f.fetch, false) // must evict x, not pinned
	if !c.Contains("pinned") {
		t.Error("pinned file evicted")
	}
	if c.Contains("x") {
		t.Error("x should have been evicted")
	}
}

func TestAdmitFailsWhenAllPinned(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(10)
	c.SetPolicy(func(path string) Policy {
		if path == "p1" || path == "p2" {
			return PolicyPin
		}
		return PolicyDefault
	})
	c.Put(ctx, "p1", make([]byte, 5))
	c.Put(ctx, "p2", make([]byte, 5))
	if err := c.Put(ctx, "new", make([]byte, 5)); err == nil {
		t.Error("admit should fail when pinned bytes block eviction")
	}
}

func TestDrop(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	c.Put(ctx, "a", []byte("v"))
	c.Drop(ctx, "a")
	if c.Contains("a") {
		t.Error("dropped file still present")
	}
	c.Drop(ctx, "missing") // must not panic
}

func TestClear(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	c.Put(ctx, "a", []byte("1"))
	c.Put(ctx, "b", []byte("2"))
	c.Clear(ctx)
	st := c.Stats()
	if st.Files != 0 || st.BytesCached != 0 {
		t.Errorf("after clear: %+v", st)
	}
}

func TestMostRecentlyUsedBudget(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	for i := 0; i < 5; i++ {
		c.Put(ctx, fmt.Sprintf("f%d", i), make([]byte, 10))
	}
	// MRU order is f4, f3, f2, f1, f0. Budget of 25 fits two files.
	got := c.MostRecentlyUsed(25)
	if len(got) != 2 || got[0] != "f4" || got[1] != "f3" {
		t.Errorf("MRU list = %v", got)
	}
	all := c.MostRecentlyUsed(1000)
	if len(all) != 5 {
		t.Errorf("full MRU = %v", all)
	}
}

func TestPeerWarming(t *testing.T) {
	ctx := context.Background()
	// Peer has a warm cache; the new node warms from the peer's MRU list.
	peer := newTestCache(100)
	peer.Put(ctx, "hot1", []byte("aaaa"))
	peer.Put(ctx, "hot2", []byte("bbbb"))

	newNode := newTestCache(100)
	list := peer.MostRecentlyUsed(newNode.Capacity())
	warmed := newNode.Warm(ctx, list, func(ctx context.Context, path string) ([]byte, error) {
		// Fetch from the peer itself (§5.2: "fetch the files from shared
		// storage or from the peer").
		if data, ok := peer.ReadCached(ctx, path); ok {
			return data, nil
		}
		return nil, errors.New("peer miss")
	}, 4)
	if warmed != 2 {
		t.Fatalf("warmed %d files", warmed)
	}
	if !newNode.Contains("hot1") || !newNode.Contains("hot2") {
		t.Error("warming incomplete")
	}
	// The peer's most recent file should also be most recent on the new
	// node.
	if got := newNode.MostRecentlyUsed(1000); got[0] != "hot2" {
		t.Errorf("warmed MRU order = %v", got)
	}
}

func TestWarmSkipsFailures(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	warmed := c.Warm(ctx, []string{"ok", "broken"}, func(ctx context.Context, path string) ([]byte, error) {
		if path == "broken" {
			return nil, errors.New("fetch failed")
		}
		return []byte("v"), nil
	}, 1)
	if warmed != 1 || !c.Contains("ok") || c.Contains("broken") {
		t.Errorf("warm with failure: warmed=%d", warmed)
	}
}

func TestReadCached(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	c.Put(ctx, "a", []byte("data"))
	got, ok := c.ReadCached(ctx, "a")
	if !ok || string(got) != "data" {
		t.Error("readcached should serve without fetch")
	}
	if _, ok := c.ReadCached(ctx, "nope"); ok {
		t.Error("missing file should not read")
	}
	// ReadCached must not perturb hit/miss stats.
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats perturbed: %+v", st)
	}
}

func TestImmutableReAdmitIsNoop(t *testing.T) {
	ctx := context.Background()
	c := newTestCache(100)
	c.Put(ctx, "a", []byte("v1"))
	if err := c.Put(ctx, "a", []byte("v2")); err != nil {
		t.Fatalf("re-put of immutable file should be a no-op, got %v", err)
	}
	got, _ := c.ReadCached(ctx, "a")
	if string(got) != "v1" {
		t.Error("file contents must never change")
	}
}
