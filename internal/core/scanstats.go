package core

import (
	"sync/atomic"
	"time"

	"eon/internal/expr"
	"eon/internal/obs"
)

// ScanStats is a snapshot of scan-path instrumentation: what a query (or
// the whole database, for the cumulative view) did against storage —
// pruning effectiveness, bytes moved, cache behaviour, and where the
// time went. Time counters are cumulative across the scan's concurrent
// workers, so under a parallel scan they can exceed the query's wall
// time; the ratio IO/(IO+Decode+Filter) still shows where the work is.
type ScanStats struct {
	// ContainersScanned / ContainersPruned count containers read vs
	// skipped whole by catalog min/max stats (§2.1).
	ContainersScanned int64
	ContainersPruned  int64
	// BlocksScanned / BlocksPruned count blocks decoded vs skipped by
	// the position index's per-block min/max (§2.3).
	BlocksScanned int64
	BlocksPruned  int64
	// RowsScanned counts rows decoded before delete/predicate filtering.
	RowsScanned int64
	// Fetches and BytesFetched count storage-file reads issued by the
	// scan (through the cache or directly) and the bytes they returned.
	Fetches      int64
	BytesFetched int64
	// CacheHits/CacheMisses/CoalescedFetches classify the cache reads;
	// a coalesced fetch is a miss that joined another scan's in-flight
	// fetch of the same path instead of issuing its own (single-flight).
	CacheHits        int64
	CacheMisses      int64
	CoalescedFetches int64
	// RowsVectorized / RowsFallback split expression evaluation between
	// the typed batch kernels and the per-row fallback: RowsVectorized
	// counts rows entering a vectorized evaluation (scan predicates and
	// operator expressions alike) and RowsFallback counts rows that had
	// to be re-evaluated row-at-a-time because an expression node had no
	// kernel. RowsFallback == 0 means full kernel coverage.
	RowsVectorized int64
	RowsFallback   int64
	// IOWait / Decode / Filter split the scan's working time: blocked on
	// file reads, decoding blocks, and evaluating deletes + predicates.
	IOWait time.Duration
	Decode time.Duration
	Filter time.Duration
	// Wall is the end-to-end execution wall time of the query (only set
	// on per-query snapshots, not on the cumulative database view).
	Wall time.Duration
}

// Add accumulates other into s.
func (s *ScanStats) Add(other ScanStats) {
	s.ContainersScanned += other.ContainersScanned
	s.ContainersPruned += other.ContainersPruned
	s.BlocksScanned += other.BlocksScanned
	s.BlocksPruned += other.BlocksPruned
	s.RowsScanned += other.RowsScanned
	s.Fetches += other.Fetches
	s.BytesFetched += other.BytesFetched
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.CoalescedFetches += other.CoalescedFetches
	s.RowsVectorized += other.RowsVectorized
	s.RowsFallback += other.RowsFallback
	s.IOWait += other.IOWait
	s.Decode += other.Decode
	s.Filter += other.Filter
	s.Wall += other.Wall
}

// scanTally is the mutable, concurrency-safe accumulator behind a
// query's ScanStats, hung off the queryEnv and written by every scan
// worker. The database's cumulative view lives in the metrics registry
// (scanMetrics); per-query snapshots are folded into it after each
// query. A nil *scanTally is valid and drops all records, so maintenance
// paths can share the scan helpers without instrumentation.
type scanTally struct {
	// vec holds the vectorized/fallback row counters; expression
	// evaluation writes it directly (it is handed to EvalVec/FilterVec).
	vec expr.VecStats

	containersScanned atomic.Int64
	containersPruned  atomic.Int64
	blocksScanned     atomic.Int64
	blocksPruned      atomic.Int64
	rowsScanned       atomic.Int64
	fetches           atomic.Int64
	bytesFetched      atomic.Int64
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	coalescedFetches  atomic.Int64
	ioWaitNanos       atomic.Int64
	decodeNanos       atomic.Int64
	filterNanos       atomic.Int64
	wallNanos         atomic.Int64
}

// vecStats exposes the vectorized-row counters for handing to
// expr.EvalVec/FilterVec. Nil-safe (a nil *expr.VecStats drops counts).
func (t *scanTally) vecStats() *expr.VecStats {
	if t == nil {
		return nil
	}
	return &t.vec
}

func (t *scanTally) addIOWait(d time.Duration) { t.ioWaitNanos.Add(int64(d)) }
func (t *scanTally) addDecode(d time.Duration) { t.decodeNanos.Add(int64(d)) }
func (t *scanTally) addFilter(d time.Duration) { t.filterNanos.Add(int64(d)) }

// snapshot converts the tally into a ScanStats value.
func (t *scanTally) snapshot() ScanStats {
	return ScanStats{
		ContainersScanned: t.containersScanned.Load(),
		ContainersPruned:  t.containersPruned.Load(),
		BlocksScanned:     t.blocksScanned.Load(),
		BlocksPruned:      t.blocksPruned.Load(),
		RowsScanned:       t.rowsScanned.Load(),
		Fetches:           t.fetches.Load(),
		BytesFetched:      t.bytesFetched.Load(),
		CacheHits:         t.cacheHits.Load(),
		CacheMisses:       t.cacheMisses.Load(),
		CoalescedFetches:  t.coalescedFetches.Load(),
		RowsVectorized:    t.vec.Vectorized.Load(),
		RowsFallback:      t.vec.Fallback.Load(),
		IOWait:            time.Duration(t.ioWaitNanos.Load()),
		Decode:            time.Duration(t.decodeNanos.Load()),
		Filter:            time.Duration(t.filterNanos.Load()),
		Wall:              time.Duration(t.wallNanos.Load()),
	}
}

// scanMetrics is the database's cumulative scan instrumentation, held as
// registry counters under the "scan." prefix — DB.ScanStats() is a
// derived snapshot over the registry, not a parallel accumulator.
type scanMetrics struct {
	containersScanned *obs.Counter
	containersPruned  *obs.Counter
	blocksScanned     *obs.Counter
	blocksPruned      *obs.Counter
	rowsScanned       *obs.Counter
	fetches           *obs.Counter
	bytesFetched      *obs.Counter
	cacheHits         *obs.Counter
	cacheMisses       *obs.Counter
	coalescedFetches  *obs.Counter
	rowsVectorized    *obs.Counter
	rowsFallback      *obs.Counter
	ioWaitNanos       *obs.Counter
	decodeNanos       *obs.Counter
	filterNanos       *obs.Counter
	wallNanos         *obs.Counter
}

// init creates the counters in reg. A nil registry yields nil counters,
// which drop adds.
func (m *scanMetrics) init(reg *obs.Registry) {
	m.containersScanned = reg.Counter("scan.containers_scanned")
	m.containersPruned = reg.Counter("scan.containers_pruned")
	m.blocksScanned = reg.Counter("scan.blocks_scanned")
	m.blocksPruned = reg.Counter("scan.blocks_pruned")
	m.rowsScanned = reg.Counter("scan.rows_scanned")
	m.fetches = reg.Counter("scan.fetches")
	m.bytesFetched = reg.Counter("scan.bytes_fetched")
	m.cacheHits = reg.Counter("scan.cache_hits")
	m.cacheMisses = reg.Counter("scan.cache_misses")
	m.coalescedFetches = reg.Counter("scan.coalesced_fetches")
	m.rowsVectorized = reg.Counter("scan.rows_vectorized")
	m.rowsFallback = reg.Counter("scan.rows_fallback")
	m.ioWaitNanos = reg.Counter("scan.io_wait_ns")
	m.decodeNanos = reg.Counter("scan.decode_ns")
	m.filterNanos = reg.Counter("scan.filter_ns")
	m.wallNanos = reg.Counter("scan.wall_ns")
}

// add folds a per-query snapshot into the cumulative registry counters.
func (m *scanMetrics) add(s ScanStats) {
	m.containersScanned.Add(s.ContainersScanned)
	m.containersPruned.Add(s.ContainersPruned)
	m.blocksScanned.Add(s.BlocksScanned)
	m.blocksPruned.Add(s.BlocksPruned)
	m.rowsScanned.Add(s.RowsScanned)
	m.fetches.Add(s.Fetches)
	m.bytesFetched.Add(s.BytesFetched)
	m.cacheHits.Add(s.CacheHits)
	m.cacheMisses.Add(s.CacheMisses)
	m.coalescedFetches.Add(s.CoalescedFetches)
	m.rowsVectorized.Add(s.RowsVectorized)
	m.rowsFallback.Add(s.RowsFallback)
	m.ioWaitNanos.Add(int64(s.IOWait))
	m.decodeNanos.Add(int64(s.Decode))
	m.filterNanos.Add(int64(s.Filter))
	m.wallNanos.Add(int64(s.Wall))
}

// snapshot derives the cumulative ScanStats view from the registry
// counters.
func (m *scanMetrics) snapshot() ScanStats {
	return ScanStats{
		ContainersScanned: m.containersScanned.Value(),
		ContainersPruned:  m.containersPruned.Value(),
		BlocksScanned:     m.blocksScanned.Value(),
		BlocksPruned:      m.blocksPruned.Value(),
		RowsScanned:       m.rowsScanned.Value(),
		Fetches:           m.fetches.Value(),
		BytesFetched:      m.bytesFetched.Value(),
		CacheHits:         m.cacheHits.Value(),
		CacheMisses:       m.cacheMisses.Value(),
		CoalescedFetches:  m.coalescedFetches.Value(),
		RowsVectorized:    m.rowsVectorized.Value(),
		RowsFallback:      m.rowsFallback.Value(),
		IOWait:            time.Duration(m.ioWaitNanos.Value()),
		Decode:            time.Duration(m.decodeNanos.Value()),
		Filter:            time.Duration(m.filterNanos.Value()),
		Wall:              time.Duration(m.wallNanos.Value()),
	}
}
