package planner

import (
	"testing"

	"eon/internal/catalog"
	"eon/internal/sql"
	"eon/internal/types"
)

// testCatalog builds: orders(o_id, o_cust, o_amount, o_date) segmented by
// o_cust; customers(c_id, c_name, c_region) segmented by c_id; dim(d_id,
// d_label) replicated; plus a narrow orders projection (o_cust, o_amount)
// segmented by o_cust.
func testCatalog(t *testing.T) *catalog.Snapshot {
	t.Helper()
	c := catalog.New()
	txn := c.Begin()

	orders := &catalog.Table{OID: c.NewOID(), Name: "orders", Columns: types.Schema{
		{Name: "o_id", Type: types.Int64},
		{Name: "o_cust", Type: types.Int64},
		{Name: "o_amount", Type: types.Float64},
		{Name: "o_date", Type: types.Date},
	}}
	txn.Put(orders)
	ordersP := &catalog.Projection{
		OID: c.NewOID(), TableOID: orders.OID, Name: "orders_super",
		Columns: []string{"o_id", "o_cust", "o_amount", "o_date"},
		SortKey: []string{"o_date"}, SegmentCols: []string{"o_cust"},
	}
	txn.Put(ordersP)
	ordersNarrow := &catalog.Projection{
		OID: c.NewOID(), TableOID: orders.OID, Name: "orders_narrow",
		Columns: []string{"o_cust", "o_amount"},
		SortKey: []string{"o_cust"}, SegmentCols: []string{"o_cust"},
	}
	txn.Put(ordersNarrow)

	customers := &catalog.Table{OID: c.NewOID(), Name: "customers", Columns: types.Schema{
		{Name: "c_id", Type: types.Int64},
		{Name: "c_name", Type: types.Varchar},
		{Name: "c_region", Type: types.Varchar},
	}}
	txn.Put(customers)
	customersP := &catalog.Projection{
		OID: c.NewOID(), TableOID: customers.OID, Name: "customers_super",
		Columns: []string{"c_id", "c_name", "c_region"},
		SortKey: []string{"c_id"}, SegmentCols: []string{"c_id"},
	}
	txn.Put(customersP)

	dim := &catalog.Table{OID: c.NewOID(), Name: "dim", Columns: types.Schema{
		{Name: "d_id", Type: types.Int64},
		{Name: "d_label", Type: types.Varchar},
	}}
	txn.Put(dim)
	dimP := &catalog.Projection{
		OID: c.NewOID(), TableOID: dim.OID, Name: "dim_rep",
		Columns: []string{"d_id", "d_label"}, SortKey: []string{"d_id"},
	}
	txn.Put(dimP)

	if _, err := c.Commit(txn); err != nil {
		t.Fatal(err)
	}
	return c.Snapshot()
}

func planQuery(t *testing.T, snap *catalog.Snapshot, q string) *Plan {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := PlanSelect(stmt.(*sql.Select), Options{Snapshot: snap})
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return plan
}

func findScan(n Node) *Scan {
	switch t := n.(type) {
	case *Scan:
		return t
	case *Filter:
		return findScan(t.Input)
	case *Join:
		return findScan(t.Left)
	case *Project:
		return findScan(t.Input)
	case *Aggregate:
		return findScan(t.Input)
	case *DistinctNode:
		return findScan(t.Input)
	case *Sort:
		return findScan(t.Input)
	case *Limit:
		return findScan(t.Input)
	}
	return nil
}

func findJoin(n Node) *Join {
	switch t := n.(type) {
	case *Join:
		return t
	case *Filter:
		return findJoin(t.Input)
	case *Project:
		return findJoin(t.Input)
	case *Aggregate:
		return findJoin(t.Input)
	case *DistinctNode:
		return findJoin(t.Input)
	case *Sort:
		return findJoin(t.Input)
	case *Limit:
		return findJoin(t.Input)
	}
	return nil
}

func findAgg(n Node) *Aggregate {
	switch t := n.(type) {
	case *Aggregate:
		return t
	case *Filter:
		return findAgg(t.Input)
	case *Project:
		return findAgg(t.Input)
	case *DistinctNode:
		return findAgg(t.Input)
	case *Sort:
		return findAgg(t.Input)
	case *Limit:
		return findAgg(t.Input)
	}
	return nil
}

func TestPlanSimpleScan(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap, `SELECT o_id, o_amount FROM orders WHERE o_amount > 100`)
	scan := findScan(plan.Root)
	if scan == nil {
		t.Fatal("no scan")
	}
	if scan.Proj.Name != "orders_super" {
		t.Errorf("projection = %s", scan.Proj.Name)
	}
	if scan.Pred == nil {
		t.Error("predicate should be pushed to scan")
	}
	if len(scan.Cols) != 2 {
		t.Errorf("scan cols = %v (should read only needed columns)", scan.Cols)
	}
	if len(plan.OutputNames) != 2 || plan.OutputNames[0] != "o_id" {
		t.Errorf("outputs = %v", plan.OutputNames)
	}
}

func TestPlanNarrowProjectionChosen(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap, `SELECT o_cust, o_amount FROM orders`)
	scan := findScan(plan.Root)
	if scan.Proj.Name != "orders_narrow" {
		t.Errorf("narrow projection should win, got %s", scan.Proj.Name)
	}
}

func TestPlanCoSegmentedJoinIsLocal(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o.o_id, c.c_name FROM orders o JOIN customers c ON o.o_cust = c.c_id`)
	j := findJoin(plan.Root)
	if j == nil {
		t.Fatal("no join")
	}
	if j.Strategy != JoinLocal {
		t.Errorf("co-segmented join should be LOCAL, got %v", j.Strategy)
	}
}

func TestPlanReplicatedJoinIsLocal(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o.o_id, d.d_label FROM orders o JOIN dim d ON o.o_id = d.d_id`)
	j := findJoin(plan.Root)
	if j.Strategy != JoinLocal {
		t.Errorf("replicated-side join should be LOCAL, got %v", j.Strategy)
	}
}

func TestPlanNonCoSegmentedJoinReshuffles(t *testing.T) {
	snap := testCatalog(t)
	// Join on o_id (orders segmented by o_cust): not co-segmented.
	plan := planQuery(t, snap,
		`SELECT o.o_amount, c.c_name FROM orders o JOIN customers c ON o.o_id = c.c_id`)
	j := findJoin(plan.Root)
	if j.Strategy == JoinLocal {
		t.Errorf("join on non-segmentation key must not be LOCAL")
	}
}

func TestPlanBroadcastSmallTable(t *testing.T) {
	snap := testCatalog(t)
	stmt, _ := sql.Parse(`SELECT o.o_amount, c.c_name FROM orders o JOIN customers c ON o.o_id = c.c_id`)
	plan, err := PlanSelect(stmt.(*sql.Select), Options{Snapshot: snap, BroadcastRowLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	j := findJoin(plan.Root)
	// customers has no containers (0 rows) -> broadcast under the limit.
	if j.Strategy != JoinBroadcastRight {
		t.Errorf("small right side should broadcast, got %v", j.Strategy)
	}
}

func TestPlanGroupByOnSegmentationIsLocal(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o_cust, SUM(o_amount) AS total FROM orders GROUP BY o_cust`)
	agg := findAgg(plan.Root)
	if agg == nil {
		t.Fatal("no aggregate")
	}
	if agg.Mode != AggLocalFinal {
		t.Errorf("group by segmentation column should be LOCAL, got %v", agg.Mode)
	}
}

func TestPlanGroupByOtherColumnTwoPhase(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o_date, SUM(o_amount) AS total FROM orders GROUP BY o_date`)
	agg := findAgg(plan.Root)
	if agg.Mode != AggTwoPhase {
		t.Errorf("group by non-segmentation column should be TWO-PHASE, got %v", agg.Mode)
	}
}

func TestPlanGlobalAggregate(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap, `SELECT COUNT(*), SUM(o_amount) FROM orders`)
	agg := findAgg(plan.Root)
	if agg == nil || len(agg.Keys) != 0 {
		t.Fatal("global aggregate expected")
	}
	if agg.Mode != AggTwoPhase {
		t.Errorf("global agg mode = %v", agg.Mode)
	}
}

func TestPlanCountDistinct(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o_date, COUNT(DISTINCT o_id) AS n FROM orders GROUP BY o_date`)
	agg := findAgg(plan.Root)
	if agg == nil {
		t.Fatal("no aggregate")
	}
	if agg.Mode != AggInitiatorOnly {
		t.Errorf("count distinct on non-seg keys should be INITIATOR, got %v", agg.Mode)
	}
	// There must be a DistinctNode below the aggregate.
	if _, ok := agg.Input.(*DistinctNode); !ok {
		t.Errorf("aggregate input should be DistinctNode, got %T", agg.Input)
	}
}

func TestPlanCountDistinctCoSegmented(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o_cust, COUNT(DISTINCT o_id) AS n FROM orders GROUP BY o_cust`)
	agg := findAgg(plan.Root)
	if agg.Mode != AggLocalFinal {
		t.Errorf("count distinct grouped by segmentation should be LOCAL, got %v", agg.Mode)
	}
}

func TestPlanCountDistinctMixedRejected(t *testing.T) {
	snap := testCatalog(t)
	stmt, _ := sql.Parse(`SELECT o_date, COUNT(DISTINCT o_id), SUM(o_amount) FROM orders GROUP BY o_date`)
	if _, err := PlanSelect(stmt.(*sql.Select), Options{Snapshot: snap}); err == nil {
		t.Error("mixed COUNT DISTINCT should be rejected")
	}
}

func TestPlanHaving(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o_cust, SUM(o_amount) AS total FROM orders GROUP BY o_cust HAVING total > 100`)
	// Root should be Project over Filter over Aggregate.
	proj, ok := plan.Root.(*Project)
	if !ok {
		t.Fatalf("root = %T", plan.Root)
	}
	if _, ok := proj.Input.(*Filter); !ok {
		t.Errorf("expected HAVING filter under projection, got %T", proj.Input)
	}
}

func TestPlanOrderByAndLimit(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o_cust, SUM(o_amount) AS total FROM orders GROUP BY o_cust ORDER BY total DESC LIMIT 10`)
	lim, ok := plan.Root.(*Limit)
	if !ok || lim.N != 10 {
		t.Fatalf("root = %T", plan.Root)
	}
	srt, ok := lim.Input.(*Sort)
	if !ok || len(srt.Keys) != 1 || !srt.Keys[0].Desc || srt.Keys[0].Col != 1 {
		t.Errorf("sort = %+v", srt)
	}
}

func TestPlanOrderByPosition(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap, `SELECT o_id, o_amount FROM orders ORDER BY 2 DESC`)
	var srt *Sort
	if l, ok := plan.Root.(*Limit); ok {
		srt = l.Input.(*Sort)
	} else {
		srt = plan.Root.(*Sort)
	}
	if srt.Keys[0].Col != 1 || !srt.Keys[0].Desc {
		t.Errorf("sort = %+v", srt.Keys)
	}
}

func TestPlanSelectStar(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap, `SELECT * FROM customers`)
	if len(plan.OutputNames) != 3 {
		t.Errorf("star expansion = %v", plan.OutputNames)
	}
}

func TestPlanDistinct(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap, `SELECT DISTINCT c_region FROM customers`)
	if _, ok := plan.Root.(*DistinctNode); !ok {
		t.Errorf("root = %T, want DistinctNode", plan.Root)
	}
}

func TestPlanErrors(t *testing.T) {
	snap := testCatalog(t)
	bad := []string{
		`SELECT x FROM orders`,
		`SELECT o_id FROM nosuch`,
		`SELECT o_id FROM orders GROUP BY o_cust`, // o_id not in group by
		`SELECT o.o_id, c.c_name FROM orders o JOIN customers c ON o.o_id > c.c_id`, // no equi key
		`SELECT o_id FROM orders HAVING o_id > 1`,                                   // having without agg
		`SELECT o_id FROM orders ORDER BY nosuchcol`,
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := PlanSelect(stmt.(*sql.Select), Options{Snapshot: snap}); err == nil {
			t.Errorf("PlanSelect(%q) should fail", q)
		}
	}
}

func TestPlanAmbiguousColumn(t *testing.T) {
	snap := testCatalog(t)
	// Self-join: bare o_id is ambiguous.
	stmt, _ := sql.Parse(`SELECT o_id FROM orders a JOIN orders b ON a.o_cust = b.o_cust`)
	if _, err := PlanSelect(stmt.(*sql.Select), Options{Snapshot: snap}); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestPlanQualifiedDisambiguation(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT a.o_id, b.o_id FROM orders a JOIN orders b ON a.o_cust = b.o_cust`)
	if len(plan.OutputNames) != 2 {
		t.Errorf("outputs = %v", plan.OutputNames)
	}
}

func TestPlanResidualJoinPredicate(t *testing.T) {
	snap := testCatalog(t)
	plan := planQuery(t, snap,
		`SELECT o.o_id, c.c_name FROM orders o JOIN customers c ON o.o_cust = c.c_id AND o.o_amount > 10`)
	j := findJoin(plan.Root)
	if j.ResidualPred == nil {
		t.Error("non-equi conjunct should become residual predicate")
	}
	if len(j.LeftKeys) != 1 {
		t.Errorf("keys = %v", j.LeftKeys)
	}
}
