package core

import (
	"fmt"

	"eon/internal/catalog"
)

// Warm spares (Eon only). A spare is a fully provisioned cluster member
// held outside every subcluster: it participates in the commit fan-out,
// holds a PASSIVE subscription on every shard — which keeps its catalog
// current and, because commit-time file shipping targets subscribers in
// any state, keeps its depot warm — but serves no queries and owns no
// writes. Promotion on node death is therefore a single catalog commit
// flipping PASSIVE to ACTIVE, not a cold revive with metadata transfer
// and cache warming (paper §3.3 Figure 4, §6.1; the production pattern
// behind the Vertica spare-node deployments).

// spareNames lists the spare nodes in a snapshot, excluding `except`
// (pass "" to exclude none). Rebalance planning ignores these nodes so
// their PASSIVE pre-subscriptions never satisfy the replication factor.
func spareNames(snap *catalog.Snapshot, except string) []string {
	var out []string
	for _, n := range snap.Nodes() {
		if n.Spare && n.Name != except {
			out = append(out, n.Name)
		}
	}
	return out
}

// ensureSpareSubscriptions drives every shard of a spare to PASSIVE,
// resuming whatever an interrupted earlier attempt left behind.
func (db *DB) ensureSpareSubscriptions(name string, warm bool) error {
	for i := 0; i < db.cfg.ShardCount; i++ {
		if err := db.subscribeTo(name, i, warm, catalog.SubPassive); err != nil {
			return err
		}
	}
	return db.subscribeTo(name, catalog.ReplicaShard, warm, catalog.SubPassive)
}

// AddSpare provisions a warm spare: the node registers, catches up on
// the catalog, pre-subscribes PASSIVE to every shard and pre-warms its
// depot from peers. The call is idempotent — re-running it resumes a
// partially provisioned spare.
func (db *DB) AddSpare(spec NodeSpec) error {
	if db.mode != ModeEon {
		return fmt.Errorf("core: spare nodes require Eon mode")
	}
	if spec.Name == "" {
		return fmt.Errorf("core: spare needs a name")
	}
	if existing, ok := db.Node(spec.Name); ok {
		if !existing.Spare() {
			return fmt.Errorf("core: node %q already exists and is not a spare", spec.Name)
		}
		if !existing.Up() {
			return fmt.Errorf("core: spare %q is down; recover it instead", spec.Name)
		}
	} else {
		db.nodesMu.Lock()
		n := newNode(spec, &db.cfg)
		n.spare = true
		n.up.Store(false) // joins the commit fan-out only once caught up
		db.nodes[spec.Name] = n
		db.order = append(db.order, spec.Name)
		db.nodesMu.Unlock()
		db.slots.register(spec.Name, db.cfg.ExecSlots)
		if spec.Rack != "" {
			db.net.SetRack(spec.Name, spec.Rack)
		}
		db.hookCacheEvictions(n)
		db.commitMu.Lock()
		for _, rec := range db.recordsAfter(n.catalog.Version()) {
			if err := n.catalog.Apply(rec, db.keepFuncFor(n)); err != nil {
				db.commitMu.Unlock()
				return fmt.Errorf("core: spare %s catch-up failed: %w", n.name, err)
			}
		}
		n.up.Store(true)
		db.commitMu.Unlock()
	}
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	if _, ok := init.catalog.Snapshot().NodeByName(spec.Name); !ok {
		txn := init.catalog.Begin()
		txn.Put(&catalog.Node{
			OID: init.catalog.NewOID(), Name: spec.Name,
			Subcluster: spec.Subcluster, Spare: true,
		})
		if _, err := db.commit(init, txn, nil); err != nil {
			return err
		}
	}
	return db.ensureSpareSubscriptions(spec.Name, true)
}

// PromoteSpare installs a warm spare into a subcluster as a serving
// member: one catalog commit flips its PASSIVE subscriptions to ACTIVE
// and clears the spare flag. No catch-up, metadata transfer or cache
// warm is needed — the spare tracked all three continuously. Queued
// queries are kicked so they can re-plan onto the new member.
func (db *DB) PromoteSpare(name, subcluster string) error {
	if db.mode != ModeEon {
		return fmt.Errorf("core: spare nodes require Eon mode")
	}
	n, ok := db.Node(name)
	if !ok {
		return fmt.Errorf("core: unknown node %q", name)
	}
	if !n.Up() {
		return fmt.Errorf("core: cannot promote down spare %q", name)
	}
	// Finish any incomplete pre-subscription (no-op for a fully staged
	// spare); promotion must leave the node ACTIVE on every shard.
	if err := db.ensureSpareSubscriptions(name, false); err != nil {
		return err
	}
	init, err := db.anyUpNode()
	if err != nil {
		return err
	}
	txn := init.catalog.Begin()
	snap := txn.Base()
	nodeObj, ok := snap.NodeByName(name)
	if !ok {
		return fmt.Errorf("core: node %q missing from catalog", name)
	}
	if !nodeObj.Spare {
		// Already promoted (re-entry after an interrupted earlier call):
		// just redo the local bookkeeping.
		n.setMembership(nodeObj.Subcluster, false)
		db.slots.kick()
		return nil
	}
	c := nodeObj.Clone().(*catalog.Node)
	c.Spare = false
	c.Subcluster = subcluster
	txn.Put(c)
	for _, s := range snap.Subscriptions(name) {
		if s.State == catalog.SubPassive {
			cs := s.Clone().(*catalog.Subscription)
			cs.State = catalog.SubActive
			txn.Put(cs)
		}
	}
	if _, err := db.commit(init, txn, nil); err != nil {
		return err
	}
	n.setMembership(subcluster, false)
	db.ensureSubclusterGauges(subcluster)
	db.slots.kick()
	return nil
}

// WarmSpare refreshes a spare's depot from every serving peer's MRU list
// (files already cached are skipped), returning the files admitted. The
// commit-time ship path keeps spares warm continuously; this covers a
// spare that joined after the working set was loaded or was revived with
// a cold cache.
func (db *DB) WarmSpare(name string) (int, error) {
	if db.mode != ModeEon {
		return 0, fmt.Errorf("core: spare nodes require Eon mode")
	}
	n, ok := db.Node(name)
	if !ok {
		return 0, fmt.Errorf("core: unknown node %q", name)
	}
	if !n.Spare() {
		return 0, fmt.Errorf("core: node %q is not a spare", name)
	}
	if !n.Up() || n.cache == nil {
		return 0, fmt.Errorf("core: spare %q is not running", name)
	}
	warmed := 0
	for _, peer := range db.Nodes() {
		if peer == n || !peer.Up() || peer.Spare() || peer.cache == nil {
			continue
		}
		list := peer.cache.MostRecentlyUsed(n.cache.Capacity())
		warmed += warmFromPeer(db, n, peer, list)
	}
	return warmed, nil
}

// WipeNode kills a node and discards its depot, modeling loss of the
// cloud instance itself rather than a process restart: the replacement
// starts with a cold cache (§5.1). This is the failure mode under which
// warm-spare promotion pays off most against a cold RecoverNode.
func (db *DB) WipeNode(name string) error {
	n, ok := db.Node(name)
	if !ok {
		return fmt.Errorf("core: unknown node %q", name)
	}
	if err := db.KillNode(name); err != nil {
		return err
	}
	if n.cache != nil {
		n.cache.Clear(db.Context())
	}
	return nil
}
