package workload

import (
	"fmt"
	"strings"
	"testing"

	"eon/internal/core"
	"eon/internal/types"
)

func setupDB(t *testing.T, mode core.Mode, scale float64) *core.DB {
	t.Helper()
	db, err := core.Create(core.Config{
		Mode: mode,
		Nodes: []core.NodeSpec{
			{Name: "node1"}, {Name: "node2"}, {Name: "node3"},
		},
		ShardCount: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultTPCH(scale)
	s := db.NewSession()
	err = w.Setup(func(sql string) error {
		_, err := s.Execute(sql)
		return err
	}, db.LoadRows)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestTPCHGeneratorDeterministic(t *testing.T) {
	w := DefaultTPCH(0.05)
	a := w.Tables()
	b := w.Tables()
	for name, ba := range a {
		bb := b[name]
		if ba.NumRows() != bb.NumRows() {
			t.Fatalf("%s row count differs", name)
		}
		for i := 0; i < min(ba.NumRows(), 20); i++ {
			if ba.Row(i).String() != bb.Row(i).String() {
				t.Errorf("%s row %d differs", name, i)
			}
		}
	}
}

func TestTPCHSizes(t *testing.T) {
	w := DefaultTPCH(0.1)
	tables := w.Tables()
	if tables["customer"].NumRows() != w.Customers {
		t.Error("customer size")
	}
	if tables["lineitem"].NumRows() != w.Orders*w.LineitemsPerOrder {
		t.Error("lineitem size")
	}
	if tables["nation"].NumRows() == 0 {
		t.Error("nation empty")
	}
}

// All twenty Figure 10 queries must parse, plan and execute in both
// modes, and produce identical results across modes (same data, same
// engine semantics).
func TestAllQueriesBothModesAgree(t *testing.T) {
	scale := 0.05
	eonDB := setupDB(t, core.ModeEon, scale)
	entDB := setupDB(t, core.ModeEnterprise, scale)
	se := eonDB.NewSession()
	sn := entDB.NewSession()
	for _, q := range TPCHQueries() {
		t.Run(q.Name, func(t *testing.T) {
			re, err := se.Query(q.SQL)
			if err != nil {
				t.Fatalf("eon: %v", err)
			}
			rn, err := sn.Query(q.SQL)
			if err != nil {
				t.Fatalf("enterprise: %v", err)
			}
			if re.NumRows() != rn.NumRows() {
				t.Fatalf("row counts differ: eon=%d enterprise=%d", re.NumRows(), rn.NumRows())
			}
			// Compare row sets. Floats are rounded to 9 significant
			// digits: distributed aggregation sums in a different order
			// per mode, so the last bits of float sums legitimately
			// differ.
			eonRows := map[string]int{}
			for _, r := range re.Rows() {
				eonRows[approxKey(r)]++
			}
			for _, r := range rn.Rows() {
				if eonRows[approxKey(r)] == 0 {
					t.Errorf("row %v in enterprise but not eon", r)
					break
				}
				eonRows[approxKey(r)]--
			}
		})
	}
}

func TestDashboardQuery(t *testing.T) {
	db := setupDB(t, core.ModeEon, 0.05)
	s := db.NewSession()
	res, err := s.Query(DashboardQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 || res.NumRows() > 5 {
		t.Errorf("dashboard rows = %d", res.NumRows())
	}
}

func TestNodeDownQuery(t *testing.T) {
	db := setupDB(t, core.ModeEon, 0.05)
	s := db.NewSession()
	res, err := s.Query(NodeDownQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 { // three return flags
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestIoTBatches(t *testing.T) {
	w := DefaultIoT()
	a := w.Batch(1)
	b := w.Batch(1)
	c := w.Batch(2)
	if a.NumRows() != w.RowsPerLoad {
		t.Error("batch size")
	}
	if a.Row(0).String() != b.Row(0).String() {
		t.Error("same seq must be deterministic")
	}
	if a.Row(0).String() == c.Row(0).String() {
		t.Error("different seq should differ")
	}
}

func TestIoTLoadPath(t *testing.T) {
	db, err := core.Create(core.Config{
		Mode:       core.ModeEon,
		Nodes:      []core.NodeSpec{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
		ShardCount: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultIoT()
	s := db.NewSession()
	for _, stmt := range w.DDL() {
		if _, err := s.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 5; i++ {
		if err := db.LoadRows("readings", w.Batch(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Query(`SELECT COUNT(*) FROM readings`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Cols[0].Ints[0] != int64(5*w.RowsPerLoad) {
		t.Errorf("count = %v", res.Rows())
	}
}

// approxKey renders a row with floats at 9 significant digits.
func approxKey(r types.Row) string {
	var sb strings.Builder
	for i, d := range r {
		if i > 0 {
			sb.WriteByte('|')
		}
		if !d.Null && d.K.Physical() == types.Float64 {
			fmt.Fprintf(&sb, "%.9g", d.F)
			continue
		}
		sb.WriteString(d.String())
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
