package objstore

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is a Store backend persisting objects under a host directory.
// Object keys map to file names by hex-encoding, preserving the flat
// namespace and prefix listing without path-traversal concerns.
type Disk struct {
	dir string
	mu  sync.Mutex // serializes create-if-absent checks
}

// NewDisk returns a disk-backed store rooted at dir (created if needed).
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: create %s: %w", dir, err)
	}
	return &Disk{dir: dir}, nil
}

func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(key)))
}

// Put implements Store.
func (d *Disk) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.path(key)
	if _, err := os.Stat(p); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get implements Store.
func (d *Disk) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(d.path(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return data, err
}

// GetRange implements Store.
func (d *Disk) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	data, err := d.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	if offset < 0 || offset > int64(len(data)) {
		return nil, fmt.Errorf("objstore: range [%d,+%d) out of bounds for %s", offset, length, key)
	}
	end := int64(len(data))
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	return data[offset:end], nil
}

// List implements Store.
func (d *Disk) List(ctx context.Context, prefix string) ([]Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var out []Info
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			continue // foreign file
		}
		key := string(raw)
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, Info{Key: key, Size: fi.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Delete implements Store.
func (d *Disk) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := os.Remove(d.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
