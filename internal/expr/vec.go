package expr

import (
	"fmt"
	"strings"
	"sync/atomic"

	"eon/internal/hashring"
	"eon/internal/types"
)

// This file implements the vectorized expression engine: evaluation
// directly over the typed slices of types.Vector, driven by selection
// vectors instead of per-row Datum boxing.
//
// Semantics contract: EvalVec(e, b, sel) position j equals what the row
// engine produces for row sel[j] — EvalRow followed by Vector.Append
// into a vector typed e.Type() (Append's physical-class coercion
// included), which is exactly the EvalBatch contract the operators
// already consume. FilterVec(e, b, sel) equals FilterBatch restricted
// to sel: the rows where e is TRUE (not FALSE, not NULL).
//
// Any node the kernels do not cover falls back to EvalRow for the
// surviving rows only, so semantics never change and coverage is
// observable through VecStats.

// VecStats counts rows processed by the vectorized engine. Vectorized
// is the number of rows entering a top-level EvalVec/FilterVec call;
// Fallback is the number of row-at-a-time EvalRow evaluations performed
// for unsupported expression nodes. Fallback == 0 means the typed
// kernels covered every expression evaluated. Safe for concurrent use;
// a nil *VecStats drops all counts.
type VecStats struct {
	Vectorized atomic.Int64
	Fallback   atomic.Int64
}

func (s *VecStats) addVectorized(n int) {
	if s != nil && n > 0 {
		s.Vectorized.Add(int64(n))
	}
}

func (s *VecStats) addFallback(n int) {
	if s != nil && n > 0 {
		s.Fallback.Add(int64(n))
	}
}

// selCount returns the number of rows a selection covers (nil = all).
func selCount(b *types.Batch, sel []int) int {
	if sel == nil {
		return b.NumRows()
	}
	return len(sel)
}

// rowAt maps a dense position to a batch row index.
func rowAt(sel []int, j int) int {
	if sel == nil {
		return j
	}
	return sel[j]
}

// EvalVec evaluates a bound expression over the selected rows of a
// batch, returning a dense vector with one result per selected row (in
// selection order). A nil sel selects every row.
func EvalVec(e Expr, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	st.addVectorized(selCount(b, sel))
	return evalVec(e, b, sel, st)
}

// FilterVec narrows a selection vector to the rows where the bound
// boolean expression evaluates to TRUE (NULL and FALSE are excluded,
// per SQL WHERE semantics). A nil sel starts from every row. The result
// is always ascending and never aliases sel.
func FilterVec(e Expr, b *types.Batch, sel []int, st *VecStats) ([]int, error) {
	st.addVectorized(selCount(b, sel))
	return filterVec(e, b, sel, st)
}

func filterVec(e Expr, b *types.Batch, sel []int, st *VecStats) ([]int, error) {
	if n, ok := e.(*Binary); ok {
		switch n.Op {
		case OpAnd:
			// Kleene short-circuit as selection narrowing: rows already
			// FALSE or NULL under L can never become TRUE, and R runs
			// only on L's survivors.
			s1, err := filterVec(n.L, b, sel, st)
			if err != nil {
				return nil, err
			}
			if len(s1) == 0 {
				return s1, nil
			}
			return filterVec(n.R, b, s1, st)
		case OpOr:
			// Rows TRUE under L pass; the rest (FALSE or NULL under L)
			// pass only if TRUE under R.
			sT, err := filterVec(n.L, b, sel, st)
			if err != nil {
				return nil, err
			}
			rest := diffSel(b, sel, sT)
			sR, err := filterVec(n.R, b, rest, st)
			if err != nil {
				return nil, err
			}
			return mergeSel(sT, sR), nil
		}
	}
	if !boolReadable(e) {
		return fallbackSel(e, b, sel, st)
	}
	v, err := evalVec(e, b, sel, st)
	if err != nil {
		return nil, err
	}
	return pickTrue(v, sel), nil
}

// fallbackSel selects with the row engine, for predicates whose raw .B
// cannot be read off a coerced vector.
func fallbackSel(e Expr, b *types.Batch, sel []int, st *VecStats) ([]int, error) {
	m := selCount(b, sel)
	out := make([]int, 0, m)
	row := make(types.Row, b.NumCols())
	for j := 0; j < m; j++ {
		i := rowAt(sel, j)
		for c, col := range b.Cols {
			row[c] = col.Datum(i)
		}
		d, err := EvalRow(e, row)
		if err != nil {
			return nil, err
		}
		if !d.Null && d.B {
			out = append(out, i)
		}
	}
	st.addFallback(m)
	return out, nil
}

// pickTrue returns the batch row indexes whose dense result is TRUE.
func pickTrue(v *types.Vector, sel []int) []int {
	m := v.Len()
	out := make([]int, 0, m)
	bools := v.Bools // nil when the expression is not Bool-physical
	for j := 0; j < m; j++ {
		if bools == nil || !bools[j] || v.IsNull(j) {
			continue
		}
		out = append(out, rowAt(sel, j))
	}
	return out
}

// diffSel returns sel minus sub (both ascending, sub ⊆ sel).
func diffSel(b *types.Batch, sel, sub []int) []int {
	n := selCount(b, sel)
	out := make([]int, 0, n-len(sub))
	k := 0
	for j := 0; j < n; j++ {
		i := rowAt(sel, j)
		if k < len(sub) && sub[k] == i {
			k++
			continue
		}
		out = append(out, i)
	}
	return out
}

// mergeSel merges two ascending, disjoint selections.
func mergeSel(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// stableExpr reports whether a node's raw row-engine result datum
// always carries exactly its static type (same K, not just the same
// physical class). The row engine coerces datums through Vector.Append
// only once, at the top of an expression; intermediate nodes see raw
// datums. Kernel outputs are coerced to the static type at every node,
// which is only indistinguishable from raw datums for stable children —
// consumers that dispatch on a child's raw type (comparisons, IN,
// arithmetic operand widening, EXTRACT, HASH) must therefore check this
// and fall back when it does not hold. The classic unstable node is
// ABS(float): bound as Int64, raw result Float64.
func stableExpr(e Expr) bool {
	switch n := e.(type) {
	case *ColumnRef, *Literal, *IsNull, *In, *Like:
		return true
	case *Binary:
		// Comparisons and AND/OR produce Bool; arithmetic stamps K=Typ
		// on both the int and float paths.
		return true
	case *Unary:
		if n.Op == OpNot {
			return true
		}
		// NEG keeps the raw operand's K on the int path.
		return stableExpr(n.E)
	case *Func:
		switch strings.ToUpper(n.Name) {
		case "HASH", "LENGTH", "YEAR", "MONTH", "DAY", "EXTRACT",
			"SUBSTR", "LOWER", "UPPER":
			return true
		case "ABS":
			// Bound Int64, but the raw result goes Float64 whenever the
			// raw argument is Float64.
			return stableExpr(n.Args[0]) && n.Args[0].Type().Physical() != types.Float64
		case "COALESCE":
			for _, a := range n.Args {
				if !stableExpr(a) || a.Type() != n.Typ {
					return false
				}
			}
			return true
		}
		return false
	case *Case:
		for _, w := range n.Whens {
			if !stableExpr(w.Then) || w.Then.Type() != n.Typ {
				return false
			}
		}
		if n.Else != nil && (!stableExpr(n.Else) || n.Else.Type() != n.Typ) {
			return false
		}
		return true
	}
	return false
}

// boolReadable reports whether reading the coerced vector as bool gives
// raw-datum .B semantics: true for static-Bool results (the coerced
// Bools slice IS the raw .B) and for stable nodes (raw non-Bool datums
// have .B == false, as does the coerced read).
func boolReadable(e Expr) bool {
	return e.Type().Physical() == types.Bool || stableExpr(e)
}

func evalVec(e Expr, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	switch n := e.(type) {
	case *ColumnRef:
		if n.Index < 0 || n.Index >= len(b.Cols) {
			return nil, fmt.Errorf("expr: column %q not bound", n.Name)
		}
		col := b.Cols[n.Index]
		if sel == nil {
			return col, nil
		}
		return col.Gather(sel), nil
	case *Literal:
		return constVec(n.Value, selCount(b, sel)), nil
	case *Binary:
		return evalVecBinary(n, b, sel, st)
	case *Unary:
		return evalVecUnary(n, b, sel, st)
	case *IsNull:
		return evalVecIsNull(n, b, sel, st)
	case *In:
		return evalVecIn(n, b, sel, st)
	case *Like:
		return evalVecLike(n, b, sel, st)
	case *Case:
		return evalVecCase(n, b, sel, st)
	case *Func:
		return evalVecFunc(n, b, sel, st)
	}
	return fallbackVec(e, b, sel, st)
}

// fallbackVec evaluates an unsupported node with the row engine over the
// surviving rows only, preserving semantics exactly.
func fallbackVec(e Expr, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	m := selCount(b, sel)
	out := types.NewVector(e.Type(), m)
	row := make(types.Row, b.NumCols())
	for j := 0; j < m; j++ {
		i := rowAt(sel, j)
		for c, col := range b.Cols {
			row[c] = col.Datum(i)
		}
		d, err := EvalRow(e, row)
		if err != nil {
			return nil, err
		}
		out.Append(d)
	}
	st.addFallback(m)
	return out, nil
}

// denseVec builds a fixed-length result vector with a lazily
// materialized null bitmap.
type denseVec struct {
	v       *types.Vector
	nulls   []bool
	anyNull bool
}

func newDense(typ types.Type, m int) *denseVec {
	v := &types.Vector{Typ: typ}
	switch typ.Physical() {
	case types.Int64:
		v.Ints = make([]int64, m)
	case types.Float64:
		v.Floats = make([]float64, m)
	case types.Varchar:
		v.Strs = make([]string, m)
	case types.Bool:
		v.Bools = make([]bool, m)
	}
	return &denseVec{v: v, nulls: make([]bool, m)}
}

func (d *denseVec) setNull(j int) {
	d.nulls[j] = true
	d.anyNull = true
}

func (d *denseVec) done() *types.Vector {
	if d.anyNull {
		d.v.Nulls = d.nulls
	}
	return d.v
}

// constVec materializes a literal as a dense vector of m copies.
func constVec(d types.Datum, m int) *types.Vector {
	out := newDense(d.K, m)
	if d.Null {
		for j := 0; j < m; j++ {
			out.setNull(j)
		}
		return out.done()
	}
	switch d.K.Physical() {
	case types.Int64:
		for j := range out.v.Ints {
			out.v.Ints[j] = d.I
		}
	case types.Float64:
		for j := range out.v.Floats {
			out.v.Floats[j] = d.F
		}
	case types.Varchar:
		for j := range out.v.Strs {
			out.v.Strs[j] = d.S
		}
	case types.Bool:
		for j := range out.v.Bools {
			out.v.Bools[j] = d.B
		}
	}
	return out.done()
}

func evalVecBinary(n *Binary, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	if n.Op == OpAnd || n.Op == OpOr {
		if !boolReadable(n.L) || !boolReadable(n.R) {
			return fallbackVec(n, b, sel, st)
		}
		return evalVecLogic(n, b, sel, st)
	}
	// Comparisons and arithmetic dispatch on the operands' raw datum
	// types; unstable operands must go through the row engine.
	if !stableExpr(n.L) || !stableExpr(n.R) {
		return fallbackVec(n, b, sel, st)
	}
	l, err := evalVec(n.L, b, sel, st)
	if err != nil {
		return nil, err
	}
	r, err := evalVec(n.R, b, sel, st)
	if err != nil {
		return nil, err
	}
	if n.Op.IsComparison() {
		out, ok := compareKernel(n.Op, l, r)
		if ok {
			return out, nil
		}
		// Unsupported class combination (e.g. string vs number, which
		// the row engine resolves by rendered-string comparison).
		return fallbackVec(n, b, sel, st)
	}
	return arithKernel(n.Op, n.Typ, l, r)
}

// cmpTruth maps a three-way comparison (shifted to 0,1,2) to the
// operator's outcome.
func cmpTruth(op Op) [3]bool {
	switch op {
	case OpEq:
		return [3]bool{false, true, false}
	case OpNe:
		return [3]bool{true, false, true}
	case OpLt:
		return [3]bool{true, false, false}
	case OpLe:
		return [3]bool{true, true, false}
	case OpGt:
		return [3]bool{false, false, true}
	default: // OpGe
		return [3]bool{false, true, true}
	}
}

// compareKernel evaluates a comparison over two dense vectors. ok is
// false when the physical class combination has no typed kernel.
func compareKernel(op Op, l, r *types.Vector) (*types.Vector, bool) {
	m := l.Len()
	lp, rp := l.Typ.Physical(), r.Typ.Physical()
	numeric := func(p types.Type) bool { return p == types.Int64 || p == types.Float64 }
	if lp != rp && !(numeric(lp) && numeric(rp)) {
		return nil, false
	}
	truth := cmpTruth(op)
	out := newDense(types.Bool, m)
	ob := out.v.Bools
	anyLeftNull, anyRightNull := l.Nulls != nil, r.Nulls != nil
	isNull := func(j int) bool {
		return (anyLeftNull && l.IsNull(j)) || (anyRightNull && r.IsNull(j))
	}
	switch {
	case lp == types.Int64 && rp == types.Int64:
		li, ri := l.Ints, r.Ints
		for j := 0; j < m; j++ {
			if isNull(j) {
				out.setNull(j)
				continue
			}
			c := 1
			if li[j] < ri[j] {
				c = 0
			} else if li[j] > ri[j] {
				c = 2
			}
			ob[j] = truth[c]
		}
	case numeric(lp) && numeric(rp):
		lf := floatsOf(l)
		rf := floatsOf(r)
		for j := 0; j < m; j++ {
			if isNull(j) {
				out.setNull(j)
				continue
			}
			c := 1
			if lf(j) < rf(j) {
				c = 0
			} else if lf(j) > rf(j) {
				c = 2
			}
			ob[j] = truth[c]
		}
	case lp == types.Varchar:
		ls, rs := l.Strs, r.Strs
		for j := 0; j < m; j++ {
			if isNull(j) {
				out.setNull(j)
				continue
			}
			c := strings.Compare(ls[j], rs[j]) + 1
			ob[j] = truth[c]
		}
	case lp == types.Bool:
		lb, rb := l.Bools, r.Bools
		for j := 0; j < m; j++ {
			if isNull(j) {
				out.setNull(j)
				continue
			}
			c := 1
			if !lb[j] && rb[j] {
				c = 0
			} else if lb[j] && !rb[j] {
				c = 2
			}
			ob[j] = truth[c]
		}
	default:
		return nil, false
	}
	return out.done(), true
}

// floatsOf returns an accessor reading a numeric vector as float64.
func floatsOf(v *types.Vector) func(int) float64 {
	if v.Typ.Physical() == types.Float64 {
		fs := v.Floats
		return func(j int) float64 { return fs[j] }
	}
	is := v.Ints
	return func(j int) float64 { return float64(is[j]) }
}

// intsAt reads a vector as int64 with the row engine's Datum-field
// semantics: non-Int64-physical values read as 0.
func intsAt(v *types.Vector) func(int) int64 {
	if v.Typ.Physical() == types.Int64 {
		is := v.Ints
		return func(j int) int64 { return is[j] }
	}
	return func(int) int64 { return 0 }
}

// strsAt reads a vector as string (empty for non-Varchar), matching
// Datum-field semantics.
func strsAt(v *types.Vector) func(int) string {
	if v.Typ.Physical() == types.Varchar {
		ss := v.Strs
		return func(j int) string { return ss[j] }
	}
	return func(int) string { return "" }
}

// boolsAt reads a vector as bool (false for non-Bool), matching
// Datum-field semantics.
func boolsAt(v *types.Vector) func(int) bool {
	if v.Typ.Physical() == types.Bool {
		bs := v.Bools
		return func(j int) bool { return bs[j] }
	}
	return func(int) bool { return false }
}

// arithKernel evaluates +,-,*,/,% over two dense vectors with the row
// engine's numeric rules: the float path when the bound result type is
// Float64, the int path otherwise; division (and modulo) by zero is
// NULL, not an error.
func arithKernel(op Op, typ types.Type, l, r *types.Vector) (*types.Vector, error) {
	m := l.Len()
	out := newDense(typ, m)
	anyLeftNull, anyRightNull := l.Nulls != nil, r.Nulls != nil
	isNull := func(j int) bool {
		return (anyLeftNull && l.IsNull(j)) || (anyRightNull && r.IsNull(j))
	}
	if typ.Physical() == types.Float64 {
		lf, rf := floatsOf(l), floatsOf(r)
		of := out.v.Floats
		for j := 0; j < m; j++ {
			if isNull(j) {
				out.setNull(j)
				continue
			}
			a, c := lf(j), rf(j)
			switch op {
			case OpAdd:
				of[j] = a + c
			case OpSub:
				of[j] = a - c
			case OpMul:
				of[j] = a * c
			case OpDiv:
				if c == 0 {
					out.setNull(j)
					continue
				}
				of[j] = a / c
			default:
				return nil, fmt.Errorf("expr: op %v not valid for floats", op)
			}
		}
		return out.done(), nil
	}
	if typ.Physical() != types.Int64 {
		return nil, fmt.Errorf("expr: bad arithmetic op %v", op)
	}
	li, ri := intsAt(l), intsAt(r)
	oi := out.v.Ints
	for j := 0; j < m; j++ {
		if isNull(j) {
			out.setNull(j)
			continue
		}
		a, c := li(j), ri(j)
		switch op {
		case OpAdd:
			oi[j] = a + c
		case OpSub:
			oi[j] = a - c
		case OpMul:
			oi[j] = a * c
		case OpDiv:
			if c == 0 {
				out.setNull(j)
				continue
			}
			oi[j] = a / c
		case OpMod:
			if c == 0 {
				out.setNull(j)
				continue
			}
			oi[j] = a % c
		default:
			return nil, fmt.Errorf("expr: bad arithmetic op %v", op)
		}
	}
	return out.done(), nil
}

// evalVecLogic evaluates AND/OR with Kleene semantics and row-engine
// short-circuiting: the right operand is evaluated only over rows the
// left operand does not decide.
func evalVecLogic(n *Binary, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	m := selCount(b, sel)
	l, err := evalVec(n.L, b, sel, st)
	if err != nil {
		return nil, err
	}
	lb := boolsAt(l)
	out := newDense(types.Bool, m)
	ob := out.v.Bools
	// decided: AND is FALSE on a non-NULL FALSE left; OR is TRUE on a
	// non-NULL TRUE left. Everything else needs the right operand.
	undecidedRows := make([]int, 0, m)
	undecidedSlots := make([]int, 0, m)
	for j := 0; j < m; j++ {
		lNull := l.IsNull(j)
		lv := lb(j)
		if n.Op == OpAnd && !lNull && !lv {
			continue // ob[j] already false
		}
		if n.Op == OpOr && !lNull && lv {
			ob[j] = true
			continue
		}
		undecidedRows = append(undecidedRows, rowAt(sel, j))
		undecidedSlots = append(undecidedSlots, j)
	}
	if len(undecidedRows) == 0 {
		return out.done(), nil
	}
	r, err := evalVec(n.R, b, undecidedRows, st)
	if err != nil {
		return nil, err
	}
	rb := boolsAt(r)
	for k, j := range undecidedSlots {
		lNull, rNull := l.IsNull(j), r.IsNull(k)
		rv := rb(k)
		if n.Op == OpAnd {
			switch {
			case !rNull && !rv:
				// ob[j] stays false
			case lNull || rNull:
				out.setNull(j)
			default:
				ob[j] = lb(j) && rv
			}
			continue
		}
		switch {
		case !rNull && rv:
			ob[j] = true
		case lNull || rNull:
			out.setNull(j)
		default:
			ob[j] = lb(j) || rv
		}
	}
	return out.done(), nil
}

func evalVecUnary(n *Unary, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	v, err := evalVec(n.E, b, sel, st)
	if err != nil {
		return nil, err
	}
	m := v.Len()
	switch n.Op {
	case OpNot:
		if !boolReadable(n.E) {
			return fallbackVec(n, b, sel, st)
		}
		out := newDense(types.Bool, m)
		vb := boolsAt(v)
		for j := 0; j < m; j++ {
			if v.IsNull(j) {
				out.setNull(j)
				continue
			}
			out.v.Bools[j] = !vb(j)
		}
		return out.done(), nil
	case OpNeg:
		if !stableExpr(n.E) {
			return fallbackVec(n, b, sel, st)
		}
		switch v.Typ.Physical() {
		case types.Float64:
			out := newDense(n.Typ, m)
			if out.v.Floats == nil {
				// Bound type disagrees with the operand class; let the
				// row engine's Datum coercion decide.
				return fallbackVec(n, b, sel, st)
			}
			for j := 0; j < m; j++ {
				if v.IsNull(j) {
					out.setNull(j)
					continue
				}
				out.v.Floats[j] = -v.Floats[j]
			}
			return out.done(), nil
		case types.Int64:
			out := newDense(n.Typ, m)
			if out.v.Ints == nil {
				return fallbackVec(n, b, sel, st)
			}
			for j := 0; j < m; j++ {
				if v.IsNull(j) {
					out.setNull(j)
					continue
				}
				out.v.Ints[j] = -v.Ints[j]
			}
			return out.done(), nil
		}
		return fallbackVec(n, b, sel, st)
	}
	return nil, fmt.Errorf("expr: bad unary op %v", n.Op)
}

func evalVecIsNull(n *IsNull, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	v, err := evalVec(n.E, b, sel, st)
	if err != nil {
		return nil, err
	}
	m := v.Len()
	out := newDense(types.Bool, m)
	for j := 0; j < m; j++ {
		out.v.Bools[j] = v.IsNull(j) != n.Negate
	}
	return out.done(), nil
}

func evalVecIn(n *In, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	if !n.constOK || !stableExpr(n.E) {
		// Non-literal IN lists and unstable operands (whose raw datum
		// type steers membership comparison) take the row engine.
		return fallbackVec(n, b, sel, st)
	}
	v, err := evalVec(n.E, b, sel, st)
	if err != nil {
		return nil, err
	}
	m := v.Len()
	out := newDense(types.Bool, m)
	setInt := n.constInts
	setStr := n.constStrs
	useInt := setInt != nil && v.Typ.Physical() == types.Int64
	useStr := setStr != nil && v.Typ.Physical() == types.Varchar
	for j := 0; j < m; j++ {
		if v.IsNull(j) {
			out.setNull(j)
			continue
		}
		var found bool
		switch {
		case useInt:
			_, found = setInt[v.Ints[j]]
		case useStr:
			_, found = setStr[v.Strs[j]]
		default:
			for _, d := range n.constList {
				if compareMixed(v.Datum(j), d) == 0 {
					found = true
					break
				}
			}
		}
		switch {
		case found:
			out.v.Bools[j] = !n.Negate
		case n.constNull:
			out.setNull(j)
		default:
			out.v.Bools[j] = n.Negate
		}
	}
	return out.done(), nil
}

func evalVecLike(n *Like, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	if n.E.Type().Physical() != types.Varchar && !stableExpr(n.E) {
		return fallbackVec(n, b, sel, st)
	}
	v, err := evalVec(n.E, b, sel, st)
	if err != nil {
		return nil, err
	}
	m := v.Len()
	matcher := n.matcher()
	out := newDense(types.Bool, m)
	vs := strsAt(v)
	for j := 0; j < m; j++ {
		if v.IsNull(j) {
			out.setNull(j)
			continue
		}
		out.v.Bools[j] = matcher.match(vs(j)) != n.Negate
	}
	return out.done(), nil
}

// scatterInto writes the dense src values into the listed slots of dst,
// applying Vector.Append's physical-class coercion: a class mismatch
// stores the zero value (that is what Append reads off a foreign-class
// Datum), NULL carries over.
func scatterInto(dst *denseVec, slots []int, src *types.Vector) {
	same := dst.v.Typ.Physical() == src.Typ.Physical()
	for k, j := range slots {
		if src.IsNull(k) {
			dst.setNull(j)
			continue
		}
		if !same {
			continue // slot keeps its zero value
		}
		switch dst.v.Typ.Physical() {
		case types.Int64:
			dst.v.Ints[j] = src.Ints[k]
		case types.Float64:
			dst.v.Floats[j] = src.Floats[k]
		case types.Varchar:
			dst.v.Strs[j] = src.Strs[k]
		case types.Bool:
			dst.v.Bools[j] = src.Bools[k]
		}
	}
}

func evalVecCase(n *Case, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	// Branch values scatter through the bound type's physical class; a
	// branch is exact when its static class already matches (the copy
	// reads the same field Append would) or when it is stable (the raw
	// datum's foreign-class fields are zero, like the scatter's zero
	// fill). Conditions are read as raw .B.
	branchOK := func(e Expr) bool {
		return e.Type().Physical() == n.Typ.Physical() || stableExpr(e)
	}
	for _, w := range n.Whens {
		if !boolReadable(w.Cond) || !branchOK(w.Then) {
			return fallbackVec(n, b, sel, st)
		}
	}
	if n.Else != nil && !branchOK(n.Else) {
		return fallbackVec(n, b, sel, st)
	}
	m := selCount(b, sel)
	out := newDense(n.Typ, m)
	// rem tracks rows not yet claimed by a WHEN arm, with their output
	// slots alongside.
	rem := make([]int, m)
	remSlots := make([]int, m)
	for j := 0; j < m; j++ {
		rem[j] = rowAt(sel, j)
		remSlots[j] = j
	}
	for _, w := range n.Whens {
		if len(rem) == 0 {
			break
		}
		cv, err := evalVec(w.Cond, b, rem, st)
		if err != nil {
			return nil, err
		}
		cb := boolsAt(cv)
		matchedRows := make([]int, 0, len(rem))
		matchedSlots := make([]int, 0, len(rem))
		nextRem := rem[:0]
		nextSlots := remSlots[:0]
		for k := range rem {
			if !cv.IsNull(k) && cb(k) {
				matchedRows = append(matchedRows, rem[k])
				matchedSlots = append(matchedSlots, remSlots[k])
			} else {
				nextRem = append(nextRem, rem[k])
				nextSlots = append(nextSlots, remSlots[k])
			}
		}
		if len(matchedRows) > 0 {
			tv, err := evalVec(w.Then, b, matchedRows, st)
			if err != nil {
				return nil, err
			}
			scatterInto(out, matchedSlots, tv)
		}
		rem, remSlots = nextRem, nextSlots
	}
	if len(rem) > 0 {
		if n.Else != nil {
			ev, err := evalVec(n.Else, b, rem, st)
			if err != nil {
				return nil, err
			}
			scatterInto(out, remSlots, ev)
		} else {
			for _, j := range remSlots {
				out.setNull(j)
			}
		}
	}
	return out.done(), nil
}

func evalVecFunc(n *Func, b *types.Batch, sel []int, st *VecStats) (*types.Vector, error) {
	name := strings.ToUpper(n.Name)
	switch name {
	case "COALESCE":
		// The kernel reads the chosen argument through the bound type's
		// physical class, mirroring Append; see evalVecCase for why a
		// matching class or a stable argument makes that exact.
		for _, a := range n.Args {
			if a.Type().Physical() != n.Typ.Physical() && !stableExpr(a) {
				return fallbackVec(n, b, sel, st)
			}
		}
	case "HASH", "ABS", "LENGTH", "LOWER", "UPPER", "SUBSTR",
		"EXTRACT", "YEAR", "MONTH", "DAY":
		// These dispatch on (or read fields steered by) the raw argument
		// datums, so every argument must be stable.
		for _, a := range n.Args {
			if !stableExpr(a) {
				return fallbackVec(n, b, sel, st)
			}
		}
	default:
		return fallbackVec(n, b, sel, st)
	}
	m := selCount(b, sel)
	args := make([]*types.Vector, len(n.Args))
	for i, a := range n.Args {
		v, err := evalVec(a, b, sel, st)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	natural, err := funcKernel(name, n, args, m)
	if err != nil {
		return nil, err
	}
	return coerceInto(n.Typ, natural), nil
}

// coerceInto retypes a kernel's natural result to the bound type,
// reproducing Vector.Append's behaviour when the physical classes
// differ (values collapse to the zero value; NULLs carry over).
func coerceInto(typ types.Type, v *types.Vector) *types.Vector {
	if typ.Physical() == v.Typ.Physical() {
		v.Typ = typ
		return v
	}
	out := newDense(typ, v.Len())
	for j := 0; j < v.Len(); j++ {
		if v.IsNull(j) {
			out.setNull(j)
		}
	}
	return out.done()
}

// anyArgNull reports whether any argument is NULL at dense position j
// (the strict-function rule).
func anyArgNull(args []*types.Vector, j int) bool {
	for _, a := range args {
		if a.IsNull(j) {
			return true
		}
	}
	return false
}

func funcKernel(name string, n *Func, args []*types.Vector, m int) (*types.Vector, error) {
	switch name {
	case "HASH":
		out := newDense(types.Int64, m)
		idx := idxRange(len(args))
		row := make([]types.Datum, len(args))
		for j := 0; j < m; j++ {
			for i, a := range args {
				row[i] = a.Datum(j)
			}
			out.v.Ints[j] = int64(hashring.HashRowCols(row, idx))
		}
		return out.done(), nil
	case "COALESCE":
		// The row engine returns the first non-NULL argument datum and
		// lets Vector.Append coerce it into the bound type; reading the
		// bound type's field off the chosen argument is the same thing.
		typ := n.Typ
		out := newDense(typ, m)
		for j := 0; j < m; j++ {
			chosen := -1
			for i := range args {
				if !args[i].IsNull(j) {
					chosen = i
					break
				}
			}
			if chosen < 0 {
				out.setNull(j)
				continue
			}
			src := args[chosen]
			if src.Typ.Physical() != typ.Physical() {
				continue // Append-style collapse to zero value
			}
			switch typ.Physical() {
			case types.Int64:
				out.v.Ints[j] = src.Ints[j]
			case types.Float64:
				out.v.Floats[j] = src.Floats[j]
			case types.Varchar:
				out.v.Strs[j] = src.Strs[j]
			case types.Bool:
				out.v.Bools[j] = src.Bools[j]
			}
		}
		return out.done(), nil
	case "ABS":
		if args[0].Typ.Physical() == types.Float64 {
			out := newDense(types.Float64, m)
			for j := 0; j < m; j++ {
				if anyArgNull(args, j) {
					out.setNull(j)
					continue
				}
				f := args[0].Floats[j]
				if f < 0 {
					f = -f
				}
				out.v.Floats[j] = f
			}
			return out.done(), nil
		}
		out := newDense(types.Int64, m)
		a0 := intsAt(args[0])
		for j := 0; j < m; j++ {
			if anyArgNull(args, j) {
				out.setNull(j)
				continue
			}
			v := a0(j)
			if v < 0 {
				v = -v
			}
			out.v.Ints[j] = v
		}
		return out.done(), nil
	case "LENGTH":
		out := newDense(types.Int64, m)
		a0 := strsAt(args[0])
		for j := 0; j < m; j++ {
			if anyArgNull(args, j) {
				out.setNull(j)
				continue
			}
			out.v.Ints[j] = int64(len(a0(j)))
		}
		return out.done(), nil
	case "LOWER", "UPPER":
		out := newDense(types.Varchar, m)
		a0 := strsAt(args[0])
		for j := 0; j < m; j++ {
			if anyArgNull(args, j) {
				out.setNull(j)
				continue
			}
			if name == "LOWER" {
				out.v.Strs[j] = strings.ToLower(a0(j))
			} else {
				out.v.Strs[j] = strings.ToUpper(a0(j))
			}
		}
		return out.done(), nil
	case "SUBSTR":
		out := newDense(types.Varchar, m)
		a0 := strsAt(args[0])
		a1 := intsAt(args[1])
		var a2 func(int) int64
		if len(args) > 2 {
			a2 = intsAt(args[2])
		}
		for j := 0; j < m; j++ {
			if anyArgNull(args, j) {
				out.setNull(j)
				continue
			}
			s := a0(j)
			start := int(a1(j)) - 1
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := len(s)
			if a2 != nil {
				end = start + int(a2(j))
				if end > len(s) {
					end = len(s)
				}
				if end < start {
					end = start
				}
			}
			out.v.Strs[j] = s[start:end]
		}
		return out.done(), nil
	case "EXTRACT", "YEAR", "MONTH", "DAY":
		out := newDense(types.Int64, m)
		row := make([]types.Datum, len(args))
		for j := 0; j < m; j++ {
			if anyArgNull(args, j) {
				out.setNull(j)
				continue
			}
			for i, a := range args {
				row[i] = a.Datum(j)
			}
			d, err := evalExtract(name, row)
			if err != nil {
				return nil, err
			}
			out.v.Ints[j] = d.I
		}
		return out.done(), nil
	}
	return nil, fmt.Errorf("expr: unknown function %q", n.Name)
}
