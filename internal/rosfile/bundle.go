package rosfile

import (
	"encoding/binary"
	"fmt"
)

// BundleMagic trails every bundle file.
const BundleMagic = 0x524F5342 // "ROSB"

// Bundle concatenates several named column files into one physical file to
// reduce file count when column data is small (paper §2.3). The layout is
// the raw column images back to back, followed by a directory, its length,
// and the magic.
type Bundle struct {
	entries map[string][2]int64 // name -> {offset, length}
	data    []byte
}

// BuildBundle concatenates the named column images in the given order.
func BuildBundle(names []string, images [][]byte) ([]byte, error) {
	if len(names) != len(images) {
		return nil, fmt.Errorf("rosfile: %d names but %d images", len(names), len(images))
	}
	var out []byte
	type ent struct {
		name   string
		offset int64
		length int64
	}
	ents := make([]ent, len(names))
	for i, img := range images {
		ents[i] = ent{name: names[i], offset: int64(len(out)), length: int64(len(img))}
		out = append(out, img...)
	}
	var dir []byte
	dir = binary.AppendUvarint(dir, uint64(len(ents)))
	for _, e := range ents {
		dir = binary.AppendUvarint(dir, uint64(len(e.name)))
		dir = append(dir, e.name...)
		dir = binary.AppendVarint(dir, e.offset)
		dir = binary.AppendVarint(dir, e.length)
	}
	out = append(out, dir...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dir)))
	out = binary.LittleEndian.AppendUint32(out, BundleMagic)
	return out, nil
}

// OpenBundle parses a bundle image.
func OpenBundle(data []byte) (*Bundle, error) {
	if len(data) < 8 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(data[len(data)-4:]) != BundleMagic {
		return nil, fmt.Errorf("rosfile: bad bundle magic: %w", ErrCorrupt)
	}
	dlen := int(binary.LittleEndian.Uint32(data[len(data)-8:]))
	if dlen < 0 || dlen > len(data)-8 {
		return nil, ErrCorrupt
	}
	dir := data[len(data)-8-dlen : len(data)-8]
	pos := 0
	cnt, n := binary.Uvarint(dir[pos:])
	if n <= 0 {
		return nil, ErrCorrupt
	}
	pos += n
	b := &Bundle{entries: make(map[string][2]int64, cnt), data: data}
	for i := uint64(0); i < cnt; i++ {
		nl, n := binary.Uvarint(dir[pos:])
		if n <= 0 || pos+n+int(nl) > len(dir) {
			return nil, ErrCorrupt
		}
		pos += n
		name := string(dir[pos : pos+int(nl)])
		pos += int(nl)
		off, n := binary.Varint(dir[pos:])
		if n <= 0 {
			return nil, ErrCorrupt
		}
		pos += n
		length, n := binary.Varint(dir[pos:])
		if n <= 0 {
			return nil, ErrCorrupt
		}
		pos += n
		if off < 0 || off+length > int64(len(data)) {
			return nil, ErrCorrupt
		}
		b.entries[name] = [2]int64{off, length}
	}
	return b, nil
}

// Names returns the column names present in the bundle.
func (b *Bundle) Names() []string {
	out := make([]string, 0, len(b.entries))
	for n := range b.entries {
		out = append(out, n)
	}
	return out
}

// Column returns the raw column image for name.
func (b *Bundle) Column(name string) ([]byte, error) {
	e, ok := b.entries[name]
	if !ok {
		return nil, fmt.Errorf("rosfile: bundle has no column %q", name)
	}
	return b.data[e[0] : e[0]+e[1]], nil
}

// Open parses the named column within the bundle.
func (b *Bundle) Open(name string) (*Reader, error) {
	img, err := b.Column(name)
	if err != nil {
		return nil, err
	}
	return NewReader(img)
}
